(* Benchmark harness.

   Two parts, matching the paper's evaluation (Section V):

   1. Figure regeneration - one table per panel of Figure 8, produced
      by the experiment harness at the "quick" scale (the full paper
      sweep is `dune exec bin/experiments.exe -- --full`). The metric
      is the paper's: the number of passing messages.

   2. Bechamel timing micro-benchmarks of the core operations, because
      a library release should also tell users what the operations cost
      in wall-clock time on a local simulator. *)

module P = Baton_experiments.Params
module Table = Baton_experiments.Table
module Runner = Baton_experiments.Runner
module Rng = Baton_util.Rng

let run_figures () =
  print_endline "=== Paper figure regeneration (message counts, quick scale) ===";
  print_endline "";
  ignore
    (Runner.run_all
       ~on_table:(fun t ->
         print_string (Table.render t);
         print_newline ())
       P.quick)

(* --- Bechamel micro-benchmarks -------------------------------------- *)

let baton_net = lazy (Baton.Network.build ~seed:101 1000)

let chord_net =
  lazy
    (let t = Chord.create ~seed:102 () in
     for _ = 1 to 1000 do
       ignore (Chord.join t)
     done;
     t)

let multiway_net =
  lazy
    (let t =
       Multiway.create ~seed:103 ~domain_lo:1 ~domain_hi:1_000_000_000 ()
     in
     for _ = 1 to 1000 do
       ignore (Multiway.join t)
     done;
     t)

let skip_graph_net =
  lazy
    (let t =
       Skip_graph.create ~seed:104 ~domain_lo:1 ~domain_hi:1_000_000_000 ()
     in
     for _ = 1 to 1000 do
       ignore (Skip_graph.join t)
     done;
     t)

let bench_rng = Rng.create 999

let tests =
  let open Bechamel in
  let key () = Rng.int_in_range bench_rng ~lo:1 ~hi:999_999_999 in
  [
    Test.make ~name:"baton/exact-query (fig8d op)"
      (Staged.stage (fun () ->
           let net = Lazy.force baton_net in
           ignore (Baton.Search.lookup net ~from:(Baton.Net.random_peer net) (key ()))));
    Test.make ~name:"baton/range-query (fig8e op)"
      (Staged.stage (fun () ->
           let net = Lazy.force baton_net in
           let lo = key () in
           ignore
             (Baton.Search.range net ~from:(Baton.Net.random_peer net) ~lo
                ~hi:(lo + 1_000_000))));
    Test.make ~name:"baton/insert (fig8c op)"
      (Staged.stage (fun () ->
           let net = Lazy.force baton_net in
           ignore (Baton.Update.insert net ~from:(Baton.Net.random_peer net) (key ()))));
    Test.make ~name:"baton/join+leave (fig8a-b op)"
      (Staged.stage (fun () ->
           let net = Lazy.force baton_net in
           let s = Baton.Join.join net ~via:(Baton.Net.random_peer net) in
           ignore (Baton.Leave.leave net (Baton.Net.peer net s.Baton.Join.new_peer))));
    Test.make ~name:"chord/lookup"
      (Staged.stage (fun () -> ignore (Chord.lookup (Lazy.force chord_net) (key ()))));
    Test.make ~name:"mtree/lookup"
      (Staged.stage (fun () -> ignore (Multiway.lookup (Lazy.force multiway_net) (key ()))));
    Test.make ~name:"skip-graph/lookup"
      (Staged.stage (fun () ->
           ignore (Skip_graph.lookup (Lazy.force skip_graph_net) (key ()))));
    Test.make ~name:"skip-graph/range-query"
      (Staged.stage (fun () ->
           let lo = key () in
           ignore
             (Skip_graph.range_query (Lazy.force skip_graph_net) ~lo
                ~hi:(lo + 1_000_000))));
  ]

let run_timings () =
  let open Bechamel in
  print_endline "=== Bechamel wall-clock micro-benchmarks (1000-peer networks) ===";
  print_endline "";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"ops" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  (match Hashtbl.find_opt results (Measure.label Toolkit.Instance.monotonic_clock) with
  | None -> print_endline "no clock results"
  | Some by_name ->
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_name []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.iter (fun (name, ols) ->
           match Analyze.OLS.estimates ols with
           | Some [ ns ] -> Printf.printf "%-40s %12.0f ns/op\n" name ns
           | Some _ | None -> Printf.printf "%-40s %12s\n" name "n/a"));
  print_newline ()

let () =
  let timings_only = Array.exists (( = ) "--timings-only") Sys.argv in
  let figures_only = Array.exists (( = ) "--figures-only") Sys.argv in
  if not timings_only then run_figures ();
  if not figures_only then run_timings ()
