(* baton — command-line driver for the BATON simulator.

   Subcommands:
     simulate   build a network, load data, run queries, report costs
     churn      run a join/leave/failure schedule and verify recovery
     inspect    build a network and print its structure summary *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Metrics = Baton_sim.Metrics
module Rng = Baton_util.Rng
module Stats = Baton_util.Stats
module Datagen = Baton_workload.Datagen
module Churn = Baton_workload.Churn
module Driver = Baton_runtime.Driver
module Bench_diff = Baton_runtime.Bench_diff

open Cmdliner

let nodes_arg =
  Arg.(value & opt int 1000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Network size.")

let seed_arg =
  Arg.(value & opt int 2005 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

let keys_arg =
  Arg.(
    value & opt int 20
    & info [ "keys-per-node" ] ~docv:"K" ~doc:"Data volume per peer.")

let queries_arg =
  Arg.(value & opt int 1000 & info [ "q"; "queries" ] ~docv:"Q" ~doc:"Queries to run.")

let zipf_arg =
  Arg.(value & flag & info [ "zipf" ] ~doc:"Use Zipf(1.0) keys instead of uniform.")

let capacity_arg =
  Arg.(
    value & opt (some int) None
    & info [ "balance-capacity" ] ~docv:"C"
        ~doc:"Enable load balancing with this per-node capacity.")

let print_kind_breakdown metrics =
  Printf.printf "\nMessage breakdown by kind:\n";
  List.iter
    (fun (kind, count) -> Printf.printf "  %-16s %10d\n" kind count)
    (Metrics.kinds metrics)

let load_summary net =
  let loads =
    List.map (fun n -> float_of_int (Node.load n)) (Net.peers net) |> Array.of_list
  in
  Printf.printf "Load per node: %s\n" (Stats.summary loads)

let simulate nodes seed keys_per_node queries zipf capacity =
  Printf.printf "Building a %d-peer BATON network (seed %d)...\n%!" nodes seed;
  let net = N.build ~seed nodes in
  let metrics = Net.metrics net in
  let build_msgs = Metrics.total metrics in
  Printf.printf "  height %d (1.44 log2 N = %.1f), %d messages to build\n%!"
    (N.height net)
    (1.44 *. (log (float_of_int nodes) /. log 2.))
    build_msgs;
  let rng = Rng.create (seed + 1) in
  let gen = if zipf then Datagen.zipf rng else Datagen.uniform rng in
  let cfg = Option.map (fun c -> Baton.Balance.default_config ~capacity:c) capacity in
  let total_keys = keys_per_node * nodes in
  Printf.printf "Inserting %d %s keys%s...\n%!" total_keys
    (if zipf then "Zipf(1.0)" else "uniform")
    (match capacity with
    | Some c -> Printf.sprintf " with balancing (capacity %d)" c
    | None -> "");
  let keys = Array.init total_keys (fun _ -> Datagen.next gen) in
  let insert_cp = Metrics.checkpoint metrics in
  Array.iter
    (fun k ->
      let st = Baton.Update.insert net ~from:(Net.random_peer net) k in
      match cfg with
      | Some cfg ->
        ignore (Baton.Balance.maybe_balance net cfg (Net.peer net st.Baton.Update.node))
      | None -> ())
    keys;
  Printf.printf "  %.2f messages per insertion\n%!"
    (float_of_int (Metrics.since metrics insert_cp) /. float_of_int total_keys);
  load_summary net;
  let qrng = Rng.create (seed + 2) in
  let exact_hops =
    Array.init queries (fun _ ->
        let k = Rng.pick qrng keys in
        let r = Baton.Search.lookup net ~from:(Net.random_peer net) k in
        assert r.Baton.Search.found;
        float_of_int r.Baton.Search.hops)
  in
  Printf.printf "Exact queries:  %s\n" (Stats.summary exact_hops);
  let span = (Datagen.domain_hi - Datagen.domain_lo) / max 1 nodes * 5 in
  let range_hops =
    Array.init queries (fun _ ->
        let lo = Rng.int_in_range qrng ~lo:Datagen.domain_lo ~hi:(Datagen.domain_hi - span) in
        let r = Baton.Search.range net ~from:(Net.random_peer net) ~lo ~hi:(lo + span) in
        float_of_int r.Baton.Search.hops)
  in
  Printf.printf "Range queries:  %s\n" (Stats.summary range_hops);
  print_kind_breakdown metrics;
  Baton.Check.all net;
  Printf.printf "\nAll structural invariants hold.\n"

let churn nodes seed rounds fail_percent =
  Printf.printf "Building a %d-peer network (seed %d)...\n%!" nodes seed;
  let net = N.build ~seed nodes in
  let rng = Rng.create (seed + 3) in
  let gen = Datagen.uniform (Rng.create (seed + 4)) in
  let keys = Array.init (5 * nodes) (fun _ -> Datagen.next gen) in
  Array.iter (N.insert net) keys;
  let metrics = Net.metrics net in
  let cp = Metrics.checkpoint metrics in
  let fails = rounds * fail_percent / 100 in
  let schedule =
    Churn.schedule rng ~joins:(rounds - fails) ~leaves:(rounds - fails) ~fails:(2 * fails)
  in
  Array.iter
    (fun event ->
      match event with
      | Churn.Join -> ignore (N.join net)
      | Churn.Leave ->
        if Net.size net > 2 then
          let ids = Net.live_ids net in
          N.leave net (Rng.pick rng ids)
      | Churn.Fail ->
        if Net.size net > 2 then begin
          let ids = Net.live_ids net in
          let victim = Rng.pick rng ids in
          N.crash net victim;
          N.repair net victim
        end)
    schedule;
  Printf.printf "  %d churn events, %d messages (%.1f per event)\n"
    (Array.length schedule)
    (Metrics.since metrics cp)
    (float_of_int (Metrics.since metrics cp) /. float_of_int (max 1 (Array.length schedule)));
  Printf.printf "  final size %d, height %d\n" (Net.size net) (N.height net);
  let survivors =
    Array.to_list keys
    |> List.filter (fun k -> N.lookup net k)
    |> List.length
  in
  Printf.printf "  %d of %d keys survive (failures lose unreplicated data)\n"
    survivors (Array.length keys);
  Baton.Check.all net;
  Printf.printf "All structural invariants hold after churn.\n"

let inspect nodes seed show_tree snapshot =
  let net =
    match snapshot with
    | Some path when Sys.file_exists path ->
      Printf.printf "(loaded snapshot %s)\n" path;
      Net.load path
    | _ ->
      let net = N.build ~seed nodes in
      (match snapshot with
      | Some path ->
        Net.save net path;
        Printf.printf "(saved snapshot to %s)\n" path
      | None -> ());
      net
  in
  Printf.printf "BATON network: %d peers, height %d\n" (Net.size net) (N.height net);
  if show_tree then print_string (Baton.Viz.tree ~max_depth:5 net);
  let by_level = Hashtbl.create 16 in
  List.iter
    (fun n ->
      let l = Node.level n in
      Hashtbl.replace by_level l (1 + Option.value ~default:0 (Hashtbl.find_opt by_level l)))
    (Net.peers net);
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) by_level []
  |> List.sort compare
  |> List.iter (fun (l, c) ->
         Printf.printf "  level %2d: %4d nodes (capacity %d)\n" l c
           (Baton.Position.level_width l));
  let leaves = List.filter Node.is_leaf (Net.peers net) in
  Printf.printf "  %d leaves; routing-table fill: " (List.length leaves);
  let fills =
    List.map
      (fun n ->
        float_of_int
          (Baton.Routing_table.filled_count n.Node.left_table
          + Baton.Routing_table.filled_count n.Node.right_table))
      (Net.peers net)
    |> Array.of_list
  in
  Printf.printf "%s\n" (Stats.summary fills);
  Baton.Check.all net;
  Printf.printf "All structural invariants hold.\n"

(* Causal trace of one seeded range query under the concurrent
   runtime: every message carries a trace context, the collector
   reconstructs the hop DAG, and the report shows the critical path —
   the chain the runtime actually charged as completion time — against
   the total message count. Deterministic: two same-seed invocations
   are byte-identical. *)
let trace_causal nodes seed json =
  let module Runtime = Baton_runtime.Runtime in
  let module Trace = Baton_obs.Trace in
  let net = N.build ~seed nodes in
  (* Data load is setup, not the traced operation. *)
  let gen = Datagen.uniform (Rng.create (seed + 1)) in
  let keys = Array.init (5 * nodes) (fun _ -> Datagen.next gen) in
  ignore
    (Baton.Update.bulk_insert net ~from:(Net.random_peer net)
       (Array.to_list keys));
  let rt = Runtime.create net in
  let tracer = Trace.create () in
  Trace.use_engine tracer (Runtime.engine rt);
  Net.set_tracer net (Some tracer);
  let span = (Datagen.domain_hi - Datagen.domain_lo) / max 1 nodes * 5 in
  let lo =
    Rng.int_in_range
      (Rng.create (seed + 2))
      ~lo:Datagen.domain_lo
      ~hi:(Datagen.domain_hi - span)
  in
  let hi = lo + span in
  let origin = Net.random_peer net in
  let par l r = Runtime.both l r in
  let finished = ref 0. in
  Runtime.spawn rt
    (fun () -> ignore (Baton.Search.range ~par net ~from:origin ~lo ~hi))
    ~on_done:(fun _ -> finished := Runtime.now rt);
  Runtime.run rt;
  Net.set_tracer net None;
  match Trace.latest tracer with
  | None -> prerr_endline "baton trace: no episode was traced"; exit 1
  | Some ep ->
    if json then print_string (Trace.episode_jsonl ep)
    else begin
      Printf.printf "range query [%d, %d] from peer %d under the runtime:\n"
        lo hi origin.Node.id;
      print_string (Trace.render ep);
      let a = Trace.analyze ep in
      Printf.printf
        "runtime completion %.1f ms; critical path %d of %d msgs, %.1f ms\n"
        !finished a.Trace.crit_hops a.Trace.msgs a.Trace.crit_ms
    end

let trace nodes seed key json causal =
  if causal then trace_causal nodes seed json
  else
  let net = N.build ~seed nodes in
  if json then begin
    (* Machine-readable span trace: the recorder is attached after the
       build, so exactly the query's events are exported. Everything
       downstream of the seed is deterministic, so two same-seed runs
       emit byte-identical JSONL. *)
    let recorder = Baton_obs.Recorder.create () in
    Net.set_recorder net (Some recorder);
    let origin = Net.random_peer net in
    ignore (Baton.Search.exact net ~from:origin key);
    Net.set_recorder net None;
    print_string (Baton_obs.Export.events_jsonl recorder)
  end
  else begin
    let hops = ref [] in
    let sub =
      Baton_sim.Bus.subscribe (Net.bus net) (fun ~src ~dst ~kind ->
          hops := (src, dst, kind) :: !hops)
    in
    let origin = Net.random_peer net in
    let outcome = Baton.Search.exact net ~from:origin key in
    Baton_sim.Bus.unsubscribe (Net.bus net) sub;
    Printf.printf "exact search for key %d from peer %d:\n" key origin.Node.id;
    Printf.printf "  start  %s\n" (Baton.Viz.node_line origin);
    List.iter
      (fun (src, dst, kind) ->
        let node = Net.peer net dst in
        Printf.printf "  %d->%d  %s  (%s)\n" src dst (Baton.Viz.node_line node) kind)
      (List.rev !hops);
    Printf.printf "answered at %s in %d hops\n"
      (Baton.Viz.node_line outcome.Baton.Search.node)
      outcome.Baton.Search.hops
  end

(* Run a deterministic mixed workload under the telemetry recorder and
   report per-operation-kind percentile digests plus per-node load
   gauges — the tail-visibility companion to [simulate]'s means. *)
let stats nodes seed keys_per_node queries churn_rounds snapshot =
  let net =
    match snapshot with
    | None -> N.build ~seed nodes
    | Some path -> (
      match Net.load path with
      | net ->
        Printf.eprintf "(loaded snapshot %s: %d peers)\n%!" path (Net.size net);
        net
      | exception Net.Incompatible_snapshot { found; expected } ->
        Printf.eprintf
          "baton stats: %s holds snapshot version %S, but this build reads \
           %S.\nRegenerate it with the current binary (e.g. `baton inspect \
           --snapshot %s`).\n"
          path found expected path;
        exit 1
      | exception Failure msg ->
        Printf.eprintf "baton stats: %s: %s\n" path msg;
        exit 1
      | exception Sys_error msg ->
        Printf.eprintf "baton stats: %s\n" msg;
        exit 1)
  in
  let recorder = Baton_obs.Recorder.create () in
  Net.set_recorder net (Some recorder);
  let gauge = Baton_obs.Gauge.create () in
  let metrics = Net.metrics net in
  let ops_done = ref 0 in
  let sample_every = max 1 ((queries + (2 * churn_rounds)) / 8) in
  let tick () =
    incr ops_done;
    if !ops_done mod sample_every = 0 then begin
      let loads =
        Metrics.per_node metrics |> List.map snd |> Array.of_list
      in
      Baton_obs.Gauge.sample gauge ~time:(float_of_int !ops_done) loads
    end
  in
  let gen = Datagen.uniform (Rng.create (seed + 1)) in
  let keys = Array.init (keys_per_node * nodes) (fun _ -> Datagen.next gen) in
  Array.iter
    (fun k -> ignore (Baton.Update.insert net ~from:(Net.random_peer net) k))
    keys;
  let crng = Rng.create (seed + 3) in
  for _ = 1 to churn_rounds do
    ignore (N.join net);
    tick ();
    if Net.size net > 2 then begin
      let ids = Net.live_ids net in
      N.leave net (Rng.pick crng ids)
    end;
    tick ()
  done;
  let qrng = Rng.create (seed + 2) in
  let span = (Datagen.domain_hi - Datagen.domain_lo) / max 1 nodes * 5 in
  for i = 1 to queries do
    (if i mod 4 = 0 then
       let lo =
         Rng.int_in_range qrng ~lo:Datagen.domain_lo
           ~hi:(Datagen.domain_hi - span)
       in
       ignore (Baton.Search.range net ~from:(Net.random_peer net) ~lo ~hi:(lo + span))
     else
       let k = Rng.pick qrng keys in
       ignore (Baton.Search.lookup net ~from:(Net.random_peer net) k));
    tick ()
  done;
  Net.set_recorder net None;
  print_endline
    (Baton_obs.Json.to_pretty_string
       (Baton_obs.Export.stats_json ~load:gauge recorder))

let compare_overlays nodes seed ops =
  let rng = Rng.create (seed + 9) in
  let keys = Array.init ops (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Printf.printf "%-10s %10s %12s %12s %12s %12s %14s\n" "overlay" "build"
    "msgs/bulk" "msgs/lookup" "msgs/churn" "cache msgs" "range query";
  List.iter
    (fun (module O : P2p_overlay.Overlay.S) ->
      let t = O.create ~seed ~n:nodes in
      let msgs () = (O.stats t).P2p_overlay.Overlay.total in
      let build = msgs () in
      let before = msgs () in
      (* The batched path: one bulk load instead of [ops] routed
         inserts; per-key cost shows the amortization. *)
      O.bulk_load t (Array.to_list keys);
      let load_cost = float_of_int (msgs () - before) /. float_of_int ops in
      let before = msgs () in
      Array.iter (fun k -> assert (O.lookup t k)) keys;
      let lookup_cost = float_of_int (msgs () - before) /. float_of_int ops in
      let before = msgs () in
      let churn_rng = Rng.create (seed + 11) in
      for _ = 1 to 20 do
        O.join t;
        O.leave_random t churn_rng
      done;
      let churn_cost = float_of_int (msgs () - before) /. 40. in
      let range =
        if O.supports_range then
          let answer = O.range_query t ~lo:1 ~hi:50_000_000 in
          Printf.sprintf "%d keys" (List.length answer)
        else "unsupported"
      in
      O.check t;
      let stats = O.stats t in
      Printf.printf "%-10s %10d %12.2f %12.2f %12.2f %12d %14s\n" O.name build
        load_cost lookup_cost churn_cost stats.P2p_overlay.Overlay.cache range)
    P2p_overlay.Overlay.all;
  print_endline "\nall overlays pass their structural checks"

(* Concurrent workload driver: execute a seeded operation mix per
   selected overlay and emit the BENCH_runtime.json document (baton runs
   as interleaved fibers on the discrete-event runtime; comparison
   overlays run the same plan sequentially). *)
let bench_run nodes seed keys_per_node ops clients overlay_names mix_names
    arrival rate think_ms route_cache monitor_every series_every profile heat
    faults oracle out timeseries_out =
  let overlays =
    let names = match overlay_names with [] -> [ "baton" ] | ns -> ns in
    let names =
      if
        List.exists
          (fun n -> String.equal (String.lowercase_ascii n) "all")
          names
      then P2p_overlay.Overlay.names
      else names
    in
    (* Canonicalize (resolving aliases), then dedupe keeping order. *)
    List.fold_left
      (fun acc name ->
        let canonical =
          match P2p_overlay.Overlay.of_name name with
          | (module O : P2p_overlay.Overlay.S) -> O.name
          | exception P2p_overlay.Overlay.Unknown_overlay { name; valid } ->
            Printf.eprintf "unknown overlay %S (valid: %s)\n" name
              (String.concat ", " valid);
            exit 1
        in
        if List.mem canonical acc then acc else acc @ [ canonical ])
      [] names
  in
  let has_non_baton =
    List.exists (fun o -> not (String.equal o "baton")) overlays
  in
  if has_non_baton && (route_cache || faults <> None) then begin
    Printf.eprintf
      "--route-cache and --faults require the baton runtime; drop them or \
       keep --overlay baton\n";
    exit 2
  end;
  if has_non_baton && (monitor_every > 0. || series_every > 0. || profile || heat)
  then
    Printf.eprintf
      "note: monitoring, time series, profiling and heat apply to the baton \
       runtime only; disabled for the other overlays\n";
  let fault_schedule =
    match faults with
    | None -> []
    | Some spec -> (
      match Baton_sim.Partition.parse spec with
      | Ok schedule -> schedule
      | Error msg ->
        Printf.eprintf "bad fault schedule %S: %s\n" spec msg;
        exit 2)
  in
  (* A faulted run without the oracle is a benchmark with no referee. *)
  let oracle = oracle || fault_schedule <> [] in
  let mixes =
    match mix_names with
    | [] -> Driver.mixes
    | names ->
      List.map
        (fun name ->
          match Driver.mix_named name with
          | Some m -> m
          | None ->
            Printf.eprintf "unknown mix %S (known: %s)\n" name
              (String.concat ", "
                 (List.map
                    (fun m -> m.Driver.mix_name)
                    (Driver.mixes @ [ Driver.adversarial ])));
            exit 2)
        names
  in
  let arrival =
    match arrival with
    | "closed" -> Driver.Closed { think_ms }
    | "open" -> Driver.Open { rate_per_s = rate }
    | other ->
      Printf.eprintf "unknown arrival model %S (closed|open)\n" other;
      exit 2
  in
  let sections =
    List.map
      (fun overlay ->
        let baton = String.equal overlay "baton" in
        let reports =
          List.map
            (fun mix ->
              let cfg =
                Driver.config ~overlay ~seed ~keys_per_node ~clients ~ops
                  ~arrival ~route_cache
                  ~monitor_every_ms:(if baton then monitor_every else 0.)
                  ~series_every_ms:(if baton then series_every else 0.)
                  ~profile:(baton && profile) ~heat:(baton && heat)
                  ~fault_schedule ~oracle ~n:nodes ~mix ()
              in
              Printf.eprintf "running %s/%s (n=%d, %d ops)...\n%!" overlay
                mix.Driver.mix_name nodes ops;
              let r = Driver.run cfg in
              print_endline
                (if List.length overlays > 1 then
                   Printf.sprintf "%-10s %s" overlay (Driver.summary r)
                 else Driver.summary r);
              r)
            mixes
        in
        (overlay, reports))
      overlays
  in
  (* One stderr line for the whole invocation — aggregate wall clock
     and engine throughput over the profiled runs — so scale runs are
     legible without parsing the JSON report. *)
  (let profiled =
     List.concat_map
       (fun (_, rs) ->
         List.filter (fun (r : Driver.report) -> r.Driver.wall_ms > 0.) rs)
       sections
   in
   match profiled with
   | [] -> ()
   | rs ->
     let wall =
       List.fold_left (fun a (r : Driver.report) -> a +. r.Driver.wall_ms) 0. rs
     in
     let events =
       List.fold_left
         (fun a (r : Driver.report) ->
           a +. (r.Driver.events_per_s *. r.Driver.wall_ms /. 1000.))
         0. rs
     in
     Printf.eprintf "bench-run: %d runs, wall %.0f ms, %.0f events/s\n%!"
       (List.length rs) wall
       (if wall > 0. then events /. (wall /. 1000.) else 0.));
  (match timeseries_out with
  | None -> ()
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (Driver.timeseries_jsonl sections));
    Printf.eprintf "wrote %s\n" path);
  let doc =
    Baton_obs.Json.to_pretty_string (Driver.bench_json sections) ^ "\n"
  in
  match out with
  | None -> print_string doc
  | Some path ->
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc doc);
    Printf.eprintf "wrote %s\n" path

(* Render a bench-run report's demand sections — ASCII key-space
   heatmap, heavy-hitter table, per-class attribution — from the JSON
   document on disk. Reads v7 documents; runs without a [load] section
   (heat was off) are skipped, and if nothing renders the exit status
   says how to get one. *)
let heat_render path overlay_filter mix_filter =
  let contents =
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> contents
    | exception Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 3
  in
  let doc =
    match Baton_obs.Json.parse contents with
    | Ok doc -> doc
    | Error msg ->
      Printf.eprintf "%s: JSON parse error: %s\n" path msg;
      exit 3
  in
  let module Json = Baton_obs.Json in
  let str = function Some (Json.String s) -> s | _ -> "" in
  let wanted filter name =
    match filter with None -> true | Some f -> String.equal f name
  in
  let overlays =
    match Json.member "overlays" doc with
    | Some (Json.List l) -> l
    | _ ->
      Printf.eprintf
        "%s: no overlays section — not a bench-run document?\n" path;
      exit 3
  in
  let rendered = ref 0 in
  List.iter
    (fun section ->
      let overlay = str (Json.member "overlay" section) in
      let runs =
        match Json.member "runs" section with
        | Some (Json.List l) -> l
        | _ -> []
      in
      if wanted overlay_filter overlay then
        List.iter
          (fun run ->
            let mix = str (Json.member "mix" run) in
            if wanted mix_filter mix then
              match Json.member "load" run with
              | None | Some Json.Null -> ()
              | Some load -> (
                match Baton_obs.Heat.render load with
                | Ok text ->
                  if !rendered > 0 then print_newline ();
                  Printf.printf "=== %s / %s ===\n%s" overlay mix text;
                  incr rendered
                | Error msg ->
                  Printf.eprintf "%s: %s/%s: malformed load section: %s\n"
                    path overlay mix msg;
                  exit 3))
          runs)
    overlays;
  if !rendered = 0 then begin
    Printf.eprintf
      "%s: no load sections%s — generate one with `baton bench-run --heat \
       ...` (heat is on by default for the baton overlay)\n"
      path
      (match (overlay_filter, mix_filter) with
      | None, None -> ""
      | _ -> " matching the requested overlay/mix");
    exit 1
  end

(* Bench regression gate: exact on the simulated sections, tolerance on
   the wall-clock throughput. Exit 0 pass, 1 simulated/schema mismatch
   (behaviour change), 2 throughput regression, 3 unreadable input. *)
let bench_diff old_path new_path max_regress =
  let read path =
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> (
      match Baton_obs.Json.parse contents with
      | Ok doc -> doc
      | Error msg ->
        Printf.eprintf "%s: JSON parse error: %s\n" path msg;
        exit 3)
    | exception Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 3
  in
  let old_doc = read old_path in
  let new_doc = read new_path in
  let verdict =
    Bench_diff.compare ~max_regress_pct:max_regress ~old_doc ~new_doc
  in
  print_endline (Bench_diff.render verdict);
  exit (Bench_diff.exit_code verdict)

(* Route-cache benchmark: sweep Zipf skew and churn, replaying each
   cell's schedule with the cache off then on, and emit the
   BENCH_cache.json document. *)
let bench_cache nodes seed keys_per_node ops span out =
  let module E = Baton_experiments.Exp_cache in
  Printf.eprintf "route-cache sweep: n=%d, %d ops/cell, %d cells...\n%!" nodes
    ops
    (List.length E.thetas + List.length E.churn_rates);
  let cells =
    E.cells ~seed ~n:nodes ~keys_per_node ~ops ~range_span:span ()
  in
  List.iter
    (fun (c : E.cell) ->
      Printf.eprintf
        "  theta %.1f churn %2d%%: hit rate %.2f, reduction %.1f%%, %d \
         stale, %d wrong, %d partial\n%!"
        c.E.theta c.E.churn_pct c.E.hit_rate c.E.reduction_pct c.E.stale
        c.E.wrong_answers c.E.partial)
    cells;
  let doc =
    Baton_obs.Json.to_pretty_string
      (E.bench_json ~seed ~n:nodes ~keys_per_node ~ops ~range_span:span cells)
    ^ "\n"
  in
  match out with
  | None -> print_string doc
  | Some path ->
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc doc);
    Printf.eprintf "wrote %s\n" path

(* Scale sweep: the driver's canonical per-n configuration (read-heavy
   mix, domain widened with n, profiling on) at each requested
   population size; emits the BENCH_scale.json document. *)
let bench_scale ns seed keys_per_node ops clients out =
  let ns = List.sort_uniq compare ns in
  (match ns with
  | [] ->
    Printf.eprintf "bench-scale: empty --ns list\n";
    exit 2
  | _ -> ());
  List.iter
    (fun n ->
      if n < 2 then begin
        Printf.eprintf "bench-scale: n must be >= 2 (got %d)\n" n;
        exit 2
      end)
    ns;
  let t0 = Baton_obs.Profile.now_ms () in
  let reports =
    Driver.run_scale ~seed ~keys_per_node ~ops ~clients
      ~progress:(fun r -> Printf.eprintf "%s\n%!" (Driver.summary r))
      ns
  in
  Printf.eprintf "bench-scale: %d points (n=%d..%d) in %.1f s\n%!"
    (List.length ns) (List.hd ns)
    (List.nth ns (List.length ns - 1))
    ((Baton_obs.Profile.now_ms () -. t0) /. 1000.);
  let doc =
    Baton_obs.Json.to_pretty_string (Driver.scale_json reports) ^ "\n"
  in
  match out with
  | None -> print_string doc
  | Some path ->
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc doc);
    Printf.eprintf "wrote %s\n" path

let ops_arg =
  Arg.(value & opt int 500 & info [ "ops" ] ~docv:"K" ~doc:"Operations per phase.")

let compare_cmd =
  let doc = "Run the same workload on every registered overlay." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const compare_overlays $ nodes_arg $ seed_arg $ ops_arg)

let key_arg =
  Arg.(
    value & opt int 123_456_789
    & info [ "key" ] ~docv:"KEY" ~doc:"Key to trace a query for.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Emit the trace as JSONL span events instead of prose.")

let causal_arg =
  Arg.(
    value & flag
    & info [ "causal" ]
        ~doc:
          "Trace a seeded range query under the concurrent runtime as a \
           causal tree: per-hop trace contexts, link-kind and per-level \
           breakdowns, and the critical path vs. the total message count. \
           With $(b,--json), emits deterministic JSONL (one hop per line \
           plus a closing analysis line).")

let trace_cmd =
  let doc =
    "Trace a query hop by hop — or, with $(b,--causal), as a causal tree \
     with critical-path extraction."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const trace $ nodes_arg $ seed_arg $ key_arg $ json_arg $ causal_arg)

let churn_rounds_arg =
  Arg.(
    value & opt int 50
    & info [ "churn" ] ~docv:"R" ~doc:"Join/leave rounds to include in the workload.")

let stats_snapshot_arg =
  Arg.(
    value & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:
          "Run the workload on a network loaded from FILE instead of \
           building one. Exits nonzero if FILE holds an incompatible \
           snapshot version.")

let stats_cmd =
  let doc =
    "Run a mixed workload under the telemetry recorder and report \
     p50/p95/p99/max hop counts and message costs per operation kind, \
     plus per-node load gauges."
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const stats $ nodes_arg $ seed_arg $ keys_arg $ queries_arg
      $ churn_rounds_arg $ stats_snapshot_arg)

let simulate_cmd =
  let doc = "Build a network, load data, answer queries, report message costs." in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(
      const simulate $ nodes_arg $ seed_arg $ keys_arg $ queries_arg $ zipf_arg
      $ capacity_arg)

let rounds_arg =
  Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"R" ~doc:"Churn rounds.")

let fail_arg =
  Arg.(
    value & opt int 10
    & info [ "fail-percent" ] ~docv:"P" ~doc:"Percentage of rounds that are failures.")

let churn_cmd =
  let doc = "Run a churn schedule (joins, leaves, failures) and verify recovery." in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(const churn $ nodes_arg $ seed_arg $ rounds_arg $ fail_arg)

let tree_arg =
  Arg.(value & flag & info [ "tree" ] ~doc:"Render the tree (depth-limited).")

let snapshot_arg =
  Arg.(
    value & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:"Load the network from FILE if it exists, else build and save it there.")

let bench_ops_arg =
  Arg.(
    value & opt int 2000
    & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per mix.")

let clients_arg =
  Arg.(
    value & opt int 32
    & info [ "clients" ] ~docv:"C" ~doc:"Closed-loop client fibers.")

let overlay_arg =
  Arg.(
    value & opt_all string []
    & info [ "overlay" ] ~docv:"NAME"
        ~doc:
          "Overlay to drive (baton, chord, multiway, skip-graph) or \
           $(b,all); repeatable — the report carries one section per \
           overlay, same seeded plan and message accounting for each. \
           Default: baton. Non-baton overlays execute sequentially with \
           the message count as virtual time; monitoring, time series, \
           profiling, $(b,--route-cache) and $(b,--faults) are \
           baton-runtime-only. Unknown names exit 1 listing the valid \
           ones.")

let mix_arg =
  Arg.(
    value & opt_all string []
    & info [ "mix" ] ~docv:"MIX"
        ~doc:
          "Mix to run (read-heavy, range-heavy, churn-heavy); repeatable. \
           Default: all three.")

let arrival_arg =
  Arg.(
    value & opt string "closed"
    & info [ "arrival" ] ~docv:"MODEL"
        ~doc:"Arrival model: closed (clients loop) or open (Poisson).")

let rate_arg =
  Arg.(
    value & opt float 200.
    & info [ "rate" ] ~docv:"OPS/S"
        ~doc:"Aggregate arrival rate for the open-loop model.")

let think_arg =
  Arg.(
    value & opt float 0.
    & info [ "think-ms" ] ~docv:"MS"
        ~doc:"Closed-loop think time between a client's operations.")

let route_cache_arg =
  Arg.(
    value & flag
    & info [ "route-cache" ]
        ~doc:
          "Enable the adaptive route cache before the measured phase. Cache \
           probe traffic is reported apart from protocol messages.")

let out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the JSON document to FILE instead of stdout.")

let monitor_every_arg =
  Arg.(
    value & opt float 2000.
    & info [ "monitor-every" ] ~docv:"MS"
        ~doc:
          "Health-monitor sampling period in virtual milliseconds; the \
           report's $(b,health) section carries the resulting invariant \
           time series and ok/degraded/violated events. 0 disables \
           monitoring and leaves $(b,health) null. On by default (2000).")

let series_every_arg =
  Arg.(
    value & opt float 1000.
    & info [ "series-every" ] ~docv:"MS"
        ~doc:
          "Time-series sampling period in virtual milliseconds; each tick \
           records deterministic progress counters (completed ops, message \
           deltas, fiber/queue gauges, monitor rank) into the report's \
           $(b,timeseries) section. 0 disables sampling and leaves \
           $(b,timeseries) null. On by default (1000).")

let profile_arg =
  Arg.(
    value & opt bool true
    & info [ "profile" ] ~docv:"BOOL"
        ~doc:
          "Meter the simulator process itself during the measured phase: \
           per-subsystem wall-clock, GC deltas and raw engine-event \
           throughput land in the report's $(b,profile) section. \
           Metrics-neutral but inherently non-deterministic — pass \
           $(b,--profile=false) for byte-comparable same-seed output \
           ($(b,profile) becomes null).")

let heat_flag_arg =
  Arg.(
    value & opt bool true
    & info [ "heat" ] ~docv:"BOOL"
        ~doc:
          "Install the demand-heat instrument for the measured phase: \
           per-peer serve/route/maint/aux load attribution, a top-k \
           heavy-hitter sketch over accessed keys and a key-space heat \
           histogram land in each run's $(b,load) section (rendered by \
           $(b,baton heat)). Deterministic and metrics-neutral: heat on \
           vs. off leaves every other field byte-identical. Baton-only; \
           pass $(b,--heat=false) to omit the section. On by default.")

let timeseries_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "timeseries-out" ] ~docv:"FILE"
        ~doc:
          "Also write the sampled time series as JSONL (one overlay- and \
           mix-tagged sample object per line) to FILE — the artifact CI \
           uploads.")

let faults_arg =
  Arg.(
    value & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Inject an adversarial fault schedule into the measured phase: \
           ';'-separated $(b,partition@AT+DUR:k=K[,oneway]), \
           $(b,subtree@AT[:roots=R]) and \
           $(b,gray@AT+DUR:peers=P[,drop=D][,slow=S]) entries, times in \
           virtual milliseconds. Implies $(b,--oracle). Example: \
           'partition@2000+3000:k=2;subtree@6000;gray@1000+5000:peers=5'.")

let oracle_arg =
  Arg.(
    value & flag
    & info [ "oracle" ]
        ~doc:
          "Replay every completed operation against the consistency oracle \
           (stale reads, phantoms, false-complete ranges, broken tiling); \
           the report's $(b,oracle) section carries verdict counts and \
           trace-evidenced violation details.")

let bench_run_cmd =
  let doc =
    "Run the workload driver: seeded operation mixes execute as interleaved \
     fibers on the discrete-event runtime (baton) or sequentially on any \
     registered comparison overlay ($(b,--overlay)); reports per-overlay \
     sections of virtual-time throughput, per-kind latency percentiles and \
     queue depths as JSON — plus oracle verdicts and fault-scenario \
     accounting when enabled. Deterministic: same seed, byte-identical \
     output."
  in
  Cmd.v (Cmd.info "bench-run" ~doc)
    Term.(
      const bench_run $ nodes_arg $ seed_arg $ keys_arg $ bench_ops_arg
      $ clients_arg $ overlay_arg $ mix_arg $ arrival_arg $ rate_arg
      $ think_arg $ route_cache_arg $ monitor_every_arg $ series_every_arg
      $ profile_arg $ heat_flag_arg $ faults_arg $ oracle_arg $ out_arg
      $ timeseries_out_arg)

let heat_report_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"REPORT.json"
        ~doc:"A bench-run document containing $(b,load) sections.")

let heat_overlay_arg =
  Arg.(
    value & opt (some string) None
    & info [ "overlay" ] ~docv:"NAME"
        ~doc:"Render only this overlay's runs. Default: every overlay.")

let heat_mix_arg =
  Arg.(
    value & opt (some string) None
    & info [ "mix" ] ~docv:"MIX"
        ~doc:"Render only this mix's run. Default: every run.")

let heat_cmd =
  let doc =
    "Render the demand sections of a bench-run report: an ASCII key-space \
     heatmap, the heavy-hitter top-k table and the per-class \
     (serve/route/maint/aux) attribution summary, one block per run that \
     carried heat instrumentation. Exits 1 when the document has no \
     $(b,load) sections (re-run $(b,bench-run) with $(b,--heat))."
  in
  Cmd.v (Cmd.info "heat" ~doc)
    Term.(const heat_render $ heat_report_arg $ heat_overlay_arg $ heat_mix_arg)

let bench_diff_old_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"OLD.json" ~doc:"Baseline bench document.")

let bench_diff_new_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"NEW.json" ~doc:"Candidate bench document.")

let max_regress_arg =
  Arg.(
    value & opt float 50.
    & info [ "max-regress" ] ~docv:"PCT"
        ~doc:
          "Allowed drop in each run's $(b,profile.events_per_s) relative to \
           the baseline, in percent. Simulated metrics are never subject to \
           a tolerance — they must match exactly.")

let bench_diff_cmd =
  let doc =
    "Compare two bench-run documents as a regression gate: every simulated \
     (seed-deterministic) field must match byte-exactly — any drift is a \
     behaviour change — while wall-clock event throughput inside the \
     $(b,profile) sections may regress up to $(b,--max-regress) percent. \
     Exit status: 0 pass, 1 schema/simulated mismatch, 2 throughput \
     regression, 3 unreadable input."
  in
  Cmd.v (Cmd.info "bench-diff" ~doc)
    Term.(
      const bench_diff $ bench_diff_old_arg $ bench_diff_new_arg
      $ max_regress_arg)

let cache_nodes_arg =
  Arg.(
    value & opt int 300 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Network size.")

let cache_ops_arg =
  Arg.(
    value & opt int 2400
    & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per sweep cell.")

let cache_keys_arg =
  Arg.(
    value & opt int 10
    & info [ "keys-per-node" ] ~docv:"K" ~doc:"Data volume per peer.")

let span_arg =
  Arg.(
    value & opt int 2_000_000
    & info [ "range-span" ] ~docv:"SPAN" ~doc:"Width of range queries.")

let bench_cache_cmd =
  let doc =
    "Measure the adaptive route cache: replay one seeded workload per cell \
     with the cache disabled then enabled, sweeping Zipf skew at zero churn \
     and churn at theta 0.9; every answer is oracle-checked and the JSON \
     document is byte-identical for the same seed."
  in
  Cmd.v (Cmd.info "bench-cache" ~doc)
    Term.(
      const bench_cache $ cache_nodes_arg $ seed_arg $ cache_keys_arg
      $ cache_ops_arg $ span_arg $ out_arg)

let scale_ns_arg =
  Arg.(
    value
    & opt (list int) [ 1000; 10_000; 100_000 ]
    & info [ "ns" ] ~docv:"N,N,..."
        ~doc:
          "Population sizes to sweep, comma-separated. Default \
           1000,10000,100000.")

let scale_keys_arg =
  Arg.(
    value & opt int 2
    & info [ "keys-per-node" ] ~docv:"K"
        ~doc:"Data volume per peer at each point.")

let scale_ops_arg =
  Arg.(
    value & opt int 2000
    & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per point.")

let bench_scale_cmd =
  let doc =
    "Sweep the population size: at each $(b,--ns) point, build the tree \
     over a domain widened with n, bulk-load it and run the driver's \
     read-heavy measured phase profiled — raw engine throughput \
     (events/s) is reported per n. Simulated metrics are \
     seed-deterministic, so the emitted document gates with \
     $(b,bench-diff) against a committed BENCH_scale.json baseline \
     exactly like the runtime bench."
  in
  Cmd.v (Cmd.info "bench-scale" ~doc)
    Term.(
      const bench_scale $ scale_ns_arg $ seed_arg $ scale_keys_arg
      $ scale_ops_arg $ clients_arg $ out_arg)

let inspect_cmd =
  let doc = "Print the structure of a network (freshly built or from a snapshot)." in
  Cmd.v (Cmd.info "inspect" ~doc)
    Term.(const inspect $ nodes_arg $ seed_arg $ tree_arg $ snapshot_arg)

let main =
  let doc = "BATON: balanced tree overlay simulator (VLDB 2005 reproduction)" in
  Cmd.group (Cmd.info "baton" ~doc)
    [
      simulate_cmd; churn_cmd; inspect_cmd; trace_cmd; stats_cmd; compare_cmd;
      bench_run_cmd; bench_cache_cmd; bench_scale_cmd; bench_diff_cmd;
      heat_cmd;
    ]

let () = exit (Cmd.eval main)
