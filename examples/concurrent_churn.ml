(* Queries racing churn on the concurrent runtime.

   The discrete-event runtime executes protocol operations as fibers
   that suspend at every message hop, so queries from many clients and
   a stream of joins/leaves interleave at message granularity — the
   concurrency regime the paper assumes but a synchronous simulator
   cannot exhibit. A query can start while a leave is mid-flight and
   still finish: the routing layer tolerates the staleness, at worst
   paying retries or (rarely) failing, and the driver just counts the
   casualty.

   Run with: dune exec examples/concurrent_churn.exe *)

module Runtime = Baton_runtime.Runtime
module Timing = Baton_obs.Timing
module Metrics = Baton_sim.Metrics
module Rng = Baton_util.Rng
module Net = Baton.Net

let () =
  let net = Baton.Network.build ~seed:17 200 in
  let rng = Rng.create 3 in
  let keys = Array.init 1_000 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (Baton.Network.insert net) keys;
  Printf.printf "200 peers up, %d keys indexed\n" (Array.length keys);

  let rt = Runtime.create net in
  let metrics = Net.metrics net in
  let cp = Metrics.checkpoint metrics in
  let completed = ref 0 and failed = ref 0 in
  let latency = Timing.create () in

  (* Membership changes serialize through a lock (the paper assumes
     the protocol serializes concurrent joins); queries never touch
     it, so they race the churn freely. *)
  let membership = Runtime.Lock.create () in
  let churn () =
    for _ = 1 to 40 do
      Runtime.Lock.with_lock membership (fun () ->
          ignore (Baton.Network.join net);
          if Net.size net > 2 then
            Baton.Network.leave net (Rng.pick rng (Net.live_ids net)));
      Runtime.sleep 50.
    done
  in
  Runtime.spawn rt churn ~on_done:(fun _ -> ());

  (* 16 closed-loop clients: exact lookups, with an occasional range
     query whose two directional sweeps fork in parallel. *)
  let par l r = Runtime.both l r in
  let client c () =
    for i = 1 to 50 do
      let started = Runtime.now rt in
      match
        if (c + i) mod 10 = 0 then
          let lo = Rng.int_in_range rng ~lo:1 ~hi:900_000_000 in
          ignore
            (Baton.Search.range ~par net ~from:(Net.random_peer net) ~lo
               ~hi:(lo + 40_000_000))
        else ignore (Baton.Search.lookup net ~from:(Net.random_peer net) (Rng.pick rng keys))
      with
      | () ->
        incr completed;
        Timing.add latency (Runtime.now rt -. started)
      | exception _ -> incr failed
    done
  in
  for c = 1 to 16 do
    Runtime.spawn rt (client c) ~on_done:(fun _ -> ())
  done;

  Runtime.run rt;
  Printf.printf "virtual time %.1f s; 40 churn rounds interleaved with queries\n"
    (Runtime.now rt /. 1000.);
  Printf.printf "queries: %d completed, %d retried sends, %d failed\n" !completed
    (Metrics.event_since metrics cp Baton.Msg.ev_retry)
    !failed;
  Printf.printf "latency: p50 %.0f ms, p99 %.0f ms, max %.0f ms\n"
    (Timing.percentile latency 50.)
    (Timing.percentile latency 99.)
    (Timing.max_ms latency);
  Printf.printf "busiest peer queue depth: %d in-flight messages\n"
    (Runtime.queue_depth_max rt);

  (* Queries that rebuilt links while a join was mid-flight may have
     cached ranges that the join then split — staleness the routing
     layer tolerates (every key above was still found). A table-refresh
     sweep, the lazy repair every peer runs, restores the strict
     invariants; it pays ordinary messages. *)
  let cp = Metrics.checkpoint metrics in
  List.iter
    (fun p -> Baton.Wiring.rebuild_links net p ~kind:Baton.Msg.repair)
    (Net.peers net);
  Printf.printf "table refresh sweep: %d messages\n" (Metrics.since metrics cp);
  Baton.Check.all net;
  print_endline "structural invariants hold after the dust settles"
