(* Churn resilience: peers keep joining, leaving and crashing while
   clients keep querying — Section III-C/D of the paper in action.

   The example runs waves of churn. Within each wave some peers crash
   abruptly; queries issued before the repairs route around the dead
   peers by dropping stale links and reconstituting them through the
   surviving neighbourhood, then repairs restore the full invariants.

   Run with: dune exec examples/churn_resilience.exe *)

module Net = Baton.Net
module Metrics = Baton_sim.Metrics
module Rng = Baton_util.Rng

let () =
  let net = Baton.Network.build ~seed:21 300 in
  let rng = Rng.create 5 in
  let keys = Array.init 2_000 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (Baton.Network.insert net) keys;
  Printf.printf "initial: %d peers, %d keys indexed\n" (Baton.Network.size net)
    (Array.length keys);

  let m = Net.metrics net in
  for wave = 1 to 5 do
    (* Churn: joins and graceful leaves. *)
    for _ = 1 to 10 do
      ignore (Baton.Network.join net);
      let ids = Net.live_ids net in
      Baton.Network.leave net (Rng.pick rng ids)
    done;
    (* Crashes: abrupt departures, not yet repaired. *)
    let victims =
      List.init 5 (fun _ -> Rng.pick rng (Net.live_ids net)) |> List.sort_uniq compare
    in
    List.iter (fun id -> Baton.Network.crash net id) victims;
    (* Clients keep querying while the failures are unrepaired: the
       sideways and adjacency links route around the holes. Keys that
       lived on crashed peers are lost (the paper does not replicate). *)
    let cp = Metrics.checkpoint m in
    let asked = ref 0 and answered = ref 0 in
    for _ = 1 to 200 do
      let k = Rng.pick rng keys in
      incr asked;
      match Baton.Search.lookup net ~from:(Net.random_peer net) k with
      | { Baton.Search.found = true; _ } -> incr answered
      | { Baton.Search.found = false; _ } -> ()
      | exception _ -> ()
    done;
    let during = Metrics.since m cp in
    (* Now the failures are discovered and repaired. *)
    List.iter (fun id -> Baton.Network.repair net id) victims;
    let repair_msgs = Metrics.since m cp - during in
    Baton.Check.all net;
    Printf.printf
      "wave %d: %d crashed; %3d/%3d queries answered mid-failure \
       (%.1f msg/query); repairs cost %d messages; invariants restored\n"
      wave (List.length victims) !answered !asked
      (float_of_int during /. 200.)
      repair_msgs
  done;

  let survivors =
    Array.to_list keys |> List.filter (Baton.Network.lookup net) |> List.length
  in
  Printf.printf
    "final: %d peers; %d/%d keys survive (crashed peers lose their \
     unreplicated data)\n"
    (Baton.Network.size net) survivors (Array.length keys)
