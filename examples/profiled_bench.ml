(* A monitored, profiled driver run — where the simulator spends its
   own time.

   Everything the repository measures elsewhere lives on the virtual
   clock: message counts, simulated latency, health samples. This
   example turns the instruments around and meters the simulator
   process itself: the driver wires a Profile into the engine's
   dispatch loop, the bus delivery path and the protocol hot regions
   (search, restructure, repair), then prints the per-subsystem
   wall-clock table next to the simulated summary. The profiler is a
   pure observer of the machine — rerun this with [~profile:false] and
   the simulated numbers do not move by a byte; only the table
   disappears.

   Run with: dune exec examples/profiled_bench.exe *)

module Driver = Baton_runtime.Driver
module Series = Baton_obs.Series
module Json = Baton_obs.Json

let () =
  let cfg =
    Driver.config ~seed:2005 ~n:300 ~ops:1500 ~clients:32
      ~monitor_every_ms:2000. ~series_every_ms:1000. ~profile:true
      ~mix:Driver.churn_heavy ()
  in
  Printf.printf "running %s: n=%d, %d ops, %d clients...\n%!"
    cfg.Driver.mix.Driver.mix_name cfg.Driver.n cfg.Driver.ops
    cfg.Driver.clients;
  let r = Driver.run cfg in

  (* The simulated world: virtual-clock throughput and message costs —
     deterministic, the same every run. *)
  print_endline (Driver.summary r);
  Printf.printf "  %d messages, %d retries, virtual duration %.0f ms\n"
    r.Driver.messages r.Driver.retries r.Driver.duration_ms;
  (match r.Driver.series with
  | Some s ->
    Printf.printf "  time series: %d samples recorded, %d retained\n"
      (Series.recorded s) (Series.retained s)
  | None -> ());

  (* The machine underneath: wall-clock per subsystem — different on
     every host, which is exactly why these numbers live apart from the
     seeded report fields, in the report's "profile" section. *)
  Printf.printf "\nself-profile: %.1f ms wall, %.0f engine events/s\n"
    r.Driver.wall_ms r.Driver.events_per_s;
  Printf.printf "%-18s %10s %12s %8s\n" "subsystem" "calls" "wall ms" "share";
  (match Json.member "subsystems" r.Driver.profile_json with
  | Some (Json.Obj subsystems) ->
    List.iter
      (fun (name, stats) ->
        let num key =
          match Json.member key stats with
          | Some (Json.Float f) -> f
          | Some (Json.Int i) -> float_of_int i
          | _ -> 0.
        in
        Printf.printf "%-18s %10.0f %12.3f %7.1f%%\n" name (num "calls")
          (num "wall_ms")
          (if r.Driver.wall_ms > 0. then num "wall_ms" /. r.Driver.wall_ms *. 100.
           else 0.))
      subsystems
  | _ -> print_endline "(no profile section)");
  (match Json.member "gc" r.Driver.profile_json with
  | Some gc ->
    let int_of key =
      match Json.member key gc with Some (Json.Int i) -> i | _ -> 0
    in
    Printf.printf "gc: %d minor / %d major collections\n"
      (int_of "minor_collections") (int_of "major_collections")
  | None -> ())
