(* Traced query: watch one range query hop through the tree.

   Attaches the span recorder to a small network, runs a single range
   query, and prints the resulting span tree — every bus hop with its
   message kind, nested under the operation that caused it — followed
   by the per-kind digest summary.

   Run with: dune exec examples/traced_query.exe *)

module Recorder = Baton_obs.Recorder
module Export = Baton_obs.Export
module Json = Baton_obs.Json
module Rng = Baton_util.Rng

let () =
  let net = Baton.Network.build ~seed:42 60 in
  let rng = Rng.create 43 in
  for _ = 1 to 300 do
    Baton.Network.insert net (Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
  done;

  (* Everything from here on is recorded: each hop the query makes
     becomes a span event, and the operation's hop/message totals feed
     a per-kind digest. Observing is free — Metrics.total (the paper's
     message count) is identical with or without the recorder. *)
  let recorder = Recorder.create () in
  Baton.Net.set_recorder net (Some recorder);

  let from = Baton.Net.random_peer net in
  let result =
    Baton.Search.range net ~from ~lo:100_000_000 ~hi:350_000_000
  in
  Baton.Net.set_recorder net None;

  Printf.printf "range [1e8, 3.5e8] from node %d: %d keys, %d hops\n\n"
    from.Baton.Node.id
    (List.length result.Baton.Search.keys)
    result.Baton.Search.hops;

  print_string "--- span tree ---------------------------------------\n";
  print_string (Export.span_tree recorder);

  print_string "\n--- digests ----------------------------------------\n";
  print_endline (Json.to_pretty_string (Export.stats_json recorder))
