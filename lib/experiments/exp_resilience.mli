(** Extension (not a paper figure): end-to-end resilience under a
    lossy network with unrepaired crashes.

    Sweeps message-loss rate x crashed-peer fraction on one tree.
    Queries run with the full robustness stack: bounded
    retransmissions on timeout, routing around silent or dead peers
    via alternative links, and suspicion-driven repair initiated by
    the routing peers themselves (no god view). Reports the fraction
    of queries answered, the message cost, and the retry / give-up /
    repair event counts. Deterministic: the same params produce a
    byte-identical table. *)

val losses : int list
val fail_fractions : int list

val run : Params.t -> Table.t
