module Rng = Baton_util.Rng
module Datagen = Baton_workload.Datagen
module Querygen = Baton_workload.Querygen

type point = {
  insert : float;
  delete : float;
  exact : float;
  range : float;
  (* Tail percentiles of per-operation hop counts, filled only when
     [Params.telemetry] attaches a recorder (BATON runs only); the
     mean columns above are computed exactly as before either way. *)
  exact_p95 : float;
  exact_p99 : float;
  range_p95 : float;
  range_p99 : float;
}

let no_tail = { insert = 0.; delete = 0.; exact = 0.; range = 0.;
                exact_p95 = 0.; exact_p99 = 0.; range_p95 = 0.; range_p99 = 0. }

let tail_percentile recorder kind p =
  match Baton_obs.Recorder.digest recorder kind with
  | None -> 0.
  | Some d ->
    let h = Baton_obs.Recorder.digest_hops d in
    if Baton_util.Histogram.total h = 0 then 0.
    else float_of_int (Baton_util.Histogram.percentile h p)

let baton_point ~seed ~n ~(p : Params.t) =
  let net, keys = Common.build_baton ~seed ~n ~keys_per_node:p.Params.keys_per_node () in
  let recorder =
    if p.Params.telemetry then begin
      let r = Baton_obs.Recorder.create () in
      Baton.Net.set_recorder net (Some r);
      Some r
    end
    else None
  in
  let rng = Rng.create (seed + 23) in
  let gen = Datagen.uniform (Rng.create (seed + 29)) in
  let q = p.Params.queries in
  let inserts =
    Array.init q (fun _ ->
        let st = Baton.Update.insert net ~from:(Baton.Net.random_peer net) (Datagen.next gen) in
        float_of_int st.Baton.Update.hops)
  in
  let targets = Querygen.exact_targets rng ~keys q in
  let deletes =
    Array.map
      (fun k ->
        let st = Baton.Update.delete net ~from:(Baton.Net.random_peer net) k in
        float_of_int st.Baton.Update.hops)
      targets
  in
  let exacts =
    Array.map
      (fun k ->
        let r = Baton.Search.lookup net ~from:(Baton.Net.random_peer net) k in
        float_of_int r.Baton.Search.hops)
      (Querygen.exact_targets rng ~keys q)
  in
  let spans =
    Querygen.ranges rng ~span:p.Params.range_span ~lo:Datagen.domain_lo
      ~hi:(Datagen.domain_hi - 1) q
  in
  let ranges =
    Array.map
      (fun { Querygen.lo; hi } ->
        let r = Baton.Search.range net ~from:(Baton.Net.random_peer net) ~lo ~hi in
        float_of_int r.Baton.Search.hops)
      spans
  in
  let module S = Baton_util.Stats in
  let tail kind p =
    match recorder with None -> 0. | Some r -> tail_percentile r kind p
  in
  Baton.Net.set_recorder net None;
  { insert = S.mean inserts; delete = S.mean deletes; exact = S.mean exacts;
    range = S.mean ranges;
    exact_p95 = tail Baton_obs.Span.exact 95.;
    exact_p99 = tail Baton_obs.Span.exact 99.;
    range_p95 = tail Baton_obs.Span.range 95.;
    range_p99 = tail Baton_obs.Span.range 99. }

let chord_point ~seed ~n ~(p : Params.t) =
  let t, keys = Common.build_chord ~seed ~n ~keys_per_node:p.Params.keys_per_node in
  let rng = Rng.create (seed + 23) in
  let gen = Datagen.uniform (Rng.create (seed + 29)) in
  let q = p.Params.queries in
  let inserts = Array.init q (fun _ -> float_of_int (Chord.insert t (Datagen.next gen))) in
  let deletes =
    Array.map (fun k -> float_of_int (Chord.delete t k)) (Querygen.exact_targets rng ~keys q)
  in
  let exacts =
    Array.map
      (fun k -> float_of_int (snd (Chord.lookup t k)))
      (Querygen.exact_targets rng ~keys q)
  in
  let module S = Baton_util.Stats in
  { no_tail with
    insert = S.mean inserts; delete = S.mean deletes; exact = S.mean exacts;
    range = float_of_int (Chord.range_scan_cost t) }

let multiway_point ~seed ~n ~(p : Params.t) =
  let t, keys = Common.build_multiway ~seed ~n ~keys_per_node:p.Params.keys_per_node in
  let rng = Rng.create (seed + 23) in
  let gen = Datagen.uniform (Rng.create (seed + 29)) in
  let q = p.Params.queries in
  let inserts = Array.init q (fun _ -> float_of_int (Multiway.insert t (Datagen.next gen))) in
  let deletes =
    Array.map
      (fun k -> float_of_int (snd (Multiway.delete t k)))
      (Querygen.exact_targets rng ~keys q)
  in
  let exacts =
    Array.map
      (fun k -> float_of_int (snd (Multiway.lookup t k)))
      (Querygen.exact_targets rng ~keys q)
  in
  let spans =
    Querygen.ranges rng ~span:p.Params.range_span ~lo:Datagen.domain_lo
      ~hi:(Datagen.domain_hi - 1) q
  in
  let ranges =
    Array.map
      (fun { Querygen.lo; hi } -> float_of_int (snd (Multiway.range_query t ~lo ~hi)))
      spans
  in
  let module S = Baton_util.Stats in
  { no_tail with
    insert = S.mean inserts; delete = S.mean deletes; exact = S.mean exacts;
    range = S.mean ranges }

let run (p : Params.t) =
  let points =
    List.map
      (fun n ->
        let samples =
          List.init p.Params.repeats (fun r ->
              let seed = p.Params.seed + (r * 1013) in
              ( baton_point ~seed ~n ~p,
                chord_point ~seed ~n ~p,
                multiway_point ~seed ~n ~p ))
        in
        let avg f = Common.mean (List.map f samples) in
        ( n,
          (avg (fun (b, _, _) -> b.insert), avg (fun (_, c, _) -> c.insert),
           avg (fun (_, _, m) -> m.insert)),
          (avg (fun (b, _, _) -> b.delete), avg (fun (_, c, _) -> c.delete),
           avg (fun (_, _, m) -> m.delete)),
          (avg (fun (b, _, _) -> b.exact), avg (fun (_, c, _) -> c.exact),
           avg (fun (_, _, m) -> m.exact)),
          (avg (fun (b, _, _) -> b.range), avg (fun (_, c, _) -> c.range),
           avg (fun (_, _, m) -> m.range)),
          (avg (fun (b, _, _) -> b.exact_p95), avg (fun (b, _, _) -> b.exact_p99)),
          (avg (fun (b, _, _) -> b.range_p95), avg (fun (b, _, _) -> b.range_p99)) ))
      p.Params.sizes
  in
  let f = Table.cell_float and i = Table.cell_int in
  (* The telemetry columns ride alongside the paper's means; they exist
     only when a recorder was attached, so the default tables are
     byte-identical to the pre-telemetry ones. *)
  let tail cols = if p.Params.telemetry then cols else [] in
  let fig8c =
    Table.make ~id:"fig8c" ~title:"Messages per insert and delete operation"
      ~header:
        [ "N"; "baton ins"; "chord ins"; "mtree ins"; "baton del"; "chord del";
          "mtree del" ]
      (List.map
         (fun (n, (bi, ci, mi), (bd, cd, md), _, _, _, _) ->
           [ i n; f bi; f ci; f mi; f bd; f cd; f md ])
         points)
  in
  let fig8d =
    Table.make ~id:"fig8d" ~title:"Messages per exact-match query"
      ~header:([ "N"; "baton"; "chord"; "mtree" ] @ tail [ "baton p95"; "baton p99" ])
      (List.map
         (fun (n, _, _, (b, c, m), _, (p95, p99), _) ->
           [ i n; f b; f c; f m ] @ tail [ f p95; f p99 ])
         points)
  in
  let fig8e =
    Table.make ~id:"fig8e" ~title:"Messages per range query"
      ~header:
        ([ "N"; "baton"; "mtree"; "chord (full scan)" ]
        @ tail [ "baton p95"; "baton p99" ])
      ~notes:
        [ "Chord hashes keys, so a range query must visit every peer; the \
           column reports that broadcast cost." ]
      (List.map
         (fun (n, _, _, _, (b, c, m), _, (p95, p99)) ->
           [ i n; f b; f m; f c ] @ tail [ f p95; f p99 ])
         points)
  in
  (fig8c, fig8d, fig8e)
