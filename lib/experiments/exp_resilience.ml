module Rng = Baton_util.Rng
module Metrics = Baton_sim.Metrics
module Bus = Baton_sim.Bus

let losses = [ 0; 5; 10; 20 ]
let fail_fractions = [ 0; 10; 20 ]

let run (p : Params.t) =
  let n = List.nth p.Params.sizes (List.length p.Params.sizes - 1) in
  let queries = max 100 (p.Params.queries / 2) in
  (* Build the tree once and snapshot it; every cell of the sweep
     restores a pristine twin, so the cells are independent and the
     whole table is a pure function of the seed. *)
  let snapshot = Filename.temp_file "baton_resilience" ".snap" in
  let keys =
    let net, keys =
      Common.build_baton ~seed:(p.Params.seed + 301) ~n
        ~keys_per_node:p.Params.keys_per_node ()
    in
    Baton.Net.save net snapshot;
    keys
  in
  let cell loss fail =
    let net = Baton.Net.load snapshot in
    let m = Baton.Net.metrics net in
    Bus.set_faults (Baton.Net.bus net)
      ~seed:(p.Params.seed + (101 * loss) + fail)
      ~drop_rate:(float_of_int loss /. 100.)
      ~transient_rate:0. ();
    (* Failures are discovered and repaired only by peers that observe
       them while routing — no god view. *)
    Baton.Net.set_suspicion_repair net true;
    let vrng = Rng.create (p.Params.seed + 303 + (7 * loss) + fail) in
    let victims =
      List.filter
        (fun (node : Baton.Node.t) ->
          (not (Baton.Node.is_root node)) && Rng.int vrng 100 < fail)
        (Baton.Net.peers net)
    in
    List.iter (fun v -> Baton.Failure.crash net v) victims;
    let dead_ranges =
      List.map (fun (v : Baton.Node.t) -> v.Baton.Node.range) victims
    in
    let lost k = List.exists (fun r -> Baton.Range.contains r k) dead_ranges in
    let qrng = Rng.create (p.Params.seed + 307) in
    let cp = Metrics.checkpoint m in
    let asked = ref 0 and answered = ref 0 and stuck = ref 0 in
    for _ = 1 to queries do
      let k = Rng.pick qrng keys in
      if not (lost k) then begin
        incr asked;
        match Baton.Search.lookup net ~from:(Baton.Net.random_peer net) k with
        | { Baton.Search.found = true; _ } -> incr answered
        | { Baton.Search.found = false; _ } -> ()
        | exception Baton.Search.Routing_stuck _ -> incr stuck
        | exception Bus.Unreachable _ -> incr stuck
        | exception Bus.Timeout _ -> incr stuck
      end
    done;
    [
      Table.cell_int loss;
      Table.cell_int fail;
      Table.cell_int (List.length victims);
      Printf.sprintf "%.1f%%"
        (100. *. float_of_int !answered /. float_of_int (max 1 !asked));
      Table.cell_int !stuck;
      Table.cell_float
        (float_of_int (Metrics.since m cp) /. float_of_int (max 1 !asked));
      Table.cell_int (Metrics.event_since m cp Baton.Msg.ev_retry);
      Table.cell_int (Metrics.event_since m cp Baton.Msg.ev_give_up);
      Table.cell_int (Metrics.event_since m cp Baton.Msg.ev_repair_triggered);
    ]
  in
  let rows =
    List.concat_map (fun loss -> List.map (cell loss) fail_fractions) losses
  in
  Sys.remove snapshot;
  Table.make ~id:"resilience"
    ~title:
      "Answered queries under message loss and unrepaired failures \
       (resilient routing + lazy repair)"
    ~header:
      [
        "loss %";
        "down %";
        "peers down";
        "answered";
        "stuck";
        "msgs/query";
        "retries";
        "give-ups";
        "repairs";
      ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers; %d queries per cell targeting keys whose owners \
           survive the initial crashes; bounded retransmissions on timeout; \
           failures repaired only when routing peers observe and convict \
           them (suspicion threshold %d). Every retransmission is a counted \
           message."
          n queries Baton.Failure.suspicion_threshold;
      ]
    rows
