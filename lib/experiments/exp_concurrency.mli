(** Concurrency experiment (extension beyond the paper's figures).

    Two tables: range-query serial hop-sum vs critical-path latency
    under the concurrent runtime (identical message counts, smaller
    clock), and workload-driver throughput for the three canonical
    mixes. *)

val run : Params.t -> Table.t list
