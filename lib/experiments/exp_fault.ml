module Rng = Baton_util.Rng
module Metrics = Baton_sim.Metrics

let run (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let queries = max 50 (p.Params.queries / 4) in
  let fractions = [ 0; 5; 10; 20; 30 ] in
  let rows =
    List.map
      (fun percent ->
        let net, keys =
          Common.build_baton ~seed:(p.Params.seed + 91) ~n
            ~keys_per_node:p.Params.keys_per_node ()
        in
        let rng = Rng.create (p.Params.seed + 93 + percent) in
        let victims =
          List.filter
            (fun (node : Baton.Node.t) ->
              (not (Baton.Node.is_root node)) && Rng.int rng 100 < percent)
            (Baton.Net.peers net)
        in
        List.iter (fun v -> Baton.Failure.crash net v) victims;
        let dead_ranges = List.map (fun (v : Baton.Node.t) -> v.Baton.Node.range) victims in
        let lost k = List.exists (fun r -> Baton.Range.contains r k) dead_ranges in
        let m = Baton.Net.metrics net in
        let asked = ref 0 and answered = ref 0 and hops = ref 0 in
        let qrng = Rng.create (p.Params.seed + 97) in
        for _ = 1 to queries do
          let k = Rng.pick qrng keys in
          if not (lost k) then begin
            incr asked;
            let cp = Metrics.checkpoint m in
            let attempt () =
              match Baton.Search.lookup net ~from:(Baton.Net.random_peer net) k with
              | r -> r.Baton.Search.found
              | exception _ -> false
            in
            if attempt () || attempt () then incr answered;
            hops := !hops + Metrics.since m cp
          end
        done;
        [
          Table.cell_int percent;
          Table.cell_int (List.length victims);
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int !answered /. float_of_int (max 1 !asked));
          Table.cell_float (float_of_int !hops /. float_of_int (max 1 !asked));
        ])
      fractions
  in
  Table.make ~id:"fault-resilience"
    ~title:"Reachability of surviving data under unrepaired mass failure"
    ~header:[ "% failed"; "peers down"; "answered"; "msgs/query" ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers; queries target keys whose owners survive; one \
           client retry allowed; no repairs run."
          n;
      ]
    rows
