let experiments =
  [
    ( "fig8a+fig8b",
      fun p ->
        let a, b = Exp_membership.run p in
        [ a; b ] );
    ( "fig8c+fig8d+fig8e",
      fun p ->
        let c, d, e = Exp_queries.run p in
        [ c; d; e ] );
    ("fig8f", fun p -> [ Exp_access_load.run p ]);
    ( "fig8g+fig8h",
      fun p ->
        let g, h = Exp_balance.run p in
        [ g; h ] );
    ("fig8i", fun p -> [ Exp_dynamics.run p ]);
    (* Extensions beyond the paper's figures. *)
    ("ablation-tables", fun p -> [ Exp_ablation.run p ]);
    ( "fault-resilience+resilience",
      fun p -> [ Exp_fault.run p; Exp_resilience.run p ] );
    ("replication", fun p -> [ Exp_replication.run p ]);
    ( "moving-hotspot+demand-heat",
      fun p -> [ Exp_hotspot.run p; Exp_hotspot.demand p ] );
    ("latency", fun p -> [ Exp_latency.run p ]);
    ("churn-sweep", fun p -> [ Exp_churn_sweep.run p ]);
    ("route-cache", fun p -> [ Exp_cache.run p ]);
    ("concurrency", fun p -> Exp_concurrency.run p);
    ("adversarial", fun p -> [ Exp_adversarial.run p ]);
    ("overlay-matrix", fun p -> Exp_overlay_matrix.run p);
  ]

let run_all ?(on_table = fun _ -> ()) params =
  List.concat_map
    (fun (_, f) ->
      let tables = f params in
      List.iter on_table tables;
      tables)
    experiments

let run_one id params =
  let group_of (name, _) =
    String.split_on_char '+' name |> List.exists (String.equal id)
  in
  let _, f = List.find group_of experiments in
  f params
