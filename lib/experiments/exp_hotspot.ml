module Rng = Baton_util.Rng
module Metrics = Baton_sim.Metrics
module Datagen = Baton_workload.Datagen
module Heat = Baton_obs.Heat

(* Demand attribution under Zipf query sweeps: the measured "what skew
   looks like before we act" baseline for replica-aware routing and
   hotspot shedding (ROADMAP item 2). A heat instrument on the network
   attributes every delivered message (serve vs. route) and sketches
   the heavy hitters; each row is one theta of the sweep over a fresh
   instrument, so the table shows how concentration grows with skew
   while the serve/route split — a property of the tree, not the
   workload — stays put. *)
let demand (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let net = Baton.Network.build ~seed:(p.Params.seed + 7) n in
  let gen_rng = Rng.create (p.Params.seed + 211) in
  let queries = max 200 p.Params.queries in
  (* Queries target a fixed stored-key population by Zipf rank — the
     flash-crowd shape: repeats concentrate on a few concrete keys.
     (Datagen.zipf spreads a hot rank over a splittable neighbourhood,
     which is right for insert load but hides heavy *hitters*.) *)
  let population =
    Array.init (p.Params.keys_per_node * n) (fun _ ->
        Rng.int_in_range gen_rng ~lo:Datagen.domain_lo
          ~hi:(Datagen.domain_hi - 1))
  in
  Array.iter
    (fun k -> ignore (Baton.Update.insert net ~from:(Baton.Net.random_peer net) k))
    population;
  let rows =
    List.map
      (fun theta ->
        let h = Heat.create ~lo:Datagen.domain_lo ~hi:Datagen.domain_hi () in
        Baton.Net.set_heat net (Some h);
        let z = Baton_util.Zipf.create ~n:(Array.length population) ~theta in
        for _ = 1 to queries do
          let key = population.(Baton_util.Zipf.sample z gen_rng - 1) in
          ignore (Baton.Search.lookup net ~from:(Baton.Net.random_peer net) key)
        done;
        Baton.Net.set_heat net None;
        let serve = Heat.class_total h Heat.Serve in
        let route = Heat.class_total h Heat.Route in
        let handled = serve + route in
        let pct c =
          if handled = 0 then "-"
          else Printf.sprintf "%.1f%%" (100. *. float_of_int c /. float_of_int handled)
        in
        let top_guaranteed =
          match Heat.Sketch.entries (Heat.sketch h) with
          | (key, count, err) :: _ ->
            Printf.sprintf "%d (>=%d hits)" key (count - err)
          | [] -> "-"
        in
        [
          Printf.sprintf "%.1f" theta;
          Printf.sprintf "%.3f" (Heat.topk_share h);
          top_guaranteed;
          pct serve;
          pct route;
          Table.cell_float (Heat.skew h);
        ])
      [ 0.5; 0.8; 1.0; 1.2 ]
  in
  Baton.Check.all net;
  Table.make ~id:"demand-heat"
    ~title:"Demand attribution and heavy hitters under Zipf query sweeps"
    ~header:
      [
        "theta"; "top-16 share"; "hottest key"; "serve"; "route";
        "decayed skew";
      ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers, %d exact queries per theta over a fresh heat \
           instrument; top-16 share is the sketch's guaranteed demand \
           fraction, serve/route splits every delivered protocol message, \
           and skew is max/mean of the exponentially-decayed per-peer \
           demand counters. The item-2 baseline: shedding must cut the \
           high-theta skew without moving the message totals."
          n queries;
      ]
    rows

let run (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let capacity = p.Params.balance_capacity in
  let net = Baton.Network.build ~seed:p.Params.seed n in
  let cfg = Baton.Balance.default_config ~capacity in
  let rng = Rng.create (p.Params.seed + 111) in
  let m = Baton.Net.metrics net in
  let wave_volume = capacity * n / 16 in
  let domain = Datagen.domain_hi - Datagen.domain_lo in
  (* Each wave concentrates 80% of its keys in a different 2%-wide
     region of the domain. *)
  let hot_centres = [ 0.15; 0.55; 0.85; 0.30; 0.70 ] in
  let rows =
    List.mapi
      (fun i centre ->
        let hot_lo = Datagen.domain_lo + int_of_float (centre *. float_of_int domain) in
        let hot_width = domain / 50 in
        let cp = Metrics.checkpoint m in
        for _ = 1 to wave_volume do
          let key =
            if Rng.int rng 10 < 8 then hot_lo + Rng.int rng hot_width
            else Rng.int_in_range rng ~lo:Datagen.domain_lo ~hi:(Datagen.domain_hi - 1)
          in
          let st = Baton.Update.insert net ~from:(Baton.Net.random_peer net) key in
          ignore
            (Baton.Balance.maybe_balance net cfg (Baton.Net.peer net st.Baton.Update.node))
        done;
        let balance_msgs =
          Metrics.kind_since m cp Baton.Msg.balance
          + Metrics.kind_since m cp Baton.Msg.restructure
        in
        let max_load =
          List.fold_left (fun acc node -> max acc (Baton.Node.load node)) 0
            (Baton.Net.peers net)
        in
        [
          Table.cell_int (i + 1);
          Printf.sprintf "%.0f%%" (centre *. 100.);
          Table.cell_int max_load;
          Table.cell_float (float_of_int balance_msgs /. float_of_int wave_volume);
        ])
      hot_centres
  in
  Baton.Check.all net;
  Table.make ~id:"moving-hotspot"
    ~title:"Load balancing under a hotspot that moves between waves"
    ~header:[ "wave"; "hot region at"; "max load after wave"; "balance msgs/insert" ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers, capacity %d; each wave inserts %d keys, 80%% of \
           them inside a 2%%-wide hot region that moves."
          n capacity wave_volume;
      ]
    rows
