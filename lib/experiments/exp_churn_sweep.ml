module Rng = Baton_util.Rng
module Metrics = Baton_sim.Metrics
module Datagen = Baton_workload.Datagen

(* Interleave queries with churn at the given events-per-query rate
   (percent): at 100, every query is preceded by one membership
   event. *)
let run_rate ~seed ~n ~queries ~rate_percent =
  let net = Baton.Network.build ~seed n in
  let rng = Rng.create (seed + 131) in
  let gen = Datagen.uniform (Rng.create (seed + 133)) in
  let keys = Array.init (10 * n) (fun _ -> Datagen.next gen) in
  Array.iter (Baton.Network.insert net) keys;
  let m = Baton.Net.metrics net in
  let query_msgs = ref 0 and churn_msgs = ref 0 and churn_events = ref 0 in
  let credit = ref 0 in
  for _ = 1 to queries do
    credit := !credit + rate_percent;
    while !credit >= 100 do
      credit := !credit - 100;
      incr churn_events;
      let cp = Metrics.checkpoint m in
      (if Rng.bool rng then ignore (Baton.Join.join net ~via:(Baton.Net.random_peer net))
       else
         let ids = Baton.Net.live_ids net in
         ignore (Baton.Leave.leave net (Baton.Net.peer net (Rng.pick rng ids))));
      churn_msgs := !churn_msgs + Metrics.since m cp
    done;
    let k = Rng.pick rng keys in
    let cp = Metrics.checkpoint m in
    let r = Baton.Search.lookup net ~from:(Baton.Net.random_peer net) k in
    assert r.Baton.Search.found;
    query_msgs := !query_msgs + Metrics.since m cp
  done;
  Baton.Check.all net;
  ( float_of_int !query_msgs /. float_of_int queries,
    float_of_int !churn_msgs /. float_of_int (max 1 !churn_events),
    !churn_events )

let run (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let queries = p.Params.queries in
  let rows =
    List.map
      (fun rate_percent ->
        let per_query, per_event, events =
          run_rate ~seed:p.Params.seed ~n ~queries ~rate_percent
        in
        [
          Printf.sprintf "%.1f" (float_of_int rate_percent /. 100.);
          Table.cell_int events;
          Table.cell_float per_query;
          Table.cell_float per_event;
        ])
      [ 0; 10; 50; 100; 200 ]
  in
  Table.make ~id:"churn-sweep"
    ~title:"Query cost under steady-state churn"
    ~header:
      [ "churn events/query"; "events"; "msgs/query"; "msgs/churn event" ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers, %d queries; each churn event is a full join or \
           graceful leave including its maintenance."
          n queries;
      ]
    rows
