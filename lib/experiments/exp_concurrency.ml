(* Concurrency experiment: what the discrete-event runtime adds on top
   of the paper's message-count metric.

   Table 1 (fan-out): the same range queries, over the same network
   with the same per-pair latencies, timed two ways — the synchronous
   hop-sum ([Latency.measure], which charges every transmitted message
   sequentially) and the runtime's critical path (the two directional
   sweeps fork into parallel fibers via [Search.range ~par]). The
   message multisets are identical; only the clock differs, so the gap
   between the two rows is exactly the parallelism a range query's
   fan-out exposes.

   Table 2 (throughput): the workload driver under the three canonical
   mixes — closed-loop clients hammering the tree while (in the
   churn-heavy mix) joins and leaves interleave with queries at
   message granularity. *)

module Rng = Baton_util.Rng
module Stats = Baton_util.Stats
module Latency = Baton_sim.Latency
module Metrics = Baton_sim.Metrics
module Timing = Baton_obs.Timing
module Querygen = Baton_workload.Querygen
module Runtime = Baton_runtime.Runtime
module Driver = Baton_runtime.Driver

let summarize label samples msgs =
  [
    label;
    Table.cell_float (Stats.mean samples);
    Table.cell_float (Stats.median samples);
    Table.cell_float (Stats.percentile samples 95.);
    Table.cell_float (Stats.percentile samples 99.);
    Table.cell_int msgs;
  ]

let fanout (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let net, _keys =
    Common.build_baton ~seed:(p.Params.seed + 123) ~n
      ~keys_per_node:p.Params.keys_per_node ()
  in
  let lat = Latency.create ~seed:(p.Params.seed + 121) () in
  let rng = Rng.create (p.Params.seed + 127) in
  (* Size the span relative to N so each query sweeps ~16 peers —
     parallelism only exists when the sweeps have peers to visit. *)
  let span =
    (Baton_workload.Datagen.domain_hi - Baton_workload.Datagen.domain_lo)
    / max 1 n * 16
  in
  let queries =
    Querygen.ranges rng ~span ~lo:Baton_workload.Datagen.domain_lo
      ~hi:(Baton_workload.Datagen.domain_hi - 1)
      p.Params.queries
  in
  (* Fix each query's origin up front so both timings replay the exact
     same walks. *)
  let froms = Array.map (fun _ -> Baton.Net.random_peer net) queries in
  let metrics = Baton.Net.metrics net in
  (* Synchronous: end-to-end latency is the serial sum of the hop
     chain. *)
  let cp = Metrics.checkpoint metrics in
  let serial =
    Array.mapi
      (fun i { Querygen.lo; hi } ->
        let (_ : Baton.Search.result), ms =
          Latency.measure lat (Baton.Net.bus net) (fun () ->
              Baton.Search.range net ~from:froms.(i) ~lo ~hi)
        in
        ms)
      queries
  in
  let serial_msgs = Metrics.since metrics cp in
  (* Concurrent: one fiber per query, run to completion before the
     next starts, so each sample is that query's critical path with no
     cross-query queueing. *)
  let rt = Runtime.create ~latency:lat net in
  let par l r = Runtime.both l r in
  let cp = Metrics.checkpoint metrics in
  let critical = Array.make (Array.length queries) 0. in
  Array.iteri
    (fun i { Querygen.lo; hi } ->
      let started = Runtime.now rt in
      Runtime.spawn rt
        (fun () ->
          ignore
            (Baton.Search.range ~par net ~from:froms.(i) ~lo ~hi
              : Baton.Search.result))
        ~on_done:(fun _ -> critical.(i) <- Runtime.now rt -. started);
      Runtime.run rt)
    queries;
  let par_msgs = Metrics.since metrics cp in
  let speedup =
    let m = Stats.mean critical in
    if m > 0. then Stats.mean serial /. m else 1.
  in
  Table.make ~id:"concurrency-fanout"
    ~title:"Range-query latency: serial hop-sum vs concurrent critical path (ms)"
    ~header:[ "execution"; "mean"; "p50"; "p95"; "p99"; "messages" ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers, %d range queries each spanning ~16 peers; \
           identical queries, origins and per-pair latencies in both rows."
          n p.Params.queries;
        Printf.sprintf
          "Mean critical-path speedup %.2fx from fanning the two \
           directional sweeps out in parallel; message counts are the \
           paper's metric and stay equal."
          speedup;
      ]
    [
      summarize "serial hop-sum" serial serial_msgs;
      summarize "critical path" critical par_msgs;
    ]

let throughput (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let ops = max 100 p.Params.queries in
  let reports =
    List.map
      (fun mix ->
        Driver.run
          (Driver.config ~seed:p.Params.seed
             ~keys_per_node:p.Params.keys_per_node ~ops ~n ~mix ()))
      Driver.mixes
  in
  let pct d q =
    if Timing.count d = 0 then "-"
    else Table.cell_float (Timing.percentile d q)
  in
  let row (r : Driver.report) =
    let exact = List.assoc "exact" r.Driver.latencies in
    let range = List.assoc "range" r.Driver.latencies in
    [
      r.Driver.cfg.Driver.mix.Driver.mix_name;
      Table.cell_int r.Driver.completed;
      Table.cell_int r.Driver.failed;
      Table.cell_float r.Driver.throughput_ops_s;
      pct exact 50.;
      pct exact 99.;
      pct range 50.;
      pct range 99.;
      Table.cell_int r.Driver.depth_max;
    ]
  in
  Table.make ~id:"concurrency-throughput"
    ~title:"Workload driver: closed-loop throughput under canonical mixes"
    ~header:
      [
        "mix"; "ok"; "failed"; "ops/s"; "exact p50"; "exact p99";
        "range p50"; "range p99"; "depth max";
      ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers, %d ops per mix, 32 closed-loop clients, Zipf \
           theta 1.0; ops/s is virtual-time throughput; depth max is the \
           busiest peer's in-flight high-water mark."
          n ops;
      ]
    (List.map row reports)

let run p = [ fanout p; throughput p ]
