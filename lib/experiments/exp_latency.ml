module Rng = Baton_util.Rng
module Stats = Baton_util.Stats
module Latency = Baton_sim.Latency
module Querygen = Baton_workload.Querygen

let summarize label samples =
  [
    label;
    Table.cell_float (Stats.mean samples);
    Table.cell_float (Stats.median samples);
    Table.cell_float (Stats.percentile samples 95.);
    Table.cell_float (Stats.percentile samples 99.);
  ]

let run (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let queries = p.Params.queries in
  let lat = Latency.create ~seed:(p.Params.seed + 121) () in
  (* BATON *)
  let net, keys =
    Common.build_baton ~seed:(p.Params.seed + 123) ~n
      ~keys_per_node:p.Params.keys_per_node ()
  in
  let rng = Rng.create (p.Params.seed + 125) in
  let baton_samples =
    Array.map
      (fun k ->
        let (_ : Baton.Search.result), ms =
          Latency.measure lat (Baton.Net.bus net) (fun () ->
              Baton.Search.lookup net ~from:(Baton.Net.random_peer net) k)
        in
        ms)
      (Querygen.exact_targets rng ~keys queries)
  in
  (* BATON range queries: latency for a multi-peer answer. *)
  let range_samples =
    Array.map
      (fun { Querygen.lo; hi } ->
        let (_ : Baton.Search.result), ms =
          Latency.measure lat (Baton.Net.bus net) (fun () ->
              Baton.Search.range net ~from:(Baton.Net.random_peer net) ~lo ~hi)
        in
        ms)
      (Querygen.ranges rng ~span:p.Params.range_span
         ~lo:Baton_workload.Datagen.domain_lo
         ~hi:(Baton_workload.Datagen.domain_hi - 1)
         queries)
  in
  (* Chord *)
  let chord, ckeys =
    Common.build_chord ~seed:(p.Params.seed + 123) ~n
      ~keys_per_node:p.Params.keys_per_node
  in
  let crng = Rng.create (p.Params.seed + 125) in
  let chord_samples =
    Array.map
      (fun k ->
        let (_ : bool * int), ms =
          Latency.measure lat (Chord.bus chord) (fun () -> Chord.lookup chord k)
        in
        ms)
      (Querygen.exact_targets crng ~keys:ckeys queries)
  in
  Table.make ~id:"latency"
    ~title:"End-to-end query latency under a heavy-tailed link model (ms)"
    ~header:[ "operation"; "mean"; "p50"; "p95"; "p99" ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers; per-link latency = 20ms + Exp(60ms), fixed per pair."
          n;
      ]
    [
      summarize "baton exact" baton_samples;
      summarize "baton range" range_samples;
      summarize "chord exact" chord_samples;
    ]
