(* Route-cache effectiveness: the same pre-generated workload executed
   twice from the same seed — once with the cache disabled, once
   enabled — so the message difference is attributable to the cache
   alone. Every run is checked against a flat oracle: a cached shortcut
   is never allowed to change an answer, only its cost. *)

module Rng = Baton_util.Rng
module Metrics = Baton_sim.Metrics
module Datagen = Baton_workload.Datagen
module Net = Baton.Net
module Msg = Baton.Msg

type op =
  | Lookup of int
  | Range of int * int
  | Insert of int

type cell = {
  theta : float;
  churn_pct : int;
  ops : int;
  hits : int;
  misses : int;
  stale : int;
  hit_rate : float;
  base_msgs : int;  (** protocol messages, cache disabled *)
  cache_msgs : int;  (** protocol messages, cache enabled *)
  aux_msgs : int;  (** probe/invalidation traffic, cache enabled *)
  reduction_pct : float;
      (** (base - (cache + aux)) / base — the cache pays for its own
          bookkeeping traffic before claiming any saving *)
  wrong_answers : int;
  partial : int;
}

(* Zipf(theta) rank sampler over the loaded keys: rank 1 is the hottest
   key. The CDF is precomputed so sampling is a binary search. *)
let zipf_picker rng ~theta keys =
  let n = Array.length keys in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. (float_of_int (i + 1) ** theta));
    cdf.(i) <- !acc
  done;
  let total = !acc in
  fun () ->
    let u = Rng.float rng total in
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    keys.(!lo)

(* One deterministic operation schedule per cell, shared verbatim by
   the baseline and the cached run: 80% exact lookups on Zipf-ranked
   keys, 10% ranges anchored at a hot key, 10% fresh inserts. *)
let gen_schedule ~seed ~theta ~ops ~keys ~range_span =
  let rng = Rng.create (seed + 223) in
  let pick = zipf_picker rng ~theta keys in
  let fresh = Datagen.uniform (Rng.create (seed + 229)) in
  Array.init ops (fun _ ->
      let d = Rng.int rng 100 in
      if d < 80 then Lookup (pick ())
      else if d < 90 then
        let lo = pick () in
        Range (lo, lo + range_span)
      else Insert (Datagen.next fresh))

(* Multiset oracle mirroring the stores' contents. *)
let truth_add truth k =
  Hashtbl.replace truth k (1 + Option.value ~default:0 (Hashtbl.find_opt truth k))

let truth_range truth lo hi =
  Hashtbl.fold
    (fun k c acc -> if k >= lo && k <= hi then List.init c (fun _ -> k) @ acc else acc)
    truth []
  |> List.sort compare

type run = {
  msgs : int;
  aux : int;
  r_hits : int;
  r_misses : int;
  r_stale : int;
  wrong : int;
  incomplete : int;
}

(* Execute the schedule on a freshly built network. Churn is
   interleaved by credit: [churn_pct] membership events per 100
   operations, drawn from a run-local RNG so both runs see the same
   churn (the cache consumes no randomness). Client origins are a
   fixed, deterministic peer subset and never leave, so learned
   shortcuts accumulate somewhere stable. *)
let execute ~seed ~n ~keys_per_node ~capacity ~churn_pct ~cache schedule =
  let net = Baton.Network.build ~seed n in
  let gen = Datagen.uniform (Rng.create (seed + 211)) in
  let keys = Datagen.take gen (keys_per_node * n) in
  ignore (Baton.Update.bulk_insert net ~from:(Net.random_peer net) (Array.to_list keys));
  let truth = Hashtbl.create (Array.length keys) in
  Array.iter (truth_add truth) keys;
  let client_ids =
    let ids = Array.copy (Net.live_ids net) in
    Array.sort compare ids;
    Array.sub ids 0 (min 6 (Array.length ids))
  in
  if cache then Net.enable_route_cache ~capacity net;
  let m = Net.metrics net in
  let cp = Metrics.checkpoint m in
  let crng = Rng.create (seed + 227) in
  let credit = ref 0 and turn = ref 0 in
  let client () =
    let c = client_ids.(!turn mod Array.length client_ids) in
    incr turn;
    Net.peer net c
  in
  let wrong = ref 0 and incomplete = ref 0 in
  Array.iter
    (fun op ->
      credit := !credit + churn_pct;
      while !credit >= 100 do
        credit := !credit - 100;
        if Rng.bool crng then
          ignore (Baton.Join.join net ~via:(client ()))
        else begin
          let victims =
            Array.of_seq
              (Seq.filter
                 (fun id -> not (Array.exists (Int.equal id) client_ids))
                 (Array.to_seq (Net.live_ids net)))
          in
          if Array.length victims > 1 then
            ignore (Baton.Leave.leave net (Net.peer net (Rng.pick crng victims)))
        end
      done;
      match op with
      | Lookup k ->
        let r = Baton.Search.lookup net ~from:(client ()) k in
        if r.Baton.Search.found <> Hashtbl.mem truth k then incr wrong
      | Range (lo, hi) ->
        let r = Baton.Search.range net ~from:(client ()) ~lo ~hi in
        if not r.Baton.Search.complete then incr incomplete
        else if r.Baton.Search.keys <> truth_range truth lo hi then incr wrong
      | Insert k ->
        ignore (Baton.Update.insert net ~from:(client ()) k);
        truth_add truth k)
    schedule;
  Baton.Check.all net;
  {
    msgs = Metrics.since m cp;
    aux = Metrics.aux_since m cp;
    r_hits = Metrics.event_since m cp Msg.ev_cache_hit;
    r_misses = Metrics.event_since m cp Msg.ev_cache_miss;
    r_stale = Metrics.event_since m cp Msg.ev_cache_stale;
    wrong = !wrong;
    incomplete = !incomplete;
  }

let run_cell ~seed ~n ~keys_per_node ~ops ~capacity ~range_span ~theta ~churn_pct =
  let gen = Datagen.uniform (Rng.create (seed + 211)) in
  let keys = Datagen.take gen (keys_per_node * n) in
  let schedule = gen_schedule ~seed ~theta ~ops ~keys ~range_span in
  let go cache =
    execute ~seed ~n ~keys_per_node ~capacity ~churn_pct ~cache schedule
  in
  let base = go false in
  let cached = go true in
  assert (base.aux = 0 && base.r_hits = 0 && base.r_misses = 0);
  let consults = cached.r_hits + cached.r_misses + cached.r_stale in
  {
    theta;
    churn_pct;
    ops;
    hits = cached.r_hits;
    misses = cached.r_misses;
    stale = cached.r_stale;
    hit_rate =
      (if consults = 0 then 0.
       else float_of_int cached.r_hits /. float_of_int consults);
    base_msgs = base.msgs;
    cache_msgs = cached.msgs;
    aux_msgs = cached.aux;
    reduction_pct =
      (if base.msgs = 0 then 0.
       else
         100.
         *. float_of_int (base.msgs - (cached.msgs + cached.aux))
         /. float_of_int base.msgs);
    wrong_answers = base.wrong + cached.wrong;
    partial = cached.incomplete;
  }

let thetas = [ 0.5; 0.7; 0.9; 1.1 ]
let churn_rates = [ 0; 5; 10 ]

let default_capacity = 192

let cells ~seed ~n ~keys_per_node ~ops ~range_span () =
  let cell = run_cell ~seed ~n ~keys_per_node ~ops ~capacity:default_capacity ~range_span in
  List.map (fun theta -> cell ~theta ~churn_pct:0) thetas
  @ List.map (fun churn_pct -> cell ~theta:0.9 ~churn_pct) churn_rates

let run (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let ops = max 400 p.Params.queries in
  let all =
    cells ~seed:p.Params.seed ~n ~keys_per_node:p.Params.keys_per_node ~ops
      ~range_span:p.Params.range_span ()
  in
  let row (c : cell) =
    [
      Printf.sprintf "%.1f" c.theta;
      Table.cell_int c.churn_pct;
      Printf.sprintf "%.2f" c.hit_rate;
      Table.cell_int c.base_msgs;
      Table.cell_int (c.cache_msgs + c.aux_msgs);
      Printf.sprintf "%.1f" c.reduction_pct;
      Table.cell_int c.stale;
      Table.cell_int c.wrong_answers;
      Table.cell_int c.partial;
    ]
  in
  Table.make ~id:"route-cache"
    ~title:"Route cache: message reduction vs skew and churn"
    ~header:
      [ "theta"; "churn%"; "hit rate"; "msgs off"; "msgs on (incl. aux)";
        "reduction%"; "stale"; "wrong"; "partial" ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers, %d ops per cell (80%% lookup / 10%% range / 10%% \
           insert), cache capacity %d, fixed client origins; both runs of \
           a cell replay one schedule from one seed, so the message delta \
           is the cache's doing. Probe and invalidation traffic counts \
           against the saving but never into the paper-parity total."
          n ops default_capacity;
      ]
    (List.map row all)

(* Machine-readable document for BENCH_cache.json: deterministic field
   order, same seed in means byte-identical bytes out. *)
let bench_json ~seed ~n ~keys_per_node ~ops ~range_span cells =
  let module J = Baton_obs.Json in
  J.Obj
    [
      ("schema", J.String "baton-bench-cache-v1");
      ("seed", J.Int seed);
      ("n", J.Int n);
      ("keys_per_node", J.Int keys_per_node);
      ("ops", J.Int ops);
      ("range_span", J.Int range_span);
      ("capacity", J.Int default_capacity);
      ( "runs",
        J.List
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("theta", J.Float c.theta);
                   ("churn_pct", J.Int c.churn_pct);
                   ("ops", J.Int c.ops);
                   ("hits", J.Int c.hits);
                   ("misses", J.Int c.misses);
                   ("stale", J.Int c.stale);
                   ("hit_rate", J.Float c.hit_rate);
                   ("base_msgs", J.Int c.base_msgs);
                   ("cache_msgs", J.Int c.cache_msgs);
                   ("aux_msgs", J.Int c.aux_msgs);
                   ("reduction_pct", J.Float c.reduction_pct);
                   ("wrong_answers", J.Int c.wrong_answers);
                   ("partial", J.Int c.partial);
                 ])
             cells) );
    ]
