(* Adversarial-scenario experiment: the paper's "correct answers in
   the presence of node failures" claim, checked rather than asserted.

   Each row runs the workload driver under one correlated fault
   schedule — partitions (symmetric and one-way), a subtree-correlated
   crash burst, gray peers, and all of them combined — with the
   consistency oracle judging every completed operation against the
   sequential key-space model. The claim under test: however nasty the
   schedule, violations stay at zero; degradation shows up only as
   failed operations, explicitly flagged incomplete answers, and paid
   messages. Message counts include every blocked, retried and
   repair-detour transmission — surviving a partition is not free and
   the table does not pretend it is. *)

module Metrics = Baton_sim.Metrics
module Partition = Baton_sim.Partition
module Oracle = Baton_obs.Oracle
module Driver = Baton_runtime.Driver

(* One schedule per failure mode, plus a combined worst case. Windows
   sit early in the run so even short (tiny-parameter) runs overlap
   them; the driver scales its duration with ops, never cutting a
   window off. *)
let scenarios =
  [
    ("baseline", "");
    ("partition k=2", "partition@500+1500:k=2");
    ("partition one-way", "partition@500+1500:k=2,oneway");
    ("subtree crash", "subtree@800");
    ("gray peers", "gray@300+2000:peers=5,drop=0.3,slow=4");
    ("combined", "partition@500+1200:k=2;subtree@2200;gray@300+2500:peers=4");
  ]

let schedule_of spec =
  if String.equal spec "" then []
  else
    match Partition.parse spec with
    | Ok s -> s
    | Error msg -> invalid_arg ("Exp_adversarial: " ^ msg)

let run (p : Params.t) =
  let n = List.fold_left max 2 p.Params.sizes in
  let ops = max 150 p.Params.queries in
  let row (label, spec) =
    let cfg =
      Driver.config ~seed:p.Params.seed
        ~keys_per_node:p.Params.keys_per_node ~ops
        ~fault_schedule:(schedule_of spec) ~oracle:true ~n
        ~mix:Driver.adversarial ()
    in
    let r = Driver.run cfg in
    let o = Option.get r.Driver.oracle in
    [
      label;
      Table.cell_int r.Driver.completed;
      Table.cell_int r.Driver.failed;
      Table.cell_int (Oracle.checked o);
      Table.cell_int (Oracle.violation_count o);
      Table.cell_int (Oracle.tolerated_count o);
      Table.cell_int (Oracle.incomplete_count o);
      Table.cell_int (Oracle.lost_keys o);
      Table.cell_int r.Driver.partition_timeouts;
      Table.cell_int r.Driver.gray_drops;
      Table.cell_int r.Driver.messages;
    ]
  in
  Table.make ~id:"adversarial"
    ~title:"Adversarial fault schedules: oracle verdicts on every completed op"
    ~header:
      [
        "scenario"; "ok"; "failed"; "checked"; "violations"; "tolerated";
        "incomplete"; "lost keys"; "part-blocked"; "gray-dropped"; "messages";
      ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers, %d ops per scenario (exact/range/insert mix), \
           closed loop; suspicion-driven repair on — peers recover with \
           no help from the harness."
          n ops;
        "violations must be 0: a wrong answer presented as right. \
         tolerated = answers the oracle excused because the system \
         flagged them (incomplete, hole-covered) or a concurrent \
         mutation made the key genuinely uncertain; lost keys = keys \
         destroyed by crashes (their absence is correct, not stale).";
        "part-blocked / gray-dropped count messages eaten by the active \
         partition / gray endpoints; all such attempts, their \
         retransmissions and the repair detours are included in \
         messages — the honest price of surviving the schedule.";
      ]
    (List.map row scenarios)
