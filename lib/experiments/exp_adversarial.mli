(** Adversarial fault schedules vs. the consistency oracle.

    Runs the workload driver under correlated fault scenarios —
    symmetric and one-way partitions, a subtree-correlated crash
    burst, gray peers, and their combination — with
    {!Baton_obs.Oracle} judging every completed operation. The table
    reports verdict counts per scenario; the reproduction's claim is
    that the violations column is identically zero: faults may fail
    operations or force explicitly-flagged incomplete answers, but
    never a wrong answer presented as right. *)

val scenarios : (string * string) list
(** [(label, fault-schedule spec)] rows, in table order; the empty
    spec is the fault-free baseline. *)

val run : Params.t -> Table.t
(** Network size is the largest entry of [Params.sizes]. *)
