(** Overlay matrix: every registered overlay against the same workload.

    The comparative-laboratory experiment (ROADMAP item 4): BATON,
    Chord, the multiway tree and the Skip Graph answer identical seeded
    workloads behind {!P2p_overlay.Overlay.S}, with messages counted by
    the same {!Baton_sim.Metrics} — so the panels compare routing
    structure, not harness differences. Four tables:

    - ["overlay-exact"]: mean messages per exact-match query vs N, with
      the log2 N yardstick;
    - ["overlay-range"]: the same for range queries (chord honestly
      reports "unsupported");
    - ["overlay-mixes"]: the runtime driver's canonical mixes per
      overlay at equal message accounting, each run judged by the
      consistency oracle;
    - ["overlay-adversarial"]: BATON under the combined fault schedule
      on the concurrent runtime, and the Skip Graph under the same
      episode shapes driven at the bus — the violations column must be
      identically zero. *)

val run : Params.t -> Table.t list
(** Sweeps run over [Params.sizes]; the mixes and adversarial panels
    use the largest size. Structural checks run on every overlay
    instance; a violated invariant or a failed experiment raises. *)

val skip_graph_adversarial :
  seed:int ->
  n:int ->
  keys_per_node:int ->
  range_span:int ->
  ops:int ->
  int * int * Baton_obs.Oracle.t * int
(** The Skip Graph under the adversarial episode shapes (key-order
    partition, gray peers, correlated crash burst) driven directly at
    the bus, every completed op judged by the consistency oracle over
    the message clock. Returns [(completed, failed, oracle, messages)];
    runs the full structural audit before returning. Exposed for the
    test suite. *)
