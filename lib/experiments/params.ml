type t = {
  sizes : int list;
  repeats : int;
  ops_sample : int;
  queries : int;
  keys_per_node : int;
  range_span : int;
  balance_capacity : int;
  seed : int;
  telemetry : bool;
}

let quick =
  {
    sizes = [ 200; 400; 600; 800; 1000 ];
    repeats = 2;
    ops_sample = 50;
    queries = 200;
    keys_per_node = 20;
    range_span = 2_000_000;
    balance_capacity = 120;
    seed = 2005;
    telemetry = false;
  }

let full =
  {
    sizes = [ 1000; 2000; 3000; 4000; 5000; 6000; 7000; 8000; 9000; 10000 ];
    repeats = 3;
    ops_sample = 100;
    queries = 1000;
    keys_per_node = 50;
    range_span = 2_000_000;
    balance_capacity = 250;
    seed = 2005;
    telemetry = false;
  }

let tiny =
  {
    sizes = [ 50; 100; 200 ];
    repeats = 1;
    ops_sample = 20;
    queries = 50;
    keys_per_node = 10;
    range_span = 10_000_000;
    balance_capacity = 60;
    seed = 2005;
    telemetry = false;
  }
