(* Overlay matrix: the comparative-laboratory experiment.

   Every registered overlay answers the same seeded workload behind the
   same [Overlay.S] interface, with messages counted by the same
   [Metrics] — so the tables compare routing structure, not harness
   differences. Four panels:

   - a fig8-style sweep of mean messages per exact-match query vs N
     (against the log2 N yardstick both BATON and Skip Graphs claim);
   - the same sweep for range queries (chord reports "unsupported" —
     its impossibility is part of the comparison);
   - the runtime driver's canonical mixes run per overlay at equal
     message accounting, each judged by the consistency oracle;
   - an adversarial section: BATON under the combined PR-6 fault
     schedule on the concurrent runtime, and the Skip Graph under the
     same episode shapes (key-order partition, gray peers, correlated
     crash burst) driven directly at the bus — both expected to hold
     violations at zero. *)

module Rng = Baton_util.Rng
module Datagen = Baton_workload.Datagen
module Querygen = Baton_workload.Querygen
module Overlay = P2p_overlay.Overlay
module Driver = Baton_runtime.Driver
module Oracle = Baton_obs.Oracle
module Metrics = Baton_sim.Metrics
module Bus = Baton_sim.Bus
module Partition = Baton_sim.Partition

(* Mean messages per exact and per range query at size [n], measured
   through the generic interface: the same key load, the same query
   streams, costs read off the shared metrics counter. *)
let sweep_point (module O : Overlay.S) ~seed ~n ~(p : Params.t) =
  let t = O.create ~seed ~n in
  let msgs () = (O.stats t).Overlay.total in
  let gen = Datagen.uniform (Rng.create ((seed * 31) + 7)) in
  let keys = Datagen.take gen (p.Params.keys_per_node * n) in
  O.bulk_load t (Array.to_list keys);
  let rng = Rng.create (seed + 23) in
  let q = p.Params.queries in
  let before = msgs () in
  Array.iter (fun k -> ignore (O.lookup t k)) (Querygen.exact_targets rng ~keys q);
  let exact = float_of_int (msgs () - before) /. float_of_int q in
  let range =
    if not O.supports_range then None
    else begin
      let spans =
        Querygen.ranges rng ~span:p.Params.range_span ~lo:Datagen.domain_lo
          ~hi:(Datagen.domain_hi - 1) q
      in
      let before = msgs () in
      Array.iter
        (fun { Querygen.lo; hi } -> ignore (O.range_query t ~lo ~hi))
        spans;
      Some (float_of_int (msgs () - before) /. float_of_int q)
    end
  in
  O.check t;
  (exact, range)

(* The Skip Graph under the adversarial episode shapes, driven directly
   at the bus (the runtime's fault scheduler is baton-specific, but the
   bus primitives it rests on are shared). Episodes run in disjoint
   windows over the op stream: a symmetric key-order partition, a gray
   window, then a correlated crash burst of adjacent peers — with the
   oracle judging every completed operation over the message clock.
   An op cut off by a fault raises [Bus.Timeout] and is counted failed,
   exactly like a casualty on the runtime path. *)
let skip_graph_adversarial ~seed ~n ~keys_per_node ~range_span ~ops =
  let g =
    Skip_graph.create ~seed ~domain_lo:Datagen.domain_lo
      ~domain_hi:Datagen.domain_hi ()
  in
  for _ = 1 to n do
    ignore (Skip_graph.join g)
  done;
  let gen = Datagen.uniform (Rng.create ((seed * 31) + 7)) in
  let keys = Datagen.take gen (keys_per_node * n) in
  ignore (Skip_graph.bulk_insert g (Array.to_list keys));
  let o = Oracle.create () in
  Oracle.seed_keys o (Array.to_list keys);
  let m = Skip_graph.metrics g in
  let cp = Metrics.checkpoint m in
  let clock () = float_of_int (Metrics.since m cp) in
  let bus = Skip_graph.bus g in
  let rng = Rng.create (seed + 23) in
  let completed = ref 0 and failed = ref 0 in
  (* Mirrors [Driver.adversarial]: 5 exact / 3 range / 2 insert. *)
  let do_op () =
    let started = clock () in
    let r = Rng.int rng 10 in
    if r < 5 then begin
      let k = keys.(Rng.int rng (Array.length keys)) in
      match Skip_graph.lookup g k with
      | found, _ ->
        incr completed;
        ignore
          (Oracle.check_exact o ~started ~finished:(clock ()) ~key:k ~found
             ~complete:true ()
            : Oracle.verdict)
      | exception (Bus.Timeout _ | Failure _) -> incr failed
    end
    else if r < 8 then begin
      let lo =
        Rng.int_in_range rng ~lo:Datagen.domain_lo
          ~hi:(max Datagen.domain_lo (Datagen.domain_hi - range_span))
      in
      let hi = lo + range_span in
      match Skip_graph.range_query g ~lo ~hi with
      | ks, _ ->
        incr completed;
        ignore
          (Oracle.check_range o ~started ~finished:(clock ()) ~lo ~hi ~keys:ks
             ~complete:true ~holes:[] ()
            : Oracle.verdict)
      | exception (Bus.Timeout _ | Failure _) -> incr failed
    end
    else begin
      let k =
        Rng.int_in_range rng ~lo:Datagen.domain_lo ~hi:(Datagen.domain_hi - 1)
      in
      Oracle.begin_mutation o k;
      match Skip_graph.insert g k with
      | _ ->
        incr completed;
        Oracle.commit_insert o k ~started ~finished:(clock ())
      | exception (Bus.Timeout _ | Failure _) ->
        Oracle.abort_mutation o k;
        incr failed
    end
  in
  let burst = max 1 (ops / 4) in
  (* Calm start. *)
  for _ = 1 to burst do
    do_op ()
  done;
  (* Episode 1 — symmetric partition, two islands cut in key order (the
     level-0 list order, so each island is a contiguous key interval). *)
  let order = Skip_graph.peer_ids_by_key g in
  Bus.set_partition bus
    ~assign:(Partition.islands ~order ~k:2)
    ~blocked:(Partition.blocked_pairs ~k:2 ~oneway:false);
  for _ = 1 to burst do
    do_op ()
  done;
  Bus.clear_partition bus;
  (* Episode 2 — gray peers: elevated drop on every hop touching them. *)
  Bus.set_gray_model bus ~seed:(seed + 77);
  let ids = Skip_graph.peer_ids g in
  for i = 0 to min 3 (Array.length ids - 1) do
    Bus.set_gray_peer bus
      ids.(Rng.int rng (Array.length ids))
      ~extra_drop:0.3 ~slow:2.;
    ignore i
  done;
  for _ = 1 to burst do
    do_op ()
  done;
  Bus.clear_gray_model bus;
  (* Episode 3 — correlated crash burst: adjacent peers in key order die
     at one instant (the skip-graph analogue of a subtree crash), their
     data lost. Lazy repair then pays for every splice under the same
     message accounting as the queries. *)
  let order = Skip_graph.peer_ids_by_key g in
  let width = max 1 (Array.length order / 20) in
  let start = Rng.int rng (max 1 (Array.length order - width)) in
  let burst_time = clock () in
  for i = start to min (start + width - 1) (Array.length order - 1) do
    let lost = Skip_graph.crash g order.(i) in
    Oracle.note_lost o ~time:burst_time lost
  done;
  (* Recovery traffic: the remaining ops route around (and splice out)
     the corpses. *)
  for _ = 1 to ops - (3 * burst) do
    do_op ()
  done;
  Skip_graph.check g;
  (!completed, !failed, o, Metrics.since m cp)

(* The combined PR-6 schedule, as in Exp_adversarial's worst case. *)
let baton_schedule = "partition@500+1200:k=2;subtree@2200;gray@300+2500:peers=4"

let run (p : Params.t) =
  let i = Table.cell_int and f = Table.cell_float in
  let overlay_names = Overlay.names in
  (* Panels 1 + 2 — fig8-style sweeps over N. *)
  let points =
    List.map
      (fun n ->
        let per_overlay =
          List.map
            (fun o ->
              let samples =
                List.init p.Params.repeats (fun r ->
                    sweep_point o ~seed:(p.Params.seed + (r * 1013)) ~n ~p)
              in
              let exact = Common.mean (List.map fst samples) in
              let range =
                match List.filter_map snd samples with
                | [] -> None
                | l -> Some (Common.mean l)
              in
              (exact, range))
            Overlay.all
        in
        (n, per_overlay))
      p.Params.sizes
  in
  let exact_table =
    Table.make ~id:"overlay-exact"
      ~title:"Overlay matrix: messages per exact-match query"
      ~header:(("N" :: overlay_names) @ [ "log2 N" ])
      ~notes:
        [
          "Same seeded key load and query stream per overlay, costs read \
           off the shared message counter; log2 N is the yardstick both \
           BATON and Skip Graphs claim.";
        ]
      (List.map
         (fun (n, per_overlay) ->
           (i n :: List.map (fun (e, _) -> f e) per_overlay)
           @ [ f (log (float_of_int n) /. log 2.) ])
         points)
  in
  let range_table =
    Table.make ~id:"overlay-range"
      ~title:"Overlay matrix: messages per range query"
      ~header:("N" :: overlay_names)
      ~notes:
        [
          "BATON, the multiway tree and the Skip Graph sweep neighbours \
           natively; chord hashes keys and cannot answer a range at all — \
           the impossibility is reported, not papered over.";
        ]
      (List.map
         (fun (n, per_overlay) ->
           i n
           :: List.map
                (fun (_, r) ->
                  match r with Some v -> f v | None -> "unsupported")
                per_overlay)
         points)
  in
  (* Panel 3 — the runtime driver's canonical mixes per overlay, oracle
     on. One row per (mix, overlay). *)
  let n = List.fold_left max 2 p.Params.sizes in
  let ops = max 150 p.Params.queries in
  let mix_rows =
    List.concat_map
      (fun mix ->
        List.map
          (fun overlay ->
            let cfg =
              Driver.config ~overlay ~seed:p.Params.seed
                ~keys_per_node:p.Params.keys_per_node ~ops ~oracle:true ~n
                ~mix ()
            in
            let r = Driver.run cfg in
            let o = Option.get r.Driver.oracle in
            [
              mix.Driver.mix_name;
              overlay;
              i r.Driver.completed;
              i r.Driver.failed;
              i r.Driver.messages;
              f
                (float_of_int r.Driver.messages
                /. float_of_int (max 1 r.Driver.completed));
              i (Oracle.checked o);
              i (Oracle.violation_count o);
            ])
          overlay_names)
      Driver.mixes
  in
  let mixes_table =
    Table.make ~id:"overlay-mixes"
      ~title:"Overlay matrix: driver mixes at equal message accounting"
      ~header:
        [
          "mix"; "overlay"; "ok"; "failed"; "messages"; "msgs/op"; "checked";
          "violations";
        ]
      ~notes:
        [
          Printf.sprintf
            "N = %d peers, %d ops per cell, identical seeded plan per \
             overlay; chord's failures are its range queries (honestly \
             unsupported). Baton runs concurrently on the fiber runtime, \
             the others sequentially — message counts, not wall clock, are \
             the comparison."
            n ops;
        ]
      mix_rows
  in
  (* Panel 4 — adversarial: zero oracle violations expected from both
     fault-capable overlays. *)
  let baton_row =
    let schedule =
      match Partition.parse baton_schedule with
      | Ok s -> s
      | Error msg -> invalid_arg ("Exp_overlay_matrix: " ^ msg)
    in
    let cfg =
      Driver.config ~seed:p.Params.seed ~keys_per_node:p.Params.keys_per_node
        ~ops ~fault_schedule:schedule ~oracle:true ~n ~mix:Driver.adversarial
        ()
    in
    let r = Driver.run cfg in
    let o = Option.get r.Driver.oracle in
    [
      "baton"; i r.Driver.completed; i r.Driver.failed; i (Oracle.checked o);
      i (Oracle.violation_count o); i (Oracle.tolerated_count o);
      i (Oracle.lost_keys o); i r.Driver.messages;
    ]
  in
  let skip_row =
    let completed, failed, o, messages =
      skip_graph_adversarial ~seed:p.Params.seed ~n
        ~keys_per_node:p.Params.keys_per_node ~range_span:p.Params.range_span
        ~ops
    in
    [
      "skip-graph"; i completed; i failed; i (Oracle.checked o);
      i (Oracle.violation_count o); i (Oracle.tolerated_count o);
      i (Oracle.lost_keys o); i messages;
    ]
  in
  let adversarial_table =
    Table.make ~id:"overlay-adversarial"
      ~title:"Overlay matrix: adversarial schedules, oracle-judged"
      ~header:
        [
          "overlay"; "ok"; "failed"; "checked"; "violations"; "tolerated";
          "lost keys"; "messages";
        ]
      ~notes:
        [
          "BATON runs the combined PR-6 schedule on the concurrent runtime \
           (suspicion-driven repair); the Skip Graph faces the same episode \
           shapes — key-order partition, gray peers, correlated crash burst \
           — driven at the bus, recovering by lazy splice-out. Chord and \
           the multiway tree have no fault-recovery path and sit this panel \
           out. Violations must be zero.";
        ]
      [ baton_row; skip_row ]
  in
  [ exact_table; range_table; mixes_table; adversarial_table ]
