(** Experiment parameters.

    The paper's full configuration (Section V) sweeps network sizes
    1000..10000, loads 1000 x N values and issues 1000 queries of each
    kind, averaged over 10 event orders. {!full} reproduces that sweep
    (with a proportionally reduced data volume, which leaves per-
    message costs unchanged); {!quick} is a scaled-down configuration
    for tests and the benchmark executable. *)

type t = {
  sizes : int list;  (** network sizes to sweep *)
  repeats : int;  (** independent seeds averaged per point *)
  ops_sample : int;  (** membership / update operations sampled per point *)
  queries : int;  (** queries issued per point *)
  keys_per_node : int;  (** data volume per peer *)
  range_span : int;  (** width of range queries *)
  balance_capacity : int;  (** overload threshold for load balancing *)
  seed : int;
  telemetry : bool;
      (** attach a {!Baton_obs.Recorder} to BATON runs and append
          p95/p99 percentile columns to the query tables. Off in every
          preset: percentile digests never perturb the mean columns or
          [Metrics.total], but the paper's tables stay byte-identical
          unless explicitly asked for. *)
}

val quick : t
(** Sizes 200..1000, 2 repeats — seconds, not minutes. *)

val full : t
(** The paper's sweep: sizes 1000..10000, 3 repeats. *)

val tiny : t
(** Sizes 50..200 — used by the test suite. *)
