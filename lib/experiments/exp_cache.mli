(** Route-cache effectiveness under skew and churn.

    Each cell replays one pre-generated operation schedule twice from
    the same seed — cache disabled, then enabled — so the message
    difference is attributable to the cache alone. Answers are checked
    against a flat oracle in both runs: a shortcut may only change the
    cost of an answer, never its content. *)

type cell = {
  theta : float;  (** Zipf skew of the query keys *)
  churn_pct : int;  (** membership events per 100 operations *)
  ops : int;
  hits : int;  (** validated shortcut deliveries *)
  misses : int;  (** consults with no covering entry *)
  stale : int;  (** shortcuts evicted after failed validation *)
  hit_rate : float;  (** hits / (hits + misses + stale) *)
  base_msgs : int;  (** protocol messages, cache disabled *)
  cache_msgs : int;  (** protocol messages, cache enabled *)
  aux_msgs : int;  (** probe/invalidation traffic, cache enabled *)
  reduction_pct : float;
      (** 100 * (base - (cache + aux)) / base — the cache pays for its
          own bookkeeping before claiming any saving *)
  wrong_answers : int;  (** oracle mismatches across both runs *)
  partial : int;  (** range answers flagged [complete = false] *)
}

val default_capacity : int
(** Per-peer cache capacity used by every cell. *)

val thetas : float list
(** Skew sweep, run at zero churn. *)

val churn_rates : int list
(** Churn sweep (percent), run at theta = 0.9. *)

val cells :
  seed:int ->
  n:int ->
  keys_per_node:int ->
  ops:int ->
  range_span:int ->
  unit ->
  cell list
(** The full grid: theta sweep then churn sweep, in declared order. *)

val run : Params.t -> Table.t
(** Render the grid as an experiment table. *)

val bench_json :
  seed:int ->
  n:int ->
  keys_per_node:int ->
  ops:int ->
  range_span:int ->
  cell list ->
  Baton_obs.Json.t
(** The ["baton-bench-cache-v1"] document: deterministic field order,
    byte-identical for the same seed. *)
