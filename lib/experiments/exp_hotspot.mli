(** Extension (not a paper figure): a moving hotspot.

    The paper's balancing experiment uses a static Zipf distribution.
    Real skew drifts: this experiment pushes insertion waves whose hot
    region jumps across the key domain and checks that the balancer
    keeps the maximum per-peer load bounded through every phase,
    reporting the load and the balancing traffic per wave. *)

val run : Params.t -> Table.t

val demand : Params.t -> Table.t
(** Demand attribution under Zipf query sweeps: per-theta top-k
    guaranteed share, hottest key, the serve/route split of every
    delivered message, and the decayed per-peer demand skew — the
    measured baseline for ROADMAP item 2 (replica-aware routing and
    hotspot shedding) to beat. *)
