(** Skip Graph overlay (Aspnes & Shah).

    A comparison overlay for BATON built from the same simulation
    substrate. Every peer draws a random {e membership vector}; the
    peers whose vectors agree on the first [l] bits form the level-[l]
    doubly-linked list, and the level-0 list contains everyone, sorted
    by peer key. Exact search descends from a peer's top level,
    skimming sideways as far as possible before dropping a level —
    O(log n) hops with high probability — and a range query is the
    level-0 neighbour walk from the range's first owner, so range
    support is native rather than bolted on.

    Key ownership is implicit in the level-0 order: the owner of data
    key [k] is the live peer with the greatest peer key [<= k]; the
    global leftmost additionally catches everything below its own key.

    All traffic goes through {!Baton_sim.Bus}, so {!Baton_sim.Metrics}
    accounting, fault injection, causal tracing and the replay oracle
    apply unmodified. Crash recovery is lazy: a hop into a crashed peer
    raises [Bus.Unreachable], the survivor splices the corpse out of
    every list (paid, counted repair messages) and the operation
    retries. *)

type t

val max_levels : int
(** Number of membership-vector bits (62): an upper bound on list
    levels, far above any height reachable at simulated sizes. *)

val create : ?seed:int -> domain_lo:int -> domain_hi:int -> unit -> t
(** Empty skip graph managing data keys in [\[domain_lo, domain_hi)].
    Peer keys are drawn uniformly (and distinctly) from the domain. *)

val size : t -> int
(** Number of live peers. *)

val levels : t -> int
(** Height of the tallest live peer — the number of non-trivial list
    levels. *)

val metrics : t -> Baton_sim.Metrics.t
val bus : t -> Baton_sim.Bus.t

val peer_ids : t -> int array
(** Live peer ids in ascending id order. *)

val peer_ids_by_key : t -> int array
(** Live peer ids in ascending key order — the level-0 list order.
    Useful for key-locality fault patterns (partition islands). *)

(** {1 Membership} *)

type join_stats = {
  peer : int;  (** id of the new peer *)
  search_msgs : int;  (** messages spent locating the join position *)
  update_msgs : int;  (** messages spent splicing lists + moving data *)
}

val join : t -> join_stats
(** Add one peer: search for its key's level-0 position, splice it into
    level 0, then build each upper level by walking the level below
    until a peer sharing one more membership-vector bit is found. The
    predecessor hands over the data now owned by the new peer. *)

type leave_stats = { search_msgs : int; update_msgs : int }

val leave : t -> int -> leave_stats
(** Graceful departure: unlink from every level (notifying both
    neighbours per level) and hand the local store to the predecessor
    (or to the successor when the leftmost departs). *)

val crash : t -> int -> int list
(** Abrupt failure: the peer stops answering ([Bus.Unreachable]) and
    its local store is lost — returned so a caller can feed the replay
    oracle. Lists are repaired lazily when routing trips over the
    corpse. *)

(** {1 Data operations}

    Each operation starts at a uniformly random live peer, routes to
    the key's owner, and returns the hop count (messages paid). *)

val insert : t -> int -> int
val delete : t -> int -> bool * int
val lookup : t -> int -> bool * int

val range_query : t -> lo:int -> hi:int -> int list * int
(** All stored keys in [\[lo, hi\]] in ascending order: one search to
    the owner of [lo], then a rightward level-0 sweep. *)

val bulk_insert : t -> int list -> int
(** Amortized batch insert: one search to the owner of the smallest
    key, then a single rightward distribution pass. *)

val node_load : t -> int -> int
(** Number of keys stored at a live peer. *)

(** {1 Validation} *)

val check : t -> unit
(** Full structural audit (god's-eye, free of messages): level-0 list
    sorted and gap-free over all live peers; every upper level exactly
    matches its membership-vector prefix classes; heights tight; every
    stored key inside its holder's range. Links are audited {e through}
    corpses — repair is lazy, so a quiet link may still run into a
    crashed peer; the invariant is that following the chain reaches the
    correct live neighbour. With no unspliced corpse this degenerates to
    strict link equality.
    @raise Failure with a description of the first violation. *)
