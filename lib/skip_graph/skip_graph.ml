module Bus = Baton_sim.Bus
module Metrics = Baton_sim.Metrics
module Rng = Baton_util.Rng
module Dyn_array = Baton_util.Dyn_array
module Sorted_store = Baton_util.Sorted_store

(* Membership vectors carry one random bit per level. 62 bits keeps the
   chance of two peers sharing a whole vector negligible at any
   simulated size, so list heights stay O(log n). *)
let max_levels = 62

type node = {
  id : int;
  key : int;  (* peer key: its position in the level-0 order *)
  mv : int;  (* membership vector; bit [l] selects the level-(l+1) list *)
  left : int option array;  (* neighbour ids, indexed by level *)
  right : int option array;
  mutable height : int;  (* levels at which this node has a neighbour *)
  store : Sorted_store.t;
}

type t = {
  bus : Bus.t;
  peers : (int, node) Hashtbl.t;  (* live peers *)
  dead : (int, node) Hashtbl.t;  (* every crashed peer, kept: chains of
                                    links may still run through them *)
  spliced : (int, unit) Hashtbl.t;  (* corpses already repaired around *)
  used_keys : (int, unit) Hashtbl.t;
  id_list : int Dyn_array.t;  (* dense live-id array for O(1) random pick *)
  id_index : (int, int) Hashtbl.t;
  rng : Rng.t;
  domain_lo : int;
  domain_hi : int;
  mutable next_id : int;
}

type join_stats = { peer : int; search_msgs : int; update_msgs : int }
type leave_stats = { search_msgs : int; update_msgs : int }

let k_search = "skip.search"
let k_range = "skip.range"
let k_insert = "skip.insert"
let k_delete = "skip.delete"
let k_join_search = "skip.join.search"
let k_join_update = "skip.join.update"
let k_leave_update = "skip.leave.update"
let k_repair = "skip.repair"

let create ?(seed = 42) ~domain_lo ~domain_hi () =
  if domain_lo >= domain_hi then invalid_arg "Skip_graph.create: empty domain";
  {
    bus = Bus.create ();
    peers = Hashtbl.create 4096;
    dead = Hashtbl.create 64;
    spliced = Hashtbl.create 64;
    used_keys = Hashtbl.create 4096;
    id_list = Dyn_array.create ();
    id_index = Hashtbl.create 4096;
    rng = Rng.create seed;
    domain_lo;
    domain_hi;
    next_id = 0;
  }

let size t = Hashtbl.length t.peers
let metrics t = Bus.metrics t.bus
let bus t = t.bus
let peer t id = Hashtbl.find t.peers id

(* A link may still point at a crashed peer. Its key is part of the
   link state the live side keeps locally, so peeking it costs no
   message — only hopping to the peer does. *)
let node_of t id =
  match Hashtbl.find_opt t.peers id with
  | Some n -> n
  | None -> Hashtbl.find t.dead id

let node_key t id = (node_of t id).key

let peer_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.peers []
  |> List.sort compare |> Array.of_list

let peer_ids_by_key t =
  Hashtbl.fold (fun _ (n : node) acc -> n :: acc) t.peers []
  |> List.sort (fun (a : node) (b : node) -> compare a.key b.key)
  |> List.map (fun (n : node) -> n.id)
  |> Array.of_list

let levels t = Hashtbl.fold (fun _ (n : node) acc -> max acc n.height) t.peers 0

let track t id =
  Hashtbl.replace t.id_index id (Dyn_array.length t.id_list);
  Dyn_array.push t.id_list id

let untrack t id =
  match Hashtbl.find_opt t.id_index id with
  | Some i ->
    let last = Dyn_array.pop t.id_list in
    if last <> id then begin
      Dyn_array.set t.id_list i last;
      Hashtbl.replace t.id_index last i
    end;
    Hashtbl.remove t.id_index id
  | None -> ()

let random_peer t =
  if Dyn_array.length t.id_list = 0 then
    invalid_arg "Skip_graph.random_peer: empty network";
  peer t (Dyn_array.get t.id_list (Rng.int t.rng (Dyn_array.length t.id_list)))

let send t ~src ~dst ~kind =
  Bus.send t.bus ~src ~dst ~kind;
  peer t dst

(* One repair-protocol message. The relink content is retransmitted
   until acknowledged, so the splice always lands; a loss or partition
   window only costs the (counted) transmission. *)
let send_repair t ~src ~dst =
  match Bus.send t.bus ~src ~dst ~kind:k_repair with
  | () -> ()
  | exception Bus.Timeout _ -> ()

(* Two nodes share the level-l list iff their membership vectors agree
   on the first l bits. *)
let prefix_mask l = (1 lsl l) - 1
let same_prefix l (a : node) (b : node) = (a.mv lxor b.mv) land prefix_mask l = 0

let fresh_key t =
  let rec draw () =
    let k = Rng.int_in_range t.rng ~lo:t.domain_lo ~hi:(t.domain_hi - 1) in
    if Hashtbl.mem t.used_keys k then draw ()
    else begin
      Hashtbl.replace t.used_keys k ();
      k
    end
  in
  draw ()

let fresh_mv t = Int64.to_int (Rng.int64 t.rng) land max_int

let register t ~key ~mv =
  let id = t.next_id in
  t.next_id <- id + 1;
  let n =
    {
      id;
      key;
      mv;
      left = Array.make (max_levels + 1) None;
      right = Array.make (max_levels + 1) None;
      height = 0;
      store = Sorted_store.create ();
    }
  in
  Hashtbl.add t.peers id n;
  track t id;
  n

let shrink_height (n : node) =
  while
    n.height > 0
    && n.left.(n.height - 1) = None
    && n.right.(n.height - 1) = None
  do
    n.height <- n.height - 1
  done

(* Walk a link chain through departed peers (corpses and graceful
   leavers, both retained in [t.dead]) to the nearest live node. *)
let rec live_via t step id =
  match Hashtbl.find_opt t.peers id with
  | Some n -> Some n
  | None -> Option.bind (step (Hashtbl.find t.dead id)) (live_via t step)

(* Splice a crashed peer out of every list it was linked into,
   reconnecting the nearest live neighbours on each side (link chains
   may run through other corpses after a correlated burst). Lazy: runs
   when routing first trips over the corpse — exactly how the paper's
   peers learn of a departure, by finding the address unreachable. *)
let repair t dead_id =
  match Hashtbl.find_opt t.dead dead_id with
  | None -> ()
  | Some _ when Hashtbl.mem t.spliced dead_id -> ()
  | Some d ->
    let touched = ref [] in
    for l = 0 to max 0 (d.height - 1) do
      (* The corpse's frozen chain only {e locates} the live endpoints;
         each endpoint is then re-linked from its own current link
         state. Splicing the frozen endpoints directly to each other
         would clobber links made after the crash (a peer that joined
         beside an endpoint while the corpse lay unrepaired). *)
      let fix_right (a : node) =
        match
          Option.bind a.right.(l) (live_via t (fun (c : node) -> c.right.(l)))
        with
        | Some b ->
          if a.right.(l) <> Some b.id then begin
            send_repair t ~src:a.id ~dst:b.id;
            send_repair t ~src:b.id ~dst:a.id;
            a.right.(l) <- Some b.id;
            b.left.(l) <- Some a.id;
            touched := b :: !touched
          end
        | None -> a.right.(l) <- None
      and fix_left (b : node) =
        match
          Option.bind b.left.(l) (live_via t (fun (c : node) -> c.left.(l)))
        with
        | Some a ->
          if b.left.(l) <> Some a.id then begin
            send_repair t ~src:b.id ~dst:a.id;
            send_repair t ~src:a.id ~dst:b.id;
            b.left.(l) <- Some a.id;
            a.right.(l) <- Some b.id;
            touched := a :: !touched
          end
        | None -> b.left.(l) <- None
      in
      (match
         Option.bind d.left.(l) (live_via t (fun (c : node) -> c.left.(l)))
       with
      | Some a ->
        fix_right a;
        touched := a :: !touched
      | None -> ());
      match
        Option.bind d.right.(l) (live_via t (fun (c : node) -> c.right.(l)))
      with
      | Some b ->
        fix_left b;
        touched := b :: !touched
      | None -> ()
    done;
    List.iter shrink_height !touched;
    Hashtbl.replace t.spliced dead_id ()

(* Find the owner of [key] — the live peer with the greatest peer key
   <= [key], or the global leftmost when every peer key exceeds it.
   Classic skip-graph descent: skim sideways at the highest level that
   does not overshoot, then drop a level. Neighbour keys are link state
   held locally; only hops pay a message. *)
let raw_search t (start : node) key ~kind =
  let hops = ref 0 in
  let hop src dst =
    Bus.send t.bus ~src ~dst ~kind;
    incr hops;
    peer t dst
  in
  let rec go (n : node) l =
    if key >= n.key then
      match n.right.(l) with
      | Some r when node_key t r <= key -> go (hop n.id r) l
      | _ -> if l = 0 then n else go n (l - 1)
    else
      match n.left.(l) with
      | Some w when node_key t w > key -> go (hop n.id w) l
      | Some w when l = 0 -> hop n.id w (* immediate predecessor: the owner *)
      | Some _ -> go n (l - 1)
      | None -> if l = 0 then n (* global leftmost *) else go n (l - 1)
  in
  let n = go start (max 0 (start.height - 1)) in
  (n, !hops)

(* Search with failure discovery: a hop into a crashed peer raises
   [Bus.Unreachable]; the survivor splices the corpse out (paid repair
   traffic) and the operation restarts from a random live peer. Each
   discovery removes one corpse, so the retry loop terminates. *)
let search t ~(from : node) key ~kind =
  let hops = ref 0 in
  let rec attempt (start : node) budget =
    match raw_search t start key ~kind with
    | n, h ->
      hops := !hops + h;
      n
    | exception Bus.Unreachable dead_id ->
      if budget <= 0 then failwith "Skip_graph.search: repair budget exhausted";
      (* The failed hop was transmitted and counted. *)
      incr hops;
      repair t dead_id;
      attempt (random_peer t) (budget - 1)
  in
  let n =
    attempt from (Hashtbl.length t.dead - Hashtbl.length t.spliced + 1)
  in
  (n, !hops)

let lookup t key =
  let from = random_peer t in
  let n, hops = search t ~from key ~kind:k_search in
  (Sorted_store.mem n.store key, hops)

let insert t key =
  let from = random_peer t in
  let n, hops = search t ~from key ~kind:k_insert in
  Sorted_store.insert n.store key;
  hops

let delete t key =
  let from = random_peer t in
  let n, hops = search t ~from key ~kind:k_delete in
  (Sorted_store.remove n.store key, hops)

let range_query t ~lo ~hi =
  if lo > hi then invalid_arg "Skip_graph.range_query: lo > hi";
  let from = random_peer t in
  let n, hops = search t ~from lo ~kind:k_range in
  let keys = ref (Sorted_store.keys_in n.store ~lo ~hi) in
  let extra = ref 0 in
  (* Native range sweep: the level-0 list is the key order, so the
     answer is a rightward neighbour walk — one message per peer whose
     range intersects the interval. A corpse on the way is spliced out
     and the sweep resumes at the live survivor. *)
  let rec sweep (n : node) =
    match n.right.(0) with
    | Some r when node_key t r <= hi -> (
      match send t ~src:n.id ~dst:r ~kind:k_range with
      | next ->
        incr extra;
        keys := !keys @ Sorted_store.keys_in next.store ~lo ~hi;
        sweep next
      | exception Bus.Unreachable dead_id ->
        incr extra;
        repair t dead_id;
        sweep n)
    | _ -> ()
  in
  sweep n;
  (!keys, hops + !extra)

(* Amortized batch placement: locate the owner of the smallest key,
   then distribute the sorted batch along the level-0 list in one
   rightward pass. *)
let bulk_insert t keys =
  match List.sort compare keys with
  | [] -> 0
  | k0 :: _ as sorted ->
    let from = random_peer t in
    let owner, hops = search t ~from k0 ~kind:k_insert in
    let cur = ref owner in
    let extra = ref 0 in
    List.iter
      (fun k ->
        let rec advance () =
          match !cur.right.(0) with
          | Some r when node_key t r <= k -> (
            match send t ~src:!cur.id ~dst:r ~kind:k_insert with
            | next ->
              cur := next;
              incr extra;
              advance ()
            | exception Bus.Unreachable dead_id ->
              incr extra;
              repair t dead_id;
              advance ())
          | _ -> ()
        in
        advance ();
        Sorted_store.insert !cur.store k)
      sorted;
    hops + !extra

let join t =
  if size t = 0 then begin
    let u = register t ~key:(fresh_key t) ~mv:(fresh_mv t) in
    { peer = u.id; search_msgs = 0; update_msgs = 0 }
  end
  else begin
    let key = fresh_key t in
    let mv = fresh_mv t in
    let via = random_peer t in
    let m = metrics t in
    let cp = Metrics.checkpoint m in
    (* Phase 1 — locate the new key's level-0 position. *)
    let p, _ = search t ~from:via key ~kind:k_join_search in
    let search_msgs = Metrics.since m cp in
    let cp2 = Metrics.checkpoint m in
    let u = register t ~key ~mv in
    (* Phase 2 — splice into level 0. The owner is the predecessor,
       except when the new key precedes every existing one: then the
       search lands on the old leftmost, which becomes the successor.
       The predecessor's right link may run into a corpse: the failed
       notification doubles as discovery — repair and re-read. This
       probe is also the successor's splice notification. *)
    let rec live_right (a : node) =
      match a.right.(0) with
      | None -> None
      | Some r -> (
        match send t ~src:u.id ~dst:r ~kind:k_join_update with
        | b -> Some b
        | exception Bus.Unreachable dead_id ->
          repair t dead_id;
          live_right a)
    in
    let pred, succ =
      if p.key < u.key then (Some p, live_right p) else (None, Some p)
    in
    (match pred with
    | Some (a : node) ->
      ignore (send t ~src:u.id ~dst:a.id ~kind:k_join_update);
      a.right.(0) <- Some u.id;
      u.left.(0) <- Some a.id
    | None -> ());
    (match succ with
    | Some (b : node) ->
      if pred = None then
        ignore (send t ~src:u.id ~dst:b.id ~kind:k_join_update);
      b.left.(0) <- Some u.id;
      u.right.(0) <- Some b.id
    | None -> ());
    u.height <- 1;
    (* Phase 3 — build the upper lists: at each level the neighbours
       are found by walking the level below until a peer shares one
       more membership-vector bit (expected O(1) steps per level). *)
    let l = ref 1 in
    let continue_up = ref true in
    while !continue_up && !l <= max_levels do
      let lv = !l in
      (* A corpse in the scan path is spliced out and the side rescanned
         from the (now repaired) local link: giving up instead would
         leave [u] disconnected from a prefix class it belongs to. Each
         retry consumes one corpse, so the rescan loop terminates. *)
      let scan_side first step =
        let rec scan id =
          match send t ~src:u.id ~dst:id ~kind:k_join_search with
          | w ->
            if same_prefix lv w u then Some w
            else (match step w with Some next -> scan next | None -> None)
          | exception Bus.Unreachable dead_id ->
            repair t dead_id;
            restart ()
        and restart () = Option.bind (first ()) scan in
        restart ()
      in
      let left_match =
        scan_side (fun () -> u.left.(lv - 1)) (fun (w : node) -> w.left.(lv - 1))
      in
      let right_match =
        scan_side
          (fun () -> u.right.(lv - 1))
          (fun (w : node) -> w.right.(lv - 1))
      in
      match (left_match, right_match) with
      | None, None -> continue_up := false
      | _ ->
        (match left_match with
        | Some (a : node) ->
          ignore (send t ~src:u.id ~dst:a.id ~kind:k_join_update);
          a.right.(lv) <- Some u.id;
          u.left.(lv) <- Some a.id;
          if a.height <= lv then a.height <- lv + 1
        | None -> ());
        (match right_match with
        | Some (b : node) ->
          ignore (send t ~src:u.id ~dst:b.id ~kind:k_join_update);
          b.left.(lv) <- Some u.id;
          u.right.(lv) <- Some b.id;
          if b.height <= lv then b.height <- lv + 1
        | None -> ());
        u.height <- lv + 1;
        incr l
    done;
    (* Phase 4 — data handoff along the level-0 splice. *)
    (match (pred, succ) with
    | Some (a : node), _ ->
      let moved = Sorted_store.split_at_or_above a.store u.key in
      Sorted_store.absorb u.store moved
    | None, Some (b : node) ->
      (* New global leftmost: it inherits the catch-all for keys below
         the old leftmost's own key. *)
      let moved = Sorted_store.split_below b.store b.key in
      Sorted_store.absorb u.store moved
    | None, None -> ());
    { peer = u.id; search_msgs; update_msgs = Metrics.since m cp2 }
  end

let leave t id =
  let x = peer t id in
  let m = metrics t in
  let cp = Metrics.checkpoint m in
  let touched = ref [] in
  (* Neighbours are the nearest {e live} peers on each side — an
     adjacent unrepaired corpse must be walked through, not treated as
     the end of the list (severing it would orphan everyone beyond). *)
  for l = max 0 (x.height - 1) downto 0 do
    let lv = Option.bind x.left.(l) (live_via t (fun (c : node) -> c.left.(l)))
    and rv =
      Option.bind x.right.(l) (live_via t (fun (c : node) -> c.right.(l)))
    in
    (match lv with
    | Some (a : node) ->
      ignore (send t ~src:x.id ~dst:a.id ~kind:k_leave_update);
      a.right.(l) <- Option.map (fun (b : node) -> b.id) rv;
      touched := a :: !touched
    | None -> ());
    match rv with
    | Some (b : node) ->
      ignore (send t ~src:x.id ~dst:b.id ~kind:k_leave_update);
      b.left.(l) <- Option.map (fun (a : node) -> a.id) lv;
      touched := b :: !touched
    | None -> ()
  done;
  (* Data handoff: the predecessor absorbs the departing range; a
     departing leftmost hands everything to the new leftmost, which
     inherits the catch-all role. *)
  (match
     ( Option.bind x.left.(0) (live_via t (fun (c : node) -> c.left.(0))),
       Option.bind x.right.(0) (live_via t (fun (c : node) -> c.right.(0))) )
   with
  | Some a, _ -> Sorted_store.absorb a.store x.store
  | None, Some b -> Sorted_store.absorb b.store x.store
  | None, None -> ());
  List.iter shrink_height !touched;
  Hashtbl.remove t.peers x.id;
  (* Keep the departed node (links frozen at departure) so chains from
     unrepaired corpses still resolve through it; it needs no repair of
     its own — the splice above already happened — so it is born
     spliced. *)
  Hashtbl.add t.dead x.id x;
  Hashtbl.replace t.spliced x.id ();
  Bus.fail t.bus x.id;
  untrack t x.id;
  { search_msgs = 0; update_msgs = Metrics.since m cp }

let crash t id =
  let x = peer t id in
  Bus.fail t.bus id;
  Hashtbl.remove t.peers id;
  Hashtbl.add t.dead id x;
  untrack t id;
  Sorted_store.to_list x.store

let node_load t id = Sorted_store.length (peer t id).store

let check t =
  let fail fmt = Format.kasprintf failwith fmt in
  if size t = 0 then ()
  else begin
    let nodes =
      Hashtbl.fold (fun _ n acc -> n :: acc) t.peers []
      |> List.sort (fun (a : node) (b : node) -> compare a.key b.key)
    in
    (* Links are audited {e through} corpses: until lazy repair has
       tripped over a crashed peer, live links may still run into it —
       the invariant is that following the chain reaches the correct
       live neighbour. With no unspliced corpse this is plain link
       equality. *)
    let resolve step link =
      Option.map
        (fun (n : node) -> n.id)
        (Option.bind link (live_via t step))
    in
    let right_of l (n : node) =
      resolve (fun (c : node) -> c.right.(l)) n.right.(l)
    in
    let left_of l (n : node) = resolve (fun (c : node) -> c.left.(l)) n.left.(l) in
    (* Level 0: a doubly-linked list in strict key order covering every
       live peer. *)
    let rec chain prev = function
      | [] -> ()
      | (n : node) :: rest ->
        (match prev with
        | None ->
          if left_of 0 n <> None then
            fail "skip_graph: leftmost peer %d has a left link" n.id
        | Some (p : node) ->
          if p.key >= n.key then
            fail "skip_graph: keys %d and %d out of order" p.key n.key;
          if right_of 0 p <> Some n.id then
            fail "skip_graph: level-0 gap between peers %d and %d" p.id n.id;
          if left_of 0 n <> Some p.id then
            fail "skip_graph: level-0 back link of peer %d broken" n.id);
        if rest = [] && right_of 0 n <> None then
          fail "skip_graph: rightmost peer %d has a right link" n.id;
        chain (Some n) rest
    in
    chain None nodes;
    (* Upper levels: within each membership-vector prefix class, the
       key-ordered members must form exactly the level-l list. *)
    let top = List.fold_left (fun acc (n : node) -> max acc n.height) 0 nodes in
    for l = 1 to top do
      let groups = Hashtbl.create 64 in
      List.iter
        (fun (n : node) ->
          let p = n.mv land prefix_mask l in
          Hashtbl.replace groups p
            (n :: Option.value ~default:[] (Hashtbl.find_opt groups p)))
        nodes;
      Hashtbl.iter
        (fun _ members ->
          match List.rev members (* back to key order *) with
          | [] -> ()
          | [ (n : node) ] ->
            if left_of l n <> None || right_of l n <> None then
              fail
                "skip_graph: peer %d linked at level %d but alone in its list"
                n.id l
          | members ->
            let rec walk prev = function
              | [] -> ()
              | (n : node) :: rest ->
                if n.height <= l then
                  fail "skip_graph: peer %d in a level-%d list but height %d"
                    n.id l n.height;
                (match prev with
                | None ->
                  if left_of l n <> None then
                    fail
                      "skip_graph: first peer %d of a level-%d list has a \
                       left link"
                      n.id l
                | Some (p : node) ->
                  if right_of l p <> Some n.id then
                    fail "skip_graph: level-%d gap between peers %d and %d" l
                      p.id n.id;
                  if left_of l n <> Some p.id then
                    fail "skip_graph: level-%d back link of peer %d broken" l
                      n.id);
                if rest = [] && right_of l n <> None then
                  fail
                    "skip_graph: last peer %d of a level-%d list has a right \
                     link"
                    n.id l;
                walk (Some n) rest
            in
            walk None members)
        groups
    done;
    (* Heights are tight: no links above a node's height. *)
    List.iter
      (fun (n : node) ->
        for l = n.height to max_levels do
          if n.left.(l) <> None || n.right.(l) <> None then
            fail "skip_graph: peer %d has a level-%d link above height %d" n.id
              l n.height
        done)
      nodes;
    (* Data placement: every stored key belongs to its holder's range —
       [key, succ.key), with the leftmost also holding everything below
       its own key. *)
    let rec placement = function
      | [] -> ()
      | (n : node) :: rest ->
        let hi = match rest with (s : node) :: _ -> Some s.key | [] -> None in
        let leftmost = left_of 0 n = None in
        Sorted_store.to_list n.store
        |> List.iter (fun k ->
               if (not leftmost) && k < n.key then
                 fail "skip_graph: key %d below peer %d's range start %d" k
                   n.id n.key;
               match hi with
               | Some h when k >= h ->
                 fail
                   "skip_graph: key %d at peer %d reaches into successor \
                    range %d"
                   k n.id h
               | _ -> ());
        placement rest
    in
    placement nodes
  end
