module Rng = Baton_util.Rng

type event = Join | Leave | Fail

let schedule rng ~joins ~leaves ~fails =
  if joins < 0 || leaves < 0 || fails < 0 then invalid_arg "Churn.schedule";
  let events =
    Array.concat
      [ Array.make joins Join; Array.make leaves Leave; Array.make fails Fail ]
  in
  Rng.shuffle rng events;
  events

(* Correlated failure bursts: the base join/leave traffic is shuffled
   as in [schedule], but failures arrive in [bursts] runs of
   [burst_len] consecutive Fail events spliced at random offsets —
   modelling a rack or site dying at once rather than peers crashing
   independently. *)
let bursty rng ~joins ~leaves ~bursts ~burst_len =
  if joins < 0 || leaves < 0 || bursts < 0 || burst_len < 1 then
    invalid_arg "Churn.bursty";
  let base =
    Array.concat [ Array.make joins Join; Array.make leaves Leave ]
  in
  Rng.shuffle rng base;
  let offsets =
    Array.init bursts (fun _ -> Rng.int rng (Array.length base + 1))
  in
  Array.sort compare offsets;
  let out = ref [] in
  let next_burst = ref 0 in
  let emit_due i =
    while !next_burst < bursts && offsets.(!next_burst) <= i do
      for _ = 1 to burst_len do
        out := Fail :: !out
      done;
      incr next_burst
    done
  in
  Array.iteri
    (fun i ev ->
      emit_due i;
      out := ev :: !out)
    base;
  emit_due (Array.length base);
  Array.of_list (List.rev !out)

let alternating ~joins ~leaves =
  if joins < 0 || leaves < 0 then invalid_arg "Churn.alternating";
  let total = joins + leaves in
  let out = Array.make (max total 0) Join in
  let j = ref 0 and l = ref 0 in
  for i = 0 to total - 1 do
    let pick_join =
      if !j >= joins then false
      else if !l >= leaves then true
      else i mod 2 = 0
    in
    if pick_join then begin
      out.(i) <- Join;
      incr j
    end
    else begin
      out.(i) <- Leave;
      incr l
    end
  done;
  out
