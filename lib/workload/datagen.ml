module Rng = Baton_util.Rng
module Zipf = Baton_util.Zipf

let domain_lo = 1
let domain_hi = 1_000_000_000

type t =
  | Uniform of { rng : Rng.t; lo : int; hi : int }
  | Zipfian of { z : Zipf.t; rng : Rng.t; region : int; lo : int; hi : int }

(* Generators default to the canonical 10⁹ domain; scale sweeps pass
   their widened bounds so the key population tracks the key space. *)
let uniform ?(lo = domain_lo) ?(hi = domain_hi) rng = Uniform { rng; lo; hi }

let zipf ?(theta = 1.0) ?(universe = 100_000) ?(lo = domain_lo)
    ?(hi = domain_hi) rng =
  let region = max 1 ((hi - lo) / universe) in
  Zipfian { z = Zipf.create ~n:universe ~theta; rng; region; lo; hi }

(* A Zipfian rank maps to a fixed region of the domain; the key is
   uniform within the region, so a hot rank is a hot (but splittable)
   neighbourhood rather than a single unsplittable key. *)
let next = function
  | Uniform { rng; lo; hi } -> Rng.int_in_range rng ~lo ~hi:(hi - 1)
  | Zipfian { z; rng; region; lo; hi } ->
    let base = Zipf.sample_key z rng ~lo ~hi:(hi - region) in
    base + Rng.int rng region

let take t n = Array.init n (fun _ -> next t)
