(** Data-set generators for the experiments.

    The paper's evaluation inserts values drawn from the domain
    [\[1, 10^9)], either uniformly or Zipfian with parameter 1.0
    (Section V). Generators are deterministic given their [Rng.t]. *)

type t
(** A key stream. *)

val domain_lo : int
val domain_hi : int
(** The paper's domain: [1] and [10^9]. *)

val uniform : ?lo:int -> ?hi:int -> Baton_util.Rng.t -> t
(** Uniform keys over [\[lo, hi)] (default: the paper's domain). *)

val zipf :
  ?theta:float -> ?universe:int -> ?lo:int -> ?hi:int -> Baton_util.Rng.t -> t
(** Zipfian keys: [universe] regions of the domain (default 100 000)
    with rank frequencies proportional to [1/rank^theta] (default 1.0,
    the paper's parameter). Each rank owns a fixed region scattered
    deterministically over the domain and keys are uniform inside their
    region, so skew concentrates load on neighbourhoods that remain
    splittable by load balancing. *)

val next : t -> int
(** Draw the next key. *)

val take : t -> int -> int array
(** Draw the next [n] keys. *)
