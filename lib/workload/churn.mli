(** Churn schedules.

    Deterministic sequences of membership events for the dynamics and
    fault-tolerance experiments. *)

type event = Join | Leave | Fail

val schedule :
  Baton_util.Rng.t -> joins:int -> leaves:int -> fails:int -> event array
(** A shuffled schedule containing exactly the requested number of each
    event. *)

val bursty :
  Baton_util.Rng.t ->
  joins:int ->
  leaves:int ->
  bursts:int ->
  burst_len:int ->
  event array
(** Joins and leaves shuffled as in {!schedule}, with failures arriving
    in [bursts] runs of [burst_len] {e consecutive} [Fail] events
    spliced at seeded offsets — correlated crashes (a rack dying at
    once) rather than independent ones.
    @raise Invalid_argument on negative counts or [burst_len < 1]. *)

val alternating : joins:int -> leaves:int -> event array
(** Joins and leaves interleaved round-robin — the steady-state churn
    pattern. *)
