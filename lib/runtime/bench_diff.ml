(* Bench regression gate: exact comparison of the simulated sections,
   tolerance comparison of the wall-clock throughput.

   The split mirrors the determinism boundary drawn in [Driver]: every
   report field outside "profile" is a pure function of the seed, so
   two runs of the same build must agree to the byte — a difference
   there is a behaviour change the gate should fail loudly on, with the
   path of the first drifted leaves. The "profile" subtree is the host
   machine talking (wall clock, GC), so it is stripped from the exact
   comparison and only its events_per_s is checked, against a floor. *)

module Json = Baton_obs.Json

type verdict =
  | Pass of { details : string list }
  | Schema_mismatch of { old_schema : string; new_schema : string }
  | Simulated_mismatch of string list
  | Throughput_regress of string list

let rec strip_profile (j : Json.t) =
  match j with
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if String.equal k "profile" then None else Some (k, strip_profile v))
         fields)
  | Json.List items -> Json.List (List.map strip_profile items)
  | (Json.Null | Json.Bool _ | Json.Int _ | Json.Float _ | Json.String _) as v
    -> v

let scalar_label = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float f -> Printf.sprintf "%.12g" f
  | Json.String s -> Printf.sprintf "%S" s
  | Json.List _ -> "<list>"
  | Json.Obj _ -> "<object>"

let diff_paths ?(limit = 20) a b =
  let out = ref [] in
  let total = ref 0 in
  let note path msg =
    if !total < limit then out := Printf.sprintf "%s: %s" path msg :: !out;
    incr total
  in
  let rec go path a b =
    match (a, b) with
    | Json.Obj fa, Json.Obj fb ->
      let keys =
        List.sort_uniq String.compare (List.map fst fa @ List.map fst fb)
      in
      List.iter
        (fun k ->
          let sub = path ^ "." ^ k in
          match (List.assoc_opt k fa, List.assoc_opt k fb) with
          | Some va, Some vb -> go sub va vb
          | Some _, None -> note sub "missing in new"
          | None, Some _ -> note sub "missing in old"
          | None, None -> ())
        keys
    | Json.List xa, Json.List xb ->
      if List.length xa <> List.length xb then
        note path
          (Printf.sprintf "list length %d vs %d" (List.length xa)
             (List.length xb))
      else
        List.iteri
          (fun i (va, vb) -> go (Printf.sprintf "%s[%d]" path i) va vb)
          (List.combine xa xb)
    | a, b ->
      if a <> b then
        note path
          (Printf.sprintf "%s vs %s" (scalar_label a) (scalar_label b))
  in
  go "$" a b;
  (List.rev !out, !total)

let schema_of doc =
  match Json.member "schema" doc with
  | Some (Json.String s) -> s
  | Some _ | None -> "<missing>"

let mix_of i run =
  match Json.member "mix" run with
  | Some (Json.String s) -> s
  | _ -> Printf.sprintf "run %d" i

(* Every run in the document, labeled "overlay/mix". Reads the v6
   layout (runs grouped in per-overlay sections) and falls back to a
   v5-style top-level "runs" list (label = mix alone) so the gate can
   still compare two pre-v6 baselines. *)
let labeled_runs doc =
  match Json.member "overlays" doc with
  | Some (Json.List sections) ->
    List.concat_map
      (fun section ->
        let overlay =
          match Json.member "overlay" section with
          | Some (Json.String s) -> s
          | _ -> "<overlay>"
        in
        match Json.member "runs" section with
        | Some (Json.List runs) ->
          List.mapi (fun i run -> (overlay ^ "/" ^ mix_of i run, run)) runs
        | _ -> [])
      sections
  | _ -> (
    match Json.member "runs" doc with
    | Some (Json.List runs) ->
      List.mapi (fun i run -> (mix_of i run, run)) runs
    | _ -> [])

let events_per_s_of run =
  match Option.bind (Json.member "profile" run) (Json.member "events_per_s") with
  | Some (Json.Float f) -> Some f
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some _ | None -> None

let compare ~max_regress_pct ~old_doc ~new_doc =
  if max_regress_pct < 0. then
    invalid_arg "Bench_diff.compare: negative max_regress_pct";
  let old_schema = schema_of old_doc and new_schema = schema_of new_doc in
  if
    String.equal old_schema "<missing>"
    || (not (String.equal old_schema new_schema))
  then Schema_mismatch { old_schema; new_schema }
  else begin
    let diffs, total =
      diff_paths (strip_profile old_doc) (strip_profile new_doc)
    in
    if diffs <> [] then
      Simulated_mismatch
        (diffs
        @
        if total > List.length diffs then
          [ Printf.sprintf "... and %d more" (total - List.length diffs) ]
        else [])
    else begin
      (* Simulated sections are identical, so the run lists pair up
         one-to-one; only the wall-clock throughput can still differ. *)
      let details = ref [] and regressions = ref [] in
      List.iter
        (fun ((label, old_run), (_, new_run)) ->
          match (events_per_s_of old_run, events_per_s_of new_run) with
          | Some old_eps, Some new_eps when old_eps > 0. ->
            let floor = old_eps *. (1. -. (max_regress_pct /. 100.)) in
            let line =
              Printf.sprintf "%s: %.0f -> %.0f events/s (floor %.0f)" label
                old_eps new_eps floor
            in
            if new_eps < floor then regressions := line :: !regressions
            else details := line :: !details
          | _, _ ->
            details :=
              (label ^ ": no throughput sample on one side, check skipped")
              :: !details)
        (List.combine (labeled_runs old_doc) (labeled_runs new_doc));
      if !regressions <> [] then Throughput_regress (List.rev !regressions)
      else Pass { details = List.rev !details }
    end
  end

let exit_code = function
  | Pass _ -> 0
  | Schema_mismatch _ | Simulated_mismatch _ -> 1
  | Throughput_regress _ -> 2

let render = function
  | Pass { details } ->
    String.concat "\n"
      ("bench-diff: PASS (simulated metrics identical)" :: details)
  | Schema_mismatch { old_schema; new_schema } ->
    Printf.sprintf
      "bench-diff: SCHEMA MISMATCH (%s vs %s) — regenerate the baseline"
      old_schema new_schema
  | Simulated_mismatch lines ->
    String.concat "\n"
      ("bench-diff: SIMULATED METRICS DIFFER (behaviour change)" :: lines)
  | Throughput_regress lines ->
    String.concat "\n" ("bench-diff: THROUGHPUT REGRESSION" :: lines)
