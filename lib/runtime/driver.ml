(* Workload driver: open- and closed-loop load generation on the
   concurrent runtime.

   Composes the [lib/workload] generators (Zipf key skew, churn, range
   shapes) into operation plans, executes them as interleaved fibers,
   and reports throughput, per-kind latency digests and queue-depth
   statistics. The whole pipeline is a pure function of the config:
   the operation plan is pre-generated from the seed, execution
   interleaves through the deterministic engine, and the report
   serializes with stable field order — so two same-seed runs are
   byte-identical. *)

module Rng = Baton_util.Rng
module Zipf = Baton_util.Zipf
module Sorted_store = Baton_util.Sorted_store
module Timing = Baton_obs.Timing
module Json = Baton_obs.Json
module Trace = Baton_obs.Trace
module Oracle = Baton_obs.Oracle
module Profile = Baton_obs.Profile
module Heat = Baton_obs.Heat
module Series = Baton_obs.Series
module Metrics = Baton_sim.Metrics
module Bus = Baton_sim.Bus
module Engine = Baton_sim.Engine
module Partition = Baton_sim.Partition
module Datagen = Baton_workload.Datagen
module Net = Baton.Net
module Overlay = P2p_overlay.Overlay

type arrival =
  | Closed of { think_ms : float }
  | Open of { rate_per_s : float }

type mix = {
  mix_name : string;
  exact_w : int;
  range_w : int;
  insert_w : int;
  churn_w : int;
}

(* The three canonical mixes reported in BENCH_runtime.json. *)
let read_heavy =
  { mix_name = "read-heavy"; exact_w = 8; range_w = 1; insert_w = 1; churn_w = 0 }

let range_heavy =
  { mix_name = "range-heavy"; exact_w = 2; range_w = 7; insert_w = 1; churn_w = 0 }

let churn_heavy =
  { mix_name = "churn-heavy"; exact_w = 4; range_w = 2; insert_w = 2; churn_w = 2 }

let mixes = [ read_heavy; range_heavy; churn_heavy ]

(* Adversarial-scenario mix: reads and ranges the oracle can judge,
   inserts to keep the model moving, no client-driven churn — the
   membership stress comes from the fault schedule instead. Selectable
   by name but not part of the default bench sweep. *)
let adversarial =
  { mix_name = "adversarial"; exact_w = 5; range_w = 3; insert_w = 2; churn_w = 0 }

let mix_named name =
  List.find_opt (fun m -> String.equal m.mix_name name) (mixes @ [ adversarial ])

type config = {
  overlay : string;  (* canonical Overlay.S name; "baton" = runtime path *)
  n : int;
  seed : int;
  keys_per_node : int;
  clients : int;
  ops : int;
  arrival : arrival;
  range_span : int;
  theta : float;
  mix : mix;
  domain : Baton.Range.t option;  (* None = the paper's 1..10^9 domain *)
  timeout_ms : float;
  route_cache : bool;
  monitor_every_ms : float;  (* 0. = health monitoring off *)
  series_every_ms : float;  (* 0. = time-series sampling off *)
  profile : bool;  (* meter the simulator process (wall clock + GC) *)
  heat : bool;  (* demand attribution + heavy-hitter sketch + heatmap *)
  fault_schedule : Partition.schedule;  (* [] = no injected scenario *)
  oracle : bool;  (* check every completed op against the oracle *)
}

let config ?(overlay = "baton") ?(seed = 2005) ?(keys_per_node = 5)
    ?(clients = 32) ?(ops = 2000) ?(arrival = Closed { think_ms = 0. })
    ?(range_span = 2_000_000) ?(theta = 1.0) ?domain
    ?(timeout_ms = Runtime.default_timeout_ms) ?(route_cache = false)
    ?(monitor_every_ms = 0.) ?(series_every_ms = 0.) ?(profile = false)
    ?(heat = false) ?(fault_schedule = []) ?(oracle = false) ~n ~mix () =
  (* Canonicalize eagerly so an unknown name fails here, with the valid
     list in the exception, not deep inside [run]. *)
  let overlay =
    let module O = (val Overlay.of_name overlay : Overlay.S) in
    O.name
  in
  if n < 2 then invalid_arg "Driver.config: n < 2";
  if clients < 1 then invalid_arg "Driver.config: clients < 1";
  if ops < 1 then invalid_arg "Driver.config: ops < 1";
  if monitor_every_ms < 0. then
    invalid_arg "Driver.config: negative monitor_every_ms";
  if series_every_ms < 0. then
    invalid_arg "Driver.config: negative series_every_ms";
  if not (String.equal overlay "baton") then begin
    if fault_schedule <> [] then
      invalid_arg "Driver.config: fault schedules require the baton runtime";
    if route_cache then
      invalid_arg "Driver.config: the route cache is baton-only";
    if monitor_every_ms > 0. || series_every_ms > 0. || profile then
      invalid_arg
        "Driver.config: monitor/series/profile require the baton runtime";
    if heat then
      invalid_arg "Driver.config: heat instrumentation is baton-only";
    if Option.is_some domain then
      invalid_arg "Driver.config: custom domains require the baton runtime"
  end;
  {
    overlay;
    n;
    seed;
    keys_per_node;
    clients;
    ops;
    arrival;
    range_span;
    theta;
    mix;
    domain;
    timeout_ms;
    route_cache;
    monitor_every_ms;
    series_every_ms;
    profile;
    heat;
    fault_schedule;
    oracle;
  }

(* One planned operation. Join/Leave carry no payload: the peer they
   act on is chosen at execution time from the then-live membership. *)
type op =
  | Exact of int
  | Range of int * int
  | Insert of int
  | Join
  | Leave

let op_kind = function
  | Exact _ -> "exact"
  | Range _ -> "range"
  | Insert _ -> "insert"
  | Join -> "join"
  | Leave -> "leave"

let kind_order = [ "exact"; "range"; "insert"; "join"; "leave" ]

(* Pre-generate the operation plan from the seed: kinds by mix weight,
   exact keys Zipf-skewed over the loaded key set, ranges uniform with
   a fixed span, churn alternating join/leave so the size stays near
   [n]. *)
(* The key-space bounds this run draws from: the paper's canonical
   domain unless the config widened it (scale sweeps). *)
let domain_bounds cfg =
  match cfg.domain with
  | None -> (Datagen.domain_lo, Datagen.domain_hi)
  | Some r -> (r.Baton.Range.lo, r.Baton.Range.hi)

let plan_ops cfg ~keys =
  let m = cfg.mix in
  let total_w = m.exact_w + m.range_w + m.insert_w + m.churn_w in
  if total_w <= 0 then invalid_arg "Driver.plan_ops: empty mix";
  let dlo, dhi = domain_bounds cfg in
  let rng = Rng.create ((cfg.seed * 131) + 9) in
  let zipf = Zipf.create ~n:(Array.length keys) ~theta:cfg.theta in
  let churn_flip = ref false in
  Array.init cfg.ops (fun _ ->
      let r = Rng.int rng total_w in
      if r < m.exact_w then Exact keys.(Zipf.sample zipf rng - 1)
      else if r < m.exact_w + m.range_w then begin
        let lo = Rng.int_in_range rng ~lo:dlo ~hi:(max dlo (dhi - cfg.range_span)) in
        Range (lo, lo + cfg.range_span)
      end
      else if r < m.exact_w + m.range_w + m.insert_w then
        Insert (Rng.int_in_range rng ~lo:dlo ~hi:(dhi - 1))
      else begin
        churn_flip := not !churn_flip;
        if !churn_flip then Join else Leave
      end)

type report = {
  cfg : config;
  ops_issued : int;
  completed : int;
  failed : int;
  retries : int;
  messages : int;
  cache_messages : int;
  cache_hits : int;
  cache_misses : int;
  cache_stale : int;
  duration_ms : float;  (* simulated completion of the last finished op *)
  wall_ms : float;  (* host wall clock of the measured phase; 0 unprofiled *)
  events_per_s : float;  (* raw engine throughput; 0 unprofiled *)
  throughput_ops_s : float;
  latencies : (string * Timing.t) list;  (** in {!kind_order} *)
  depth_max : int;
  depth_mean : float;
  health : Json.t;  (** Monitor.json time series, [Json.Null] when off *)
  load_json : Json.t;  (** Heat.json demand section, [Json.Null] when off *)
  profile_json : Json.t;  (** Profile.json, [Json.Null] when off *)
  series : Series.t option;  (** periodic telemetry samples, when on *)
  partition_timeouts : int;  (** messages blocked by an active partition *)
  gray_drops : int;  (** messages dropped by a gray endpoint *)
  scenario : (float * string) list;  (** fault lifecycle, chronological *)
  oracle : Oracle.t option;  (** consistency verdicts, when enabled *)
}

let run_baton cfg =
  (* Phase 1 — synchronous setup (excluded from all measurements):
     build the tree, load the data. *)
  let net = Baton.Network.build ~seed:cfg.seed ?domain:cfg.domain cfg.n in
  let dlo, dhi = domain_bounds cfg in
  let gen = Datagen.uniform ~lo:dlo ~hi:dhi (Rng.create ((cfg.seed * 31) + 7)) in
  let keys = Datagen.take gen (cfg.keys_per_node * cfg.n) in
  (* Batched placement: one locate plus an in-order distribution pass,
     instead of a routed insert per key. *)
  ignore
    (Baton.Update.bulk_insert net ~from:(Net.random_peer net)
       (Array.to_list keys));
  if cfg.route_cache then Net.enable_route_cache net;
  (* Phase 2 — concurrent measured run. *)
  let rt = Runtime.create ~timeout_ms:cfg.timeout_ms net in
  let engine = Runtime.engine rt in
  let plan = plan_ops cfg ~keys in
  let membership = Runtime.Lock.create () in
  let crng = Rng.create ((cfg.seed * 17) + 23) in
  (* Consistency oracle: seeded with the bulk load (settled before the
     measured phase), fed every mutation and judging every completed
     read. A tracer rides along so each verdict carries the op's causal
     evidence. Both are pure observers — message counts are identical
     with the oracle on or off. *)
  let oracle =
    if not cfg.oracle then None
    else begin
      let o = Oracle.create () in
      Oracle.seed_keys o (Array.to_list keys);
      let tr = Trace.create () in
      Trace.use_engine tr engine;
      Net.set_tracer net (Some tr);
      Some o
    end
  in
  (* Demand-heat instrument: installed before the measured phase so
     every workload message is attributed (setup traffic — the bulk
     load — is excluded, like every other measurement). The decayed
     counters run on the engine's virtual clock. A pure observer: heat
     on vs. off counts byte-identical metrics and latency digests. *)
  let heat =
    if not cfg.heat then None
    else begin
      let dom = Net.domain net in
      let h =
        Heat.create ~lo:dom.Baton.Range.lo ~hi:dom.Baton.Range.hi ()
      in
      Heat.set_clock h (Some (fun () -> Engine.now engine));
      Net.set_heat net (Some h);
      Some h
    end
  in
  (* Adversarial scenario: translate the fault schedule into engine
     events. Faults can only fire while the engine runs, i.e. during
     the measured phase — never during setup. Suspicion-driven repair
     is enabled (peers must recover on their own; no god view) and
     serialized through the same membership lock as joins/leaves, so
     structural mutations never interleave. *)
  let scenario_notes = ref [] in
  if cfg.fault_schedule <> [] then begin
    Net.set_suspicion_repair net true;
    Net.set_repair_serializer net
      (Some (fun f -> Runtime.Lock.with_lock membership f));
    let live_peers () =
      List.filter
        (fun (p : Baton.Node.t) ->
          not (Bus.is_failed (Net.bus net) p.Baton.Node.id))
        (Net.peers net)
    in
    let peers_in_order () =
      live_peers ()
      |> List.sort (fun (a : Baton.Node.t) (b : Baton.Node.t) ->
             compare a.Baton.Node.range.Baton.Range.lo
               b.Baton.Node.range.Baton.Range.lo)
      |> List.map (fun (p : Baton.Node.t) -> p.Baton.Node.id)
      |> Array.of_list
    in
    let pick_subtree srng =
      (* Sample a live internal node (level >= 2 keeps the blast radius
         below "most of the network") and take its whole subtree — the
         correlated victim group. Falls back to a single random live
         peer in tiny or degenerate trees. *)
      let live =
        List.sort
          (fun (a : Baton.Node.t) (b : Baton.Node.t) ->
            compare a.Baton.Node.id b.Baton.Node.id)
          (live_peers ())
      in
      let internal =
        List.filter
          (fun (p : Baton.Node.t) ->
            Baton.Node.level p >= 2 && not (Baton.Node.is_leaf p))
          live
      in
      match (internal, live) with
      | [], [] -> [||]
      | [], _ ->
        [| (List.nth live (Rng.int srng (List.length live))).Baton.Node.id |]
      | _, _ ->
        let top = List.nth internal (Rng.int srng (List.length internal)) in
        let rec collect pos acc =
          match Baton.Wiring.occupant net pos with
          | None -> acc
          | Some (c : Baton.Node.t) ->
            let acc = c.Baton.Node.id :: acc in
            let acc = collect (Baton.Position.left_child pos) acc in
            collect (Baton.Position.right_child pos) acc
        in
        collect top.Baton.Node.pos []
        |> List.filter (fun id -> not (Bus.is_failed (Net.bus net) id))
        |> List.sort_uniq compare |> Array.of_list
    in
    let crash id =
      match Net.peer_opt net id with
      | None -> ()
      | Some (victim : Baton.Node.t) ->
        (* The crash destroys the peer's data at this instant; tell the
           model before the bus refuses messages to it. *)
        (match oracle with
        | Some o ->
          Oracle.note_lost o ~time:(Engine.now engine)
            (Sorted_store.to_list victim.Baton.Node.store)
        | None -> ());
        Baton.Failure.crash net victim
    in
    let note msg = scenario_notes := (Engine.now engine, msg) :: !scenario_notes in
    Partition.install ~bus:(Net.bus net) ~engine ~seed:((cfg.seed * 67) + 5)
      ~hooks:{ Partition.peers_in_order; pick_subtree; crash; note }
      cfg.fault_schedule
  end;
  let completed = ref 0 and failed = ref 0 in
  (* Completion instant of the last finished operation — the measured
     duration. [Runtime.now] after the drain would also include
     trailing non-workload events (the final monitor tick, a last
     think-time sleep), which are not work. *)
  let last_done = ref 0. in
  let latencies = List.map (fun k -> (k, Timing.create ())) kind_order in
  let par l r = Runtime.both l r in
  let execute op =
    match op with
    | Exact k ->
      `Lookup (k, Baton.Search.lookup net ~from:(Net.random_peer net) k)
    | Range (lo, hi) ->
      `Ranged (lo, hi, Baton.Search.range ~par net ~from:(Net.random_peer net) ~lo ~hi)
    | Insert k ->
      ignore (Baton.Update.insert net ~from:(Net.random_peer net) k);
      `Inserted k
    | Join ->
      Runtime.Lock.with_lock membership (fun () ->
          ignore (Baton.Network.join net));
      `Membership
    | Leave ->
      Runtime.Lock.with_lock membership (fun () ->
          if Net.size net > 2 then
            Baton.Network.leave net (Rng.pick crng (Net.live_ids net)));
      `Membership
  in
  (* The trace of the operation that just completed. Safe to read after
     [execute] returns: closing the episode and this check run with no
     suspension point between them, so no interleaved fiber can have
     displaced it. *)
  let latest_trace () =
    match Net.tracer net with
    | None -> None
    | Some tr -> Option.map (Trace.analyze ?top:None) (Trace.latest tr)
  in
  let run_op i =
    let op = plan.(i) in
    let digest = List.assoc (op_kind op) latencies in
    let started = Runtime.now rt in
    (match (oracle, op) with
    | Some o, Insert k -> Oracle.begin_mutation o k
    | _ -> ());
    match execute op with
    | outcome ->
      incr completed;
      let finished = Runtime.now rt in
      last_done := finished;
      Timing.add digest (finished -. started);
      (match oracle with
      | None -> ()
      | Some o -> (
        match outcome with
        | `Lookup (k, (r : Baton.Search.result)) ->
          ignore
            (Oracle.check_exact o ?trace:(latest_trace ()) ~started ~finished
               ~key:k ~found:r.found ~complete:r.complete ()
              : Oracle.verdict)
        | `Ranged (lo, hi, (r : Baton.Search.result)) ->
          ignore
            (Oracle.check_range o ?trace:(latest_trace ()) ~started ~finished
               ~lo ~hi ~keys:r.keys ~complete:r.complete ~holes:r.holes ()
              : Oracle.verdict)
        | `Inserted k -> Oracle.commit_insert o k ~started ~finished
        | `Membership -> ()))
    | exception _ ->
      (* Operations racing churn can find their origin gone or their
         walk stuck; on a real deployment the client would retry. The
         driver counts the casualty and moves on — determinism is
         unaffected, the failure is part of the seeded schedule. *)
      (match (oracle, op) with
      | Some o, Insert k -> Oracle.abort_mutation o k
      | _ -> ());
      incr failed;
      last_done := Runtime.now rt
  in
  (match cfg.arrival with
  | Closed { think_ms } ->
    if think_ms < 0. then invalid_arg "Driver.run: negative think_ms";
    (* Closed loop: [clients] fibers, each picking the next unissued
       operation as soon as its previous one completes. *)
    let next = ref 0 in
    let rec client () =
      let i = !next in
      if i < Array.length plan then begin
        incr next;
        run_op i;
        if think_ms > 0. then Runtime.sleep think_ms;
        client ()
      end
    in
    for _ = 1 to min cfg.clients cfg.ops do
      Runtime.spawn rt client ~on_done:(fun _ -> ())
    done
  | Open { rate_per_s } ->
    if rate_per_s <= 0. then invalid_arg "Driver.run: rate_per_s <= 0";
    (* Open loop: operations arrive on a seeded exponential process at
       the aggregate rate, regardless of completions. *)
    let arng = Rng.create ((cfg.seed * 41) + 3) in
    let mean_gap_ms = 1000. /. rate_per_s in
    let at = ref 0. in
    Array.iteri
      (fun i _ ->
        Runtime.spawn ~at:!at rt (fun () -> run_op i) ~on_done:(fun _ -> ());
        let u = Rng.float arng 1.0 in
        at := !at +. (-.mean_gap_ms *. log (1. -. (u *. 0.999))))
      plan);
  (* Health monitor: a self-rescheduling engine tick, installed after
     the workload fibers so the first sample lands one period into the
     run. It stops rescheduling once every fiber has finished, so the
     engine still drains. A pure observer — sampling sends no message
     and draws from no protocol PRNG, so runs with monitoring on and
     off count byte-identical metrics and finish at the same virtual
     instant. *)
  let monitor =
    if cfg.monitor_every_ms <= 0. then None
    else begin
      let mon = Baton.Monitor.create net in
      Engine.every engine ~period:cfg.monitor_every_ms (fun () ->
          ignore
            (Baton.Monitor.tick mon ~time:(Engine.now engine)
              : Baton.Monitor.sample);
          Runtime.live_fibers rt > 0);
      Some mon
    end
  in
  (* The measurement checkpoint: everything below counts only the
     measured phase, not setup. Taken before the samplers are installed
     so the first time-series sample already reads measured-phase
     deltas; nothing between here and [Runtime.run] sends a message. *)
  let metrics = Net.metrics net in
  let cp = Metrics.checkpoint metrics in
  (* Time-series sampler: like the monitor, a self-rescheduling pure
     observer on the virtual clock. Every sampled quantity is
     deterministic (counters, fiber counts, queue high-water, monitor
     rank) — wall-clock numbers live only in the profile section — so
     the exported series is byte-identical across same-seed runs. It is
     installed after the monitor: at a shared virtual instant the
     engine pops ties in schedule order, so the sample sees the
     monitor's tick from the same instant. *)
  let series =
    if cfg.series_every_ms <= 0. then None
    else begin
      let s = Series.create () in
      Engine.every engine ~period:cfg.series_every_ms (fun () ->
          let health_rank =
            match monitor with
            | None -> -1.
            | Some mon -> (
              match Baton.Monitor.latest mon with
              | None -> -1.
              | Some smp ->
                float_of_int (Baton.Monitor.level_rank smp.Baton.Monitor.overall))
          in
          Series.record s ~time:(Engine.now engine)
            ([
               ("completed", float_of_int !completed);
              ("failed", float_of_int !failed);
              ("messages", float_of_int (Metrics.since metrics cp));
              ("cache_messages", float_of_int (Metrics.aux_since metrics cp));
              ( "cache_hits",
                float_of_int
                  (Metrics.event_since metrics cp Baton.Msg.ev_cache_hit) );
              ( "retries",
                float_of_int (Metrics.event_since metrics cp Baton.Msg.ev_retry)
              );
              ("live_fibers", float_of_int (Runtime.live_fibers rt));
              ("pending_events", float_of_int (Engine.pending engine));
               ("queue_depth_max", float_of_int (Runtime.queue_depth_max rt));
               ("health_rank", health_rank);
             ]
            @
            (* Skew trajectory in the shared ring: the decayed-counter
               max/mean at each sample instant — how concentration
               moves over time, next to the counters it explains. Only
               present when the heat instrument is on, so heat-off
               series stay byte-identical to pre-heat builds. *)
            (match heat with
            | None -> []
            | Some h -> [ ("heat_skew", Heat.skew h) ]));
          Runtime.live_fibers rt > 0);
      Some s
    end
  in
  (* Self-profiler: meters the host process around the measured phase
     only (setup is excluded, like every other measurement). The engine
     probe times event dispatch — the ground-truth busy meter — and
     [Net.set_profiler] wires the bus-delivery probe plus the protocol
     regions. Detached right after the drain so the report holds a
     closed interval. *)
  let profiler =
    if not cfg.profile then None
    else begin
      let p = Profile.create () in
      Net.set_profiler net (Some p);
      Engine.set_probe engine
        (Some
           {
             Engine.before = (fun () -> Profile.enter p Profile.s_dispatch);
             after = (fun () -> Profile.leave p Profile.s_dispatch);
           });
      Some p
    end
  in
  Runtime.run rt;
  (match profiler with
  | None -> ()
  | Some p ->
    Profile.stop p;
    Engine.set_probe engine None;
    Net.set_profiler net None);
  let duration_ms = !last_done in
  {
    cfg;
    ops_issued = Array.length plan;
    completed = !completed;
    failed = !failed;
    retries = Metrics.event_since metrics cp Baton.Msg.ev_retry;
    messages = Metrics.since metrics cp;
    cache_messages = Metrics.aux_since metrics cp;
    cache_hits = Metrics.event_since metrics cp Baton.Msg.ev_cache_hit;
    cache_misses = Metrics.event_since metrics cp Baton.Msg.ev_cache_miss;
    cache_stale = Metrics.event_since metrics cp Baton.Msg.ev_cache_stale;
    duration_ms;
    wall_ms = (match profiler with Some p -> Profile.elapsed_ms p | None -> 0.);
    events_per_s =
      (match profiler with Some p -> Profile.events_per_s p | None -> 0.);
    throughput_ops_s =
      (if duration_ms > 0. then float_of_int !completed /. duration_ms *. 1000.
       else 0.);
    latencies;
    depth_max = Runtime.queue_depth_max rt;
    depth_mean = Runtime.queue_depth_mean rt;
    health =
      (match monitor with
      | None -> Json.Null
      | Some mon -> Baton.Monitor.json mon);
    load_json = (match heat with Some h -> Heat.json h | None -> Json.Null);
    profile_json =
      (match profiler with Some p -> Profile.json p | None -> Json.Null);
    series;
    partition_timeouts = Metrics.event_since metrics cp Bus.partition_event;
    gray_drops = Metrics.event_since metrics cp Bus.gray_event;
    scenario = List.rev !scenario_notes;
    oracle;
  }

(* Comparison-overlay path: the same seeded plan, executed sequentially
   against an [Overlay.S] implementation. These overlays are synchronous
   (no fiber runtime), so the virtual clock is the paper's own metric —
   one protocol message = one virtual millisecond. Per-op latency is the
   op's message bill, [duration_ms] the measured phase's total, and the
   oracle judges reads over the same message clock (ops never overlap,
   so every window is definite). Equal accounting with the baton path:
   identical op plan, identical key load, setup excluded. *)
let run_overlay cfg (module O : Overlay.S) =
  let t = O.create ~seed:cfg.seed ~n:cfg.n in
  let gen = Datagen.uniform (Rng.create ((cfg.seed * 31) + 7)) in
  let keys = Datagen.take gen (cfg.keys_per_node * cfg.n) in
  O.bulk_load t (Array.to_list keys);
  let plan = plan_ops cfg ~keys in
  let crng = Rng.create ((cfg.seed * 17) + 23) in
  let oracle =
    if not cfg.oracle then None
    else begin
      let o = Oracle.create () in
      Oracle.seed_keys o (Array.to_list keys);
      Some o
    end
  in
  let base = O.stats t in
  let clock () = float_of_int ((O.stats t).Overlay.total - base.Overlay.total) in
  let completed = ref 0 and failed = ref 0 in
  let last_done = ref 0. in
  let latencies = List.map (fun k -> (k, Timing.create ())) kind_order in
  Array.iter
    (fun op ->
      let digest = List.assoc (op_kind op) latencies in
      let started = clock () in
      (match (oracle, op) with
      | Some o, Insert k -> Oracle.begin_mutation o k
      | _ -> ());
      match
        match op with
        | Exact k -> `Lookup (k, O.lookup t k)
        | Range (lo, hi) -> `Ranged (lo, hi, O.range_query t ~lo ~hi)
        | Insert k ->
          O.insert t k;
          `Inserted k
        | Join ->
          O.join t;
          `Membership
        | Leave ->
          O.leave_random t crng;
          `Membership
      with
      | outcome ->
        incr completed;
        let finished = clock () in
        last_done := finished;
        Timing.add digest (finished -. started);
        (match oracle with
        | None -> ()
        | Some o -> (
          match outcome with
          | `Lookup (k, found) ->
            ignore
              (Oracle.check_exact o ~started ~finished ~key:k ~found
                 ~complete:true ()
                : Oracle.verdict)
          | `Ranged (lo, hi, ks) ->
            ignore
              (Oracle.check_range o ~started ~finished ~lo ~hi ~keys:ks
                 ~complete:true ~holes:[] ()
                : Oracle.verdict)
          | `Inserted k -> Oracle.commit_insert o k ~started ~finished
          | `Membership -> ()))
      | exception _ ->
        (* E.g. [Overlay.Unsupported] for a range query on chord: the
           op was issued, the overlay cannot serve it — a counted
           failure, exactly like a casualty on the runtime path. *)
        (match (oracle, op) with
        | Some o, Insert k -> Oracle.abort_mutation o k
        | _ -> ());
        incr failed;
        last_done := clock ())
    plan;
  let duration_ms = !last_done in
  let stats = O.stats t in
  {
    cfg;
    ops_issued = Array.length plan;
    completed = !completed;
    failed = !failed;
    retries = 0;
    messages = stats.Overlay.total - base.Overlay.total;
    cache_messages = stats.Overlay.cache - base.Overlay.cache;
    cache_hits = 0;
    cache_misses = 0;
    cache_stale = 0;
    duration_ms;
    wall_ms = 0.;
    events_per_s = 0.;
    throughput_ops_s =
      (if duration_ms > 0. then float_of_int !completed /. duration_ms *. 1000.
       else 0.);
    latencies;
    depth_max = 0;
    depth_mean = 0.;
    health = Json.Null;
    load_json = Json.Null;
    profile_json = Json.Null;
    series = None;
    partition_timeouts = 0;
    gray_drops = 0;
    scenario = [];
    oracle;
  }

let run cfg =
  if String.equal cfg.overlay "baton" then run_baton cfg
  else run_overlay cfg (Overlay.of_name cfg.overlay)

(* --- Scale sweep ----------------------------------------------------

   The n-sweep behind `bench-scale`: the same read-heavy measured phase
   at each population size, profiled, so raw engine throughput
   (events/s) is reported per n. Two scale-dependent knobs keep the
   workload self-similar instead of degenerate:

   - the key domain widens with n (2^26 keys of room per peer, never
     below the canonical 10^9): a fixed 10^9-wide domain runs out of
     integer width around n = 10^5 — [Range.midpoint] cannot split a
     unit interval. Per peer, 2^26 is deliberately lavish: rotations
     decouple a node's range width from its depth, so the deepest
     split chain runs ~2x the tree height (measured: 24 halvings at
     n = 10^4, 31 at 10^5, ~38 extrapolated at 10^6), and the domain
     must absorb the chain maximum, not the balanced average;

   - the range-query span stays at 1/500 of the domain (the canonical
     2·10^6 over 10^9), so a range op sweeps a comparable slice of the
     tree at every n.

   Each point is an ordinary [report] whose mix is named "n=<n>", so
   the document's top-level "runs" list is exactly the layout
   [Bench_diff.labeled_runs] already labels, exact-compares (simulated
   fields) and gates (profile.events_per_s) — the scale baseline needs
   no new diff machinery. *)

let scale_domain n =
  Baton.Range.make ~lo:1 ~hi:(max Datagen.domain_hi (n * 67_108_864))

let scale_config ?(seed = 2005) ?(keys_per_node = 2) ?(ops = 2000)
    ?(clients = 32) n =
  let domain = scale_domain n in
  let width = domain.Baton.Range.hi - domain.Baton.Range.lo in
  config ~seed ~keys_per_node ~ops ~clients ~range_span:(width / 500) ~domain
    ~profile:true ~n
    ~mix:{ read_heavy with mix_name = Printf.sprintf "n=%d" n }
    ()

let run_scale ?seed ?keys_per_node ?ops ?clients ?(progress = fun _ -> ()) ns =
  if ns = [] then invalid_arg "Driver.run_scale: empty n list";
  List.map
    (fun n ->
      let r = run_baton (scale_config ?seed ?keys_per_node ?ops ?clients n) in
      progress r;
      r)
    ns

(* --- Serialization -------------------------------------------------- *)

let arrival_json = function
  | Closed { think_ms } ->
    Json.Obj [ ("model", Json.String "closed"); ("think_ms", Json.Float think_ms) ]
  | Open { rate_per_s } ->
    Json.Obj [ ("model", Json.String "open"); ("rate_per_s", Json.Float rate_per_s) ]

let report_json r =
  Json.Obj
    ([
      ("mix", Json.String r.cfg.mix.mix_name);
      ("n", Json.Int r.cfg.n);
      ("seed", Json.Int r.cfg.seed);
      ("clients", Json.Int r.cfg.clients);
      ("arrival", arrival_json r.cfg.arrival);
      ("ops_issued", Json.Int r.ops_issued);
      ("completed", Json.Int r.completed);
      ("failed", Json.Int r.failed);
      ("retries", Json.Int r.retries);
      ("messages", Json.Int r.messages);
      ("route_cache", Json.Bool r.cfg.route_cache);
      ( "cache",
        Json.Obj
          [
            ("messages", Json.Int r.cache_messages);
            ("hits", Json.Int r.cache_hits);
            ("misses", Json.Int r.cache_misses);
            ("stale", Json.Int r.cache_stale);
          ] );
      ("duration_ms", Json.Float r.duration_ms);
      ("throughput_ops_per_s", Json.Float r.throughput_ops_s);
      ( "latency_ms",
        Json.Obj
          (List.filter_map
             (fun (kind, d) ->
               if Timing.count d = 0 then None else Some (kind, Timing.json d))
             r.latencies) );
      ( "queue_depth",
        Json.Obj
          [
            ("max", Json.Int r.depth_max); ("mean", Json.Float r.depth_mean);
          ] );
      ("monitor_every_ms", Json.Float r.cfg.monitor_every_ms);
      ("health", r.health);
      ("series_every_ms", Json.Float r.cfg.series_every_ms);
      ( "timeseries",
        match r.series with
        | None -> Json.Null
        | Some s ->
          Json.Obj
            (("every_ms", Json.Float r.cfg.series_every_ms)
            :: Series.json_fields s) );
      (* Host wall-clock / GC numbers — inherently non-deterministic.
         Everything above this field is a pure function of the seed;
         seeded byte-comparisons must run unprofiled (profile = Null)
         or strip this subtree ({!Bench_diff} does the latter). *)
      ("profile", r.profile_json);
      ( "faults",
        Json.Obj
          [
            ( "schedule",
              if r.cfg.fault_schedule = [] then Json.Null
              else Json.String (Partition.to_string r.cfg.fault_schedule) );
            ("partition_timeouts", Json.Int r.partition_timeouts);
            ("gray_drops", Json.Int r.gray_drops);
            ( "scenario",
              Json.List
                (List.map
                   (fun (t, msg) ->
                     Json.Obj
                       [ ("t", Json.Float t); ("msg", Json.String msg) ])
                   r.scenario) );
          ] );
      ( "oracle",
        match r.oracle with None -> Json.Null | Some o -> Oracle.json o );
    ]
    @
    (* The demand section exists only when the heat instrument was on:
       heat-off reports are byte-identical to pre-heat builds (the
       neutrality guard tests exactly this), and the scale/overlay
       documents that run heatless keep their committed bytes. *)
    (match r.load_json with
    | Json.Null -> []
    | load -> [ ("load", load) ]))

(* v7: a run object gains an optional [load] section (per-peer
   serve/route/maint/aux attribution, top-k heavy hitters, key-space
   heatmap, decayed-skew summary) when heat instrumentation is on, the
   time-series samples gain a [heat_skew] field alongside it, and
   health samples carry [hot_share] plus the [hotspot] component.
   Every pre-existing field is byte-identical to its v6 value. *)
let schema_version = "baton-bench-runtime-v7"

let scale_schema_version = "baton-bench-scale-v1"

let scale_json reports =
  Json.Obj
    [
      ("schema", Json.String scale_schema_version);
      ("runs", Json.List (List.map report_json reports));
    ]

(* v6: runs grouped per overlay. A run object is unchanged from v5, so
   a baton-only document differs from its v5 counterpart only by this
   wrapper (schema string + one level of nesting). *)
let bench_json sections =
  Json.Obj
    [
      ("schema", Json.String schema_version);
      ( "overlays",
        Json.List
          (List.map
             (fun (overlay, reports) ->
               Json.Obj
                 [
                   ("overlay", Json.String overlay);
                   ("runs", Json.List (List.map report_json reports));
                 ])
             sections) );
    ]

let summary r =
  let digest kind =
    let d = List.assoc kind r.latencies in
    if Timing.count d = 0 then "-"
    else
      Printf.sprintf "p50 %.0f / p95 %.0f / p99 %.0f ms"
        (Timing.percentile d 50.) (Timing.percentile d 95.)
        (Timing.percentile d 99.)
  in
  let base =
    Printf.sprintf
      "%-12s %5d ops  %5d ok  %3d failed  %8.1f ops/s  exact %s  range %s"
      r.cfg.mix.mix_name r.ops_issued r.completed r.failed r.throughput_ops_s
      (digest "exact") (digest "range")
  in
  let base =
    if r.wall_ms <= 0. then base
    else
      Printf.sprintf "%s  wall %.0f ms  %.0f ev/s" base r.wall_ms
        r.events_per_s
  in
  match r.oracle with
  | None -> base
  | Some o ->
    Printf.sprintf "%s  oracle %d checked / %d violations" base
      (Oracle.checked o) (Oracle.violation_count o)

(* One JSON object per line per retained sample, tagged with the
   overlay and mix it came from — the artifact format CI uploads.
   Deterministic: only virtual-clock timestamps and counter values
   appear. (Only the baton runtime samples series, but the tag keeps
   lines self-describing in a mixed artifact.) *)
let timeseries_jsonl sections =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (overlay, reports) ->
      List.iter
        (fun r ->
          match r.series with
          | None -> ()
          | Some s ->
            List.iter
              (fun smp ->
                let fields =
                  match Series.sample_json smp with
                  | Json.Obj fields -> fields
                  | _ -> assert false
                in
                Buffer.add_string buf
                  (Json.to_string
                     (Json.Obj
                        (("overlay", Json.String overlay)
                        :: ("mix", Json.String r.cfg.mix.mix_name)
                        :: fields)));
                Buffer.add_char buf '\n')
              (Series.samples s))
        reports)
    sections;
  Buffer.contents buf
