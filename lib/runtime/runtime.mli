(** Concurrent discrete-event runtime for BATON operations.

    Runs protocol operations from [lib/core] as interleaved {e fibers}
    on the simulation {!Baton_sim.Engine}, without rewriting them into
    explicit state machines: OCaml effect handlers suspend an operation
    at every transmitted message (via {!Baton.Net.set_hop_wait}) and
    resume it when the virtual clock reaches the delivery instant drawn
    from the {!Baton_sim.Latency} model — or after {!timeout_ms} for
    messages that will never be answered. Consequences:

    - an operation's completion time is its {e critical path} through
      the network, so independent work (the two directional sweeps of a
      range query, concurrent queries from different clients) overlaps
      in time, while the paper's message counts are untouched — the
      same messages are sent, only the clock differs;
    - joins, leaves, failures and queries interleave at message
      granularity, the concurrency regime the paper's theorems assume.

    Determinism: all context switches pass through the engine's event
    queue, ordered by (time, insertion seq); latencies and faults come
    from seeded PRNGs. Same seed, same interleaving, byte-identical
    results. *)

type t

val create : ?timeout_ms:float -> ?latency:Baton_sim.Latency.t -> Baton.Net.t -> t
(** A runtime driving the given network. [timeout_ms] (default 300.)
    is the retransmission-timer interval a sender waits before
    declaring a message unanswered; [latency] defaults to
    [Latency.create ()] (20 ms base + Exp(60 ms) per directed pair).
    @raise Invalid_argument if [timeout_ms <= 0]. *)

val default_timeout_ms : float

val engine : t -> Baton_sim.Engine.t
val net : t -> Baton.Net.t
val latency : t -> Baton_sim.Latency.t
val timeout_ms : t -> float

val now : t -> float
(** Current virtual time in milliseconds. *)

val live_fibers : t -> int
(** Spawned fibers that have not yet completed. *)

val spawn :
  ?at:float -> t -> (unit -> 'a) -> on_done:(('a, exn) result -> unit) -> unit
(** [spawn t f ~on_done] schedules [f] to run as a fiber (at virtual
    time [at], default: now). [on_done] receives the result or the
    exception that escaped [f]. Fibers must be driven by {!run}. *)

val run : t -> unit
(** Install the hop-suspension hook on the network, execute events
    until every fiber has completed, then restore the network to
    synchronous operation. Operations invoked outside [run] (setup,
    verification) behave exactly as without a runtime. *)

(** {1 Inside a fiber}

    The following may only be called from code running under {!run};
    outside a fiber they raise [Effect.Unhandled]. *)

val sleep : float -> unit
(** Suspend the calling fiber for the given virtual duration (ms).
    @raise Invalid_argument on negative durations. *)

val both : (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Fork-join: run both thunks as child fibers of the caller and
    return both results once both complete. The children interleave
    with each other (and everything else); the left child starts
    first. If either raises, the exception propagates to the caller
    after both have finished. [both] matches {!Baton.Search.par}, so
    [Search.range ~par:(fun l r -> both l r)] fans a range query's two
    sweeps out in parallel. *)

val suspend : ((unit -> unit) -> unit) -> unit
(** [suspend register] parks the calling fiber and hands [register] a
    wake-up callback; calling it schedules the fiber's resumption at
    the then-current virtual time. The primitive under {!Lock}. *)

(** {1 Queue depth}

    A delivered message occupies its destination's queue from
    transmission to delivery; the runtime tracks the high-water mark
    per destination. *)

val queue_depths : t -> (int * int) list
(** Per-peer maximum in-flight depth, ascending peer id; peers that
    never received a message are absent. *)

val queue_depth_max : t -> int
val queue_depth_mean : t -> float
(** Maximum/mean of the per-peer maxima (0 before any traffic). *)

(** Cooperative mutex for fibers. The workload driver wraps membership
    changes (join/leave) in one so structural mutations serialize,
    while queries race them freely — mirroring the paper's assumption
    that concurrent joins are serialized by the protocol, not the
    simulator. FIFO hand-off: waiters resume in arrival order. *)
module Lock : sig
  type t

  val create : unit -> t
  val held : t -> bool

  val acquire : t -> unit
  (** Take the lock, suspending the fiber until available. *)

  val release : t -> unit
  (** Release, handing off to the earliest waiter if any.
      @raise Invalid_argument if the lock is not held. *)

  val with_lock : t -> (unit -> 'a) -> 'a
  (** [acquire]; run; [release] (also on exception). *)
end
