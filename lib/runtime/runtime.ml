(* Concurrent discrete-event runtime.

   Executes BATON operations as interleaved fibers on the simulation
   {!Engine}. The protocol code in [lib/core] is reused unchanged: an
   operation runs as ordinary OCaml until it transmits a message, at
   which point the [Net] hop hook performs an effect; the handler below
   captures the continuation and schedules its resumption when the
   engine's clock reaches the delivery instant given by the {!Latency}
   model (or the timeout interval, for messages that get no answer).
   Between suspension and resumption, other fibers run — so joins,
   leaves and queries interleave at message granularity, like on a real
   network, and an operation's completion time is its critical path,
   not its hop sum.

   Determinism: every context switch goes through the engine's event
   queue, which orders events by (time, insertion sequence) — see
   {!Baton_sim.Event_queue}. Delivery times come from the seeded
   latency model and fault decisions from the seeded fault PRNG in bus
   order, so a fixed seed fixes the entire interleaving. Nothing here
   reads wall-clock time or OS randomness. *)

module Engine = Baton_sim.Engine
module Latency = Baton_sim.Latency
module Net = Baton.Net

type t = {
  engine : Engine.t;
  latency : Latency.t;
  timeout_ms : float;
  net : Net.t;
  (* Per-destination in-flight message accounting: a message is "in
     the queue" of its destination from transmission to delivery. *)
  inflight : (int, int) Hashtbl.t;
  depth_max : (int, int) Hashtbl.t;
  mutable live_fibers : int;
}

type _ Effect.t +=
  | Wait : float -> unit Effect.t
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
  | Fork : (unit -> 'a) * (unit -> 'b) -> ('a * 'b) Effect.t

let default_timeout_ms = 300.

let create ?(timeout_ms = default_timeout_ms) ?latency net =
  if timeout_ms <= 0. then invalid_arg "Runtime.create: timeout_ms <= 0";
  let latency =
    match latency with Some l -> l | None -> Latency.create ()
  in
  {
    engine = Engine.create ();
    latency;
    timeout_ms;
    net;
    inflight = Hashtbl.create 1024;
    depth_max = Hashtbl.create 1024;
    live_fibers = 0;
  }

let engine t = t.engine
let net t = t.net
let latency t = t.latency
let timeout_ms t = t.timeout_ms
let now t = Engine.now t.engine
let live_fibers t = t.live_fibers

(* --- Fiber execution ----------------------------------------------- *)

let sleep delay =
  if delay < 0. then invalid_arg "Runtime.sleep: negative delay";
  Effect.perform (Wait delay)

let both f g = Effect.perform (Fork (f, g))

let suspend register = Effect.perform (Suspend register)

(* Run [f] as a fiber under the effect handler. Children forked with
   [both] run under their own [exec] (the handler closes over the same
   [t]), and the parent's continuation resumes only when both are
   done. All continuations are one-shot and always resumed exactly
   once — the engine drains its queue completely — so no continuation
   is leaked.

   Every suspension point snapshots the tracer's ambient causal state
   ([Net.trace_mark]) and reinstates it when the fiber resumes: between
   the capture and the resumption other fibers run and move the ambient
   episode/parent to their own, so without the restore an operation's
   hops would chain into whichever trace happened to run last. Free
   (a [None]) when no tracer is installed. *)
let rec exec : type a. t -> (unit -> a) -> ((a, exn) result -> unit) -> unit =
 fun t f on_done ->
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun v -> on_done (Ok v));
      exnc = (fun e -> on_done (Error e));
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Wait delay ->
            Some
              (fun (k : (b, unit) continuation) ->
                let m = Net.trace_mark t.net in
                Engine.schedule t.engine ~delay (fun () ->
                    Net.restore_trace_mark t.net m;
                    continue k ()))
          | Suspend register ->
            Some
              (fun (k : (b, unit) continuation) ->
                let m = Net.trace_mark t.net in
                (* The resumption is scheduled, not run inline, so a
                   wake-up from another fiber's stack still interleaves
                   through the deterministic event queue. *)
                register (fun () ->
                    Engine.schedule t.engine ~delay:0. (fun () ->
                        Net.restore_trace_mark t.net m;
                        continue k ())))
          | Fork (fa, fb) ->
            Some
              (fun (k : (b, unit) continuation) ->
                (* Both children inherit the fork point's causal state —
                   their hop chains branch from the same parent span —
                   and the parent resumes with it too. *)
                let m = Net.trace_mark t.net in
                let ra = ref None and rb = ref None in
                let join () =
                  match (!ra, !rb) with
                  | Some a, Some b -> (
                    Net.restore_trace_mark t.net m;
                    match (a, b) with
                    | Ok va, Ok vb -> continue k (va, vb)
                    | Error e, _ | _, Error e -> discontinue k e)
                  | _ -> ()
                in
                (* The left child runs first (until its first
                   suspension), then the right — a deterministic start
                   order; from then on the event queue interleaves
                   them. *)
                exec t
                  (fun () ->
                    Net.restore_trace_mark t.net m;
                    fa ())
                  (fun r ->
                    ra := Some r;
                    join ());
                exec t
                  (fun () ->
                    Net.restore_trace_mark t.net m;
                    fb ())
                  (fun r ->
                    rb := Some r;
                    join ()))
          | _ -> None);
    }

let spawn ?at t f ~on_done =
  t.live_fibers <- t.live_fibers + 1;
  (* The fiber body starts from the causal state at the spawn call —
     for a driver spawning top-level operations, a clean slate — not
     from whatever episode is ambient when the engine reaches it. *)
  let m = Net.trace_mark t.net in
  let fiber () =
    exec t
      (fun () ->
        Net.restore_trace_mark t.net m;
        f ())
      (fun r ->
        t.live_fibers <- t.live_fibers - 1;
        on_done r)
  in
  match at with
  | None -> Engine.schedule t.engine ~delay:0. fiber
  | Some time -> Engine.schedule_at t.engine ~time fiber

(* --- Hop suspension ------------------------------------------------- *)

let bump tbl key delta =
  let v = delta + Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key v;
  v

let hop_wait t : Net.hop_wait =
 fun ~src ~dst ~kind:_ ~outcome ->
  let delay =
    match outcome with
    | Net.Delivered ->
      (* A gray endpoint stretches the delivery: the pair's base
         latency times the worse endpoint's slowdown factor (1.0 when
         neither end is gray — see [Bus.latency_factor]). *)
      Latency.of_pair t.latency ~src ~dst
      *. Baton_sim.Bus.latency_factor (Net.bus t.net) ~src ~dst
    | Net.Timed_out ->
      (* The sender learns nothing until its retransmission timer
         fires; the destination's queue is not charged. *)
      t.timeout_ms
  in
  (match outcome with
  | Net.Delivered ->
    let d = bump t.inflight dst 1 in
    if d > Option.value ~default:0 (Hashtbl.find_opt t.depth_max dst) then
      Hashtbl.replace t.depth_max dst d
  | Net.Timed_out -> ());
  Effect.perform (Wait delay);
  match outcome with
  | Net.Delivered -> ignore (bump t.inflight dst (-1) : int)
  | Net.Timed_out -> ()

(* Drive every spawned fiber to completion. The hop hook is installed
   only for the duration of the run: outside it (setup, teardown,
   synchronous use of the same network) operations stay synchronous. *)
let run t =
  Net.set_hop_wait t.net (Some (hop_wait t));
  Fun.protect
    ~finally:(fun () -> Net.set_hop_wait t.net None)
    (fun () -> Engine.run t.engine)

(* --- Queue-depth statistics ---------------------------------------- *)

let queue_depths t =
  Hashtbl.fold (fun node d acc -> (node, d) :: acc) t.depth_max []
  |> List.sort compare

let queue_depth_max t =
  Hashtbl.fold (fun _ d acc -> max d acc) t.depth_max 0

let queue_depth_mean t =
  let n = Hashtbl.length t.depth_max in
  if n = 0 then 0.
  else
    float_of_int (Hashtbl.fold (fun _ d acc -> acc + d) t.depth_max 0)
    /. float_of_int n

(* --- Cooperative mutual exclusion ----------------------------------- *)

(* Membership changes (join, leave, repair) are multi-step protocols
   that the paper runs one at a time; racing two of them against each
   other at hop granularity would interleave *mutations*, which no
   locking exists for at the protocol level. The workload driver
   serializes them with this lock while queries interleave freely —
   queries racing a mid-flight membership change is exactly the
   staleness the routing layer tolerates. *)
module Lock = struct
  type nonrec t = { mutable held : bool; waiters : (unit -> unit) Queue.t }

  let create () = { held = false; waiters = Queue.create () }
  let held l = l.held

  let acquire l =
    if l.held then suspend (fun resume -> Queue.add resume l.waiters)
    else l.held <- true

  let release l =
    if not l.held then invalid_arg "Runtime.Lock.release: not held";
    match Queue.take_opt l.waiters with
    | Some resume ->
      (* Hand-off: the lock stays held, the next waiter resumes. *)
      resume ()
    | None -> l.held <- false

  let with_lock l f =
    acquire l;
    match f () with
    | v ->
      release l;
      v
    | exception e ->
      release l;
      raise e
end
