(** Workload driver on the concurrent runtime.

    Pre-generates a deterministic operation plan from a seed (mix
    weights, Zipf-skewed exact keys, fixed-span ranges, alternating
    join/leave churn), executes it as interleaved fibers — open- or
    closed-loop — and reports throughput, per-kind latency percentiles
    and queue-depth statistics. Two runs of the same config serialize
    to byte-identical JSON.

    The same plan can instead be executed against any registered
    comparison overlay ({!P2p_overlay.Overlay.S}) by naming it in
    [config ~overlay]. Those overlays are synchronous, so the driver
    runs their plan sequentially and the virtual clock becomes the
    paper's own cost metric: one protocol message = one virtual
    millisecond (latencies are per-op message bills, [duration_ms] the
    measured phase's message total). Key load, op plan and message
    accounting are identical across overlays — the basis of the
    per-overlay bench matrix. *)

type arrival =
  | Closed of { think_ms : float }
      (** [clients] fibers, each issuing its next operation as soon as
          the previous completes, plus an optional think time. *)
  | Open of { rate_per_s : float }
      (** Operations arrive on a seeded exponential process at the
          given aggregate rate, regardless of completions. *)

type mix = {
  mix_name : string;
  exact_w : int;  (** weight of exact-match lookups *)
  range_w : int;  (** weight of range queries (parallel fan-out) *)
  insert_w : int;  (** weight of insertions *)
  churn_w : int;  (** weight of membership changes (join/leave alternating) *)
}

val read_heavy : mix
val range_heavy : mix
val churn_heavy : mix

val adversarial : mix
(** Read/range/insert mix for adversarial-scenario runs: the membership
    stress comes from the fault schedule, not from client churn.
    Selectable through {!mix_named} but not part of {!mixes}. *)

val mixes : mix list
(** The three canonical mixes, in report order. *)

val mix_named : string -> mix option

type config = {
  overlay : string;
      (** canonical {!P2p_overlay.Overlay.S} name. ["baton"] (the
          default) runs on the concurrent fiber runtime with every
          feature available; any other registered overlay runs the same
          plan sequentially, and requires [route_cache], [monitor],
          [series], [profile] off and an empty [fault_schedule]. *)
  n : int;
  seed : int;
  keys_per_node : int;
  clients : int;
  ops : int;
  arrival : arrival;
  range_span : int;
  theta : float;  (** Zipf exponent for exact-query key skew *)
  mix : mix;
  domain : Baton.Range.t option;
      (** key space to build over and draw keys from; [None] (the
          default) is the paper's canonical [1, 10^9) domain. Scale
          sweeps widen it with [n] so repeated range splits never
          exhaust an interval's integer width. Baton-only. *)
  timeout_ms : float;
  route_cache : bool;  (** enable the adaptive route cache before the
                           measured phase *)
  monitor_every_ms : float;
      (** health-monitor sampling period in virtual ms; [0.] (the
          default) disables monitoring *)
  series_every_ms : float;
      (** time-series sampling period in virtual ms; [0.] (the default)
          disables sampling. Each tick records deterministic progress
          counters (completed, failed, message deltas, fiber and queue
          gauges, monitor rank) into a bounded {!Baton_obs.Series}
          ring. *)
  profile : bool;
      (** meter the simulator process itself during the measured phase
          ({!Baton_obs.Profile}): wall-clock per hot region, GC deltas,
          raw engine-event throughput. Metrics-neutral — the probes
          observe the machine, never the simulated world — but its
          numbers are inherently non-deterministic and appear only
          inside the report's ["profile"] subtree. *)
  heat : bool;
      (** install the demand-heat instrument ({!Baton_obs.Heat}) on the
          network for the measured phase: per-peer load attribution
          (serve/route/maint/aux), a top-k heavy-hitter sketch over
          accessed keys, and a key-space heat histogram, exported as the
          report's ["load"] section. A pure observer — heat on vs. off
          leaves every other report field byte-identical. Baton-only. *)
  fault_schedule : Baton_sim.Partition.schedule;
      (** adversarial scenario injected into the measured phase
          (partitions, subtree crashes, gray peers); [[]] (the default)
          injects nothing. A non-empty schedule also enables
          suspicion-driven repair, serialized with joins/leaves through
          the driver's membership lock. *)
  oracle : bool;
      (** replay every completed operation against the consistency
          oracle ({!Baton_obs.Oracle}), with causal-trace evidence
          attached to each violation *)
}

val config :
  ?overlay:string ->
  ?seed:int ->
  ?keys_per_node:int ->
  ?clients:int ->
  ?ops:int ->
  ?arrival:arrival ->
  ?range_span:int ->
  ?theta:float ->
  ?domain:Baton.Range.t ->
  ?timeout_ms:float ->
  ?route_cache:bool ->
  ?monitor_every_ms:float ->
  ?series_every_ms:float ->
  ?profile:bool ->
  ?heat:bool ->
  ?fault_schedule:Baton_sim.Partition.schedule ->
  ?oracle:bool ->
  n:int ->
  mix:mix ->
  unit ->
  config
(** Defaults: overlay "baton", seed 2005, 5 keys/node, 32 clients,
    2000 ops, closed loop with zero think time, span 2·10⁶, theta 1.0
    (the paper's Zipf parameter), timeout {!Runtime.default_timeout_ms},
    monitoring off, time series off, profiling off, heat off, no fault
    schedule, oracle off. The overlay name is canonicalized (aliases resolve).
    @raise Invalid_argument on non-positive sizes, a negative sampling
    period, or a baton-only feature requested for another overlay.
    @raise P2p_overlay.Overlay.Unknown_overlay for an unregistered
    overlay name. *)

val kind_order : string list
(** Operation kinds in report order:
    ["exact"; "range"; "insert"; "join"; "leave"]. *)

type report = {
  cfg : config;
  ops_issued : int;
  completed : int;
  failed : int;
      (** operations that raised (e.g. their origin departed
          mid-flight); part of the seeded schedule, not noise *)
  retries : int;  (** retransmissions during the measured phase *)
  messages : int;  (** protocol messages during the measured phase *)
  cache_messages : int;
      (** auxiliary route-cache messages (probes, invalidations) during
          the measured phase — counted apart from [messages] *)
  cache_hits : int;  (** validated shortcut deliveries *)
  cache_misses : int;  (** cache consulted, no covering entry *)
  cache_stale : int;  (** shortcut evicted after a failed validation *)
  duration_ms : float;
      (** {e simulated} completion instant of the last finished
          operation, in virtual ms — {b not} host wall time (see
          [wall_ms] for that). Trailing non-workload events (a final
          monitor tick, a last think-time sleep) are not work and are
          excluded. *)
  wall_ms : float;
      (** host wall-clock duration of the measured phase; [0.] when
          [cfg.profile] is off. Non-deterministic — serialized only
          inside the ["profile"] subtree, never among seeded fields. *)
  events_per_s : float;
      (** raw engine events dispatched per host wall-clock second; [0.]
          when [cfg.profile] is off. The throughput number the bench
          regression gate compares (within a tolerance). *)
  throughput_ops_s : float;
  latencies : (string * Baton_obs.Timing.t) list;
      (** completed-operation latency digests, in {!kind_order} *)
  depth_max : int;
  depth_mean : float;
  health : Baton_obs.Json.t;
      (** [Baton.Monitor] time series + health events sampled every
          [monitor_every_ms]; [Json.Null] when monitoring is off.
          Sampling is a pure observation: the same seed with monitoring
          on and off counts identical messages and finishes at the same
          virtual instant. *)
  load_json : Baton_obs.Json.t;
      (** {!Baton_obs.Heat.json} demand snapshot taken after the drain
          — per-peer class attribution, heavy hitters, key-space
          heatmap, decayed skew; [Json.Null] when [cfg.heat] is off.
          Deterministic: driven only by the virtual clock and the
          seeded workload. *)
  profile_json : Baton_obs.Json.t;
      (** {!Baton_obs.Profile.json} snapshot taken when the drain
          finished; [Json.Null] when [cfg.profile] is off *)
  series : Baton_obs.Series.t option;
      (** the time-series ring sampled every [series_every_ms]; [None]
          when sampling is off. Deterministic — only virtual-clock
          timestamps and counter values are recorded. *)
  partition_timeouts : int;
      (** messages blocked by an active partition during the measured
          phase ({!Baton_sim.Bus.partition_event}) *)
  gray_drops : int;
      (** messages dropped by a gray endpoint during the measured phase
          ({!Baton_sim.Bus.gray_event}) *)
  scenario : (float * string) list;
      (** fault-scenario lifecycle breadcrumbs [(virtual ms, message)],
          chronological; empty without a fault schedule *)
  oracle : Baton_obs.Oracle.t option;
      (** the consistency oracle after judging every completed
          operation; [None] when [cfg.oracle] is off *)
}

val run : config -> report
(** Build the network and bulk-load data synchronously (unmeasured),
    enable the route cache when configured, then execute the plan and
    report. [overlay = "baton"] interleaves the plan concurrently on
    the fiber runtime; any other overlay executes it sequentially with
    the message clock as virtual time (runtime-only fields — retries,
    cache event counts, queue depths, health, profile, series — are
    zero/[Null]/[None] there). *)

val scale_config :
  ?seed:int -> ?keys_per_node:int -> ?ops:int -> ?clients:int -> int -> config
(** The canonical configuration for one point of the scale sweep: the
    read-heavy mix renamed to ["n=<n>"], profiling on, and a key
    domain widened with [n] (2²⁶ keys of room per peer, never below
    the canonical 10⁹) so repeated range splits cannot exhaust an
    interval's integer width even at n = 10⁶ — the deepest split chain
    runs about twice the tree height, so the per-peer room must absorb
    that maximum. The range-query span stays at 1/500 of the domain,
    the canonical proportion.
    Defaults: seed 2005, 2 keys/node, 2000 ops, 32 clients. *)

val run_scale :
  ?seed:int ->
  ?keys_per_node:int ->
  ?ops:int ->
  ?clients:int ->
  ?progress:(report -> unit) ->
  int list ->
  report list
(** Run {!scale_config} at each population size, in order, calling
    [progress] after each point (for live per-n reporting). Simulated
    metrics of every point are pure functions of the seed; the profile
    sections carry the per-n events/s the scale gate compares.
    @raise Invalid_argument on an empty list. *)

val scale_schema_version : string
(** Value of the ["schema"] field of {!scale_json}:
    ["baton-bench-scale-v1"]. *)

val scale_json : report list -> Baton_obs.Json.t
(** The BENCH_scale.json document: [{schema; runs: [...]}], one run
    object per swept n, labeled by its ["n=<n>"] mix name. The flat
    top-level ["runs"] list is the v5-era layout {!Bench_diff} already
    labels and gates, so the scale baseline reuses the same diff
    machinery. *)

val report_json : report -> Baton_obs.Json.t
(** Every field except the ["profile"] subtree is a pure function of
    the config — same-seed byte-identical. ["profile"] holds the host's
    wall-clock/GC numbers ([Json.Null] when profiling is off); seeded
    byte-comparisons must either run unprofiled or strip it
    ({!Bench_diff} strips). *)

val schema_version : string
(** Value of the ["schema"] field of {!bench_json}:
    ["baton-bench-runtime-v7"]. v7 adds an optional per-run ["load"]
    section (present iff the run had heat instrumentation on), a
    ["heat_skew"] time-series field alongside it, and the health
    samples' ["hot_share"]/["hotspot"] readings; every pre-existing
    field keeps its v6 bytes. *)

val bench_json : (string * report list) list -> Baton_obs.Json.t
(** The BENCH_runtime.json document, one section per overlay:
    [{schema; overlays: [{overlay; runs: [...]}; ...]}]. Run objects
    are unchanged from the v5 schema, so a baton-only document differs
    from its v5 counterpart only by the wrapper. *)

val summary : report -> string
(** One human-readable line per run (wall/event throughput appended
    when profiled). *)

val timeseries_jsonl : (string * report list) list -> string
(** The telemetry artifact: one JSON object per line per retained
    sample, each tagged with its overlay and its run's mix name. Empty
    string when no run sampled a series. Deterministic. *)
