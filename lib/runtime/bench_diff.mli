(** Bench regression gate: compare two bench report documents.

    Feeds the CI gate (`baton_cli bench-diff OLD NEW --max-regress P`):
    the {e simulated} sections of the two documents — everything except
    the ["profile"] subtrees — must match {e exactly} (they are pure
    functions of the seed, so any drift is a behaviour change, not
    noise), while the wall-clock throughput inside ["profile"] is only
    required to stay within a tolerance of the old document's (it moves
    with the host machine).

    Input documents are parsed trees ({!Baton_obs.Json.parse}); both
    sides go through the same parser, so writer formatting quirks
    cancel and comparison is structural. *)

type verdict =
  | Pass of { details : string list }
      (** simulated sections identical; per-run throughput notes *)
  | Schema_mismatch of { old_schema : string; new_schema : string }
      (** the documents are different format versions (or a ["schema"]
          field is missing, reported as ["<missing>"]) — regenerate the
          baseline instead of comparing across formats *)
  | Simulated_mismatch of string list
      (** deterministic fields drifted; each entry is a [$.path: old
          vs new] description of one differing leaf (capped, with a
          trailing ["... and N more"] when clipped) *)
  | Throughput_regress of string list
      (** simulated sections identical but at least one run's
          [profile.events_per_s] fell below the allowed floor *)

val strip_profile : Baton_obs.Json.t -> Baton_obs.Json.t
(** Remove every ["profile"] field, recursively — the document minus
    its non-deterministic subtrees. *)

val diff_paths :
  ?limit:int -> Baton_obs.Json.t -> Baton_obs.Json.t -> string list * int
(** Leaf-level structural differences between two trees as
    [$.path: old vs new] lines (at most [limit], default 20), plus the
    total count found. [([], 0)] iff the trees are equal. *)

val compare :
  max_regress_pct:float ->
  old_doc:Baton_obs.Json.t ->
  new_doc:Baton_obs.Json.t ->
  verdict
(** Gate [new_doc] against the baseline [old_doc]. Checks, in order:
    matching ["schema"] fields; byte-exact simulated sections (after
    {!strip_profile}); then, for each run pair where both sides carry a
    profile, [new events_per_s >= old * (1 - max_regress_pct / 100)].
    Runs are gathered from the v6 per-overlay sections (labeled
    ["overlay/mix"] in every detail line), falling back to a v5-style
    top-level run list (labeled by mix) so two pre-v6 baselines still
    compare. Runs without a profile on either side skip the throughput
    check (noted in [Pass.details]) — simulated equality was still
    enforced.
    @raise Invalid_argument if [max_regress_pct] is negative. *)

val exit_code : verdict -> int
(** [Pass] = 0, [Throughput_regress] = 2, mismatches = 1 — so scripts
    can distinguish "the machine got slower" from "the behaviour
    changed". *)

val render : verdict -> string
(** Multi-line human report, one line per detail. *)
