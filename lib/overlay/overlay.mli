(** A common interface over the registered overlay networks.

    BATON and its comparison systems expose different native APIs;
    this module erases the differences behind one signature so that
    drivers (the CLI's [compare] command, generic tests, ad-hoc
    scripts) can run the same workload against any of them and read the
    same metrics. Capabilities are discovered, not probed: an overlay
    that cannot answer range queries says so via {!S.supports_range},
    and calling {!S.range_query} on it raises {!Unsupported} — the
    impossibility is part of the interface, exactly as it is part of
    the paper's comparison. *)

type stats = {
  total : int;  (** protocol messages — the paper's metric *)
  cache : int;
      (** auxiliary route-cache traffic (probes, invalidations),
          counted apart from [total]; 0 on overlays without a cache *)
  by_kind : (string * int) list;  (** per-kind breakdown, sorted *)
}
(** Message accounting split by category, so cross-overlay comparisons
    can quote the paper-parity total and the cache overhead apart. *)

exception Unsupported of string
(** Raised by an operation the overlay cannot perform; carries the
    overlay name. *)

module type S = sig
  type t

  val name : string

  val create : seed:int -> n:int -> t
  (** Build an [n]-peer network. *)

  val size : t -> int

  val stats : t -> stats
  (** Full message accounting, split by category; [(stats t).total] is
      the protocol-message count — the paper's metric. *)

  val supports_range : bool
  (** Can this overlay answer range queries at all? *)

  val insert : t -> int -> unit

  val bulk_load : t -> int list -> unit
  (** Place a batch of keys with amortized routing (one locate plus an
      in-order distribution pass where the overlay supports it),
      instead of one full routed insert per key. *)

  val delete : t -> int -> bool
  val lookup : t -> int -> bool

  val range_query : t -> lo:int -> hi:int -> int list
  (** Matching keys, ascending.
      @raise Unsupported when [supports_range] is [false]. *)

  val join : t -> unit

  val leave_random : t -> Baton_util.Rng.t -> unit
  (** Gracefully remove one uniformly chosen peer (no-op on a 1-peer
      network). *)

  val check : t -> unit
  (** Structural invariants; @raise Failure on violation. *)
end

val baton : (module S)
val chord : (module S)
val multiway : (module S)
val skip_graph : (module S)

val all : (module S) list
(** The registered overlays, BATON first. *)

val names : string list
(** Canonical names of {!all}, in the same order. *)

exception Unknown_overlay of { name : string; valid : string list }
(** Raised by {!of_name} for an unregistered name; carries the
    (lowercased) offending name and the list of valid ones, so callers
    can print an actionable message. *)

val of_name : string -> (module S)
(** Case-insensitive; accepts the canonical names plus the aliases
    "mtree" (multiway) and "skip_graph"/"skipgraph" (skip-graph).
    @raise Unknown_overlay for anything else. *)

val by_name : string -> (module S)
(** Alias of {!of_name}. *)
