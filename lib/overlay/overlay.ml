type stats = {
  total : int;
  cache : int;
  by_kind : (string * int) list;
}

exception Unsupported of string

let stats_of_metrics m =
  {
    total = Baton_sim.Metrics.total m;
    cache = Baton_sim.Metrics.aux_total m;
    by_kind = Baton_sim.Metrics.kinds m;
  }

module type S = sig
  type t

  val name : string
  val create : seed:int -> n:int -> t
  val size : t -> int
  val stats : t -> stats
  val supports_range : bool
  val insert : t -> int -> unit
  val bulk_load : t -> int list -> unit
  val delete : t -> int -> bool
  val lookup : t -> int -> bool
  val range_query : t -> lo:int -> hi:int -> int list
  val join : t -> unit
  val leave_random : t -> Baton_util.Rng.t -> unit
  val check : t -> unit
end

module Baton_overlay : S = struct
  type t = Baton.Net.t

  let name = "baton"
  let create ~seed ~n = Baton.Network.build ~seed n
  let size = Baton.Network.size
  let stats t = stats_of_metrics (Baton.Net.metrics t)
  let supports_range = true
  let insert = Baton.Network.insert
  let bulk_load = Baton.Network.bulk_insert
  let delete = Baton.Network.delete
  let lookup = Baton.Network.lookup
  let range_query t ~lo ~hi = Baton.Network.range_query t ~lo ~hi
  let join t = ignore (Baton.Network.join t)

  let leave_random t rng =
    if Baton.Net.size t > 1 then
      Baton.Network.leave t (Baton_util.Rng.pick rng (Baton.Net.live_ids t))

  let check = Baton.Check.all
end

module Chord_overlay : S = struct
  type t = Chord.t

  let name = "chord"

  let create ~seed ~n =
    let t = Chord.create ~seed () in
    for _ = 1 to n do
      ignore (Chord.join t)
    done;
    t

  let size = Chord.size
  let stats t = stats_of_metrics (Chord.metrics t)
  let supports_range = false
  let insert t k = ignore (Chord.insert t k)

  (* Chord hashes keys to peers: there is no in-order chain to
     distribute a sorted batch along, so a bulk load degenerates to
     per-key routed inserts. *)
  let bulk_load t keys = List.iter (insert t) keys

  let delete t k =
    let found = fst (Chord.lookup t k) in
    ignore (Chord.delete t k);
    found

  let lookup t k = fst (Chord.lookup t k)
  let range_query _ ~lo:_ ~hi:_ = raise (Unsupported name)
  let join t = ignore (Chord.join t)

  let leave_random t rng =
    if Chord.size t > 1 then
      ignore (Chord.leave t (Baton_util.Rng.pick rng (Chord.peer_ids t)))

  let check = Chord.check
end

module Multiway_overlay : S = struct
  type t = Multiway.t

  let name = "multiway"

  let create ~seed ~n =
    let t =
      Multiway.create ~seed ~domain_lo:Baton.Network.default_domain.Baton.Range.lo
        ~domain_hi:Baton.Network.default_domain.Baton.Range.hi ()
    in
    for _ = 1 to n do
      ignore (Multiway.join t)
    done;
    t

  let size = Multiway.size
  let stats t = stats_of_metrics (Multiway.metrics t)
  let supports_range = true
  let insert t k = ignore (Multiway.insert t k)
  let bulk_load t keys = List.iter (insert t) keys
  let delete t k = fst (Multiway.delete t k)
  let lookup t k = fst (Multiway.lookup t k)
  let range_query t ~lo ~hi = fst (Multiway.range_query t ~lo ~hi)
  let join t = ignore (Multiway.join t)

  let leave_random t rng =
    if Multiway.size t > 1 then
      ignore (Multiway.leave t (Baton_util.Rng.pick rng (Multiway.peer_ids t)))

  let check = Multiway.check
end

module Skip_graph_overlay : S = struct
  type t = Skip_graph.t

  let name = "skip-graph"

  let create ~seed ~n =
    let t =
      Skip_graph.create ~seed
        ~domain_lo:Baton.Network.default_domain.Baton.Range.lo
        ~domain_hi:Baton.Network.default_domain.Baton.Range.hi ()
    in
    for _ = 1 to n do
      ignore (Skip_graph.join t)
    done;
    t

  let size = Skip_graph.size
  let stats t = stats_of_metrics (Skip_graph.metrics t)
  let supports_range = true
  let insert t k = ignore (Skip_graph.insert t k)
  let bulk_load t keys = ignore (Skip_graph.bulk_insert t keys)
  let delete t k = fst (Skip_graph.delete t k)
  let lookup t k = fst (Skip_graph.lookup t k)
  let range_query t ~lo ~hi = fst (Skip_graph.range_query t ~lo ~hi)
  let join t = ignore (Skip_graph.join t)

  let leave_random t rng =
    if Skip_graph.size t > 1 then
      ignore
        (Skip_graph.leave t (Baton_util.Rng.pick rng (Skip_graph.peer_ids t)))

  let check = Skip_graph.check
end

let baton : (module S) = (module Baton_overlay)
let chord : (module S) = (module Chord_overlay)
let multiway : (module S) = (module Multiway_overlay)
let skip_graph : (module S) = (module Skip_graph_overlay)
let all = [ baton; chord; multiway; skip_graph ]

let names =
  List.map
    (fun o ->
      let module O = (val o : S) in
      O.name)
    all

exception Unknown_overlay of { name : string; valid : string list }

let of_name name =
  match String.lowercase_ascii name with
  | "baton" -> baton
  | "chord" -> chord
  | "multiway" | "mtree" -> multiway
  | "skip-graph" | "skip_graph" | "skipgraph" -> skip_graph
  | other -> raise (Unknown_overlay { name = other; valid = names })

let by_name = of_name
