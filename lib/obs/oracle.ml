(* Trace-replay consistency oracle.

   Maintains a sequential model of the key space from the applied
   mutation sequence (bulk load, inserts, deletes, crash-induced key
   loss) and replays every completed operation's answer — together
   with its causal-trace evidence — against that model. Concurrency
   makes the model interval-valued rather than point-valued: an
   operation that overlapped a mutation to key [k] may legitimately
   see either state, so each mutation is an *uncertainty window*
   [(t_lo, t_hi)] (issue to completion) and a key's state is only
   *definite* for a reader when its last transition settled before the
   reader's window opened and nothing else was in flight.

   Verdicts:
   - [Pass]       — the answer matches the definite model state;
   - [Tolerated]  — the answer disagrees (or omits keys) but the
                    system *said so*: the result was flagged
                    incomplete, the missing keys fall inside a
                    reported hole, or the key's state was genuinely
                    uncertain under concurrency;
   - [Violation]  — the answer is wrong and was presented as right:
                    a stale read, a phantom key, a false-complete
                    range answer, or a range whose tiling silently
                    skipped definitely-present keys.

   The oracle is a pure observer: it never sends a message and never
   draws from a protocol PRNG, so checked and unchecked same-seed runs
   count byte-identical metrics. *)

type verdict = Pass | Tolerated of string | Violation of string

(* One settled mutation of one key: issued at [e_lo], completed (and
   therefore definitely applied) at [e_hi]. *)
type event_ = { e_lo : float; e_hi : float; present : bool }

type kind_counts = {
  mutable k_checked : int;
  mutable k_tolerated : int;
  mutable k_violations : int;
}

type t = {
  (* key -> settled transitions, newest first (completion order). *)
  hist : (int, event_ list) Hashtbl.t;
  (* key -> number of in-flight mutations. *)
  pending : (int, int) Hashtbl.t;
  by_kind : (string, kind_counts) Hashtbl.t;
  mutable checked : int;
  mutable passed : int;
  mutable tolerated : int;
  mutable violations : int;
  mutable incomplete : int; (* answers explicitly flagged incomplete *)
  mutable lost_keys : int; (* keys destroyed by crashes *)
  (* Newest-first capped detail list for the report. *)
  mutable details : Json.t list;
  mutable details_dropped : int;
}

let max_details = 16

let create () =
  {
    hist = Hashtbl.create 4096;
    pending = Hashtbl.create 64;
    by_kind = Hashtbl.create 4;
    checked = 0;
    passed = 0;
    tolerated = 0;
    violations = 0;
    incomplete = 0;
    lost_keys = 0;
    details = [];
    details_dropped = 0;
  }

(* --- Model maintenance --------------------------------------------- *)

let add_event t key ev =
  let evs = match Hashtbl.find_opt t.hist key with Some l -> l | None -> [] in
  Hashtbl.replace t.hist key (ev :: evs)

let seed_keys t keys =
  (* The initial bulk load: settled before the measured phase opens. *)
  List.iter (fun k -> add_event t k { e_lo = 0.; e_hi = 0.; present = true }) keys

let begin_mutation t key =
  let n = match Hashtbl.find_opt t.pending key with Some n -> n | None -> 0 in
  Hashtbl.replace t.pending key (n + 1)

let settle_pending t key =
  match Hashtbl.find_opt t.pending key with
  | Some n when n > 1 -> Hashtbl.replace t.pending key (n - 1)
  | Some _ -> Hashtbl.remove t.pending key
  | None -> ()

let abort_mutation t key = settle_pending t key

let commit_insert t key ~started ~finished =
  settle_pending t key;
  add_event t key { e_lo = started; e_hi = finished; present = true }

let commit_delete t key ~started ~finished =
  settle_pending t key;
  add_event t key { e_lo = started; e_hi = finished; present = false }

let note_lost t ~time keys =
  (* A crash destroys its keys at one instant: the transition has no
     uncertainty window. *)
  List.iter
    (fun k ->
      t.lost_keys <- t.lost_keys + 1;
      add_event t k { e_lo = time; e_hi = time; present = false })
    keys

let lost_keys t = t.lost_keys

(* A key's state as seen by a reader whose window opened at [w0]:
   definite only when nothing about the key was in flight and its
   newest transition settled before the reader started looking. *)
type state = Definitely of bool | Uncertain

let state_at t key ~w0 =
  if Hashtbl.mem t.pending key then Uncertain
  else
    match Hashtbl.find_opt t.hist key with
    | None | Some [] -> Definitely false
    | Some (newest :: _) ->
      if newest.e_hi <= w0 then Definitely newest.present else Uncertain

(* --- Verdict bookkeeping ------------------------------------------- *)

let kind_counts t kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some c -> c
  | None ->
    let c = { k_checked = 0; k_tolerated = 0; k_violations = 0 } in
    Hashtbl.add t.by_kind kind c;
    c

let trace_evidence = function
  | None -> []
  | Some (a : Trace.analysis) ->
    [
      ( "trace",
        Json.Obj
          [
            ("id", Json.Int a.Trace.a_trace);
            ("msgs", Json.Int a.Trace.msgs);
            ("crit_hops", Json.Int a.Trace.crit_hops);
            ("timeouts", Json.Int a.Trace.timeouts);
          ] );
    ]

let record t ~kind ~trace ~fields verdict =
  t.checked <- t.checked + 1;
  let c = kind_counts t kind in
  c.k_checked <- c.k_checked + 1;
  (match verdict with
  | Pass -> t.passed <- t.passed + 1
  | Tolerated _ ->
    t.tolerated <- t.tolerated + 1;
    c.k_tolerated <- c.k_tolerated + 1
  | Violation reason ->
    t.violations <- t.violations + 1;
    c.k_violations <- c.k_violations + 1;
    if List.length t.details >= max_details then
      t.details_dropped <- t.details_dropped + 1
    else
      t.details <-
        Json.Obj
          (("op", Json.String kind)
          :: ("reason", Json.String reason)
          :: (fields @ trace_evidence trace))
        :: t.details);
  verdict

(* --- Checks --------------------------------------------------------- *)

let check_exact t ?trace ~started ~finished:_ ~key ~found ~complete () =
  if not complete then t.incomplete <- t.incomplete + 1;
  let fields = [ ("key", Json.Int key) ] in
  let verdict =
    match (state_at t key ~w0:started, found) with
    | Uncertain, _ -> Tolerated "concurrent mutation"
    | Definitely true, true | Definitely false, false -> Pass
    | Definitely true, false ->
      if complete then Violation "stale read: present key reported absent"
      else Tolerated "incomplete lookup missed present key"
    | Definitely false, true -> Violation "phantom: absent key reported present"
  in
  record t ~kind:"exact" ~trace ~fields verdict

(* Is [k] inside one of the reported half-open holes? *)
let in_hole holes k = List.exists (fun (a, b) -> a <= k && k < b) holes

let check_range t ?trace ~started ~finished:_ ~lo ~hi ~keys ~complete ~holes ()
    =
  if not complete then t.incomplete <- t.incomplete + 1;
  let fields = [ ("lo", Json.Int lo); ("hi", Json.Int hi) ] in
  (* The store is a multiset (the same key value can be inserted more
     than once); the oracle models presence only, so the answer is
     judged as a set. *)
  let answered = List.sort_uniq compare keys in
  let answer = Hashtbl.create (List.length answered) in
  List.iter (fun k -> Hashtbl.replace answer k ()) answered;
  (* Keys the model knows about inside the queried interval, with their
     definite states at window open. *)
  let phantoms = ref [] and missing = ref [] and hidden = ref [] in
  let uncertain = ref 0 in
  List.iter
    (fun k ->
      if k < lo || k > hi then phantoms := k :: !phantoms
      else
        match state_at t k ~w0:started with
        | Definitely false -> phantoms := k :: !phantoms
        | Definitely true | Uncertain -> ())
    answered;
  Hashtbl.iter
    (fun k _ ->
      if k >= lo && k <= hi && not (Hashtbl.mem answer k) then
        match state_at t k ~w0:started with
        | Definitely true ->
          if in_hole holes k then hidden := k :: !hidden
          else missing := k :: !missing
        | Uncertain -> incr uncertain
        | Definitely false -> ())
    t.hist;
  let phantoms = List.sort compare !phantoms
  and missing = List.sort compare !missing
  and hidden = List.sort compare !hidden in
  let key_list ks =
    Json.List (List.map (fun k -> Json.Int k) (List.filteri (fun i _ -> i < 8) ks))
  in
  let verdict =
    match (phantoms, missing) with
    | p :: _, _ ->
      Violation
        (Printf.sprintf "phantom key %d: absent (or out of range) but answered"
           p)
    | [], m :: _ ->
      if complete then
        Violation
          (Printf.sprintf
             "false-complete: present key %d omitted with no hole reported" m)
      else
        Violation
          (Printf.sprintf
             "broken tiling: present key %d omitted outside every reported \
              hole" m)
    | [], [] ->
      if hidden <> [] then
        Tolerated "present keys omitted inside reported holes"
      else if !uncertain > 0 && not complete then
        Tolerated "incomplete under concurrent mutation"
      else Pass
  in
  let fields =
    fields
    @ (if phantoms = [] then [] else [ ("phantoms", key_list phantoms) ])
    @ (if missing = [] then [] else [ ("missing", key_list missing) ])
    @ if hidden = [] then [] else [ ("hidden", key_list hidden) ]
  in
  record t ~kind:"range" ~trace ~fields verdict

(* --- Report --------------------------------------------------------- *)

let checked t = t.checked
let violation_count t = t.violations
let tolerated_count t = t.tolerated
let incomplete_count t = t.incomplete

let json t =
  let kinds =
    Hashtbl.fold (fun kind c acc -> (kind, c) :: acc) t.by_kind []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (kind, c) ->
           ( kind,
             Json.Obj
               [
                 ("checked", Json.Int c.k_checked);
                 ("tolerated", Json.Int c.k_tolerated);
                 ("violations", Json.Int c.k_violations);
               ] ))
  in
  Json.Obj
    [
      ("checked", Json.Int t.checked);
      ("passed", Json.Int t.passed);
      ("tolerated", Json.Int t.tolerated);
      ("violations", Json.Int t.violations);
      ("incomplete_flagged", Json.Int t.incomplete);
      ("lost_keys", Json.Int t.lost_keys);
      ("by_op", Json.Obj kinds);
      ("violation_details", Json.List (List.rev t.details));
      ("violation_details_dropped", Json.Int t.details_dropped);
    ]
