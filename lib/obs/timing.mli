(** Streaming digest of operation durations (virtual milliseconds).

    The recorder's digests count hops and messages — integers the paper
    reasons about. The concurrent runtime additionally produces
    latencies, which are floats of simulated time; this digest buckets
    them to tenths of a millisecond on the integer
    {!Baton_util.Histogram}, so a million-operation run stays bounded
    by the number of distinct rounded durations while p50/p95/p99 stay
    within 0.1 ms of exact. Everything here is a pure function of the
    recorded values: two same-seed runs serialize byte-identically. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one duration in virtual ms.
    @raise Invalid_argument on a negative duration. *)

val count : t -> int
val mean : t -> float

val percentile : t -> float -> float
(** Nearest-rank percentile in ms (0.1 ms resolution); [0.] when
    nothing was recorded. *)

val max_ms : t -> float

val json : t -> Json.t
(** Schema-stable summary ([ops], [mean_ms], [p50_ms], [p95_ms],
    [p99_ms], [max_ms]); zeros when nothing was recorded so the field
    set never depends on the data. *)
