(** The telemetry recorder: collects span events into a bounded ring
    buffer and streams per-operation-kind digests.

    Purely an observer. It never sends a message, so attaching a
    recorder cannot change [Metrics.total] — the paper's metric — by a
    single count. Million-message runs stay O(capacity) in memory: old
    events are overwritten (and tallied in {!dropped}), while the
    digests are streaming histograms whose size is bounded by the
    number of distinct per-operation costs. *)

type t

val default_capacity : int
(** 65536 ring slots. *)

val create : ?capacity:int -> unit -> t
(** @raise Invalid_argument on a non-positive capacity. *)

val set_clock : t -> (unit -> float) option -> unit
(** Timestamp source for recorded events; [None] (the default) stamps
    nothing and the sequence number orders events. *)

val use_engine : t -> Baton_sim.Engine.t -> unit
(** Point the clock at an engine's virtual time. *)

(** {1 Write side} *)

val on_hop : t -> ?span:int -> src:int -> dst:int -> kind:string -> unit -> unit
(** Record one bus transmission, charging it to every open operation.
    [span] is the hop's causal span id ([-1], the default, for untraced
    traffic). {!attach} wires this to a bus automatically. *)

val note : ?peer:int -> t -> string -> unit
(** Record a named marker event (see the [n_*] constants in {!Span}). *)

val retry : t -> peer:int -> unit
(** Record a retransmission: already counted as a hop (the retry passes
    over the bus again), so this additionally marks it as a retry to
    keep hop counts (distinct forward progress) separate from message
    costs. *)

val begin_op : t -> kind:Span.kind -> int
(** Open an operation (nested under the innermost open one, if any) and
    return its id. *)

val end_op : t -> ok:bool -> unit
(** Close the innermost open operation, folding its hop/message totals
    into the per-kind digest. @raise Invalid_argument with no open
    operation. *)

val with_op : t -> kind:Span.kind -> (unit -> 'a) -> 'a
(** Run a thunk inside an operation; an exception closes it with
    [ok = false] and re-raises. *)

val attach : t -> Baton_sim.Bus.t -> unit
(** Subscribe to a bus so every transmission is recorded (tagged with
    its causal span when the message carries a trace context).
    @raise Invalid_argument if already attached. *)

val detach : t -> unit
(** Undo {!attach}; a no-op when not attached. *)

(** {1 Read side} *)

val recorded : t -> int
(** Events recorded so far, including any the ring has dropped. *)

val dropped : t -> int
val open_ops : t -> int

val events : t -> Span.entry list
(** Surviving events, oldest first. *)

val kinds : t -> string list
(** Kinds with at least one completed operation, sorted. *)

(** {2 Per-kind digests} *)

type digest

val digest : t -> string -> digest option
val digest_ops : digest -> int

val digest_hops : digest -> Baton_util.Histogram.t
(** Distribution of per-operation hop counts (first transmissions). *)

val digest_msgs : digest -> Baton_util.Histogram.t
(** Distribution of per-operation message costs (retries included). *)
