(** Serialize recorder state: JSONL span traces (one event per line,
    schema-stable field order, deterministic number formatting — two
    same-seed runs emit byte-identical files), a JSON stats summary
    with per-kind percentile digests, and a human-readable span
    tree. *)

val event_json : Span.entry -> Json.t
(** One span event as an object: [seq]/[op], [t] when stamped, then the
    event body keyed by [ev] ("begin"/"end"/"hop"/"note"). *)

val events_jsonl : Recorder.t -> string
(** The recorder's surviving events, one compact JSON object per line,
    oldest first. *)

val hist_json : Baton_util.Histogram.t -> Json.t
(** [mean]/[p50]/[p95]/[p99]/[max] summary; [Null] when empty. *)

val gauge_sample_json : Gauge.sample -> Json.t

val stats_json : ?load:Gauge.t -> Recorder.t -> Json.t
(** Per-kind operation digests plus recorded/dropped event counts; with
    [load], the gauge's samples under a ["load"] field. *)

val span_tree : Recorder.t -> string
(** Human-readable rendering: operations indent under their parent,
    with their hop/note events listed in order. *)
