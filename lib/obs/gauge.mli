(** Per-node load gauge: periodic snapshots of a per-node quantity
    (messages handled, keys stored...) reduced to a fixed-size summary
    per sample, kept in a bounded ring — the raw per-node vector is
    never retained. Feeds Figure 8(f)-style skew analysis: how the
    spread between the mean and the p99/max node evolves over a run. *)

type sample = {
  time : float;
  nodes : int;  (** population the snapshot covered *)
  total : int;
  mean : float;
  p50 : int;  (** nearest-rank percentiles of the per-node values *)
  p95 : int;
  p99 : int;
  max : int;
}

type t

val create : ?capacity:int -> unit -> t
(** A ring retaining the last [capacity] (default 1024) samples.
    @raise Invalid_argument on a non-positive capacity. *)

val sample : t -> time:float -> int array -> unit
(** Reduce one per-node snapshot into the ring. The array is copied and
    sorted internally; the caller's buffer is untouched.
    @raise Invalid_argument on an empty array. *)

val count : t -> int
(** Samples taken so far (including any the ring has since dropped). *)

val samples : t -> sample list
(** Retained samples, oldest first. *)

val latest : t -> sample option
