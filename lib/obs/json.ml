(* Minimal JSON writer for telemetry export.

   The repository deliberately avoids external dependencies; this
   module covers exactly what the exporters need: deterministic,
   schema-stable output (object fields are emitted sorted by key, so
   exports are byte-stable regardless of the order a producer happened
   to assemble them in; floats go through one fixed format), so that
   two same-seed runs produce byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Emission order for object fields: sorted by key, independent of
   insertion order. *)
let sorted_fields fields =
  List.stable_sort (fun (a, _) (b, _) -> String.compare a b) fields

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.12g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      (sorted_fields fields);
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* Two-space indented rendering for human-facing summaries. *)
let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | List l ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        write_pretty buf (indent + 2) v)
      l;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  \"";
        escape buf k;
        Buffer.add_string buf "\": ";
        write_pretty buf (indent + 2) v)
      (sorted_fields fields);
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'

let to_pretty_string v =
  let buf = Buffer.create 512 in
  write_pretty buf 0 v;
  Buffer.contents buf

(* --- Parsing --------------------------------------------------------

   A recursive-descent reader for the documents this module writes
   (bench reports, traces, series) so the regression gate can diff two
   reports without an external JSON dependency. Covers standard JSON;
   numbers parse to [Int] when they are integral with no '.', 'e' or
   leading-zero baggage, else to [Float] — matching what the writer
   emits. *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let parse_fail c msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))

let peek_char c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  let n = String.length c.text in
  while
    c.pos < n
    && (match c.text.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek_char c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> parse_fail c (Printf.sprintf "expected %C, found %C" ch x)
  | None -> parse_fail c (Printf.sprintf "expected %C, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_fail c (Printf.sprintf "expected %s" word)

(* Encode one Unicode scalar value as UTF-8 (for \uXXXX escapes). *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char c with
    | None -> parse_fail c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
      c.pos <- c.pos + 1;
      match peek_char c with
      | None -> parse_fail c "unterminated escape"
      | Some e ->
        c.pos <- c.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.text then
            parse_fail c "truncated \\u escape";
          let hex = String.sub c.text c.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> parse_fail c "bad \\u escape"
          in
          c.pos <- c.pos + 4;
          add_utf8 buf code
        | _ -> parse_fail c (Printf.sprintf "bad escape \\%C" e));
        go ())
    | Some ch ->
      c.pos <- c.pos + 1;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let n = String.length c.text in
  let is_float = ref false in
  if peek_char c = Some '-' then c.pos <- c.pos + 1;
  while
    c.pos < n
    &&
    match c.text.[c.pos] with
    | '0' .. '9' -> true
    | '.' | 'e' | 'E' | '+' | '-' ->
      is_float := true;
      true
    | _ -> false
  do
    c.pos <- c.pos + 1
  done;
  let s = String.sub c.text start (c.pos - start) in
  if s = "" || s = "-" then parse_fail c "expected a number";
  if !is_float then Float (float_of_string s)
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> Float (float_of_string s)

let rec parse_value c =
  skip_ws c;
  match peek_char c with
  | None -> parse_fail c "expected a value, found end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek_char c = Some ']' then begin
      c.pos <- c.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek_char c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          List.rev (v :: acc)
        | _ -> parse_fail c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek_char c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        (k, parse_value c)
      in
      let rec fields acc =
        let kv = field () in
        skip_ws c;
        match peek_char c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields (kv :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          List.rev (kv :: acc)
        | _ -> parse_fail c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_fail c (Printf.sprintf "unexpected %C" ch)

let parse text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length text then
      Error (Printf.sprintf "at offset %d: trailing garbage" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* Field access helpers for consumers of parsed documents. *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
