(* Minimal JSON writer for telemetry export.

   The repository deliberately avoids external dependencies; this
   module covers exactly what the exporters need: deterministic,
   schema-stable output (object fields are emitted sorted by key, so
   exports are byte-stable regardless of the order a producer happened
   to assemble them in; floats go through one fixed format), so that
   two same-seed runs produce byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Emission order for object fields: sorted by key, independent of
   insertion order. *)
let sorted_fields fields =
  List.stable_sort (fun (a, _) (b, _) -> String.compare a b) fields

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.12g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (float_repr v)
  | String s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        write buf v)
      (sorted_fields fields);
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* Two-space indented rendering for human-facing summaries. *)
let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v -> write buf v
  | List [] -> Buffer.add_string buf "[]"
  | List l ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "[\n";
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  ";
        write_pretty buf (indent + 2) v)
      l;
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf pad;
        Buffer.add_string buf "  \"";
        escape buf k;
        Buffer.add_string buf "\": ";
        write_pretty buf (indent + 2) v)
      (sorted_fields fields);
    Buffer.add_char buf '\n';
    Buffer.add_string buf pad;
    Buffer.add_char buf '}'

let to_pretty_string v =
  let buf = Buffer.create 512 in
  write_pretty buf 0 v;
  Buffer.contents buf
