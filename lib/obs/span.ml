(* Span model: one *operation* (a join, a range query, a repair...) is
   a span; everything observed while it runs — bus hops, retries,
   timeouts, repair steps — is a timestamped event tagged with the
   operation's id. Operations nest (a search can trigger a repair),
   so an event belongs to the innermost open operation.

   Time is virtual: [Engine.now] when the recorder is given a clock,
   otherwise the event's global sequence number doubles as a hop
   index — either way a pure function of the run's seed, never the
   wall clock, so traces are byte-reproducible. *)

(* Operation kinds. Plain strings so extensions (replication,
   balancing...) can add kinds without touching this module; the
   constants below are the taxonomy the core protocols emit. *)
type kind = string

let join = "join"
let leave = "leave"
let exact = "exact"
let range = "range"
let insert = "insert"
let delete = "delete"
let restructure = "restructure"
let repair = "repair"

(* Event names carried by [Note]. *)
let n_retry = "send.retry"
let n_give_up = "send.give_up"
let n_timeout = "net.timeout"
let n_unreachable = "net.unreachable"
let n_repair_triggered = "repair.triggered"

type event =
  | Op_begin of { kind : kind; parent : int option }
  | Op_end of { ok : bool; hops : int; msgs : int }
  | Hop of { src : int; dst : int; msg : string; span : int }
      (** [span] is the message's causal span id when it carried a
          {!Baton_sim.Bus.trace_ctx}, [-1] for untraced traffic. *)
  | Note of { name : string; peer : int option }

type entry = {
  seq : int;  (** global event index; the hop index when there is no clock *)
  op : int;  (** owning operation id, -1 when outside any operation *)
  time : float option;  (** virtual time, when the recorder has a clock *)
  ev : event;
}
