(* Causal message tracing (Dapper-style).

   One *episode* is the whole causal tree of an operation: every
   message transmitted on its behalf — routing hops, retries, cache
   probes, repair traffic triggered mid-walk — carries a
   {!Baton_sim.Bus.trace_ctx} naming the episode (trace id), its own
   span id and the span of the message that caused it. Reconstructing
   the parent links afterwards yields the hop DAG, whose longest chain
   is the operation's critical path — the quantity the concurrent
   runtime charges as completion time — while the hop *count* is the
   paper's metric. Both live in one artifact, so "why did this range
   scan cost what it did" has an answer, not just a total.

   Purely an observer: the collector allocates ids and appends records;
   it never sends a message, never draws from a protocol PRNG, and
   never perturbs the fault model — tracing on and tracing off count
   byte-identical [Metrics].

   Causality under concurrency: the collector keeps *ambient* state
   (the open episode and the span of the last delivered message). The
   protocol code between two suspension points runs atomically, so the
   ambient state is correct within a fiber; across fiber switches the
   runtime snapshots it with {!save} and reinstates it with {!restore}
   (forked children each inherit the fork point's mark). Under purely
   synchronous execution there are no switches and the ambient state
   just threads through the call tree. *)

module Bus = Baton_sim.Bus
module Engine = Baton_sim.Engine

type ctx = Bus.trace_ctx = {
  trace : int;
  span : int;
  parent : int;
  op : string;
}

(* What became of one transmitted message. *)
type outcome = Delivered | Timed_out | Unreachable

let outcome_label = function
  | Delivered -> "ok"
  | Timed_out -> "timeout"
  | Unreachable -> "unreachable"

type hop = {
  ctx : ctx;
  src : int;
  dst : int;
  msg : string;  (** message kind on the bus *)
  link : string;  (** link classification supplied by the sender *)
  dst_level : int;  (** destination's tree level at send time, [-1] unknown *)
  sent : float;  (** virtual send instant (global hop index when unclocked) *)
  done_at : float;
      (** when the sender stopped waiting: delivery instant, or the
          timeout-detection instant for lost messages *)
  outcome : outcome;
}

type episode = {
  id : int;  (** trace id *)
  op : string;  (** origin operation kind *)
  mutable origin : int;  (** issuing peer (source of the first hop) *)
  started : float;
  mutable finished : float;
  mutable ok : bool;
  mutable hops_rev : hop list;
  mutable n_hops : int;
}

type mark = { m_episode : episode option; m_parent : int }

type t = {
  capacity : int;
  ring : episode option array;
  mutable count : int;  (** episodes completed *)
  mutable next_trace : int;
  mutable next_span : int;
  mutable seq : int;  (** global hop counter; the clock fallback *)
  mutable clock : (unit -> float) option;
  (* Ambient state — see the header comment. *)
  mutable current : episode option;
  mutable parent : int;
}

let default_capacity = 256

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  {
    capacity;
    ring = Array.make capacity None;
    count = 0;
    next_trace = 0;
    next_span = 0;
    seq = 0;
    clock = None;
    current = None;
    parent = -1;
  }

let set_clock t clock = t.clock <- clock
let use_engine t engine = t.clock <- Some (fun () -> Engine.now engine)

let now t =
  match t.clock with None -> float_of_int t.seq | Some now -> now ()

let time = now

(* --- Ambient state across fiber switches --------------------------- *)

let save t = { m_episode = t.current; m_parent = t.parent }

let restore t m =
  t.current <- m.m_episode;
  t.parent <- m.m_parent

let with_mark t m f =
  let outer = save t in
  restore t m;
  Fun.protect ~finally:(fun () -> restore t outer) f

(* --- Writer side ---------------------------------------------------- *)

let active t = Option.is_some t.current

let finalize t ep ~ok =
  ep.finished <- now t;
  ep.ok <- ok;
  t.ring.(t.count mod t.capacity) <- Some ep;
  t.count <- t.count + 1

(* Run [f] as one traced episode. A nested call (a repair triggered
   mid-search, a locate walk inside a range query) joins the episode
   already open in the ambient state instead of opening its own: the
   whole operation is one causal tree. *)
let with_episode t ~op f =
  match t.current with
  | Some _ -> f ()
  | None ->
    let ep =
      {
        id = t.next_trace;
        op;
        origin = -1;
        started = now t;
        finished = now t;
        ok = true;
        hops_rev = [];
        n_hops = 0;
      }
    in
    t.next_trace <- ep.id + 1;
    t.current <- Some ep;
    t.parent <- -1;
    let close ~ok =
      finalize t ep ~ok;
      t.current <- None;
      t.parent <- -1
    in
    (match f () with
    | v ->
      close ~ok:true;
      v
    | exception e ->
      close ~ok:false;
      raise e)

(* Allocate the context a message about to be transmitted will carry:
   a fresh span under the ambient causal parent. [None] outside any
   episode — untraced traffic (e.g. network construction) carries no
   context. *)
let next_ctx t =
  match t.current with
  | None -> None
  | Some ep ->
    let span = t.next_span in
    t.next_span <- span + 1;
    Some { trace = ep.id; span; parent = t.parent; op = ep.op }

let record t ~ctx ~src ~dst ~msg ~link ~dst_level ~sent ~outcome =
  match t.current with
  | None -> ()
  | Some ep ->
    if ep.origin < 0 then ep.origin <- src;
    let hop =
      { ctx; src; dst; msg; link; dst_level; sent; done_at = now t; outcome }
    in
    ep.hops_rev <- hop :: ep.hops_rev;
    ep.n_hops <- ep.n_hops + 1;
    t.seq <- t.seq + 1

(* After a delivered message, what the receiver does next is caused by
   it: advance the ambient parent. Fire-and-forget traffic (notify)
   never advances — nothing awaits it. *)
let advance t (ctx : ctx) = t.parent <- ctx.span

(* --- Read side ------------------------------------------------------ *)

let episode_count t = t.count
let open_episode t = t.current

let episodes t =
  let n = min t.count t.capacity in
  let first = t.count - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let latest t =
  match episodes t with [] -> None | l -> Some (List.nth l (List.length l - 1))

let hops (ep : episode) = List.rev ep.hops_rev

(* --- Critical-path analysis ----------------------------------------- *)

type chain = { length : int; ms : float; spans : hop list }

type analysis = {
  a_trace : int;
  a_op : string;
  a_origin : int;
  msgs : int;  (** every transmitted message, retries included *)
  delivered : int;
  timeouts : int;  (** timed-out and unreachable attempts *)
  crit_hops : int;  (** hops on the longest causal chain *)
  crit_ms : float;  (** latest [done_at] minus episode start *)
  duration_ms : float;  (** episode end minus episode start *)
  by_link : (string * int) list;  (** sorted by link kind *)
  by_level : (int * int) list;  (** destination level -> hops, sorted *)
  chains : chain list;  (** dominant root-to-leaf chains, longest first *)
}

let analyze ?(top = 3) (ep : episode) =
  let hops = hops ep in
  let tally assoc key =
    match List.assoc_opt key !assoc with
    | Some n -> assoc := (key, n + 1) :: List.remove_assoc key !assoc
    | None -> assoc := (key, 1) :: !assoc
  in
  let by_link = ref [] and by_level = ref [] in
  let delivered = ref 0 and timeouts = ref 0 in
  (* Children of each span, in send order. *)
  let children = Hashtbl.create 64 in
  List.iter
    (fun h ->
      tally by_link h.link;
      tally by_level h.dst_level;
      (match h.outcome with
      | Delivered -> incr delivered
      | Timed_out | Unreachable -> incr timeouts);
      let siblings =
        Option.value ~default:[] (Hashtbl.find_opt children h.ctx.parent)
      in
      Hashtbl.replace children h.ctx.parent (siblings @ [ h ]))
    hops;
  (* Depth-first over the causal tree, tracking the best chain by hop
     count (ties broken by accumulated time, then deterministic span
     order). *)
  let chains = ref [] in
  let rec descend h depth path ms =
    let ms = Float.max ms (h.done_at -. ep.started) in
    match Hashtbl.find_opt children h.ctx.span with
    | None | Some [] ->
      chains := { length = depth; ms; spans = List.rev (h :: path) } :: !chains
    | Some kids -> List.iter (fun k -> descend k (depth + 1) (h :: path) ms) kids
  in
  List.iter
    (fun root -> descend root 1 [] 0.)
    (Option.value ~default:[] (Hashtbl.find_opt children (-1)));
  let ranked =
    List.stable_sort
      (fun a b ->
        match compare b.length a.length with
        | 0 -> compare b.ms a.ms
        | c -> c)
      (List.rev !chains)
  in
  let crit_hops = match ranked with [] -> 0 | c :: _ -> c.length in
  let crit_ms =
    List.fold_left (fun acc h -> Float.max acc (h.done_at -. ep.started)) 0. hops
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  {
    a_trace = ep.id;
    a_op = ep.op;
    a_origin = ep.origin;
    msgs = ep.n_hops;
    delivered = !delivered;
    timeouts = !timeouts;
    crit_hops;
    crit_ms;
    duration_ms = ep.finished -. ep.started;
    by_link = List.sort compare !by_link;
    by_level = List.sort compare !by_level;
    chains = take top ranked;
  }

(* --- Export --------------------------------------------------------- *)

let hop_json (h : hop) =
  Json.Obj
    [
      ("trace", Json.Int h.ctx.trace);
      ("span", Json.Int h.ctx.span);
      ("parent", if h.ctx.parent < 0 then Json.Null else Json.Int h.ctx.parent);
      ("op", Json.String h.ctx.op);
      ("src", Json.Int h.src);
      ("dst", Json.Int h.dst);
      ("msg", Json.String h.msg);
      ("link", Json.String h.link);
      ("level", Json.Int h.dst_level);
      ("sent", Json.Float h.sent);
      ("done", Json.Float h.done_at);
      ("outcome", Json.String (outcome_label h.outcome));
    ]

let analysis_json a =
  Json.Obj
    [
      ("trace", Json.Int a.a_trace);
      ("op", Json.String a.a_op);
      ("origin", Json.Int a.a_origin);
      ("msgs", Json.Int a.msgs);
      ("delivered", Json.Int a.delivered);
      ("timeouts", Json.Int a.timeouts);
      ("crit_hops", Json.Int a.crit_hops);
      ("crit_ms", Json.Float a.crit_ms);
      ("duration_ms", Json.Float a.duration_ms);
      ( "by_link",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) a.by_link) );
      ( "by_level",
        Json.List
          (List.map
             (fun (l, n) ->
               Json.Obj [ ("level", Json.Int l); ("hops", Json.Int n) ])
             a.by_level) );
      ( "chains",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("hops", Json.Int c.length);
                   ("ms", Json.Float c.ms);
                   ( "spans",
                     Json.List (List.map (fun h -> Json.Int h.ctx.span) c.spans)
                   );
                 ])
             a.chains) );
    ]

(* One hop per line, in send order, closed by one analysis line —
   deterministic, so same-seed runs emit byte-identical files. *)
let episode_jsonl ep =
  let buf = Buffer.create 4096 in
  List.iter
    (fun h ->
      Buffer.add_string buf (Json.to_string (hop_json h));
      Buffer.add_char buf '\n')
    (hops ep);
  Buffer.add_string buf (Json.to_string (analysis_json (analyze ep)));
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Causal tree, rendered: children indent under the hop that caused
   them, annotated with link kind and timing. *)
let render ep =
  let a = analyze ep in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "trace #%d %s origin=%d: %d msgs (%d delivered, %d lost), critical \
        path %d hops, %.1f ms (completed %.1f ms)\n"
       a.a_trace a.a_op a.a_origin a.msgs a.delivered a.timeouts a.crit_hops
       a.crit_ms a.duration_ms);
  let children = Hashtbl.create 64 in
  List.iter
    (fun h ->
      let siblings =
        Option.value ~default:[] (Hashtbl.find_opt children h.ctx.parent)
      in
      Hashtbl.replace children h.ctx.parent (siblings @ [ h ]))
    (hops ep);
  let rec emit depth h =
    Buffer.add_string buf
      (Printf.sprintf "%s#%-3d %d -> %d  %s [%s]  t=%.1f+%.1f%s\n"
         (String.make (2 * depth) ' ')
         h.ctx.span h.src h.dst h.msg h.link
         (h.sent -. ep.started)
         (h.done_at -. h.sent)
         (match h.outcome with
         | Delivered -> ""
         | Timed_out -> "  TIMEOUT"
         | Unreachable -> "  UNREACHABLE"));
    List.iter
      (emit (depth + 1))
      (Option.value ~default:[] (Hashtbl.find_opt children h.ctx.span))
  in
  List.iter (emit 1) (Option.value ~default:[] (Hashtbl.find_opt children (-1)));
  Buffer.add_string buf
    (Printf.sprintf "per-link: %s\n"
       (String.concat ", "
          (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) a.by_link)));
  Buffer.add_string buf
    (Printf.sprintf "per-level: %s\n"
       (String.concat ", "
          (List.map (fun (l, n) -> Printf.sprintf "L%d=%d" l n) a.by_level)));
  Buffer.contents buf
