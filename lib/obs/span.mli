(** Span model: one {e operation} (a join, a range query, a repair...)
    is a span; everything observed while it runs — bus hops, retries,
    timeouts, repair steps — is a timestamped event tagged with the
    operation's id. Operations nest (a search can trigger a repair), so
    an event belongs to the innermost open operation.

    Time is virtual: [Engine.now] when the recorder is given a clock,
    otherwise the event's global sequence number doubles as a hop index
    — either way a pure function of the run's seed, never the wall
    clock, so traces are byte-reproducible. *)

type kind = string
(** Operation kind. Plain strings so extensions (replication,
    balancing...) can add kinds without touching this module; the
    constants below are the taxonomy the core protocols emit. *)

val join : kind
val leave : kind
val exact : kind
val range : kind
val insert : kind
val delete : kind
val restructure : kind
val repair : kind

(** {1 Event names carried by [Note]} *)

val n_retry : string
val n_give_up : string
val n_timeout : string
val n_unreachable : string
val n_repair_triggered : string

type event =
  | Op_begin of { kind : kind; parent : int option }
  | Op_end of { ok : bool; hops : int; msgs : int }
  | Hop of { src : int; dst : int; msg : string; span : int }
      (** [span] is the message's causal span id when it carried a
          {!Baton_sim.Bus.trace_ctx}, [-1] for untraced traffic. *)
  | Note of { name : string; peer : int option }

type entry = {
  seq : int;  (** global event index; the hop index when there is no clock *)
  op : int;  (** owning operation id, -1 when outside any operation *)
  time : float option;  (** virtual time, when the recorder has a clock *)
  ev : event;
}
