(** Minimal JSON reader/writer for telemetry export.

    The repository deliberately avoids external dependencies; this
    module covers exactly what the exporters and the regression gate
    need. Output is deterministic and schema-stable: object fields are
    emitted sorted by key regardless of the order a producer assembled
    them in, and floats go through one fixed format — so two same-seed
    runs produce byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val sorted_fields : (string * t) list -> (string * t) list
(** Object fields in emission order: stably sorted by key. *)

val float_repr : float -> string
(** The writer's float format: integral values as ["%.1f"], everything
    else as ["%.12g"]. *)

val to_string : t -> string
(** Compact (single-line) rendering. *)

val to_pretty_string : t -> string
(** Two-space-indented rendering for human-facing summaries. Field
    order and number formats match {!to_string}. *)

val parse : string -> (t, string) result
(** Recursive-descent reader for the documents this module writes
    (bench reports, traces, series) — standard JSON. Numbers parse to
    [Int] when integral with no ['.'], ['e'] or leading-zero baggage,
    else to [Float], matching what the writer emits. The error carries
    the failing offset. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the field's value; [None] for a
    missing key or a non-object. *)
