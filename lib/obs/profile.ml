(* Simulator self-profiling: where the *process* spends its wall-clock
   time while the simulated world runs.

   Accumulators are per-subsystem records in a small hashtable; a probe
   is two gettimeofday calls and a handful of float/int updates, cheap
   enough to leave on for every bench run. Re-entrant activations are
   depth-counted so only the outermost one accumulates wall time —
   nested regions (a range locate inside a range operation) never
   double-bill the same microseconds to one subsystem.

   Everything here is one-way instrumentation: probes read the wall
   clock and the GC and write private state. No message, no PRNG, no
   simulated-clock interaction — a profiled run counts byte-identical
   simulated metrics to an unprofiled one. The flip side: every number
   this module produces describes the host machine, not the seeded
   world, so exports must keep them out of same-seed byte
   comparisons. *)

type region = {
  mutable calls : int;
  mutable wall : float;  (* cumulative outermost wall seconds *)
  mutable depth : int;
  mutable opened : float;  (* entry instant of the outermost activation *)
}

type t = {
  regions : (string, region) Hashtbl.t;
  started : float;
  gc0 : Gc.stat;
  mutable stopped : float option;
}

let s_dispatch = "engine.dispatch"
let s_delivery = "bus.delivery"
let s_exact = "search.exact"
let s_range = "search.range"
let s_cache = "cache.probe"
let s_restructure = "restructure"
let s_repair = "repair"

let create () =
  {
    regions = Hashtbl.create 16;
    started = Unix.gettimeofday ();
    gc0 = Gc.quick_stat ();
    stopped = None;
  }

let region t name =
  match Hashtbl.find_opt t.regions name with
  | Some r -> r
  | None ->
    let r = { calls = 0; wall = 0.; depth = 0; opened = 0. } in
    Hashtbl.add t.regions name r;
    r

let enter t name =
  let r = region t name in
  r.calls <- r.calls + 1;
  if r.depth = 0 then r.opened <- Unix.gettimeofday ();
  r.depth <- r.depth + 1

let leave t name =
  let r = region t name in
  if r.depth <= 0 then
    invalid_arg (Printf.sprintf "Profile.leave: %S is not open" name);
  r.depth <- r.depth - 1;
  if r.depth = 0 then r.wall <- r.wall +. (Unix.gettimeofday () -. r.opened)

let wrap t name f =
  enter t name;
  Fun.protect ~finally:(fun () -> leave t name) f

let stop t =
  match t.stopped with
  | Some _ -> ()
  | None -> t.stopped <- Some (Unix.gettimeofday ())

let calls t name =
  match Hashtbl.find_opt t.regions name with Some r -> r.calls | None -> 0

let wall_ms t name =
  match Hashtbl.find_opt t.regions name with
  | Some r -> r.wall *. 1000.
  | None -> 0.

let subsystems t =
  Hashtbl.fold (fun name r acc -> (name, r.calls, r.wall *. 1000.) :: acc)
    t.regions []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let elapsed_ms t =
  let upto =
    match t.stopped with Some s -> s | None -> Unix.gettimeofday ()
  in
  (upto -. t.started) *. 1000.

let events t = calls t s_dispatch

let events_per_s t =
  let ms = elapsed_ms t in
  if ms > 0. then float_of_int (events t) /. ms *. 1000. else 0.

let now_ms () = Unix.gettimeofday () *. 1000.

let gc_json t =
  let g = Gc.quick_stat () in
  let g0 = t.gc0 in
  Json.Obj
    [
      ("minor_collections", Json.Int (g.minor_collections - g0.minor_collections));
      ("major_collections", Json.Int (g.major_collections - g0.major_collections));
      ("compactions", Json.Int (g.compactions - g0.compactions));
      ("minor_words", Json.Float (g.minor_words -. g0.minor_words));
      ("promoted_words", Json.Float (g.promoted_words -. g0.promoted_words));
      ("major_words", Json.Float (g.major_words -. g0.major_words));
      ("top_heap_words", Json.Int g.top_heap_words);
    ]

let json t =
  Json.Obj
    [
      ("wall_ms", Json.Float (elapsed_ms t));
      ("events", Json.Int (events t));
      ("events_per_s", Json.Float (events_per_s t));
      ("gc", gc_json t);
      ( "subsystems",
        Json.Obj
          (List.map
             (fun (name, calls, wall) ->
               ( name,
                 Json.Obj
                   [ ("calls", Json.Int calls); ("wall_ms", Json.Float wall) ]
               ))
             (subsystems t)) );
    ]

let table t =
  let total = elapsed_ms t in
  let rows =
    subsystems t
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-18s %10s %12s %7s\n" "subsystem" "calls" "wall ms"
       "share");
  List.iter
    (fun (name, calls, wall) ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s %10d %12.2f %6.1f%%\n" name calls wall
           (if total > 0. then wall /. total *. 100. else 0.)))
    rows;
  Buffer.add_string buf
    (Printf.sprintf "%-18s %10d %12.2f  (%.0f events/s)\n" "elapsed"
       (events t) total (events_per_s t));
  Buffer.contents buf
