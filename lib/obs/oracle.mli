(** Trace-replay consistency oracle.

    Replays every completed operation's answer against a sequential
    model of the key space maintained from the applied mutation
    sequence (bulk load, inserts, deletes, crash-induced key loss),
    attaching the operation's causal-trace analysis as evidence.
    Because operations overlap mutations, the model is interval-valued:
    each mutation occupies an uncertainty window from issue to
    completion, and a key's state is {e definite} for a reader only
    when its newest transition settled before the reader's window
    opened and no mutation of it was in flight.

    A pure observer: never sends a message, never draws from a protocol
    PRNG — checked and unchecked same-seed runs count byte-identical
    {!Baton_sim.Metrics}. *)

type t

type verdict =
  | Pass  (** answer matches the definite model state *)
  | Tolerated of string
      (** answer disagrees but the system said so: flagged incomplete,
          missing keys inside a reported hole, or genuinely uncertain
          under concurrency *)
  | Violation of string
      (** answer is wrong and was presented as right: stale read,
          phantom key, false-complete range, broken range tiling *)

val create : unit -> t

(** {1 Model maintenance — driven by the workload harness} *)

val seed_keys : t -> int list -> unit
(** Record the initial bulk load, settled before the measured phase. *)

val begin_mutation : t -> int -> unit
(** A mutation of this key is now in flight: its state is uncertain to
    every overlapping reader until committed or aborted. *)

val abort_mutation : t -> int -> unit
(** The in-flight mutation failed before applying (its operation
    raised): the key keeps its previous state. *)

val commit_insert : t -> int -> started:float -> finished:float -> unit
(** The in-flight insert applied, with the given uncertainty window. *)

val commit_delete : t -> int -> started:float -> finished:float -> unit

val note_lost : t -> time:float -> int list -> unit
(** Keys destroyed by a crash, at one definite instant. *)

val lost_keys : t -> int
(** Total keys destroyed by crashes so far. *)

(** {1 Checks — one per completed operation} *)

val check_exact :
  t ->
  ?trace:Trace.analysis ->
  started:float ->
  finished:float ->
  key:int ->
  found:bool ->
  complete:bool ->
  unit ->
  verdict
(** Judge a completed exact-match lookup: [found] against the key's
    definite state at [started]. A wrong [found=false] is tolerated
    only when the answer was flagged [complete=false]. *)

val check_range :
  t ->
  ?trace:Trace.analysis ->
  started:float ->
  finished:float ->
  lo:int ->
  hi:int ->
  keys:int list ->
  complete:bool ->
  holes:(int * int) list ->
  unit ->
  verdict
(** Judge a completed range query over the closed interval
    [\[lo, hi\]]. Violations: an answered key that is definitely absent
    or out of range (phantom); a definitely-present key omitted while
    the answer claimed [complete] (false-complete); a definitely-present
    key omitted outside every reported hole (broken tiling). Omissions
    inside reported holes and disagreements on uncertain keys are
    tolerated. The store is a multiset but the oracle models presence,
    so answers are judged as sets. *)

(** {1 Report} *)

val checked : t -> int
val violation_count : t -> int
val tolerated_count : t -> int

val incomplete_count : t -> int
(** Answers that arrived explicitly flagged [complete = false]. *)

val json : t -> Json.t
(** Deterministic summary: totals, per-op-kind counts, and a capped
    list of violation details (with trace evidence when supplied). *)
