(* Streaming digest of operation durations (virtual milliseconds).

   The recorder's digests count hops and messages — integers the paper
   reasons about. The concurrent runtime additionally produces
   latencies, which are floats of simulated time; this digest buckets
   them to tenths of a millisecond on the integer {!Histogram}, so a
   million-operation run stays bounded by the number of distinct
   rounded durations while p50/p95/p99 stay within 0.1 ms of exact.
   Everything here is a pure function of the recorded values: two
   same-seed runs serialize byte-identically. *)

module Histogram = Baton_util.Histogram

type t = Histogram.t

(* Tenth-of-a-millisecond buckets. *)
let scale = 10.

let create () : t = Histogram.create ()

let add t ms =
  if ms < 0. then invalid_arg "Timing.add: negative duration";
  Histogram.add t (int_of_float (Float.round (ms *. scale)))

let count t = Histogram.total t

let mean t = Histogram.mean t /. scale

let percentile t p =
  if Histogram.total t = 0 then 0.
  else float_of_int (Histogram.percentile t p) /. scale

let max_ms t =
  match Histogram.max_value t with
  | None -> 0.
  | Some v -> float_of_int v /. scale

(* Schema-stable summary object; zeros when nothing was recorded so
   the field set never depends on the data. *)
let json t =
  Json.Obj
    [
      ("ops", Json.Int (count t));
      ("mean_ms", Json.Float (mean t));
      ("p50_ms", Json.Float (percentile t 50.));
      ("p95_ms", Json.Float (percentile t 95.));
      ("p99_ms", Json.Float (percentile t 99.));
      ("max_ms", Json.Float (max_ms t));
    ]
