(* Bounded ring of periodic telemetry samples on the simulated clock.

   Same storage discipline as Gauge: a fixed array indexed modulo
   capacity, so a million-sample run costs the capacity, not the run
   length. Values arrive as (name, float) pairs and are stored as
   given; serialization sorts names through the Json writer, so export
   order never depends on how a producer assembled a sample. *)

type sample = { time : float; values : (string * float) list }

type t = {
  cap : int;
  ring : sample option array;
  mutable count : int;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Series.create: capacity < 1";
  { cap = capacity; ring = Array.make capacity None; count = 0 }

let capacity t = t.cap

let record t ~time values =
  t.ring.(t.count mod t.cap) <- Some { time; values };
  t.count <- t.count + 1

let recorded t = t.count
let retained t = min t.count t.cap
let dropped t = t.count - retained t

let samples t =
  let n = retained t in
  let first = t.count - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.cap) with
      | Some s -> s
      | None -> assert false)

let latest t =
  if t.count = 0 then None else t.ring.((t.count - 1) mod t.cap)

let sample_json s =
  Json.Obj
    (("t", Json.Float s.time)
    :: List.map (fun (name, v) -> (name, Json.Float v)) s.values)

let json_fields t =
  [
    ("recorded", Json.Int (recorded t));
    ("dropped", Json.Int (dropped t));
    ("samples", Json.List (List.map sample_json (samples t)));
  ]

let json t = Json.Obj (json_fields t)

let jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Json.to_string (sample_json s));
      Buffer.add_char buf '\n')
    (samples t);
  Buffer.contents buf
