(* Per-node load gauge: periodic snapshots of a per-node quantity
   (messages handled, keys stored...) reduced to a fixed-size summary
   per sample, kept in a bounded ring — the raw per-node vector is
   never retained. Feeds Figure 8(f)-style skew analysis: how the
   spread between the mean and the p99/max node evolves over a run. *)

type sample = {
  time : float;
  nodes : int;
  total : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
  max : int;
}

type t = {
  capacity : int;
  ring : sample option array;
  mutable count : int;
}

let create ?(capacity = 1024) () =
  if capacity < 1 then invalid_arg "Gauge.create: capacity < 1";
  { capacity; ring = Array.make capacity None; count = 0 }

let nearest_rank sorted p =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))) in
  sorted.(min (rank - 1) (n - 1))

let sample t ~time loads =
  let n = Array.length loads in
  if n = 0 then invalid_arg "Gauge.sample: no loads";
  let sorted = Array.copy loads in
  Array.sort compare sorted;
  let total = Array.fold_left ( + ) 0 sorted in
  let s =
    {
      time;
      nodes = n;
      total;
      mean = float_of_int total /. float_of_int n;
      p50 = nearest_rank sorted 50.;
      p95 = nearest_rank sorted 95.;
      p99 = nearest_rank sorted 99.;
      max = sorted.(n - 1);
    }
  in
  t.ring.(t.count mod t.capacity) <- Some s;
  t.count <- t.count + 1

let count t = t.count

let samples t =
  let n = min t.count t.capacity in
  let first = t.count - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some s -> s
      | None -> assert false)

let latest t =
  match samples t with [] -> None | l -> Some (List.nth l (List.length l - 1))
