(* Serialize recorder state: JSONL span traces (one event per line,
   schema-stable field order, deterministic number formatting — two
   same-seed runs emit byte-identical files), a JSON stats summary
   with per-kind percentile digests, and a human-readable span tree. *)

module Histogram = Baton_util.Histogram

let event_json (e : Span.entry) =
  let base = [ ("seq", Json.Int e.Span.seq); ("op", Json.Int e.Span.op) ] in
  let time =
    match e.Span.time with None -> [] | Some t -> [ ("t", Json.Float t) ]
  in
  let body =
    match e.Span.ev with
    | Span.Op_begin { kind; parent } ->
      [
        ("ev", Json.String "begin");
        ("kind", Json.String kind);
        ( "parent",
          match parent with None -> Json.Null | Some p -> Json.Int p );
      ]
    | Span.Op_end { ok; hops; msgs } ->
      [
        ("ev", Json.String "end");
        ("ok", Json.Bool ok);
        ("hops", Json.Int hops);
        ("msgs", Json.Int msgs);
      ]
    | Span.Hop { src; dst; msg; span } ->
      [
        ("ev", Json.String "hop");
        ("src", Json.Int src);
        ("dst", Json.Int dst);
        ("msg", Json.String msg);
      ]
      @ (if span < 0 then [] else [ ("span", Json.Int span) ])
    | Span.Note { name; peer } ->
      [
        ("ev", Json.String "note");
        ("name", Json.String name);
        ("peer", match peer with None -> Json.Null | Some p -> Json.Int p);
      ]
  in
  Json.Obj (base @ time @ body)

let events_jsonl recorder =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_json e));
      Buffer.add_char buf '\n')
    (Recorder.events recorder);
  Buffer.contents buf

let hist_json h =
  if Histogram.total h = 0 then Json.Null
  else
    Json.Obj
      [
        ("mean", Json.Float (Histogram.mean h));
        ("p50", Json.Int (Histogram.percentile h 50.));
        ("p95", Json.Int (Histogram.percentile h 95.));
        ("p99", Json.Int (Histogram.percentile h 99.));
        ("max", Json.Int (Option.value ~default:0 (Histogram.max_value h)));
      ]

let gauge_sample_json (s : Gauge.sample) =
  Json.Obj
    [
      ("t", Json.Float s.Gauge.time);
      ("nodes", Json.Int s.Gauge.nodes);
      ("total", Json.Int s.Gauge.total);
      ("mean", Json.Float s.Gauge.mean);
      ("p50", Json.Int s.Gauge.p50);
      ("p95", Json.Int s.Gauge.p95);
      ("p99", Json.Int s.Gauge.p99);
      ("max", Json.Int s.Gauge.max);
    ]

let stats_json ?load recorder =
  let ops =
    List.map
      (fun kind ->
        let d = Option.get (Recorder.digest recorder kind) in
        Json.Obj
          [
            ("kind", Json.String kind);
            ("count", Json.Int (Recorder.digest_ops d));
            ("hops", hist_json (Recorder.digest_hops d));
            ("msgs", hist_json (Recorder.digest_msgs d));
          ])
      (Recorder.kinds recorder)
  in
  let base =
    [
      ("ops", Json.List ops);
      ( "events",
        Json.Obj
          [
            ("recorded", Json.Int (Recorder.recorded recorder));
            ("dropped", Json.Int (Recorder.dropped recorder));
          ] );
    ]
  in
  let load_field =
    match load with
    | None -> []
    | Some gauge ->
      [ ("load", Json.List (List.map gauge_sample_json (Gauge.samples gauge))) ]
  in
  Json.Obj (base @ load_field)

(* Human-readable span tree: operations indent under their parent,
   with their hop/note events listed in order. *)
let span_tree recorder =
  let buf = Buffer.create 1024 in
  let depth = Hashtbl.create 16 in
  let indent op =
    (* An event outside any op (op = -1) prints flush left. *)
    String.make (2 * (match Hashtbl.find_opt depth op with Some d -> d | None -> 0)) ' '
  in
  let stamp (e : Span.entry) =
    match e.Span.time with
    | Some t -> Printf.sprintf "t=%-8.2f" t
    | None -> Printf.sprintf "#%-6d" e.Span.seq
  in
  List.iter
    (fun (e : Span.entry) ->
      match e.Span.ev with
      | Span.Op_begin { kind; parent } ->
        let d =
          match parent with
          | Some p -> 1 + Option.value ~default:0 (Hashtbl.find_opt depth p)
          | None -> 0
        in
        Hashtbl.replace depth e.Span.op d;
        Buffer.add_string buf
          (Printf.sprintf "%s%s op#%d %s\n" (String.make (2 * d) ' ') (stamp e)
             e.Span.op kind)
      | Span.Op_end { ok; hops; msgs } ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s op#%d %s (hops=%d msgs=%d)\n" (indent e.Span.op)
             (stamp e) e.Span.op
             (if ok then "done" else "FAILED")
             hops msgs)
      | Span.Hop { src; dst; msg; span } ->
        Buffer.add_string buf
          (Printf.sprintf "%s  %s %d -> %d  %s%s\n" (indent e.Span.op) (stamp e)
             src dst msg
             (if span < 0 then "" else Printf.sprintf " [span %d]" span))
      | Span.Note { name; peer } ->
        Buffer.add_string buf
          (Printf.sprintf "%s  %s ! %s%s\n" (indent e.Span.op) (stamp e) name
             (match peer with
             | Some p -> Printf.sprintf " (peer %d)" p
             | None -> "")))
    (Recorder.events recorder);
  Buffer.contents buf
