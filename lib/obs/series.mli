(** Bounded time-series telemetry rings.

    A [Series.t] collects periodic samples of named numeric values —
    metrics counters, queue depths, cache hit rates, monitor health —
    stamped with the {e simulated} clock, into a bounded ring that
    evicts oldest-first once full. Unlike {!Profile}, everything here is
    a pure function of simulated state: two same-seed runs record
    byte-identical series, so the exported JSON/JSONL belongs with the
    seeded-comparison fields of the bench report (the wall-clock world
    stays in the [profile] section).

    The sampler itself lives with whoever owns the engine (the driver
    schedules an [Engine.every] tick); this module only stores, bounds
    and serializes. *)

type sample = {
  time : float;  (** simulated milliseconds *)
  values : (string * float) list;  (** as given to {!record} *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring retaining the last [capacity] (default 4096) samples.
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val record : t -> time:float -> (string * float) list -> unit
(** Append one sample, evicting the oldest when the ring is full. *)

val recorded : t -> int
(** Samples ever recorded (monotone, not bounded). *)

val retained : t -> int
(** Samples currently held: [min (recorded t) (capacity t)]. *)

val dropped : t -> int
(** Samples evicted so far: [recorded - retained]. *)

val samples : t -> sample list
(** Retained samples, oldest first. *)

val latest : t -> sample option

val sample_json : sample -> Json.t
(** [{"t": time, name: value, ...}] — names must not collide with
    ["t"]. *)

val json_fields : t -> (string * Json.t) list
(** [("recorded", _); ("dropped", _); ("samples", [...])] — spliced by
    the driver into the report's [timeseries] object next to its own
    fields. *)

val json : t -> Json.t
(** [Json.Obj (json_fields t)]. *)

val jsonl : t -> string
(** One {!sample_json} per line, oldest first — the artifact format CI
    uploads. Deterministic for same-seed runs. *)
