(** Demand observability: per-peer load attribution, heavy-hitter
    sketches, and a key-space heat histogram.

    The dense [Metrics] arrays say how many messages each peer handled;
    this module says {e why} and {e where}: every delivered message is
    attributed to a class — did the peer own the answer ([Serve]),
    forward it ([Route]), do tree maintenance ([Maint]), or handle
    cache traffic ([Aux]) — while accessed keys feed a deterministic
    space-saving top-k sketch and a fixed-resolution histogram, and
    per-peer demand feeds exponentially-decayed counters whose
    max/mean ratio is a recency-weighted skew.

    A heat instrument is purely an observer, like the recorder, tracer
    and profiler: it never sends a message, consults no protocol PRNG
    and reads no wall clock, so installing one leaves [Metrics.total]
    and the latency digests byte-identical (guard-tested), and
    same-seed runs export byte-identical heat reports — the sketch
    breaks all ties deterministically and the decayed counters use only
    the simulation's virtual clock. *)

(** {1 Decayed counters} *)

module Decay : sig
  (** Per-peer counters with lazy exponential decay: a bump adds 1 to a
      value that halves every [half_life] time units. O(1) per touch,
      no periodic sweep, deterministic IEEE arithmetic. *)

  type t

  val create : half_life:float -> t
  (** @raise Invalid_argument if [half_life <= 0]. *)

  val decayed : half_life:float -> float -> at:float -> now:float -> float
  (** [decayed ~half_life v ~at ~now] — the pure decay law: [v] stamped
      at time [at], read at [now]. Clamps backwards time to no decay.
      Exposed for property tests. *)

  val bump : t -> int -> now:float -> unit
  (** Add one (decayed-in-place) unit of demand to a peer.
      @raise Invalid_argument on a negative peer id. *)

  val value : t -> int -> now:float -> float
  (** Current decayed value (0 for untouched peers). *)

  val stats : t -> now:float -> float * float * int
  (** [(max, mean, touched)] over peers that ever recorded demand;
      [(0, 0, 0)] when none has. *)
end

(** {1 Heavy-hitter sketch} *)

module Sketch : sig
  (** Space-saving top-k sketch (Metwally et al.) over integer keys:
      O(k) memory, and for every monitored key the estimate overcounts
      the true frequency by at most its per-entry [err], which is
      itself at most [total / k]; any key with true frequency above
      [total / k] is guaranteed monitored. Property-tested against an
      exact-count model.

      Fully deterministic: no hashing or randomization; eviction breaks
      count ties toward the smallest monitored key and {!entries} sorts
      by (count desc, key asc), so identical access sequences export
      byte-identical tables. *)

  type t

  val create : int -> t
  (** Sketch monitoring at most [k] keys.
      @raise Invalid_argument if [k < 1]. *)

  val k : t -> int
  val total : t -> int
  (** Number of {!add}s so far. *)

  val add : t -> int -> unit
  (** Record one access to a key. *)

  val estimate : t -> int -> (int * int) option
  (** [(count, err)] for a currently-monitored key: the true access
      count lies in [[count - err, count]]. [None] if unmonitored. *)

  val entries : t -> (int * int * int) list
  (** All monitored [(key, count, err)], count descending then key
      ascending. *)

  val topk_share : t -> float
  (** Guaranteed fraction of all adds held by the monitored entries:
      the sum of [count - err] lower bounds over {!total}, in
      [[0, 1]]. (Raw counts would be useless — they sum to {!total} by
      construction, making that ratio identically 1 once the sketch is
      full.) Uniform demand churns every slot and drives this toward 0;
      real heavy hitters keep small errors and push it toward their
      true share. [0.] before any add. *)
end

(** {1 The heat instrument} *)

type cls = Serve | Route | Maint | Aux
    (** What a delivered message meant for the peer that handled it:
        the operation terminated there ([Serve]), it was a transit hop
        ([Route]), it was join/leave/restructure/repair/notify
        maintenance ([Maint]), or it was route-cache traffic ([Aux] —
        the same traffic [Metrics] books under [aux_total]). *)

val cls_label : cls -> string
(** ["serve"] / ["route"] / ["maint"] / ["aux"]. *)

type t

val create :
  ?k:int -> ?buckets:int -> ?half_life:float -> lo:int -> hi:int -> unit -> t
(** Instrument for demand over the key domain [[lo, hi)]: a [k]-entry
    sketch (default 16), a [buckets]-bucket histogram (default 64,
    clamped to the domain width), and decayed counters with the given
    [half_life] (default 1000 time units).
    @raise Invalid_argument if [hi <= lo], [buckets < 1] or
    [half_life <= 0]. *)

val set_clock : t -> (unit -> float) option -> unit
(** Clock for the decayed counters. The driver installs the engine's
    virtual clock; with [None] (the default) an internal per-access
    event counter is used — deterministic either way, never the wall
    clock. The closure makes an instrument unmarshallable, which is why
    [Net.save] detaches heat like every other observer. *)

(** {2 Write side — called by [Net] and the protocol layer} *)

val hop : t -> peer:int -> cls -> unit
(** Attribute one delivered message to the peer that handled it.
    [Net.send_raw] calls this with the kind's default class; timed-out
    and unreachable attempts are never attributed (nobody handled
    them). @raise Invalid_argument on a negative peer id. *)

val promote : t -> peer:int -> was:cls -> unit
(** Reclassify one already-recorded hop at [peer] from [was] to
    [Serve]: the protocol layer calls this when it learns that the
    delivered message terminated the operation there — the transport
    cannot know that at delivery time. A no-op when [was] is already
    [Serve]. *)

val access : t -> peer:int -> int -> unit
(** Record demand for one key, served at [peer]: feeds the sketch, the
    histogram and the peer's decayed counter. Pass [peer = -1] to
    record the key without peer attribution. *)

val access_range : t -> peer:int -> lo:int -> hi:int -> unit
(** Record one range access [[lo, hi]]: every overlapped histogram
    bucket heats, the sketch monitors the range's low endpoint (entries
    stay point keys a shedding policy can act on), and [peer]'s decayed
    counter bumps once. *)

(** {2 Read side} *)

val accesses : t -> int
(** Keys/ranges recorded via {!access} / {!access_range}. *)

val count : t -> cls -> int -> int
(** Attributed hops of one class at one peer. *)

val class_total : t -> cls -> int
(** Attributed hops of one class across all peers. *)

val sketch : t -> Sketch.t
val topk_share : t -> float

val uniform_share : t -> float
(** What {!topk_share} would read if demand were uniform: the larger of
    [k / touched-key-span] (the true uniform share of k keys) and
    [k / accesses] (the sketch's churn floor — evicted slots keep a
    guaranteed count of one). The baseline the monitor's hotspot alert
    compares against. [0.] before any access. *)

val skew : t -> float
(** Max/mean of the decayed per-peer demand counters at the current
    (virtual) time — a recency-weighted load skew, where the monitor's
    [Metrics]-based skew is all-time. [0.] with no demand. *)

(** {1 Export and rendering} *)

val json : t -> Json.t
(** The bench report's [load] section: class totals, per-peer
    attribution rows (capped at the 64 largest totals, with
    [touched]/[listed] making the cap explicit), the top-k table with
    per-entry error bounds, the heat histogram, and the decayed-skew
    summary. Deterministic — same-seed runs export byte-identical
    sections. *)

val render : Json.t -> (string, string) result
(** Render a {e parsed} [load] section (as produced by {!json} and
    embedded in a bench report) as text: attribution summary, ASCII
    key-space heatmap, and the top-k table. [Error] describes the first
    missing/malformed field — the CLI turns it into a nonzero exit. *)

val render_heatmap : Json.t -> (string, string) result
val render_topk : Json.t -> (string, string) result
val render_classes : Json.t -> (string, string) result
