(** Causal message tracing and critical-path extraction.

    Dapper-style: every message transmitted on behalf of one operation
    carries a {!ctx} naming the operation's *episode* (trace id), the
    message's own span id, and the span of the message that caused it.
    Reconstructing parent links over a finished episode yields the hop
    DAG; its longest chain is the operation's critical path — the
    quantity the concurrent runtime charges as completion time — while
    the total hop count is the paper's messages metric. {!analyze}
    reports both, plus per-link-kind and per-level breakdowns and the
    dominant chains.

    The collector is a pure observer: it allocates ids and appends
    records but never sends a message or draws from a protocol PRNG, so
    traced and untraced same-seed runs count byte-identical
    {!Baton_sim.Metrics}.

    Causality is tracked *ambiently* (open episode + span of the last
    delivered message). Synchronous code just threads it through the
    call tree; a cooperative runtime must snapshot it with {!save} at
    every fiber switch and reinstate it with {!restore}, giving forked
    children the fork point's mark. *)

type ctx = Baton_sim.Bus.trace_ctx = {
  trace : int;
  span : int;
  parent : int;
  op : string;
}

type outcome = Delivered | Timed_out | Unreachable

val outcome_label : outcome -> string

type hop = {
  ctx : ctx;
  src : int;
  dst : int;
  msg : string;  (** message kind on the bus *)
  link : string;  (** link classification supplied by the sender *)
  dst_level : int;  (** destination's tree level at send time, [-1] unknown *)
  sent : float;  (** virtual send instant (global hop index when unclocked) *)
  done_at : float;
      (** when the sender stopped waiting: delivery instant, or the
          timeout-detection instant for lost messages *)
  outcome : outcome;
}

type episode

type t

val create : ?capacity:int -> unit -> t
(** Collector retaining the last [capacity] (default 256) episodes.
    @raise Invalid_argument if [capacity < 1]. *)

val set_clock : t -> (unit -> float) option -> unit
(** Timestamp source for send/completion instants. Without one, the
    global hop counter doubles as the clock. *)

val use_engine : t -> Baton_sim.Engine.t -> unit
(** [set_clock] to the engine's virtual time. *)

val time : t -> float
(** The collector's current instant — the clock when one is set,
    otherwise the global hop counter. *)

(** {1 Writer side — driven by [Net] and the runtime} *)

val active : t -> bool
(** Whether an episode is currently open. *)

val with_episode : t -> op:string -> (unit -> 'a) -> 'a
(** Run [f] as one traced episode of kind [op]. Nested calls join the
    episode already open in the ambient state — a repair triggered
    mid-search belongs to the search's causal tree. Exception-safe: the
    episode is finalized (marked failed) even if [f] raises. *)

val next_ctx : t -> ctx option
(** Context for a message about to be transmitted: fresh span under the
    ambient causal parent. [None] outside any episode. *)

val record :
  t ->
  ctx:ctx ->
  src:int ->
  dst:int ->
  msg:string ->
  link:string ->
  dst_level:int ->
  sent:float ->
  outcome:outcome ->
  unit
(** Append the fate of one transmitted message to the open episode
    (no-op outside one). Completion instant is taken from the clock. *)

val advance : t -> ctx -> unit
(** Make [ctx] the ambient causal parent — called after its message is
    delivered, so subsequent sends chain under it. Fire-and-forget
    traffic never advances. *)

(** {1 Fiber-switch support} *)

type mark

val save : t -> mark
val restore : t -> mark -> unit

val with_mark : t -> mark -> (unit -> 'a) -> 'a
(** Run [f] under [mark], restoring the previous ambient state after —
    exception-safe. *)

(** {1 Read side} *)

val episode_count : t -> int
(** Episodes completed since creation (including any evicted). *)

val open_episode : t -> episode option

val episodes : t -> episode list
(** Retained completed episodes, oldest first. *)

val latest : t -> episode option

val hops : episode -> hop list
(** Hops in send order. *)

(** {1 Analysis} *)

type chain = { length : int; ms : float; spans : hop list }

type analysis = {
  a_trace : int;
  a_op : string;
  a_origin : int;
  msgs : int;  (** every transmitted message, retries included *)
  delivered : int;
  timeouts : int;  (** timed-out and unreachable attempts *)
  crit_hops : int;  (** hops on the longest causal chain *)
  crit_ms : float;  (** latest completion instant minus episode start *)
  duration_ms : float;  (** episode end minus episode start *)
  by_link : (string * int) list;  (** hops per link kind, sorted *)
  by_level : (int * int) list;  (** hops per destination level, sorted *)
  chains : chain list;  (** dominant root-to-leaf chains, longest first *)
}

val analyze : ?top:int -> episode -> analysis
(** Reconstruct the causal tree and extract the critical path. [top]
    (default 3) bounds [chains]. *)

val hop_json : hop -> Json.t
val analysis_json : analysis -> Json.t

val episode_jsonl : episode -> string
(** One hop per line in send order, closed by one analysis line;
    deterministic, byte-identical across same-seed runs. *)

val render : episode -> string
(** ASCII causal tree: children indent under the hop that caused them,
    annotated with link kind, timing and outcome, followed by the
    per-link and per-level breakdowns. *)
