(* Demand observability: where load *lands*.

   The dense [Metrics] arrays answer "how many messages did peer p
   handle"; they cannot say *why* — whether p owned the answer, merely
   forwarded it, was doing tree maintenance, or served cache probes —
   nor *which keys* the demand concentrated on, nor how the skew moved
   over time. This module holds the three instruments that answer
   those questions:

   - per-peer attribution counters, one per {!cls} (serve / route /
     maint / aux), fed by [Net.send_raw] and promoted by the protocol
     layer when an operation terminates at a peer;
   - exponentially-decayed per-peer demand counters (a recency-weighted
     "who is hot now", where the dense counters are all-time totals);
   - a space-saving top-k heavy-hitter sketch over accessed keys plus a
     fixed-resolution key-space histogram.

   Like the recorder, tracer and profiler, a heat instrument is purely
   an observer: nothing here sends a message, consults a protocol PRNG
   or reads the wall clock — every input is an attribution event the
   protocols were already performing, and every calculation is exact
   integer/float arithmetic on those events. Installing one therefore
   leaves [Metrics.total] and the latency digests byte-identical
   (guard-tested), and same-seed runs export byte-identical heat
   reports. *)

(* --- Exponentially-decayed counters --------------------------------- *)

module Decay = struct
  (* Per-peer counters with lazy exponential decay: a bump adds 1 to a
     value that has been shrinking by half every [half_life] time units
     since it was last touched. Storing (value, stamp) and decaying on
     access keeps the hot path O(1) with no periodic sweep, and the
     arithmetic — one [**], one multiply, one add of IEEE doubles — is
     deterministic across same-seed runs. *)
  type t = {
    half_life : float;
    mutable v : float array;
    mutable at : float array;
  }

  let decayed ~half_life v ~at ~now =
    if v = 0. then 0.
    else if now <= at then v
    else v *. (0.5 ** ((now -. at) /. half_life))

  let create ~half_life =
    if half_life <= 0. then invalid_arg "Heat.Decay.create: half_life <= 0";
    { half_life; v = [||]; at = [||] }

  let grown old n default =
    let cap = max 64 (max (n + 1) (2 * Array.length old)) in
    let a = Array.make cap default in
    Array.blit old 0 a 0 (Array.length old);
    a

  let ensure t peer =
    if peer >= Array.length t.v then begin
      t.v <- grown t.v peer 0.;
      t.at <- grown t.at peer 0.
    end

  let bump t peer ~now =
    if peer < 0 then invalid_arg "Heat.Decay.bump: negative peer";
    ensure t peer;
    t.v.(peer) <-
      decayed ~half_life:t.half_life t.v.(peer) ~at:t.at.(peer) ~now +. 1.;
    t.at.(peer) <- now

  let value t peer ~now =
    if peer < 0 || peer >= Array.length t.v then 0.
    else decayed ~half_life:t.half_life t.v.(peer) ~at:t.at.(peer) ~now

  (* (max, mean, touched) over peers that ever recorded demand. *)
  let stats t ~now =
    let mx = ref 0. and sum = ref 0. and touched = ref 0 in
    for p = 0 to Array.length t.v - 1 do
      if t.v.(p) > 0. then begin
        let v = decayed ~half_life:t.half_life t.v.(p) ~at:t.at.(p) ~now in
        incr touched;
        sum := !sum +. v;
        if v > !mx then mx := v
      end
    done;
    if !touched = 0 then (0., 0., 0)
    else (!mx, !sum /. float_of_int !touched, !touched)
end

(* --- Space-saving heavy-hitter sketch ------------------------------- *)

module Sketch = struct
  (* Metwally et al.'s space-saving algorithm over integer keys: at
     most [k] monitored (key, count, err) entries; a new key evicts the
     current minimum, inheriting its count as both starting point and
     error bound. Invariants (property-tested): the counts sum to the
     number of adds, every estimate overcounts by at most [err], [err]
     is at most [total / k], and any key whose true frequency exceeds
     [total / k] is monitored.

     Determinism is part of the contract: eviction breaks count ties
     toward the *smallest monitored key* and reports are sorted by
     (count desc, key asc), so two same-seed runs — which present the
     identical access sequence — export byte-identical top-k tables.
     No hashing, no randomization. *)
  type entry = { key : int; mutable count : int; mutable err : int }

  type t = {
    k : int;
    index : (int, entry) Hashtbl.t;
    mutable slots : entry array;  (* filled prefix of length [size] *)
    mutable size : int;
    mutable total : int;
  }

  let create k =
    if k < 1 then invalid_arg "Heat.Sketch.create: k < 1";
    { k; index = Hashtbl.create (2 * k); slots = [||]; size = 0; total = 0 }

  let k t = t.k
  let total t = t.total

  let add t key =
    t.total <- t.total + 1;
    match Hashtbl.find_opt t.index key with
    | Some e -> e.count <- e.count + 1
    | None ->
      if t.size < t.k then begin
        let e = { key; count = 1; err = 0 } in
        if t.size >= Array.length t.slots then begin
          let a = Array.make (max 4 t.k) e in
          Array.blit t.slots 0 a 0 t.size;
          t.slots <- a
        end;
        t.slots.(t.size) <- e;
        t.size <- t.size + 1;
        Hashtbl.replace t.index key e
      end
      else begin
        (* Evict the minimum-count entry; ties go to the smallest key
           so the choice never depends on insertion order artifacts. *)
        let victim = ref t.slots.(0) and at = ref 0 in
        for i = 1 to t.size - 1 do
          let e = t.slots.(i) in
          if
            e.count < !victim.count
            || (e.count = !victim.count && e.key < !victim.key)
          then begin
            victim := e;
            at := i
          end
        done;
        Hashtbl.remove t.index !victim.key;
        let e = { key; count = !victim.count + 1; err = !victim.count } in
        t.slots.(!at) <- e;
        Hashtbl.replace t.index key e
      end

  let estimate t key =
    match Hashtbl.find_opt t.index key with
    | Some e -> Some (e.count, e.err)
    | None -> None

  (* (key, count, err), count descending then key ascending. *)
  let entries t =
    Array.sub t.slots 0 t.size
    |> Array.to_list
    |> List.map (fun e -> (e.key, e.count, e.err))
    |> List.sort (fun (k1, c1, _) (k2, c2, _) ->
           if c1 <> c2 then compare c2 c1 else compare k1 k2)

  (* Guaranteed demand share of the monitored keys: [count - err] is a
     lower bound on each key's true frequency, so the sum over slots is
     a lower bound on the k hottest keys' share. The raw counts would
     be useless here — they sum to [total] by construction (each add
     increments exactly one counter by one), making that ratio
     identically 1 once the sketch is full. Under uniform demand every
     slot is churned through eviction and [err ~= count], driving the
     guaranteed share toward 0; real heavy hitters keep small errors
     and push it toward their true share. *)
  let topk_share t =
    if t.total = 0 then 0.
    else begin
      let sum = ref 0 in
      for i = 0 to t.size - 1 do
        let e = t.slots.(i) in
        sum := !sum + (e.count - e.err)
      done;
      float_of_int !sum /. float_of_int t.total
    end
end

(* --- The heat instrument -------------------------------------------- *)

type cls = Serve | Route | Maint | Aux

let cls_label = function
  | Serve -> "serve"
  | Route -> "route"
  | Maint -> "maint"
  | Aux -> "aux"

type t = {
  lo : int;
  hi : int;
  buckets : int;
  bucket_width : int;
  hist : int array;
  sketch : Sketch.t;
  decay : Decay.t;
  mutable serve : int array;
  mutable route : int array;
  mutable maint : int array;
  mutable aux : int array;
  mutable peer_cap : int;  (* current length of the class arrays *)
  mutable accesses : int;
  (* Demand clock for the decayed counters: the driver points it at the
     engine's virtual clock; standalone (synchronous) users fall back
     to an internal event counter — deterministic either way, and never
     the wall clock. *)
  mutable clock : (unit -> float) option;
  mutable ticks : int;
}

let default_k = 16
let default_buckets = 64
let default_half_life = 1000.

let create ?(k = default_k) ?(buckets = default_buckets)
    ?(half_life = default_half_life) ~lo ~hi () =
  if hi <= lo then invalid_arg "Heat.create: hi <= lo";
  if buckets < 1 then invalid_arg "Heat.create: buckets < 1";
  let buckets = min buckets (hi - lo) in
  let bucket_width = (hi - lo + buckets - 1) / buckets in
  {
    lo;
    hi;
    buckets;
    bucket_width;
    hist = Array.make buckets 0;
    sketch = Sketch.create k;
    decay = Decay.create ~half_life;
    serve = [||];
    route = [||];
    maint = [||];
    aux = [||];
    peer_cap = 0;
    accesses = 0;
    clock = None;
    ticks = 0;
  }

let set_clock t c = t.clock <- c

let now t =
  match t.clock with
  | Some f -> f ()
  | None -> float_of_int t.ticks

let ensure_peer t peer =
  if peer >= t.peer_cap then begin
    let cap = max 64 (max (peer + 1) (2 * t.peer_cap)) in
    let grow old =
      let a = Array.make cap 0 in
      Array.blit old 0 a 0 t.peer_cap;
      a
    in
    t.serve <- grow t.serve;
    t.route <- grow t.route;
    t.maint <- grow t.maint;
    t.aux <- grow t.aux;
    t.peer_cap <- cap
  end

let arr t = function
  | Serve -> t.serve
  | Route -> t.route
  | Maint -> t.maint
  | Aux -> t.aux

let hop t ~peer cls =
  if peer < 0 then invalid_arg "Heat.hop: negative peer";
  ensure_peer t peer;
  let a = arr t cls in
  a.(peer) <- a.(peer) + 1

(* Reclassify one already-recorded hop at [peer] as a serve: the
   protocol layer calls this when it learns the delivered message
   terminated the operation there (the transport cannot know that at
   delivery time). Conservative on anomalies — a promotion with no
   matching hop (possible only through caller bugs) adds the serve
   without driving the source class negative. *)
let promote t ~peer ~was =
  if was <> Serve then begin
    ensure_peer t peer;
    let a = arr t was in
    if a.(peer) > 0 then a.(peer) <- a.(peer) - 1;
    t.serve.(peer) <- t.serve.(peer) + 1
  end

let bucket_of t key =
  if key < t.lo then 0
  else if key >= t.hi then t.buckets - 1
  else (key - t.lo) / t.bucket_width

let access t ~peer key =
  t.accesses <- t.accesses + 1;
  t.ticks <- t.ticks + 1;
  Sketch.add t.sketch key;
  t.hist.(bucket_of t key) <- t.hist.(bucket_of t key) + 1;
  if peer >= 0 then Decay.bump t.decay peer ~now:(now t)

(* A range access heats every overlapped bucket but feeds the sketch
   only its low endpoint: heavy-hitter entries stay point keys (what a
   shedding policy can act on), while the histogram shows the span. *)
let access_range t ~peer ~lo ~hi =
  t.accesses <- t.accesses + 1;
  t.ticks <- t.ticks + 1;
  Sketch.add t.sketch lo;
  let b0 = bucket_of t lo and b1 = bucket_of t hi in
  for b = b0 to b1 do
    t.hist.(b) <- t.hist.(b) + 1
  done;
  if peer >= 0 then Decay.bump t.decay peer ~now:(now t)

(* --- Read side ------------------------------------------------------ *)

let accesses t = t.accesses
let sketch t = t.sketch
let topk_share t = Sketch.topk_share t.sketch

let count t cls peer =
  if peer < 0 || peer >= t.peer_cap then 0 else (arr t cls).(peer)

let class_total t cls = Array.fold_left ( + ) 0 (arr t cls)

let skew t =
  let mx, mean, _ = Decay.stats t.decay ~now:(now t) in
  if mean <= 0. then 0. else mx /. mean

(* Uniform-demand baseline for the sketch's guaranteed top-k share:
   what {!topk_share} itself would read if accesses were spread evenly.
   Two floors combine. Over the key span the histogram saw touched, the
   k hottest keys would truly hold ~[k / span] of the demand; but the
   sketch also has a churn floor — under uniform demand every eviction
   still leaves its slot a guaranteed count of one ([count = min + 1],
   [err = min]), so the k slots report ~[k / total] no matter how wide
   the span. The alert baseline is the larger of the two, otherwise a
   huge key domain would make any uniform workload look hot. *)
let uniform_share t =
  let touched = ref 0 in
  Array.iter (fun c -> if c > 0 then incr touched) t.hist;
  let total = Sketch.total t.sketch in
  if !touched = 0 || total = 0 then 0.
  else begin
    let span = !touched * t.bucket_width in
    let k = float_of_int (Sketch.k t.sketch) in
    min 1. (max (k /. float_of_int span) (k /. float_of_int total))
  end

(* --- Export --------------------------------------------------------- *)

(* Per-peer rows are capped (largest total first, then peer id) so a
   10^6-peer report stays bounded; [listed]/[touched] make the cap
   explicit rather than silent. *)
let max_peer_rows = 64

let json t =
  let tnow = now t in
  let rows = ref [] and touched = ref 0 in
  for p = t.peer_cap - 1 downto 0 do
    let total = t.serve.(p) + t.route.(p) + t.maint.(p) + t.aux.(p) in
    if total > 0 then begin
      incr touched;
      rows := (p, total) :: !rows
    end
  done;
  let listed =
    List.stable_sort
      (fun (p1, t1) (p2, t2) ->
        if t1 <> t2 then compare t2 t1 else compare p1 p2)
      !rows
    |> List.filteri (fun i _ -> i < max_peer_rows)
  in
  let peer_row (p, total) =
    Json.Obj
      [
        ("peer", Json.Int p);
        ("serve", Json.Int t.serve.(p));
        ("route", Json.Int t.route.(p));
        ("maint", Json.Int t.maint.(p));
        ("aux", Json.Int t.aux.(p));
        ("total", Json.Int total);
      ]
  in
  let entry_row (key, count, err) =
    Json.Obj
      [
        ("key", Json.Int key); ("count", Json.Int count); ("err", Json.Int err);
      ]
  in
  let hist_max = Array.fold_left max 0 t.hist in
  let mx, mean, peers_touched = Decay.stats t.decay ~now:tnow in
  Json.Obj
    [
      ( "classes",
        Json.Obj
          [
            ("serve", Json.Int (class_total t Serve));
            ("route", Json.Int (class_total t Route));
            ("maint", Json.Int (class_total t Maint));
            ("aux", Json.Int (class_total t Aux));
          ] );
      ( "peers",
        Json.Obj
          [
            ("touched", Json.Int !touched);
            ("listed", Json.Int (List.length listed));
            ("rows", Json.List (List.map peer_row listed));
          ] );
      ( "hot_keys",
        Json.Obj
          [
            ("k", Json.Int (Sketch.k t.sketch));
            ("accesses", Json.Int t.accesses);
            ("topk_share", Json.Float (topk_share t));
            ("uniform_share", Json.Float (uniform_share t));
            ( "entries",
              Json.List (List.map entry_row (Sketch.entries t.sketch)) );
          ] );
      ( "heatmap",
        Json.Obj
          [
            ("lo", Json.Int t.lo);
            ("hi", Json.Int t.hi);
            ("buckets", Json.Int t.buckets);
            ("bucket_width", Json.Int t.bucket_width);
            ("max", Json.Int hist_max);
            ( "counts",
              Json.List
                (Array.to_list (Array.map (fun c -> Json.Int c) t.hist)) );
          ] );
      ( "skew",
        Json.Obj
          [
            ("half_life", Json.Float t.decay.Decay.half_life);
            ("max", Json.Float mx);
            ("mean", Json.Float mean);
            ("ratio", Json.Float (skew t));
            ("touched", Json.Int peers_touched);
          ] );
    ]

(* --- Rendering ------------------------------------------------------ *)

(* ASCII renderers over a *parsed* [load] section, so the CLI's [heat]
   subcommand works from any report file without re-running anything. *)

let shades = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let get_int name j =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | Some (Json.Float f) -> Ok (int_of_float f)
  | _ -> Error (Printf.sprintf "load section: missing int field %S" name)

let ( let* ) r f = Result.bind r f

let render_heatmap load =
  match Json.member "heatmap" load with
  | None -> Error "load section: missing \"heatmap\""
  | Some hm ->
    let* lo = get_int "lo" hm in
    let* hi = get_int "hi" hm in
    let* hist_max = get_int "max" hm in
    let* counts =
      match Json.member "counts" hm with
      | Some (Json.List l) ->
        Ok
          (List.map
             (function
               | Json.Int i -> i | Json.Float f -> int_of_float f | _ -> 0)
             l)
      | _ -> Error "load section: heatmap.counts is not a list"
    in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "key space [%d, %d), %d buckets, peak %d accesses\n" lo
         hi (List.length counts) hist_max);
    let shade c =
      if c = 0 then shades.(0)
      else if hist_max <= 0 then shades.(0)
      else
        let i =
          1 + (c * (Array.length shades - 2) / hist_max)
        in
        shades.(min i (Array.length shades - 1))
    in
    Buffer.add_char buf '|';
    List.iter (fun c -> Buffer.add_char buf (shade c)) counts;
    Buffer.add_string buf "|\n";
    (* A second row with raw-decade digits makes the scale readable
       without colour: 0-9 = floor(log-ish decile of the peak). *)
    Buffer.add_char buf '|';
    List.iter
      (fun c ->
        if c = 0 || hist_max = 0 then Buffer.add_char buf ' '
        else Buffer.add_char buf (Char.chr (Char.code '0' + (c * 9 / hist_max))))
      counts;
    Buffer.add_string buf "|\n";
    Ok (Buffer.contents buf)

let render_topk load =
  match Json.member "hot_keys" load with
  | None -> Error "load section: missing \"hot_keys\""
  | Some hk ->
    let* k = get_int "k" hk in
    let* accesses = get_int "accesses" hk in
    let share =
      match Json.member "topk_share" hk with
      | Some (Json.Float f) -> f
      | Some (Json.Int i) -> float_of_int i
      | _ -> 0.
    in
    let* entries =
      match Json.member "entries" hk with
      | Some (Json.List l) -> Ok l
      | _ -> Error "load section: hot_keys.entries is not a list"
    in
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "top-%d heavy hitters over %d accesses (top-k share %.3f)\n" k
         accesses share);
    Buffer.add_string buf
      (Printf.sprintf "%12s %10s %8s\n" "key" "count" "err");
    List.iter
      (fun e ->
        let i name =
          match get_int name e with Ok v -> v | Error _ -> 0
        in
        Buffer.add_string buf
          (Printf.sprintf "%12d %10d %8d\n" (i "key") (i "count") (i "err")))
      entries;
    Ok (Buffer.contents buf)

let render_classes load =
  match Json.member "classes" load with
  | None -> Error "load section: missing \"classes\""
  | Some c ->
    let* serve = get_int "serve" c in
    let* route = get_int "route" c in
    let* maint = get_int "maint" c in
    let* aux = get_int "aux" c in
    let total = serve + route + maint + aux in
    let pct v =
      if total = 0 then 0. else 100. *. float_of_int v /. float_of_int total
    in
    Ok
      (Printf.sprintf
         "attribution: serve %d (%.1f%%)  route %d (%.1f%%)  maint %d \
          (%.1f%%)  aux %d (%.1f%%)\n"
         serve (pct serve) route (pct route) maint (pct maint) aux (pct aux))

let render load =
  let* classes = render_classes load in
  let* heatmap = render_heatmap load in
  let* topk = render_topk load in
  Ok (classes ^ "\n" ^ heatmap ^ "\n" ^ topk)
