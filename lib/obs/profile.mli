(** Simulator self-profiling: wall-clock and GC cost of the engine
    itself.

    Everything else in [lib/obs] observes the {e simulated} world —
    virtual clocks, message counts, causal traces. This module observes
    the {e simulator}: how many wall-clock milliseconds the process
    spends inside each hot region (engine event dispatch, bus delivery,
    search routing, route-cache probes, restructuring, repair), how many
    engine events it retires per wall second, and how much garbage it
    generates doing so. It is the baseline-and-regression instrument for
    the million-peer hot-path rewrite: before flattening the substrate
    we need to know where the wall time goes.

    A profiler is strictly one-way: probes read [Unix.gettimeofday] and
    [Gc.quick_stat] and write into private accumulators. No message is
    sent, no protocol PRNG is consulted, no simulated clock is touched —
    so a run with probes installed counts byte-identical simulated
    metrics to the same run without them (guard-tested). The numbers it
    produces are inherently {e non-deterministic} (they measure the host
    machine); exporters must keep them apart from seeded-comparison
    fields, which is why the bench report isolates them in a [profile]
    section excluded from same-seed byte comparisons.

    Region semantics: [enter]/[leave] time the {e outermost} activation
    of each subsystem (re-entrant activations nest without double
    counting). Under the concurrent runtime an operation-level region
    such as {!s_exact} suspends at every hop, so its wall time includes
    whatever other fibers executed while it was parked — treat
    {!s_dispatch}, which never suspends, as the ground-truth busy meter
    and the operation regions as inclusive attribution hints. *)

type t

val create : unit -> t
(** Start profiling now: snapshots the wall clock and [Gc.quick_stat]
    as the zero point. *)

(** {1 Canonical subsystem names}

    Probes may use any string; these are the names the driver wires up
    and the bench schema documents. *)

val s_dispatch : string
(** ["engine.dispatch"] — one engine event popped and executed. Its
    call count is the engine's event throughput numerator. *)

val s_delivery : string
(** ["bus.delivery"] — one message transiting {!Baton_sim.Bus.send}
    (metrics, subscribers, fault layers). *)

val s_exact : string
(** ["search.exact"] — one exact-routing walk (cache consult + tree
    walk), including range-locate steps. *)

val s_range : string
(** ["search.range"] — one range operation (locate + both sweeps). *)

val s_cache : string
(** ["cache.probe"] — one route-cache consult (lookup + validation
    probe). *)

val s_restructure : string
(** ["restructure"] — one forced join/leave restructuring operation. *)

val s_repair : string
(** ["repair"] — one failure-repair operation. *)

(** {1 Probes} *)

val enter : t -> string -> unit
(** Open an activation of the named region. Nested activations of the
    same region are counted as calls but only the outermost one
    accumulates wall time. *)

val leave : t -> string -> unit
(** Close the most recent activation of the named region.
    @raise Invalid_argument if the region has no open activation. *)

val wrap : t -> string -> (unit -> 'a) -> 'a
(** [wrap t name f] = [enter]; [f ()]; [leave] — exception-safe. *)

val stop : t -> unit
(** Freeze {!elapsed_ms}. Further probes still accumulate (harmless);
    idempotent — the first call wins. *)

(** {1 Readouts} *)

val calls : t -> string -> int
(** Activations of a region so far (0 if never entered). *)

val wall_ms : t -> string -> float
(** Cumulative outermost wall-clock milliseconds of a region. *)

val subsystems : t -> (string * int * float) list
(** All [(name, calls, wall_ms)] triples, sorted by name. *)

val elapsed_ms : t -> float
(** Wall milliseconds from [create] to [stop] (or to now if still
    running). *)

val events : t -> int
(** Shorthand for [calls t s_dispatch]: engine events retired. *)

val events_per_s : t -> float
(** Raw simulator throughput: {!events} over {!elapsed_ms}. [0.] until
    any time has passed. *)

val now_ms : unit -> float
(** The profiler's wall clock ([Unix.gettimeofday], in ms) — exposed so
    callers measuring adjacent phases agree with the profiler about
    what time it is. *)

val gc_json : t -> Json.t
(** GC pressure since [create]: minor/major/compaction counts and
    minor/promoted/major word deltas, plus the current top-heap size. *)

val json : t -> Json.t
(** The bench report's [profile] section: total wall ms, events,
    events/s, {!gc_json} and a per-subsystem [{calls; wall_ms}] map.
    Every field is wall-clock-derived and therefore non-deterministic —
    never include it in a same-seed byte comparison. *)

val table : t -> string
(** Human-readable per-subsystem table (calls, wall ms, share of
    elapsed), widest region first. *)
