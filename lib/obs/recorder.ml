(* The telemetry recorder: collects span events into a bounded ring
   buffer and streams per-operation-kind digests.

   Purely an observer. It never sends a message, so attaching a
   recorder cannot change [Metrics.total] — the paper's metric — by a
   single count. Million-message runs stay O(capacity) in memory: old
   events are overwritten (and tallied in [dropped]), while the digests
   are streaming histograms whose size is bounded by the number of
   distinct per-operation costs. *)

module Bus = Baton_sim.Bus
module Engine = Baton_sim.Engine
module Histogram = Baton_util.Histogram

type op_state = {
  id : int;
  op_kind : Span.kind;
  mutable msgs : int;
  mutable retries : int;
}

(* Streaming per-kind digest: how many operations completed, and the
   distributions of their hop counts (first transmissions) and message
   costs (every transmission, retries included). *)
type digest = {
  mutable ops : int;
  hops : Histogram.t;
  msgs : Histogram.t;
}

type t = {
  capacity : int;
  ring : Span.entry option array;
  mutable total : int;
  mutable next_op : int;
  (* Innermost operation first. *)
  mutable stack : op_state list;
  digests : (string, digest) Hashtbl.t;
  mutable clock : (unit -> float) option;
  mutable attached : (Bus.t * Bus.subscription) option;
}

let default_capacity = 65_536

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity < 1";
  {
    capacity;
    ring = Array.make capacity None;
    total = 0;
    next_op = 0;
    stack = [];
    digests = Hashtbl.create 16;
    clock = None;
    attached = None;
  }

let set_clock t clock = t.clock <- clock
let use_engine t engine = t.clock <- Some (fun () -> Engine.now engine)

let record t ~op ev =
  let entry =
    {
      Span.seq = t.total;
      op;
      time = (match t.clock with None -> None | Some now -> Some (now ()));
      ev;
    }
  in
  t.ring.(t.total mod t.capacity) <- Some entry;
  t.total <- t.total + 1

let current_op t =
  match t.stack with [] -> -1 | op :: _ -> op.id

let on_hop t ?(span = -1) ~src ~dst ~kind () =
  List.iter (fun (op : op_state) -> op.msgs <- op.msgs + 1) t.stack;
  record t ~op:(current_op t) (Span.Hop { src; dst; msg = kind; span })

let note ?peer t name =
  record t ~op:(current_op t) (Span.Note { name; peer })

(* A retransmission: already counted as a hop (the retry passes over
   the bus again), so we additionally mark it as a retry to keep hop
   counts (distinct forward progress) separate from message costs. *)
let retry t ~peer =
  List.iter (fun (op : op_state) -> op.retries <- op.retries + 1) t.stack;
  note ~peer t Span.n_retry

let digest_for t kind =
  match Hashtbl.find_opt t.digests kind with
  | Some d -> d
  | None ->
    let d = { ops = 0; hops = Histogram.create (); msgs = Histogram.create () } in
    Hashtbl.add t.digests kind d;
    d

let begin_op t ~kind =
  let parent = match t.stack with [] -> None | op :: _ -> Some op.id in
  let op = { id = t.next_op; op_kind = kind; msgs = 0; retries = 0 } in
  t.next_op <- op.id + 1;
  t.stack <- op :: t.stack;
  record t ~op:op.id (Span.Op_begin { kind; parent });
  op.id

let end_op t ~ok =
  match t.stack with
  | [] -> invalid_arg "Recorder.end_op: no open operation"
  | op :: rest ->
    t.stack <- rest;
    let hops = op.msgs - op.retries in
    record t ~op:op.id (Span.Op_end { ok; hops; msgs = op.msgs });
    let d = digest_for t op.op_kind in
    d.ops <- d.ops + 1;
    Histogram.add d.hops hops;
    Histogram.add d.msgs op.msgs

let with_op t ~kind f =
  ignore (begin_op t ~kind : int);
  match f () with
  | result ->
    end_op t ~ok:true;
    result
  | exception e ->
    end_op t ~ok:false;
    raise e

let attach t bus =
  match t.attached with
  | Some _ -> invalid_arg "Recorder.attach: already attached"
  | None ->
    let sub =
      Bus.subscribe bus (fun ~src ~dst ~kind ->
          (* Tag the hop with its causal span id when the message in
             flight carries a trace context. *)
          let span =
            match Bus.sending_ctx bus with
            | Some ctx -> ctx.Bus.span
            | None -> -1
          in
          on_hop t ~span ~src ~dst ~kind ())
    in
    t.attached <- Some (bus, sub)

let detach t =
  match t.attached with
  | None -> ()
  | Some (bus, sub) ->
    Bus.unsubscribe bus sub;
    t.attached <- None

(* --- Read side ---------------------------------------------------- *)

let recorded t = t.total
let dropped t = max 0 (t.total - t.capacity)
let open_ops t = List.length t.stack

(* Surviving events, oldest first. *)
let events t =
  let n = min t.total t.capacity in
  let first = t.total - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let kinds t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.digests [] |> List.sort compare

let digest t kind = Hashtbl.find_opt t.digests kind
let digest_ops d = d.ops
let digest_hops d = d.hops
let digest_msgs d = d.msgs
