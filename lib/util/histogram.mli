(** Integer-bucketed histogram.

    Used by the experiment harness, e.g. to report the distribution of
    restructuring shift sizes (paper Figure 8(h)). *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Increment the bucket for the given integer value. *)

val add_many : t -> int -> int -> unit
(** [add_many t v k] adds [k] observations of value [v]. *)

val count : t -> int -> int
(** Observations recorded for a value (0 if none). *)

val total : t -> int
(** Total number of observations. *)

val max_value : t -> int option
(** Largest observed value. *)

val bins : t -> (int * int) list
(** All [(value, count)] pairs in ascending value order. *)

val mean : t -> float
(** Mean of the observations; 0. when empty. *)

val percentile : t -> float -> int
(** [percentile t p] is the nearest-rank [p]-th percentile: the
    smallest value with at least [ceil (p/100 * total)] observations
    at or below it. [percentile t 100.] is the maximum.
    @raise Invalid_argument on an empty histogram or [p] outside
    [\[0, 100\]]. *)

val pp : Format.formatter -> t -> unit
(** One line per bin: [value: count]. *)
