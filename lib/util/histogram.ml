type t = { tbl : (int, int ref) Hashtbl.t; mutable total : int }

let create () = { tbl = Hashtbl.create 64; total = 0 }

let add_many t v k =
  if k < 0 then invalid_arg "Histogram.add_many: negative count";
  (match Hashtbl.find_opt t.tbl v with
  | Some r -> r := !r + k
  | None -> Hashtbl.add t.tbl v (ref k));
  t.total <- t.total + k

let add t v = add_many t v 1

let count t v = match Hashtbl.find_opt t.tbl v with Some r -> !r | None -> 0
let total t = t.total

let bins t =
  Hashtbl.fold (fun v r acc -> (v, !r) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let max_value t =
  match bins t with
  | [] -> None
  | l -> Some (fst (List.nth l (List.length l - 1)))

(* Nearest-rank percentile over the binned values: the smallest value v
   such that at least ceil(p/100 * total) observations are <= v. *)
let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty histogram";
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p outside [0, 100]";
  let rank = max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.total))) in
  let rec go remaining = function
    | [] -> assert false
    | (v, c) :: rest -> if remaining <= c then v else go (remaining - c) rest
  in
  go rank (bins t)

let mean t =
  if t.total = 0 then 0.
  else
    let sum = Hashtbl.fold (fun v r acc -> acc + (v * !r)) t.tbl 0 in
    float_of_int sum /. float_of_int t.total

let pp fmt t =
  List.iter (fun (v, c) -> Format.fprintf fmt "%d: %d@." v c) (bins t)
