type info = {
  peer : int;
  pos : Position.t;
  range : Range.t;
  has_left_child : bool;
  has_right_child : bool;
}

type side = [ `Left | `Right ]
type kind = Parent | Child of side | Adjacent of side

let kind_index = function
  | Parent -> 0
  | Child `Left -> 1
  | Child `Right -> 2
  | Adjacent `Left -> 3
  | Adjacent `Right -> 4

let num_kinds = 5

let all_kinds =
  [ Parent; Child `Left; Child `Right; Adjacent `Left; Adjacent `Right ]

let pp_kind fmt = function
  | Parent -> Format.pp_print_string fmt "parent"
  | Child `Left -> Format.pp_print_string fmt "left child"
  | Child `Right -> Format.pp_print_string fmt "right child"
  | Adjacent `Left -> Format.pp_print_string fmt "left adjacent"
  | Adjacent `Right -> Format.pp_print_string fmt "right adjacent"

let has_both_children i = i.has_left_child && i.has_right_child
let has_spare_child_slot i = not (has_both_children i)

let pp fmt i =
  Format.fprintf fmt "peer %d at %a %a%s%s" i.peer Position.pp i.pos Range.pp
    i.range
    (if i.has_left_child then " L" else "")
    (if i.has_right_child then " R" else "")
