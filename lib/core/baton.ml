(** BATON: a balanced tree overlay for peer-to-peer networks.

    Library entry point. The protocol modules are re-exported below;
    {!Network} offers a convenience API that covers the common
    lifecycle (build a network, churn it, query it) used by the
    examples and experiments. *)

module Position = Position
module Range = Range
module Link = Link
module Routing_table = Routing_table
module Node = Node
module Route_cache = Route_cache
module Msg = Msg
module Net = Net
module Wiring = Wiring
module Search = Search
module Join = Join
module Leave = Leave
module Failure = Failure
module Restructure = Restructure
module Update = Update
module Balance = Balance
module Replication = Replication
module Viz = Viz
module Check = Check
module Monitor = Monitor

(** High-level convenience API over the protocol modules. *)
module Network = struct
  type t = Net.t

  let default_domain = Range.make ~lo:1 ~hi:1_000_000_000

  let create ?seed ?(domain = default_domain) () = Net.create ?seed ~domain ()

  (** Grow the network to [n] peers, each join routed via a random
      existing peer (as a fresh peer would: it must know at least one
      node inside the network). *)
  let build ?seed ?domain n =
    if n < 1 then invalid_arg "Network.build: need at least one peer";
    let net = create ?seed ?domain () in
    let _root = Join.join_new_network net in
    for _ = 2 to n do
      ignore (Join.join net ~via:(Net.random_peer net))
    done;
    net

  let size = Net.size
  let height = Check.height

  let join net =
    if Net.size net = 0 then (Join.join_new_network net).Node.id
    else (Join.join net ~via:(Net.random_peer net)).Join.new_peer

  let leave net id = ignore (Leave.leave net (Net.peer net id))
  let crash net id = Failure.crash net (Net.peer net id)

  let repair net id =
    Failure.repair net ~reporter:(Net.random_peer net) id

  let insert net key =
    ignore (Update.insert net ~from:(Net.random_peer net) key)

  let delete net key =
    (Update.delete net ~from:(Net.random_peer net) key).Update.found

  let lookup net key =
    (Search.lookup net ~from:(Net.random_peer net) key).Search.found

  let bulk_insert net keys =
    ignore (Update.bulk_insert net ~from:(Net.random_peer net) keys)

  let range_query net ~lo ~hi =
    (Search.range net ~from:(Net.random_peer net) ~lo ~hi).Search.keys

  let messages net = Baton_sim.Metrics.total (Net.metrics net)
  let cache_messages net = Baton_sim.Metrics.aux_total (Net.metrics net)
end
