module Metrics = Baton_sim.Metrics
module Sorted_store = Baton_util.Sorted_store

type stats = {
  replacement : int option;
  search_msgs : int;
  update_msgs : int;
}

let can_depart_directly (x : Node.t) =
  Node.is_leaf x
  && List.for_all
       (fun (_, (i : Link.info)) ->
         (not i.Link.has_left_child) && not i.Link.has_right_child)
       (Node.neighbor_entries x)

let direct_departure net (x : Node.t) ~kind =
  if Position.is_root x.Node.pos then
    (* The last node: the network becomes empty. *)
    Net.unregister net x
  else begin
    (* Content and range transfer to the parent (one message). The
       cached parent link can be stale (the parent was replaced under
       concurrent churn) or missing (dropped while routing around a
       failure); the detour through the tree costs two more messages. *)
    let parent_pos = Position.parent x.Node.pos in
    let detour () =
      match Wiring.occupant net parent_pos with
      | Some fresh_parent ->
        ignore (Net.send net ~src:x.Node.id ~dst:fresh_parent.Node.id ~kind);
        ignore (Net.send net ~src:fresh_parent.Node.id ~dst:x.Node.id ~kind);
        fresh_parent
      | None -> failwith "Leave.direct_departure: parent position empty"
    in
    let p =
      match Node.parent x with
      | None -> detour ()
      | Some p_link -> (
        match Net.send net ~src:x.Node.id ~dst:p_link.Link.peer ~kind with
        | p ->
          (* The peer behind the cached link may have moved to another
             position since; it redirects us. *)
          if Position.equal p.Node.pos parent_pos then p else detour ()
        | exception Baton_sim.Bus.Unreachable _
        | exception Baton_sim.Bus.Timeout _
        | exception Not_found ->
          detour ())
    in
    Sorted_store.absorb p.Node.store x.Node.store;
    Node.set_range p (Range.merge p.Node.range x.Node.range);
    let side = if Position.is_left_child x.Node.pos then `Left else `Right in
    Node.set_child p side None;
    (* Splice adjacency: the parent inherits x's outer adjacent. *)
    let outer = Node.adjacent x side in
    Node.set_adjacent p side outer;
    let opposite = match side with `Left -> `Right | `Right -> `Left in
    (* LEAVE messages: everyone holding a link to x drops it. Watchers
       are derived from x's position so that a gap in x's own tables
       (e.g. after routing around failures) cannot leave a dangling
       reference behind. *)
    Wiring.retract net x ~kind;
    (match outer with
    | Some z ->
      let p_info = Node.info p in
      Net.notify net ~expect_pos:z.Link.pos ~src:x.Node.id ~dst:z.Link.peer ~kind
        (fun z -> Node.set_adjacent z opposite (Some p_info))
    | None -> ());
    Net.unregister net x;
    (* The parent's range, content and child set changed: broadcast. *)
    Wiring.announce net p ~kind
  end

(* Algorithm 2. [hop] pays one forwarding message per step. *)
let find_replacement net (x : Node.t) =
  if can_depart_directly x then
    invalid_arg "Leave.find_replacement: node can depart directly";
  (* A hop to a dead or stale link costs its message; the sender drops
     the link and the caller re-decides from its current node. *)
  let hop_opt (n : Node.t) (target : Link.info) =
    match Net.send net ~src:n.Node.id ~dst:target.Link.peer ~kind:Msg.leave_search with
    | next -> Some next
    | exception Baton_sim.Bus.Unreachable dead ->
      Node.drop_links_for_peer n dead;
      None
    | exception Baton_sim.Bus.Timeout _ ->
      (* Possibly alive behind a lossy link: try another path. *)
      None
    | exception Not_found ->
      Node.drop_links_for_peer n target.Link.peer;
      None
  in
  let visited = Hashtbl.create 16 in
  let child_bearing (n : Node.t) =
    List.find_opt
      (fun (_, (i : Link.info)) ->
        (i.Link.has_left_child || i.Link.has_right_child)
        && not (Hashtbl.mem visited i.Link.peer))
      (Node.neighbor_entries n)
  in
  let budget = 64 + (4 * (1 + Net.size net)) in
  (* Algorithm 2 proper: descend through children; from a leaf, jump to
     a child of a child-bearing sideways neighbour; otherwise this node
     is the replacement. A failed hop drops the link and re-decides;
     the visited set stops ping-pong between leaves whose cached child
     flags are stale under concurrent churn. *)
  let rec walk (n : Node.t) msgs =
    Hashtbl.replace visited n.Node.id ();
    if msgs > budget then failwith "Leave.find_replacement: walk did not terminate"
    else
      match (Node.child n `Left, Node.child n `Right) with
      | Some c, _ | None, Some c -> follow n c msgs
      | None, None -> (
        match child_bearing n with
        | Some (_, w_link) -> follow n w_link msgs
        | None -> (n, msgs))
  and follow n target msgs =
    match hop_opt n target with
    | Some next -> walk next (msgs + 1)
    | None -> walk n (msgs + 1)
  in
  (* First step: an internal node starts at an adjacent node (which is
     a leaf or as deep as possible); a leaf starts at a child-bearing
     sideways neighbour. *)
  let start_walk () =
    if Node.is_leaf x then walk x 0
    else
      match (Node.adjacent x `Left, Node.adjacent x `Right) with
      | Some a, _ | None, Some a -> (
        match hop_opt x a with Some n -> walk n 1 | None -> walk x 1)
      | None, None -> assert false (* an internal node has a subtree *)
  in
  start_walk ()

let assume_position net ~leaver:(x : Node.t) ~replacement:(y : Node.t) ~kind =
  (* One message hands over content, range and x's link state. The
     replacement already left the position map, so talk to it through
     the bus directly. *)
  (* The handover must eventually get through: y already committed to
     replacing x. Retries are counted; a residual timeout is tolerated
     (the coordinator would keep retrying off-protocol). *)
  (try Net.send_raw net ~src:x.Node.id ~dst:y.Node.id ~kind
   with Baton_sim.Bus.Timeout _ -> ());
  Sorted_store.absorb y.Node.store x.Node.store;
  Net.unregister net x;
  y.Node.pos <- x.Node.pos;
  Node.bump_epoch y;
  Node.set_range y x.Node.range;
  Net.register net y;
  (* Rebuild y's links at its new position (paying one message per
     contacted peer) and tell everyone who linked to x that y replaced
     it. *)
  Wiring.rebuild_links net y ~kind;
  Wiring.announce net y ~kind;
  (* The parent's child link may have been dropped while x was
     unreachable, leaving its watchers with stale child flags; its
     announcement refreshes them. *)
  if not (Position.is_root y.Node.pos) then
    match Wiring.occupant net (Position.parent y.Node.pos) with
    | Some parent -> Wiring.announce net parent ~kind
    | None -> ()

(* Under concurrent churn a node's link to a child can have been
   dropped (the child peer was replaced and the announcement is still
   in flight) while the child position is occupied. Before acting on
   leaf-ness, such a node re-discovers its links — paying the usual
   messages — exactly as it would on its next failed contact. *)
let ensure_fresh_children net (x : Node.t) =
  let stale side =
    Option.is_none (Node.child x side)
    && Wiring.occupied net (Position.child x.Node.pos side)
  in
  if stale `Left || stale `Right then Wiring.rebuild_links net x ~kind:Msg.leave_update

(* Walk until the replacement is a structural leaf. *)
let rec resolve_from net (x : Node.t) acc =
  let y, msgs = find_replacement net x in
  ensure_fresh_children net y;
  if Node.is_leaf y || y.Node.id = x.Node.id then (y, acc + msgs)
  else resolve_from net y (acc + msgs)

let resolve_replacement net x = resolve_from net x 0

let rec leave net (x : Node.t) =
  Net.with_op net ~kind:Baton_obs.Span.leave (fun () -> leave_run net x)

and leave_run net (x : Node.t) =
  let metrics = Net.metrics net in
  let cp = Metrics.checkpoint metrics in
  ensure_fresh_children net x;
  if can_depart_directly x then begin
    direct_departure net x ~kind:Msg.leave_update;
    { replacement = None; search_msgs = 0; update_msgs = Metrics.since metrics cp }
  end
  else begin
    let y, search_msgs = resolve_replacement net x in
    let cp_update = Metrics.checkpoint metrics in
    if y.Node.id = x.Node.id then begin
      (* Stale flags made the walk come home: x itself is safely
         removable after all. *)
      direct_departure net x ~kind:Msg.leave_update;
      { replacement = None; search_msgs; update_msgs = Metrics.since metrics cp_update }
    end
    else begin
      direct_departure net y ~kind:Msg.leave_update;
      assume_position net ~leaver:x ~replacement:y ~kind:Msg.leave_update;
      {
        replacement = Some y.Node.id;
        search_msgs;
        update_msgs = Metrics.since metrics cp_update;
      }
    end
  end
