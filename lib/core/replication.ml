module Bus = Baton_sim.Bus
module Sorted_store = Baton_util.Sorted_store

type entry = { holder : int; keys : Sorted_store.t }

type t = { replicas : (int, entry) Hashtbl.t (* owner id -> entry *) }

let create () = { replicas = Hashtbl.create 256 }

let replica_count t = Hashtbl.length t.replicas

let holder_of t owner =
  Option.map (fun e -> e.holder) (Hashtbl.find_opt t.replicas owner)

let adjacent_holder (owner : Node.t) =
  match (Node.adjacent owner `Right, Node.adjacent owner `Left) with
  | Some a, _ | None, Some a -> Some a.Link.peer
  | None, None -> None

let sync_one t net (owner : Node.t) =
  match adjacent_holder owner with
  | None -> false (* a single-peer network has nowhere to replicate *)
  | Some holder -> (
    match Bus.send (Net.bus net) ~src:owner.Node.id ~dst:holder ~kind:Msg.balance with
    | () | (exception Bus.Unreachable _) | (exception Bus.Timeout _) ->
      (* The copy travels either way; an unreachable holder simply
         yields a dead replica that recover will skip. *)
      Hashtbl.replace t.replicas owner.Node.id
        { holder; keys = Sorted_store.of_list (Sorted_store.to_list owner.Node.store) };
      true)

let sync_all t net =
  Hashtbl.reset t.replicas;
  List.fold_left
    (fun msgs owner -> if sync_one t net owner then msgs + 1 else msgs)
    0 (Net.peers net)

let on_insert t net ~owner key =
  match Hashtbl.find_opt t.replicas owner.Node.id with
  | Some e -> (
    match Bus.send (Net.bus net) ~src:owner.Node.id ~dst:e.holder ~kind:Msg.balance with
    | () -> Sorted_store.insert e.keys key
    | exception Bus.Unreachable _ -> ()
    | exception Bus.Timeout _ -> ())
  | None -> ignore (sync_one t net owner)

let recover t net ~dead =
  match Hashtbl.find_opt t.replicas dead with
  | None -> 0
  | Some e ->
    Hashtbl.remove t.replicas dead;
    (match Net.peer_opt net e.holder with
    | Some holder when not (Bus.is_failed (Net.bus net) e.holder) ->
      let keys = Sorted_store.to_list e.keys in
      let restored = ref 0 in
      List.iter
        (fun k ->
          (* Routing can transiently dead-end while many failures are
             outstanding; retry once from another origin and skip the
             key if the network is still too damaged. *)
          match Update.insert net ~from:holder k with
          | _ -> incr restored
          | exception Search.Routing_stuck _ -> (
            match Update.insert net ~from:(Net.random_peer net) k with
            | _ -> incr restored
            | exception Search.Routing_stuck _ -> ()))
        keys;
      !restored
    | Some _ | None -> 0)

let forget t owner = Hashtbl.remove t.replicas owner
