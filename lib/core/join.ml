module Metrics = Baton_sim.Metrics
module Sorted_store = Baton_util.Sorted_store

type stats = {
  acceptor : int;
  new_peer : int;
  search_msgs : int;
  update_msgs : int;
}

let can_accept (n : Node.t) =
  Node.tables_full n
  && (Option.is_none (Node.child n `Left) || Option.is_none (Node.child n `Right))

(* Algorithm 1. The [visited] set breaks the ping-pong that stale
   child-presence flags could otherwise cause; when every listed option
   is exhausted we descend to a child, which always makes progress
   towards the (accepting) leaves. A hop to a dead or stale link costs
   its message; the sender drops the link and re-decides. *)
let find_join_node net ~via =
  let visited = Hashtbl.create 16 in
  let budget = 64 + (4 * (1 + Net.size net)) in
  let hop (n : Node.t) (target : Link.info) =
    match Net.send net ~src:n.Node.id ~dst:target.Link.peer ~kind:Msg.join_search with
    | next -> Some next
    | exception Baton_sim.Bus.Unreachable dead ->
      Node.drop_links_for_peer n dead;
      None
    | exception Baton_sim.Bus.Timeout _ ->
      (* Possibly alive behind a lossy link: keep the link, just pick
         another option this round. *)
      None
    | exception Not_found ->
      Node.drop_links_for_peer n target.Link.peer;
      None
  in
  let rec walk (n : Node.t) msgs =
    if msgs > budget then failwith "Join.find_join_node: no acceptor found"
    else begin
      Hashtbl.replace visited n.Node.id ();
      let fresh (i : Link.info) = not (Hashtbl.mem visited i.Link.peer) in
      if can_accept n then (n, msgs)
      else if not (Node.tables_full n) then
        match Node.parent n with
        | Some p when fresh p -> follow n p msgs
        | Some _ | None -> dive n msgs
      else begin
        let lacking =
          List.find_opt
            (fun (_, i) -> Link.has_spare_child_slot i && fresh i)
            (Node.neighbor_entries n)
        in
        match lacking with
        | Some (_, m) -> follow n m msgs
        | None -> (
          let adj side =
            match Node.adjacent n side with
            | Some a when fresh a -> Some a
            | Some _ | None -> None
          in
          match (adj `Right, adj `Left) with
          | Some a, _ | None, Some a -> follow n a msgs
          | None, None -> dive n msgs)
      end
    end
  and follow n target msgs =
    match hop n target with
    | Some next -> walk next (msgs + 1)
    | None -> walk n (msgs + 1)
  (* Every interesting direction was already visited — only possible
     when routing knowledge is stale (concurrent churn). Descend: the
     first node with a spare child slot on the way down accepts, and a
     leaf always has one, so this terminates. *)
  and dive (n : Node.t) msgs =
    if msgs > budget then failwith "Join.find_join_node: no acceptor found"
    else if
      Option.is_none (Node.child n `Left)
      || Option.is_none (Node.child n `Right)
    then (n, msgs)
    else
      match hop n (Option.get (Node.child n `Left)) with
      | Some next -> dive next (msgs + 1)
      | None -> dive n (msgs + 1)
  in
  walk via 0

(* Split point for the acceptor's range: the content median when it is
   a legal interior point (so each side keeps half the load), else the
   arithmetic midpoint. *)
let split_point (x : Node.t) =
  let r = x.Node.range in
  let n = Sorted_store.length x.Node.store in
  let candidate =
    if n = 0 then Range.midpoint r else Sorted_store.nth x.Node.store (n / 2)
  in
  if candidate > r.Range.lo && candidate < r.Range.hi then candidate
  else Range.midpoint r

let accept net ~acceptor:(x : Node.t) new_id =
  let mcp = Metrics.checkpoint (Net.metrics net) in
  let side =
    match (Node.child x `Left, Node.child x `Right) with
    | None, _ -> `Left
    | Some _, None -> `Right
    | Some _, Some _ -> invalid_arg "Join.accept: acceptor has both children"
  in
  let ypos = Position.child x.Node.pos side in
  let m = split_point x in
  let low, high = Range.split_at x.Node.range m in
  let yrange, xrange = match side with `Left -> (low, high) | `Right -> (high, low) in
  let y = Node.create ~id:new_id ~pos:ypos ~range:yrange in
  Node.set_range x xrange;
  (* Hand over the content on the new node's side of the split. *)
  let moved =
    match side with
    | `Left -> Sorted_store.split_below x.Node.store m
    | `Right -> Sorted_store.split_at_or_above x.Node.store m
  in
  Sorted_store.absorb y.Node.store moved;
  Net.register net y;
  (* Parent / child links. *)
  let opposite = match side with `Left -> `Right | `Right -> `Left in
  Node.set_child x side (Some (Node.info y));
  Node.set_parent y (Some (Node.info x));
  (* Adjacent links: y slides between x and x's old adjacent on that
     side; the displaced adjacent (if any) is told to repoint (1 msg). *)
  let outer = Node.adjacent x side in
  Node.set_adjacent y side outer;
  Node.set_adjacent y opposite (Some (Node.info x));
  Node.set_adjacent x side (Some (Node.info y));
  (match outer with
  | Some z ->
    Net.notify net ~expect_pos:z.Link.pos ~src:y.Node.id ~dst:z.Link.peer
      ~kind:Msg.join_update (fun z ->
        Node.set_adjacent z opposite (Some (Node.info y)))
  | None -> ());
  (* Record [info] in whichever of [node]'s tables has a slot for the
     given position (at most one side matches). *)
  let set_slot (node : Node.t) pos info =
    List.iter
      (fun s ->
        match Routing_table.slot_for ~owner:node.Node.pos (Node.table node s) pos with
        | Some j -> Routing_table.set (Node.table node s) j (Some info)
        | None -> ())
      [ `Left; `Right ]
  in
  (* Sibling: one message from x, one reply to y; both fill their
     distance-1 slots and the sibling refreshes its parent link. *)
  (match Node.child x opposite with
  | Some s_link ->
    let x_info = Node.info x in
    let y_info = Node.info y in
    Net.notify net ~expect_pos:s_link.Link.pos ~src:x.Node.id ~dst:s_link.Link.peer
      ~kind:Msg.join_update (fun s ->
        Node.set_parent s (Some x_info);
        set_slot s ypos y_info;
        Net.notify net ~src:s.Node.id ~dst:y.Node.id ~kind:Msg.join_update (fun y ->
            set_slot y s.Node.pos (Node.info s)))
  | None -> ());
  (* The routing-table conversation: x tells each sideways neighbour w
     (which refreshes its view of x); w forwards y's info to each of
     its children at a power-of-two distance from y; each such child c
     adds y and answers y with its own info. *)
  let x_info = Node.info x in
  let y_info = Node.info y in
  (* A child of a neighbour of x is relevant iff it sits at an exact
     power-of-two distance from y's position (it is a sideways
     neighbour of y). w can decide this locally from the positions. *)
  let is_power_of_two d = d > 0 && d land (d - 1) = 0 in
  let relevant_to_y (p : Position.t) =
    p.Position.level = ypos.Position.level
    && is_power_of_two (abs (p.Position.number - ypos.Position.number))
  in
  List.iter
    (fun (_, (w_link : Link.info)) ->
      Net.notify net ~expect_pos:w_link.Link.pos ~src:x.Node.id ~dst:w_link.Link.peer
        ~kind:Msg.join_update (fun w ->
          (* w refreshes its slot for x (new range, new child flag). *)
          set_slot w x.Node.pos x_info;
          let forward (c_link : Link.info) =
            if relevant_to_y c_link.Link.pos then
              Net.notify net ~expect_pos:c_link.Link.pos ~src:w.Node.id
                ~dst:c_link.Link.peer ~kind:Msg.join_update (fun c ->
                  set_slot c ypos y_info;
                  Net.notify net ~src:c.Node.id ~dst:y.Node.id ~kind:Msg.join_update
                    (fun y -> set_slot y c.Node.pos (Node.info c)))
          in
          (match Node.child w `Left with Some c -> forward c | None -> ());
          (match Node.child w `Right with Some c -> forward c | None -> ())))
    (Node.neighbor_entries x);
  (* Constant-size refreshes: x's parent, other child and far adjacent
     cache x's range, which just changed. *)
  let refresh_x (peer : Link.info) =
    Net.notify net ~src:x.Node.id ~dst:peer.Link.peer ~kind:Msg.join_update (fun p ->
        Node.update_links_for_peer p x.Node.id (fun _ -> x_info))
  in
  (match Node.parent x with Some p -> refresh_x p | None -> ());
  (match Node.adjacent x opposite with Some a -> refresh_x a | None -> ());
  (y, Metrics.since (Net.metrics net) mcp)

let join net ~via =
  Net.with_op net ~kind:Baton_obs.Span.join (fun () ->
      let acceptor, search_msgs = find_join_node net ~via in
      let new_id = Net.fresh_id net in
      let y, update_msgs = accept net ~acceptor new_id in
      {
        acceptor = acceptor.Node.id;
        new_peer = y.Node.id;
        search_msgs;
        update_msgs;
      })

let join_new_network net = Net.bootstrap net
