module Bus = Baton_sim.Bus
module Metrics = Baton_sim.Metrics
module Recorder = Baton_obs.Recorder
module Trace = Baton_obs.Trace
module Profile = Baton_obs.Profile
module Heat = Baton_obs.Heat
module Rng = Baton_util.Rng
module Histogram = Baton_util.Histogram

module Dyn_array = Baton_util.Dyn_array

type t = {
  bus : Bus.t;
  peers : (int, Node.t) Hashtbl.t;
  positions : (int * int, int) Hashtbl.t;
  (* Registered ids in a dense array (plus index map) so random peer
     selection is O(1) even at 10^4 peers. *)
  id_list : int Dyn_array.t;
  id_index : (int, int) Hashtbl.t;
  rng : Rng.t;
  domain : Range.t;
  mutable next_id : int;
  mutable defer : bool;
  deferred : pending Dyn_array.t;
  (* Recycled notification records. A deferred notify reuses one of
     these instead of allocating a fresh closure per call; the [p_f]
     callback is cleared when the record returns to the pool, so an
     idle pool holds no closures and the network still marshals. *)
  pool : pending Dyn_array.t;
  shifts : Histogram.t;
  (* Resilient-messaging state: bounded retransmissions on Timeout and
     the per-peer suspicion counters behind lazy failure detection. *)
  mutable retry_limit : int;
  suspicions : (int, int) Hashtbl.t;
  mutable suspicion_repair : bool;
  (* Optional telemetry recorder. Purely an observer: it subscribes to
     the bus for hops and is told about operation boundaries and
     retry/timeout events, but never sends a message itself, so
     enabling it cannot change [Metrics.total]. *)
  mutable recorder : Recorder.t option;
  (* Optional causal trace collector. Like the recorder, a pure
     observer: operations open trace episodes, [send_raw] stamps every
     transmitted message with a causal context, and the collector
     reconstructs the hop DAG afterwards. Enabling it cannot change
     [Metrics.total] — no message is sent and no protocol PRNG is
     consulted on its behalf. *)
  mutable tracer : Trace.t option;
  (* Optional simulator self-profiler. A third pure observer, but
     pointed the other way: it meters the *process* (wall-clock cost of
     hot regions, GC pressure), never the simulated world. Installing
     it wires a delivery probe into the bus and lets the protocol hot
     paths time themselves via [profile]; removing it restores the
     probe-free fast path. *)
  mutable profiler : Profile.t option;
  (* Optional demand-heat instrument. A fourth pure observer: every
     *delivered* message is attributed to the handling peer's heat
     class by kind ([send_raw] and [apply_notification]), and the
     protocol layer promotes terminal hops to [serve] and records key
     accesses. Nothing here sends a message or consults a protocol
     PRNG, so heat on vs. off leaves [Metrics.total] and the latency
     digests byte-identical. *)
  mutable heat : Heat.t option;
  (* Hop-suspension hook for the concurrent runtime: called after every
     transmitted protocol message so the runtime can suspend the
     running operation until the simulated delivery (or timeout)
     instant. [None] — the default — keeps every operation synchronous,
     exactly the pre-runtime behaviour. *)
  mutable hop_wait : hop_wait option;
  (* Critical section for suspicion-triggered repairs. Under the
     concurrent runtime, several fibers can observe dead peers at the
     same (virtual) time and each would start a structural repair; the
     driver installs its membership lock here so repairs serialize with
     each other and with joins/leaves instead of interleaving
     mutations. [None] — the default — runs repairs inline, the
     synchronous behaviour. *)
  mutable repair_serializer : ((unit -> unit) -> unit) option;
  (* Adaptive route cache: [None] disables caching network-wide and the
     per-node caches stay empty, making the disabled network
     behaviourally identical to one built before the cache existed. *)
  mutable cache_capacity : int option;
}

and hop_outcome = Delivered | Timed_out

(* One deferred notification, pooled. All fields are dummies while the
   record sits in the free pool. *)
and pending = {
  mutable p_src : int;
  mutable p_dst : int;
  mutable p_kind : string;
  mutable p_expect : Position.t option;
  mutable p_f : (Node.t -> unit) option;
}

and hop_wait = src:int -> dst:int -> kind:string -> outcome:hop_outcome -> unit

let default_retry_limit = 3
let default_cache_capacity = 128

let create ?(seed = 42) ~domain () =
  {
    bus =
      (let bus = Bus.create () in
       (* Cache traffic pays its way on the bus but accumulates apart
          from the paper's message total. *)
       List.iter (Metrics.mark_aux (Bus.metrics bus)) Msg.cache_kinds;
       bus);
    peers = Hashtbl.create 4096;
    positions = Hashtbl.create 4096;
    id_list = Dyn_array.create ();
    id_index = Hashtbl.create 4096;
    rng = Rng.create seed;
    domain;
    next_id = 0;
    defer = false;
    deferred = Dyn_array.create ();
    pool = Dyn_array.create ();
    shifts = Histogram.create ();
    retry_limit = default_retry_limit;
    suspicions = Hashtbl.create 64;
    suspicion_repair = false;
    recorder = None;
    tracer = None;
    profiler = None;
    heat = None;
    hop_wait = None;
    repair_serializer = None;
    cache_capacity = None;
  }

let bus t = t.bus
let metrics t = Bus.metrics t.bus
let rng t = t.rng
let domain t = t.domain

let key (pos : Position.t) = (pos.Position.level, pos.Position.number)

let size t = Hashtbl.length t.peers - Bus.failed_count t.bus

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let register t (node : Node.t) =
  if Hashtbl.mem t.peers node.Node.id then
    invalid_arg "Net.register: peer id already registered";
  if Hashtbl.mem t.positions (key node.Node.pos) then
    invalid_arg "Net.register: position occupied";
  Hashtbl.add t.peers node.Node.id node;
  Hashtbl.add t.positions (key node.Node.pos) node.Node.id;
  Hashtbl.replace t.id_index node.Node.id (Dyn_array.length t.id_list);
  Dyn_array.push t.id_list node.Node.id

let unregister t (node : Node.t) =
  Hashtbl.remove t.peers node.Node.id;
  (match Hashtbl.find_opt t.positions (key node.Node.pos) with
  | Some id when id = node.Node.id -> Hashtbl.remove t.positions (key node.Node.pos)
  | Some _ | None -> ());
  (match Hashtbl.find_opt t.id_index node.Node.id with
  | Some i ->
    (* Swap-remove from the dense id array. *)
    let last = Dyn_array.pop t.id_list in
    if last <> node.Node.id then begin
      Dyn_array.set t.id_list i last;
      Hashtbl.replace t.id_index last i
    end;
    Hashtbl.remove t.id_index node.Node.id
  | None -> ());
  Bus.revive t.bus node.Node.id

let reposition t (node : Node.t) pos =
  (match Hashtbl.find_opt t.positions (key node.Node.pos) with
  | Some id when id = node.Node.id -> Hashtbl.remove t.positions (key node.Node.pos)
  | Some _ | None -> ());
  if Hashtbl.mem t.positions (key pos) then
    invalid_arg "Net.reposition: position occupied";
  node.Node.pos <- pos;
  Node.bump_epoch node;
  Hashtbl.add t.positions (key pos) node.Node.id

let bootstrap t =
  if Hashtbl.length t.peers <> 0 then
    invalid_arg "Net.bootstrap: network is not empty";
  let node = Node.create ~id:(fresh_id t) ~pos:Position.root ~range:t.domain in
  register t node;
  node

let peer t id = Hashtbl.find t.peers id
let peer_opt t id = Hashtbl.find_opt t.peers id

let peer_at t pos =
  match Hashtbl.find_opt t.positions (key pos) with
  | Some id -> peer_opt t id
  | None -> None

let root t = peer_at t Position.root

let peers t = Hashtbl.fold (fun _ node acc -> node :: acc) t.peers []

let live_ids t =
  Hashtbl.fold
    (fun id _ acc -> if Bus.is_failed t.bus id then acc else id :: acc)
    t.peers []
  |> List.sort compare |> Array.of_list

let random_peer t =
  let total = Dyn_array.length t.id_list in
  if total = 0 then invalid_arg "Net.random_peer: empty network";
  if Bus.failed_count t.bus >= total then
    invalid_arg "Net.random_peer: no live peer";
  let rec draw () =
    let id = Dyn_array.get t.id_list (Rng.int t.rng total) in
    if Bus.is_failed t.bus id then draw () else peer t id
  in
  draw ()

(* --- Telemetry ---------------------------------------------------- *)

let set_recorder t r =
  (match t.recorder with Some old -> Recorder.detach old | None -> ());
  (match r with Some r -> Recorder.attach r t.bus | None -> ());
  t.recorder <- r

let recorder t = t.recorder

(* --- Causal tracing ------------------------------------------------ *)

let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

(* --- Self-profiling ------------------------------------------------ *)

let set_profiler t p =
  t.profiler <- p;
  Bus.set_probe t.bus
    (match p with
    | None -> None
    | Some prof ->
      Some
        {
          Bus.before = (fun () -> Profile.enter prof Profile.s_delivery);
          after = (fun () -> Profile.leave prof Profile.s_delivery);
        })

let profiler t = t.profiler

(* --- Demand heat ---------------------------------------------------- *)

let set_heat t h = t.heat <- h
let heat t = t.heat

(* Default heat class of a delivered message, by kind: cache traffic
   is [Aux], tree maintenance is [Maint], everything else — the demand
   kinds (search, insert, delete) — starts as [Route] and is promoted
   to [Serve] by the protocol layer when the operation terminates at
   the receiver. *)
let heat_class kind =
  if List.mem kind Msg.cache_kinds then Heat.Aux
  else if List.mem kind Msg.maint_kinds then Heat.Maint
  else Heat.Route

(* Attribute one delivered message to its handling peer — only when an
   instrument is installed, so the uninstrumented hot path pays one
   match. *)
let heat_hop t ~dst ~kind =
  match t.heat with
  | None -> ()
  | Some h -> Heat.hop h ~peer:dst (heat_class kind)

(* Promote the hop that terminated an operation at [peer] from its
   default class to [serve]. Used by {!Search} and {!Update} at the
   points where "this peer owns the answer" becomes known. *)
let heat_serve t ~peer ~kind =
  match t.heat with
  | None -> ()
  | Some h -> Heat.promote h ~peer ~was:(heat_class kind)

let heat_access t ~peer key =
  match t.heat with None -> () | Some h -> Heat.access h ~peer key

let heat_access_range t ~peer ~lo ~hi =
  match t.heat with None -> () | Some h -> Heat.access_range h ~peer ~lo ~hi

(* Time a protocol hot region when a profiler is installed; otherwise
   one match and straight into [f]. Regions that suspend under the
   concurrent runtime accumulate inclusive wall time (see
   [Profile]) — still a pure observation either way. *)
let profile t name f =
  match t.profiler with None -> f () | Some p -> Profile.wrap p name f

(* Ambient-causality snapshot for the concurrent runtime: opaque, and
   free when no tracer is installed. The runtime captures a mark at
   every fiber suspension point and reinstates it at resumption, so
   interleaved operations cannot clobber each other's causal state. *)
type trace_mark = Trace.mark option

let trace_mark t = Option.map Trace.save t.tracer

let restore_trace_mark t m =
  match (t.tracer, m) with
  | Some tr, Some m -> Trace.restore tr m
  | _ -> ()

(* Which overlay link carried a hop from [src] to [dst] — the
   classification the critical-path analysis breaks costs down by.
   Computed from the sender's links as they stand at transmission
   time. *)
let link_kind t ~src ~dst ~kind =
  if List.mem kind Msg.cache_kinds then Msg.link_cache
  else
    match peer_opt t src with
    | None -> Msg.link_other
    | Some n ->
      let is l =
        match l with
        | Some (i : Link.info) -> i.Link.peer = dst
        | None -> false
      in
      let in_table tbl =
        Option.is_some (Routing_table.find tbl (fun i -> i.Link.peer = dst))
      in
      if is (Node.parent n) then Msg.link_parent
      else if is (Node.child n `Left) || is (Node.child n `Right) then
        Msg.link_child
      else if is (Node.adjacent n `Left) || is (Node.adjacent n `Right) then
        Msg.link_adjacent
      else if in_table n.Node.left_table || in_table n.Node.right_table then
        Msg.link_sideways
      else Msg.link_other

let peer_level t id =
  match peer_opt t id with
  | Some n -> n.Node.pos.Position.level
  | None -> -1

let with_op t ~kind f =
  let recorded () =
    match t.recorder with None -> f () | Some r -> Recorder.with_op r ~kind f
  in
  match t.tracer with
  | None -> recorded ()
  | Some tr -> Trace.with_episode tr ~op:kind recorded

let obs_note ?peer t name =
  match t.recorder with None -> () | Some r -> Recorder.note ?peer r name

(* One simulator event, visible to both instruments: the aggregate
   [Metrics] event counter and (when present) the span recorder. *)
let event ?peer t name =
  Metrics.event (Bus.metrics t.bus) name;
  obs_note ?peer t name

let set_retry_limit t n =
  if n < 0 then invalid_arg "Net.set_retry_limit: negative";
  t.retry_limit <- n

let retry_limit t = t.retry_limit

let set_hop_wait t w = t.hop_wait <- w
let hop_wait t = t.hop_wait

let set_repair_serializer t s = t.repair_serializer <- s

(* Run a structural repair inside the installed critical section (the
   driver's membership lock), or inline when none is installed. *)
let serialize_repair t f =
  match t.repair_serializer with None -> f () | Some s -> s f

(* Tell the runtime (when one drives this network) that a message was
   transmitted, so it can charge delivery latency — or a timeout
   interval — to the running operation's critical path. A no-op in
   synchronous runs. *)
let wait_hop t ~src ~dst ~kind outcome =
  match t.hop_wait with
  | None -> ()
  | Some w -> w ~src ~dst ~kind ~outcome

(* Retransmit on Timeout, up to [retry_limit] extra attempts. Every
   attempt passes over the bus and is counted — the paper's message
   metric stays honest under retries. Unreachable (permanent crash)
   propagates immediately: retrying a dead address cannot help and the
   protocols have dedicated detour logic for it — though discovering
   the silence still costs the sender a timeout interval under the
   runtime's clock, so the hop hook fires before the exception
   escapes. *)
let send_raw t ~src ~dst ~kind =
  let ev = Bus.metrics t.bus in
  (* Classified once, before the first transmission: the links that
     explain the route choice are the ones in place when the sender
     picked the destination. Pure reads — tracing consults no PRNG. *)
  let link, dst_level =
    match t.tracer with
    | None -> (Msg.link_other, -1)
    | Some _ -> (link_kind t ~src ~dst ~kind, peer_level t dst)
  in
  let rec attempt k =
    (* Each attempt is its own span under the ambient parent: a retry
       is a sibling of the attempt that timed out, not its child — the
       failed attempt caused nothing downstream. *)
    let ctx, sent =
      match t.tracer with
      | None -> (None, 0.)
      | Some tr -> (Trace.next_ctx tr, Trace.time tr)
    in
    let record outcome =
      match (t.tracer, ctx) with
      | Some tr, Some ctx ->
        Trace.record tr ~ctx ~src ~dst ~msg:kind ~link ~dst_level ~sent
          ~outcome
      | _ -> ()
    in
    match Bus.send ?ctx t.bus ~src ~dst ~kind with
    | () ->
      wait_hop t ~src ~dst ~kind Delivered;
      heat_hop t ~dst ~kind;
      (* Recorded after the wait, so [done_at] is the delivery instant
         under the runtime's clock; the delivered message becomes the
         ambient causal parent of whatever the receiver does next. *)
      record Trace.Delivered;
      (match (t.tracer, ctx) with
      | Some tr, Some ctx -> Trace.advance tr ctx
      | _ -> ())
    | exception Bus.Timeout _ when k < t.retry_limit ->
      Metrics.event ev Msg.ev_retry;
      (match t.recorder with Some r -> Recorder.retry r ~peer:dst | None -> ());
      wait_hop t ~src ~dst ~kind Timed_out;
      record Trace.Timed_out;
      attempt (k + 1)
    | exception (Bus.Timeout _ as e) ->
      Metrics.event ev Msg.ev_give_up;
      obs_note ~peer:dst t Msg.ev_give_up;
      wait_hop t ~src ~dst ~kind Timed_out;
      record Trace.Timed_out;
      raise e
    | exception (Bus.Unreachable _ as e) ->
      wait_hop t ~src ~dst ~kind Timed_out;
      record Trace.Unreachable;
      raise e
  in
  attempt 0

let send t ~src ~dst ~kind =
  send_raw t ~src ~dst ~kind;
  peer t dst

let suspect t id =
  let n = 1 + (match Hashtbl.find_opt t.suspicions id with Some c -> c | None -> 0) in
  Hashtbl.replace t.suspicions id n;
  n

let clear_suspicion t id = Hashtbl.remove t.suspicions id

let set_suspicion_repair t flag = t.suspicion_repair <- flag
let suspicion_repair t = t.suspicion_repair

(* --- Route cache --------------------------------------------------- *)

let enable_route_cache ?(capacity = default_cache_capacity) t =
  if capacity <= 0 then invalid_arg "Net.enable_route_cache: capacity <= 0";
  t.cache_capacity <- Some capacity

let disable_route_cache t =
  t.cache_capacity <- None;
  (* Flush every peer's cache so a disabled network is indistinguishable
     from one where the cache never existed. *)
  Hashtbl.iter (fun _ (n : Node.t) -> Route_cache.clear n.Node.cache) t.peers

let route_cache_enabled t = Option.is_some t.cache_capacity
let route_cache_capacity t = t.cache_capacity

let apply_notification t ~src ~dst ~kind ~expect_pos f =
  let ev name = event ~peer:dst t name in
  (* Notifications are one-way cache refreshes: fire-and-forget, no
     retransmission. A lost one just widens the staleness window that
     the dynamics experiment measures; it is counted as an event so the
     loss is observable instead of silent.

     In a trace they chain under the ambient causal parent like any
     other message but never *become* the parent — nothing awaits
     them. Deferred notifications run at flush time, outside the
     episode that queued them, and stay untraced. *)
  let ctx, sent =
    match t.tracer with
    | None -> (None, 0.)
    | Some tr -> (Trace.next_ctx tr, Trace.time tr)
  in
  let record outcome =
    match (t.tracer, ctx) with
    | Some tr, Some ctx ->
      Trace.record tr ~ctx ~src ~dst ~msg:kind
        ~link:(link_kind t ~src ~dst ~kind) ~dst_level:(peer_level t dst)
        ~sent ~outcome
    | _ -> ()
  in
  match peer_opt t dst with
  | None ->
    (* The destination left the network: the message is still sent (and
       counted); it is simply never acted upon. *)
    (match Bus.send ?ctx t.bus ~src ~dst ~kind with
    | () -> record Trace.Delivered
    | exception Bus.Unreachable _ -> record Trace.Unreachable
    | exception Bus.Timeout _ -> record Trace.Timed_out);
    ev Msg.ev_notify_dropped
  | Some node -> (
    match Bus.send ?ctx t.bus ~src ~dst ~kind with
    | () -> (
      record Trace.Delivered;
      (* The peer handled the notification (even if only to ignore a
         stale one) — attribute it. Notifications to absent peers get
         no heat: nobody handled them. *)
      heat_hop t ~dst ~kind;
      (* A peer that changed position since the message was addressed
         ignores it: the update concerns a role it no longer holds. *)
      match expect_pos with
      | Some pos when not (Position.equal node.Node.pos pos) ->
        ev Msg.ev_notify_stale
      | Some _ | None -> f node)
    | exception Bus.Unreachable _ ->
      record Trace.Unreachable;
      ev Msg.ev_notify_dropped
    | exception Bus.Timeout _ ->
      record Trace.Timed_out;
      ev Msg.ev_notify_dropped)

let notify ?expect_pos t ~src ~dst ~kind f =
  if t.defer then begin
    let p =
      if Dyn_array.is_empty t.pool then
        { p_src = 0; p_dst = 0; p_kind = ""; p_expect = None; p_f = None }
      else Dyn_array.pop t.pool
    in
    p.p_src <- src;
    p.p_dst <- dst;
    p.p_kind <- kind;
    p.p_expect <- expect_pos;
    p.p_f <- Some f;
    Dyn_array.push t.deferred p
  end
  else apply_notification t ~src ~dst ~kind ~expect_pos f

let set_defer t flag = t.defer <- flag
let deferring t = t.defer

let flush_deferred t =
  (* Notifications may enqueue follow-ups while flushing; drain fully. *)
  t.defer <- false;
  while not (Dyn_array.is_empty t.deferred) do
    let batch = Dyn_array.to_array t.deferred in
    Dyn_array.clear t.deferred;
    Array.iter
      (fun p ->
        let f = Option.get p.p_f in
        let src = p.p_src
        and dst = p.p_dst
        and kind = p.p_kind
        and expect_pos = p.p_expect in
        (* Recycle before running: the callback may defer follow-ups,
           which can then reuse this very record. *)
        p.p_f <- None;
        p.p_kind <- "";
        p.p_expect <- None;
        Dyn_array.push t.pool p;
        apply_notification t ~src ~dst ~kind ~expect_pos f)
      batch
  done

let record_shift t n = Histogram.add t.shifts n
let shift_histogram t = t.shifts

(* Snapshot format: a magic string (to fail fast on foreign files)
   followed by the marshalled record. The record holds no closures once
   the deferred queue is empty and the bus trace hook is cleared. *)
let snapshot_magic = "BATON-NET-v7"

let save t path =
  if not (Baton_util.Dyn_array.is_empty t.deferred) then
    invalid_arg "Net.save: deferred notifications pending";
  (* Observers hold closures, which cannot be marshalled: drop them.
     On success they stay dropped — a loaded network starts unobserved
     (and synchronous), like a fresh one, and saving is the same
     handoff point. If the save fails, though, every observer is
     reattached before the error escapes, so a failed save never
     silently blinds telemetry on a network that keeps running. *)
  let recorder0 = t.recorder
  and tracer0 = t.tracer
  and profiler0 = t.profiler
  and heat0 = t.heat
  and hop_wait0 = t.hop_wait
  and serializer0 = t.repair_serializer in
  set_recorder t None;
  set_tracer t None;
  set_profiler t None;
  set_heat t None;
  set_hop_wait t None;
  set_repair_serializer t None;
  Bus.clear_subscribers t.bus;
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc snapshot_magic;
        Marshal.to_channel oc t [])
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    set_recorder t recorder0;
    set_tracer t tracer0;
    set_profiler t profiler0;
    set_heat t heat0;
    set_hop_wait t hop_wait0;
    set_repair_serializer t serializer0;
    Printexc.raise_with_backtrace e bt

exception Incompatible_snapshot of { found : string; expected : string }

let () =
  Printexc.register_printer (function
    | Incompatible_snapshot { found; expected } ->
      Some
        (Printf.sprintf
           "Net.Incompatible_snapshot: snapshot version %S predates this \
            build (expected %S); regenerate it with the current binary"
           found expected)
    | _ -> None)

let magic_prefix = "BATON-NET-"

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let magic =
        try really_input_string ic (String.length snapshot_magic)
        with End_of_file -> failwith "Net.load: not a BATON snapshot"
      in
      if magic <> snapshot_magic then
        if String.starts_with ~prefix:magic_prefix magic then
          raise
            (Incompatible_snapshot { found = magic; expected = snapshot_magic })
        else failwith "Net.load: not a BATON snapshot";
      (Marshal.from_channel ic : t))
