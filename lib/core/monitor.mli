(** Continuous overlay health monitor.

    Periodically samples structural invariants ({!Check}), per-node
    access-load skew and route-cache staleness into a bounded
    time-series ring, emitting threshold-based health events on every
    status transition — so churn experiments show {e when} the overlay
    degraded, not just final totals.

    Status semantics: a failing probe reports [Degraded] first — a tick
    can land mid-membership-operation, when the structure is
    legitimately torn — and escalates to [Violated] only after
    [persist] consecutive failing samples. A healthy probe resets to
    [Ok] immediately.

    Purely an observer: probes read the simulator's god view and the
    metrics counters; no message is sent and no protocol PRNG is
    consulted, so monitoring cannot perturb the paper's message
    metric. *)

type level = Ok | Degraded | Violated

val level_label : level -> string
(** ["ok"] / ["degraded"] / ["violated"]. *)

val level_rank : level -> int
(** [Ok] = 0, [Degraded] = 1, [Violated] = 2. *)

(** {1 Components} *)

val c_balance : string
(** {!Check.balanced} + {!Check.height_bound}. *)

val c_tiling : string
(** {!Check.tree_shape} + {!Check.ranges}. *)

val c_links : string
(** {!Check.links} in non-strict mode (stale cached ranges are normal
    operation; wrong identities are damage). *)

val c_load : string
(** Per-node message-load skew (max/mean) from [Metrics.per_node],
    against [max_skew]. *)

val c_cache : string
(** Route-cache staleness rate over the last interval, against
    [max_stale_rate]. *)

val c_hotspot : string
(** Heavy-hitter demand concentration from the installed
    {!Baton_obs.Heat} instrument: fails when the sketch's top-k share
    exceeds [max_topk_factor] times its uniform-demand baseline (with
    at least [min_hot_accesses] accesses recorded). Always [Ok] when no
    heat instrument is installed. *)

val c_overall : string
(** Worst of all components — the single stream to alert on. *)

val components : string list
(** All component names except {!c_overall}, in sample order. *)

type thresholds = {
  max_skew : float;
      (** max/mean per-node message load above which [load] degrades *)
  max_stale_rate : float;
      (** fraction of cache probes per interval allowed to be stale *)
  persist : int;
      (** consecutive failing samples before a component escalates from
          [Degraded] to [Violated] *)
  max_topk_factor : float;
      (** hotspot: multiple of the sketch's uniform-demand baseline the
          top-k share may reach before [hotspot] degrades *)
  min_hot_accesses : int;
      (** hotspot: sketch accesses below which the alert stays quiet
          (too little demand to call anything hot) *)
}

val default_thresholds : thresholds
(** [max_skew = 4.0], [max_stale_rate = 0.5], [persist = 3],
    [max_topk_factor = 4.0], [min_hot_accesses = 64]. *)

type event = {
  e_time : float;
  component : string;
  before : level;
  after : level;
  detail : string;  (** failing probe's message, [""] on recovery *)
}

type sample = {
  s_time : float;
  nodes : int;
  height : int;
  skew : float;  (** max/mean per-node load, 0 with no load yet *)
  stale_rate : float;  (** stale fraction of this interval's cache probes *)
  hot_share : float;
      (** heavy-hitter top-k demand share from the heat sketch, 0 when
          no heat instrument is installed or nothing was accessed *)
  levels : (string * level) list;  (** per component, in {!components} order *)
  overall : level;
}

type t

val create : ?capacity:int -> ?thresholds:thresholds -> Net.t -> t
(** Monitor for one network, retaining the last [capacity] (default
    4096) samples. @raise Invalid_argument on a non-positive capacity
    or out-of-range thresholds. *)

val thresholds : t -> thresholds

val tick : t -> time:float -> sample
(** Take one sample at the given (virtual) instant, updating component
    states and appending transition events. *)

val tick_count : t -> int

val samples : t -> sample list
(** Retained samples, oldest first. *)

val latest : t -> sample option
val events : t -> event list

val current : t -> string -> level
(** Current status of a component ({!c_overall} included).
    @raise Invalid_argument for unknown names. *)

val load_gauge : t -> Baton_obs.Gauge.t
(** The per-node load time series fed by [tick]. *)

val sample_json : sample -> Baton_obs.Json.t
val event_json : event -> Baton_obs.Json.t

val json : t -> Baton_obs.Json.t
(** Full health report: samples, events, load series, and a summary
    (tick/transition counts, final overall status). Deterministic —
    same-seed runs export byte-identical health sections. *)
