(** Cached views of remote nodes.

    A link is what one peer knows about another: its physical id, its
    logical position, and — per paper Section IV, "we record for each
    link the range of values managed by the node at the target" — its
    range, plus child-presence flags used by the join and
    find-replacement algorithms. A link is a snapshot: it can go stale,
    and protocols pay messages to refresh it. *)

type info = {
  peer : int;  (** physical peer id on the bus *)
  pos : Position.t;  (** logical id at snapshot time *)
  range : Range.t;  (** range at snapshot time *)
  has_left_child : bool;
  has_right_child : bool;
}

type side = [ `Left | `Right ]

type kind = Parent | Child of side | Adjacent of side
(** The five per-node link slots the paper prescribes (Section III):
    one parent, two children, two adjacent nodes. A [kind] addresses
    one slot uniformly, so traversals over "every link of a node" are
    folds over {!all_kinds} rather than copy-pasted field walks. *)

val kind_index : kind -> int
(** Dense index of a kind in [0, num_kinds): the layout of the
    per-node link arena in {!Node}. Parent is 0; children then
    adjacents, left before right. *)

val num_kinds : int
val all_kinds : kind list

val pp_kind : Format.formatter -> kind -> unit

val has_both_children : info -> bool
val has_spare_child_slot : info -> bool

val pp : Format.formatter -> info -> unit
