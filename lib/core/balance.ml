module Bus = Baton_sim.Bus
module Sorted_store = Baton_util.Sorted_store

type config = { capacity : int; light_load : int }

let default_config ~capacity =
  if capacity < 4 then invalid_arg "Balance.default_config: capacity too small";
  { capacity; light_load = capacity / 4 }

let nth_key store i = Sorted_store.nth store i

let balance_with_adjacent net (u : Node.t) side =
  match Node.adjacent u side with
  | None -> false
  | Some v_link -> (
    match Net.send net ~src:u.Node.id ~dst:v_link.Link.peer ~kind:Msg.balance with
    | exception Bus.Unreachable _ -> false
    | exception Bus.Timeout _ -> false
    | exception Not_found -> false
    | v ->
      let lu = Node.load u and lv = Node.load v in
      if lu <= lv then false
      else begin
        let keep = (lu + lv + 1) / 2 in
        match side with
        | `Right ->
          (* u keeps its [keep] smallest keys; [boundary, ...) moves to
             the right adjacent and the shared boundary slides left. *)
          if keep >= lu then false
          else
            let boundary = nth_key u.Node.store keep in
            if boundary <= u.Node.range.Range.lo then false
            else begin
              let moved = Sorted_store.split_at_or_above u.Node.store boundary in
              if Sorted_store.is_empty moved then false
              else begin
                ignore (Net.send net ~src:u.Node.id ~dst:v.Node.id ~kind:Msg.balance);
                Sorted_store.absorb v.Node.store moved;
                Node.set_range u { u.Node.range with Range.hi = boundary };
                Node.set_range v { v.Node.range with Range.lo = boundary };
                Wiring.announce net u ~kind:Msg.balance;
                Wiring.announce net v ~kind:Msg.balance;
                true
              end
            end
        | `Left ->
          (* u keeps its [keep] largest keys; [..., boundary) moves to
             the left adjacent. *)
          if keep >= lu then false
          else
            let boundary = nth_key u.Node.store (lu - keep) in
            if boundary >= u.Node.range.Range.hi || boundary <= u.Node.range.Range.lo
            then false
            else begin
              let moved = Sorted_store.split_below u.Node.store boundary in
              if Sorted_store.is_empty moved then false
              else begin
                ignore (Net.send net ~src:u.Node.id ~dst:v.Node.id ~kind:Msg.balance);
                Sorted_store.absorb v.Node.store moved;
                Node.set_range u { u.Node.range with Range.lo = boundary };
                Node.set_range v { v.Node.range with Range.hi = boundary };
                Wiring.announce net u ~kind:Msg.balance;
                Wiring.announce net v ~kind:Msg.balance;
                true
              end
            end
      end)

(* Ask a linked peer for its current load: one request, one reply. *)
let probe_load net (u : Node.t) (target : Link.info) =
  match Net.send net ~src:u.Node.id ~dst:target.Link.peer ~kind:Msg.balance with
  | exception Bus.Unreachable _ -> None
  | exception Bus.Timeout _ -> None
  | exception Not_found -> None
  | t ->
    ignore (Net.send net ~src:t.Node.id ~dst:u.Node.id ~kind:Msg.balance);
    Some t

(* Recruit the lightly loaded leaf [f]: it hands its content and range
   to an adjacent node, force-leaves, and force-rejoins as the
   overloaded node's child, taking half of its content (Figure 7). *)
let recruit net (u : Node.t) (f : Node.t) =
  let absorbed =
    let give side =
      match Node.adjacent f side with
      | None -> false
      | Some g_link -> (
        match Net.send net ~src:f.Node.id ~dst:g_link.Link.peer ~kind:Msg.balance with
        | exception Bus.Unreachable _ -> false
        | exception Bus.Timeout _ -> false
        | exception Not_found -> false
        | g ->
          Sorted_store.absorb g.Node.store f.Node.store;
          Node.set_range g (Range.merge g.Node.range f.Node.range);
          Wiring.announce net g ~kind:Msg.balance;
          true)
    in
    give `Right || give `Left
  in
  if not absorbed then false
  else begin
    Restructure.forced_leave net f;
    let fresh = Restructure.forced_join net ~parent:u f.Node.id in
    ignore fresh;
    true
  end

let maybe_balance net cfg (u : Node.t) =
  (* A range of width < 2 cannot be split further: the overload is a
     single hot key, which no partitioning scheme can spread (the
     paper's duplicate-key footnote applies; entries would have to
     overflow to adjacent nodes, which we do not model). A node whose
     last attempt failed backs off until its load has grown further,
     rather than re-probing its neighbours on every insertion. *)
  if
    Node.load u <= cfg.capacity
    || Range.width u.Node.range < 2
    || Node.load u < u.Node.balance_backoff
  then false
  else begin
    u.Node.balance_backoff <- Node.load u + max 1 (cfg.capacity / 10);
    (* First preference: even out with an adjacent node. *)
    let adjacent_candidates =
      List.filter_map
        (fun side ->
          match Node.adjacent u side with
          | None -> None
          | Some link -> (
            match probe_load net u link with
            | Some v when (Node.load u + Node.load v) / 2 <= cfg.capacity ->
              Some (side, Node.load v)
            | Some _ | None -> None))
        [ `Right; `Left ]
    in
    let by_load = List.sort (fun (_, a) (_, b) -> compare a b) adjacent_candidates in
    let reset_on_success acted =
      if acted then u.Node.balance_backoff <- 0;
      acted
    in
    match by_load with
    | (side, _) :: _ -> reset_on_success (balance_with_adjacent net u side)
    | [] ->
      if not (Node.is_leaf u) then false
      else begin
        (* Probe the routing tables for a lightly loaded leaf. *)
        let candidates =
          List.filter_map
            (fun (_, (link : Link.info)) ->
              if link.Link.has_left_child || link.Link.has_right_child then None
              else
                match probe_load net u link with
                | Some f
                  when Node.is_leaf f
                       && Node.load f <= cfg.light_load
                       && f.Node.id <> u.Node.id ->
                  Some f
                | Some _ | None -> None)
            (Node.neighbor_entries u)
        in
        let lightest =
          List.fold_left
            (fun best (f : Node.t) ->
              match best with
              | None -> Some f
              | Some b -> if Node.load f < Node.load b then Some f else best)
            None candidates
        in
        match lightest with
        | None -> false
        | Some f -> reset_on_success (recruit net u f)
      end
  end
