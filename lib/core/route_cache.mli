(** Adaptive route cache.

    A bounded LRU of [(range -> peer)] shortcuts a node learns from the
    traffic it routes: after a successful multi-hop walk the origin
    remembers the destination's id, range and positional epoch, and
    later queries for keys inside a remembered range skip straight to
    that peer with a single probe instead of the full [O(log N)] tree
    descent.

    The cache is purely advisory. A shortcut hop is validated at the
    {e receiver} against its current range (ART-style shortcut routing
    layered on BATON's exact links); the stored epoch lets the origin
    notice role changes announced by restructuring without a message.
    Entries are invalidated on suspicion, departure and restructuring
    announcements, and a stale or dead shortcut always falls back to
    tree routing — correctness never depends on cache contents.

    This module is pure data structure: it sends no messages and counts
    no metrics. Callers account probe traffic under [Msg.cache_probe]
    (marked auxiliary, so it never perturbs the paper's message total)
    and record hit/miss/stale/evict events. *)

type entry = {
  peer : int;  (** remembered destination peer id *)
  range : Range.t;  (** the range it managed when learned *)
  epoch : int;  (** its positional epoch when learned *)
}

type t

val create : unit -> t

val length : t -> int

val find : t -> int -> entry option
(** [find t key] is the most-recently-used entry whose remembered range
    contains [key], promoted to the front, or [None]. *)

val remember : t -> capacity:int -> entry -> int
(** Insert (or refresh) the entry for [entry.peer] at the front and
    truncate to [capacity]. Returns how many entries the capacity bound
    displaced, so the caller can count evictions. At most one entry per
    peer is kept. *)

val refresh_peer : t -> peer:int -> range:Range.t -> epoch:int -> unit
(** Update the remembered range/epoch of [peer] in place, if present —
    used when a restructuring announcement reaches the cache owner. *)

val evict_peer : t -> int -> unit
(** Drop the entry for a peer (no-op if absent) — used when the peer is
    suspected dead, departs, or a probe found the entry stale. *)

val clear : t -> unit

val entries : t -> entry list
(** MRU-first snapshot, for inspection and tests. *)
