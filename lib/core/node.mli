(** Per-peer state.

    Exactly the state the paper prescribes (Section III): a parent
    link, two child links, two adjacent links, a left and a right
    routing table, the managed key range and the locally stored data.
    All remote knowledge is held as {!Link.info} snapshots.

    The five link slots live in one {!Link.kind}-indexed arena
    ([links]) rather than five optional record fields, so the hot
    routing paths walk a flat array and "every link of this node"
    operations are folds over {!Link.all_kinds}. *)

type t = {
  id : int;  (** physical peer id on the bus *)
  mutable pos : Position.t;
  links : Link.info option array;
      (** the five link slots, indexed by {!Link.kind_index}; address
          through {!link}/{!set_link} or the named accessors below *)
  mutable left_table : Routing_table.t;
  mutable right_table : Routing_table.t;
  mutable range : Range.t;
  store : Baton_util.Sorted_store.t;
  mutable balance_backoff : int;
      (** load level below which the node will not retry a failed
          balancing attempt (see {!Balance.maybe_balance}) *)
  mutable epoch : int;
      (** positional epoch: bumped whenever the node's position or
          managed range changes, so role-validated deliveries (route
          cache probes, notifications) can detect a stale addressee *)
  cache : Route_cache.t;
      (** this peer's adaptive route cache; empty and inert unless the
          network enables caching (see {!Net.enable_route_cache}) *)
}

val create : id:int -> pos:Position.t -> range:Range.t -> t
(** Fresh node with empty links, empty tables sized for [pos], empty
    store. *)

val bump_epoch : t -> unit
(** Advance the positional epoch. Called on every position or range
    change; remote epoch snapshots older than the current value are
    stale. *)

val set_range : t -> Range.t -> unit
(** Assign the managed range, bumping the epoch when it changes. All
    protocol-level range mutations go through this so cached shortcuts
    can be validated against an epoch. *)

val info : t -> Link.info
(** Accurate snapshot of this node, as sent inside protocol messages. *)

val level : t -> int
val is_root : t -> bool
val is_leaf : t -> bool

val link : t -> Link.kind -> Link.info option
(** The link held in the given slot. *)

val set_link : t -> Link.kind -> Link.info option -> unit

val parent : t -> Link.info option
val set_parent : t -> Link.info option -> unit

val child : t -> [ `Left | `Right ] -> Link.info option
val set_child : t -> [ `Left | `Right ] -> Link.info option -> unit

val adjacent : t -> [ `Left | `Right ] -> Link.info option
val set_adjacent : t -> [ `Left | `Right ] -> Link.info option -> unit

val table : t -> [ `Left | `Right ] -> Routing_table.t

val tables_full : t -> bool
(** Both routing tables full — the node may accept a child without
    endangering balance (Theorem 1). *)

val neighbor_entries : t -> (int * Link.info) list
(** Filled entries of both tables, left table first, nearest first
    within each side. *)

val load : t -> int
(** Number of locally stored keys. *)

val reset_tables : t -> unit
(** Replace both tables with empty ones sized for the current
    position. Used when a node moves during restructuring. *)

val update_links_for_peer : t -> int -> (Link.info -> Link.info) -> unit
(** Apply a refresh function to every link slot (parent, children,
    adjacents) and both routing tables whose target is the given
    peer — one fold over the link arena. *)

val drop_links_for_peer : t -> int -> unit
(** Null out every link whose target is the given peer. *)

val pp : Format.formatter -> t -> unit
