(** Node departure (paper Section III-B).

    A leaf whose sideways neighbours have no children departs directly:
    its content and range merge into its parent (its in-order adjacent
    node), costing [2 L1 + 2 L2 + 2 < 4 log N] messages. Any other node
    finds a replacement with Algorithm 2 (FINDREPLACEMENT walks down,
    O(log N) steps); the replacement leaf first departs its own
    position, then assumes the leaver's position, range, content and
    links, costing up to [8 log N] update messages. *)

type stats = {
  replacement : int option;  (** peer id of the replacement leaf, if one was needed *)
  search_msgs : int;  (** FINDREPLACEMENT forwarding messages *)
  update_msgs : int;  (** link / routing-table update messages *)
}

val can_depart_directly : Node.t -> bool
(** Leaf with no child-bearing sideways neighbour (Theorem 1 keeps the
    tree balanced after its removal). *)

val find_replacement : Net.t -> Node.t -> Node.t * int
(** Algorithm 2 from the leaver. Returns the replacement leaf and the
    forwarding message count.
    @raise Invalid_argument if called on a node that can depart
    directly. *)

val resolve_replacement : Net.t -> Node.t -> Node.t * int
(** [find_replacement] repeated until the candidate is a structural
    leaf (re-fetching child links that were dropped while routing
    around failures). Departing a node that merely *looks* like a leaf
    through stale links would orphan its real subtree and break the
    range tiling. Returns the leaver itself when the walk comes home. *)

val direct_departure : Net.t -> Node.t -> kind:string -> unit
(** Remove a directly-departing leaf: merge content and range into the
    parent, splice adjacent links, retract the leaver from its
    neighbours and broadcast the parent's new state. *)

val assume_position : Net.t -> leaver:Node.t -> replacement:Node.t -> kind:string -> unit
(** The (already departed) replacement takes over the leaver's
    position, range, content and links, and announces itself to
    everyone who linked to the leaver. *)

val leave : Net.t -> Node.t -> stats
(** Full graceful departure. The last node of the network simply
    unregisters. *)
