module Sorted_store = Baton_util.Sorted_store

type insert_stats = { node : int; hops : int; expanded : bool }

let rec insert net ~from key =
  Net.with_op net ~kind:Baton_obs.Span.insert (fun () -> insert_run net ~from key)

and insert_run net ~from key =
  let { Search.node; hops; _ } = Search.exact ~kind:Msg.insert net ~from key in
  let expanded =
    if Range.contains node.Node.range key then false
    else begin
      (* Only the genuine boundary node may expand (Section IV-C): the
         leftmost node's lower bound sits at (or beyond) the original
         domain edge and only ever moves outward, so the edge test
         identifies it exactly — likewise the rightmost. A walk that
         lands anywhere else without reaching the owner was stranded by
         failures; expanding *that* node would overlap a live peer's
         range and silently corrupt the tiling, so the insert aborts
         instead (the client retries, as for any stuck routing). *)
      let r = node.Node.range in
      let dom = Net.domain net in
      let boundary =
        if key < r.Range.lo then r.Range.lo <= dom.Range.lo
        else r.Range.hi >= dom.Range.hi
      in
      if not boundary then raise (Search.Routing_stuck hops);
      (if key < r.Range.lo then Node.set_range node { r with Range.lo = key }
       else Node.set_range node { r with Range.hi = key + 1 });
      Wiring.announce net node ~kind:Msg.expand;
      true
    end
  in
  Sorted_store.insert node.Node.store key;
  { node = node.Node.id; hops; expanded }

type delete_stats = { node : int; hops : int; found : bool }

let delete net ~from key =
  Net.with_op net ~kind:Baton_obs.Span.delete (fun () ->
      let { Search.node; hops; _ } =
        Search.exact ~kind:Msg.delete net ~from key
      in
      let found = Sorted_store.remove node.Node.store key in
      { node = node.Node.id; hops; found })

type bulk_stats = { keys : int; nodes : int; msgs : int }

let bulk_insert net ~from keys =
  match List.sort compare keys with
  | [] -> { keys = 0; nodes = 0; msgs = 0 }
  | smallest :: _ as sorted ->
    let metrics = Net.metrics net in
    let cp = Baton_sim.Metrics.checkpoint metrics in
    let { Search.node = first; _ } =
      Search.exact ~kind:Msg.insert net ~from smallest
    in
    (* Keys below the key space land on the leftmost node, which
       expands once for the whole batch. *)
    (if smallest < first.Node.range.Range.lo then begin
       Node.set_range first { first.Node.range with Range.lo = smallest };
       Wiring.announce net first ~kind:Msg.expand
     end);
    let nodes = ref 0 in
    let last_counted = ref (-1) in
    let count_once (node : Node.t) =
      if !last_counted <> node.Node.id then begin
        incr nodes;
        last_counted := node.Node.id
      end
    in
    (* Distribute along the in-order chain; each handover is one
       message carrying the remaining batch. [remaining] is sorted, so
       instead of a full List.partition scan per node — O(n·K) over the
       whole chain — each node slices its own segment off the front in
       time proportional to that segment: keys below its range (only
       possible after a stranded handover), then the keys it owns.
       The result is exactly the stable partition by Range.contains. *)
    let rec take_seg lo hi acc = function
      | k :: tl when k >= lo && k < hi -> take_seg lo hi (k :: acc) tl
      | l -> (List.rev acc, l)
    in
    let rec take_below lo acc = function
      | k :: tl when k < lo -> take_below lo (k :: acc) tl
      | l -> (acc, l)
    in
    let rec distribute (node : Node.t) remaining =
      match remaining with
      | [] -> ()
      | _ -> (
        let r = node.Node.range in
        let below_rev, from_lo = take_below r.Range.lo [] remaining in
        let mine, after = take_seg r.Range.lo r.Range.hi [] from_lo in
        let rest = List.rev_append below_rev after in
        if mine <> [] then begin
          count_once node;
          List.iter (Sorted_store.insert node.Node.store) mine
        end;
        match rest with
        | [] -> ()
        | _ -> (
          match Node.adjacent node `Right with
          | Some next -> (
            match
              Net.send net ~src:node.Node.id ~dst:next.Link.peer ~kind:Msg.insert
            with
            | next_node -> distribute next_node rest
            | exception Baton_sim.Bus.Unreachable _ -> ()
            | exception Baton_sim.Bus.Timeout _ -> ()
            | exception Not_found -> ())
          | None ->
            (* Rightmost node: the remaining keys lie beyond the key
               space; expand once and store them here. *)
            let top = List.fold_left max (node.Node.range.Range.hi - 1) rest in
            Node.set_range node { node.Node.range with Range.hi = top + 1 };
            Wiring.announce net node ~kind:Msg.expand;
            count_once node;
            List.iter (Sorted_store.insert node.Node.store) rest))
    in
    distribute first sorted;
    {
      keys = List.length sorted;
      nodes = !nodes;
      msgs = Baton_sim.Metrics.since metrics cp;
    }
