let occupied net pos = Option.is_some (Net.peer_at net pos)
let occupant net pos = Net.peer_at net pos

(* Deepest occupied node reached by repeatedly descending on [side]. *)
let rec deepest net pos side =
  let child = Position.child pos side in
  if occupied net child then deepest net child side else pos

let in_order_successor net pos =
  let right = Position.right_child pos in
  if occupied net right then Some (deepest net right `Left)
  else
    (* First ancestor reached while coming up from a left child. *)
    let rec up p =
      if Position.is_root p then None
      else if Position.is_left_child p then Some (Position.parent p)
      else up (Position.parent p)
    in
    up pos

let in_order_predecessor net pos =
  let left = Position.left_child pos in
  if occupied net left then Some (deepest net left `Right)
  else
    let rec up p =
      if Position.is_root p then None
      else if Position.is_left_child p then up (Position.parent p)
      else Some (Position.parent p)
    in
    up pos

let adjacent_position net pos = function
  | `Left -> in_order_predecessor net pos
  | `Right -> in_order_successor net pos

let side_full net pos side =
  let size = Position.table_size pos side in
  let rec loop j =
    j >= size
    ||
    match Position.neighbor pos side j with
    | Some q -> occupied net q && loop (j + 1)
    | None -> loop (j + 1)
  in
  loop 0

let tables_full_at net pos = side_full net pos `Left && side_full net pos `Right

let has_occupied_child net pos =
  occupied net (Position.left_child pos) || occupied net (Position.right_child pos)

let safe_leaf_removal net pos =
  occupied net pos
  && (not (has_occupied_child net pos))
  &&
  let side_safe side =
    let size = Position.table_size pos side in
    let rec loop j =
      j >= size
      ||
      match Position.neighbor pos side j with
      | Some q -> ((not (occupied net q)) || not (has_occupied_child net q)) && loop (j + 1)
      | None -> loop (j + 1)
    in
    loop 0
  in
  side_safe `Left && side_safe `Right

let rec subtree_height net pos =
  if not (occupied net pos) then -1
  else
    1
    + max
        (subtree_height net (Position.left_child pos))
        (subtree_height net (Position.right_child pos))

(* Query a remote peer for its current state: one counted message.
   When the target is down, the attempt still costs its message and
   the state is learnt from the target's neighbours (as in the repair
   protocol), so the snapshot is returned either way. *)
let fetch_info net ~src ~kind (target : Node.t) =
  (try ignore (Net.send net ~src ~dst:target.Node.id ~kind)
   with Baton_sim.Bus.Unreachable _ | Baton_sim.Bus.Timeout _ -> ());
  Node.info target

let link_to ?(skip_failed = false) net ~src ~kind pos =
  match occupant net pos with
  | None -> None
  | Some target ->
    if skip_failed && Baton_sim.Bus.is_failed (Net.bus net) target.Node.id then None
    else if target.Node.id = src then Some (Node.info target)
    else Some (fetch_info net ~src ~kind target)

let rebuild_links ?(skip_failed = false) net (node : Node.t) ~kind =
  let src = node.Node.id in
  let pos = node.Node.pos in
  let link_to = link_to ~skip_failed net ~src ~kind in
  (* When routing around failures, a dead in-order neighbour is skipped
     and the adjacency link bridges the gap to the next live peer
     (Section III-D: "adjacency links can be used to route across the
     gap"). *)
  let rec adjacent_link step p =
    match step net p with
    | None -> None
    | Some q -> (
      match link_to q with
      | Some info -> Some info
      | None -> if skip_failed then adjacent_link step q else None)
  in
  let resolve : Link.kind -> Link.info option = function
    | Link.Parent ->
      if Position.is_root pos then None else link_to (Position.parent pos)
    | Link.Child `Left -> link_to (Position.left_child pos)
    | Link.Child `Right -> link_to (Position.right_child pos)
    | Link.Adjacent `Left -> adjacent_link in_order_predecessor pos
    | Link.Adjacent `Right -> adjacent_link in_order_successor pos
  in
  List.iter (fun k -> Node.set_link node k (resolve k)) Link.all_kinds;
  Node.reset_tables node;
  let fill side =
    let table = Node.table node side in
    for j = 0 to Routing_table.size table - 1 do
      match Position.neighbor pos side j with
      | Some q -> Routing_table.set table j (link_to q)
      | None -> ()
    done
  in
  fill `Left;
  fill `Right

(* Positions of everyone who links to [pos]: parent, children,
   in-order adjacents and routing-table neighbours. *)
let watcher_positions net pos =
  let acc = ref [] in
  let add p = if occupied net p then acc := p :: !acc in
  if not (Position.is_root pos) then add (Position.parent pos);
  add (Position.left_child pos);
  add (Position.right_child pos);
  (match in_order_predecessor net pos with Some p -> add p | None -> ());
  (match in_order_successor net pos with Some p -> add p | None -> ());
  let sides = [ `Left; `Right ] in
  List.iter
    (fun side ->
      let size = Position.table_size pos side in
      for j = 0 to size - 1 do
        match Position.neighbor pos side j with
        | Some q -> add q
        | None -> ()
      done)
    sides;
  (* Dedupe: a child can also be an adjacent node. *)
  List.sort_uniq Position.compare_level_order !acc

let announce net (node : Node.t) ~kind =
  let info = Node.info node in
  let epoch = node.Node.epoch in
  let refresh (watcher : Node.t) =
    (* The announcement rides along to the watcher's route cache: a
       remembered shortcut to this peer is refreshed in place (range
       and epoch), so restructuring and balancing keep caches warm
       instead of letting them go stale. Local update — no message. *)
    Route_cache.refresh_peer watcher.Node.cache ~peer:info.Link.peer
      ~range:info.Link.range ~epoch;
    (* The watcher replaces whatever link it holds for this position. *)
    let pos = info.Link.pos in
    if (not (Position.is_root pos)) && Position.equal watcher.Node.pos (Position.parent pos)
    then
      Node.set_child watcher (if Position.is_left_child pos then `Left else `Right) (Some info);
    if
      (not (Position.is_root watcher.Node.pos))
      && Position.equal (Position.parent watcher.Node.pos) pos
    then Node.set_parent watcher (Some info);
    List.iter
      (fun side ->
        match adjacent_position net watcher.Node.pos side with
        | Some p when Position.equal p pos ->
          Node.set_adjacent watcher side (Some info)
        | Some _ | None -> ())
      [ `Left; `Right ];
    List.iter
      (fun side ->
        let table = Node.table watcher side in
        match Routing_table.slot_for ~owner:watcher.Node.pos table pos with
        | Some j -> Routing_table.set table j (Some info)
        | None -> ())
      [ `Left; `Right ]
  in
  List.iter
    (fun wpos ->
      match occupant net wpos with
      | Some w when w.Node.id <> node.Node.id ->
        Net.notify net ~src:node.Node.id ~dst:w.Node.id ~kind (fun w -> refresh w)
      | Some _ | None -> ())
    (watcher_positions net node.Node.pos)

let retract_position net ~pos ~peer ~kind =
  List.iter
    (fun wpos ->
      match occupant net wpos with
      | Some w when w.Node.id <> peer ->
        Net.notify net ~src:peer ~dst:w.Node.id ~kind (fun w ->
            Route_cache.evict_peer w.Node.cache peer;
            Node.drop_links_for_peer w peer)
      | Some _ | None -> ())
    (watcher_positions net pos)

let retract net (node : Node.t) ~kind =
  retract_position net ~pos:node.Node.pos ~peer:node.Node.id ~kind
