(* Continuous overlay health monitor.

   Samples {!Check}-style structural invariants non-destructively on a
   periodic tick (driven by the workload driver), folding each reading
   into a bounded time-series ring plus a stream of threshold-based
   health events. The point is *when*: a churn experiment's final
   totals cannot show that the overlay spent 40% of the run with a
   torn range tiling — the time series can.

   A failed invariant is not an immediate alarm: a tick can land in the
   middle of a membership operation, between two fiber suspension
   points, when the position map is legitimately mid-restructure. A
   first failure therefore reports [Degraded]; only [persist]
   consecutive failing samples escalate to [Violated] — transient
   mid-op dips recover to [Ok] on the next quiet tick, persistent
   damage does not.

   Purely an observer: every probe reads the simulator's god view
   (position map, metrics counters); none sends a message or draws from
   a protocol PRNG, so monitoring on vs. off leaves [Metrics.total]
   byte-identical. *)

module Metrics = Baton_sim.Metrics
module Gauge = Baton_obs.Gauge
module Heat = Baton_obs.Heat
module Json = Baton_obs.Json

type level = Ok | Degraded | Violated

let level_label = function
  | Ok -> "ok"
  | Degraded -> "degraded"
  | Violated -> "violated"

let level_rank = function Ok -> 0 | Degraded -> 1 | Violated -> 2

(* Component names — stable identifiers in exports and events. *)
let c_balance = "balance"
let c_tiling = "tiling"
let c_links = "links"
let c_load = "load"
let c_cache = "cache"
let c_hotspot = "hotspot"
let c_overall = "overall"
let components = [ c_balance; c_tiling; c_links; c_load; c_cache; c_hotspot ]

type thresholds = {
  max_skew : float;
      (** max/mean per-node message load above which [load] degrades *)
  max_stale_rate : float;
      (** fraction of cache probes per interval allowed to be stale *)
  persist : int;
      (** consecutive failing samples before a component escalates from
          [Degraded] to [Violated] *)
  max_topk_factor : float;
      (** hotspot: multiple of the sketch's uniform-demand baseline the
          top-k share may reach before [hotspot] degrades *)
  min_hot_accesses : int;
      (** hotspot: sketch accesses below which the alert stays quiet
          (too little demand to call anything hot) *)
}

let default_thresholds =
  {
    max_skew = 4.0;
    max_stale_rate = 0.5;
    persist = 3;
    max_topk_factor = 4.0;
    min_hot_accesses = 64;
  }

type event = {
  e_time : float;
  component : string;
  before : level;
  after : level;
  detail : string;
}

type sample = {
  s_time : float;
  nodes : int;
  height : int;
  skew : float;  (** max/mean per-node load, 0 with no load yet *)
  stale_rate : float;  (** stale fraction of this interval's cache probes *)
  hot_share : float;
      (** heavy-hitter top-k demand share from the heat sketch, 0 when
          no heat instrument is installed or nothing was accessed *)
  levels : (string * level) list;  (** per component, in {!components} order *)
  overall : level;
}

type comp_state = { mutable fails : int; mutable current : level }

type t = {
  net : Net.t;
  thresholds : thresholds;
  capacity : int;
  ring : sample option array;
  mutable count : int;
  mutable events_rev : event list;
  states : (string, comp_state) Hashtbl.t;
  load_gauge : Gauge.t;
  (* Interval anchor for per-tick rates (cache staleness). *)
  mutable mark : Metrics.checkpoint;
}

let create ?(capacity = 4096) ?(thresholds = default_thresholds) net =
  if capacity < 1 then invalid_arg "Monitor.create: capacity < 1";
  if thresholds.persist < 1 then invalid_arg "Monitor.create: persist < 1";
  if thresholds.max_skew <= 0. then invalid_arg "Monitor.create: max_skew <= 0";
  if thresholds.max_stale_rate < 0. || thresholds.max_stale_rate > 1. then
    invalid_arg "Monitor.create: max_stale_rate outside [0, 1]";
  if thresholds.max_topk_factor <= 0. then
    invalid_arg "Monitor.create: max_topk_factor <= 0";
  if thresholds.min_hot_accesses < 0 then
    invalid_arg "Monitor.create: min_hot_accesses < 0";
  let states = Hashtbl.create 8 in
  List.iter
    (fun c -> Hashtbl.add states c { fails = 0; current = Ok })
    (c_overall :: components);
  {
    net;
    thresholds;
    capacity;
    ring = Array.make capacity None;
    count = 0;
    events_rev = [];
    states;
    load_gauge = Gauge.create ~capacity ();
    mark = Metrics.checkpoint (Baton_sim.Bus.metrics (Net.bus net));
  }

let thresholds t = t.thresholds

(* One probe: [None] = healthy, [Some detail] = failing right now.
   Catch-all because a tick landing mid-operation can observe state
   torn enough for a check to die on a missing position, not just a
   clean [Failure]. *)
let probe f =
  match f () with
  | () -> None
  | exception Failure m -> Some m
  | exception e -> Some (Printexc.to_string e)

let transition t ~time state ~component ~failing ~detail =
  let before = state.current in
  let after =
    if not failing then begin
      state.fails <- 0;
      Ok
    end
    else begin
      state.fails <- state.fails + 1;
      if state.fails >= t.thresholds.persist then Violated else Degraded
    end
  in
  state.current <- after;
  if after <> before then
    t.events_rev <-
      { e_time = time; component; before; after; detail } :: t.events_rev;
  after

let tick t ~time =
  let metrics = Net.metrics t.net in
  (* Structural probes over the god view. [links] is checked
     non-strictly: cached ranges going stale between refreshes is
     normal operation, only wrong identities/positions are damage. *)
  let structural =
    [
      ( c_balance,
        probe (fun () ->
            Check.balanced t.net;
            Check.height_bound t.net) );
      ( c_tiling,
        probe (fun () ->
            Check.tree_shape t.net;
            Check.ranges t.net) );
      (c_links, probe (fun () -> Check.links ~strict:false t.net));
    ]
  in
  (* Per-node access-load skew (Figure 8(f) as a time series). Only
     currently-registered peers count: load on departed nodes is
     history, not present imbalance. *)
  let loads =
    List.filter_map
      (fun (node, count) ->
        match Net.peer_opt t.net node with
        | Some _ -> Some count
        | None -> None)
      (Metrics.per_node metrics)
  in
  let skew =
    match loads with
    | [] -> 0.
    | loads ->
      let arr = Array.of_list loads in
      Gauge.sample t.load_gauge ~time arr;
      let total = Array.fold_left ( + ) 0 arr in
      let mean = float_of_int total /. float_of_int (Array.length arr) in
      if mean <= 0. then 0.
      else float_of_int (Array.fold_left max 0 arr) /. mean
  in
  let load_failing = skew > t.thresholds.max_skew in
  (* Cache staleness over this interval: of the shortcut probes that
     resolved, how many were stale. No probes — healthy. *)
  let hits = Metrics.event_since metrics t.mark Msg.ev_cache_hit in
  let stale = Metrics.event_since metrics t.mark Msg.ev_cache_stale in
  let stale_rate =
    if hits + stale = 0 then 0.
    else float_of_int stale /. float_of_int (hits + stale)
  in
  let cache_failing = stale_rate > t.thresholds.max_stale_rate in
  (* Hotspot: the heat sketch's top-k demand share against a multiple
     of its uniform baseline (what the k hottest keys would hold if
     demand were spread evenly over the touched key span). Quiet with
     no heat instrument, and below [min_hot_accesses] — too little
     demand to call anything hot. *)
  let hot_share, hot_failing, hot_detail =
    match Net.heat t.net with
    | None -> (0., false, "")
    | Some h ->
      let share = Heat.topk_share h in
      let uniform = Heat.uniform_share h in
      let failing =
        Heat.accesses h >= t.thresholds.min_hot_accesses
        && share > t.thresholds.max_topk_factor *. uniform
      in
      ( share,
        failing,
        if failing then
          Printf.sprintf "top-k share %.2f (uniform baseline %.4f)" share
            uniform
        else "" )
  in
  t.mark <- Metrics.checkpoint metrics;
  let level component ~failing ~detail =
    transition t ~time
      (Hashtbl.find t.states component)
      ~component ~failing ~detail
  in
  let levels =
    List.map
      (fun (component, fail) ->
        ( component,
          level component
            ~failing:(Option.is_some fail)
            ~detail:(Option.value ~default:"" fail) ))
      structural
    @ [
        ( c_load,
          level c_load ~failing:load_failing
            ~detail:(if load_failing then Printf.sprintf "skew %.2f" skew else "")
        );
        ( c_cache,
          level c_cache ~failing:cache_failing
            ~detail:
              (if cache_failing then Printf.sprintf "stale rate %.2f" stale_rate
               else "") );
        (c_hotspot, level c_hotspot ~failing:hot_failing ~detail:hot_detail);
      ]
  in
  let worst =
    List.fold_left
      (fun acc (_, l) -> if level_rank l > level_rank acc then l else acc)
      Ok levels
  in
  (* The overall component carries no persistence counter of its own:
     it mirrors the worst member, and its transitions give a single
     stream to alert on. *)
  let overall_state = Hashtbl.find t.states c_overall in
  let before = overall_state.current in
  overall_state.current <- worst;
  if worst <> before then
    t.events_rev <-
      {
        e_time = time;
        component = c_overall;
        before;
        after = worst;
        detail = "";
      }
      :: t.events_rev;
  let sample =
    {
      s_time = time;
      nodes = Net.size t.net;
      height = Check.height t.net;
      skew;
      stale_rate;
      hot_share;
      levels;
      overall = worst;
    }
  in
  t.ring.(t.count mod t.capacity) <- Some sample;
  t.count <- t.count + 1;
  sample

(* --- Read side ------------------------------------------------------ *)

let tick_count t = t.count

let samples t =
  let n = min t.count t.capacity in
  let first = t.count - n in
  List.init n (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some s -> s
      | None -> assert false)

let latest t =
  match samples t with [] -> None | l -> Some (List.nth l (List.length l - 1))

let events t = List.rev t.events_rev

let current t component =
  match Hashtbl.find_opt t.states component with
  | Some s -> s.current
  | None -> invalid_arg "Monitor.current: unknown component"

let load_gauge t = t.load_gauge

(* --- Export --------------------------------------------------------- *)

let sample_json s =
  Json.Obj
    ([
       ("t", Json.Float s.s_time);
       ("nodes", Json.Int s.nodes);
       ("height", Json.Int s.height);
       ("skew", Json.Float s.skew);
       ("stale_rate", Json.Float s.stale_rate);
       ("hot_share", Json.Float s.hot_share);
       ("overall", Json.String (level_label s.overall));
     ]
    @ List.map (fun (c, l) -> (c, Json.String (level_label l))) s.levels)

let event_json e =
  Json.Obj
    [
      ("t", Json.Float e.e_time);
      ("component", Json.String e.component);
      ("from", Json.String (level_label e.before));
      ("to", Json.String (level_label e.after));
      ("detail", Json.String e.detail);
    ]

let json t =
  let evs = events t in
  let degraded, violated =
    List.fold_left
      (fun (d, v) e ->
        match e.after with
        | Degraded -> (d + 1, v)
        | Violated -> (d, v + 1)
        | Ok -> (d, v))
      (0, 0) evs
  in
  Json.Obj
    [
      ("samples", Json.List (List.map sample_json (samples t)));
      ("events", Json.List (List.map event_json evs));
      ( "load",
        Json.List
          (List.map Baton_obs.Export.gauge_sample_json
             (Gauge.samples t.load_gauge)) );
      ( "summary",
        Json.Obj
          [
            ("ticks", Json.Int t.count);
            ("transitions", Json.Int (List.length evs));
            ("to_degraded", Json.Int degraded);
            ("to_violated", Json.Int violated);
            ("final", Json.String (level_label (current t c_overall)));
          ] );
    ]
