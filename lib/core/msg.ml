let join_search = "join.search"
let join_update = "join.update"
let leave_search = "leave.search"
let leave_update = "leave.update"
let search_exact = "search.exact"
let search_range = "search.range"
let insert = "insert"
let delete = "delete"
let expand = "expand"
let balance = "balance"
let restructure = "restructure"
let repair = "repair"

(* Route-cache traffic: counted on the bus like any other message, but
   registered as auxiliary with [Metrics.mark_aux] so it accumulates in
   [Metrics.aux_total] and never perturbs the paper's metric. *)
let cache_probe = "cache.probe"
let cache_invalid = "cache.invalid"
let cache_kinds = [ cache_probe; cache_invalid ]

(* Tree-maintenance kinds: messages that keep the overlay's structure
   healthy rather than carry client demand. The heat layer attributes
   a delivered message of one of these kinds to the handling peer's
   [maint] class; cache kinds go to [aux]; everything else (search,
   insert, delete) is demand and defaults to [route] until the
   protocol layer promotes the terminal hop to [serve]. *)
let maint_kinds =
  [
    join_search;
    join_update;
    leave_search;
    leave_update;
    expand;
    balance;
    restructure;
    repair;
  ]

(* Link-kind labels for causal trace hops: which overlay link the
   sender used to pick the destination. [link_sideways] is a
   routing-table (left/right table) jump — the BATON long link;
   [link_cache] a route-cache shortcut; [link_other] anything the
   classifier cannot attribute (e.g. a contact found by global fallback
   during repair). *)
let link_parent = "parent"
let link_child = "child"
let link_adjacent = "adjacent"
let link_sideways = "sideways"
let link_cache = "cache"
let link_other = "other"

(* Simulator event names (Metrics.event) — observations that are not
   themselves messages. *)
let ev_retry = "send.retry"
let ev_give_up = "send.give_up"
let ev_notify_dropped = "notify.dropped"
let ev_notify_stale = "notify.stale"
let ev_suspect = "repair.suspect"
let ev_repair_triggered = "repair.triggered"
let ev_cache_hit = "cache.hit"
let ev_cache_miss = "cache.miss"
let ev_cache_stale = "cache.stale"
let ev_cache_evict = "cache.evict"

let all =
  [
    join_search;
    join_update;
    leave_search;
    leave_update;
    search_exact;
    search_range;
    insert;
    delete;
    expand;
    balance;
    restructure;
    repair;
    cache_probe;
    cache_invalid;
  ]
