module Bus = Baton_sim.Bus
module Metrics = Baton_sim.Metrics
module Span = Baton_obs.Span
module Sorted_store = Baton_util.Sorted_store

type result = {
  node : Node.t;
  found : bool;
  keys : int list;
  hops : int;
  msgs : int;
  retries : int;
  nodes_visited : int;
  complete : bool;
  holes : (int * int) list;
  cached : bool;
}

exception Routing_stuck of int

(* Generous budget: height is <= 1.44 log2 N and each hop halves the
   remaining distance; the budget is only consumed faster when routing
   around stale links. *)
let hop_budget net = 64 + (4 * (1 + Net.size net))

(* Ordered candidate next hops towards [v] from [node], per the
   paper's algorithm: the farthest admissible routing-table neighbour
   first, then the nearer admissible sideways entries, then the child
   and adjacent node on the target's side. An empty list means [node]
   is the boundary node that would expand for out-of-range values
   (Section IV-C). *)
let candidates (node : Node.t) v =
  let side = if Range.is_left_of node.Node.range v then `Right else `Left in
  let admissible (i : Link.info) =
    match side with
    | `Right -> i.Link.range.Range.lo <= v
    | `Left -> i.Link.range.Range.hi > v
  in
  let sideways =
    Routing_table.entries (Node.table node side)
    |> List.rev_map snd
    |> List.filter admissible
  in
  let structural =
    List.filter_map
      (fun l -> l)
      [ Node.child node side; Node.adjacent node side ]
  in
  sideways @ structural

let exact_walk net ~kind ~from v =
  let budget = hop_budget net in
  (* [tried] are the peers that timed out from the current node on this
     visit; it resets whenever a hop succeeds. A dead (unreachable)
     peer is handled the stronger way: drop the link and reconstitute
     the missing links through the surviving neighbourhood, so the
     detour costs messages exactly as the paper predicts.

     [arrived] tracks whether the current node was entered via a
     delivered message (false only for the origin, or after every
     forward path from a node went silent): the heat layer promotes the
     terminal hop to [serve] only when a message was actually handled
     there. *)
  let rec loop (node : Node.t) hops ~tried ~arrived =
    if Range.contains node.Node.range v then (node, hops, arrived)
    else if hops > budget then raise (Routing_stuck hops)
    else
      match candidates node v with
      | [] -> (node, hops, arrived)
      | primary -> (
        let fresh (i : Link.info) = not (List.mem i.Link.peer tried) in
        (* When every forward link has timed out, escape upwards via
           the parent — one more of Section III-D's alternative paths —
           before declaring the neighbourhood silent. *)
        let escape =
          match Node.parent node with
          | Some p when tried <> [] -> [ p ]
          | Some _ | None -> []
        in
        match List.filter fresh (primary @ escape) with
        | [] ->
          (* Every alternative timed out too. Treat the silent peers
             like dead ones: drop them, rebuild through survivors, and
             route on. *)
          List.iter (Node.drop_links_for_peer node) tried;
          Wiring.rebuild_links ~skip_failed:true net node ~kind;
          loop node (hops + 1) ~tried:[] ~arrived
        | target :: _ -> (
        match Net.send net ~src:node.Node.id ~dst:target.Link.peer ~kind with
        | next -> loop next (hops + 1) ~tried:[] ~arrived:true
        | exception Bus.Unreachable dead ->
          (* Fault tolerance (Section III-D): drop the dead link,
             reconstitute the missing links through the surviving
             neighbourhood, and route on; the detour costs messages. *)
          Net.obs_note net ~peer:dead Span.n_unreachable;
          Failure.observe_unreachable net ~observer:node dead;
          Node.drop_links_for_peer node dead;
          Wiring.rebuild_links ~skip_failed:true net node ~kind;
          loop node (hops + 1) ~tried:[] ~arrived
        | exception Bus.Timeout silent ->
          (* The peer may be alive behind a lossy link: keep the link,
             file a suspicion, and try the next-best candidate. *)
          Net.obs_note net ~peer:silent Span.n_timeout;
          Failure.observe_timeout net ~observer:node silent;
          loop node (hops + 1) ~tried:(silent :: tried) ~arrived
        | exception Not_found ->
          (* The target peer left the network and the link is stale. *)
          Node.drop_links_for_peer node target.Link.peer;
          Wiring.rebuild_links ~skip_failed:true net node ~kind;
          loop node (hops + 1) ~tried:[] ~arrived))
  in
  loop from 0 ~tried:[] ~arrived:false

(* --- Adaptive route cache ------------------------------------------ *)

(* Consult the querying peer's route cache for a shortcut covering [v].
   A remembered entry is only a hint: the probe is a real (auxiliary)
   message, validated at the receiver against its *current* range — the
   positional epoch stored in the entry tracks how fresh the hint was,
   and announcements refresh it, but delivery-time validation is what
   makes a shortcut safe. Any failure of the probe evicts the entry and
   falls back to tree routing; the probe's cost stays paid. *)
let cache_consult net ~(from : Node.t) v =
  match Net.route_cache_capacity net with
  | None -> None
  | Some _ when Range.contains from.Node.range v -> None
  | Some _ ->
    Net.profile net Baton_obs.Profile.s_cache @@ fun () ->
    (
    match Route_cache.find from.Node.cache v with
    | None ->
      Net.event net Msg.ev_cache_miss;
      None
    | Some entry -> (
      let stale () =
        Route_cache.evict_peer from.Node.cache entry.Route_cache.peer;
        Net.event net ~peer:entry.Route_cache.peer Msg.ev_cache_stale;
        None
      in
      match
        Net.send net ~src:from.Node.id ~dst:entry.Route_cache.peer
          ~kind:Msg.cache_probe
      with
      | node ->
        if Range.contains node.Node.range v then begin
          Net.event net ~peer:node.Node.id Msg.ev_cache_hit;
          (* Validated delivery doubles as a refresh. *)
          Route_cache.refresh_peer from.Node.cache ~peer:node.Node.id
            ~range:node.Node.range ~epoch:node.Node.epoch;
          Some node
        end
        else begin
          (* The receiver's range moved: it answers with an explicit
             invalidation so the origin drops the shortcut. *)
          (try
             Net.send_raw net ~src:node.Node.id ~dst:from.Node.id
               ~kind:Msg.cache_invalid
           with Bus.Unreachable _ | Bus.Timeout _ -> ());
          stale ()
        end
      | exception Bus.Unreachable dead ->
        Net.obs_note net ~peer:dead Span.n_unreachable;
        Failure.observe_unreachable net ~observer:from dead;
        stale ()
      | exception Bus.Timeout silent ->
        Net.obs_note net ~peer:silent Span.n_timeout;
        Failure.observe_timeout net ~observer:from silent;
        stale ()
      | exception Not_found -> stale ()))

(* After a successful multi-hop walk, remember the destination. A
   single-hop walk is not worth caching (the shortcut could not beat
   it), and the entry is only useful if the destination actually covers
   the key. Local bookkeeping — no message. *)
let cache_learn net ~(from : Node.t) (dest : Node.t) v ~hops =
  match Net.route_cache_capacity net with
  | None -> ()
  | Some capacity ->
    if hops >= 2 && dest.Node.id <> from.Node.id
       && Range.contains dest.Node.range v
    then begin
      let evicted =
        Route_cache.remember from.Node.cache ~capacity
          {
            Route_cache.peer = dest.Node.id;
            range = dest.Node.range;
            epoch = dest.Node.epoch;
          }
      in
      for _ = 1 to evicted do
        Net.event net Msg.ev_cache_evict
      done
    end

(* Exact routing with the cache consulted first: a validated shortcut
   answers in one (auxiliary) hop; otherwise the tree walk runs and its
   destination is remembered. *)
let exact_routed net ~kind ~from v =
  Net.profile net Baton_obs.Profile.s_exact @@ fun () ->
  match cache_consult net ~from v with
  | Some node ->
    (* The validated probe — booked [aux] at [node] — terminated the
       routing step there: promote it to a serve. *)
    Net.heat_serve net ~peer:node.Node.id ~kind:Msg.cache_probe;
    (node, 1, true)
  | None ->
    let node, hops, arrived = exact_walk net ~kind ~from v in
    cache_learn net ~from node v ~hops;
    (* The walk's final delivered hop carried the operation to its
       terminal node (even a negative answer is served there). Walks
       that never delivered into the terminal node — zero hops, or a
       neighbourhood gone silent — promote nothing. *)
    if arrived then Net.heat_serve net ~peer:node.Node.id ~kind;
    (node, hops, false)

(* Wrap an operation so the result reports its true bus cost: protocol
   messages (the paper's metric) plus auxiliary cache traffic, and the
   retransmissions hidden inside them. *)
let measured net f =
  let m = Net.metrics net in
  let cp = Metrics.checkpoint m in
  let r = f () in
  {
    r with
    msgs = Metrics.since m cp + Metrics.aux_since m cp;
    retries = Metrics.event_since m cp Msg.ev_retry;
  }

(* A standalone exact-match query is its own span; walks on behalf of a
   larger operation (range locate, insert, delete) are recorded under
   that operation's span instead. *)
let exact ?(kind = Msg.search_exact) net ~from v =
  let run () =
    measured net (fun () ->
        let node, hops, cached = exact_routed net ~kind ~from v in
        (* The single answer is authoritative only when the answering
           node actually owns [v]. Landing elsewhere — the boundary
           node for out-of-range values, or a stranded node when
           failures severed the path to the owner — is reported as an
           incomplete answer with the searched point as its hole, so
           callers (and the consistency oracle) can tell "definitely
           absent" from "could not be determined". *)
        let owns = Range.contains node.Node.range v in
        (* Demand observability: the searched key heats the sketch and
           histogram either way; the serving peer's decayed counter
           bumps only when it actually owns the answer. *)
        Net.heat_access net ~peer:(if owns then node.Node.id else -1) v;
        {
          node;
          found = owns;
          keys = [];
          hops;
          msgs = 0;
          retries = 0;
          nodes_visited = 1;
          complete = owns;
          holes = (if owns then [] else [ (v, v + 1) ]);
          cached;
        })
  in
  if String.equal kind Msg.search_exact then
    Net.with_op net ~kind:Span.exact run
  else run ()

let lookup net ~from v =
  let r = exact net ~from v in
  let found = Sorted_store.mem r.node.Node.store v in
  { r with found; keys = (if found then [ v ] else []) }

(* What one directional adjacent-link sweep produces; opaque to
   callers, who only thread it through a [par] runner. *)
type sweep_outcome = int list list * int * int * (int * int) list

type par = (unit -> sweep_outcome) -> (unit -> sweep_outcome) -> sweep_outcome * sweep_outcome

(* Collect matching keys from one direction of adjacent links, starting
   at (and excluding) [node]. Returns (keys in visit order, peers
   visited, messages paid, unreachable sub-intervals). A dead or silent
   adjacent peer no longer aborts the scan: the current node drops the
   link, bridges the gap through its surviving neighbourhood, and
   carries on — recording the skipped peer's cached range as a *hole*
   when it intersected the query, so callers learn not just that the
   answer is partial but exactly which sub-interval is missing. *)
let sweep net (node : Node.t) side ~lo ~hi =
  let keys = ref [] and visited = ref 0 and msgs = ref 0 in
  (* Unreachable sub-intervals, half-open and clipped to the query;
     overlap-merged by the caller. *)
  let holes = ref [] in
  let add_hole a b =
    let a = max a lo and b = min b (hi + 1) in
    if a < b then holes := (a, b) :: !holes
  in
  let continue (n : Node.t) =
    match side with
    | `Right -> Range.is_left_of n.Node.range hi
    | `Left -> lo < n.Node.range.Range.lo
  in
  (* Everything this direction still owes beyond [n]'s own range. *)
  let rest_of_query (n : Node.t) =
    match side with
    | `Right -> add_hole n.Node.range.Range.hi (hi + 1)
    | `Left -> add_hole lo n.Node.range.Range.lo
  in
  let rec go (n : Node.t) bridges =
    if continue n then
      match Node.adjacent n side with
      | None ->
        (* The chain ends while the query interval is still open: a
           severed adjacency that no rebuild restored. The silent
           truncation used to claim completeness; the remainder is a
           hole. *)
        rest_of_query n
      | Some next -> (
        let lost_data () =
          if Range.intersects next.Link.range ~lo ~hi then
            add_hole next.Link.range.Range.lo next.Link.range.Range.hi
        in
        let bridge ~data_lost =
          if data_lost then lost_data ();
          Node.drop_links_for_peer n next.Link.peer;
          if bridges < 2 then begin
            Wiring.rebuild_links ~skip_failed:true net n
              ~kind:Msg.search_range;
            go n (bridges + 1)
          end
          else
            (* Give up bridging from here: whatever lies beyond is
               unreachable in this direction. *)
            rest_of_query n
        in
        match
          Net.send net ~src:n.Node.id ~dst:next.Link.peer
            ~kind:Msg.search_range
        with
        | next_node ->
          incr msgs;
          incr visited;
          (* Each sweep hop serves its slice of the range: promote the
             delivered hop from [route]. *)
          Net.heat_serve net ~peer:next_node.Node.id ~kind:Msg.search_range;
          (* Live ranges tile the domain; a hole between consecutive
             ranges is a crashed peer whose links an earlier detour
             already spliced around. Its keys died with it, so a gap
             intersecting the query makes the answer partial even
             though no send failed here. *)
          let gap_lo, gap_hi =
            match side with
            | `Right -> (n.Node.range.Range.hi, next_node.Node.range.Range.lo)
            | `Left -> (next_node.Node.range.Range.hi, n.Node.range.Range.lo)
          in
          if gap_lo < gap_hi then add_hole gap_lo gap_hi;
          keys := Sorted_store.keys_in next_node.Node.store ~lo ~hi :: !keys;
          go next_node 0
        | exception Bus.Unreachable dead ->
          (* The peer is gone and its data with it. *)
          Net.obs_note net ~peer:dead Span.n_unreachable;
          Failure.observe_unreachable net ~observer:n dead;
          bridge ~data_lost:true
        | exception Bus.Timeout silent ->
          (* Possibly alive behind a lossy link; its data may exist but
             cannot be fetched now, so the answer is partial. *)
          Net.obs_note net ~peer:silent Span.n_timeout;
          Failure.observe_timeout net ~observer:n silent;
          bridge ~data_lost:true
        | exception Not_found ->
          (* Departed gracefully: its data moved to a survivor still on
             the chain, nothing is lost. *)
          bridge ~data_lost:false)
  in
  go node 0;
  (!keys, !visited, !msgs, !holes)

let range_walk ?par net ~from ~lo ~hi =
  (* Find any node intersecting the interval, then per the paper
     "proceed left and/or right to cover the remainder of the searched
     range" along adjacent links. We aim the locate step at the
     interval midpoint so the two directional sweeps are balanced:
     they are independent of each other, and under a [par] runner (the
     concurrent runtime's fork-join) they cover their subranges in
     parallel — the paper's [O(log N + X)] is a critical-path bound —
     while sending exactly the messages the sequential order sends. *)
  let mid = lo + ((hi - lo) / 2) in
  let locate aim = exact_routed net ~kind:Msg.search_range ~from aim in
  let node, hops, cached =
    (* A dead owner of the aim point makes the locate walk ping-pong
       between its surviving neighbours until the budget runs out; the
       messages are spent (and counted) — fall back to aiming at the
       interval's ends, whose owners the sweeps can bridge from. *)
    match locate mid with
    | outcome -> outcome
    | exception Routing_stuck h1 -> (
      match locate lo with
      | node, hops, cached -> (node, hops + h1, cached)
      | exception Routing_stuck h2 ->
        let node, hops, cached = locate hi in
        (node, hops + h1 + h2, cached))
  in
  let here = Sorted_store.keys_in node.Node.store ~lo ~hi in
  (* One access per range operation, recorded at the first serving
     node; the histogram heats every overlapped bucket. *)
  Net.heat_access_range net ~peer:node.Node.id ~lo ~hi;
  let sweep_left () = sweep net node `Left ~lo ~hi in
  let sweep_right () = sweep net node `Right ~lo ~hi in
  let ( (left_keys, left_visited, left_msgs, left_holes),
        (right_keys, right_visited, right_msgs, right_holes) ) =
    match par with
    | None ->
      let l = sweep_left () in
      (l, sweep_right ())
    | Some p -> p sweep_left sweep_right
  in
  (* Each sweep prepends per-node blocks as it walks outwards, so the
     left sweep's list is already ascending (farthest-left block ends
     up first) while the right sweep's needs reversing. *)
  let keys =
    List.concat left_keys @ here @ List.concat (List.rev right_keys)
  in
  (* Normalize the holes: ascending, overlaps merged (the same dead
     peer can surface twice — once from its stale link range, once as
     the tiling gap the detour hopped over). *)
  let holes =
    let rec merge = function
      | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 ->
        merge ((a1, max b1 b2) :: rest)
      | h :: rest -> h :: merge rest
      | [] -> []
    in
    merge (List.sort compare (left_holes @ right_holes))
  in
  {
    node;
    found = keys <> [];
    keys;
    hops = hops + left_msgs + right_msgs;
    msgs = 0;
    retries = 0;
    nodes_visited = 1 + left_visited + right_visited;
    complete = holes = [];
    holes;
    cached;
  }

let range ?par net ~from ~lo ~hi =
  if lo > hi then invalid_arg "Search.range: lo > hi";
  Net.with_op net ~kind:Span.range (fun () ->
      measured net (fun () ->
          Net.profile net Baton_obs.Profile.s_range (fun () ->
              range_walk ?par net ~from ~lo ~hi)))
