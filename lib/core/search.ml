module Bus = Baton_sim.Bus
module Span = Baton_obs.Span
module Sorted_store = Baton_util.Sorted_store

type outcome = { node : Node.t; hops : int }

exception Routing_stuck of int

(* Generous budget: height is <= 1.44 log2 N and each hop halves the
   remaining distance; the budget is only consumed faster when routing
   around stale links. *)
let hop_budget net = 64 + (4 * (1 + Net.size net))

(* Ordered candidate next hops towards [v] from [node], per the
   paper's algorithm: the farthest admissible routing-table neighbour
   first, then the nearer admissible sideways entries, then the child
   and adjacent node on the target's side. An empty list means [node]
   is the boundary node that would expand for out-of-range values
   (Section IV-C). *)
let candidates (node : Node.t) v =
  let side = if Range.is_left_of node.Node.range v then `Right else `Left in
  let admissible (i : Link.info) =
    match side with
    | `Right -> i.Link.range.Range.lo <= v
    | `Left -> i.Link.range.Range.hi > v
  in
  let sideways =
    Routing_table.entries (Node.table node side)
    |> List.rev_map snd
    |> List.filter admissible
  in
  let structural =
    List.filter_map
      (fun l -> l)
      [ Node.child node side; Node.adjacent node side ]
  in
  sideways @ structural

let exact_walk net ~kind ~from v =
  let budget = hop_budget net in
  (* [tried] are the peers that timed out from the current node on this
     visit; it resets whenever a hop succeeds. A dead (unreachable)
     peer is handled the stronger way: drop the link and reconstitute
     the missing links through the surviving neighbourhood, so the
     detour costs messages exactly as the paper predicts. *)
  let rec loop (node : Node.t) hops ~tried =
    if Range.contains node.Node.range v then { node; hops }
    else if hops > budget then raise (Routing_stuck hops)
    else
      match candidates node v with
      | [] -> { node; hops }
      | primary -> (
        let fresh (i : Link.info) = not (List.mem i.Link.peer tried) in
        (* When every forward link has timed out, escape upwards via
           the parent — one more of Section III-D's alternative paths —
           before declaring the neighbourhood silent. *)
        let escape =
          match node.Node.parent with
          | Some p when tried <> [] -> [ p ]
          | Some _ | None -> []
        in
        match List.filter fresh (primary @ escape) with
        | [] ->
          (* Every alternative timed out too. Treat the silent peers
             like dead ones: drop them, rebuild through survivors, and
             route on. *)
          List.iter (Node.drop_links_for_peer node) tried;
          Wiring.rebuild_links ~skip_failed:true net node ~kind;
          loop node (hops + 1) ~tried:[]
        | target :: _ -> (
        match Net.send net ~src:node.Node.id ~dst:target.Link.peer ~kind with
        | next -> loop next (hops + 1) ~tried:[]
        | exception Bus.Unreachable dead ->
          (* Fault tolerance (Section III-D): drop the dead link,
             reconstitute the missing links through the surviving
             neighbourhood, and route on; the detour costs messages. *)
          Net.obs_note net ~peer:dead Span.n_unreachable;
          Failure.observe_unreachable net ~observer:node dead;
          Node.drop_links_for_peer node dead;
          Wiring.rebuild_links ~skip_failed:true net node ~kind;
          loop node (hops + 1) ~tried:[]
        | exception Bus.Timeout silent ->
          (* The peer may be alive behind a lossy link: keep the link,
             file a suspicion, and try the next-best candidate. *)
          Net.obs_note net ~peer:silent Span.n_timeout;
          Failure.observe_timeout net ~observer:node silent;
          loop node (hops + 1) ~tried:(silent :: tried)
        | exception Not_found ->
          (* The target peer left the network and the link is stale. *)
          Node.drop_links_for_peer node target.Link.peer;
          Wiring.rebuild_links ~skip_failed:true net node ~kind;
          loop node (hops + 1) ~tried:[]))
  in
  loop from 0 ~tried:[]

(* A standalone exact-match query is its own span; walks on behalf of a
   larger operation (range locate, insert, delete) are recorded under
   that operation's span instead. *)
let exact ?(kind = Msg.search_exact) net ~from v =
  if String.equal kind Msg.search_exact then
    Net.with_op net ~kind:Span.exact (fun () -> exact_walk net ~kind ~from v)
  else exact_walk net ~kind ~from v

let lookup net ~from v =
  let { node; hops } = exact net ~from v in
  (Sorted_store.mem node.Node.store v, hops)

type range_outcome = {
  keys : int list;
  nodes_visited : int;
  range_hops : int;
  complete : bool;
}

(* What one directional adjacent-link sweep produces; opaque to
   callers, who only thread it through a [par] runner. *)
type sweep_outcome = int list list * int * int * bool

type par = (unit -> sweep_outcome) -> (unit -> sweep_outcome) -> sweep_outcome * sweep_outcome

(* Collect matching keys from one direction of adjacent links, starting
   at (and excluding) [node]. Returns (keys in visit order, peers
   visited, messages paid, interval fully covered?). A dead or silent
   adjacent peer no longer aborts the scan: the current node drops the
   link, bridges the gap through its surviving neighbourhood, and
   carries on — flagging the answer incomplete when the skipped peer's
   cached range intersected the query. *)
let sweep net (node : Node.t) side ~lo ~hi =
  let keys = ref [] and visited = ref 0 and msgs = ref 0 in
  let complete = ref true in
  let continue (n : Node.t) =
    match side with
    | `Right -> Range.is_left_of n.Node.range hi
    | `Left -> lo < n.Node.range.Range.lo
  in
  let rec go (n : Node.t) bridges =
    if continue n then
      match Node.adjacent n side with
      | None -> ()
      | Some next -> (
        let lost_data () =
          if Range.intersects next.Link.range ~lo ~hi then complete := false
        in
        let bridge ~data_lost =
          if data_lost then lost_data ();
          Node.drop_links_for_peer n next.Link.peer;
          if bridges < 2 then begin
            Wiring.rebuild_links ~skip_failed:true net n
              ~kind:Msg.search_range;
            go n (bridges + 1)
          end
          else complete := false
        in
        match
          Net.send net ~src:n.Node.id ~dst:next.Link.peer
            ~kind:Msg.search_range
        with
        | next_node ->
          incr msgs;
          incr visited;
          (* Live ranges tile the domain; a hole between consecutive
             ranges is a crashed peer whose links an earlier detour
             already spliced around. Its keys died with it, so a hole
             intersecting the query makes the answer partial even
             though no send failed here. *)
          let gap_lo, gap_hi =
            match side with
            | `Right -> (n.Node.range.Range.hi, next_node.Node.range.Range.lo)
            | `Left -> (next_node.Node.range.Range.hi, n.Node.range.Range.lo)
          in
          if gap_lo < gap_hi && gap_lo <= hi && gap_hi > lo then
            complete := false;
          keys := Sorted_store.keys_in next_node.Node.store ~lo ~hi :: !keys;
          go next_node 0
        | exception Bus.Unreachable dead ->
          (* The peer is gone and its data with it. *)
          Net.obs_note net ~peer:dead Span.n_unreachable;
          Failure.observe_unreachable net ~observer:n dead;
          bridge ~data_lost:true
        | exception Bus.Timeout silent ->
          (* Possibly alive behind a lossy link; its data may exist but
             cannot be fetched now, so the answer is partial. *)
          Net.obs_note net ~peer:silent Span.n_timeout;
          Failure.observe_timeout net ~observer:n silent;
          bridge ~data_lost:true
        | exception Not_found ->
          (* Departed gracefully: its data moved to a survivor still on
             the chain, nothing is lost. *)
          bridge ~data_lost:false)
  in
  go node 0;
  (!keys, !visited, !msgs, !complete)

let range_walk ?par net ~from ~lo ~hi =
  (* Find any node intersecting the interval, then per the paper
     "proceed left and/or right to cover the remainder of the searched
     range" along adjacent links. We aim the locate step at the
     interval midpoint so the two directional sweeps are balanced:
     they are independent of each other, and under a [par] runner (the
     concurrent runtime's fork-join) they cover their subranges in
     parallel — the paper's [O(log N + X)] is a critical-path bound —
     while sending exactly the messages the sequential order sends. *)
  let mid = lo + ((hi - lo) / 2) in
  let locate aim = exact ~kind:Msg.search_range net ~from aim in
  let { node; hops } =
    (* A dead owner of the aim point makes the locate walk ping-pong
       between its surviving neighbours until the budget runs out; the
       messages are spent (and counted) — fall back to aiming at the
       interval's ends, whose owners the sweeps can bridge from. *)
    match locate mid with
    | outcome -> outcome
    | exception Routing_stuck h1 -> (
      match locate lo with
      | outcome -> { outcome with hops = outcome.hops + h1 }
      | exception Routing_stuck h2 ->
        let outcome = locate hi in
        { outcome with hops = outcome.hops + h1 + h2 })
  in
  let here = Sorted_store.keys_in node.Node.store ~lo ~hi in
  let sweep_left () = sweep net node `Left ~lo ~hi in
  let sweep_right () = sweep net node `Right ~lo ~hi in
  let ( (left_keys, left_visited, left_msgs, left_complete),
        (right_keys, right_visited, right_msgs, right_complete) ) =
    match par with
    | None ->
      let l = sweep_left () in
      (l, sweep_right ())
    | Some p -> p sweep_left sweep_right
  in
  (* Each sweep prepends per-node blocks as it walks outwards, so the
     left sweep's list is already ascending (farthest-left block ends
     up first) while the right sweep's needs reversing. *)
  let keys =
    List.concat left_keys @ here @ List.concat (List.rev right_keys)
  in
  {
    keys;
    nodes_visited = 1 + left_visited + right_visited;
    range_hops = hops + left_msgs + right_msgs;
    complete = left_complete && right_complete;
  }

let range ?par net ~from ~lo ~hi =
  if lo > hi then invalid_arg "Search.range: lo > hi";
  Net.with_op net ~kind:Span.range (fun () -> range_walk ?par net ~from ~lo ~hi)
