module Sorted_store = Baton_util.Sorted_store

(* A shift plan: the positions whose occupants move, starting at the
   insertion point, plus the fresh leaf slot for the last mover (join
   side) or the vacated safe leaf (leave side). Plans are computed on
   the current position map; the subsequent relabelling does not change
   which positions are occupied (except at the plan's far end), so the
   plan stays valid while it is executed. *)

(* Join side, shifting right: find [q0; q1; ...; qk] (successive
   in-order successors) such that the occupant displaced from [qk] can
   settle as the left child of [qk]'s successor — or, at the very right
   end of the tree, as the right child of [qk] itself. *)
(* The paper's absorb rule is Theorem 1's sufficient condition (the
   slot's parent has structurally full tables). When no chain satisfies
   it, [`Exact] falls back to the precise balance criterion: adding the
   leaf leaves every ancestor's subtree heights within one. *)
let addition_keeps_balance net slot =
  let level = slot.Position.level in
  let rec up a ok =
    ok
    &&
    if Position.is_root a then ok
    else begin
      let parent = Position.parent a in
      let sibling = Position.sibling a in
      let h_mine = max (Wiring.subtree_height net a) (level - a.Position.level) in
      let h_sib = Wiring.subtree_height net sibling in
      up parent (abs (h_mine - h_sib) <= 1)
    end
  in
  up slot true

let absorb_ok net rule q slot =
  (not (Wiring.occupied net slot))
  &&
  match rule with
  | `Theorem1 -> Wiring.tables_full_at net q
  | `Exact -> addition_keeps_balance net slot

(* Between two in-order consecutive positions [pk < q] there are at
   most two empty slots a mover can settle in: pk's right-child slot
   (when pk has no right subtree) and q's left-child slot (when q has
   no left subtree). Examining both means the chain walk considers
   every empty leaf slot on its side of the insertion point. *)
let plan_right ?(rule = `Theorem1) net q0 =
  let rec go pk acc =
    let chain = List.rev (pk :: acc) in
    let here = Position.right_child pk in
    if absorb_ok net rule pk here then Some (chain, here)
    else
      match Wiring.in_order_successor net pk with
      | Some q ->
        let slot = Position.left_child q in
        if absorb_ok net rule q slot then Some (chain, slot) else go q (pk :: acc)
      | None -> None
  in
  go q0 []

(* Mirror image, shifting left. *)
let plan_left ?(rule = `Theorem1) net q0 =
  let rec go pk acc =
    let chain = List.rev (pk :: acc) in
    let here = Position.left_child pk in
    if absorb_ok net rule pk here then Some (chain, here)
    else
      match Wiring.in_order_predecessor net pk with
      | Some q ->
        let slot = Position.right_child q in
        if absorb_ok net rule q slot then Some (chain, slot) else go q (pk :: acc)
      | None -> None
  in
  go q0 []

(* Relabel: [incoming] takes [chain.(0)], each chain occupant takes the
   next chain position, the last occupant takes [slot]. One message per
   handover; then every mover rebuilds its links and announces itself. *)
let execute_shift net ~(incoming : Node.t) ~chain ~slot =
  let movers = List.map (fun p -> Option.get (Wiring.occupant net p)) chain in
  (* Coordination messages travel along the chain. *)
  List.iter
    (fun (m : Node.t) ->
      ignore (Net.send net ~src:incoming.Node.id ~dst:m.Node.id ~kind:Msg.restructure))
    movers;
  (* Each mover's target is the next chain position; the last mover
     gets the fresh slot. Move from the far end backwards so that every
     target is vacant when it is taken. *)
  let targets = List.tl chain @ [ slot ] in
  List.iter
    (fun ((m : Node.t), target) -> Net.reposition net m target)
    (List.rev (List.combine movers targets));
  (match chain with
  | first :: _ ->
    incoming.Node.pos <- first;
    Node.bump_epoch incoming;
    Net.register net incoming
  | [] -> invalid_arg "Restructure.execute_shift: empty chain");
  let moved = incoming :: movers in
  List.iter (fun m -> Wiring.rebuild_links net m ~kind:Msg.restructure) moved;
  List.iter (fun m -> Wiring.announce net m ~kind:Msg.restructure) moved;
  (* The new leaf's parent gained a child: refresh its watchers too. *)
  (if not (Position.is_root slot) then
     match Wiring.occupant net (Position.parent slot) with
     | Some parent -> Wiring.announce net parent ~kind:Msg.restructure
     | None -> ());
  (* Second pass: a mover's first snapshot of a neighbour was taken
     before that neighbour had heard all the announcements (e.g. a
     parent that had not yet learnt of its new child), so refresh every
     mover's links once more now that all watchers are up to date. *)
  List.iter (fun m -> Wiring.rebuild_links net m ~kind:Msg.restructure) moved;
  Net.record_shift net (List.length moved)

let split_with (x : Node.t) (y : Node.t) =
  let m = Join.split_point x in
  let low, high = Range.split_at x.Node.range m in
  Node.set_range y low;
  Node.set_range x high;
  let moved = Sorted_store.split_below x.Node.store m in
  Sorted_store.absorb y.Node.store moved

let rec forced_join net ~parent:(x : Node.t) new_id =
  Net.with_op net ~kind:Baton_obs.Span.restructure (fun () ->
      Net.profile net Baton_obs.Profile.s_restructure (fun () ->
          forced_join_run net ~parent:x new_id))

and forced_join_run net ~parent:(x : Node.t) new_id =
  if Option.is_none (Node.child x `Left) && Node.tables_full x then begin
    (* Safe: a plain accept (left slot is free, so the joiner becomes
       the left child and takes the lower half). *)
    let y, _msgs = Join.accept net ~acceptor:x new_id in
    Net.record_shift net 1;
    y
  end
  else begin
    (* Theorem 1 would be violated: split content, then insert the new
       peer just before x in the in-order sequence by shifting. *)
    let y = Node.create ~id:new_id ~pos:x.Node.pos ~range:x.Node.range in
    split_with x y;
    let left_start = Wiring.in_order_predecessor net x.Node.pos in
    let attempt rule =
      match plan_right ~rule net x.Node.pos with
      | Some plan -> Some plan
      | None -> Option.bind left_start (plan_left ~rule net)
    in
    (match attempt `Theorem1 with
    | Some (chain, slot) -> execute_shift net ~incoming:y ~chain ~slot
    | None -> (
      match attempt `Exact with
      | Some (chain, slot) -> execute_shift net ~incoming:y ~chain ~slot
      | None -> failwith "Restructure.forced_join: no slot in either direction"));
    (* x's range and content changed: tell its watchers. *)
    Wiring.announce net x ~kind:Msg.restructure;
    y
  end

let rec forced_leave net (x : Node.t) =
  Net.with_op net ~kind:Baton_obs.Span.restructure (fun () ->
      Net.profile net Baton_obs.Profile.s_restructure (fun () ->
          forced_leave_run net x))

and forced_leave_run net (x : Node.t) =
  let pos = x.Node.pos in
  if Wiring.safe_leaf_removal net pos then begin
    Wiring.retract net x ~kind:Msg.restructure;
    Net.unregister net x;
    (* The departed leaf's in-order neighbours become mutually
       adjacent: one message each way re-links them. *)
    (match
       ( Wiring.in_order_predecessor net pos,
         Wiring.in_order_successor net pos )
     with
    | Some ppos, Some spos -> (
      match (Wiring.occupant net ppos, Wiring.occupant net spos) with
      | Some a, Some b ->
        let a_info = Node.info a and b_info = Node.info b in
        Net.notify net ~expect_pos:a.Node.pos ~src:b.Node.id ~dst:a.Node.id
          ~kind:Msg.restructure (fun a -> Node.set_adjacent a `Right (Some b_info));
        Net.notify net ~expect_pos:b.Node.pos ~src:a.Node.id ~dst:b.Node.id
          ~kind:Msg.restructure (fun b -> Node.set_adjacent b `Left (Some a_info))
      | _, _ -> ())
    | (Some _ | None), (Some _ | None) -> ());
    (if not (Position.is_root pos) then
       match Wiring.occupant net (Position.parent pos) with
       | Some parent -> Wiring.announce net parent ~kind:Msg.restructure
       | None -> ());
    Net.record_shift net 1
  end
  else begin
    (* Find, on the full map, the nearest in-order chain ending at a
       safely-removable leaf; its occupants will shift towards the
       hole. *)
    let plan step =
      let rec go p acc =
        match step p with
        | None -> None
        | Some q ->
          let acc = q :: acc in
          if Wiring.safe_leaf_removal net q then Some (List.rev acc) else go q acc
      in
      go pos []
    in
    let chain =
      match plan (Wiring.in_order_predecessor net) with
      | Some c -> c
      | None -> (
        match plan (Wiring.in_order_successor net) with
        | Some c -> c
        | None -> failwith "Restructure.forced_leave: no removable leaf found")
    in
    (* chain = [r1; ...; rj]: occ r1 -> hole, occ r2 -> r1, ...,
       occ rj -> r(j-1); rj is vacated and ceases to exist. *)
    let movers = List.map (fun p -> Option.get (Wiring.occupant net p)) chain in
    List.iter
      (fun (m : Node.t) ->
        ignore (Net.send net ~src:x.Node.id ~dst:m.Node.id ~kind:Msg.restructure))
      movers;
    let last = List.nth movers (List.length movers - 1) in
    let last_pos = last.Node.pos in
    Wiring.retract net x ~kind:Msg.restructure;
    Net.unregister net x;
    let targets = pos :: List.filteri (fun i _ -> i < List.length chain - 1) chain in
    List.iter
      (fun ((m : Node.t), target) -> Net.reposition net m target)
      (List.combine movers targets);
    (* The far-end position is now empty: its watchers drop it. *)
    Wiring.retract_position net ~pos:last_pos ~peer:last.Node.id ~kind:Msg.restructure;
    List.iter (fun m -> Wiring.rebuild_links net m ~kind:Msg.restructure) movers;
    List.iter (fun m -> Wiring.announce net m ~kind:Msg.restructure) movers;
    (if not (Position.is_root last_pos) then
       match Wiring.occupant net (Position.parent last_pos) with
       | Some parent -> Wiring.announce net parent ~kind:Msg.restructure
       | None -> ());
    (* See execute_shift: refresh mover links after all announcements. *)
    List.iter (fun m -> Wiring.rebuild_links net m ~kind:Msg.restructure) movers;
    Net.record_shift net (List.length movers + 1)
  end
