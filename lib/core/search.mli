(** Exact-match and range queries (paper Section IV-A/B).

    Both run the paper's [search exact] algorithm: a node first checks
    its own range; otherwise it forwards to the farthest routing-table
    neighbour whose cached lower bound does not pass the target, else
    to its child, else to its adjacent node on the target's side. Every
    forwarding hop is one counted message. Routing uses only the
    issuing node's local links and cached ranges — caches can be stale,
    in which case the query simply pays extra hops (or routes around an
    unreachable peer), exactly the effect measured by the paper's
    network-dynamics experiment.

    Under an installed fault model (see {!Baton_sim.Bus.set_faults}) a
    hop can also time out after its retransmissions. The search then
    routes around the silent peer through alternative links — other
    sideways entries, the child or adjacent node on the target's side,
    the parent — degrading to extra hops rather than raising, and files
    a suspicion against the silent peer so repair can be triggered
    lazily ({!Failure.observe_timeout}). *)

type outcome = {
  node : Node.t;  (** the node responsible for the searched value *)
  hops : int;  (** forwarding messages paid *)
}

exception Routing_stuck of int
(** Raised when a query exceeds the hop budget — only possible when
    staleness or failures have corrupted routing state beyond the
    protocol's tolerance; never in a quiescent network. Carries the
    hop count. *)

val exact : ?kind:string -> Net.t -> from:Node.t -> int -> outcome
(** [exact net ~from v] routes from [from] to the node whose range
    contains [v]. For values outside the current global range the
    leftmost/rightmost node is returned (it is the one that would
    expand, per Section IV-C). [kind] defaults to
    {!Msg.search_exact}. *)

val lookup : Net.t -> from:Node.t -> int -> bool * int
(** [lookup net ~from v] is [(found, hops)]: route to the responsible
    node and test membership of [v] in its local store. *)

type range_outcome = {
  keys : int list;  (** matching keys, ascending *)
  nodes_visited : int;  (** partial-answer nodes contacted *)
  range_hops : int;  (** total messages: search + adjacent expansion *)
  complete : bool;
      (** [false] when a dead or silent peer whose cached range
          intersected the query had to be skipped: [keys] is the
          partial answer collected from the surviving chain. *)
}

type sweep_outcome
(** Result of one directional adjacent-link sweep. Opaque: callers of
    {!range} only thread it through a {!par} runner. *)

type par = (unit -> sweep_outcome) -> (unit -> sweep_outcome) -> sweep_outcome * sweep_outcome
(** How to run the two independent directional sweeps of a range query.
    The default runs them sequentially (left, then right); the
    concurrent runtime passes its fork-join so both directions cover
    their subranges in parallel — same messages, shorter critical
    path. *)

val range : ?par:par -> Net.t -> from:Node.t -> lo:int -> hi:int -> range_outcome
(** [range net ~from ~lo ~hi] answers the closed range query
    [\[lo, hi\]]: exact-search the first intersecting node, then follow
    adjacent links, one message per additional node (paper:
    [O(log N + X)]). A mid-scan dead or timed-out adjacent peer no
    longer aborts the query: the scan bridges the gap through the
    surviving neighbourhood and returns what it collected, flagging
    [complete = false] if skipped data intersected the interval.

    [par] (default: sequential) runs the left and right sweeps; both
    orders transmit the identical message multiset, so [Metrics.total]
    does not depend on it. The paper's [O(log N + X)] range bound is a
    critical-path bound, reached only when the sweeps overlap in
    time. *)
