(** Exact-match and range queries (paper Section IV-A/B).

    Both run the paper's [search exact] algorithm: a node first checks
    its own range; otherwise it forwards to the farthest routing-table
    neighbour whose cached lower bound does not pass the target, else
    to its child, else to its adjacent node on the target's side. Every
    forwarding hop is one counted message. Routing uses only the
    issuing node's local links and cached ranges — caches can be stale,
    in which case the query simply pays extra hops (or routes around an
    unreachable peer), exactly the effect measured by the paper's
    network-dynamics experiment.

    When the network's adaptive route cache is enabled
    ({!Net.enable_route_cache}), both queries first consult the issuing
    peer's {!Route_cache} for a learned shortcut: a single probe
    message (auxiliary kind {!Msg.cache_probe}, counted apart from the
    paper's metric) is validated at the receiver against its current
    range. A stale or dead shortcut is evicted and the query falls back
    to ordinary tree routing — the cache accelerates, never decides.

    Under an installed fault model (see {!Baton_sim.Bus.set_faults}) a
    hop can also time out after its retransmissions. The search then
    routes around the silent peer through alternative links — other
    sideways entries, the child or adjacent node on the target's side,
    the parent — degrading to extra hops rather than raising, and files
    a suspicion against the silent peer so repair can be triggered
    lazily ({!Failure.observe_timeout}). *)

type result = {
  node : Node.t;
      (** the node that answered: the owner of the searched value, or
          the first intersecting node of a range query *)
  found : bool;
      (** exact/lookup: is the answer positive (range owned / key
          stored)? range: did any key match? *)
  keys : int list;
      (** matching keys, ascending ([[v]] or [[]] for lookup; always
          [[]] for [exact], which locates an owner rather than data) *)
  hops : int;  (** forwarding messages on the query's routing path *)
  msgs : int;
      (** every bus message the operation paid for: routing hops,
          retransmissions, repair detours, and auxiliary cache probes *)
  retries : int;  (** retransmissions hidden inside [msgs] *)
  nodes_visited : int;  (** partial-answer nodes contacted *)
  complete : bool;
      (** [false] when part of the queried data could not be reached:
          a dead or silent peer had to be skipped mid-sweep, the
          adjacency chain was severed, or an exact search could not
          reach the owner of the searched value. Equivalent to
          [holes = \[\]]. *)
  holes : (int * int) list;
      (** the unreachable sub-intervals behind [complete = false]:
          half-open [\[a, b)] ranges, ascending, overlap-merged and
          clipped to the query — so callers (and the consistency
          oracle) can tell "hole at [\[a, b)]" from "truncated". Empty
          iff [complete]. For an incomplete exact search this is the
          searched point [\[(v, v + 1)\]]. *)
  cached : bool;
      (** did a validated route-cache shortcut serve the routing step? *)
}
(** The one result shape shared by {!exact}, {!lookup} and {!range}. *)

exception Routing_stuck of int
(** Raised when a query exceeds the hop budget — only possible when
    staleness or failures have corrupted routing state beyond the
    protocol's tolerance; never in a quiescent network. Carries the
    hop count. *)

val exact : ?kind:string -> Net.t -> from:Node.t -> int -> result
(** [exact net ~from v] routes from [from] to the node whose range
    contains [v]. For values outside the current global range the
    leftmost/rightmost node is returned (it is the one that would
    expand, per Section IV-C) with [found = false]. The answer is
    [complete] iff the answering node owns [v]; a walk stranded by
    severed links reports [complete = false] with hole [(v, v + 1)],
    so "absent" is never conflated with "owner unreachable". [kind]
    defaults to {!Msg.search_exact}. *)

val lookup : Net.t -> from:Node.t -> int -> result
(** [lookup net ~from v] routes to the responsible node and tests
    membership of [v] in its local store: [found] is the membership
    answer and [keys] is [[v]] when stored. *)

type sweep_outcome
(** Result of one directional adjacent-link sweep. Opaque: callers of
    {!range} only thread it through a {!par} runner. *)

type par = (unit -> sweep_outcome) -> (unit -> sweep_outcome) -> sweep_outcome * sweep_outcome
(** How to run the two independent directional sweeps of a range query.
    The default runs them sequentially (left, then right); the
    concurrent runtime passes its fork-join so both directions cover
    their subranges in parallel — same messages, shorter critical
    path. *)

val range : ?par:par -> Net.t -> from:Node.t -> lo:int -> hi:int -> result
(** [range net ~from ~lo ~hi] answers the closed range query
    [\[lo, hi\]]: exact-search the first intersecting node, then follow
    adjacent links, one message per additional node (paper:
    [O(log N + X)]). A mid-scan dead or timed-out adjacent peer no
    longer aborts the query: the scan bridges the gap through the
    surviving neighbourhood and returns what it collected, reporting
    each skipped sub-interval in [holes] (and [complete = false]) when
    skipped data intersected the interval.

    [par] (default: sequential) runs the left and right sweeps; both
    orders transmit the identical message multiset, so [Metrics.total]
    does not depend on it. The paper's [O(log N + X)] range bound is a
    critical-path bound, reached only when the sweeps overlap in
    time. *)
