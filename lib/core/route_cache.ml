type entry = { peer : int; range : Range.t; epoch : int }

(* MRU-first association list. Caches are small (bounded by the
   capacity the caller passes to [remember], typically a few hundred)
   and consulted on the hot path only via [find], which touches the
   prefix up to the first covering entry. *)
type t = { mutable items : entry list }

let create () = { items = [] }

let length t = List.length t.items

let find t key =
  let rec scan acc = function
    | [] -> None
    | e :: rest ->
      if Range.contains e.range key then begin
        t.items <- e :: List.rev_append acc rest;
        Some e
      end
      else scan (e :: acc) rest
  in
  scan [] t.items

let remember t ~capacity entry =
  let without = List.filter (fun e -> e.peer <> entry.peer) t.items in
  let items = entry :: without in
  let rec take n = function
    | [] -> ([], 0)
    | _ :: _ as rest when n = 0 -> ([], List.length rest)
    | e :: rest ->
      let kept, dropped = take (n - 1) rest in
      (e :: kept, dropped)
  in
  let kept, evicted = take (max capacity 0) items in
  t.items <- kept;
  evicted

let refresh_peer t ~peer ~range ~epoch =
  t.items <-
    List.map
      (fun e -> if e.peer = peer then { e with range; epoch } else e)
      t.items

let evict_peer t peer = t.items <- List.filter (fun e -> e.peer <> peer) t.items

let clear t = t.items <- []

let entries t = t.items
