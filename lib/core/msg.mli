(** Message kinds.

    Every protocol hop is accounted under one of these kinds so that
    experiments can separate, e.g., the cost of finding a join point
    (Figure 8(a)) from the cost of updating routing tables afterwards
    (Figure 8(b)). *)

val join_search : string
(** Forwarding a JOIN request (Algorithm 1). *)

val join_update : string
(** Routing-table / link updates after a node is accepted. *)

val leave_search : string
(** FINDREPLACEMENT forwarding (Algorithm 2). *)

val leave_update : string
(** Link and table updates when a node departs or is replaced. *)

val search_exact : string
(** Exact-match query forwarding. *)

val search_range : string
(** Range-query forwarding, including adjacent-link expansion. *)

val insert : string
(** Locating the node for a data insertion. *)

val delete : string
(** Locating the node for a data deletion. *)

val expand : string
(** Range-expansion notifications at the leftmost/rightmost node. *)

val balance : string
(** Load-balancing coordination and data migration. *)

val restructure : string
(** Position shifts and table rebuilds during forced restructuring. *)

val repair : string
(** Failure discovery, reporting and routing-table regeneration. *)

val cache_probe : string
(** A shortcut hop through the adaptive route cache: the query is sent
    straight to the remembered peer, which validates it against its
    current range. Auxiliary traffic — see {!cache_kinds}. *)

val cache_invalid : string
(** A probed peer telling the sender that the shortcut was stale (its
    range moved). Auxiliary traffic — see {!cache_kinds}. *)

val cache_kinds : string list
(** The route-cache message kinds. Registered as auxiliary with
    [Metrics.mark_aux] so cache traffic is counted honestly on the bus
    yet reported apart from the paper's message-total metric. *)

val maint_kinds : string list
(** The tree-maintenance kinds (join/leave traffic, [expand],
    [balance], [restructure], [repair]): delivered messages of these
    kinds are attributed to the handling peer's [maint] heat class.
    Disjoint from {!cache_kinds}; every other kind is client demand. *)

val all : string list

(** {2 Link kinds}

    Labels classifying which overlay link a traced hop travelled —
    attached to [Baton_obs.Trace] hops so critical-path analysis can
    break an operation's cost down by link type. *)

val link_parent : string
val link_child : string

val link_adjacent : string
(** Left/right adjacent link — the in-order neighbour chain a range
    query sweeps along. *)

val link_sideways : string
(** Left/right routing-table jump — the BATON long link. *)

val link_cache : string
(** Adaptive route-cache shortcut. *)

val link_other : string
(** Unclassifiable: the destination is not a current neighbour of the
    sender (e.g. a repair contact found out of band). *)

(** {2 Event names}

    Names for {!Baton_sim.Metrics.event} counters — things worth
    observing that are not passing messages, so they never perturb the
    paper's message-count metric. *)

val ev_retry : string
(** A timed-out send was retransmitted (the retransmission itself is a
    counted message; this event records that it happened). *)

val ev_give_up : string
(** A send exhausted its retry budget and surfaced [Timeout]. *)

val ev_notify_dropped : string
(** A one-way notification was lost: destination failed, departed, or
    the fault model dropped it. *)

val ev_notify_stale : string
(** A notification arrived at a peer that changed position since it
    was addressed, and was ignored. *)

val ev_suspect : string
(** A routing peer observed a timeout/unreachable neighbour and filed
    a suspicion against it. *)

val ev_repair_triggered : string
(** Accumulated suspicion crossed the threshold and the observer
    initiated the repair protocol. *)

val ev_cache_hit : string
(** A cached shortcut was probed and validated by the receiver. *)

val ev_cache_miss : string
(** The cache held no entry covering the key; tree routing used. *)

val ev_cache_stale : string
(** A cached shortcut turned out stale or dead; the entry was evicted
    and the search fell back to tree routing. *)

val ev_cache_evict : string
(** A cache entry was displaced by the LRU capacity bound. *)
