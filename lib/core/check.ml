let fail fmt = Format.kasprintf failwith fmt

let tree_shape net =
  if Net.size net > 0 && Option.is_none (Net.root net) then
    fail "tree_shape: non-empty network without a root";
  List.iter
    (fun (n : Node.t) ->
      if
        (not (Position.is_root n.Node.pos))
        && not (Wiring.occupied net (Position.parent n.Node.pos))
      then fail "tree_shape: node %d at %a has no parent" n.Node.id Position.pp n.Node.pos)
    (Net.peers net)

let balanced net =
  List.iter
    (fun (n : Node.t) ->
      let hl = Wiring.subtree_height net (Position.left_child n.Node.pos) in
      let hr = Wiring.subtree_height net (Position.right_child n.Node.pos) in
      if abs (hl - hr) > 1 then
        fail "balanced: node %d at %a has subtree heights %d and %d" n.Node.id
          Position.pp n.Node.pos hl hr)
    (Net.peers net)

let height net =
  match Net.root net with
  | None -> -1
  | Some root -> Wiring.subtree_height net root.Node.pos

let height_bound net =
  let n = Net.size net in
  if n > 1 then begin
    let h = height net in
    let bound = (1.44 *. (log (float_of_int n) /. log 2.)) +. 1. in
    if float_of_int h > bound then
      fail "height_bound: height %d exceeds 1.44 log2 %d + 1 = %.2f" h n bound
  end

let theorem1 net =
  List.iter
    (fun (n : Node.t) ->
      let pos = n.Node.pos in
      let has_child =
        Wiring.occupied net (Position.left_child pos)
        || Wiring.occupied net (Position.right_child pos)
      in
      if has_child && not (Wiring.tables_full_at net pos) then
        fail "theorem1: node %d at %a has a child but incomplete tables" n.Node.id
          Position.pp pos)
    (Net.peers net)

let theorem2 net =
  (* Structural statement over positions: if positions p and q at the
     same level are a power of two apart and both occupied, then their
     parents are either equal or also a power of two apart — verified
     by Theorem 2's arithmetic; here we check the stronger operational
     fact that the parent positions are both occupied (so the links can
     exist). *)
  List.iter
    (fun (n : Node.t) ->
      let pos = n.Node.pos in
      if not (Position.is_root pos) then
        List.iter
          (fun side ->
            let size = Position.table_size pos side in
            for j = 0 to size - 1 do
              match Position.neighbor pos side j with
              | Some q when Wiring.occupied net q ->
                let pp_ = Position.parent pos and pq = Position.parent q in
                if not (Position.equal pp_ pq) then begin
                  if not (Wiring.occupied net pq) then
                    fail
                      "theorem2: neighbour %a of %a occupied but parent %a empty"
                      Position.pp q Position.pp pos Position.pp pq;
                  let d = abs (pp_.Position.number - pq.Position.number) in
                  if d land (d - 1) <> 0 then
                    fail "theorem2: parents %a and %a not a power of two apart"
                      Position.pp pp_ Position.pp pq
                end
              | Some _ | None -> ()
            done)
          [ `Left; `Right ])
    (Net.peers net)

let check_link net ~strict ~what ~(owner : Node.t) (link : Link.info option) expected_pos =
  match (link, expected_pos) with
  | None, None -> ()
  | Some l, None ->
    fail "links: node %d has %s to %a but none should exist" owner.Node.id what
      Position.pp l.Link.pos
  | None, Some p ->
    if Wiring.occupied net p then
      fail "links: node %d is missing %s to %a" owner.Node.id what Position.pp p
  | Some l, Some p -> (
    if not (Position.equal l.Link.pos p) then
      fail "links: node %d %s points at %a, expected %a" owner.Node.id what
        Position.pp l.Link.pos Position.pp p;
    match Wiring.occupant net p with
    | None -> fail "links: node %d %s points at empty position %a" owner.Node.id what Position.pp p
    | Some target ->
      if target.Node.id <> l.Link.peer then
        fail "links: node %d %s points at peer %d, occupant is %d" owner.Node.id
          what l.Link.peer target.Node.id;
      if strict then begin
        if not (Range.equal l.Link.range target.Node.range) then
          fail "links: node %d %s caches range %a, actual %a" owner.Node.id what
            Range.pp l.Link.range Range.pp target.Node.range;
        if
          l.Link.has_left_child <> Option.is_some (Node.child target `Left)
          || l.Link.has_right_child <> Option.is_some (Node.child target `Right)
        then fail "links: node %d %s caches stale child flags" owner.Node.id what
      end)

let links ?(strict = true) net =
  List.iter
    (fun (n : Node.t) ->
      let pos = n.Node.pos in
      let expect p = if Wiring.occupied net p then Some p else None in
      let expected : Link.kind -> Position.t option = function
        | Link.Parent ->
          if Position.is_root pos then None else expect (Position.parent pos)
        | Link.Child `Left -> expect (Position.left_child pos)
        | Link.Child `Right -> expect (Position.right_child pos)
        | Link.Adjacent `Left -> Wiring.in_order_predecessor net pos
        | Link.Adjacent `Right -> Wiring.in_order_successor net pos
      in
      List.iter
        (fun k ->
          check_link net ~strict
            ~what:(Format.asprintf "%a" Link.pp_kind k)
            ~owner:n (Node.link n k) (expected k))
        Link.all_kinds;
      List.iter
        (fun side ->
          let table = Node.table n side in
          for j = 0 to Routing_table.size table - 1 do
            match Position.neighbor pos side j with
            | Some q ->
              check_link net ~strict
                ~what:(Printf.sprintf "table slot %d" j)
                ~owner:n (Routing_table.get table j) (expect q)
            | None -> ()
          done)
        [ `Left; `Right ])
    (Net.peers net)

let in_order_nodes net =
  match Net.root net with
  | None -> []
  | Some root ->
    let rec collect pos acc =
      match Wiring.occupant net pos with
      | None -> acc
      | Some n ->
        let acc = collect (Position.right_child pos) acc in
        let acc = n :: acc in
        collect (Position.left_child pos) acc
    in
    collect root.Node.pos []

let ranges net =
  let nodes = in_order_nodes net in
  match nodes with
  | [] -> ()
  | first :: _ ->
    let rec walk = function
      | (a : Node.t) :: ((b : Node.t) :: _ as rest) ->
        if not (Range.touches_left a.Node.range b.Node.range) then
          fail "ranges: %a of node %d and %a of node %d do not tile" Range.pp
            a.Node.range a.Node.id Range.pp b.Node.range b.Node.id;
        walk rest
      | [ _ ] | [] -> ()
    in
    walk nodes;
    let last = List.nth nodes (List.length nodes - 1) in
    let lo = first.Node.range.Range.lo and hi = last.Node.range.Range.hi in
    let domain = Net.domain net in
    (* Ends may have expanded beyond the initial domain but never
       contracted inside it. *)
    if lo > domain.Range.lo || hi < domain.Range.hi then
      fail "ranges: global range [%d,%d) no longer covers the domain %a" lo hi
        Range.pp domain

let data_placement net =
  List.iter
    (fun (n : Node.t) ->
      List.iter
        (fun key ->
          if not (Range.contains n.Node.range key) then
            fail "data_placement: key %d stored at node %d outside range %a" key
              n.Node.id Range.pp n.Node.range)
        (Baton_util.Sorted_store.to_list n.Node.store))
    (Net.peers net)

let all net =
  tree_shape net;
  balanced net;
  height_bound net;
  theorem1 net;
  theorem2 net;
  links ~strict:true net;
  ranges net;
  data_placement net
