module Bus = Baton_sim.Bus
module Sorted_store = Baton_util.Sorted_store

let crash net (x : Node.t) = Bus.fail (Net.bus net) x.Node.id

(* The guardian is the peer that manages the departure: the parent, or
   a child when the root itself died. *)
let guardian net (dead : Node.t) =
  let candidates =
    (if Position.is_root dead.Node.pos then []
     else
       match Wiring.occupant net (Position.parent dead.Node.pos) with
       | Some p -> [ p ]
       | None -> [])
    @ (match Wiring.occupant net (Position.left_child dead.Node.pos) with
      | Some c -> [ c ]
      | None -> [])
    @
    match Wiring.occupant net (Position.right_child dead.Node.pos) with
    | Some c -> [ c ]
    | None -> []
  in
  List.find_opt (fun (n : Node.t) -> not (Bus.is_failed (Net.bus net) n.Node.id)) candidates

(* Regenerate the dead node's links: the guardian queries the children
   of its own sideways neighbours (paper: "quickly regenerate the left
   and right routing tables of x by contacting children of nodes in its
   own routing tables"); each consulted peer costs a message, as does
   its answer. We pay two messages per recovered link and rebuild the
   state from the position map, whose content is exactly what that
   conversation would return. *)
let regenerate net (guardian_node : Node.t) (dead : Node.t) =
  let pos = dead.Node.pos in
  (* Occupants that are themselves down are still recorded: the
     guardian learns of them from their neighbours (paper III-C), and
     the attempted contact is what costs the messages. *)
  let consult target_pos =
    match Wiring.occupant net target_pos with
    | Some (t : Node.t) ->
      (try ignore (Net.send net ~src:guardian_node.Node.id ~dst:t.Node.id ~kind:Msg.repair)
       with Bus.Unreachable _ | Bus.Timeout _ -> ());
      (try ignore (Net.send net ~src:t.Node.id ~dst:guardian_node.Node.id ~kind:Msg.repair)
       with Bus.Unreachable _ | Bus.Timeout _ -> ());
      Some (Node.info t)
    | None -> None
  in
  let resolve : Link.kind -> Link.info option = function
    | Link.Parent ->
      if Position.is_root pos then None else consult (Position.parent pos)
    | Link.Child `Left -> consult (Position.left_child pos)
    | Link.Child `Right -> consult (Position.right_child pos)
    | Link.Adjacent `Left ->
      Option.bind (Wiring.in_order_predecessor net pos) consult
    | Link.Adjacent `Right ->
      Option.bind (Wiring.in_order_successor net pos) consult
  in
  List.iter (fun k -> Node.set_link dead k (resolve k)) Link.all_kinds;
  Node.reset_tables dead;
  List.iter
    (fun side ->
      let table = Node.table dead side in
      for j = 0 to Routing_table.size table - 1 do
        match Position.neighbor pos side j with
        | Some q -> Routing_table.set table j (consult q)
        | None -> ()
      done)
    [ `Left; `Right ]

let rec repair_run net ~reporter dead_id =
  match Net.peer_opt net dead_id with
  | None -> () (* already repaired *)
  | Some dead ->
    if not (Bus.is_failed (Net.bus net) dead_id) then ()
    else begin
      (* Parent-child double failures (paper III-D): try to settle the
         deeper failures first — a child with live children of its own
         can recover before its parent. One attempt each; a child whose
         whole neighbourhood is dead is picked up by a later report
         once this node has been replaced. *)
      let failed_child side =
        match Wiring.occupant net (Position.child dead.Node.pos side) with
        | Some c when Bus.is_failed (Net.bus net) c.Node.id -> Some c.Node.id
        | Some _ | None -> None
      in
      List.iter
        (fun side ->
          match failed_child side with
          | Some cid -> repair_run net ~reporter cid
          | None -> ())
        [ `Left; `Right ];
      match guardian net dead with
      | None ->
        (* No live parent or child: the dead node was the only peer, or
           its whole neighbourhood is dead too — the repair completes
           when a later report arrives after the neighbours are back. *)
        if Net.size net = 0 then Net.unregister net dead
      | Some g ->
        (* The discovery report travels to the guardian. *)
        (try ignore (Net.send net ~src:reporter.Node.id ~dst:g.Node.id ~kind:Msg.repair)
         with Bus.Unreachable _ | Bus.Timeout _ -> ());
        regenerate net g dead;
        (* The dead node's data is gone; only its range survives. The
           guardian now drives a graceful departure on its behalf. *)
        Sorted_store.absorb (Sorted_store.create ()) dead.Node.store;
        Bus.revive (Net.bus net) dead_id;
        let has_structural_child =
          Wiring.occupied net (Position.left_child dead.Node.pos)
          || Wiring.occupied net (Position.right_child dead.Node.pos)
        in
        (* When link state is too damaged for Algorithm 2 (the walk
           comes home although the node has children), the guardian
           scans the in-order chain itself for a live, safely removable
           leaf — one message per step, like the walk it stands in
           for. *)
        let structural_replacement () =
          let live_safe q =
            Wiring.safe_leaf_removal net q
            &&
            match Wiring.occupant net q with
            | Some c -> not (Bus.is_failed (Net.bus net) c.Node.id)
            | None -> false
          in
          let rec scan step p =
            match step net p with
            | None -> None
            | Some q ->
              (match Wiring.occupant net q with
              | Some c ->
                (try ignore (Net.send net ~src:g.Node.id ~dst:c.Node.id ~kind:Msg.repair)
                 with Bus.Unreachable _ | Bus.Timeout _ -> ())
              | None -> ());
              if live_safe q then Wiring.occupant net q else scan step q
          in
          match scan Wiring.in_order_predecessor dead.Node.pos with
          | Some y -> Some y
          | None -> scan Wiring.in_order_successor dead.Node.pos
        in
        if Leave.can_depart_directly dead && not has_structural_child then
          Leave.direct_departure net dead ~kind:Msg.repair
        else begin
          (* The walk must end on a *structural* leaf: hopping towards a
             dead child drops the link, so a node with a failed child can
             come out of the walk looking like a leaf. Departing it would
             orphan its real subtree and break the range tiling, so check
             the position map, not the (possibly damaged) links. *)
          let replacement, _msgs = Leave.resolve_replacement net dead in
          let structural_leaf (y : Node.t) =
            not
              (Wiring.occupied net (Position.left_child y.Node.pos)
              || Wiring.occupied net (Position.right_child y.Node.pos))
          in
          if replacement.Node.id <> dead.Node.id && structural_leaf replacement
          then begin
            Leave.direct_departure net replacement ~kind:Msg.repair;
            Leave.assume_position net ~leaver:dead ~replacement ~kind:Msg.repair
          end
          else if not has_structural_child then
            (* The walk came home and the node really is a leaf. *)
            Leave.direct_departure net dead ~kind:Msg.repair
          else begin
            match structural_replacement () with
            | Some y ->
              Leave.direct_departure net y ~kind:Msg.repair;
              Leave.assume_position net ~leaver:dead ~replacement:y ~kind:Msg.repair
            | None ->
              (* Whole neighbourhood still dark: leave the node failed
                 for a later report. *)
              Bus.fail (Net.bus net) dead_id
          end
        end
    end

(* The public entry: one discovery-to-recovery episode is one span,
   nested under whatever operation tripped over the failure. *)
let repair net ~reporter dead_id =
  Net.with_op net ~kind:Baton_obs.Span.repair (fun () ->
      Net.profile net Baton_obs.Profile.s_repair (fun () ->
          repair_run net ~reporter dead_id))

let crash_and_repair net (x : Node.t) =
  crash net x;
  let reporter =
    (* Any live peer that would have tried to talk to x. *)
    Net.random_peer net
  in
  repair net ~reporter x.Node.id

(* --- Suspicion-driven (lazy) failure detection -------------------- *)

(* How many timeout observations convict a peer. A single timeout on a
   lossy network proves nothing; repeated silence from independent
   routing attempts does. Unreachable addresses convict immediately —
   in this simulator an Unreachable outcome is certain knowledge, the
   paper's "discover the address unreachable". *)
let suspicion_threshold = 3

(* Run the repair protocol on behalf of [observer], tolerating the
   reporter or any helper dying (or timing out) mid-repair: the
   attempt is abandoned and the still-failed node is picked up by a
   later report, exactly like the paper's repeated discovery. Partial
   progress is safe — [regenerate] only rewrites the dead node's own
   links, and the departure phase mutates shared state only after its
   messages went through. *)
let trigger net ~observer suspect_id =
  Net.event net ~peer:suspect_id Msg.ev_repair_triggered;
  Net.clear_suspicion net suspect_id;
  (* Under the concurrent runtime the repair runs inside the harness's
     membership critical section (see [Net.set_repair_serializer]):
     queries keep racing freely, but structural mutations — repairs,
     joins, leaves — never interleave with each other. By the time the
     section is entered the peer may already have been repaired by
     whoever held it first; [repair_run] re-checks and no-ops then. *)
  Net.serialize_repair net (fun () ->
      try repair net ~reporter:observer suspect_id
      with Bus.Unreachable _ | Bus.Timeout _ | Not_found | Failure _ -> ())

let observe_unreachable net ~observer dead_id =
  (* Whatever else happens, stop shortcutting through the dead peer:
     suspicion invalidates the observer's cached route immediately
     (local, no message; a no-op when the cache is off and empty). *)
  Route_cache.evict_peer observer.Node.cache dead_id;
  if Net.suspicion_repair net then begin
    Net.event net ~peer:dead_id Msg.ev_suspect;
    trigger net ~observer dead_id
  end

let observe_timeout net ~observer suspect_id =
  Route_cache.evict_peer observer.Node.cache suspect_id;
  if Net.suspicion_repair net then begin
    Net.event net ~peer:suspect_id Msg.ev_suspect;
    if Net.suspect net suspect_id >= suspicion_threshold then begin
      (* Probe before acting: only an unreachable address convicts.
         The probe is an ordinary counted message (with retries). *)
      match Net.send net ~src:observer.Node.id ~dst:suspect_id ~kind:Msg.repair with
      | (_ : Node.t) -> Net.clear_suspicion net suspect_id (* alive after all *)
      | exception Bus.Unreachable _ -> trigger net ~observer suspect_id
      | exception Bus.Timeout _ -> () (* still ambiguous: keep counting *)
      | exception Not_found -> Net.clear_suspicion net suspect_id (* departed *)
    end
  end
