module Sorted_store = Baton_util.Sorted_store

type t = {
  id : int;
  mutable pos : Position.t;
  mutable parent : Link.info option;
  mutable left_child : Link.info option;
  mutable right_child : Link.info option;
  mutable left_adjacent : Link.info option;
  mutable right_adjacent : Link.info option;
  mutable left_table : Routing_table.t;
  mutable right_table : Routing_table.t;
  mutable range : Range.t;
  store : Sorted_store.t;
  mutable balance_backoff : int;
  mutable epoch : int;
  cache : Route_cache.t;
}

let create ~id ~pos ~range =
  {
    id;
    pos;
    parent = None;
    left_child = None;
    right_child = None;
    left_adjacent = None;
    right_adjacent = None;
    left_table = Routing_table.create pos `Left;
    right_table = Routing_table.create pos `Right;
    range;
    store = Sorted_store.create ();
    balance_backoff = 0;
    epoch = 0;
    cache = Route_cache.create ();
  }

let bump_epoch t = t.epoch <- t.epoch + 1

let set_range t range =
  if not (Range.equal t.range range) then begin
    t.range <- range;
    bump_epoch t
  end

let info t =
  {
    Link.peer = t.id;
    pos = t.pos;
    range = t.range;
    has_left_child = Option.is_some t.left_child;
    has_right_child = Option.is_some t.right_child;
  }

let level t = t.pos.Position.level
let is_root t = Position.is_root t.pos
let is_leaf t = Option.is_none t.left_child && Option.is_none t.right_child

let child t = function `Left -> t.left_child | `Right -> t.right_child

let set_child t side link =
  match side with
  | `Left -> t.left_child <- link
  | `Right -> t.right_child <- link

let adjacent t = function `Left -> t.left_adjacent | `Right -> t.right_adjacent

let set_adjacent t side link =
  match side with
  | `Left -> t.left_adjacent <- link
  | `Right -> t.right_adjacent <- link

let table t = function `Left -> t.left_table | `Right -> t.right_table

let tables_full t =
  Routing_table.is_full t.left_table && Routing_table.is_full t.right_table

let neighbor_entries t =
  Routing_table.entries t.left_table @ Routing_table.entries t.right_table

let load t = Sorted_store.length t.store

let reset_tables t =
  t.left_table <- Routing_table.create t.pos `Left;
  t.right_table <- Routing_table.create t.pos `Right

let map_link f = function
  | Some (info : Link.info) -> Some (f info)
  | None -> None

let update_links_for_peer t peer f =
  let refresh link =
    map_link (fun (i : Link.info) -> if i.Link.peer = peer then f i else i) link
  in
  t.parent <- refresh t.parent;
  t.left_child <- refresh t.left_child;
  t.right_child <- refresh t.right_child;
  t.left_adjacent <- refresh t.left_adjacent;
  t.right_adjacent <- refresh t.right_adjacent;
  Routing_table.update_peer t.left_table peer f;
  Routing_table.update_peer t.right_table peer f

let drop_links_for_peer t peer =
  let drop = function
    | Some (i : Link.info) when i.Link.peer = peer -> None
    | link -> link
  in
  t.parent <- drop t.parent;
  t.left_child <- drop t.left_child;
  t.right_child <- drop t.right_child;
  t.left_adjacent <- drop t.left_adjacent;
  t.right_adjacent <- drop t.right_adjacent;
  Routing_table.remove_peer t.left_table peer;
  Routing_table.remove_peer t.right_table peer

let pp fmt t =
  Format.fprintf fmt "node %d at %a range %a load %d %a %a" t.id Position.pp
    t.pos Range.pp t.range (load t) Routing_table.pp t.left_table
    Routing_table.pp t.right_table
