module Sorted_store = Baton_util.Sorted_store

type t = {
  id : int;
  mutable pos : Position.t;
  links : Link.info option array;
  mutable left_table : Routing_table.t;
  mutable right_table : Routing_table.t;
  mutable range : Range.t;
  store : Sorted_store.t;
  mutable balance_backoff : int;
  mutable epoch : int;
  cache : Route_cache.t;
}

let create ~id ~pos ~range =
  {
    id;
    pos;
    links = Array.make Link.num_kinds None;
    left_table = Routing_table.create pos `Left;
    right_table = Routing_table.create pos `Right;
    range;
    store = Sorted_store.create ();
    balance_backoff = 0;
    epoch = 0;
    cache = Route_cache.create ();
  }

let bump_epoch t = t.epoch <- t.epoch + 1

let set_range t range =
  if not (Range.equal t.range range) then begin
    t.range <- range;
    bump_epoch t
  end

let link t kind = Array.unsafe_get t.links (Link.kind_index kind)
let set_link t kind l = Array.unsafe_set t.links (Link.kind_index kind) l
let parent t = link t Link.Parent
let set_parent t l = set_link t Link.Parent l
let child t side = link t (Link.Child side)
let set_child t side l = set_link t (Link.Child side) l
let adjacent t side = link t (Link.Adjacent side)
let set_adjacent t side l = set_link t (Link.Adjacent side) l

let info t =
  {
    Link.peer = t.id;
    pos = t.pos;
    range = t.range;
    has_left_child = Option.is_some (child t `Left);
    has_right_child = Option.is_some (child t `Right);
  }

let level t = t.pos.Position.level
let is_root t = Position.is_root t.pos
let is_leaf t = Option.is_none (child t `Left) && Option.is_none (child t `Right)
let table t = function `Left -> t.left_table | `Right -> t.right_table

let tables_full t =
  Routing_table.is_full t.left_table && Routing_table.is_full t.right_table

let neighbor_entries t =
  Routing_table.entries t.left_table @ Routing_table.entries t.right_table

let load t = Sorted_store.length t.store

let reset_tables t =
  t.left_table <- Routing_table.create t.pos `Left;
  t.right_table <- Routing_table.create t.pos `Right

let update_links_for_peer t peer f =
  for i = 0 to Link.num_kinds - 1 do
    match Array.unsafe_get t.links i with
    | Some (l : Link.info) when l.Link.peer = peer ->
      Array.unsafe_set t.links i (Some (f l))
    | Some _ | None -> ()
  done;
  Routing_table.update_peer t.left_table peer f;
  Routing_table.update_peer t.right_table peer f

let drop_links_for_peer t peer =
  for i = 0 to Link.num_kinds - 1 do
    match Array.unsafe_get t.links i with
    | Some (l : Link.info) when l.Link.peer = peer ->
      Array.unsafe_set t.links i None
    | Some _ | None -> ()
  done;
  Routing_table.remove_peer t.left_table peer;
  Routing_table.remove_peer t.right_table peer

let pp fmt t =
  Format.fprintf fmt "node %d at %a range %a load %d %a %a" t.id Position.pp
    t.pos Range.pp t.range (load t) Routing_table.pp t.left_table
    Routing_table.pp t.right_table
