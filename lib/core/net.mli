(** The BATON network: peers, positions, and message plumbing.

    Holds the peer registry and the position map. The position map is
    the simulator's god view: it is consulted by invariant checks, by
    test oracles and by the repair path (where the paper's prose
    "children of nodes in its routing tables can help locate ..."
    abbreviates a lookup our protocols still pay messages for). Routing
    decisions in the protocols never read it — they use only node-local
    links, which can be stale. *)

type t

val create : ?seed:int -> domain:Range.t -> unit -> t
(** Empty network over the given key domain. *)

val bus : t -> Baton_sim.Bus.t
val metrics : t -> Baton_sim.Metrics.t
val rng : t -> Baton_util.Rng.t
val domain : t -> Range.t

val size : t -> int
(** Number of live (non-failed, registered) peers. *)

val fresh_id : t -> int
(** Allocate a new physical peer id. *)

val bootstrap : t -> Node.t
(** Create and register the first node (the initial root, owning the
    whole domain). @raise Invalid_argument if the network is not
    empty. *)

val register : t -> Node.t -> unit
(** Add a peer at its position.
    @raise Invalid_argument if id or position is taken. *)

val unregister : t -> Node.t -> unit
(** Remove a peer (graceful departure or completed repair). *)

val reposition : t -> Node.t -> Position.t -> unit
(** Move a peer to a new position in the position map and update
    [node.pos]. The caller is responsible for rebuilding links. *)

val peer : t -> int -> Node.t
(** @raise Not_found for unknown ids. Failed peers are still returned
    (their state exists; only the bus refuses messages to them). *)

val peer_opt : t -> int -> Node.t option
val peer_at : t -> Position.t -> Node.t option
val root : t -> Node.t option
val peers : t -> Node.t list
(** All registered peers, unspecified order. *)

val live_ids : t -> int array
(** Ids of registered, non-failed peers. *)

val random_peer : t -> Node.t
(** Uniformly random live peer — the issuer of a query in experiments.
    @raise Invalid_argument if the network is empty. *)

val send : t -> src:int -> dst:int -> kind:string -> Node.t
(** Account one protocol hop and return the destination's state (the
    simulator's stand-in for the remote peer processing the message).
    Under an installed fault model, a timed-out attempt is
    retransmitted up to {!retry_limit} times; every attempt is a
    counted message.
    @raise Baton_sim.Bus.Unreachable if the destination failed.
    @raise Baton_sim.Bus.Timeout if every attempt timed out. *)

val send_raw : t -> src:int -> dst:int -> kind:string -> unit
(** {!send} without the destination-state lookup — for handover
    messages to peers that are (legitimately) absent from the position
    map mid-protocol.
    @raise Baton_sim.Bus.Unreachable / [Timeout] as {!send}. *)

(** {1 Telemetry}

    An optional {!Baton_obs.Recorder} observes the network: bus hops
    arrive via a bus subscription, operation boundaries and
    retry/timeout events via the hooks below. The recorder is purely
    an observer — attaching one never sends a message, so
    [Metrics.total] is unchanged whether it is on or off. *)

val set_recorder : t -> Baton_obs.Recorder.t option -> unit
(** Install (attaching it to the bus) or remove the recorder. *)

val recorder : t -> Baton_obs.Recorder.t option

val with_op : t -> kind:string -> (unit -> 'a) -> 'a
(** Run [f] inside a recorded operation span of the given kind {e and}
    a causal trace episode (when a tracer is installed); a no-op
    wrapper when neither observer is present. Protocol entry points
    (search, join, leave, repair...) wrap themselves with this. *)

(** {1 Causal tracing}

    An optional {!Baton_obs.Trace} collector turns every operation run
    under {!with_op} into a causal tree: each transmitted message
    carries a {!Baton_sim.Bus.trace_ctx} naming the episode, its own
    span and the span that caused it. Like the recorder, the tracer is
    purely an observer — it sends nothing and consults no protocol
    PRNG, so same-seed runs count byte-identical [Metrics] with tracing
    on or off. *)

val set_tracer : t -> Baton_obs.Trace.t option -> unit
val tracer : t -> Baton_obs.Trace.t option

(** {1 Self-profiling}

    An optional {!Baton_obs.Profile} meters the {e simulator process}:
    wall-clock cost of the protocol hot regions and of bus delivery
    (via a {!Baton_sim.Bus.probe} this installs), GC pressure, raw
    event throughput. The mirror image of the recorder/tracer — it
    observes the machine, never the simulated world: probes send
    nothing, consult no PRNG and read no virtual clock, so same-seed
    runs count byte-identical [Metrics] and latency digests with
    profiling on or off (guard-tested). Its numbers are inherently
    non-deterministic and must stay out of seeded byte comparisons. *)

val set_profiler : t -> Baton_obs.Profile.t option -> unit
(** Install the profiler (wiring the bus delivery probe) or remove it
    (restoring the probe-free fast path). Detached by {!save} like
    every observer. *)

val profiler : t -> Baton_obs.Profile.t option

(** {1 Demand heat}

    An optional {!Baton_obs.Heat} instrument attributes every
    {e delivered} message to the peer that handled it: cache kinds
    ({!Msg.cache_kinds}) as [Aux], maintenance kinds
    ({!Msg.maint_kinds}) as [Maint], demand kinds (search, insert,
    delete) as [Route] — promoted to [Serve] by the protocol layer at
    the hop where the operation terminates — while accessed keys and
    ranges feed its heavy-hitter sketch and key-space histogram.
    Timed-out and unreachable attempts, and notifications to absent
    peers, are never attributed: nobody handled them. A fourth pure
    observer — it sends nothing and consults no protocol PRNG, so heat
    on vs. off leaves [Metrics.total] and the latency digests
    byte-identical (guard-tested). Detached by {!save} like every
    observer. *)

val set_heat : t -> Baton_obs.Heat.t option -> unit
val heat : t -> Baton_obs.Heat.t option

val heat_class : string -> Baton_obs.Heat.cls
(** Default heat class of a message kind (the class {!send} attributes
    a delivered message of that kind to, before any promotion). *)

val heat_serve : t -> peer:int -> kind:string -> unit
(** Promote one already-attributed hop of [kind]'s default class at
    [peer] to [Serve] — called by {!Search}/{!Update} where "this peer
    owns the answer" becomes known. A no-op without an instrument. *)

val heat_access : t -> peer:int -> int -> unit
(** Record demand for one key served at [peer] on the installed
    instrument (sketch + histogram + decayed counter); a no-op without
    one. *)

val heat_access_range : t -> peer:int -> lo:int -> hi:int -> unit
(** Record one range access (see {!Baton_obs.Heat.access_range}); a
    no-op without an instrument. *)

val profile : t -> string -> (unit -> 'a) -> 'a
(** [profile t name f] times [f] under the installed profiler's [name]
    region — just [f ()] when no profiler is installed. Used by the
    protocol hot paths ({!Search}, {!Restructure}, {!Failure}). *)

type trace_mark
(** Snapshot of the tracer's ambient causal state (open episode +
    current parent span). The concurrent runtime captures one at every
    fiber suspension point and reinstates it at resumption, so
    interleaved operations keep their causal trees separate. Opaque,
    and free when no tracer is installed. *)

val trace_mark : t -> trace_mark
val restore_trace_mark : t -> trace_mark -> unit

val link_kind : t -> src:int -> dst:int -> kind:string -> string
(** Classify which overlay link a hop travels
    ({!Msg.link_parent} … {!Msg.link_other}), from the sender's links
    as they currently stand. Exposed for the CLI's trace renderer. *)

val event : ?peer:int -> t -> string -> unit
(** Count one named simulator event in {!metrics} {e and} note it on
    the recorder's current span (when one is installed). *)

val obs_note : ?peer:int -> t -> string -> unit
(** Note an event on the recorder only (no metrics counter) — for
    observations that are already counted elsewhere. *)

(** {1 Hop suspension}

    The concurrent runtime ({!Baton_runtime}) installs a hook that is
    called after {e every} transmitted protocol message — each delivery
    and each timed-out attempt — so it can suspend the running
    operation until the engine's clock reaches the simulated delivery
    (or timeout-detection) instant. With no hook installed (the
    default, and the state restored by {!load}) operations run to
    completion synchronously, exactly as before the runtime existed.
    The hook observes and delays; it never sends, so installing it
    cannot change [Metrics.total]. *)

type hop_outcome =
  | Delivered  (** the destination received the message *)
  | Timed_out
      (** no answer will come — the message was lost, the destination
          is transiently silent, or it is permanently unreachable; the
          sender only learns this by waiting out its timeout *)

type hop_wait = src:int -> dst:int -> kind:string -> outcome:hop_outcome -> unit

val set_hop_wait : t -> hop_wait option -> unit
(** Install or remove the hop-suspension hook. The hook applies to
    request/response protocol hops ({!send} / {!send_raw});
    fire-and-forget {!notify} messages never block the sender and are
    not suspended on. *)

val hop_wait : t -> hop_wait option

val set_repair_serializer : t -> ((unit -> unit) -> unit) option -> unit
(** Install a critical section for suspicion-triggered repairs. Under
    the concurrent runtime several fibers can observe failures at once
    and each would start a structural repair; a workload harness
    installs its membership lock here so repairs serialize with each
    other and with joins/leaves. [None] (default) runs repairs inline —
    the synchronous behaviour. The installed closure is dropped by
    {!save}, like every observer. *)

val serialize_repair : t -> (unit -> unit) -> unit
(** Run a repair inside the installed critical section (inline when
    none is installed). Used by {!Failure}. *)

val set_retry_limit : t -> int -> unit
(** Retransmissions allowed per logical send (default 3). [0] disables
    retries. @raise Invalid_argument on negative values. *)

val retry_limit : t -> int

val suspect : t -> int -> int
(** File one suspicion observation against a peer and return its
    accumulated count. State only — the protocol reacting to the count
    lives in {!Failure}. *)

val clear_suspicion : t -> int -> unit

val set_suspicion_repair : t -> bool -> unit
(** Enable lazy, suspicion-driven repair: routing peers that observe
    enough timeouts (or an unreachable address) initiate the repair
    protocol themselves, with no help from the harness's god view.
    Off by default so quiescent-network experiments stay untouched. *)

val suspicion_repair : t -> bool

(** {1 Adaptive route cache}

    Off by default. When enabled, {!Search.exact} and {!Search.range}
    consult the querying peer's {!Route_cache} before tree routing and
    remember successful multi-hop destinations afterwards. Probe and
    invalidation traffic is counted on the bus under auxiliary kinds
    ({!Msg.cache_kinds}), so [Metrics.total] — the paper's metric — is
    byte-identical whether the cache is disabled or was never built. *)

val enable_route_cache : ?capacity:int -> t -> unit
(** Turn on route caching with the given per-peer LRU capacity
    (default 128). @raise Invalid_argument if [capacity <= 0]. *)

val disable_route_cache : t -> unit
(** Turn off route caching and flush every peer's cache, restoring
    behaviour identical to a network where the cache never existed. *)

val route_cache_enabled : t -> bool
val route_cache_capacity : t -> int option

val notify :
  ?expect_pos:Position.t ->
  t -> src:int -> dst:int -> kind:string -> (Node.t -> unit) -> unit
(** A one-way cache-refresh message: account the hop and apply the
    update at the destination. Under {!set_defer}, the send and the
    update are postponed until {!flush_deferred} — this is the staleness
    window of the network-dynamics experiment. Notifications to peers
    that meanwhile failed or left are dropped silently, as are
    notifications whose target no longer occupies [expect_pos] (its
    role changed, so the update no longer concerns it). *)

val set_defer : t -> bool -> unit
val deferring : t -> bool

val flush_deferred : t -> unit
(** Deliver all postponed notifications, in send order. *)

val record_shift : t -> int -> unit
(** Record the size of a restructuring shift (for Figure 8(h)). *)

exception Incompatible_snapshot of { found : string; expected : string }
(** The file is a BATON snapshot from a different format version —
    structurally unreadable by this build; regenerate it. *)

val save : t -> string -> unit
(** Snapshot the whole network (peers, positions, data, counters, PRNG
    state) to a file, so an expensive build can be reused across runs.
    The network must be quiescent: deferred notifications pending from
    {!set_defer} cannot be serialised. Observers (recorder, tracer,
    profiler, heat, hop-wait hook, bus subscribers) hold closures and are detached
    before marshalling; on success they stay detached, but if the save
    fails they are all reattached before the exception escapes.
    @raise Invalid_argument if deferred notifications are pending. *)

val load : string -> t
(** Restore a network saved by {!save}. The loaded network continues
    deterministically: running the same operations on the original and
    the restored network yields identical results and message counts.
    @raise Incompatible_snapshot if the file is a BATON snapshot of a
    different format version.
    @raise Failure if the file is not a BATON snapshot at all. *)

val shift_histogram : t -> Baton_util.Histogram.t
