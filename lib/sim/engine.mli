(** Discrete-event simulation engine.

    Drives a virtual clock and a queue of thunks. Components schedule
    callbacks at future virtual times; [run] executes them in timestamp
    order. Used to model delivery latency of routing-table update
    notifications in the network-dynamics experiment, and churn
    schedules in examples. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

type probe = { before : unit -> unit; after : unit -> unit }
(** Dispatch probe: [before] runs as an event is popped, [after] when
    its callback returns (or raises). Installed by the self-profiler to
    meter wall-clock dispatch cost and event throughput; must be a pure
    observer — it runs inside the hot loop and anything it does to the
    simulated world perturbs every seeded comparison. *)

val set_probe : t -> probe option -> unit
(** Install or remove the dispatch probe ([None] — the default — costs
    one match per event). *)

val probe : t -> probe option

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at virtual time [now t +. delay].
    [delay] must be non-negative. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; [time] must not be in the past. *)

val every : t -> period:float -> (unit -> bool) -> unit
(** [every t ~period f] runs [f] one period from now and keeps
    rescheduling it every [period] for as long as it returns [true] —
    the self-rescheduling tick pattern used by periodic observers
    (health monitor) and scenario heartbeats.
    @raise Invalid_argument if [period <= 0]. *)

val pending : t -> int
(** Number of events not yet executed. *)

val step : t -> bool
(** Execute the earliest pending event, advancing the clock. Returns
    [false] if the queue was empty. *)

val run : t -> unit
(** Execute events until the queue is empty. Events may schedule more
    events. *)

val run_until : t -> float -> unit
(** Execute all events with timestamp <= the given horizon, then set
    the clock to the horizon. *)
