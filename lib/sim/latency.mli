(** Per-link latency model.

    The paper measures message counts only; this model converts hop
    traces into wall-clock-style operation latencies so experiments can
    also report latency distributions. Each ordered peer pair gets a
    deterministic latency drawn once from a heavy-tailed distribution
    (a base RTT plus exponential jitter) — the same pair always costs
    the same, as on a real topology where peers have fixed network
    distance. *)

type t

val create : ?seed:int -> ?base_ms:float -> ?jitter_ms:float -> unit -> t
(** [base_ms] (default 20.) is the minimum one-way latency; the jitter
    adds an exponential tail with the given mean (default 60.). *)

val of_pair : t -> src:int -> dst:int -> float
(** One-way latency in milliseconds for this ordered pair.
    Deterministic: repeated calls return the same value. *)

val measure : t -> Bus.t -> (unit -> 'a) -> 'a * float
(** [measure t bus f] runs [f], capturing every message it sends on
    [bus] via the trace hook, and returns its result with the summed
    latency of the hop chain. Restores any previous trace hook
    afterwards.

    This is the {e serial hop sum}: it charges every transmitted
    message as if the operation were one sequential RPC chain. That is
    exact for exact-match search, insert, delete, join and leave,
    which really are sequential chains — but an upper bound for
    operations with independent branches, such as a range query's two
    directional sweeps, whose true end-to-end latency is the {e
    critical path} (longest dependency chain), not the sum. To measure
    critical paths, run the operation on the concurrent runtime
    ([Baton_runtime.Runtime], which suspends at each hop and overlaps
    independent work on the virtual clock, using this same model for
    per-hop delays); the message counts are identical either way —
    see DESIGN.md §3.7. *)
