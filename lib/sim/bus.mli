(** Simulated message bus.

    Peers are identified by small integers. A protocol hop from [src]
    to [dst] is accounted by {!send}; if the destination has been
    failed via {!fail}, the send raises {!Unreachable} — exactly how a
    live peer discovers a dead one in the paper (Section III-C: "some
    nodes wishing to access the departed node will discover the address
    unreachable"). The bus never routes anything itself: routing is the
    job of the overlay protocols built on top.

    An optional, seeded fault model adds two weaker failure modes on
    top of permanent crashes: probabilistic message loss and transient
    (temporarily unresponsive) peers. Both surface as {!Timeout} — the
    sender cannot tell a lost message from a slow peer, only that no
    answer came back in time — and both are deterministic per fault
    seed, so faulty runs replay exactly. *)

type t

exception Unreachable of int
(** Raised by {!send} when the destination peer is permanently failed.
    Carries the failed peer id. *)

exception Timeout of int
(** Raised by {!send} when the fault model loses the message or the
    destination is transiently unresponsive. The message was
    transmitted (and counted); no answer will come. Carries the
    destination peer id. *)

type fault_config = {
  drop_rate : float;  (** per-message loss probability in [\[0, 1\]] *)
  transient_rate : float;
      (** per-message probability that the destination goes silent *)
  transient_len : int;
      (** messages a freshly silent peer ignores (including this one) *)
}

val drop_event : string
(** {!Metrics.event} name bumped on every lost message. *)

val transient_event : string
(** {!Metrics.event} name bumped on every message a transiently
    unresponsive peer ignores. *)

val partition_event : string
(** {!Metrics.event} name bumped on every message a network partition
    blocks. *)

val gray_event : string
(** {!Metrics.event} name bumped on every message lost to a gray
    peer's degraded links. *)

val create : unit -> t

val metrics : t -> Metrics.t
(** The accounting sink for this bus. *)

type trace_ctx = {
  trace : int;  (** trace (operation-episode) id *)
  span : int;  (** this message's own span id *)
  parent : int;  (** span id of the causing message, [-1] at the root *)
  op : string;  (** kind of the operation that originated the episode *)
}
(** Causal trace context carried by a message (Dapper-style). The bus
    only transports it: allocation, causality bookkeeping and analysis
    live in [Baton_obs.Trace]. Carrying a context is free — it changes
    neither accounting nor the fault model, so traced and untraced runs
    of the same seed count identical messages. *)

val send : ?ctx:trace_ctx -> t -> src:int -> dst:int -> kind:string -> unit
(** Account one message. Self-sends ([src = dst]) are free: a node
    consulting its own state passes no network message. Messages to
    failed peers are still counted — they are transmitted, and the
    missing answer is how the sender discovers the failure. When [ctx]
    is given, the message carries that causal trace context; hop
    subscribers can read it via {!sending_ctx} while their hook runs.
    @raise Unreachable if [dst] is permanently failed.
    @raise Timeout if the fault model drops the message or [dst] is
    transiently unresponsive. *)

val sending_ctx : t -> trace_ctx option
(** The trace context of the message currently passing through {!send}
    — [Some] only while hop hooks run for a message that carries one. *)

val set_faults :
  t ->
  ?transient_len:int ->
  seed:int ->
  drop_rate:float ->
  transient_rate:float ->
  unit ->
  unit
(** Install (or replace) the fault model. The fault PRNG is seeded
    independently of every other stream so the same seed yields the
    same drop/stun sequence for the same order of sends.
    [transient_len] defaults to 2.
    @raise Invalid_argument on rates outside [\[0, 1\]] or
    [transient_len < 1]. *)

val clear_faults : t -> unit
(** Remove the fault model; sends become reliable again. *)

val faults_enabled : t -> bool

val fault_config : t -> fault_config option

val stun : t -> int -> msgs:int -> unit
(** Force a peer to ignore its next [msgs] incoming messages —
    deterministic transient-failure injection for tests.
    @raise Invalid_argument if no fault model is installed. *)

(** {1 Network partitions}

    A partition assigns peers to islands and blocks messages between
    chosen ordered island pairs; a blocked send surfaces as {!Timeout}
    (the sender cannot tell a partition from loss). Blocking an ordered
    pair [(i, j)] stops traffic {e from} island [i] {e to} island [j]
    only, so asymmetric (one-way) partitions are expressible. Peers not
    assigned to any island — e.g. joined while the partition was up —
    are reachable from everywhere. Partition state is plain data and
    survives marshalling. *)

val set_partition :
  t -> assign:(int * int) list -> blocked:(int * int) list -> unit
(** [set_partition t ~assign ~blocked] installs (or replaces) a
    partition. [assign] maps peer id to island index; [blocked] lists
    ordered island pairs [(src_island, dst_island)] that cannot
    communicate. *)

val clear_partition : t -> unit
(** Heal the partition; island assignments are discarded. *)

val partition_active : t -> bool

val partition_blocked : t -> src:int -> dst:int -> bool
(** Would a message from [src] to [dst] be blocked right now? *)

(** {1 Gray failures}

    Gray peers are never declared dead: their links silently degrade
    instead. Each gray peer carries an extra per-message drop
    probability (applied to any hop touching it, surfacing as
    {!Timeout} and counted under {!gray_event}) and a latency
    multiplier that {!latency_factor} reports for the runtime's
    delivery clock. Gray drops draw from a dedicated seeded PRNG, so
    installing gray peers never perturbs the base fault model's
    drop/stun sequence. *)

val set_gray_model : t -> seed:int -> unit
(** Install (or reset) the gray-failure model with its own PRNG. *)

val clear_gray_model : t -> unit

val set_gray_peer : t -> int -> extra_drop:float -> slow:float -> unit
(** Mark a peer gray: hops touching it are additionally dropped with
    probability [extra_drop] and slowed by factor [slow] (>= 1).
    @raise Invalid_argument without a gray model, on [extra_drop]
    outside [\[0, 1\]], or [slow < 1]. *)

val clear_gray_peer : t -> int -> unit
(** Restore a peer to full health (no-op when not gray). *)

val gray_count : t -> int
val is_gray : t -> int -> bool

val latency_factor : t -> src:int -> dst:int -> float
(** Delivery-latency multiplier for a hop: the worse of the two
    endpoints' slowdown factors, [1.0] when neither is gray. *)

val fail : t -> int -> unit
(** Mark a peer as failed (crashed / abruptly departed). Clears any
    pending transient stun — the crash supersedes it. *)

val revive : t -> int -> unit
(** Clear the failed mark (peer re-joins with a fresh role). Also
    clears any stun left from before the crash, so a revived id never
    silently ignores its first messages. *)

val is_failed : t -> int -> bool

val failed_count : t -> int

(** {1 Hop-trace subscriptions}

    Any number of observers (latency measurement, CLI tracing, the
    {!Baton_obs} telemetry recorder) can watch the bus at once. Each
    {!subscribe} returns a token; {!unsubscribe} removes only that
    hook, so independent observers compose instead of clobbering each
    other. Hooks run in subscription order, after the message is
    counted and before any failure outcome is decided, so every
    observer sees every transmitted message. *)

type hop_hook = src:int -> dst:int -> kind:string -> unit

type subscription

val subscribe : t -> hop_hook -> subscription
(** Install a hook observing every accounted message. *)

val unsubscribe : t -> subscription -> unit
(** Remove one previously installed hook; unknown tokens are ignored. *)

val subscriber_count : t -> int

val clear_subscribers : t -> unit
(** Remove every hook — required before marshalling the bus, since
    closures cannot be serialized. *)

(** {1 Delivery probe}

    One wall-clock probe bracketing every transit of {!send} (metrics
    accounting, subscriber hooks, fault layers) — the self-profiler's
    ["bus.delivery"] meter. Unlike subscribers it also wraps the
    failure outcomes: [after] runs whether the send delivers, times
    out, or finds the peer dead. Must be a pure observer, and — like
    subscribers — must be removed before the bus is marshalled. *)

type probe = { before : unit -> unit; after : unit -> unit }

val set_probe : t -> probe option -> unit
val probe : t -> probe option
