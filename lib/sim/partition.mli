(** Adversarial scenario engine: scheduled, correlated fault injection.

    {!Bus}'s fault model degrades messages independently; real outages
    are correlated. This module schedules three such episode shapes on
    the simulation {!Engine}:

    - {e partitions}: the live peers, in key order, are cut into [k]
      contiguous islands that cannot exchange messages for a window,
      then heal. Symmetric by default; [oneway] blocks only
      higher-island to lower-island traffic (asymmetric reachability,
      as under unidirectional link failure).
    - {e subtree crashes}: an internal node is sampled and its entire
      subtree killed at one instant — the paper's failure model made
      correlated, as when a rack or site dies.
    - {e gray failures}: sampled peers get an elevated drop rate and a
      latency multiplier for a window, without ever being declared
      dead — the classic slow-node pathology failure detectors miss.

    Everything is driven from a declarative, seeded {!schedule}, so an
    adversarial run is a pure function of (schedule, seed): two
    same-seed executions are byte-identical. The module knows nothing
    about the overlay; the caller supplies {!hooks} that answer
    membership questions and perform crashes. *)

module Rng := Baton_util.Rng

type spec =
  | Partition of { at : float; duration : float; k : int; oneway : bool }
  | Subtree_crash of { at : float; roots : int }
  | Gray of {
      at : float;
      duration : float;
      peers : int;
      extra_drop : float;
      slow : float;
    }

type schedule = spec list

val parse : string -> (schedule, string) result
(** Parse the CLI fault-schedule grammar: [";"]-separated entries of
    [partition@AT+DUR:k=K[,oneway]], [subtree@AT[:roots=R]] and
    [gray@AT+DUR:peers=P[,drop=D][,slow=S]], times in virtual
    milliseconds. Example:
    ["partition@2000+3000:k=2;subtree@6000;gray@1000+5000:peers=5,drop=0.3"]. *)

val to_string : schedule -> string
(** Canonical textual form; [parse] round-trips it. *)

val default_gray_drop : float
val default_gray_slow : float

val islands : order:int array -> k:int -> (int * int) list
(** [(peer, island)] assignment cutting the ordered peer list into [k]
    contiguous chunks. @raise Invalid_argument if [k < 2]. *)

val blocked_pairs : k:int -> oneway:bool -> (int * int) list
(** The ordered island pairs a partition blocks: all [(i, j)], [i <> j]
    when symmetric; only [i > j] when [oneway]. *)

type hooks = {
  peers_in_order : unit -> int array;
      (** live peer ids in ascending key-space order; must be a
          deterministic function of the network state *)
  pick_subtree : Rng.t -> int array;
      (** sample one correlated victim group (an internal node's whole
          subtree) using the supplied scenario PRNG *)
  crash : int -> unit;  (** abruptly kill one peer *)
  note : string -> unit;
      (** lifecycle breadcrumb (pure observer: must not send) *)
}

val install :
  bus:Bus.t -> engine:Engine.t -> seed:int -> hooks:hooks -> schedule -> unit
(** Translate the schedule into engine events. Island membership and
    victim groups are sampled when each episode {e fires}, from the
    then-live peers. Installs a gray model on the bus iff the schedule
    contains a [Gray] spec. Per-spec PRNGs are pre-seeded in schedule
    order, so extending a schedule does not reshuffle the randomness of
    existing episodes. *)
