type t = {
  mutable total : int;
  mutable aux_total : int;
  aux_kinds : (string, unit) Hashtbl.t;
  by_kind : (string, int ref) Hashtbl.t;
  by_node : (int, int ref) Hashtbl.t;
  by_node_kind : (int * string, int ref) Hashtbl.t;
  by_event : (string, int ref) Hashtbl.t;
}

let create () =
  {
    total = 0;
    aux_total = 0;
    aux_kinds = Hashtbl.create 8;
    by_kind = Hashtbl.create 32;
    by_node = Hashtbl.create 1024;
    by_node_kind = Hashtbl.create 1024;
    by_event = Hashtbl.create 32;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let mark_aux t kind =
  if not (Hashtbl.mem t.aux_kinds kind) then Hashtbl.add t.aux_kinds kind ()

let is_aux t kind = Hashtbl.mem t.aux_kinds kind

let record t ~dst ~kind =
  if Hashtbl.mem t.aux_kinds kind then t.aux_total <- t.aux_total + 1
  else t.total <- t.total + 1;
  bump t.by_kind kind;
  bump t.by_node dst;
  bump t.by_node_kind (dst, kind)

let total t = t.total
let aux_total t = t.aux_total

let event t name = bump t.by_event name

let find tbl key = match Hashtbl.find_opt tbl key with Some r -> !r | None -> 0

let kind_count t kind = find t.by_kind kind
let node_count t node = find t.by_node node
let node_kind_count t node kind = find t.by_node_kind (node, kind)

let event_count t name = find t.by_event name

let kinds t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.by_kind []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let events t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.by_event []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let per_node t =
  Hashtbl.fold (fun n r acc -> (n, !r) :: acc) t.by_node []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset t =
  t.total <- 0;
  t.aux_total <- 0;
  Hashtbl.reset t.by_kind;
  Hashtbl.reset t.by_node;
  Hashtbl.reset t.by_node_kind;
  Hashtbl.reset t.by_event

type checkpoint = {
  at_total : int;
  at_aux : int;
  kind_snapshot : (string * int) list;
  event_snapshot : (string * int) list;
}

let checkpoint t =
  {
    at_total = t.total;
    at_aux = t.aux_total;
    kind_snapshot = kinds t;
    event_snapshot = events t;
  }

let since t cp = t.total - cp.at_total
let aux_since t cp = t.aux_total - cp.at_aux

let kind_since t cp kind =
  let before =
    match List.assoc_opt kind cp.kind_snapshot with Some n -> n | None -> 0
  in
  kind_count t kind - before

let event_since t cp name =
  let before =
    match List.assoc_opt name cp.event_snapshot with Some n -> n | None -> 0
  in
  event_count t name - before
