(* Per-kind statistics: the total for the kind plus a dense per-node
   breakdown, so recording one message touches one hash lookup (by the
   kind string) and two array cells instead of three hashtable probes
   (by_kind, by_node and a boxed (node, kind) tuple key). Peer ids are
   dense small ints (handed out by the network's fresh_id counter), so
   an array indexed by id is both the fastest and the smallest map. *)
type kind_stat = { mutable count : int; mutable per_node : int array }

type t = {
  mutable total : int;
  mutable aux_total : int;
  aux_kinds : (string, unit) Hashtbl.t;
  by_kind : (string, kind_stat) Hashtbl.t;
  mutable by_node : int array;
  by_event : (string, int ref) Hashtbl.t;
}

let create () =
  {
    total = 0;
    aux_total = 0;
    aux_kinds = Hashtbl.create 8;
    by_kind = Hashtbl.create 32;
    by_node = [||];
    by_event = Hashtbl.create 32;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

(* A zero-filled counter array covering index [i], grown by doubling
   from the old one. *)
let grown old i =
  let cap = max 64 (max (i + 1) (2 * Array.length old)) in
  let a = Array.make cap 0 in
  Array.blit old 0 a 0 (Array.length old);
  a

let mark_aux t kind =
  if not (Hashtbl.mem t.aux_kinds kind) then Hashtbl.add t.aux_kinds kind ()

let is_aux t kind = Hashtbl.mem t.aux_kinds kind

let record t ~dst ~kind =
  if Hashtbl.mem t.aux_kinds kind then t.aux_total <- t.aux_total + 1
  else t.total <- t.total + 1;
  let stat =
    match Hashtbl.find_opt t.by_kind kind with
    | Some s -> s
    | None ->
      let s = { count = 0; per_node = [||] } in
      Hashtbl.add t.by_kind kind s;
      s
  in
  stat.count <- stat.count + 1;
  if dst >= Array.length stat.per_node then
    stat.per_node <- grown stat.per_node dst;
  Array.unsafe_set stat.per_node dst (Array.unsafe_get stat.per_node dst + 1);
  if dst >= Array.length t.by_node then t.by_node <- grown t.by_node dst;
  Array.unsafe_set t.by_node dst (Array.unsafe_get t.by_node dst + 1)

let total t = t.total
let aux_total t = t.aux_total

let event t name = bump t.by_event name

let find tbl key = match Hashtbl.find_opt tbl key with Some r -> !r | None -> 0

let kind_count t kind =
  match Hashtbl.find_opt t.by_kind kind with Some s -> s.count | None -> 0

let node_count t node =
  if node >= 0 && node < Array.length t.by_node then t.by_node.(node) else 0

let node_kind_count t node kind =
  match Hashtbl.find_opt t.by_kind kind with
  | Some s when node >= 0 && node < Array.length s.per_node -> s.per_node.(node)
  | Some _ | None -> 0

let event_count t name = find t.by_event name

let kinds t =
  Hashtbl.fold (fun k (s : kind_stat) acc -> (k, s.count) :: acc) t.by_kind []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let events t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.by_event []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Only touched nodes appear, in id order — the same view the sparse
   hashtable produced. *)
let per_node t =
  let acc = ref [] in
  for n = Array.length t.by_node - 1 downto 0 do
    if t.by_node.(n) > 0 then acc := (n, t.by_node.(n)) :: !acc
  done;
  !acc

let reset t =
  t.total <- 0;
  t.aux_total <- 0;
  Hashtbl.reset t.by_kind;
  t.by_node <- [||];
  Hashtbl.reset t.by_event

type checkpoint = {
  at_total : int;
  at_aux : int;
  kind_snapshot : (string * int) list;
  event_snapshot : (string * int) list;
}

let checkpoint t =
  {
    at_total = t.total;
    at_aux = t.aux_total;
    kind_snapshot = kinds t;
    event_snapshot = events t;
  }

let since t cp = t.total - cp.at_total
let aux_since t cp = t.aux_total - cp.at_aux

let kind_since t cp kind =
  let before =
    match List.assoc_opt kind cp.kind_snapshot with Some n -> n | None -> 0
  in
  kind_count t kind - before

let event_since t cp name =
  let before =
    match List.assoc_opt name cp.event_snapshot with Some n -> n | None -> 0
  in
  event_count t name - before
