(* Adversarial scenario engine: scheduled, correlated fault injection.

   The fault model in [Bus] degrades individual messages
   independently; real outages are correlated — a switch dies and an
   entire rack vanishes, a WAN link flaps and the overlay splits into
   islands, a sick NIC slows a peer without killing it. This module
   turns a declarative, seeded schedule of such episodes into engine
   events, so an adversarial run is a pure function of (schedule,
   seed) and two same-seed executions are byte-identical.

   The module is deliberately protocol-agnostic: it speaks only peer
   ids, via a [hooks] record the caller (the workload driver) fills in.
   Island membership is computed from the live peers *at the instant
   the fault fires*, in key order, so islands are contiguous in the key
   space — the hardest case for a range query, which must cross every
   cut. *)

module Rng = Baton_util.Rng

type spec =
  | Partition of { at : float; duration : float; k : int; oneway : bool }
  | Subtree_crash of { at : float; roots : int }
  | Gray of {
      at : float;
      duration : float;
      peers : int;
      extra_drop : float;
      slow : float;
    }

type schedule = spec list

(* --- Parsing -------------------------------------------------------

   Grammar (";"-separated entries):
     partition@AT+DUR:k=K[,oneway]
     subtree@AT[:roots=R]
     gray@AT+DUR:peers=P[,drop=D][,slow=S]
   Times in virtual milliseconds. *)

let default_gray_drop = 0.25
let default_gray_slow = 4.

let spec_error fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_window s =
  (* "AT+DUR" -> (at, dur); "AT" alone -> (at, 0.) *)
  match String.split_on_char '+' s with
  | [ at ] -> (
    match float_of_string_opt at with
    | Some at when at >= 0. -> Ok (at, 0.)
    | _ -> spec_error "bad time %S" s)
  | [ at; dur ] -> (
    match (float_of_string_opt at, float_of_string_opt dur) with
    | Some at, Some dur when at >= 0. && dur > 0. -> Ok (at, dur)
    | _ -> spec_error "bad window %S" s)
  | _ -> spec_error "bad window %S" s

let parse_params s =
  (* "k=2,oneway" -> [("k", "2"); ("oneway", "")] *)
  if String.equal s "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
             (String.sub kv 0 i, String.sub kv (i + 1) (String.length kv - i - 1))
           | None -> (kv, ""))

let parse_entry entry =
  let head, params =
    match String.index_opt entry ':' with
    | Some i ->
      ( String.sub entry 0 i,
        parse_params (String.sub entry (i + 1) (String.length entry - i - 1)) )
    | None -> (entry, [])
  in
  let name, window =
    match String.index_opt head '@' with
    | Some i ->
      (String.sub head 0 i, String.sub head (i + 1) (String.length head - i - 1))
    | None -> (head, "")
  in
  let param key = List.assoc_opt key params in
  let int_param key ~default =
    match param key with
    | None -> Ok default
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> Ok n
      | _ -> spec_error "%s: bad %s=%S" name key v)
  in
  let float_param key ~default =
    match param key with
    | None -> Ok default
    | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> spec_error "%s: bad %s=%S" name key v)
  in
  let ( let* ) = Result.bind in
  let* at, duration = parse_window window in
  match name with
  | "partition" ->
    if duration <= 0. then spec_error "partition needs a window: partition@AT+DUR"
    else
      let* k = int_param "k" ~default:2 in
      if k < 2 then spec_error "partition: k < 2"
      else Ok (Partition { at; duration; k; oneway = param "oneway" <> None })
  | "subtree" ->
    let* roots = int_param "roots" ~default:1 in
    Ok (Subtree_crash { at; roots })
  | "gray" ->
    if duration <= 0. then spec_error "gray needs a window: gray@AT+DUR"
    else
      let* peers = int_param "peers" ~default:3 in
      let* extra_drop = float_param "drop" ~default:default_gray_drop in
      let* slow = float_param "slow" ~default:default_gray_slow in
      if extra_drop < 0. || extra_drop > 1. then spec_error "gray: drop outside [0, 1]"
      else if slow < 1. then spec_error "gray: slow < 1"
      else Ok (Gray { at; duration; peers; extra_drop; slow })
  | other -> spec_error "unknown fault %S (partition|subtree|gray)" other

let parse s =
  let entries =
    String.split_on_char ';' s |> List.map String.trim
    |> List.filter (fun e -> not (String.equal e ""))
  in
  if entries = [] then Error "empty fault schedule"
  else
    List.fold_right
      (fun entry acc ->
        match (parse_entry entry, acc) with
        | Ok spec, Ok specs -> Ok (spec :: specs)
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e)
      entries (Ok [])

let float_repr f =
  (* Shortest lossless decimal, matching Json.Float's convention. *)
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let spec_to_string = function
  | Partition { at; duration; k; oneway } ->
    Printf.sprintf "partition@%s+%s:k=%d%s" (float_repr at) (float_repr duration)
      k
      (if oneway then ",oneway" else "")
  | Subtree_crash { at; roots } ->
    Printf.sprintf "subtree@%s:roots=%d" (float_repr at) roots
  | Gray { at; duration; peers; extra_drop; slow } ->
    Printf.sprintf "gray@%s+%s:peers=%d,drop=%s,slow=%s" (float_repr at)
      (float_repr duration) peers (float_repr extra_drop) (float_repr slow)

let to_string schedule = String.concat ";" (List.map spec_to_string schedule)

(* --- Island assignment --------------------------------------------- *)

let islands ~order ~k =
  if k < 2 then invalid_arg "Partition.islands: k < 2";
  let n = Array.length order in
  (* Contiguous chunks of the key-ordered peer list: ceil-sized heads
     so every island is populated whenever n >= k. *)
  List.init n (fun i -> (order.(i), i * k / n))

let blocked_pairs ~k ~oneway =
  let pairs = ref [] in
  for i = k - 1 downto 0 do
    for j = k - 1 downto 0 do
      if i <> j && ((not oneway) || i > j) then pairs := (i, j) :: !pairs
    done
  done;
  !pairs

(* --- Engine installation ------------------------------------------- *)

type hooks = {
  peers_in_order : unit -> int array;
      (* live peer ids, ascending key-space order — must be
         deterministic for a given network state *)
  pick_subtree : Rng.t -> int array;
      (* ids of a correlated victim group: an internal node's whole
         subtree, sampled with the scenario PRNG *)
  crash : int -> unit; (* kill one peer, abruptly *)
  note : string -> unit; (* scenario lifecycle breadcrumb (observer) *)
}

let install ~bus ~engine ~seed ~hooks schedule =
  let rng = Rng.create seed in
  (* Pre-drawn per-spec seeds, in schedule order, so adding one episode
     never reshuffles the randomness of the others. *)
  let sub_seed = List.map (fun spec -> (spec, Rng.int rng 0x3FFFFFFF)) schedule in
  if List.exists (function Gray _ -> true | _ -> false) schedule then
    Bus.set_gray_model bus ~seed:(Rng.int rng 0x3FFFFFFF);
  List.iter
    (fun (spec, seed) ->
      match spec with
      | Partition { at; duration; k; oneway } ->
        Engine.schedule_at engine ~time:at (fun () ->
            let order = hooks.peers_in_order () in
            if Array.length order >= k then begin
              Bus.set_partition bus ~assign:(islands ~order ~k)
                ~blocked:(blocked_pairs ~k ~oneway);
              hooks.note
                (Printf.sprintf "partition: %d islands%s for %s ms" k
                   (if oneway then " (one-way)" else "")
                   (float_repr duration))
            end);
        Engine.schedule_at engine ~time:(at +. duration) (fun () ->
            if Bus.partition_active bus then begin
              Bus.clear_partition bus;
              hooks.note "partition healed"
            end)
      | Subtree_crash { at; roots } ->
        let srng = Rng.create seed in
        Engine.schedule_at engine ~time:at (fun () ->
            for _ = 1 to roots do
              let victims = hooks.pick_subtree srng in
              Array.iter hooks.crash victims;
              hooks.note
                (Printf.sprintf "subtree crash: %d peers"
                   (Array.length victims))
            done)
      | Gray { at; duration; peers; extra_drop; slow } ->
        let srng = Rng.create seed in
        Engine.schedule_at engine ~time:at (fun () ->
            let order = Array.copy (hooks.peers_in_order ()) in
            Rng.shuffle srng order;
            let count = min peers (Array.length order) in
            let chosen = Array.sub order 0 count in
            Array.iter
              (fun id -> Bus.set_gray_peer bus id ~extra_drop ~slow)
              chosen;
            hooks.note (Printf.sprintf "gray: %d peers degraded" count);
            Engine.schedule engine ~delay:duration (fun () ->
                Array.iter (fun id -> Bus.clear_gray_peer bus id) chosen;
                hooks.note "gray peers recovered")))
    sub_seed
