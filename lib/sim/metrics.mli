(** Message accounting.

    The paper's sole performance metric is the number of passing
    messages (Section V). Every protocol hop in this reproduction is
    recorded here, tagged with a message kind and the processing node,
    so experiments can report totals, per-kind breakdowns (join search
    vs. routing-table update vs. query ...), and per-node access load
    (Figure 8(f)). *)

type t

val create : unit -> t

val record : t -> dst:int -> kind:string -> unit
(** Count one message of the given kind processed by node [dst]. *)

val total : t -> int
(** All messages recorded so far, excluding kinds marked auxiliary with
    {!mark_aux}. Operation costs are measured as deltas of this
    counter. *)

val mark_aux : t -> string -> unit
(** Declare a message kind auxiliary: messages of that kind still pay
    their way on the bus (per-kind and per-node breakdowns include
    them) but accumulate in {!aux_total} instead of {!total}, so
    overlay extensions such as the route cache never perturb the
    paper's metric. *)

val is_aux : t -> string -> bool
(** Whether a kind was marked auxiliary. *)

val aux_total : t -> int
(** All auxiliary messages recorded so far. *)

val kind_count : t -> string -> int
(** Messages recorded under a kind (0 if none). *)

val node_count : t -> int -> int
(** Messages processed by a node (0 if none). *)

val node_kind_count : t -> int -> string -> int
(** Messages of one kind processed by one node. *)

val kinds : t -> (string * int) list
(** All (kind, count) pairs, sorted by kind. *)

val per_node : t -> (int * int) list
(** All (node, messages processed) pairs, sorted by node id — the raw
    material for access-load skew analysis (Figure 8(f)). *)

val event : t -> string -> unit
(** Count one named simulator event. Events are everything worth
    observing that is {e not} a passing message — lost or stale
    deliveries, retransmissions, suspicion reports — so they never
    perturb {!total}, the paper's metric. *)

val event_count : t -> string -> int
(** Occurrences of a named event (0 if none). *)

val events : t -> (string * int) list
(** All (event, count) pairs, sorted by name. *)

val reset : t -> unit
(** Zero every counter. *)

type checkpoint

val checkpoint : t -> checkpoint
(** Snapshot of the total counter. *)

val since : t -> checkpoint -> int
(** Messages recorded since the checkpoint. *)

val aux_since : t -> checkpoint -> int
(** Auxiliary messages recorded since the checkpoint. *)

val kind_since : t -> checkpoint -> string -> int
(** Messages of one kind recorded since the checkpoint. *)

val event_since : t -> checkpoint -> string -> int
(** Occurrences of one event recorded since the checkpoint. *)
