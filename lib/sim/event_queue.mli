(** Priority queue of timestamped events.

    An implicit 4-ary min-heap over parallel arrays, ordered by
    (time, insertion sequence): events scheduled for the same instant
    are delivered in FIFO order, which keeps simulations
    deterministic. Since the sequence number makes the ordering key
    total, the heap arity is unobservable — any min-heap pops the
    same schedule. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Schedule an event. O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, or [None] if empty. Ties are
    broken by insertion order. O(log n). *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val clear : 'a t -> unit
