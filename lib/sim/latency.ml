module Rng = Baton_util.Rng

type t = {
  base_ms : float;
  jitter_ms : float;
  seed : int;
  cache : (int * int, float) Hashtbl.t;
}

let create ?(seed = 7) ?(base_ms = 20.) ?(jitter_ms = 60.) () =
  if base_ms < 0. || jitter_ms < 0. then invalid_arg "Latency.create: negative latency";
  { base_ms; jitter_ms; seed; cache = Hashtbl.create 4096 }

let of_pair t ~src ~dst =
  match Hashtbl.find_opt t.cache (src, dst) with
  | Some l -> l
  | None ->
    (* Derive a per-pair stream so the value is a pure function of
       (seed, src, dst). *)
    let rng = Rng.create (t.seed + (src * 1_000_003) + (dst * 7919)) in
    let u = Rng.float rng 1.0 in
    let jitter = -.t.jitter_ms *. log (1. -. (u *. 0.999)) in
    let l = t.base_ms +. jitter in
    Hashtbl.replace t.cache (src, dst) l;
    l

let measure t bus f =
  let total = ref 0. in
  let unsubscribed = ref false in
  let sub =
    Bus.subscribe bus (fun ~src ~dst ~kind:_ ->
        total := !total +. of_pair t ~src ~dst)
  in
  let finish () =
    if not !unsubscribed then begin
      Bus.unsubscribe bus sub;
      unsubscribed := true
    end
  in
  match f () with
  | result ->
    finish ();
    (result, !total)
  | exception e ->
    finish ();
    raise e
