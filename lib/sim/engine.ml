type probe = { before : unit -> unit; after : unit -> unit }

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : float;
  mutable probe : probe option;
}

let create () = { queue = Event_queue.create (); clock = 0.; probe = None }
let now t = t.clock

let set_probe t p = t.probe <- p
let probe t = t.probe

let schedule t ~delay f =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay) f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.push t.queue ~time f

let every t ~period f =
  if period <= 0. then invalid_arg "Engine.every: period <= 0";
  let rec tick () = if f () then schedule t ~delay:period tick in
  schedule t ~delay:period tick

let pending t = Event_queue.length t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- time;
    (match t.probe with
    | None -> f ()
    | Some p -> (
      (* The probe observes dispatch cost; it must never lose its
         closing half to an escaping event exception. Bracketed by
         hand so a profiled dispatch allocates no [Fun.protect]
         thunk. *)
      p.before ();
      match f () with
      | () -> p.after ()
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        p.after ();
        Printexc.raise_with_backtrace e bt));
    true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some time when time <= horizon -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  if horizon > t.clock then t.clock <- horizon
