module Rng = Baton_util.Rng

type fault_config = {
  drop_rate : float;
  transient_rate : float;
  transient_len : int;
}

type fault_state = {
  config : fault_config;
  frng : Rng.t;
  (* peer id -> number of further incoming messages it will ignore *)
  stunned : (int, int) Hashtbl.t;
}

(* A network partition: every peer is assigned to an island, and
   ordered island pairs in [blocked] cannot exchange messages. The
   assignment lives in a plain hashtable (no closures) so a partitioned
   bus still marshals. Peers absent from the table — e.g. joined while
   the partition was up — are reachable from everywhere: a fresh peer
   has no island history. *)
type partition_state = {
  island : (int, int) Hashtbl.t;
  blocked : (int * int) list;
}

(* Gray failures: peers that are never declared dead but whose links
   silently degrade — an elevated per-message drop probability and a
   latency multiplier the runtime applies to delivery delays. The drop
   PRNG is separate from the base fault model's so installing gray
   peers never perturbs the base drop/stun sequence. *)
type gray_state = {
  grng : Rng.t;
  (* peer id -> (extra drop probability, latency slowdown factor) *)
  gray_peers : (int, float * float) Hashtbl.t;
}

type hop_hook = src:int -> dst:int -> kind:string -> unit

(* Delivery probe: a pure wall-clock observer bracketing every message
   transit. Holds closures, so it is cleared (like subscribers) before
   the bus is marshalled. *)
type probe = { before : unit -> unit; after : unit -> unit }

(* Causal trace context carried by a message: which trace (operation
   episode) it belongs to, its own span id, the span that caused it and
   the kind of operation that originated the episode. The bus only
   transports the context — allocation and analysis live in the
   observability layer. *)
type trace_ctx = { trace : int; span : int; parent : int; op : string }

type t = {
  metrics : Metrics.t;
  failed : (int, unit) Hashtbl.t;
  mutable faults : fault_state option;
  mutable partition : partition_state option;
  mutable gray : gray_state option;
  (* Context of the message currently passing through [send], readable
     by hop subscribers via [sending_ctx]. *)
  mutable in_flight : trace_ctx option;
  (* Hop subscribers. [subs_rev] holds them newest-first so subscribing
     is O(1); [subs_fwd] caches the subscription-order view that [send]
     iterates, rebuilt lazily after a (un)subscription. Both are
     immutable lists, so a hook that (un)subscribes mid-[send] cannot
     disturb the iteration in flight. *)
  mutable subs_rev : (int * hop_hook) list;
  mutable subs_fwd : (int * hop_hook) list;
  mutable subs_dirty : bool;
  mutable next_subscriber : int;
  mutable probe : probe option;
}

exception Unreachable of int
exception Timeout of int

let drop_event = "fault.drop"
let transient_event = "fault.transient"
let partition_event = "fault.partition"
let gray_event = "fault.gray"

let create () =
  {
    metrics = Metrics.create ();
    failed = Hashtbl.create 64;
    faults = None;
    partition = None;
    gray = None;
    in_flight = None;
    subs_rev = [];
    subs_fwd = [];
    subs_dirty = false;
    next_subscriber = 0;
    probe = None;
  }

let set_probe t p = t.probe <- p
let probe t = t.probe

(* --- Hop-trace subscriptions --------------------------------------

   Multiple observers (latency measurement, CLI tracing, the telemetry
   recorder) can watch the bus at once; each holds a token and removes
   only its own hook, so they compose instead of clobbering each
   other. *)

type subscription = int

let subscribe t hook =
  let id = t.next_subscriber in
  t.next_subscriber <- id + 1;
  (* O(1): prepend to the reversed list and invalidate the forward
     cache. The old [subscribers @ [x]] made n subscriptions O(n²). *)
  t.subs_rev <- (id, hook) :: t.subs_rev;
  t.subs_dirty <- true;
  id

let unsubscribe t id =
  t.subs_rev <- List.filter (fun (i, _) -> i <> id) t.subs_rev;
  t.subs_dirty <- true

let subscriber_count t = List.length t.subs_rev

(* Drop every hook, e.g. before marshalling the bus (closures cannot be
   serialized). *)
let clear_subscribers t =
  t.subs_rev <- [];
  t.subs_fwd <- [];
  t.subs_dirty <- false

(* Subscription-order view, rebuilt at most once per burst of
   (un)subscriptions. *)
let subscribers t =
  if t.subs_dirty then begin
    t.subs_fwd <- List.rev t.subs_rev;
    t.subs_dirty <- false
  end;
  t.subs_fwd

let metrics t = t.metrics

let is_failed t id = Hashtbl.mem t.failed id

let set_faults t ?(transient_len = 2) ~seed ~drop_rate ~transient_rate () =
  if drop_rate < 0. || drop_rate > 1. then
    invalid_arg "Bus.set_faults: drop_rate outside [0, 1]";
  if transient_rate < 0. || transient_rate > 1. then
    invalid_arg "Bus.set_faults: transient_rate outside [0, 1]";
  if transient_len < 1 then invalid_arg "Bus.set_faults: transient_len < 1";
  t.faults <-
    Some
      {
        config = { drop_rate; transient_rate; transient_len };
        frng = Rng.create seed;
        stunned = Hashtbl.create 64;
      }

let clear_faults t = t.faults <- None
let faults_enabled t = Option.is_some t.faults

let fault_config t =
  match t.faults with None -> None | Some f -> Some f.config

let stun t id ~msgs =
  match t.faults with
  | None -> invalid_arg "Bus.stun: no fault model installed"
  | Some f -> Hashtbl.replace f.stunned id (max 1 msgs)

(* Decide the fate of one transmitted message under the fault model.
   A stunned destination consumes one of its silent slots without
   advancing the PRNG; otherwise exactly one draw decides drop /
   stun-and-drop / deliver, so the fault sequence is a pure function of
   the fault seed and the order of sends. *)
let fault_verdict t dst =
  match t.faults with
  | None -> `Deliver
  | Some f -> (
    match Hashtbl.find_opt f.stunned dst with
    | Some n ->
      if n <= 1 then Hashtbl.remove f.stunned dst
      else Hashtbl.replace f.stunned dst (n - 1);
      `Transient
    | None ->
      let u = Rng.float f.frng 1.0 in
      if u < f.config.drop_rate then `Drop
      else if u < f.config.drop_rate +. f.config.transient_rate then begin
        Hashtbl.replace f.stunned dst (f.config.transient_len - 1);
        `Transient
      end
      else `Deliver)

(* --- Partitions ---------------------------------------------------- *)

let set_partition t ~assign ~blocked =
  let island = Hashtbl.create 64 in
  List.iter (fun (peer, i) -> Hashtbl.replace island peer i) assign;
  t.partition <- Some { island; blocked }

let clear_partition t = t.partition <- None
let partition_active t = Option.is_some t.partition

let partition_blocked t ~src ~dst =
  match t.partition with
  | None -> false
  | Some p -> (
    match (Hashtbl.find_opt p.island src, Hashtbl.find_opt p.island dst) with
    | Some i, Some j -> i <> j && List.mem (i, j) p.blocked
    | _, _ -> false)

(* --- Gray failures -------------------------------------------------- *)

let set_gray_model t ~seed =
  t.gray <- Some { grng = Rng.create seed; gray_peers = Hashtbl.create 16 }

let clear_gray_model t = t.gray <- None

let set_gray_peer t id ~extra_drop ~slow =
  if extra_drop < 0. || extra_drop > 1. then
    invalid_arg "Bus.set_gray_peer: extra_drop outside [0, 1]";
  if slow < 1. then invalid_arg "Bus.set_gray_peer: slow < 1";
  match t.gray with
  | None -> invalid_arg "Bus.set_gray_peer: no gray model installed"
  | Some g -> Hashtbl.replace g.gray_peers id (extra_drop, slow)

let clear_gray_peer t id =
  match t.gray with None -> () | Some g -> Hashtbl.remove g.gray_peers id

let gray_count t =
  match t.gray with None -> 0 | Some g -> Hashtbl.length g.gray_peers

let is_gray t id =
  match t.gray with None -> false | Some g -> Hashtbl.mem g.gray_peers id

let latency_factor t ~src ~dst =
  match t.gray with
  | None -> 1.0
  | Some g ->
    let slow id =
      match Hashtbl.find_opt g.gray_peers id with
      | Some (_, s) -> s
      | None -> 1.0
    in
    Float.max (slow src) (slow dst)

(* Extra drop probability for a hop touching a gray endpoint: the worse
   of the two ends decides (the message crosses both NICs, the sick one
   dominates). The gray PRNG is consulted only when that probability is
   positive, so traffic between healthy peers leaves the gray stream —
   and therefore the whole fault sequence — untouched. *)
let gray_dropped t ~src ~dst =
  match t.gray with
  | None -> false
  | Some g ->
    let drop id =
      match Hashtbl.find_opt g.gray_peers id with
      | Some (d, _) -> d
      | None -> 0.
    in
    let p = Float.max (drop src) (drop dst) in
    p > 0. && Rng.float g.grng 1.0 < p

let sending_ctx t = t.in_flight

(* Explicit recursion instead of [List.iter (fun ...)] so the hot
   delivery path allocates no iteration closure. *)
let rec run_hooks subs ~src ~dst ~kind =
  match subs with
  | [] -> ()
  | (_, hook) :: rest ->
    hook ~src ~dst ~kind;
    run_hooks rest ~src ~dst ~kind

let deliver ?ctx t ~src ~dst ~kind =
  begin
    (* The message is transmitted — and therefore counted — whether or
       not the destination is alive or the network loses it; a missing
       answer is how the sender discovers the problem (Section III-C). *)
    Metrics.record t.metrics ~dst ~kind;
    t.in_flight <- ctx;
    run_hooks (subscribers t) ~src ~dst ~kind;
    t.in_flight <- None;
    if is_failed t dst then raise (Unreachable dst);
    (* Fault layers, outermost first: a partition blocks the message
       before it reaches the destination's island, so it consumes
       neither a gray draw nor a stun slot; a gray drop loses it next;
       only then does the base drop/stun model see it. *)
    if partition_blocked t ~src ~dst then begin
      Metrics.event t.metrics partition_event;
      raise (Timeout dst)
    end;
    if gray_dropped t ~src ~dst then begin
      Metrics.event t.metrics gray_event;
      raise (Timeout dst)
    end;
    match fault_verdict t dst with
    | `Deliver -> ()
    | `Drop ->
      Metrics.event t.metrics drop_event;
      raise (Timeout dst)
    | `Transient ->
      Metrics.event t.metrics transient_event;
      raise (Timeout dst)
  end

let send ?ctx t ~src ~dst ~kind =
  if src <> dst then
    match t.probe with
    | None -> deliver ?ctx t ~src ~dst ~kind
    | Some p -> (
      (* Timeouts and unreachables are ordinary outcomes here, so the
         probe's closing half must survive them. Bracketed by hand
         (rather than [Fun.protect]) so a probed send allocates no
         thunk. *)
      p.before ();
      match deliver ?ctx t ~src ~dst ~kind with
      | () -> p.after ()
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        p.after ();
        Printexc.raise_with_backtrace e bt)

let clear_stun t id =
  match t.faults with None -> () | Some f -> Hashtbl.remove f.stunned id

let fail t id =
  if not (is_failed t id) then begin
    Hashtbl.add t.failed id ();
    (* A crash obliterates transient state: whatever silence the fault
       model still had scheduled for this peer dies with it. *)
    clear_stun t id
  end

let revive t id =
  Hashtbl.remove t.failed id;
  (* The id restarts in a fresh role; a stun scheduled before the crash
     must not silently swallow its first messages afterwards. *)
  clear_stun t id

let failed_count t = Hashtbl.length t.failed
