(* Implicit 4-ary min-heap over parallel arrays.

   Three flat arrays (times, seqs, payloads) replace the boxed-entry
   binary heap: a sift touches one cache line of keys instead of
   chasing a pointer per comparison, and the wider node halves the
   tree depth. Any min-heap pops in the same order here because
   (time, seq) is a total order — seq is unique — so switching the
   arity cannot change the delivery schedule.

   [payloads] is an [Obj.t array] seeded with an immediate dummy so it
   is allocated as a uniform array — an ['a array] created from a
   float payload would be flattened and then crash on a boxed one. *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : Obj.t array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy = Obj.repr 0
let initial_capacity = 64

let create () =
  {
    times = [||];
    seqs = [||];
    payloads = [||];
    size = 0;
    next_seq = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.times in
  let cap' = if cap = 0 then initial_capacity else 2 * cap in
  let times = Array.make cap' 0. in
  let seqs = Array.make cap' 0 in
  let payloads = Array.make cap' dummy in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.payloads 0 payloads 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.payloads <- payloads

(* (time, seq) strictly-before, reading straight from the key arrays. *)
let before t i j =
  let ti = Array.unsafe_get t.times i and tj = Array.unsafe_get t.times j in
  ti < tj
  || (ti = tj && Array.unsafe_get t.seqs i < Array.unsafe_get t.seqs j)

let swap t i j =
  let tm = Array.unsafe_get t.times i in
  Array.unsafe_set t.times i (Array.unsafe_get t.times j);
  Array.unsafe_set t.times j tm;
  let sq = Array.unsafe_get t.seqs i in
  Array.unsafe_set t.seqs i (Array.unsafe_get t.seqs j);
  Array.unsafe_set t.seqs j sq;
  let pl = Array.unsafe_get t.payloads i in
  Array.unsafe_set t.payloads i (Array.unsafe_get t.payloads j);
  Array.unsafe_set t.payloads j pl

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 4 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let first = (4 * i) + 1 in
  if first < t.size then begin
    let last = min (first + 3) (t.size - 1) in
    let smallest = ref i in
    for c = first to last do
      if before t c !smallest then smallest := c
    done;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end
  end

let push t ~time payload =
  if t.size = Array.length t.times then grow t;
  let i = t.size in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- Obj.repr payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- i + 1;
  sift_up t i

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    let payload : 'a = Obj.obj t.payloads.(0) in
    let last = t.size - 1 in
    t.times.(0) <- t.times.(last);
    t.seqs.(0) <- t.seqs.(last);
    t.payloads.(0) <- t.payloads.(last);
    t.payloads.(last) <- dummy;
    t.size <- last;
    if last > 0 then sift_down t 0;
    Some (time, payload)
  end

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let clear t =
  t.times <- [||];
  t.seqs <- [||];
  t.payloads <- [||];
  t.size <- 0
