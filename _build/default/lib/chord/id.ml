let bits = 24
let ring_size = 1 lsl bits
let mask = ring_size - 1

let scramble salt v =
  let z = Int64.add (Int64.mul (Int64.of_int v) 0x9E3779B97F4A7C15L) (Int64.of_int salt) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z (Int64.of_int mask))

let of_key v = scramble 0x1234 v
let of_peer v = scramble 0xBEEF v

let add_pow id i = (id + (1 lsl i)) land mask

let in_open x ~lo ~hi =
  if lo < hi then x > lo && x < hi
  else if lo > hi then x > lo || x < hi
  else x <> lo

let in_open_closed x ~lo ~hi =
  if lo < hi then x > lo && x <= hi
  else if lo > hi then x > lo || x <= hi
  else true
