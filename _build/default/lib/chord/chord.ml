module Id = Id
module Bus = Baton_sim.Bus
module Metrics = Baton_sim.Metrics
module Rng = Baton_util.Rng
module Dyn_array = Baton_util.Dyn_array

type node = {
  peer : int;  (* bus id *)
  ring : int;  (* position on the identifier ring *)
  mutable succ : int;  (* peer id of the ring successor *)
  mutable pred : int option;  (* peer id of the ring predecessor *)
  fingers : int option array;  (* slot i caches successor(ring + 2^i) *)
  keys : int Dyn_array.t;  (* stored data keys *)
}

type t = {
  bus : Bus.t;
  peers : (int, node) Hashtbl.t;
  rings : (int, int) Hashtbl.t;  (* ring id -> peer id *)
  id_list : int Dyn_array.t;  (* dense id array for O(1) random pick *)
  id_index : (int, int) Hashtbl.t;
  rng : Rng.t;
  mutable next_peer : int;
}

type join_stats = { peer : int; search_msgs : int; update_msgs : int }
type leave_stats = { search_msgs : int; update_msgs : int }

let k_search = "chord.search"
let k_join_search = "chord.join.search"
let k_join_update = "chord.join.update"
let k_leave_update = "chord.leave.update"
let k_insert = "chord.insert"
let k_delete = "chord.delete"
let k_transfer = "chord.transfer"

let create ?(seed = 42) () =
  {
    bus = Bus.create ();
    peers = Hashtbl.create 4096;
    rings = Hashtbl.create 4096;
    id_list = Dyn_array.create ();
    id_index = Hashtbl.create 4096;
    rng = Rng.create seed;
    next_peer = 0;
  }

let size t = Hashtbl.length t.peers
let metrics t = Bus.metrics t.bus
let bus t = t.bus
let peer t id = Hashtbl.find t.peers id

let peer_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.peers [] |> List.sort compare |> Array.of_list

let random_peer_id t =
  if Dyn_array.length t.id_list = 0 then
    invalid_arg "Chord.random_peer_id: empty network";
  Dyn_array.get t.id_list (Rng.int t.rng (Dyn_array.length t.id_list))

(* A fresh, unoccupied ring position for a new peer (hash collisions at
   10^4 peers on a 2^24 ring are rare but possible). *)
let fresh_ring t bus_id =
  let rec probe salt =
    let candidate = (Id.of_peer (bus_id + (salt * 7919)) + salt) land (Id.ring_size - 1) in
    if Hashtbl.mem t.rings candidate then probe (salt + 1) else candidate
  in
  probe 0

let fresh_node t =
  let bus_id = t.next_peer in
  t.next_peer <- bus_id + 1;
  let ring = fresh_ring t bus_id in
  {
    peer = bus_id;
    ring;
    succ = bus_id;
    pred = None;
    fingers = Array.make Id.bits None;
    keys = Dyn_array.create ();
  }

let register t (n : node) =
  Hashtbl.add t.peers n.peer n;
  Hashtbl.add t.rings n.ring n.peer;
  Hashtbl.replace t.id_index n.peer (Dyn_array.length t.id_list);
  Dyn_array.push t.id_list n.peer

let unregister t (n : node) =
  Hashtbl.remove t.peers n.peer;
  Hashtbl.remove t.rings n.ring;
  match Hashtbl.find_opt t.id_index n.peer with
  | Some i ->
    let last = Dyn_array.pop t.id_list in
    if last <> n.peer then begin
      Dyn_array.set t.id_list i last;
      Hashtbl.replace t.id_index last i
    end;
    Hashtbl.remove t.id_index n.peer
  | None -> ()

let bootstrap t =
  if size t <> 0 then invalid_arg "Chord.bootstrap: network not empty";
  let n = fresh_node t in
  n.succ <- n.peer;
  n.pred <- Some n.peer;
  Array.iteri (fun i _ -> n.fingers.(i) <- Some n.peer) n.fingers;
  register t n;
  n

let send t ~src ~dst ~kind =
  Bus.send t.bus ~src ~dst ~kind;
  peer t dst

(* Highest finger strictly between n and the target id. *)
let closest_preceding_finger t (n : node) id =
  let rec scan i =
    if i < 0 then None
    else
      match n.fingers.(i) with
      | Some fid when Hashtbl.mem t.peers fid ->
        let f = peer t fid in
        if Id.in_open f.ring ~lo:n.ring ~hi:id then Some fid else scan (i - 1)
      | Some _ | None -> scan (i - 1)
  in
  scan (Id.bits - 1)

(* Iterative find_successor, one message per hop. *)
let find_successor t ~(from : node) id ~kind =
  let hops = ref 0 in
  let rec loop n =
    let s = peer t n.succ in
    if Id.in_open_closed id ~lo:n.ring ~hi:s.ring then begin
      if s.peer <> n.peer then begin
        incr hops;
        ignore (send t ~src:n.peer ~dst:s.peer ~kind)
      end;
      s
    end
    else
      match closest_preceding_finger t n id with
      | Some next when next <> n.peer ->
        incr hops;
        loop (send t ~src:n.peer ~dst:next ~kind)
      | Some _ | None ->
        if s.peer = n.peer then n
        else begin
          incr hops;
          loop (send t ~src:n.peer ~dst:s.peer ~kind)
        end
  in
  let result = loop from in
  (result, !hops)

let successor_node t (n : node) = peer t n.succ
let pred_node t (n : node) = Option.map (peer t) n.pred

let join t =
  if size t = 0 then
    let n = bootstrap t in
    { peer = n.peer; search_msgs = 0; update_msgs = 0 }
  else begin
    let via = peer t (random_peer_id t) in
    let n = fresh_node t in
    let cp = Metrics.checkpoint (metrics t) in
    let s, search_msgs = find_successor t ~from:via n.ring ~kind:k_join_search in
    let cp_update = Metrics.checkpoint (metrics t) in
    register t n;
    (* Splice into the ring. *)
    let p = match pred_node t s with Some p -> p | None -> s in
    n.succ <- s.peer;
    n.pred <- Some p.peer;
    ignore (send t ~src:n.peer ~dst:s.peer ~kind:k_join_update);
    s.pred <- Some n.peer;
    ignore (send t ~src:n.peer ~dst:p.peer ~kind:k_join_update);
    p.succ <- n.peer;
    (* Take over the keys in (pred, n]. *)
    ignore (send t ~src:s.peer ~dst:n.peer ~kind:k_transfer);
    let keep = Dyn_array.create () in
    Dyn_array.iter
      (fun key ->
        if Id.in_open_closed (Id.of_key key) ~lo:p.ring ~hi:n.ring then
          Dyn_array.push n.keys key
        else Dyn_array.push keep key)
      s.keys;
    Dyn_array.clear s.keys;
    Dyn_array.append_all s.keys keep;
    (* Initialise the finger table, reusing the previous finger when the
       next start falls inside its span (the classic O(log^2 N) join). *)
    n.fingers.(0) <- Some s.peer;
    for i = 1 to Id.bits - 1 do
      let start = Id.add_pow n.ring i in
      let prev = Option.get n.fingers.(i - 1) in
      let prev_ring = (peer t prev).ring in
      if Id.in_open_closed start ~lo:n.ring ~hi:prev_ring then
        n.fingers.(i) <- Some prev
      else begin
        let f, _ = find_successor t ~from:n start ~kind:k_join_update in
        n.fingers.(i) <- Some f.peer
      end
    done;
    (* update_others: every node whose finger i now spans n must point
       at n. Find the last node at or before n - 2^i, then cascade
       backwards through predecessors while the update applies (the
       classic update_finger_table recursion). *)
    for i = 0 to Id.bits - 1 do
      let target = (n.ring - (1 lsl i)) land (Id.ring_size - 1) in
      let holder, _ = find_successor t ~from:n target ~kind:k_join_update in
      let holder =
        match pred_node t holder with
        | Some p when holder.ring <> target -> p
        | _ -> holder
      in
      let rec cascade (h : node) =
        if h.peer <> n.peer then begin
          let start = Id.add_pow h.ring i in
          let applies =
            match h.fingers.(i) with
            | Some fid when Hashtbl.mem t.peers fid ->
              let f = peer t fid in
              (* n falls in [start, current finger). *)
              n.ring = start || Id.in_open n.ring ~lo:((start - 1) land (Id.ring_size - 1)) ~hi:f.ring
            | Some _ | None -> true
          in
          if applies then begin
            ignore (send t ~src:n.peer ~dst:h.peer ~kind:k_join_update);
            h.fingers.(i) <- Some n.peer;
            match pred_node t h with Some p -> cascade p | None -> ()
          end
        end
      in
      cascade holder
    done;
    {
      peer = n.peer;
      search_msgs;
      update_msgs = Metrics.since (metrics t) cp_update;
    }
    |> fun stats ->
    ignore cp;
    stats
  end

let leave t id =
  let (n : node) = peer t id in
  let m = metrics t in
  let cp = Metrics.checkpoint m in
  if n.succ = n.peer then begin
    (* Last node. *)
    unregister t n;
    { search_msgs = 0; update_msgs = 0 }
  end
  else begin
    let s = successor_node t n in
    let p = match pred_node t n with Some p -> p | None -> s in
    (* Hand keys to the successor; splice the ring. *)
    ignore (send t ~src:n.peer ~dst:s.peer ~kind:k_transfer);
    Dyn_array.append_all s.keys n.keys;
    ignore (send t ~src:n.peer ~dst:p.peer ~kind:k_leave_update);
    p.succ <- s.peer;
    ignore (send t ~src:n.peer ~dst:s.peer ~kind:k_leave_update);
    s.pred <- Some p.peer;
    unregister t n;
    (* Repair fingers that pointed at the leaver: for each i, find the
       last node at or before n - 2^i and cascade backwards while the
       finger still names the departed peer. *)
    for i = 0 to Id.bits - 1 do
      let target = (n.ring - (1 lsl i)) land (Id.ring_size - 1) in
      if size t > 0 then begin
        let from = peer t s.peer in
        let holder, _ = find_successor t ~from target ~kind:k_leave_update in
        let holder =
          match pred_node t holder with
          | Some p when holder.ring <> target -> p
          | _ -> holder
        in
        let rec cascade (h : node) visited =
          if visited <= size t then
            match h.fingers.(i) with
            | Some fid when fid = n.peer ->
              ignore (send t ~src:s.peer ~dst:h.peer ~kind:k_leave_update);
              h.fingers.(i) <- Some n.succ;
              (match pred_node t h with
              | Some p when p.peer <> h.peer -> cascade p (visited + 1)
              | Some _ | None -> ())
            | Some _ | None -> ()
        in
        cascade holder 0
      end
    done;
    { search_msgs = 0; update_msgs = Metrics.since m cp }
  end

let locate t key ~kind =
  let from = peer t (random_peer_id t) in
  find_successor t ~from (Id.of_key key) ~kind

let insert t key =
  let node, hops = locate t key ~kind:k_insert in
  Dyn_array.push node.keys key;
  hops

let delete t key =
  let node, hops = locate t key ~kind:k_delete in
  let rec find_index i =
    if i >= Dyn_array.length node.keys then None
    else if Dyn_array.get node.keys i = key then Some i
    else find_index (i + 1)
  in
  (match find_index 0 with
  | Some i -> ignore (Dyn_array.remove node.keys i)
  | None -> ());
  hops

let lookup t key =
  let node, hops = locate t key ~kind:k_search in
  (Dyn_array.exists (fun k -> k = key) node.keys, hops)

let range_scan_cost t = size t

(* --- Lazy membership with periodic maintenance ---------------------- *)

let k_stabilize = "chord.stabilize"

let join_lazy t =
  if size t = 0 then
    let n = bootstrap t in
    { peer = n.peer; search_msgs = 0; update_msgs = 0 }
  else begin
    let via = peer t (random_peer_id t) in
    let n = fresh_node t in
    let cp = Metrics.checkpoint (metrics t) in
    let s, search_msgs = find_successor t ~from:via n.ring ~kind:k_join_search in
    ignore cp;
    register t n;
    n.succ <- s.peer;
    (* Predecessor and fingers start unknown (beyond the successor);
       stabilization fills them in. *)
    n.pred <- None;
    n.fingers.(0) <- Some s.peer;
    { peer = n.peer; search_msgs; update_msgs = 0 }
  end

(* n asks its successor for its predecessor; if that peer sits between
   them, adopt it as the new successor; then notify the successor. *)
let stabilize_peer t (n : node) =
  let msgs = ref 0 in
  let s = peer t n.succ in
  if s.peer <> n.peer then begin
    incr msgs;
    Bus.send t.bus ~src:n.peer ~dst:s.peer ~kind:k_stabilize
  end;
  (match s.pred with
  | Some xid when Hashtbl.mem t.peers xid ->
    let x = peer t xid in
    if x.peer <> n.peer && Id.in_open x.ring ~lo:n.ring ~hi:s.ring then begin
      n.succ <- x.peer;
      n.fingers.(0) <- Some x.peer
    end
  | Some _ | None -> ());
  let s = peer t n.succ in
  if s.peer <> n.peer then begin
    incr msgs;
    Bus.send t.bus ~src:n.peer ~dst:s.peer ~kind:k_stabilize;
    (* notify: s adopts n as predecessor if n is closer. *)
    match s.pred with
    | Some pid when Hashtbl.mem t.peers pid ->
      let p = peer t pid in
      if Id.in_open n.ring ~lo:p.ring ~hi:s.ring then s.pred <- Some n.peer
    | Some _ | None -> s.pred <- Some n.peer
  end
  else n.pred <- Some n.peer;
  !msgs

let stabilize_round t =
  let cp = Metrics.checkpoint (metrics t) in
  Hashtbl.iter (fun _ n -> ignore (stabilize_peer t n)) t.peers;
  Metrics.since (metrics t) cp

let fix_fingers_round t =
  let cp = Metrics.checkpoint (metrics t) in
  Hashtbl.iter
    (fun _ (n : node) ->
      for i = 0 to Id.bits - 1 do
        let start = Id.add_pow n.ring i in
        let f, _ = find_successor t ~from:n start ~kind:k_stabilize in
        n.fingers.(i) <- Some f.peer
      done)
    t.peers;
  Metrics.since (metrics t) cp



let check_exn t =
  let fail fmt = Format.kasprintf failwith fmt in
  if size t = 0 then ()
  else begin
    (* The successor pointers form a single cycle over all peers. *)
    let start = peer t (random_peer_id t) in
    let seen = Hashtbl.create (size t) in
    let rec walk (n : node) steps =
      if steps > size t then fail "chord: successor cycle longer than network"
      else begin
        if Hashtbl.mem seen n.peer then ()
        else begin
          Hashtbl.add seen n.peer ();
          walk (successor_node t n) (steps + 1)
        end
      end
    in
    walk start 0;
    if Hashtbl.length seen <> size t then
      fail "chord: ring visits %d of %d peers" (Hashtbl.length seen) (size t);
    (* Predecessors invert successors; fingers point at true successors
       of their starts; keys live at the successor of their hash. *)
    let ring_ids =
      Hashtbl.fold (fun _ n acc -> n.ring :: acc) t.peers [] |> List.sort compare
    in
    let successor_of id =
      match List.find_opt (fun r -> r >= id) ring_ids with
      | Some r -> r
      | None -> List.hd ring_ids
    in
    Hashtbl.iter
      (fun _ n ->
        let s = successor_node t n in
        (match pred_node t s with
        | Some p when p.peer = n.peer -> ()
        | Some p -> fail "chord: pred(succ(%d)) = %d" n.peer p.peer
        | None -> fail "chord: %d's successor has no predecessor" n.peer);
        Array.iteri
          (fun i slot ->
            match slot with
            | Some fid -> (
              match Hashtbl.find_opt t.peers fid with
              | None -> fail "chord: %d finger %d points at dead peer %d" n.peer i fid
              | Some f ->
                let start = Id.add_pow n.ring i in
                if f.ring <> successor_of start then
                  fail "chord: %d finger %d = ring %d, expected %d" n.peer i f.ring
                    (successor_of start))
            | None -> fail "chord: %d finger %d is empty" n.peer i)
          n.fingers;
        Dyn_array.iter
          (fun key ->
            if successor_of (Id.of_key key) <> n.ring then
              fail "chord: key %d stored at ring %d, expected %d" key n.ring
                (successor_of (Id.of_key key)))
          n.keys)
      t.peers
  end

let check = check_exn

let converged t =
  match check_exn t with exception Failure _ -> false | () -> true
