(** Chord baseline (Stoica et al., SIGCOMM 2001).

    The comparison system of the paper's evaluation: a distributed hash
    table over a ring of 2^24 identifiers with finger tables. Lookups
    take O(log N) hops; joining costs an O(log N) successor search plus
    O(log^2 N) messages to initialise the new finger table and update
    other nodes' fingers — the contrast BATON draws in Figures 8(a-d).
    Exact queries hash the key, so range queries are not supported
    (hashing destroys data ordering); {!range_scan_cost} quantifies the
    brute-force alternative.

    Maintenance here is deterministic (fingers are repaired eagerly on
    join and leave rather than by periodic stabilisation), which makes
    message counts reproducible; the asymptotics are the classic
    ones. *)

module Id = Id
(** Ring arithmetic (re-exported). *)

type t
(** A Chord network. *)

type node

val create : ?seed:int -> unit -> t
val size : t -> int
val metrics : t -> Baton_sim.Metrics.t
val bus : t -> Baton_sim.Bus.t

val bootstrap : t -> node
(** First node of the ring.
    @raise Invalid_argument if the network is not empty. *)

type join_stats = {
  peer : int;
  search_msgs : int;  (** messages to find the joining node's successor *)
  update_msgs : int;  (** finger-table construction and repair messages *)
}

val join : t -> join_stats
(** Add one peer, routed via a random existing peer. *)

type leave_stats = {
  search_msgs : int;  (** messages to find the handover target (successor): 0 — it is a direct link *)
  update_msgs : int;  (** key handover, neighbour and finger repair *)
}

val leave : t -> int -> leave_stats
(** Gracefully remove the peer with the given id. *)

val random_peer_id : t -> int
val peer_ids : t -> int array

val insert : t -> int -> int
(** [insert t key] stores the key at the successor of its hash; returns
    the number of messages. *)

val delete : t -> int -> int
(** Remove one occurrence; returns the number of messages. *)

val lookup : t -> int -> bool * int
(** [(found, messages)] for an exact-match query from a random peer. *)

val range_scan_cost : t -> int
(** Messages a range query would need under hashing: every peer must be
    visited (the paper's point that DHTs cannot answer range queries
    without a broadcast). *)

val check : t -> unit
(** Verify ring, predecessor, finger and data-placement invariants.
    @raise Failure on the first violation. *)

(** {2 Periodic maintenance (the classic protocol)}

    The counted joins above repair fingers eagerly so that message
    counts are deterministic. Real Chord instead converges lazily:
    a node joins knowing only its successor, and periodic
    [stabilize] / [fix_fingers] rounds repair the ring and the finger
    tables. Both styles are implemented; the lazy one is exercised by
    the tests to show convergence. *)

val join_lazy : t -> join_stats
(** Join by locating the successor only (no finger construction, no
    update_others): the cheapest possible join, leaving repair to
    {!stabilize_round} and {!fix_fingers_round}. *)

val stabilize_round : t -> int
(** One stabilization pass over every peer: each asks its successor for
    its predecessor, adopts a closer successor if one appeared, and
    notifies the successor of itself. Returns the messages paid. *)

val fix_fingers_round : t -> int
(** Every peer refreshes its whole finger table with fresh lookups.
    Returns the messages paid. *)

val converged : t -> bool
(** [true] when {!check} passes (ring, predecessors, fingers, data). *)
