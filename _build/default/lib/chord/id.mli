(** Identifier-ring arithmetic for Chord.

    Identifiers live on the ring [\[0, 2^bits)]; all interval tests are
    modular. The default ring size (24 bits) comfortably hosts the
    paper's largest network (10^4 peers). *)

val bits : int
(** Ring size in bits. *)

val ring_size : int
(** [2^bits]. *)

val of_key : int -> int
(** Deterministic hash of a data key onto the ring. *)

val of_peer : int -> int
(** Deterministic hash of a peer id onto the ring (independent of
    {!of_key}). *)

val add_pow : int -> int -> int
(** [add_pow id i] is [(id + 2^i) mod ring_size]. *)

val in_open : int -> lo:int -> hi:int -> bool
(** [x ∈ (lo, hi)] on the ring (empty when [lo = hi]... the whole ring
    minus the endpoints, following Chord's convention). *)

val in_open_closed : int -> lo:int -> hi:int -> bool
(** [x ∈ (lo, hi\]] on the ring; when [lo = hi] the interval is the
    whole ring (every x qualifies), matching Chord's successor rule for
    a single-node ring. *)
