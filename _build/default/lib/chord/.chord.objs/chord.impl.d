lib/chord/chord.ml: Array Baton_sim Baton_util Format Hashtbl Id List Option
