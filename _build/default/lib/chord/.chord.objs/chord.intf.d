lib/chord/chord.mli: Baton_sim Id
