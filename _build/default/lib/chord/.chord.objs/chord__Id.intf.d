lib/chord/id.mli:
