lib/chord/id.ml: Int64
