module Rng = Baton_util.Rng

type event = Join | Leave | Fail

let schedule rng ~joins ~leaves ~fails =
  if joins < 0 || leaves < 0 || fails < 0 then invalid_arg "Churn.schedule";
  let events =
    Array.concat
      [ Array.make joins Join; Array.make leaves Leave; Array.make fails Fail ]
  in
  Rng.shuffle rng events;
  events

let alternating ~joins ~leaves =
  if joins < 0 || leaves < 0 then invalid_arg "Churn.alternating";
  let total = joins + leaves in
  let out = Array.make (max total 0) Join in
  let j = ref 0 and l = ref 0 in
  for i = 0 to total - 1 do
    let pick_join =
      if !j >= joins then false
      else if !l >= leaves then true
      else i mod 2 = 0
    in
    if pick_join then begin
      out.(i) <- Join;
      incr j
    end
    else begin
      out.(i) <- Leave;
      incr l
    end
  done;
  out
