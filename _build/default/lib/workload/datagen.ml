module Rng = Baton_util.Rng
module Zipf = Baton_util.Zipf

let domain_lo = 1
let domain_hi = 1_000_000_000

type t =
  | Uniform of Rng.t
  | Zipfian of { z : Zipf.t; rng : Rng.t; region : int }

let uniform rng = Uniform rng

let zipf ?(theta = 1.0) ?(universe = 100_000) rng =
  let region = max 1 ((domain_hi - domain_lo) / universe) in
  Zipfian { z = Zipf.create ~n:universe ~theta; rng; region }

(* A Zipfian rank maps to a fixed region of the domain; the key is
   uniform within the region, so a hot rank is a hot (but splittable)
   neighbourhood rather than a single unsplittable key. *)
let next = function
  | Uniform rng -> Rng.int_in_range rng ~lo:domain_lo ~hi:(domain_hi - 1)
  | Zipfian { z; rng; region } ->
    let base = Zipf.sample_key z rng ~lo:domain_lo ~hi:(domain_hi - region) in
    base + Rng.int rng region

let take t n = Array.init n (fun _ -> next t)
