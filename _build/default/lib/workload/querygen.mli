(** Query generators.

    Exact queries target keys known to exist (drawn from the inserted
    set) so every query has an answer, as in the paper's runs of 1000
    exact and 1000 range queries per configuration. Range queries are
    parameterised by span so experiments can control how many peers a
    query touches. *)

val exact_targets : Baton_util.Rng.t -> keys:int array -> int -> int array
(** [exact_targets rng ~keys n] draws [n] query keys from [keys]. *)

type range = { lo : int; hi : int }

val ranges :
  Baton_util.Rng.t -> span:int -> lo:int -> hi:int -> int -> range array
(** [ranges rng ~span ~lo ~hi n]: [n] closed intervals of width [span]
    with uniformly random starting points inside [\[lo, hi\]]. *)
