(** Churn schedules.

    Deterministic sequences of membership events for the dynamics and
    fault-tolerance experiments. *)

type event = Join | Leave | Fail

val schedule :
  Baton_util.Rng.t -> joins:int -> leaves:int -> fails:int -> event array
(** A shuffled schedule containing exactly the requested number of each
    event. *)

val alternating : joins:int -> leaves:int -> event array
(** Joins and leaves interleaved round-robin — the steady-state churn
    pattern. *)
