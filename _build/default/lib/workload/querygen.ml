module Rng = Baton_util.Rng

let exact_targets rng ~keys n =
  if Array.length keys = 0 then invalid_arg "Querygen.exact_targets: no keys";
  Array.init n (fun _ -> Rng.pick rng keys)

type range = { lo : int; hi : int }

let ranges rng ~span ~lo ~hi n =
  if span < 0 then invalid_arg "Querygen.ranges: negative span";
  if lo > hi then invalid_arg "Querygen.ranges: empty domain";
  Array.init n (fun _ ->
      let start = Rng.int_in_range rng ~lo ~hi:(max lo (hi - span)) in
      { lo = start; hi = start + span })
