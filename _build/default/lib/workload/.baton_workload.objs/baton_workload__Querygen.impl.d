lib/workload/querygen.ml: Array Baton_util
