lib/workload/querygen.mli: Baton_util
