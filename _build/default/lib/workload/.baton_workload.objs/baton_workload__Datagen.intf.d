lib/workload/datagen.mli: Baton_util
