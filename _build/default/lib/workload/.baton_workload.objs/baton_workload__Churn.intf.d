lib/workload/churn.mli: Baton_util
