lib/workload/datagen.ml: Array Baton_util
