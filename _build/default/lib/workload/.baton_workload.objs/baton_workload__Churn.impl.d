lib/workload/churn.ml: Array Baton_util
