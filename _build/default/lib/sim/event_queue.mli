(** Priority queue of timestamped events.

    A binary min-heap ordered by (time, insertion sequence): events
    scheduled for the same instant are delivered in FIFO order, which
    keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** Schedule an event. O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, or [None] if empty. Ties are
    broken by insertion order. O(log n). *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val clear : 'a t -> unit
