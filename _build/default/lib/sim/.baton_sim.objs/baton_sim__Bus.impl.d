lib/sim/bus.ml: Hashtbl Metrics
