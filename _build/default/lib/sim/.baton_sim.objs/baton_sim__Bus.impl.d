lib/sim/bus.ml: Baton_util Hashtbl Metrics Option
