lib/sim/latency.ml: Baton_util Bus Hashtbl
