lib/sim/latency.mli: Bus
