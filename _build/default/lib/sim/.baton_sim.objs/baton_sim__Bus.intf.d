lib/sim/bus.mli: Metrics
