lib/sim/event_queue.ml: Baton_util
