lib/sim/engine.mli:
