lib/sim/metrics.mli:
