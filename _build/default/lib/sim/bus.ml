type t = {
  metrics : Metrics.t;
  failed : (int, unit) Hashtbl.t;
  mutable trace : (src:int -> dst:int -> kind:string -> unit) option;
}

exception Unreachable of int

let create () =
  { metrics = Metrics.create (); failed = Hashtbl.create 64; trace = None }

let metrics t = t.metrics

let is_failed t id = Hashtbl.mem t.failed id

let send t ~src ~dst ~kind =
  if src <> dst then begin
    (* The message is transmitted — and therefore counted — whether or
       not the destination is alive; a dead destination just never
       answers, which is how failures are discovered (Section III-C). *)
    Metrics.record t.metrics ~dst ~kind;
    (match t.trace with None -> () | Some hook -> hook ~src ~dst ~kind);
    if is_failed t dst then raise (Unreachable dst)
  end

let fail t id = if not (is_failed t id) then Hashtbl.add t.failed id ()
let revive t id = Hashtbl.remove t.failed id
let failed_count t = Hashtbl.length t.failed
let set_trace t hook = t.trace <- hook
