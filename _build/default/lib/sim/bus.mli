(** Simulated message bus.

    Peers are identified by small integers. A protocol hop from [src]
    to [dst] is accounted by {!send}; if the destination has been
    failed via {!fail}, the send raises {!Unreachable} — exactly how a
    live peer discovers a dead one in the paper (Section III-C: "some
    nodes wishing to access the departed node will discover the address
    unreachable"). The bus never routes anything itself: routing is the
    job of the overlay protocols built on top. *)

type t

exception Unreachable of int
(** Raised by {!send} when the destination peer is failed. Carries the
    failed peer id. *)

val create : unit -> t

val metrics : t -> Metrics.t
(** The accounting sink for this bus. *)

val send : t -> src:int -> dst:int -> kind:string -> unit
(** Account one message. Self-sends ([src = dst]) are free: a node
    consulting its own state passes no network message. Messages to
    failed peers are still counted — they are transmitted, and the
    missing answer is how the sender discovers the failure.
    @raise Unreachable if [dst] is failed. *)

val fail : t -> int -> unit
(** Mark a peer as failed (crashed / abruptly departed). *)

val revive : t -> int -> unit
(** Clear the failed mark (peer re-joins with a fresh role). *)

val is_failed : t -> int -> bool

val failed_count : t -> int

val set_trace : t -> (src:int -> dst:int -> kind:string -> unit) option -> unit
(** Install (or remove) a hook observing every accounted message, e.g.
    to record hop traces in examples. *)
