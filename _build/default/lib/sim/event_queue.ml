type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  heap : 'a entry Baton_util.Dyn_array.t;
  mutable next_seq : int;
}

module Dyn_array = Baton_util.Dyn_array

let create () = { heap = Dyn_array.create (); next_seq = 0 }
let length t = Dyn_array.length t.heap
let is_empty t = length t = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = Dyn_array.get t.heap i in
  Dyn_array.set t.heap i (Dyn_array.get t.heap j);
  Dyn_array.set t.heap j tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (Dyn_array.get t.heap i) (Dyn_array.get t.heap parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = length t in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && before (Dyn_array.get t.heap l) (Dyn_array.get t.heap !smallest) then smallest := l;
  if r < n && before (Dyn_array.get t.heap r) (Dyn_array.get t.heap !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  Dyn_array.push t.heap entry;
  sift_up t (length t - 1)

let pop t =
  if is_empty t then None
  else begin
    let top = Dyn_array.get t.heap 0 in
    let last = Dyn_array.pop t.heap in
    if length t > 0 then begin
      Dyn_array.set t.heap 0 last;
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if is_empty t then None else Some (Dyn_array.get t.heap 0).time
let clear t = Dyn_array.clear t.heap
