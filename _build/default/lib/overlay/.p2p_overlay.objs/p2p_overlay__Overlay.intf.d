lib/overlay/overlay.mli: Baton_util
