lib/overlay/overlay.ml: Baton Baton_sim Baton_util Chord Multiway String
