(** A common interface over the three overlay networks.

    BATON and its two comparison systems expose different native APIs;
    this module erases the differences behind one signature so that
    drivers (the CLI's [compare] command, generic tests, ad-hoc
    scripts) can run the same workload against any of them and read the
    same metrics. Range queries return [None] on overlays that cannot
    answer them (Chord) — the impossibility is part of the interface,
    exactly as it is part of the paper's comparison. *)

module type S = sig
  type t

  val name : string

  val create : seed:int -> n:int -> t
  (** Build an [n]-peer network. *)

  val size : t -> int
  val messages : t -> int

  val insert : t -> int -> unit
  val delete : t -> int -> bool
  val lookup : t -> int -> bool

  val range_query : t -> lo:int -> hi:int -> int list option
  (** [None] when the overlay cannot answer range queries. *)

  val join : t -> unit
  val leave_random : t -> Baton_util.Rng.t -> unit
  (** Gracefully remove one uniformly chosen peer (no-op on a 1-peer
      network). *)

  val check : t -> unit
  (** Structural invariants; @raise Failure on violation. *)
end

val baton : (module S)
val chord : (module S)
val multiway : (module S)

val all : (module S) list
(** The three overlays, BATON first. *)

val by_name : string -> (module S)
(** @raise Not_found for unknown names ("baton", "chord", "multiway"). *)
