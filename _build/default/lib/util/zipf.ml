type t = { n : int; theta : float; cdf : float array }

let create ~n ~theta =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if theta < 0. then invalid_arg "Zipf.create: theta must be >= 0.";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for r = 1 to n do
    acc := !acc +. (1. /. Float.pow (float_of_int r) theta);
    cdf.(r - 1) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { n; theta; cdf }

let n t = t.n
let theta t = t.theta

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index whose cdf >= u. *)
  let rec bsearch lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then bsearch lo mid else bsearch (mid + 1) hi
  in
  bsearch 0 (t.n - 1) + 1

(* SplitMix64-style integer scrambler used to scatter ranks over the key
   domain deterministically. *)
let scramble r =
  let z = Int64.mul (Int64.of_int r) 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.logxor z (Int64.shift_right_logical z 27) in
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  Int64.to_int (Int64.shift_right_logical z 2)

let sample_key t rng ~lo ~hi =
  if lo > hi then invalid_arg "Zipf.sample_key: lo > hi";
  let r = sample t rng in
  lo + (scramble r mod (hi - lo + 1))
