(** Sorted multiset of integer keys — the per-peer local data store.

    Each BATON peer manages the data whose keys fall inside its range.
    Backed by {!Ordered_multiset} (an order-statistics AVL tree), so
    inserts, removals, rank queries and splits are all O(log n) and
    range extraction is O(log n + answer size). Duplicate keys are
    allowed (the paper explicitly discusses duplicate partition
    keys). *)

type t

val create : unit -> t

val length : t -> int
(** Number of stored keys (with multiplicity). *)

val is_empty : t -> bool

val insert : t -> int -> unit
(** Insert a key, keeping order. O(log n). *)

val remove : t -> int -> bool
(** Remove one occurrence of the key; [false] if absent. *)

val mem : t -> int -> bool
(** O(log n) membership. *)

val count : t -> int -> int
(** Number of occurrences of a key. *)

val min_key : t -> int option
val max_key : t -> int option

val nth : t -> int -> int
(** 0-based rank (with multiplicity) in ascending order. O(log n).
    @raise Invalid_argument if out of range. *)

val keys_in : t -> lo:int -> hi:int -> int list
(** All keys in [\[lo, hi\]] (inclusive), in ascending order. *)

val count_in : t -> lo:int -> hi:int -> int
(** Number of keys in [\[lo, hi\]] without materialising them. *)

val split_lower_half : t -> t
(** Remove and return the lower half of the keys (floor(n/2) smallest).
    Used when a joining node takes the lower half of its parent's
    range. *)

val split_upper_half : t -> t
(** Remove and return the upper half (ceil(n/2)... the largest
    floor(n/2) keys). Symmetric to {!split_lower_half}. *)

val split_below : t -> int -> t
(** [split_below t k] removes and returns all keys strictly less than
    [k]. Used when a range boundary moves during load balancing. *)

val split_at_or_above : t -> int -> t
(** [split_at_or_above t k] removes and returns all keys >= [k]. *)

val absorb : t -> t -> unit
(** [absorb dst src] moves every key of [src] into [dst], emptying
    [src]. O(n + m). *)

val to_list : t -> int list
(** Ascending list of all keys. *)

val of_list : int list -> t
