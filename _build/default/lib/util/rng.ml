type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 (Steele, Lea, Flood 2014): advance by a Weyl increment and
   scramble with two xor-shift-multiply rounds. *)
let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let t = { state = Int64.of_int seed } in
  (* Discard one output so that small consecutive seeds decorrelate. *)
  ignore (next_raw t);
  t

let split t = { state = next_raw t }
let copy t = { state = t.state }
let int64 t = next_raw t

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_raw t) 2) in
  bits mod bound

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped into [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_raw t) 11) in
  float_of_int bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_raw t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))
