(** Descriptive statistics over float samples.

    Small helpers used by the experiment harness to turn raw message
    counts into the averages and distributions the paper reports. *)

val mean : float array -> float
(** Arithmetic mean; 0. on the empty array. *)

val mean_int : int array -> float
(** Mean of integer samples; 0. on the empty array. *)

val variance : float array -> float
(** Population variance; 0. for fewer than two samples. *)

val stddev : float array -> float
(** Population standard deviation. *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0, 100\]]: nearest-rank percentile of
    the samples (the array is copied and sorted internally).
    @raise Invalid_argument on an empty array or [p] out of range. *)

val median : float array -> float
(** 50th percentile. *)

val min_max : float array -> float * float
(** Smallest and largest sample.
    @raise Invalid_argument on an empty array. *)

val linear_fit : (float * float) array -> float * float
(** [linear_fit points] is [(slope, intercept)] of the least-squares
    line through [points].
    @raise Invalid_argument on fewer than two points. *)

val summary : float array -> string
(** Human-readable ["mean=... sd=... min=... p50=... max=..."] line. *)
