type t = { tbl : (int, int ref) Hashtbl.t; mutable total : int }

let create () = { tbl = Hashtbl.create 64; total = 0 }

let add_many t v k =
  if k < 0 then invalid_arg "Histogram.add_many: negative count";
  (match Hashtbl.find_opt t.tbl v with
  | Some r -> r := !r + k
  | None -> Hashtbl.add t.tbl v (ref k));
  t.total <- t.total + k

let add t v = add_many t v 1

let count t v = match Hashtbl.find_opt t.tbl v with Some r -> !r | None -> 0
let total t = t.total

let bins t =
  Hashtbl.fold (fun v r acc -> (v, !r) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let max_value t =
  match bins t with
  | [] -> None
  | l -> Some (fst (List.nth l (List.length l - 1)))

let mean t =
  if t.total = 0 then 0.
  else
    let sum = Hashtbl.fold (fun v r acc -> acc + (v * !r)) t.tbl 0 in
    float_of_int sum /. float_of_int t.total

let pp fmt t =
  List.iter (fun (v, c) -> Format.fprintf fmt "%d: %d@." v c) (bins t)
