module M = Ordered_multiset

type t = { mutable set : M.t }

let create () = { set = M.empty }
let length t = M.cardinal t.set
let is_empty t = M.is_empty t.set
let insert t k = t.set <- M.add k t.set

let mem t k = M.mem k t.set

let remove t k =
  match M.remove_one k t.set with
  | Some set ->
    t.set <- set;
    true
  | None -> false

let count t k = M.count k t.set
let min_key t = M.min_elt t.set
let max_key t = M.max_elt t.set
let nth t i = M.nth i t.set
let keys_in t ~lo ~hi = M.elements_in ~lo ~hi t.set
let count_in t ~lo ~hi = M.count_in ~lo ~hi t.set

let take_split (a, b) t =
  t.set <- b;
  { set = a }

let split_lower_half t = take_split (M.split_rank (length t / 2) t.set) t

let split_upper_half t =
  let n = length t in
  let a, b = M.split_rank (n - (n / 2)) t.set in
  t.set <- a;
  { set = b }

let split_below t k = take_split (M.split_key k t.set) t

let split_at_or_above t k =
  let a, b = M.split_key k t.set in
  t.set <- a;
  { set = b }

let absorb dst src =
  dst.set <- M.union dst.set src.set;
  src.set <- M.empty

let to_list t = M.elements t.set
let of_list l = { set = List.fold_left (fun acc k -> M.add k acc) M.empty l }
