let mean a =
  let n = Array.length a in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n

let mean_int a = mean (Array.map float_of_int a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else
    let m = mean a in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a
    /. float_of_int n

let stddev a = sqrt (variance a)

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  let idx = if rank <= 0 then 0 else min (rank - 1) (n - 1) in
  sorted.(idx)

let median a = percentile a 50.

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (a.(0), a.(0)) a

let linear_fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sx = Array.fold_left (fun acc (x, _) -> acc +. x) 0. points in
  let sy = Array.fold_left (fun acc (_, y) -> acc +. y) 0. points in
  let sxx = Array.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0. points in
  let sxy = Array.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0. points in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  (slope, intercept)

let summary a =
  if Array.length a = 0 then "n=0"
  else
    let lo, hi = min_max a in
    Printf.sprintf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f max=%.3f"
      (Array.length a) (mean a) (stddev a) lo (median a) hi
