(** Growable array.

    Amortized O(1) append, O(1) random access, O(1) removal from the
    end. Backbone of the sorted per-peer data store and of several
    simulator internals. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty array. *)

val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds index. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-bounds index. *)

val push : 'a t -> 'a -> unit
(** Append at the end. *)

val pop : 'a t -> 'a
(** Remove and return the last element.
    @raise Invalid_argument if empty. *)

val last : 'a t -> 'a
(** @raise Invalid_argument if empty. *)

val insert : 'a t -> int -> 'a -> unit
(** [insert t i x] shifts elements [i..] right by one and stores [x] at
    [i]. O(n - i). [i] may equal [length t] (append). *)

val remove : 'a t -> int -> 'a
(** [remove t i] deletes and returns the element at [i], shifting the
    tail left. O(n - i). *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array

val append_all : 'a t -> 'a t -> unit
(** [append_all dst src] pushes every element of [src] onto [dst]. *)
