(** Zipfian distribution sampler.

    Used to generate the skewed datasets of the paper's load-balancing
    experiments (Section V-D uses "Zipfian method with parameter 1.0"). *)

type t
(** A sampler over ranks [1..n] with exponent [theta]. *)

val create : n:int -> theta:float -> t
(** [create ~n ~theta] precomputes the cumulative distribution for ranks
    [1..n] with probability proportional to [1 / rank^theta].
    Requires [n >= 1] and [theta >= 0.]. *)

val n : t -> int
(** Number of ranks. *)

val theta : t -> float
(** Skew exponent. *)

val sample : t -> Rng.t -> int
(** [sample t rng] draws a rank in [\[1, n\]]; rank 1 is the most
    frequent. Inverse-CDF by binary search, O(log n). *)

val sample_key : t -> Rng.t -> lo:int -> hi:int -> int
(** [sample_key t rng ~lo ~hi] maps a sampled rank onto the key domain
    [\[lo, hi\]]: rank [r] deterministically scatters to a fixed key so
    that hot keys are spread across the domain (as a hashed Zipf
    workload does), while frequencies stay Zipfian. *)
