(** Immutable ordered multiset of integers with order statistics.

    An AVL tree of (key, multiplicity) nodes augmented with subtree
    cardinality, so rank queries and rank splits are O(log n). This is
    the engine behind {!Sorted_store} — fitting, given that the paper's
    overlay is itself "very similar in spirit to an AVL tree". *)

type t

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** Total number of elements, counting multiplicity. *)

val add : int -> t -> t

val remove_one : int -> t -> t option
(** Remove one occurrence; [None] if the key is absent. *)

val mem : int -> t -> bool
val count : int -> t -> int

val min_elt : t -> int option
val max_elt : t -> int option

val nth : int -> t -> int
(** 0-based rank (with multiplicity) in ascending order. O(log n).
    @raise Invalid_argument if out of range. *)

val split_rank : int -> t -> t * t
(** [split_rank k t] is [(first k elements, the rest)]; [k] is clamped
    to [\[0, cardinal t\]]. *)

val split_key : int -> t -> t * t
(** [split_key k t] is [(elements < k, elements >= k)]. *)

val union : t -> t -> t
(** Multiset sum. O(m log n) for the smaller side m. *)

val elements : t -> int list
(** Ascending, with multiplicity. *)

val elements_in : lo:int -> hi:int -> t -> int list
(** Ascending elements in the closed interval, with multiplicity. *)

val count_in : lo:int -> hi:int -> t -> int
(** Cardinality of the closed interval without materialising it. *)

val check : t -> unit
(** Verify the AVL balance, ordering, positive multiplicities and size
    annotations. @raise Failure on violation (test helper). *)
