type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let check_index t i name =
  if i < 0 || i >= t.len then invalid_arg ("Dyn_array." ^ name ^ ": index out of bounds")

let get t i =
  check_index t i "get";
  t.data.(i)

let set t i x =
  check_index t i "set";
  t.data.(i) <- x

let ensure_capacity t extra =
  let needed = t.len + extra in
  let cap = Array.length t.data in
  if needed > cap then begin
    let new_cap = max needed (max 8 (2 * cap)) in
    (* The placeholder slot duplicates an existing element; slots beyond
       [len] are never observed. *)
    let filler = if t.len > 0 then t.data.(0) else Obj.magic 0 in
    let fresh = Array.make new_cap filler in
    Array.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end

let push t x =
  if t.len = 0 && Array.length t.data = 0 then t.data <- Array.make 8 x
  else ensure_capacity t 1;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Dyn_array.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let last t =
  if t.len = 0 then invalid_arg "Dyn_array.last: empty";
  t.data.(t.len - 1)

let insert t i x =
  if i < 0 || i > t.len then invalid_arg "Dyn_array.insert: index out of bounds";
  if t.len = 0 && Array.length t.data = 0 then t.data <- Array.make 8 x
  else ensure_capacity t 1;
  Array.blit t.data i t.data (i + 1) (t.len - i);
  t.data.(i) <- x;
  t.len <- t.len + 1

let remove t i =
  check_index t i "remove";
  let x = t.data.(i) in
  Array.blit t.data (i + 1) t.data i (t.len - i - 1);
  t.len <- t.len - 1;
  x

let clear t =
  t.data <- [||];
  t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.data.(i) :: acc) in
  loop (t.len - 1) []

let to_array t = Array.sub t.data 0 t.len

let of_array a =
  let t = create () in
  Array.iter (fun x -> push t x) a;
  t

let of_list l = of_array (Array.of_list l)

let append_all dst src = iter (fun x -> push dst x) src
