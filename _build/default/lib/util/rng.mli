(** Deterministic pseudo-random number generator.

    A small, fast, splittable SplitMix64 generator. Every simulation
    component takes an explicit [Rng.t] so that runs are reproducible:
    the same seed always yields the same event sequence and therefore
    the same message counts. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived
    from [seed]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Useful to give sub-components their own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state; both generators then produce
    the same future sequence. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive).
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly random element of [a].
    @raise Invalid_argument if [a] is empty. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list t l] is a uniformly random element of [l].
    @raise Invalid_argument if [l] is empty. *)
