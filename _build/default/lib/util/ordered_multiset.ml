type t =
  | Empty
  | Node of { l : t; key : int; cnt : int; r : t; h : int; size : int }

let empty = Empty
let is_empty t = t = Empty

let height = function Empty -> 0 | Node { h; _ } -> h
let cardinal = function Empty -> 0 | Node { size; _ } -> size

let mk l key cnt r =
  Node
    {
      l;
      key;
      cnt;
      r;
      h = 1 + max (height l) (height r);
      size = cnt + cardinal l + cardinal r;
    }

(* Rebalance assuming l and r are each within 2 of balance (the classic
   AVL [bal] smart constructor). *)
let bal l key cnt r =
  let hl = height l and hr = height r in
  if hl > hr + 2 then
    match l with
    | Node { l = ll; key = lk; cnt = lc; r = lr; _ } ->
      if height ll >= height lr then mk ll lk lc (mk lr key cnt r)
      else (
        match lr with
        | Node { l = lrl; key = lrk; cnt = lrc; r = lrr; _ } ->
          mk (mk ll lk lc lrl) lrk lrc (mk lrr key cnt r)
        | Empty -> assert false)
    | Empty -> assert false
  else if hr > hl + 2 then
    match r with
    | Node { l = rl; key = rk; cnt = rc; r = rr; _ } ->
      if height rr >= height rl then mk (mk l key cnt rl) rk rc rr
      else (
        match rl with
        | Node { l = rll; key = rlk; cnt = rlc; r = rlr; _ } ->
          mk (mk l key cnt rll) rlk rlc (mk rlr rk rc rr)
        | Empty -> assert false)
    | Empty -> assert false
  else mk l key cnt r

let rec add x = function
  | Empty -> mk Empty x 1 Empty
  | Node { l; key; cnt; r; _ } ->
    if x = key then mk l key (cnt + 1) r
    else if x < key then bal (add x l) key cnt r
    else bal l key cnt (add x r)

let rec min_binding = function
  | Empty -> None
  | Node { l = Empty; key; cnt; _ } -> Some (key, cnt)
  | Node { l; _ } -> min_binding l

let rec remove_min = function
  | Empty -> Empty
  | Node { l = Empty; r; _ } -> r
  | Node { l; key; cnt; r; _ } -> bal (remove_min l) key cnt r

(* Merge two trees where every element of [l] < every element of [r]
   and their heights differ by at most 2-ish (internal use after a
   removal). *)
let merge_adjacent l r =
  match (l, r) with
  | Empty, t | t, Empty -> t
  | _, _ -> (
    match min_binding r with
    | Some (key, cnt) -> bal l key cnt (remove_min r)
    | None -> assert false)

let rec remove_one x = function
  | Empty -> None
  | Node { l; key; cnt; r; _ } ->
    if x = key then
      if cnt > 1 then Some (mk l key (cnt - 1) r) else Some (merge_adjacent l r)
    else if x < key then
      Option.map (fun l' -> bal l' key cnt r) (remove_one x l)
    else Option.map (fun r' -> bal l key cnt r') (remove_one x r)

let rec mem x = function
  | Empty -> false
  | Node { l; key; r; _ } ->
    if x = key then true else if x < key then mem x l else mem x r

let rec count x = function
  | Empty -> 0
  | Node { l; key; cnt; r; _ } ->
    if x = key then cnt else if x < key then count x l else count x r

let min_elt t = Option.map fst (min_binding t)

let rec max_elt = function
  | Empty -> None
  | Node { r = Empty; key; _ } -> Some key
  | Node { r; _ } -> max_elt r

let rec nth i = function
  | Empty -> invalid_arg "Ordered_multiset.nth: out of range"
  | Node { l; key; cnt; r; _ } ->
    let nl = cardinal l in
    if i < nl then nth i l
    else if i < nl + cnt then key
    else nth (i - nl - cnt) r

(* Join two trees of arbitrary heights around a (key, cnt) pivot with
   l < key < r — the standard logarithmic Set join. *)
let rec join l key cnt r =
  match (l, r) with
  | Empty, _ -> add_multi key cnt r
  | _, Empty -> add_multi_max key cnt l
  | Node ln, Node rn ->
    if ln.h > rn.h + 2 then bal ln.l ln.key ln.cnt (join ln.r key cnt r)
    else if rn.h > ln.h + 2 then bal (join l key cnt rn.l) rn.key rn.cnt rn.r
    else mk l key cnt r

(* Insert a (key, cnt) known to be smaller than everything in t. *)
and add_multi key cnt = function
  | Empty -> mk Empty key cnt Empty
  | Node { l; key = k; cnt = c; r; _ } -> bal (add_multi key cnt l) k c r

(* Insert a (key, cnt) known to be larger than everything in t. *)
and add_multi_max key cnt = function
  | Empty -> mk Empty key cnt Empty
  | Node { l; key = k; cnt = c; r; _ } -> bal l k c (add_multi_max key cnt r)

let concat l r =
  match min_binding r with
  | None -> l
  | Some (key, cnt) ->
    let rec drop_min = function
      | Empty -> Empty
      | Node { l = Empty; r; _ } -> r
      | Node { l; key; cnt; r; _ } -> bal (drop_min l) key cnt r
    in
    join l key cnt (drop_min r)

let rec split_key pivot = function
  | Empty -> (Empty, Empty)
  | Node { l; key; cnt; r; _ } ->
    if key < pivot then
      let m, hi = split_key pivot r in
      (join l key cnt m, hi)
    else
      let lo, m = split_key pivot l in
      (lo, join m key cnt r)

let rec split_rank k = function
  | Empty -> (Empty, Empty)
  | Node { l; key; cnt; r; _ } as t ->
    let n = cardinal t in
    if k <= 0 then (Empty, t)
    else if k >= n then (t, Empty)
    else
      let nl = cardinal l in
      if k < nl then
        let a, b = split_rank k l in
        (a, join b key cnt r)
      else if k <= nl + cnt then
        let in_left = k - nl in
        let left = if in_left = 0 then l else join l key in_left Empty in
        let right = if in_left = cnt then r else join Empty key (cnt - in_left) r in
        (left, right)
      else
        let a, b = split_rank (k - nl - cnt) r in
        (join l key cnt a, b)

let union a b =
  (* Fold the smaller multiset into the larger. *)
  let small, large = if cardinal a <= cardinal b then (a, b) else (b, a) in
  let rec fold_add t acc =
    match t with
    | Empty -> acc
    | Node { l; key; cnt; r; _ } ->
      let acc = fold_add l acc in
      let rec rep acc i = if i = 0 then acc else rep (add key acc) (i - 1) in
      fold_add r (rep acc cnt)
  in
  fold_add small large

let elements t =
  let rec go t acc =
    match t with
    | Empty -> acc
    | Node { l; key; cnt; r; _ } ->
      let rec rep acc i = if i = 0 then acc else rep (key :: acc) (i - 1) in
      go l (rep (go r acc) cnt)
  in
  go t []

let rec elements_in ~lo ~hi = function
  | Empty -> []
  | Node { l; key; cnt; r; _ } ->
    if key < lo then elements_in ~lo ~hi r
    else if key > hi then elements_in ~lo ~hi l
    else
      elements_in ~lo ~hi l
      @ List.init cnt (fun _ -> key)
      @ elements_in ~lo ~hi r

let rec count_below pivot = function
  (* elements strictly below pivot *)
  | Empty -> 0
  | Node { l; key; cnt; r; _ } ->
    if key < pivot then cardinal l + cnt + count_below pivot r
    else count_below pivot l

let count_in ~lo ~hi t = max 0 (count_below (hi + 1) t - count_below lo t)

let check t =
  let fail fmt = Format.kasprintf failwith fmt in
  (* Verify ordering via bounds and structure bottom-up. *)
  let rec go lo hi = function
    | Empty -> (0, 0)
    | Node { l; key; cnt; r; h; size } ->
      (match lo with
      | Some b when key <= b -> fail "key %d <= lower bound %d" key b
      | Some _ | None -> ());
      (match hi with
      | Some b when key >= b -> fail "key %d >= upper bound %d" key b
      | Some _ | None -> ());
      if cnt <= 0 then fail "multiplicity %d at key %d" cnt key;
      let hl, sl = go lo (Some key) l in
      let hr, sr = go (Some key) hi r in
      if abs (hl - hr) > 2 then fail "imbalance at key %d: %d vs %d" key hl hr;
      if h <> 1 + max hl hr then fail "bad height at %d" key;
      if size <> cnt + sl + sr then fail "bad size at %d" key;
      (h, size)
  in
  ignore (go None None t)

let _ = ignore concat
