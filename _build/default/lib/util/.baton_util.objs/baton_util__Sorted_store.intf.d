lib/util/sorted_store.mli:
