lib/util/zipf.ml: Array Float Int64 Rng
