lib/util/stats.mli:
