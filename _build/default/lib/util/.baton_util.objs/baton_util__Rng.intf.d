lib/util/rng.mli:
