lib/util/ordered_multiset.mli:
