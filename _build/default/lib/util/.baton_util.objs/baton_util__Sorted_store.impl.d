lib/util/sorted_store.ml: List Ordered_multiset
