lib/util/ordered_multiset.ml: Format List Option
