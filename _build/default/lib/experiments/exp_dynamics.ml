module Rng = Baton_util.Rng
module Metrics = Baton_sim.Metrics

(* Total messages for [k] joins; with [concurrent] the update
   notifications are deferred until the whole batch has issued. *)
let join_batch ~seed ~n ~k ~concurrent =
  let net = Baton.Network.build ~seed n in
  let m = Baton.Net.metrics net in
  let cp = Metrics.checkpoint m in
  Baton.Net.set_defer net concurrent;
  for _ = 1 to k do
    ignore (Baton.Join.join net ~via:(Baton.Net.random_peer net))
  done;
  Baton.Net.flush_deferred net;
  float_of_int (Metrics.since m cp)

let leave_batch ~seed ~n ~k ~concurrent =
  let net = Baton.Network.build ~seed n in
  let rng = Rng.create (seed + 61) in
  let m = Baton.Net.metrics net in
  let cp = Metrics.checkpoint m in
  Baton.Net.set_defer net concurrent;
  for _ = 1 to k do
    let ids = Baton.Net.live_ids net in
    let victim = Baton.Net.peer net ids.(Rng.int rng (Array.length ids)) in
    ignore (Baton.Leave.leave net victim)
  done;
  Baton.Net.flush_deferred net;
  float_of_int (Metrics.since m cp)

let run (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let ks = [ 1; 2; 4; 8; 16; 32 ] in
  let rows =
    List.map
      (fun k ->
        let avg f =
          Common.avg_over_repeats ~repeats:p.Params.repeats (fun r ->
              f ~seed:(p.Params.seed + (r * 1021)) ~n ~k)
        in
        let j_seq = avg (fun ~seed ~n ~k -> join_batch ~seed ~n ~k ~concurrent:false) in
        let j_con = avg (fun ~seed ~n ~k -> join_batch ~seed ~n ~k ~concurrent:true) in
        let l_seq = avg (fun ~seed ~n ~k -> leave_batch ~seed ~n ~k ~concurrent:false) in
        let l_con = avg (fun ~seed ~n ~k -> leave_batch ~seed ~n ~k ~concurrent:true) in
        let fk = float_of_int k in
        [
          Table.cell_int k;
          Table.cell_float ((j_con -. j_seq) /. fk);
          Table.cell_float ((l_con -. l_seq) /. fk);
        ])
      ks
  in
  Table.make ~id:"fig8i" ~title:"Extra messages per concurrent join / leave"
    ~header:[ "concurrent ops"; "extra msgs per join"; "extra msgs per leave" ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers; update notifications deferred for the whole batch, \
           so later operations route on stale state."
          n;
      ]
    rows
