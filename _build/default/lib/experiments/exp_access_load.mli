(** Figure 8(f): access load of nodes at different levels.

    The experiment counts, per tree level, the average number of
    messages processed per node during an insert workload and a search
    workload. Expected shape (the paper's headline fairness result):
    insert load is nearly constant across levels and search load is
    slightly {e higher at the leaves} than at the root — a tree overlay
    that does not overload the root. *)

val run : Params.t -> Table.t
