(** Figures 8(c), 8(d) and 8(e): insert/delete, exact-match and range
    query costs.

    Each network is loaded with data, then sampled operations are
    issued from random peers. Expected shapes: BATON tracks Chord
    within a small constant (the paper's 1.44 height factor) for
    inserts, deletes and exact queries, while the multiway tree costs
    more; for range queries BATON pays O(log N + X) and the multiway
    tree more, while Chord would have to visit every peer. *)

val run : Params.t -> Table.t * Table.t * Table.t
(** [(fig8c, fig8d, fig8e)]. *)
