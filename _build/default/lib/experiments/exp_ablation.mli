(** Extension (not a paper figure): ablation of the sideways routing
    tables.

    The paper's central design element is the pair of power-of-two
    routing tables. This experiment removes them from the picture by
    routing exact queries along adjacent links only and compares the
    message counts: the table-based search stays logarithmic while the
    adjacent-only walk degrades towards the in-order distance between
    peers, i.e. O(N). *)

val run : Params.t -> Table.t
