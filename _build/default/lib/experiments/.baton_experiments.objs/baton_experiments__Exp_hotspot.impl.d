lib/experiments/exp_hotspot.ml: Baton Baton_sim Baton_util Baton_workload List Params Printf Table
