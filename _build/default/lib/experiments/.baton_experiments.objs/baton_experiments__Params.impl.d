lib/experiments/params.ml:
