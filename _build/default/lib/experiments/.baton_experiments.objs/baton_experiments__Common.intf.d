lib/experiments/common.mli: Baton Chord Multiway
