lib/experiments/exp_membership.ml: Array Baton Baton_util Baton_workload Chord Common List Multiway Params Table
