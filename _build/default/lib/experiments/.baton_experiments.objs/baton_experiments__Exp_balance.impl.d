lib/experiments/exp_balance.ml: Baton Baton_sim Baton_util Baton_workload List Params Printf Table
