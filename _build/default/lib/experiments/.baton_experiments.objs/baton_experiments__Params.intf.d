lib/experiments/params.mli:
