lib/experiments/exp_queries.mli: Params Table
