lib/experiments/exp_resilience.mli: Params Table
