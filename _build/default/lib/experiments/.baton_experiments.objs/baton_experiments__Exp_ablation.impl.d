lib/experiments/exp_ablation.ml: Baton Baton_util Baton_workload Common List Params Table
