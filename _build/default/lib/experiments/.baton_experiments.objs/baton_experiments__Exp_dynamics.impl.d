lib/experiments/exp_dynamics.ml: Array Baton Baton_sim Baton_util Common List Params Printf Table
