lib/experiments/exp_latency.ml: Array Baton Baton_sim Baton_util Baton_workload Chord Common List Params Printf Table
