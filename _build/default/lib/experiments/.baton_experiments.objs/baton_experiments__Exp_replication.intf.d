lib/experiments/exp_replication.mli: Params Table
