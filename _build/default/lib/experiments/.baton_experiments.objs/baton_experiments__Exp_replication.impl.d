lib/experiments/exp_replication.ml: Array Baton Baton_sim Baton_util Baton_workload List Params Printf Table
