lib/experiments/exp_access_load.ml: Array Baton Baton_sim Baton_util Baton_workload Common Hashtbl List Params Printf Table
