lib/experiments/runner.mli: Params Table
