lib/experiments/exp_dynamics.mli: Params Table
