lib/experiments/exp_churn_sweep.mli: Params Table
