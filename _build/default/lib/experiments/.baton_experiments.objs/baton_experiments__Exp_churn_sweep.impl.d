lib/experiments/exp_churn_sweep.ml: Array Baton Baton_sim Baton_util Baton_workload List Params Printf Table
