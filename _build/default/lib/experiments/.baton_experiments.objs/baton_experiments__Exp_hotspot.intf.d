lib/experiments/exp_hotspot.mli: Params Table
