lib/experiments/exp_access_load.mli: Params Table
