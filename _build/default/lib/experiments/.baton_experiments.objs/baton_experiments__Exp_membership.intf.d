lib/experiments/exp_membership.mli: Params Table
