lib/experiments/exp_ablation.mli: Params Table
