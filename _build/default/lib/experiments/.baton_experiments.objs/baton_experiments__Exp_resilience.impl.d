lib/experiments/exp_resilience.ml: Baton Baton_sim Baton_util Common Filename List Params Printf Sys Table
