lib/experiments/exp_fault.ml: Baton Baton_sim Baton_util Common List Params Printf Table
