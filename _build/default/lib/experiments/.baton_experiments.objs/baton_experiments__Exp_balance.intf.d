lib/experiments/exp_balance.mli: Params Table
