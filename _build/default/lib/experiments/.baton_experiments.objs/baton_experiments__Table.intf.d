lib/experiments/table.mli:
