lib/experiments/exp_latency.mli: Params Table
