lib/experiments/common.ml: Array Baton Baton_util Baton_workload Chord List Multiway
