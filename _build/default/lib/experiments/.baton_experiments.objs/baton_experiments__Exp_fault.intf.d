lib/experiments/exp_fault.mli: Params Table
