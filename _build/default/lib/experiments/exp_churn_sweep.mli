(** Extension (not a paper figure): query cost under steady-state
    churn.

    The dynamics experiment (Fig 8i) measures the cost of a single
    concurrent batch; this sweep asks the operational question instead:
    with churn arriving continuously at rate r membership events per
    query, what do queries and maintenance cost on average? Expected
    shape: query cost stays flat (maintenance repairs faster than decay
    accumulates) while total overhead scales with r. *)

val run : Params.t -> Table.t
