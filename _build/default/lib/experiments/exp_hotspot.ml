module Rng = Baton_util.Rng
module Metrics = Baton_sim.Metrics
module Datagen = Baton_workload.Datagen

let run (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let capacity = p.Params.balance_capacity in
  let net = Baton.Network.build ~seed:p.Params.seed n in
  let cfg = Baton.Balance.default_config ~capacity in
  let rng = Rng.create (p.Params.seed + 111) in
  let m = Baton.Net.metrics net in
  let wave_volume = capacity * n / 16 in
  let domain = Datagen.domain_hi - Datagen.domain_lo in
  (* Each wave concentrates 80% of its keys in a different 2%-wide
     region of the domain. *)
  let hot_centres = [ 0.15; 0.55; 0.85; 0.30; 0.70 ] in
  let rows =
    List.mapi
      (fun i centre ->
        let hot_lo = Datagen.domain_lo + int_of_float (centre *. float_of_int domain) in
        let hot_width = domain / 50 in
        let cp = Metrics.checkpoint m in
        for _ = 1 to wave_volume do
          let key =
            if Rng.int rng 10 < 8 then hot_lo + Rng.int rng hot_width
            else Rng.int_in_range rng ~lo:Datagen.domain_lo ~hi:(Datagen.domain_hi - 1)
          in
          let st = Baton.Update.insert net ~from:(Baton.Net.random_peer net) key in
          ignore
            (Baton.Balance.maybe_balance net cfg (Baton.Net.peer net st.Baton.Update.node))
        done;
        let balance_msgs =
          Metrics.kind_since m cp Baton.Msg.balance
          + Metrics.kind_since m cp Baton.Msg.restructure
        in
        let max_load =
          List.fold_left (fun acc node -> max acc (Baton.Node.load node)) 0
            (Baton.Net.peers net)
        in
        [
          Table.cell_int (i + 1);
          Printf.sprintf "%.0f%%" (centre *. 100.);
          Table.cell_int max_load;
          Table.cell_float (float_of_int balance_msgs /. float_of_int wave_volume);
        ])
      hot_centres
  in
  Baton.Check.all net;
  Table.make ~id:"moving-hotspot"
    ~title:"Load balancing under a hotspot that moves between waves"
    ~header:[ "wave"; "hot region at"; "max load after wave"; "balance msgs/insert" ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers, capacity %d; each wave inserts %d keys, 80%% of \
           them inside a 2%%-wide hot region that moves."
          n capacity wave_volume;
      ]
    rows
