(** Figures 8(a) and 8(b): cost of join and leave operations.

    For each network size the experiment grows a network of each
    system, then samples join and leave operations, separating the
    messages spent {e finding} the join point / replacement node
    (Figure 8(a)) from the messages spent {e updating routing tables}
    and links afterwards (Figure 8(b)). Expected shapes: BATON's find
    costs stay nearly flat and below Chord's (whose lookup grows with
    log N); BATON's update cost stays O(log N) against Chord's
    O(log^2 N); the multiway tree joins cheaply but pays heavily to
    replace a departing internal node. *)

val run : Params.t -> Table.t * Table.t
(** [(fig8a, fig8b)]. *)
