(** Extension (not a paper figure): resilience under mass failure.

    Section III-D argues the network stays connected under many
    simultaneous failures thanks to the sideways and adjacency links.
    This experiment kills a growing fraction of the peers without
    repairing them and measures what fraction of the surviving data is
    still reachable (allowing the client one retry) and what the
    detours cost. *)

val run : Params.t -> Table.t
