module Rng = Baton_util.Rng

type sample = {
  mutable join_search : float list;
  mutable join_update : float list;
  mutable leave_search : float list;
  mutable leave_update : float list;
}

let fresh () =
  { join_search = []; join_update = []; leave_search = []; leave_update = [] }

let baton_point ~seed ~n ~ops =
  let net = Baton.Network.build ~seed n in
  let s = fresh () in
  let rng = Rng.create (seed + 17) in
  for _ = 1 to ops do
    (* One join, then one leave of a random node: size stays ~n. *)
    let js = Baton.Join.join net ~via:(Baton.Net.random_peer net) in
    s.join_search <- float_of_int js.Baton.Join.search_msgs :: s.join_search;
    s.join_update <- float_of_int js.Baton.Join.update_msgs :: s.join_update;
    let ids = Baton.Net.live_ids net in
    let victim = Baton.Net.peer net ids.(Rng.int rng (Array.length ids)) in
    let ls = Baton.Leave.leave net victim in
    s.leave_search <- float_of_int ls.Baton.Leave.search_msgs :: s.leave_search;
    s.leave_update <- float_of_int ls.Baton.Leave.update_msgs :: s.leave_update
  done;
  s

let chord_point ~seed ~n ~ops =
  let t = Chord.create ~seed () in
  for _ = 1 to n do
    ignore (Chord.join t)
  done;
  let s = fresh () in
  let rng = Rng.create (seed + 17) in
  for _ = 1 to ops do
    let js = Chord.join t in
    s.join_search <- float_of_int js.Chord.search_msgs :: s.join_search;
    s.join_update <- float_of_int js.Chord.update_msgs :: s.join_update;
    let ids = Chord.peer_ids t in
    let ls = Chord.leave t ids.(Rng.int rng (Array.length ids)) in
    s.leave_search <- float_of_int ls.Chord.search_msgs :: s.leave_search;
    s.leave_update <- float_of_int ls.Chord.update_msgs :: s.leave_update
  done;
  s

let multiway_point ~seed ~n ~ops =
  let t =
    Multiway.create ~seed ~domain_lo:Baton_workload.Datagen.domain_lo
      ~domain_hi:Baton_workload.Datagen.domain_hi ()
  in
  for _ = 1 to n do
    ignore (Multiway.join t)
  done;
  let s = fresh () in
  let rng = Rng.create (seed + 17) in
  for _ = 1 to ops do
    let js = Multiway.join t in
    s.join_search <- float_of_int js.Multiway.search_msgs :: s.join_search;
    s.join_update <- float_of_int js.Multiway.update_msgs :: s.join_update;
    let ids = Multiway.peer_ids t in
    let ls = Multiway.leave t ids.(Rng.int rng (Array.length ids)) in
    s.leave_search <- float_of_int ls.Multiway.search_msgs :: s.leave_search;
    s.leave_update <- float_of_int ls.Multiway.update_msgs :: s.leave_update
  done;
  s

let avg l = Common.mean l

let run (p : Params.t) =
  let points =
    List.map
      (fun n ->
        let samples =
          List.init p.Params.repeats (fun r ->
              let seed = p.Params.seed + (r * 1009) in
              ( baton_point ~seed ~n ~ops:p.Params.ops_sample,
                chord_point ~seed ~n ~ops:p.Params.ops_sample,
                multiway_point ~seed ~n ~ops:p.Params.ops_sample ))
        in
        let collect f =
          let b = avg (List.concat_map (fun (b, _, _) -> f b) samples) in
          let c = avg (List.concat_map (fun (_, c, _) -> f c) samples) in
          let m = avg (List.concat_map (fun (_, _, m) -> f m) samples) in
          (b, c, m)
        in
        (n, collect (fun s -> s.join_search), collect (fun s -> s.leave_search),
         collect (fun s -> s.join_update), collect (fun s -> s.leave_update)))
      p.Params.sizes
  in
  let f = Table.cell_float and i = Table.cell_int in
  let fig8a =
    Table.make ~id:"fig8a" ~title:"Messages to find the join node / replacement node"
      ~header:
        [ "N"; "baton join"; "chord join"; "mtree join"; "baton leave";
          "chord leave"; "mtree leave" ]
      ~notes:
        [ "Chord leave hands data to a directly-linked successor, so its \
           replacement search is free by construction." ]
      (List.map
         (fun (n, (bj, cj, mj), (bl, cl, ml), _, _) ->
           [ i n; f bj; f cj; f mj; f bl; f cl; f ml ])
         points)
  in
  let fig8b =
    Table.make ~id:"fig8b" ~title:"Messages to update routing tables on join / leave"
      ~header:
        [ "N"; "baton join"; "chord join"; "mtree join"; "baton leave";
          "chord leave"; "mtree leave" ]
      (List.map
         (fun (n, _, _, (bj, cj, mj), (bl, cl, ml)) ->
           [ i n; f bj; f cj; f mj; f bl; f cl; f ml ])
         points)
  in
  (fig8a, fig8b)
