(** Run the full experiment suite.

    One entry per panel of the paper's Figure 8; {!run_all} executes
    them in order, invoking a callback as each table completes so
    callers can stream progress. *)

val experiments : (string * (Params.t -> Table.t list)) list
(** [(figure ids, runner)] pairs in presentation order: the nine
    Figure 8 panels followed by two extension experiments
    (routing-table ablation, mass-failure resilience). *)

val run_all : ?on_table:(Table.t -> unit) -> Params.t -> Table.t list
(** Execute every experiment and return all tables. *)

val run_one : string -> Params.t -> Table.t list
(** Run the experiment group containing the given figure id (e.g.
    ["fig8a"]). @raise Not_found for unknown ids. *)
