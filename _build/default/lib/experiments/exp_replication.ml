module Rng = Baton_util.Rng
module Metrics = Baton_sim.Metrics
module Datagen = Baton_workload.Datagen

let run_wave ~seed ~n ~keys_count ~crash_count ~replicate =
  let net = Baton.Network.build ~seed n in
  let repl = Baton.Replication.create () in
  if replicate then ignore (Baton.Replication.sync_all repl net);
  let gen = Datagen.uniform (Rng.create (seed + 3)) in
  let m = Baton.Net.metrics net in
  let cp = Metrics.checkpoint m in
  let keys = Array.init keys_count (fun _ -> Datagen.next gen) in
  Array.iter
    (fun k ->
      let st = Baton.Update.insert net ~from:(Baton.Net.random_peer net) k in
      if replicate then
        Baton.Replication.on_insert repl net
          ~owner:(Baton.Net.peer net st.Baton.Update.node)
          k)
    keys;
  let insert_msgs = Metrics.since m cp in
  (* Crash a random set of peers, repair, recover replicas. *)
  let rng = Rng.create (seed + 5) in
  let candidates =
    List.filter
      (fun (node : Baton.Node.t) -> not (Baton.Node.is_root node))
      (Baton.Net.peers net)
    |> Array.of_list
  in
  Rng.shuffle rng candidates;
  let victims =
    Array.to_list (Array.sub candidates 0 (min crash_count (Array.length candidates)))
  in
  List.iter (fun v -> Baton.Failure.crash net v) victims;
  let cp2 = Metrics.checkpoint m in
  (* Repair every crash before recovering replicas, so holders that
     crashed in the same wave have been replaced first. *)
  List.iter
    (fun (v : Baton.Node.t) ->
      Baton.Failure.repair net ~reporter:(Baton.Net.random_peer net) v.Baton.Node.id)
    victims;
  if replicate then
    List.iter
      (fun (v : Baton.Node.t) ->
        ignore (Baton.Replication.recover repl net ~dead:v.Baton.Node.id))
      victims;
  let repair_msgs = Metrics.since m cp2 in
  let lookup k =
    match Baton.Network.lookup net k with
    | found -> found
    | exception Baton.Search.Routing_stuck _ -> false
  in
  let survivors = Array.to_list keys |> List.filter lookup in
  ( float_of_int (List.length survivors) /. float_of_int keys_count,
    float_of_int insert_msgs /. float_of_int keys_count,
    repair_msgs,
    List.length victims )

let run (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let keys_count = p.Params.keys_per_node * n / 2 in
  let crash_count = max 2 (n / 20) in
  let rows =
    List.map
      (fun replicate ->
        let survival, per_insert, repair_msgs, crashed =
          run_wave ~seed:p.Params.seed ~n ~keys_count ~crash_count ~replicate
        in
        [
          (if replicate then "on" else "off");
          Table.cell_int crashed;
          Printf.sprintf "%.1f%%" (100. *. survival);
          Table.cell_float per_insert;
          Table.cell_int repair_msgs;
        ])
      [ false; true ]
  in
  Table.make ~id:"replication"
    ~title:"Data survival of crash waves with and without adjacent replication"
    ~header:[ "replication"; "peers crashed"; "data surviving"; "msgs/insert"; "repair msgs" ]
    ~notes:
      [
        Printf.sprintf
          "N = %d peers, %d keys; write-through replication costs one extra \
           message per insert and restores the crashed peers' data from \
           their adjacent replica holders."
          n keys_count;
      ]
    rows
