type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows = { id; title; header; rows; notes }

let cell_int = string_of_int
let cell_float v = Printf.sprintf "%.2f" v

let widths t =
  let all = t.header :: t.rows in
  let cols = List.length t.header in
  List.init cols (fun c ->
      List.fold_left
        (fun acc row ->
          match List.nth_opt row c with
          | Some cell -> max acc (String.length cell)
          | None -> acc)
        0 all)

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let rtrim s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do
    decr n
  done;
  String.sub s 0 !n

let render t =
  let ws = widths t in
  let line row =
    String.concat "  " (List.mapi (fun i cell -> pad (List.nth ws i) cell) row)
    |> rtrim
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "== %s: %s ==\n" t.id t.title);
  Buffer.add_string buf (line t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length (line t.header)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    t.rows;
  List.iter (fun n -> Buffer.add_string buf ("note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let markdown t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "### %s — %s\n\n" t.id t.title);
  Buffer.add_string buf ("| " ^ String.concat " | " t.header ^ " |\n");
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") t.header) ^ "|\n");
  List.iter
    (fun row -> Buffer.add_string buf ("| " ^ String.concat " | " row ^ " |\n"))
    t.rows;
  List.iter (fun n -> Buffer.add_string buf ("\n_" ^ n ^ "_\n")) t.notes;
  Buffer.contents buf
