module Rng = Baton_util.Rng

let load_keys ~seed ~n ~keys_per_node ~insert =
  let gen = Baton_workload.Datagen.uniform (Rng.create (seed * 31 + 7)) in
  let keys = Baton_workload.Datagen.take gen (keys_per_node * n) in
  Array.iter insert keys;
  keys

let build_baton ?(balance = true) ~seed ~n ~keys_per_node () =
  let net = Baton.Network.build ~seed n in
  let cfg = Baton.Balance.default_config ~capacity:(max 8 (4 * keys_per_node)) in
  let insert k =
    let st = Baton.Update.insert net ~from:(Baton.Net.random_peer net) k in
    if balance then
      ignore (Baton.Balance.maybe_balance net cfg (Baton.Net.peer net st.Baton.Update.node))
  in
  let keys = load_keys ~seed ~n ~keys_per_node ~insert in
  (net, keys)

let build_chord ~seed ~n ~keys_per_node =
  let t = Chord.create ~seed () in
  for _ = 1 to n do
    ignore (Chord.join t)
  done;
  let keys = load_keys ~seed ~n ~keys_per_node ~insert:(fun k -> ignore (Chord.insert t k)) in
  (t, keys)

let build_multiway ~seed ~n ~keys_per_node =
  let t =
    Multiway.create ~seed ~domain_lo:Baton_workload.Datagen.domain_lo
      ~domain_hi:Baton_workload.Datagen.domain_hi ()
  in
  for _ = 1 to n do
    ignore (Multiway.join t)
  done;
  let keys =
    load_keys ~seed ~n ~keys_per_node ~insert:(fun k -> ignore (Multiway.insert t k))
  in
  (t, keys)

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

let avg_over_repeats ~repeats f =
  let rec loop i acc = if i >= repeats then acc else loop (i + 1) (f i :: acc) in
  mean (loop 0 [])
