(** Figure 8(i): effect of network dynamics.

    When several peers join or leave at the same time, the routing-
    table update notifications of one operation have not yet been
    delivered while the next operation routes — so requests are
    forwarded using stale knowledge and pay extra messages. The
    experiment defers all update notifications for a batch of [k]
    concurrent joins (and, separately, leaves), flushes at batch end,
    and reports the extra messages per operation relative to the
    sequential baseline. Expected shape: extra cost grows with [k]. *)

val run : Params.t -> Table.t
