(** Figures 8(g) and 8(h): cost of load balancing and distribution of
    restructuring shift sizes.

    A fixed-size network absorbs an insertion stream, uniform in one
    run and Zipfian (parameter 1.0) in the other, with the paper's
    balancing policy active. Figure 8(g) tracks cumulative balancing
    messages (including forced restructuring) against the number of
    insertions: near zero for uniform data, linear but very low for
    skewed data. Figure 8(h) histograms how many nodes each forced
    restructuring displaced: strongly exponential, long shifts are
    rare. *)

val run : Params.t -> Table.t * Table.t
(** [(fig8g, fig8h)]. *)
