(** Extension (not a paper figure): adjacent replication.

    The paper loses a crashed peer's data. This experiment quantifies
    the fix: with write-through adjacent replication, what fraction of
    data survives a wave of crashes + repairs, and what does the write
    path pay for it? *)

val run : Params.t -> Table.t
