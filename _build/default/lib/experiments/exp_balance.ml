module Rng = Baton_util.Rng
module Metrics = Baton_sim.Metrics
module Datagen = Baton_workload.Datagen
module Histogram = Baton_util.Histogram

let balance_msgs net =
  let m = Baton.Net.metrics net in
  Metrics.kind_count m Baton.Msg.balance + Metrics.kind_count m Baton.Msg.restructure

(* Insert [total] keys with balancing active, recording cumulative
   balancing messages at each checkpoint. *)
let balanced_run net gen ~capacity ~total ~checkpoints =
  let cfg = Baton.Balance.default_config ~capacity in
  let step = max 1 (total / checkpoints) in
  let out = ref [] in
  for i = 1 to total do
    let key = Datagen.next gen in
    let st = Baton.Update.insert net ~from:(Baton.Net.random_peer net) key in
    let node = Baton.Net.peer net st.Baton.Update.node in
    ignore (Baton.Balance.maybe_balance net cfg node);
    if i mod step = 0 then out := (i, balance_msgs net) :: !out
  done;
  List.rev !out

let run (p : Params.t) =
  let n = List.hd p.Params.sizes in
  let seed = p.Params.seed in
  (* Keep total volume well under saturation (average load = 1/8 of
     capacity): only skew, not aggregate fill, should trigger
     balancing — the paper's operating regime. *)
  let total = p.Params.balance_capacity * n / 8 in
  let checkpoints = 8 in
  let uniform_net = Baton.Network.build ~seed n in
  let uniform_series =
    balanced_run uniform_net
      (Datagen.uniform (Rng.create (seed + 51)))
      ~capacity:p.Params.balance_capacity ~total ~checkpoints
  in
  let zipf_net = Baton.Network.build ~seed:(seed + 1) n in
  let zipf_series =
    balanced_run zipf_net
      (Datagen.zipf (Rng.create (seed + 53)))
      ~capacity:p.Params.balance_capacity ~total ~checkpoints
  in
  let fig8g =
    Table.make ~id:"fig8g" ~title:"Cumulative load-balancing messages vs. insertions"
      ~header:
        [ "inserts"; "uniform msgs"; "zipf msgs"; "uniform msgs/insert";
          "zipf msgs/insert" ]
      ~notes:
        [
          Printf.sprintf
            "N = %d peers, capacity %d keys/node; balancing includes forced \
             restructuring traffic."
            n p.Params.balance_capacity;
        ]
      (List.map2
         (fun (i, u) (_, z) ->
           [
             Table.cell_int i;
             Table.cell_int u;
             Table.cell_int z;
             Printf.sprintf "%.4f" (float_of_int u /. float_of_int i);
             Printf.sprintf "%.4f" (float_of_int z /. float_of_int i);
           ])
         uniform_series zipf_series)
  in
  let hist = Baton.Net.shift_histogram zipf_net in
  let bins = Histogram.bins hist in
  let fig8h =
    Table.make ~id:"fig8h" ~title:"Distribution of restructuring shift sizes (Zipf run)"
      ~header:[ "nodes shifted"; "occurrences" ]
      ~notes:
        [ "Exponentially decreasing: most forced joins/leaves settle \
           after displacing very few nodes." ]
      (match bins with
      | [] -> [ [ "-"; "0" ] ]
      | _ -> List.map (fun (v, c) -> [ Table.cell_int v; Table.cell_int c ]) bins)
  in
  (fig8g, fig8h)
