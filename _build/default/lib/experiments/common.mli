(** Shared experiment plumbing: deterministic network builders and
    averaging helpers. *)

val build_baton :
  ?balance:bool ->
  seed:int -> n:int -> keys_per_node:int -> unit -> Baton.Net.t * int array
(** A BATON network of [n] peers loaded with [keys_per_node * n]
    uniform keys inserted through routed operations, with the paper's
    load balancing active during the load (disable with
    [~balance:false]). Returns the network and the inserted keys. *)

val build_chord : seed:int -> n:int -> keys_per_node:int -> Chord.t * int array

val build_multiway :
  seed:int -> n:int -> keys_per_node:int -> Multiway.t * int array

val mean : float list -> float
(** Arithmetic mean; 0. for the empty list. *)

val avg_over_repeats : repeats:int -> (int -> float) -> float
(** [avg_over_repeats ~repeats f] averages [f seed_index] over
    [repeats] runs. *)
