(** Result tables.

    Every experiment returns one or more tables mirroring a panel of
    the paper's Figure 8; the runner renders them as aligned text (for
    the bench harness) or markdown (for EXPERIMENTS.md). *)

type t = {
  id : string;  (** e.g. "fig8a" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

val make :
  id:string -> title:string -> header:string list ->
  ?notes:string list -> string list list -> t

val cell_int : int -> string
val cell_float : float -> string

val render : t -> string
(** Aligned plain-text rendering. *)

val markdown : t -> string
