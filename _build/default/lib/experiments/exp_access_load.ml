module Rng = Baton_util.Rng
module Metrics = Baton_sim.Metrics
module Datagen = Baton_workload.Datagen
module Querygen = Baton_workload.Querygen

let run (p : Params.t) =
  let n = List.fold_left max 0 p.Params.sizes in
  let seed = p.Params.seed in
  let net, keys = Common.build_baton ~seed ~n ~keys_per_node:p.Params.keys_per_node () in
  (* Reset counters so only the measured workload is tallied. *)
  Metrics.reset (Baton.Net.metrics net);
  let gen = Datagen.uniform (Rng.create (seed + 41)) in
  let ops = p.Params.queries * 5 in
  for _ = 1 to ops do
    ignore (Baton.Update.insert net ~from:(Baton.Net.random_peer net) (Datagen.next gen))
  done;
  let rng = Rng.create (seed + 43) in
  Array.iter
    (fun k -> ignore (Baton.Search.lookup net ~from:(Baton.Net.random_peer net) k))
    (Querygen.exact_targets rng ~keys ops);
  let metrics = Baton.Net.metrics net in
  let by_level = Hashtbl.create 16 in
  List.iter
    (fun (node : Baton.Node.t) ->
      let level = Baton.Node.level node in
      let ins = Metrics.node_kind_count metrics node.Baton.Node.id Baton.Msg.insert in
      let search =
        Metrics.node_kind_count metrics node.Baton.Node.id Baton.Msg.search_exact
      in
      let entry =
        match Hashtbl.find_opt by_level level with
        | Some e -> e
        | None ->
          let e = (ref 0, ref 0, ref 0) in
          Hashtbl.add by_level level e;
          e
      in
      let count, ins_total, search_total = entry in
      incr count;
      ins_total := !ins_total + ins;
      search_total := !search_total + search)
    (Baton.Net.peers net);
  let rows =
    Hashtbl.fold (fun level e acc -> (level, e) :: acc) by_level []
    |> List.sort compare
    |> List.map (fun (level, (count, ins, search)) ->
           [
             Table.cell_int level;
             Table.cell_int !count;
             Table.cell_float (float_of_int !ins /. float_of_int !count);
             Table.cell_float (float_of_int !search /. float_of_int !count);
           ])
  in
  Table.make ~id:"fig8f" ~title:"Access load per node by tree level"
    ~header:[ "level"; "nodes"; "insert msgs/node"; "search msgs/node" ]
    ~notes:
      [
        Printf.sprintf "N = %d peers, %d inserts and %d exact searches." n ops ops;
        "The root (level 0) is not the hottest node: load is flat for \
         inserts and leaf-biased for searches, as in the paper.";
      ]
    rows
