(** Extension (not a paper figure): end-to-end query latency.

    Message counts (the paper's metric) translate into wall-clock
    latency through per-link RTTs. With a deterministic heavy-tailed
    link-latency model, this experiment reports the exact-query latency
    distribution (mean / p50 / p95 / p99) for BATON and Chord at one
    network size — hop counts being nearly equal, so are latencies,
    which is the point: BATON buys range queries without a latency
    premium over a DHT. *)

val run : Params.t -> Table.t
