module Rng = Baton_util.Rng
module Datagen = Baton_workload.Datagen

(* Adjacent-only routing: what search would cost without the sideways
   tables. One message per in-order step. *)
let adjacent_only_hops net ~(from : Baton.Node.t) v =
  let budget = 8 * (1 + Baton.Net.size net) in
  let rec walk (n : Baton.Node.t) hops =
    if hops > budget then hops
    else if Baton.Range.contains n.Baton.Node.range v then hops
    else
      let side = if Baton.Range.is_left_of n.Baton.Node.range v then `Right else `Left in
      match Baton.Node.adjacent n side with
      | None -> hops
      | Some next ->
        walk (Baton.Net.send net ~src:n.Baton.Node.id ~dst:next.Baton.Link.peer
                ~kind:"ablation.adjacent")
          (hops + 1)
  in
  walk from 0

let run (p : Params.t) =
  let queries = max 20 (p.Params.queries / 10) in
  let rows =
    List.map
      (fun n ->
        let net, _keys =
          Common.build_baton ~seed:(p.Params.seed + 77) ~n
            ~keys_per_node:(max 1 (p.Params.keys_per_node / 4)) ()
        in
        let rng = Rng.create (p.Params.seed + 79) in
        let with_tables = ref [] and without = ref [] in
        for _ = 1 to queries do
          let v = Rng.int_in_range rng ~lo:Datagen.domain_lo ~hi:(Datagen.domain_hi - 1) in
          let from = Baton.Net.random_peer net in
          let o = Baton.Search.exact net ~from v in
          with_tables := float_of_int o.Baton.Search.hops :: !with_tables;
          without := float_of_int (adjacent_only_hops net ~from v) :: !without
        done;
        [
          Table.cell_int n;
          Table.cell_float (Common.mean !with_tables);
          Table.cell_float (Common.mean !without);
        ])
      p.Params.sizes
  in
  Table.make ~id:"ablation-tables"
    ~title:"Exact-query cost with and without the sideways routing tables"
    ~header:[ "N"; "with tables (BATON)"; "adjacent links only" ]
    ~notes:
      [ "Extension beyond the paper: removing the paper's key design \
         element degrades search from O(log N) towards O(N)." ]
    rows
