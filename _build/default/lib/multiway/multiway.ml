module Bus = Baton_sim.Bus
module Metrics = Baton_sim.Metrics
module Rng = Baton_util.Rng
module Dyn_array = Baton_util.Dyn_array
module Sorted_store = Baton_util.Sorted_store

type interval = { lo : int; hi : int } (* half-open [lo, hi) *)

type node = {
  id : int;
  mutable parent : int option;
  children : int Dyn_array.t;
  mutable lower : int option;  (* in-order predecessor peer *)
  mutable upper : int option;  (* in-order successor peer *)
  mutable range : interval;  (* keys this peer manages directly *)
  mutable domain : interval;  (* interval handed to it at join; its
                                 subtree covered it at that time *)
  store : Sorted_store.t;
}

type t = {
  bus : Bus.t;
  peers : (int, node) Hashtbl.t;
  id_list : int Dyn_array.t;  (* dense id array for O(1) random pick *)
  id_index : (int, int) Hashtbl.t;
  rng : Rng.t;
  fanout : int;
  domain : interval;
  mutable root : int option;
  mutable next_id : int;
}

type join_stats = { peer : int; search_msgs : int; update_msgs : int }
type leave_stats = { search_msgs : int; update_msgs : int }

let k_search = "mtree.search"
let k_range = "mtree.range"
let k_join_search = "mtree.join.search"
let k_join_update = "mtree.join.update"
let k_leave_search = "mtree.leave.search"
let k_leave_update = "mtree.leave.update"
let k_insert = "mtree.insert"
let k_delete = "mtree.delete"

let create ?(seed = 42) ?(fanout = 4) ~domain_lo ~domain_hi () =
  if fanout < 1 then invalid_arg "Multiway.create: fanout must be >= 1";
  if domain_lo >= domain_hi then invalid_arg "Multiway.create: empty domain";
  {
    bus = Bus.create ();
    peers = Hashtbl.create 4096;
    id_list = Dyn_array.create ();
    id_index = Hashtbl.create 4096;
    rng = Rng.create seed;
    fanout;
    domain = { lo = domain_lo; hi = domain_hi };
    root = None;
    next_id = 0;
  }

let size t = Hashtbl.length t.peers
let metrics t = Bus.metrics t.bus
let peer t id = Hashtbl.find t.peers id

let peer_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.peers [] |> List.sort compare |> Array.of_list

let track t id =
  Hashtbl.replace t.id_index id (Dyn_array.length t.id_list);
  Dyn_array.push t.id_list id

let untrack t id =
  match Hashtbl.find_opt t.id_index id with
  | Some i ->
    let last = Dyn_array.pop t.id_list in
    if last <> id then begin
      Dyn_array.set t.id_list i last;
      Hashtbl.replace t.id_index last i
    end;
    Hashtbl.remove t.id_index id
  | None -> ()

let random_peer t =
  if Dyn_array.length t.id_list = 0 then
    invalid_arg "Multiway.random_peer: empty network";
  peer t (Dyn_array.get t.id_list (Rng.int t.rng (Dyn_array.length t.id_list)))

let send t ~src ~dst ~kind =
  Bus.send t.bus ~src ~dst ~kind;
  peer t dst

let contains i v = i.lo <= v && v < i.hi

let rec depth t (n : node) =
  match n.parent with None -> 0 | Some p -> 1 + depth t (peer t p)

let height t =
  Hashtbl.fold (fun _ n acc -> max acc (depth t n)) t.peers 0

(* Hop-by-hop routing: own range, then a child whose join-time domain
   covers the key, then the parent, then a neighbour walk in the key's
   direction (the recovery path for ranges that migrated on
   departures). *)
let route t ~(from : node) key ~kind =
  let budget = 64 + (8 * (1 + size t)) in
  (* [sticky] marks that the walk has switched to pure neighbour
     forwarding (a key outside every subtree interval, e.g. beyond the
     current key space): from then on the walk is monotone along the
     in-order chain and terminates at the responsible edge peer. *)
  let rec step (n : node) hops ~sticky =
    if hops > budget then failwith "Multiway.route: routing loop"
    else if contains n.range key then (n, hops)
    else if key < n.range.lo && Option.is_none n.lower then (n, hops)
      (* global leftmost: the key precedes the key space; expansion target *)
    else if key >= n.range.hi && Option.is_none n.upper then (n, hops)
    else if sticky then
      let towards = if key < n.range.lo then n.lower else n.upper in
      step (send t ~src:n.id ~dst:(Option.get towards) ~kind) (hops + 1) ~sticky
    else begin
      let child_covering =
        Dyn_array.fold_left
          (fun acc cid ->
            match acc with
            | Some _ -> acc
            | None ->
              let c = peer t cid in
              if contains c.domain key then Some c else None)
          None n.children
      in
      match child_covering with
      | Some c -> step (send t ~src:n.id ~dst:c.id ~kind) (hops + 1) ~sticky:false
      | None ->
        if (not (contains n.domain key)) && Option.is_some n.parent then
          step (send t ~src:n.id ~dst:(Option.get n.parent) ~kind) (hops + 1)
            ~sticky:false
        else begin
          (* Inside our own interval but owned elsewhere (a migrated
             range), or at the root: hop neighbours from here on. *)
          let towards = if key < n.range.lo then n.lower else n.upper in
          match towards with
          | Some next -> step (send t ~src:n.id ~dst:next ~kind) (hops + 1) ~sticky:true
          | None -> (n, hops) (* end of the key space: this peer expands *)
        end
    end
  in
  step from 0 ~sticky:false

let fresh_node t ~range ~domain =
  let id = t.next_id in
  t.next_id <- id + 1;
  let n =
    {
      id;
      parent = None;
      children = Dyn_array.create ();
      lower = None;
      upper = None;
      range;
      domain;
      store = Sorted_store.create ();
    }
  in
  Hashtbl.add t.peers id n;
  track t id;
  n

let split_point (n : node) =
  let keys = Sorted_store.to_list n.store in
  let len = List.length keys in
  let candidate =
    if len = 0 then n.range.lo + ((n.range.hi - n.range.lo) / 2)
    else List.nth keys (len / 2)
  in
  if candidate > n.range.lo && candidate < n.range.hi then candidate
  else n.range.lo + ((n.range.hi - n.range.lo) / 2)

(* Accept a new child: it takes the upper half of the acceptor's range
   and slots in as its in-order successor. *)
let accept t (v : node) =
  let m = split_point v in
  let child_range = { lo = m; hi = v.range.hi } in
  let child = fresh_node t ~range:child_range ~domain:child_range in
  v.range <- { v.range with hi = m };
  let moved = Sorted_store.split_at_or_above v.store m in
  Sorted_store.absorb child.store moved;
  child.parent <- Some v.id;
  Dyn_array.push v.children child.id;
  (* Adjacency: v < child < v's old successor. *)
  child.lower <- Some v.id;
  child.upper <- v.upper;
  (match v.upper with
  | Some w ->
    let w = send t ~src:child.id ~dst:w ~kind:k_join_update in
    w.lower <- Some child.id
  | None -> ());
  v.upper <- Some child.id;
  ignore (send t ~src:v.id ~dst:child.id ~kind:k_join_update);
  child

let join t =
  match t.root with
  | None ->
    let root = fresh_node t ~range:t.domain ~domain:t.domain in
    t.root <- Some root.id;
    { peer = root.id; search_msgs = 0; update_msgs = 0 }
  | Some _ ->
    let via = random_peer t in
    let m = metrics t in
    let cp = Metrics.checkpoint m in
    (* Walk down until a node with a spare child slot accepts. *)
    let rec place (n : node) =
      if Dyn_array.length n.children < t.fanout then n
      else
        let cid = Dyn_array.get n.children (Rng.int t.rng (Dyn_array.length n.children)) in
        place (send t ~src:n.id ~dst:cid ~kind:k_join_search)
    in
    let acceptor = place via in
    let search_msgs = Metrics.since m cp in
    let cp2 = Metrics.checkpoint m in
    let child = accept t acceptor in
    { peer = child.id; search_msgs; update_msgs = Metrics.since m cp2 }

(* When a range [a, b) migrates to a peer outside the subtrees that
   used to cover it, the receiving side's ancestors must widen their
   subtree intervals. The absorbed range always sits at the edge of
   each such ancestor's interval, so the update is a parent walk that
   stops at the first common ancestor — one message per level. *)
let extend_domains_hi t (start : node) ~edge ~new_hi =
  let rec climb (n : node) =
    if n.domain.hi = edge then begin
      n.domain <- { n.domain with hi = new_hi };
      match n.parent with
      | Some p -> climb (send t ~src:n.id ~dst:p ~kind:k_leave_update)
      | None -> ()
    end
  in
  climb start

let extend_domains_lo t (start : node) ~edge ~new_lo =
  let rec climb (n : node) =
    if n.domain.lo = edge then begin
      n.domain <- { n.domain with lo = new_lo };
      match n.parent with
      | Some p -> climb (send t ~src:n.id ~dst:p ~kind:k_leave_update)
      | None -> ()
    end
  in
  climb start

(* A leaf hands its range and content to an in-order neighbour and
   unlinks itself. *)
let remove_leaf t (x : node) ~kind =
  assert (Dyn_array.is_empty x.children);
  (match (x.lower, x.upper) with
  | Some l, _ ->
    let l_node = send t ~src:x.id ~dst:l ~kind in
    Sorted_store.absorb l_node.store x.store;
    l_node.range <- { l_node.range with hi = x.range.hi };
    extend_domains_hi t l_node ~edge:x.range.lo ~new_hi:x.range.hi
  | None, Some u ->
    let u_node = send t ~src:x.id ~dst:u ~kind in
    Sorted_store.absorb u_node.store x.store;
    u_node.range <- { u_node.range with lo = x.range.lo };
    extend_domains_lo t u_node ~edge:x.range.hi ~new_lo:x.range.lo
  | None, None -> ());
  (* Splice neighbour links. *)
  (match x.lower with
  | Some l -> (send t ~src:x.id ~dst:l ~kind).upper <- x.upper
  | None -> ());
  (match x.upper with
  | Some u -> (send t ~src:x.id ~dst:u ~kind).lower <- x.lower
  | None -> ());
  (* Detach from the parent. *)
  (match x.parent with
  | Some p ->
    let p_node = send t ~src:x.id ~dst:p ~kind in
    let rec find i =
      if i >= Dyn_array.length p_node.children then ()
      else if Dyn_array.get p_node.children i = x.id then
        ignore (Dyn_array.remove p_node.children i)
      else find (i + 1)
    in
    find 0
  | None -> t.root <- None);
  Hashtbl.remove t.peers x.id;
  untrack t x.id

(* Replacement search for an internal node: consult every child at each
   level (the cost the paper attributes to [10]) and descend until a
   leaf is found. *)
let find_replacement t (x : node) =
  let rec descend (n : node) =
    if Dyn_array.is_empty n.children then n
    else begin
      let best = ref None in
      Dyn_array.iter
        (fun cid ->
          let c = send t ~src:n.id ~dst:cid ~kind:k_leave_search in
          match !best with
          | None -> best := Some c
          | Some b ->
            if Dyn_array.length c.children <= Dyn_array.length b.children then
              best := Some c)
        n.children;
      descend (Option.get !best)
    end
  in
  descend x

let leave t id =
  let x = peer t id in
  let m = metrics t in
  if Dyn_array.is_empty x.children then begin
    let cp = Metrics.checkpoint m in
    remove_leaf t x ~kind:k_leave_update;
    { search_msgs = 0; update_msgs = Metrics.since m cp }
  end
  else begin
    let cp = Metrics.checkpoint m in
    let r = find_replacement t x in
    let search_msgs = Metrics.since m cp in
    let cp2 = Metrics.checkpoint m in
    remove_leaf t r ~kind:k_leave_update;
    (* r assumes x's identity in the tree: links, range, data, domain.
       remove_leaf dropped r from the registry; it rejoins at x's
       place. *)
    Hashtbl.add t.peers r.id r;
    track t r.id;
    ignore (send t ~src:x.id ~dst:r.id ~kind:k_leave_update);
    Sorted_store.absorb r.store x.store;
    r.range <- x.range;
    r.domain <- x.domain;
    r.parent <- x.parent;
    Dyn_array.iter (fun cid -> Dyn_array.push r.children cid) x.children;
    r.lower <- x.lower;
    r.upper <- x.upper;
    (* Everyone linking to x repoints at r, one message each. *)
    (match x.parent with
    | Some p ->
      let p_node = send t ~src:r.id ~dst:p ~kind:k_leave_update in
      Dyn_array.iteri
        (fun i cid -> if cid = x.id then Dyn_array.set p_node.children i r.id)
        p_node.children
    | None -> t.root <- Some r.id);
    Dyn_array.iter
      (fun cid -> (send t ~src:r.id ~dst:cid ~kind:k_leave_update).parent <- Some r.id)
      r.children;
    (match r.lower with
    | Some l -> (send t ~src:r.id ~dst:l ~kind:k_leave_update).upper <- Some r.id
    | None -> ());
    (match r.upper with
    | Some u -> (send t ~src:r.id ~dst:u ~kind:k_leave_update).lower <- Some r.id
    | None -> ());
    Hashtbl.remove t.peers x.id;
    untrack t x.id;
    { search_msgs; update_msgs = Metrics.since m cp2 }
  end

let insert t key =
  let from = random_peer t in
  let n, hops = route t ~from key ~kind:k_insert in
  if not (contains n.range key) then begin
    (* End of the key space: expand range and subtree intervals. *)
    if key < n.range.lo then begin
      let edge = n.range.lo in
      n.range <- { n.range with lo = key };
      extend_domains_lo t n ~edge ~new_lo:key
    end
    else begin
      let edge = n.range.hi in
      n.range <- { n.range with hi = key + 1 };
      extend_domains_hi t n ~edge ~new_hi:(key + 1)
    end
  end;
  Sorted_store.insert n.store key;
  hops

let delete t key =
  let from = random_peer t in
  let n, hops = route t ~from key ~kind:k_delete in
  (Sorted_store.remove n.store key, hops)

let lookup t key =
  let from = random_peer t in
  let n, hops = route t ~from key ~kind:k_search in
  (Sorted_store.mem n.store key, hops)

let range_query t ~lo ~hi =
  if lo > hi then invalid_arg "Multiway.range_query: lo > hi";
  let from = random_peer t in
  let n, hops = route t ~from lo ~kind:k_range in
  let keys = ref (Sorted_store.keys_in n.store ~lo ~hi) in
  let extra = ref 0 in
  let rec sweep (n : node) =
    if n.range.hi <= hi then
      match n.upper with
      | Some u ->
        let next = send t ~src:n.id ~dst:u ~kind:k_range in
        incr extra;
        keys := !keys @ Sorted_store.keys_in next.store ~lo ~hi;
        sweep next
      | None -> ()
  in
  sweep n;
  (!keys, hops + !extra)

let node_load t id = Sorted_store.length (peer t id).store

let check t =
  let fail fmt = Format.kasprintf failwith fmt in
  match t.root with
  | None -> if size t <> 0 then fail "multiway: no root but %d peers" (size t)
  | Some root_id ->
    (* Every peer reaches the root through parents. *)
    Hashtbl.iter
      (fun _ (n : node) ->
        let rec climb (m : node) steps =
          if steps > size t then fail "multiway: parent cycle at peer %d" n.id
          else
            match m.parent with
            | None ->
              if m.id <> root_id then fail "multiway: peer %d climbs to non-root %d" n.id m.id
            | Some p -> climb (peer t p) (steps + 1)
        in
        climb n 0;
        Dyn_array.iter
          (fun cid ->
            match Hashtbl.find_opt t.peers cid with
            | None -> fail "multiway: peer %d lists dead child %d" n.id cid
            | Some c ->
              if c.parent <> Some n.id then
                fail "multiway: child %d of %d has parent %s" cid n.id
                  (match c.parent with Some p -> string_of_int p | None -> "none"))
          n.children;
        Baton_util.Sorted_store.to_list n.store
        |> List.iter (fun k ->
               if not (contains n.range k) then
                 fail "multiway: key %d outside range [%d,%d) at peer %d" k n.range.lo
                   n.range.hi n.id))
      t.peers;
    (* The in-order chain tiles the key space. *)
    let leftmost =
      Hashtbl.fold
        (fun _ (n : node) acc ->
          match acc with
          | None -> Some n
          | Some (b : node) -> if n.range.lo < b.range.lo then Some n else acc)
        t.peers None
    in
    (match leftmost with
    | None -> ()
    | Some first ->
      let rec walk (n : node) seen =
        if seen > size t then fail "multiway: neighbour chain too long";
        (match n.upper with
        | Some u ->
          let next = peer t u in
          if n.range.hi <> next.range.lo then
            fail "multiway: ranges [%d,%d) and [%d,%d) do not tile" n.range.lo
              n.range.hi next.range.lo next.range.hi;
          walk next (seen + 1)
        | None ->
          if seen + 1 <> size t then
            fail "multiway: neighbour chain covers %d of %d peers" (seen + 1) (size t))
      in
      walk first 0)
