(** Multiway-tree baseline (Liau et al., DBISP2P 2004 — reference [10]
    of the BATON paper).

    The second comparison system: an ordered tree overlay with no
    fan-out constraint and no balancing. Each peer keeps links to its
    parent, its children, and its in-order neighbours; there are no
    sideways routing tables. Joins are cheap (walk down to any node
    with a spare child slot); departures are expensive (an internal
    node must consult every child to organise a replacement); searches
    route hop-by-hop through parent/child/neighbour links and funnel
    through the upper tree, so they cost more messages than BATON and
    concentrate load near the root — the contrasts drawn in
    Figures 8(a-e) and in the fault-tolerance discussion.

    A node's range is split with each accepted child (the child takes
    the upper half), and a departing leaf merges its range into its
    in-order predecessor, so the key space always tiles across peers
    and range queries work by neighbour walks, as in [10]. *)

type t

val create : ?seed:int -> ?fanout:int -> domain_lo:int -> domain_hi:int -> unit -> t
(** [fanout] bounds how many children a node accepts before forwarding
    joins into its subtree (default 4). *)

val size : t -> int
val metrics : t -> Baton_sim.Metrics.t
val peer_ids : t -> int array
val height : t -> int

type join_stats = { peer : int; search_msgs : int; update_msgs : int }

val join : t -> join_stats
(** Add one peer via a random existing peer (bootstraps an empty
    network). *)

type leave_stats = { search_msgs : int; update_msgs : int }

val leave : t -> int -> leave_stats
(** Graceful departure of the given peer. *)

val insert : t -> int -> int
(** Store a key; returns messages spent. *)

val delete : t -> int -> bool * int
val lookup : t -> int -> bool * int

val range_query : t -> lo:int -> hi:int -> int list * int
(** Keys in the closed interval and the messages spent. *)

val node_load : t -> int -> int
(** Keys stored at a peer. *)

val check : t -> unit
(** Verify tree shape, range tiling, neighbour links and data
    placement. @raise Failure on the first violation. *)
