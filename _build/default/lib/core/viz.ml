let node_line (n : Node.t) =
  Printf.sprintf "%s peer=%d range=%s load=%d%s" (Position.to_string n.Node.pos)
    n.Node.id
    (Range.to_string n.Node.range)
    (Node.load n)
    (if Node.is_leaf n then " leaf" else "")

let count_subtree net pos =
  let rec go pos acc =
    match Wiring.occupant net pos with
    | None -> acc
    | Some _ ->
      go (Position.right_child pos) (go (Position.left_child pos) (acc + 1))
  in
  go pos 0

let tree ?max_depth net =
  let buf = Buffer.create 1024 in
  let cut depth =
    match max_depth with Some d -> depth >= d | None -> false
  in
  let rec render pos depth =
    match Wiring.occupant net pos with
    | None -> ()
    | Some n ->
      if cut depth then
        Buffer.add_string buf
          (Printf.sprintf "%s... %d more nodes below %s\n"
             (String.make (2 * depth) ' ')
             (count_subtree net pos)
             (Position.to_string pos))
      else begin
        Buffer.add_string buf (String.make (2 * depth) ' ');
        Buffer.add_string buf (node_line n);
        Buffer.add_char buf '\n';
        render (Position.left_child pos) (depth + 1);
        render (Position.right_child pos) (depth + 1)
      end
  in
  (match Net.root net with
  | Some root -> render root.Node.pos 0
  | None -> Buffer.add_string buf "(empty network)\n");
  Buffer.contents buf

let level_summary net =
  let by_level = Hashtbl.create 16 in
  List.iter
    (fun (n : Node.t) ->
      let level = Node.level n in
      let count, load =
        match Hashtbl.find_opt by_level level with
        | Some (c, l) -> (c, l)
        | None -> (0, 0)
      in
      Hashtbl.replace by_level level (count + 1, load + Node.load n))
    (Net.peers net);
  let buf = Buffer.create 256 in
  Hashtbl.fold (fun level stats acc -> (level, stats) :: acc) by_level []
  |> List.sort compare
  |> List.iter (fun (level, (count, load)) ->
         Buffer.add_string buf
           (Printf.sprintf "level %2d: %5d/%d nodes, %d keys\n" level count
              (Position.level_width level)
              load));
  Buffer.contents buf
