(** Logical tree positions.

    A BATON node's logical id is a (level, number) pair: the root is at
    level 0, the level of any node is one greater than its parent's,
    and at level [l] the positions are numbered [1 .. 2^l] left to
    right whether or not a peer occupies them (paper Section III). *)

type t = { level : int; number : int }

val root : t

val make : level:int -> number:int -> t
(** @raise Invalid_argument unless [0 <= level] and
    [1 <= number <= 2^level]. *)

val equal : t -> t -> bool
val compare_level_order : t -> t -> int
(** Order by (level, number) — not the in-order traversal order. *)

val is_root : t -> bool

val parent : t -> t
(** @raise Invalid_argument on the root. *)

val left_child : t -> t
val right_child : t -> t
val child : t -> [ `Left | `Right ] -> t

val is_left_child : t -> bool
(** A non-root position is a left child iff its number is odd. *)

val sibling : t -> t
(** The other child of the parent. @raise Invalid_argument on the root. *)

val is_ancestor : ancestor:t -> t -> bool
(** [is_ancestor ~ancestor p]: is [ancestor] a strict ancestor of [p]? *)

val level_width : int -> int
(** [level_width l] = [2^l], the number of positions at level [l]. *)

val in_order_compare : t -> t -> int
(** Order of the in-order traversal of the infinite binary tree.
    Positions are mapped to their dyadic centres [(2n - 1) / 2^(l+1)]
    and compared exactly with integer arithmetic. *)

val neighbor : t -> [ `Left | `Right ] -> int -> t option
(** [neighbor p side j] is the same-level position at distance [2^j] on
    the given side, or [None] if that position falls outside
    [1 .. 2^level]. These are the slots of the sideways routing
    tables. *)

val table_size : t -> [ `Left | `Right ] -> int
(** Number of valid routing-table slots on a side: the count of [j >= 0]
    with [neighbor p side j <> None]. At most [level]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
