type t = { lo : int; hi : int }

let make ~lo ~hi =
  if lo >= hi then invalid_arg "Range.make: lo must be < hi";
  { lo; hi }

let width r = r.hi - r.lo
let contains r v = r.lo <= v && v < r.hi
let is_left_of r v = r.hi <= v
let is_right_of r v = v < r.lo
let intersects r ~lo ~hi = r.lo <= hi && lo < r.hi
let touches_left a b = a.hi = b.lo

let split_at r m =
  if m <= r.lo || m >= r.hi then invalid_arg "Range.split_at: point outside interior";
  ({ lo = r.lo; hi = m }, { lo = m; hi = r.hi })

let midpoint r =
  if width r < 2 then invalid_arg "Range.midpoint: range too narrow to split";
  r.lo + (width r / 2)

let merge a b =
  if touches_left a b then { lo = a.lo; hi = b.hi }
  else if touches_left b a then { lo = b.lo; hi = a.hi }
  else invalid_arg "Range.merge: ranges do not touch"

let equal a b = a.lo = b.lo && a.hi = b.hi
let to_string r = Printf.sprintf "[%d,%d)" r.lo r.hi
let pp fmt r = Format.pp_print_string fmt (to_string r)
