(** Tree-geometry helpers over the position map.

    These functions answer structural questions — who occupies a
    position, what is the in-order neighbour of a position, is it safe
    to add or remove a leaf — from the network's position map. The
    routing protocols themselves never call these to make forwarding
    decisions; they are used where the paper's prose abbreviates a
    conversation whose outcome is deterministic (rebuilding the links
    of a node that moved during restructuring, regenerating a failed
    node's tables), with the prescribed messages still paid by the
    caller, and by the invariant checker and tests. *)

val occupied : Net.t -> Position.t -> bool

val occupant : Net.t -> Position.t -> Node.t option

val in_order_successor : Net.t -> Position.t -> Position.t option
(** In-order successor position within the occupied tree. *)

val in_order_predecessor : Net.t -> Position.t -> Position.t option

val adjacent_position : Net.t -> Position.t -> [ `Left | `Right ] -> Position.t option
(** [`Left] is the in-order predecessor, [`Right] the successor. *)

val tables_full_at : Net.t -> Position.t -> bool
(** Structural version of Theorem 1's premise: every valid routing-slot
    position of the given position is occupied. By Theorem 1, a node
    here may gain a child without unbalancing the tree. *)

val safe_leaf_removal : Net.t -> Position.t -> bool
(** The position is an occupied leaf and no occupied routing-slot
    neighbour of it has occupied children — the paper's condition for a
    leaf to depart without a replacement. *)

val subtree_height : Net.t -> Position.t -> int
(** Height of the occupied subtree rooted at the position: 0 for an
    occupied leaf, -1 for an empty position. *)

val rebuild_links : ?skip_failed:bool -> Net.t -> Node.t -> kind:string -> unit
(** Recompute the node's parent, children, adjacent links and both
    routing tables from current occupancy, paying one message per
    contacted peer (the node queries each of them for its state). Used
    after the node's position changed, and — with [skip_failed] — by a
    node reconstituting links after discovering dead neighbours
    (Section III-D), in which case failed occupants are left out. *)

val announce : Net.t -> Node.t -> kind:string -> unit
(** Send the node's fresh {!Link.info} to everyone who links to it:
    parent, children, adjacent nodes and all routing-table neighbours —
    one message each; each recipient refreshes the matching link.
    Honours the network's deferred-notification mode. *)

val retract : Net.t -> Node.t -> kind:string -> unit
(** Tell parent, children, adjacents and table neighbours of the node
    to drop their links to it (the node's position is being vacated
    with no successor occupant). One message each. *)

val retract_position : Net.t -> pos:Position.t -> peer:int -> kind:string -> unit
(** {!retract} for an explicit (position, peer) pair — used when the
    occupant has already moved away from the vacated position. *)
