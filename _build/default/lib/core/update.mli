(** Data insertion and deletion (paper Section IV-C).

    Both locate the responsible node with the exact-match search
    ([O(log N)] messages) and update its local store. An insertion
    outside the current global range lands on the leftmost/rightmost
    node, which expands its range and pays an extra [O(log N)]
    notification round. *)

type insert_stats = {
  node : int;  (** peer id that stored the key *)
  hops : int;  (** search messages *)
  expanded : bool;  (** end-node range expansion happened *)
}

val insert : Net.t -> from:Node.t -> int -> insert_stats
(** Route from [from] and store the key. *)

type delete_stats = {
  node : int;  (** peer id that was responsible for the key *)
  hops : int;
  found : bool;  (** a matching key existed and was removed *)
}

val delete : Net.t -> from:Node.t -> int -> delete_stats
(** Route from [from] and remove one occurrence of the key. *)

type bulk_stats = {
  keys : int;  (** keys stored *)
  nodes : int;  (** peers that received data *)
  msgs : int;  (** total messages: one search plus the adjacent walk *)
}

val bulk_insert : Net.t -> from:Node.t -> int list -> bulk_stats
(** Batch insertion (the paper loads its data "in batches"): sort the
    keys, route once to the owner of the smallest, then distribute the
    rest along right-adjacent links — [O(log N + peers covered)]
    messages for the whole batch instead of [O(log N)] per key.
    End-of-domain keys expand the edge nodes' ranges as single inserts
    do. Load balancing is the caller's concern, as with {!insert}. *)
