(** Diagnostics rendering.

    Human-readable views of a network: an indented tree of positions,
    peers, ranges and loads, and a per-level summary. Used by the CLI's
    [inspect] command and handy in tests and the toplevel. *)

val tree : ?max_depth:int -> Net.t -> string
(** Indented in-order tree. Each line shows position, peer id, range
    and load; subtrees below [max_depth] (default unlimited) are
    elided with a count. *)

val level_summary : Net.t -> string
(** One line per level: node count, level capacity, total load. *)

val node_line : Node.t -> string
(** The single-line rendering used by {!tree}. *)
