(** Sideways routing tables.

    Each node keeps a left and a right routing table with links to
    same-level nodes whose numbers differ from its own by powers of two
    (paper Section III). Slot [j] addresses the node at distance [2^j].
    Slots whose position falls outside the level are not represented;
    represented slots may be [None] (no node at that position yet) —
    the table is {e full} when every represented slot is filled. *)

type t

val create : Position.t -> [ `Left | `Right ] -> t
(** Empty table for a node at the given position. *)

val side : t -> [ `Left | `Right ]
val size : t -> int
(** Number of represented slots. *)

val get : t -> int -> Link.info option
(** [get t j]: slot at distance [2^j]; [None] both for empty slots and
    for [j] beyond the table. *)

val set : t -> int -> Link.info option -> unit
(** @raise Invalid_argument if the slot is not represented. *)

val is_full : t -> bool
(** Every represented slot filled — the premise of Theorem 1. *)

val entries : t -> (int * Link.info) list
(** Filled slots as [(slot, info)], nearest first. *)

val filled_count : t -> int

val slot_for : owner:Position.t -> t -> Position.t -> int option
(** [slot_for ~owner t q]: the slot index that addresses position [q]
    from a node at [owner] on this table's side, if the distance is an
    exact represented power of two. *)

val update_peer : t -> int -> (Link.info -> Link.info) -> unit
(** Rewrite every filled slot whose target is the given peer id. *)

val remove_peer : t -> int -> unit
(** Empty every slot pointing at the given peer id. *)

val find : t -> (Link.info -> bool) -> Link.info option
(** Nearest filled entry satisfying the predicate. *)

val find_farthest : t -> (Link.info -> bool) -> Link.info option
(** Farthest filled entry satisfying the predicate — the scan order of
    the paper's exact-search algorithm. *)

val pp : Format.formatter -> t -> unit
