lib/core/msg.mli:
