lib/core/failure.ml: Baton_sim Baton_util Leave List Msg Net Node Option Position Routing_table Wiring
