lib/core/routing_table.ml: Array Format Link Option Position
