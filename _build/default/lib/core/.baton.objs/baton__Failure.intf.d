lib/core/failure.mli: Net Node
