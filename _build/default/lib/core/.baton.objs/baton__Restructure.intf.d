lib/core/restructure.mli: Net Node
