lib/core/balance.ml: Baton_sim Baton_util Link List Msg Net Node Range Restructure Wiring
