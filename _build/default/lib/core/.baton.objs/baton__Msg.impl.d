lib/core/msg.ml:
