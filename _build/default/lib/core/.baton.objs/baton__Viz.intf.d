lib/core/viz.mli: Net Node
