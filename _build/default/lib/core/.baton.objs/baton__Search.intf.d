lib/core/search.mli: Net Node
