lib/core/routing_table.mli: Format Link Position
