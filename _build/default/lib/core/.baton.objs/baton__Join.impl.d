lib/core/join.ml: Baton_sim Baton_util Hashtbl Link List Msg Net Node Option Position Range Routing_table
