lib/core/node.ml: Baton_util Format Link Option Position Range Routing_table
