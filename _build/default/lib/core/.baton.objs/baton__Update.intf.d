lib/core/update.mli: Net Node
