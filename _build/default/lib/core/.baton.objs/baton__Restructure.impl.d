lib/core/restructure.ml: Baton_util Join List Msg Net Node Option Position Range Wiring
