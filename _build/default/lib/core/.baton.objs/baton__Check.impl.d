lib/core/check.ml: Baton_util Format Link List Net Node Option Position Printf Range Routing_table Wiring
