lib/core/update.ml: Baton_sim Baton_util Link List Msg Net Node Range Search Wiring
