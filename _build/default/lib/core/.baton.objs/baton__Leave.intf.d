lib/core/leave.mli: Net Node
