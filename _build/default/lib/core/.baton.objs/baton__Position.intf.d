lib/core/position.mli: Format
