lib/core/check.mli: Net Node
