lib/core/join.mli: Net Node
