lib/core/net.mli: Baton_sim Baton_util Node Position Range
