lib/core/balance.mli: Net Node
