lib/core/position.ml: Format Printf
