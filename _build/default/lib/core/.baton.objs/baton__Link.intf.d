lib/core/link.mli: Format Position Range
