lib/core/replication.mli: Net Node
