lib/core/wiring.mli: Net Node Position
