lib/core/replication.ml: Baton_sim Baton_util Hashtbl Link List Msg Net Node Option Search Update
