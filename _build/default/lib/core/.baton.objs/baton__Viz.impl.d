lib/core/viz.ml: Buffer Hashtbl List Net Node Position Printf Range String Wiring
