lib/core/link.ml: Format Position Range
