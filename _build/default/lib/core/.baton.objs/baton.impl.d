lib/core/baton.ml: Balance Baton_sim Check Failure Join Leave Link Msg Net Node Position Range Replication Restructure Routing_table Search Update Viz Wiring
