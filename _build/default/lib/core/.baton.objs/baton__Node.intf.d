lib/core/node.mli: Baton_util Format Link Position Range Routing_table
