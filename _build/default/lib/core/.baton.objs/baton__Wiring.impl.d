lib/core/wiring.ml: Baton_sim Link List Net Node Option Position Routing_table
