lib/core/net.ml: Array Baton_sim Baton_util Fun Hashtbl List Marshal Msg Node Position Range String
