lib/core/search.ml: Baton_sim Baton_util Failure Link List Msg Net Node Range Routing_table Wiring
