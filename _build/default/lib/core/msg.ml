let join_search = "join.search"
let join_update = "join.update"
let leave_search = "leave.search"
let leave_update = "leave.update"
let search_exact = "search.exact"
let search_range = "search.range"
let insert = "insert"
let delete = "delete"
let expand = "expand"
let balance = "balance"
let restructure = "restructure"
let repair = "repair"

(* Simulator event names (Metrics.event) — observations that are not
   themselves messages. *)
let ev_retry = "send.retry"
let ev_give_up = "send.give_up"
let ev_notify_dropped = "notify.dropped"
let ev_notify_stale = "notify.stale"
let ev_suspect = "repair.suspect"
let ev_repair_triggered = "repair.triggered"

let all =
  [
    join_search;
    join_update;
    leave_search;
    leave_update;
    search_exact;
    search_range;
    insert;
    delete;
    expand;
    balance;
    restructure;
    repair;
  ]
