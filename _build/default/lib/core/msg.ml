let join_search = "join.search"
let join_update = "join.update"
let leave_search = "leave.search"
let leave_update = "leave.update"
let search_exact = "search.exact"
let search_range = "search.range"
let insert = "insert"
let delete = "delete"
let expand = "expand"
let balance = "balance"
let restructure = "restructure"
let repair = "repair"

let all =
  [
    join_search;
    join_update;
    leave_search;
    leave_update;
    search_exact;
    search_range;
    insert;
    delete;
    expand;
    balance;
    restructure;
    repair;
  ]
