(** Message kinds.

    Every protocol hop is accounted under one of these kinds so that
    experiments can separate, e.g., the cost of finding a join point
    (Figure 8(a)) from the cost of updating routing tables afterwards
    (Figure 8(b)). *)

val join_search : string
(** Forwarding a JOIN request (Algorithm 1). *)

val join_update : string
(** Routing-table / link updates after a node is accepted. *)

val leave_search : string
(** FINDREPLACEMENT forwarding (Algorithm 2). *)

val leave_update : string
(** Link and table updates when a node departs or is replaced. *)

val search_exact : string
(** Exact-match query forwarding. *)

val search_range : string
(** Range-query forwarding, including adjacent-link expansion. *)

val insert : string
(** Locating the node for a data insertion. *)

val delete : string
(** Locating the node for a data deletion. *)

val expand : string
(** Range-expansion notifications at the leftmost/rightmost node. *)

val balance : string
(** Load-balancing coordination and data migration. *)

val restructure : string
(** Position shifts and table rebuilds during forced restructuring. *)

val repair : string
(** Failure discovery, reporting and routing-table regeneration. *)

val all : string list
