(** Load balancing (paper Section IV-D).

    A non-leaf node balances only with its adjacent nodes (moving the
    shared range boundary so the two loads even out). An overloaded
    leaf first tries its adjacent nodes too; when those are also
    heavily loaded it probes its routing tables for a lightly loaded
    leaf, which hands its own data to its adjacent node, force-leaves
    its position (restructuring if required) and force-rejoins as the
    overloaded node's child, taking half of its content — the flow of
    the paper's Figure 7. *)

type config = {
  capacity : int;
      (** a node holding more than this many keys is overloaded *)
  light_load : int;
      (** a leaf holding at most this many keys may be recruited *)
}

val default_config : capacity:int -> config
(** [light_load = capacity / 4]. *)

val balance_with_adjacent : Net.t -> Node.t -> [ `Left | `Right ] -> bool
(** Move the boundary between the node and its adjacent on the given
    side so their loads even out. Returns [false] when there is no
    adjacent there, no legal key boundary achieves the split, or no
    load would move. *)

val maybe_balance : Net.t -> config -> Node.t -> bool
(** Run the paper's balancing policy on the node if it is overloaded.
    Returns [true] if any load moved. *)
