(** Structural invariant checks.

    Used pervasively by the test suite and available to applications
    as a diagnostic. Each check raises [Failure] with a descriptive
    message on the first violation; {!all} runs every check. *)

val tree_shape : Net.t -> unit
(** Occupied positions form a proper tree: a root exists (unless the
    network is empty) and every occupied non-root position has an
    occupied parent. *)

val balanced : Net.t -> unit
(** At every occupied position the two subtree heights differ by at
    most one (Definition 1). *)

val height_bound : Net.t -> unit
(** Height <= 1.44 log2 N + 1 (the AVL bound the paper cites). *)

val theorem1 : Net.t -> unit
(** Every node with a child has both routing tables structurally full. *)

val theorem2 : Net.t -> unit
(** If x links to y sideways, x's parent links to y's parent (or they
    share it). Verified structurally over the position map. *)

val links : ?strict:bool -> Net.t -> unit
(** Every node's parent, child, adjacent and routing links point at the
    correct peers. With [strict] (default), cached ranges and child
    flags must equal the targets' current state; without it only the
    peer identities and positions are verified (useful while deferred
    notifications are in flight). *)

val ranges : Net.t -> unit
(** The in-order concatenation of all ranges tiles the key domain with
    no gaps or overlaps, in in-order order. *)

val data_placement : Net.t -> unit
(** Every stored key lies inside its node's range. *)

val all : Net.t -> unit
(** All of the above (links in strict mode). *)

val height : Net.t -> int
(** Height of the occupied tree: 0 for a single node, -1 when empty. *)

val in_order_nodes : Net.t -> Node.t list
(** All nodes in in-order traversal order. *)
