type t = {
  side : [ `Left | `Right ];
  slots : Link.info option array;  (* slot j addresses distance 2^j *)
}

let create pos side =
  { side; slots = Array.make (Position.table_size pos side) None }

let side t = t.side
let size t = Array.length t.slots

let get t j = if j < 0 || j >= size t then None else t.slots.(j)

let set t j info =
  if j < 0 || j >= size t then invalid_arg "Routing_table.set: slot out of range";
  t.slots.(j) <- info

let is_full t = Array.for_all Option.is_some t.slots

let entries t =
  let acc = ref [] in
  for j = size t - 1 downto 0 do
    match t.slots.(j) with Some info -> acc := (j, info) :: !acc | None -> ()
  done;
  !acc

let filled_count t =
  Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 t.slots

let slot_for ~owner t q =
  if q.Position.level <> owner.Position.level then None
  else
    let dist =
      match t.side with
      | `Left -> owner.Position.number - q.Position.number
      | `Right -> q.Position.number - owner.Position.number
    in
    if dist <= 0 then None
    else if dist land (dist - 1) <> 0 then None (* not a power of two *)
    else
      let rec log2 d acc = if d = 1 then acc else log2 (d lsr 1) (acc + 1) in
      let j = log2 dist 0 in
      if j < size t then Some j else None

let update_peer t peer f =
  Array.iteri
    (fun j -> function
      | Some info when info.Link.peer = peer -> t.slots.(j) <- Some (f info)
      | Some _ | None -> ())
    t.slots

let remove_peer t peer =
  Array.iteri
    (fun j -> function
      | Some info when info.Link.peer = peer -> t.slots.(j) <- None
      | Some _ | None -> ())
    t.slots

let find t p =
  let n = size t in
  let rec loop j =
    if j >= n then None
    else
      match t.slots.(j) with
      | Some info when p info -> Some info
      | Some _ | None -> loop (j + 1)
  in
  loop 0

let find_farthest t p =
  let rec loop j =
    if j < 0 then None
    else
      match t.slots.(j) with
      | Some info when p info -> Some info
      | Some _ | None -> loop (j - 1)
  in
  loop (size t - 1)

let pp fmt t =
  let side_name = match t.side with `Left -> "left" | `Right -> "right" in
  Format.fprintf fmt "%s[" side_name;
  Array.iteri
    (fun j slot ->
      if j > 0 then Format.fprintf fmt "; ";
      match slot with
      | None -> Format.fprintf fmt "_"
      | Some info -> Format.fprintf fmt "%d@%a" info.Link.peer Position.pp info.Link.pos)
    t.slots;
  Format.fprintf fmt "]"
