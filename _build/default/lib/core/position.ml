type t = { level : int; number : int }

let max_level = 60

let level_width l =
  if l < 0 || l > max_level then invalid_arg "Position.level_width";
  1 lsl l

let make ~level ~number =
  if level < 0 || level > max_level then invalid_arg "Position.make: bad level";
  if number < 1 || number > level_width level then
    invalid_arg "Position.make: bad number";
  { level; number }

let root = { level = 0; number = 1 }

let equal a b = a.level = b.level && a.number = b.number

let compare_level_order a b =
  match compare a.level b.level with 0 -> compare a.number b.number | c -> c

let is_root p = p.level = 0

let parent p =
  if is_root p then invalid_arg "Position.parent: root has no parent";
  { level = p.level - 1; number = (p.number + 1) / 2 }

let left_child p = make ~level:(p.level + 1) ~number:((2 * p.number) - 1)
let right_child p = make ~level:(p.level + 1) ~number:(2 * p.number)

let child p = function `Left -> left_child p | `Right -> right_child p

let is_left_child p =
  if is_root p then false else p.number mod 2 = 1

let sibling p =
  if is_root p then invalid_arg "Position.sibling: root has no sibling";
  if is_left_child p then { p with number = p.number + 1 }
  else { p with number = p.number - 1 }

let is_ancestor ~ancestor p =
  ancestor.level < p.level
  && (p.number - 1) lsr (p.level - ancestor.level) = ancestor.number - 1

(* Compare dyadic centres (2n - 1) / 2^(l + 1) exactly:
   scale both to the deeper level and compare numerators. *)
let in_order_compare a b =
  let la = a.level and lb = b.level in
  let na = (2 * a.number) - 1 and nb = (2 * b.number) - 1 in
  if la = lb then compare na nb
  else if la < lb then compare (na lsl (lb - la)) nb
  else compare na (nb lsl (la - lb))

let neighbor p side j =
  if j < 0 then invalid_arg "Position.neighbor: negative slot";
  let dist = 1 lsl j in
  let number =
    match side with `Left -> p.number - dist | `Right -> p.number + dist
  in
  if number < 1 || number > level_width p.level then None
  else Some { p with number }

let table_size p side =
  let rec loop j acc =
    match neighbor p side j with
    | None -> acc
    | Some _ -> loop (j + 1) (acc + 1)
  in
  loop 0 0

let to_string p = Printf.sprintf "(%d,%d)" p.level p.number
let pp fmt p = Format.pp_print_string fmt (to_string p)
