(** Network restructuring (paper Section III-E).

    When a join or a departure is {e forced} — it happens at a specific
    node as part of load balancing and may not be redirected — and the
    Theorem 1 condition would be violated, the tree rebalances by
    shifting occupants along the in-order adjacency chain, exactly like
    the paper's Figures 4 and 5: each shifted peer takes the position
    of its in-order neighbour until one can settle in an empty child
    slot whose parent has full routing tables (join side), or until a
    leaf position whose removal is safe has been vacated (leave side).
    No data moves: peers keep their ranges, and because every shift
    preserves the peers' relative in-order rank, the range ordering
    invariant survives. Every shifted peer pays [O(log N)] messages to
    rebuild its links and announce its new position; the number of
    shifted peers is recorded in the network's shift histogram
    (Figure 8(h)). *)

val forced_join : Net.t -> parent:Node.t -> int -> Node.t
(** [forced_join net ~parent id] makes peer [id] take the lower half of
    [parent]'s range and content and enter the tree as [parent]'s
    in-order predecessor — as [parent]'s left child when that slot is
    free and safe (Theorem 1), otherwise via a restructuring shift.
    Returns the new node. *)

val forced_leave : Net.t -> Node.t -> unit
(** [forced_leave net x] removes [x] from the tree {e without} a
    replacement. [x]'s range and content must already have been handed
    off by the caller. If vacating [x]'s position is unsafe, occupants
    shift along the in-order chain until a safely-removable leaf
    position has been vacated instead. *)
