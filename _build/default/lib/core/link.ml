type info = {
  peer : int;
  pos : Position.t;
  range : Range.t;
  has_left_child : bool;
  has_right_child : bool;
}

let has_both_children i = i.has_left_child && i.has_right_child
let has_spare_child_slot i = not (has_both_children i)

let pp fmt i =
  Format.fprintf fmt "peer %d at %a %a%s%s" i.peer Position.pp i.pos Range.pp
    i.range
    (if i.has_left_child then " L" else "")
    (if i.has_right_child then " R" else "")
