(** Node join (paper Section III-A).

    Phase one forwards the JOIN request with Algorithm 1 until a node
    with full routing tables and a spare child slot accepts. Phase two
    splits the acceptor's range and content, wires the new node's
    adjacent links, and runs the routing-table update conversation: the
    acceptor contacts its sideways neighbours, each neighbour contacts
    its relevant children, and those children answer the new node —
    at most [2 L1 + 2 L2 + 2 L2 + 1 < 6 log N] messages. *)

type stats = {
  acceptor : int;  (** peer id of the node that accepted *)
  new_peer : int;  (** peer id assigned to the joiner *)
  search_msgs : int;  (** Algorithm 1 forwarding messages *)
  update_msgs : int;  (** link / routing-table update messages *)
}

val split_point : Node.t -> int
(** The key at which an acceptor's range is split with a new child: the
    content median when it is a legal interior point (each side keeps
    half the load), else the arithmetic midpoint. *)

val find_join_node : Net.t -> via:Node.t -> Node.t * int
(** Algorithm 1: walk from [via] to a node that can accept a child.
    Returns the acceptor and the number of forwarding messages. *)

val accept : Net.t -> acceptor:Node.t -> int -> Node.t * int
(** [accept net ~acceptor id] makes peer [id] a child of [acceptor]
    (left slot preferred), splitting range and content and updating all
    affected links and tables. Returns the new node and the number of
    update messages. @raise Invalid_argument if [acceptor] has no spare
    child slot. *)

val join : Net.t -> via:Node.t -> stats
(** Full join of a fresh peer routed via an existing one. *)

val join_new_network : Net.t -> Node.t
(** Bootstrap: the first peer, owning the whole domain. *)
