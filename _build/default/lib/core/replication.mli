(** Adjacent replication (extension beyond the paper).

    The paper accepts that an abruptly failed node loses its locally
    stored data ("the data is gone; only the range survives"). This
    module closes that gap with the standard technique for
    range-partitioned overlays: each node keeps a replica of its data
    at its in-order right adjacent (the left adjacent for the rightmost
    node), so a single crash can be recovered from the replica holder.

    Replication is write-through for insertions ({!on_insert}: one
    extra message per insert) and re-established wholesale by
    {!sync_all} (one message per peer), which applications run after
    topology changes — a leave, a balance migration or a restructuring
    changes who is adjacent to whom, so the recovery point is the last
    sync plus all write-through inserts since. {!recover} re-inserts a
    crashed peer's replicated keys through normal routed insertions, so
    the restored data lands at whoever owns the range now. *)

type t

val create : unit -> t

val replica_count : t -> int
(** Number of peers that currently have a replica on file. *)

val holder_of : t -> int -> int option
(** The peer currently holding the given owner's replica, if any. *)

val sync_all : t -> Net.t -> int
(** Every peer pushes a full copy of its store to its adjacent replica
    holder: one message per peer. Returns the messages paid. Replaces
    all previous replicas. *)

val on_insert : t -> Net.t -> owner:Node.t -> int -> unit
(** Write-through: after storing a key at [owner], forward a copy to
    its replica holder (one message). Creates the replica relationship
    if the owner has none yet. *)

val recover : t -> Net.t -> dead:int -> int
(** Recover the crashed peer's replicated keys by re-inserting them
    from the replica holder through normal routed insertions (counted).
    Call after {!Failure.repair} has re-assigned the dead peer's range.
    Returns the number of keys restored; 0 if no replica exists or the
    holder is itself unreachable. The replica entry is consumed. *)

val forget : t -> int -> unit
(** Drop the replica entry for an owner (e.g. after a graceful leave,
    whose data handover makes the replica moot). *)
