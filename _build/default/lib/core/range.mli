(** Key ranges.

    Each BATON node — internal nodes included — directly manages a
    contiguous range of index values (paper Section IV). Ranges are
    half-open intervals [\[lo, hi)] over integer keys; the in-order
    concatenation of all nodes' ranges tiles the key domain exactly. *)

type t = { lo : int; hi : int }

val make : lo:int -> hi:int -> t
(** @raise Invalid_argument unless [lo < hi]. *)

val width : t -> int

val contains : t -> int -> bool
(** [contains r v] iff [r.lo <= v < r.hi]. *)

val is_left_of : t -> int -> bool
(** The whole range lies left of the value: [r.hi <= v]. *)

val is_right_of : t -> int -> bool
(** The whole range lies right of the value: [v < r.lo]. *)

val intersects : t -> lo:int -> hi:int -> bool
(** Does [r] intersect the closed query interval [\[lo, hi\]]? *)

val touches_left : t -> t -> bool
(** [touches_left a b]: does [a] end exactly where [b] starts? *)

val split_at : t -> int -> t * t
(** [split_at r m] is [(\[lo, m), \[m, hi))].
    @raise Invalid_argument unless [lo < m < hi]. *)

val midpoint : t -> int
(** A split point as close to the middle as possible; always a legal
    argument to {!split_at} when [width r >= 2]. *)

val merge : t -> t -> t
(** Union of two ranges that touch (in either order).
    @raise Invalid_argument if they do not touch. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
