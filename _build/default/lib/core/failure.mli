(** Node failure and repair (paper Section III-C).

    A crashed peer stops answering: the bus raises [Unreachable] on any
    message to it. Whoever discovers this reports the failure to the
    failed node's parent, which regenerates the failed node's routing
    knowledge through the children of its own sideways neighbours and
    then drives a graceful departure on the dead node's behalf. The
    crashed node's locally stored data is lost (the paper does not
    replicate); its range is taken over by the replacement (or merged
    into the in-order adjacent parent when the dead node was a safely
    removable leaf). *)

val crash : Net.t -> Node.t -> unit
(** Mark the peer as failed on the bus. Its state is frozen and
    unreachable until {!repair}. *)

val repair : Net.t -> reporter:Node.t -> int -> unit
(** [repair net ~reporter dead] runs the recovery protocol for failed
    peer [dead], initiated by [reporter] (the peer that discovered the
    unreachable address). A no-op if [dead] is unknown (already
    repaired). *)

val crash_and_repair : Net.t -> Node.t -> unit
(** Convenience for tests and experiments: crash the node, then have a
    random live peer discover and repair it. *)

val suspicion_threshold : int
(** Timeout observations needed before a peer is probed and, if its
    address turns out unreachable, repaired. *)

val observe_unreachable : Net.t -> observer:Node.t -> int -> unit
(** A routing peer discovered an unreachable address. When
    suspicion-driven repair is enabled ({!Net.set_suspicion_repair}),
    the observer initiates the repair protocol immediately — this is
    the paper's lazy discovery path, replacing the test harness's god
    view. The repair attempt tolerates the observer or any helper
    dying (or timing out) mid-repair: it is abandoned and retried on a
    later observation. A no-op when the detector is disabled. *)

val observe_timeout : Net.t -> observer:Node.t -> int -> unit
(** A routing peer saw a send time out. Timeouts on a lossy network do
    not convict: the observation is counted, and once
    {!suspicion_threshold} observations accumulate the observer probes
    the suspect (one counted message) — only an unreachable answer
    triggers repair; a live answer clears the suspicion. A no-op when
    the detector is disabled. *)
