module Bus = Baton_sim.Bus
module Sorted_store = Baton_util.Sorted_store

type outcome = { node : Node.t; hops : int }

exception Routing_stuck of int

(* Generous budget: height is <= 1.44 log2 N and each hop halves the
   remaining distance; the budget is only consumed faster when routing
   around stale links. *)
let hop_budget net = 64 + (4 * (1 + Net.size net))

(* Pick the next hop towards [v] from [node], per the paper's
   algorithm. [`Right] direction: v lies right of node's range. *)
let next_hop (node : Node.t) v =
  if Range.contains node.Node.range v then None
  else if Range.is_left_of node.Node.range v then
    (* v >= hi: farthest right neighbour with lower bound <= v. *)
    let candidate =
      Routing_table.find_farthest node.Node.right_table (fun i ->
          i.Link.range.Range.lo <= v)
    in
    match candidate with
    | Some m -> Some m
    | None -> (
      match node.Node.right_child with
      | Some c -> Some c
      | None -> node.Node.right_adjacent)
  else
    (* v < lo: farthest left neighbour whose upper bound is > v. *)
    let candidate =
      Routing_table.find_farthest node.Node.left_table (fun i ->
          i.Link.range.Range.hi > v)
    in
    match candidate with
    | Some m -> Some m
    | None -> (
      match node.Node.left_child with
      | Some c -> Some c
      | None -> node.Node.left_adjacent)

let exact ?(kind = Msg.search_exact) net ~from v =
  let budget = hop_budget net in
  let rec loop (node : Node.t) hops =
    if hops > budget then raise (Routing_stuck hops)
    else
      match next_hop node v with
      | None -> { node; hops }
      | Some target -> (
        match Net.send net ~src:node.Node.id ~dst:target.Link.peer ~kind with
        | next -> loop next (hops + 1)
        | exception Bus.Unreachable dead ->
          (* Fault tolerance (Section III-D): drop the dead link,
             reconstitute the missing links through the surviving
             neighbourhood, and route on; the detour costs messages. *)
          Node.drop_links_for_peer node dead;
          Wiring.rebuild_links ~skip_failed:true net node ~kind;
          loop node (hops + 1)
        | exception Not_found ->
          (* The target peer left the network and the link is stale. *)
          Node.drop_links_for_peer node target.Link.peer;
          Wiring.rebuild_links ~skip_failed:true net node ~kind;
          loop node (hops + 1))
  in
  loop from 0

let lookup net ~from v =
  let { node; hops } = exact net ~from v in
  (Sorted_store.mem node.Node.store v, hops)

type range_outcome = { keys : int list; nodes_visited : int; range_hops : int }

(* Collect matching keys from one direction of adjacent links, starting
   at (and excluding) [node]. Returns (keys in visit order, peers
   visited, messages paid). *)
let sweep net (node : Node.t) side ~lo ~hi =
  let keys = ref [] and visited = ref 0 and msgs = ref 0 in
  let continue (n : Node.t) =
    match side with
    | `Right -> Range.is_left_of n.Node.range hi
    | `Left -> lo < n.Node.range.Range.lo
  in
  let rec go (n : Node.t) =
    if continue n then
      match Node.adjacent n side with
      | None -> ()
      | Some next -> (
        match Net.send net ~src:n.Node.id ~dst:next.Link.peer ~kind:Msg.search_range with
        | next_node ->
          incr msgs;
          incr visited;
          keys := Sorted_store.keys_in next_node.Node.store ~lo ~hi :: !keys;
          go next_node
        | exception Bus.Unreachable _ -> ()
        | exception Not_found -> ())
  in
  go node;
  (!keys, !visited, !msgs)

let range net ~from ~lo ~hi =
  if lo > hi then invalid_arg "Search.range: lo > hi";
  (* Find any node intersecting the interval (the exact search for the
     left endpoint lands on the first intersection or just left of it),
     then per the paper "proceed left and/or right to cover the
     remainder of the searched range" along adjacent links. *)
  let { node; hops } = exact ~kind:Msg.search_range net ~from lo in
  let here = Sorted_store.keys_in node.Node.store ~lo ~hi in
  let left_keys, left_visited, left_msgs = sweep net node `Left ~lo ~hi in
  let right_keys, right_visited, right_msgs = sweep net node `Right ~lo ~hi in
  let keys =
    List.concat (List.rev left_keys) @ here @ List.concat (List.rev right_keys)
  in
  {
    keys;
    nodes_visited = 1 + left_visited + right_visited;
    range_hops = hops + left_msgs + right_msgs;
  }
