(* Network snapshots: save/load roundtrip and deterministic
   continuation. *)

module N = Baton.Network
module Net = Baton.Net
module Rng = Baton_util.Rng

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let drive net seed ops =
  (* A deterministic op sequence whose outcome summarises the state. *)
  let rng = Rng.create seed in
  let before = N.messages net in
  let found = ref 0 in
  for _ = 1 to ops do
    match Rng.int rng 4 with
    | 0 ->
      let id = N.join net in
      N.leave net id
    | 1 -> N.insert net (Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
    | _ ->
      if N.lookup net (Rng.int_in_range rng ~lo:1 ~hi:999_999_999) then incr found
  done;
  (N.messages net - before, !found, N.size net)

let test_roundtrip_preserves_state () =
  let net = N.build ~seed:7 60 in
  let rng = Rng.create 3 in
  let keys = Array.init 200 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (N.insert net) keys;
  let path = tmp "baton_snapshot_test.bin" in
  Net.save net path;
  let restored = Net.load path in
  Sys.remove path;
  Alcotest.(check int) "size" (N.size net) (N.size restored);
  Alcotest.(check int) "messages" (N.messages net) (N.messages restored);
  Alcotest.(check int) "height" (N.height net) (N.height restored);
  Array.iter
    (fun k -> Alcotest.(check bool) "data survived" true (N.lookup restored k))
    keys;
  Baton.Check.all restored

let test_restored_network_continues_identically () =
  let net = N.build ~seed:11 50 in
  let path = tmp "baton_snapshot_cont.bin" in
  Net.save net path;
  let twin = Net.load path in
  Sys.remove path;
  let a = drive net 99 120 in
  let b = drive twin 99 120 in
  Alcotest.(check (triple int int int)) "identical continuation" a b;
  Baton.Check.all net;
  Baton.Check.all twin

let test_save_refuses_deferred () =
  let net = N.build ~seed:13 10 in
  Net.set_defer net true;
  ignore (N.join net);
  Alcotest.check_raises "pending notifications"
    (Invalid_argument "Net.save: deferred notifications pending") (fun () ->
      Net.save net (tmp "never_written.bin"));
  Net.flush_deferred net;
  let path = tmp "baton_snapshot_after_flush.bin" in
  Net.save net path;
  Sys.remove path

let test_load_rejects_garbage () =
  let path = tmp "baton_garbage.bin" in
  let oc = open_out_bin path in
  output_string oc "definitely not a snapshot";
  close_out oc;
  Alcotest.check_raises "bad magic" (Failure "Net.load: not a BATON snapshot")
    (fun () -> ignore (Net.load path));
  Sys.remove path

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip_preserves_state;
    Alcotest.test_case "deterministic continuation" `Quick test_restored_network_continues_identically;
    Alcotest.test_case "refuses deferred" `Quick test_save_refuses_deferred;
    Alcotest.test_case "rejects garbage" `Quick test_load_rejects_garbage;
  ]
