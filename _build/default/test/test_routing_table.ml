(* Sideways routing tables. *)

module Position = Baton.Position
module Routing_table = Baton.Routing_table
module Link = Baton.Link
module Range = Baton.Range

let pos l n = Position.make ~level:l ~number:n

let info peer p =
  {
    Link.peer;
    pos = p;
    range = Range.make ~lo:(peer * 10) ~hi:((peer * 10) + 10);
    has_left_child = false;
    has_right_child = false;
  }

let owner = pos 3 5

let make_right () = Routing_table.create owner `Right
let make_left () = Routing_table.create owner `Left

let test_sizes () =
  Alcotest.(check int) "right size" 2 (Routing_table.size (make_right ()));
  Alcotest.(check int) "left size" 3 (Routing_table.size (make_left ()))

let test_set_get_full () =
  let t = make_right () in
  Alcotest.(check bool) "initially not full" false (Routing_table.is_full t);
  Routing_table.set t 0 (Some (info 1 (pos 3 6)));
  Alcotest.(check bool) "still not full" false (Routing_table.is_full t);
  Routing_table.set t 1 (Some (info 2 (pos 3 7)));
  Alcotest.(check bool) "full" true (Routing_table.is_full t);
  Alcotest.(check int) "filled count" 2 (Routing_table.filled_count t);
  Alcotest.(check bool) "get beyond size is None" true (Routing_table.get t 5 = None);
  Alcotest.check_raises "set beyond size"
    (Invalid_argument "Routing_table.set: slot out of range") (fun () ->
      Routing_table.set t 2 None)

let test_entries_order () =
  let t = make_left () in
  Routing_table.set t 2 (Some (info 9 (pos 3 1)));
  Routing_table.set t 0 (Some (info 7 (pos 3 4)));
  let slots = List.map fst (Routing_table.entries t) in
  Alcotest.(check (list int)) "nearest first" [ 0; 2 ] slots

let test_slot_for () =
  let t = make_right () in
  Alcotest.(check (option int)) "distance 1" (Some 0)
    (Routing_table.slot_for ~owner t (pos 3 6));
  Alcotest.(check (option int)) "distance 2" (Some 1)
    (Routing_table.slot_for ~owner t (pos 3 7));
  Alcotest.(check (option int)) "distance 3 not a power" None
    (Routing_table.slot_for ~owner t (pos 3 8));
  Alcotest.(check (option int)) "wrong side" None
    (Routing_table.slot_for ~owner t (pos 3 4));
  Alcotest.(check (option int)) "wrong level" None
    (Routing_table.slot_for ~owner t (pos 2 4));
  let left = make_left () in
  Alcotest.(check (option int)) "left distance 4" (Some 2)
    (Routing_table.slot_for ~owner left (pos 3 1))

let test_update_remove_peer () =
  let t = make_left () in
  Routing_table.set t 0 (Some (info 1 (pos 3 4)));
  Routing_table.set t 1 (Some (info 1 (pos 3 3)));
  Routing_table.set t 2 (Some (info 2 (pos 3 1)));
  Routing_table.update_peer t 1 (fun i -> { i with Link.has_left_child = true });
  (match Routing_table.get t 0 with
  | Some i -> Alcotest.(check bool) "updated" true i.Link.has_left_child
  | None -> Alcotest.fail "slot lost");
  (match Routing_table.get t 2 with
  | Some i -> Alcotest.(check bool) "other peer untouched" false i.Link.has_left_child
  | None -> Alcotest.fail "slot lost");
  Routing_table.remove_peer t 1;
  Alcotest.(check int) "two slots emptied" 1 (Routing_table.filled_count t)

let test_find_and_farthest () =
  let t = make_left () in
  Routing_table.set t 0 (Some (info 1 (pos 3 4)));
  Routing_table.set t 1 (Some (info 2 (pos 3 3)));
  Routing_table.set t 2 (Some (info 3 (pos 3 1)));
  (match Routing_table.find t (fun i -> i.Link.peer > 1) with
  | Some i -> Alcotest.(check int) "nearest match" 2 i.Link.peer
  | None -> Alcotest.fail "expected match");
  (match Routing_table.find_farthest t (fun i -> i.Link.peer < 3) with
  | Some i -> Alcotest.(check int) "farthest match" 2 i.Link.peer
  | None -> Alcotest.fail "expected match");
  Alcotest.(check bool) "no match" true (Routing_table.find t (fun _ -> false) = None)

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "set/get/full" `Quick test_set_get_full;
    Alcotest.test_case "entries order" `Quick test_entries_order;
    Alcotest.test_case "slot_for" `Quick test_slot_for;
    Alcotest.test_case "update/remove peer" `Quick test_update_remove_peer;
    Alcotest.test_case "find/find_farthest" `Quick test_find_and_farthest;
  ]
