(* Growable array: unit behaviour plus a qcheck model test vs list. *)

module Dyn_array = Baton_util.Dyn_array

let test_push_get () =
  let a = Dyn_array.create () in
  for i = 0 to 99 do
    Dyn_array.push a i
  done;
  Alcotest.(check int) "length" 100 (Dyn_array.length a);
  for i = 0 to 99 do
    Alcotest.(check int) "get" i (Dyn_array.get a i)
  done

let test_pop_last () =
  let a = Dyn_array.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "last" 3 (Dyn_array.last a);
  Alcotest.(check int) "pop" 3 (Dyn_array.pop a);
  Alcotest.(check int) "length after pop" 2 (Dyn_array.length a);
  ignore (Dyn_array.pop a);
  ignore (Dyn_array.pop a);
  Alcotest.check_raises "pop empty" (Invalid_argument "Dyn_array.pop: empty")
    (fun () -> ignore (Dyn_array.pop a))

let test_insert_remove () =
  let a = Dyn_array.of_list [ 1; 3 ] in
  Dyn_array.insert a 1 2;
  Alcotest.(check (list int)) "insert middle" [ 1; 2; 3 ] (Dyn_array.to_list a);
  Dyn_array.insert a 3 4;
  Alcotest.(check (list int)) "insert at end" [ 1; 2; 3; 4 ] (Dyn_array.to_list a);
  Dyn_array.insert a 0 0;
  Alcotest.(check (list int)) "insert at front" [ 0; 1; 2; 3; 4 ] (Dyn_array.to_list a);
  Alcotest.(check int) "remove middle" 2 (Dyn_array.remove a 2);
  Alcotest.(check (list int)) "after remove" [ 0; 1; 3; 4 ] (Dyn_array.to_list a)

let test_bounds_checking () =
  let a = Dyn_array.of_list [ 1 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Dyn_array.get: index out of bounds")
    (fun () -> ignore (Dyn_array.get a 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Dyn_array.set: index out of bounds")
    (fun () -> Dyn_array.set a (-1) 0);
  Alcotest.check_raises "insert oob"
    (Invalid_argument "Dyn_array.insert: index out of bounds") (fun () ->
      Dyn_array.insert a 3 0)

let test_iterators () =
  let a = Dyn_array.of_list [ 1; 2; 3 ] in
  let sum = Dyn_array.fold_left ( + ) 0 a in
  Alcotest.(check int) "fold" 6 sum;
  let acc = ref [] in
  Dyn_array.iteri (fun i x -> acc := (i, x) :: !acc) a;
  Alcotest.(check (list (pair int int))) "iteri" [ (0, 1); (1, 2); (2, 3) ] (List.rev !acc);
  Alcotest.(check bool) "exists" true (Dyn_array.exists (fun x -> x = 2) a);
  Alcotest.(check bool) "not exists" false (Dyn_array.exists (fun x -> x = 9) a)

let test_append_all_clear () =
  let a = Dyn_array.of_list [ 1 ] and b = Dyn_array.of_list [ 2; 3 ] in
  Dyn_array.append_all a b;
  Alcotest.(check (list int)) "append_all" [ 1; 2; 3 ] (Dyn_array.to_list a);
  Dyn_array.clear a;
  Alcotest.(check bool) "cleared" true (Dyn_array.is_empty a)

(* Model test: a random program of push/pop/insert/remove agrees with a
   plain list implementation. *)
let model_prop =
  let open QCheck2 in
  let op =
    Gen.oneof
      [
        Gen.map (fun v -> `Push v) Gen.small_int;
        Gen.return `Pop;
        Gen.map2 (fun i v -> `Insert (i, v)) Gen.small_nat Gen.small_int;
        Gen.map (fun i -> `Remove i) Gen.small_nat;
      ]
  in
  Test.make ~name:"dyn_array agrees with list model" ~count:300
    Gen.(list_size (int_bound 40) op)
    (fun ops ->
      let a = Dyn_array.create () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Push v ->
            Dyn_array.push a v;
            model := !model @ [ v ]
          | `Pop ->
            if !model <> [] then begin
              let got = Dyn_array.pop a in
              let expect = List.nth !model (List.length !model - 1) in
              assert (got = expect);
              model := List.filteri (fun i _ -> i < List.length !model - 1) !model
            end
          | `Insert (i, v) ->
            let i = if List.length !model = 0 then 0 else i mod (List.length !model + 1) in
            Dyn_array.insert a i v;
            model :=
              List.filteri (fun j _ -> j < i) !model
              @ [ v ]
              @ List.filteri (fun j _ -> j >= i) !model
          | `Remove i ->
            if !model <> [] then begin
              let i = i mod List.length !model in
              let got = Dyn_array.remove a i in
              assert (got = List.nth !model i);
              model := List.filteri (fun j _ -> j <> i) !model
            end)
        ops;
      Dyn_array.to_list a = !model)

let suite =
  [
    Alcotest.test_case "push/get" `Quick test_push_get;
    Alcotest.test_case "pop/last" `Quick test_pop_last;
    Alcotest.test_case "insert/remove" `Quick test_insert_remove;
    Alcotest.test_case "bounds checks" `Quick test_bounds_checking;
    Alcotest.test_case "iterators" `Quick test_iterators;
    Alcotest.test_case "append_all/clear" `Quick test_append_all_clear;
    QCheck_alcotest.to_alcotest model_prop;
  ]
