(* Sorted multiset store: unit behaviour + qcheck model vs sorted list. *)

module Store = Baton_util.Sorted_store

let of_list = Store.of_list

let test_insert_keeps_order () =
  let s = Store.create () in
  List.iter (Store.insert s) [ 5; 1; 3; 2; 4; 3 ];
  Alcotest.(check (list int)) "sorted with duplicates" [ 1; 2; 3; 3; 4; 5 ]
    (Store.to_list s)

let test_mem_count () =
  let s = of_list [ 1; 3; 3; 7 ] in
  Alcotest.(check bool) "mem present" true (Store.mem s 3);
  Alcotest.(check bool) "mem absent" false (Store.mem s 4);
  Alcotest.(check int) "count dup" 2 (Store.count s 3);
  Alcotest.(check int) "count absent" 0 (Store.count s 4)

let test_remove () =
  let s = of_list [ 1; 3; 3 ] in
  Alcotest.(check bool) "remove one occurrence" true (Store.remove s 3);
  Alcotest.(check int) "one left" 1 (Store.count s 3);
  Alcotest.(check bool) "remove absent" false (Store.remove s 9)

let test_min_max () =
  let s = of_list [ 4; 2; 9 ] in
  Alcotest.(check (option int)) "min" (Some 2) (Store.min_key s);
  Alcotest.(check (option int)) "max" (Some 9) (Store.max_key s);
  let empty = Store.create () in
  Alcotest.(check (option int)) "empty min" None (Store.min_key empty)

let test_keys_in () =
  let s = of_list [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "inner range" [ 2; 3; 4 ] (Store.keys_in s ~lo:2 ~hi:4);
  Alcotest.(check (list int)) "empty range" [] (Store.keys_in s ~lo:6 ~hi:9);
  Alcotest.(check int) "count_in" 3 (Store.count_in s ~lo:2 ~hi:4)

let test_split_halves () =
  let s = of_list [ 1; 2; 3; 4; 5 ] in
  let low = Store.split_lower_half s in
  Alcotest.(check (list int)) "low half" [ 1; 2 ] (Store.to_list low);
  Alcotest.(check (list int)) "remaining" [ 3; 4; 5 ] (Store.to_list s);
  let s2 = of_list [ 1; 2; 3; 4; 5 ] in
  let high = Store.split_upper_half s2 in
  Alcotest.(check (list int)) "high half" [ 4; 5 ] (Store.to_list high);
  Alcotest.(check (list int)) "remaining2" [ 1; 2; 3 ] (Store.to_list s2)

let test_split_at_boundary () =
  let s = of_list [ 1; 3; 3; 5 ] in
  let below = Store.split_below s 3 in
  Alcotest.(check (list int)) "strictly below" [ 1 ] (Store.to_list below);
  Alcotest.(check (list int)) "rest keeps 3s" [ 3; 3; 5 ] (Store.to_list s);
  let s2 = of_list [ 1; 3; 3; 5 ] in
  let above = Store.split_at_or_above s2 3 in
  Alcotest.(check (list int)) "at or above" [ 3; 3; 5 ] (Store.to_list above);
  Alcotest.(check (list int)) "rest" [ 1 ] (Store.to_list s2)

let test_absorb_merges_sorted () =
  let a = of_list [ 1; 4; 6 ] and b = of_list [ 2; 4; 7 ] in
  Store.absorb a b;
  Alcotest.(check (list int)) "merged" [ 1; 2; 4; 4; 6; 7 ] (Store.to_list a);
  Alcotest.(check bool) "source emptied" true (Store.is_empty b)

(* Model test vs a sorted list. *)
let model_prop =
  let open QCheck2 in
  let op =
    Gen.oneof
      [
        Gen.map (fun v -> `Insert v) (Gen.int_bound 20);
        Gen.map (fun v -> `Remove v) (Gen.int_bound 20);
        Gen.map (fun v -> `SplitBelow v) (Gen.int_bound 20);
      ]
  in
  Test.make ~name:"sorted_store agrees with sorted-list model" ~count:300
    Gen.(list_size (int_bound 40) op)
    (fun ops ->
      let s = Store.create () in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Insert v ->
            Store.insert s v;
            model := List.sort compare (v :: !model)
          | `Remove v ->
            let removed = Store.remove s v in
            assert (removed = List.mem v !model);
            if removed then begin
              let dropped = ref false in
              model :=
                List.filter
                  (fun x ->
                    if x = v && not !dropped then begin
                      dropped := true;
                      false
                    end
                    else true)
                  !model
            end
          | `SplitBelow v ->
            let below = Store.split_below s v in
            let expect_below = List.filter (fun x -> x < v) !model in
            assert (Store.to_list below = expect_below);
            model := List.filter (fun x -> x >= v) !model)
        ops;
      Store.to_list s = !model)

let suite =
  [
    Alcotest.test_case "insert keeps order" `Quick test_insert_keeps_order;
    Alcotest.test_case "mem/count" `Quick test_mem_count;
    Alcotest.test_case "remove" `Quick test_remove;
    Alcotest.test_case "min/max" `Quick test_min_max;
    Alcotest.test_case "keys_in/count_in" `Quick test_keys_in;
    Alcotest.test_case "split halves" `Quick test_split_halves;
    Alcotest.test_case "split at boundary" `Quick test_split_at_boundary;
    Alcotest.test_case "absorb merges" `Quick test_absorb_merges_sorted;
    QCheck_alcotest.to_alcotest model_prop;
  ]
