(* Tree-position arithmetic, including a qcheck check of the in-order
   comparison against an independent rational-number model. *)

module Position = Baton.Position

let pos l n = Position.make ~level:l ~number:n

let test_root () =
  Alcotest.(check bool) "root is root" true (Position.is_root Position.root);
  Alcotest.(check bool) "root not left child" false (Position.is_left_child Position.root);
  Alcotest.check_raises "parent of root" (Invalid_argument "Position.parent: root has no parent")
    (fun () -> ignore (Position.parent Position.root))

let test_make_validation () =
  Alcotest.check_raises "number 0" (Invalid_argument "Position.make: bad number")
    (fun () -> ignore (pos 2 0));
  Alcotest.check_raises "number too big" (Invalid_argument "Position.make: bad number")
    (fun () -> ignore (pos 2 5));
  Alcotest.check_raises "negative level" (Invalid_argument "Position.make: bad level")
    (fun () -> ignore (pos (-1) 1))

let test_parent_child_roundtrip () =
  for level = 0 to 6 do
    for number = 1 to Position.level_width level do
      let p = pos level number in
      let l = Position.left_child p and r = Position.right_child p in
      Alcotest.(check bool) "left child is left" true (Position.is_left_child l);
      Alcotest.(check bool) "right child is right" false (Position.is_left_child r);
      Alcotest.(check bool) "parent of left" true (Position.equal (Position.parent l) p);
      Alcotest.(check bool) "parent of right" true (Position.equal (Position.parent r) p);
      Alcotest.(check bool) "siblings" true (Position.equal (Position.sibling l) r)
    done
  done

let test_child_selector () =
  let p = pos 2 3 in
  Alcotest.(check bool) "child `Left" true
    (Position.equal (Position.child p `Left) (Position.left_child p));
  Alcotest.(check bool) "child `Right" true
    (Position.equal (Position.child p `Right) (Position.right_child p))

let test_is_ancestor () =
  let root = Position.root in
  let d = pos 3 5 in
  Alcotest.(check bool) "root ancestor of all" true (Position.is_ancestor ~ancestor:root d);
  Alcotest.(check bool) "not self" false (Position.is_ancestor ~ancestor:d d);
  let parent = Position.parent d in
  Alcotest.(check bool) "parent is ancestor" true (Position.is_ancestor ~ancestor:parent d);
  Alcotest.(check bool) "uncle is not" false
    (Position.is_ancestor ~ancestor:(Position.sibling parent) d)

let test_in_order_small_tree () =
  (* Height-2 complete tree in-order:
     (2,1) (1,1) (2,2) (0,1) (2,3) (1,2) (2,4) *)
  let expect =
    [ pos 2 1; pos 1 1; pos 2 2; Position.root; pos 2 3; pos 1 2; pos 2 4 ]
  in
  let sorted = List.sort Position.in_order_compare expect in
  Alcotest.(check bool) "already in order" true
    (List.for_all2 Position.equal expect sorted)

let test_neighbor_slots () =
  let p = pos 3 5 in
  (* Left: 5-1=4, 5-2=3, 5-4=1; Right: 5+1=6, 5+2=7, 5+4 invalid (9 > 8)?
     9 > 8 so only j=0,1 valid on the right... 5+4=9 > 8 indeed. *)
  Alcotest.(check int) "left table size" 3 (Position.table_size p `Left);
  Alcotest.(check int) "right table size" 2 (Position.table_size p `Right);
  (match Position.neighbor p `Left 2 with
  | Some q -> Alcotest.(check bool) "left j=2 -> number 1" true (Position.equal q (pos 3 1))
  | None -> Alcotest.fail "expected neighbour");
  Alcotest.(check bool) "right j=2 off level" true (Position.neighbor p `Right 2 = None)

let test_table_size_extremes () =
  Alcotest.(check int) "root left" 0 (Position.table_size Position.root `Left);
  Alcotest.(check int) "root right" 0 (Position.table_size Position.root `Right);
  Alcotest.(check int) "leftmost of level 4 has no left" 0
    (Position.table_size (pos 4 1) `Left);
  Alcotest.(check int) "leftmost of level 4 right slots" 4
    (Position.table_size (pos 4 1) `Right)

(* Independent model: the in-order key of (l, n) is the dyadic rational
   (2n - 1) / 2^(l+1), compared as exact floats (safe to level ~40). *)
let in_order_model (p : Position.t) =
  let open Position in
  float_of_int ((2 * p.number) - 1) /. Float.pow 2. (float_of_int (p.level + 1))

let inorder_prop =
  let open QCheck2 in
  let gen_pos =
    Gen.(
      int_bound 12 >>= fun level ->
      int_range 1 (Position.level_width level) >|= fun number ->
      Position.make ~level ~number)
  in
  Test.make ~name:"in_order_compare matches dyadic rational model" ~count:1000
    (Gen.pair gen_pos gen_pos) (fun (a, b) ->
      let got = compare (Position.in_order_compare a b) 0 in
      let expect = compare (compare (in_order_model a) (in_order_model b)) 0 in
      got = expect)

let ancestor_interval_prop =
  let open QCheck2 in
  let gen_pos =
    Gen.(
      int_bound 10 >>= fun level ->
      int_range 1 (Position.level_width level) >|= fun number ->
      Position.make ~level ~number)
  in
  (* An ancestor's in-order key lies strictly between the keys of the
     leftmost and rightmost leaves of its subtree; equivalently any
     descendant d of a satisfies |model d - model a| < 2^-(level a + 1). *)
  Test.make ~name:"is_ancestor consistent with dyadic intervals" ~count:1000
    (Gen.pair gen_pos gen_pos) (fun (a, d) ->
      let claim = Position.is_ancestor ~ancestor:a d in
      let width = Float.pow 2. (-.float_of_int a.Position.level) in
      let inside =
        d.Position.level > a.Position.level
        && Float.abs (in_order_model d -. in_order_model a) < width /. 2.
      in
      claim = inside)

let suite =
  [
    Alcotest.test_case "root" `Quick test_root;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "parent/child roundtrip" `Quick test_parent_child_roundtrip;
    Alcotest.test_case "child selector" `Quick test_child_selector;
    Alcotest.test_case "is_ancestor" `Quick test_is_ancestor;
    Alcotest.test_case "in-order of height-2 tree" `Quick test_in_order_small_tree;
    Alcotest.test_case "neighbour slots" `Quick test_neighbor_slots;
    Alcotest.test_case "table size extremes" `Quick test_table_size_extremes;
    QCheck_alcotest.to_alcotest inorder_prop;
    QCheck_alcotest.to_alcotest ancestor_interval_prop;
  ]
