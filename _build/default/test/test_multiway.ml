(* Multiway-tree baseline. *)

module Rng = Baton_util.Rng

let make ?(seed = 1) ?(fanout = 4) () =
  Multiway.create ~seed ~fanout ~domain_lo:1 ~domain_hi:1_000_000_000 ()

let grow t n =
  for _ = 1 to n do
    ignore (Multiway.join t)
  done

let test_bootstrap () =
  let t = make () in
  grow t 1;
  Alcotest.(check int) "one peer" 1 (Multiway.size t);
  Multiway.check t

let test_growth () =
  let t = make ~seed:2 () in
  grow t 120;
  Alcotest.(check int) "size" 120 (Multiway.size t);
  Multiway.check t;
  Alcotest.(check bool) "height sane" true (Multiway.height t < 120)

let test_unbalanced_growth () =
  (* Join requests attach wherever a node has spare capacity, so the
     tree is not height-balanced: depth exceeds the balanced log2 bound
     (the weakness BATON's balance invariant removes). A fanout of 1
     degenerates towards a chain. *)
  let t = make ~seed:3 ~fanout:4 () in
  grow t 400;
  let balanced = log (float_of_int 400) /. log 2. in
  Alcotest.(check bool)
    (Printf.sprintf "height %d > log2 N = %.1f" (Multiway.height t) balanced)
    true
    (float_of_int (Multiway.height t) > balanced);
  let chain = make ~seed:3 ~fanout:1 () in
  grow chain 60;
  Alcotest.(check bool) "fanout 1 degenerates" true (Multiway.height chain > 30)

let test_insert_lookup_delete () =
  let t = make ~seed:4 () in
  grow t 60;
  let rng = Rng.create 5 in
  let keys = Array.init 400 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (fun k -> ignore (Multiway.insert t k)) keys;
  Multiway.check t;
  Array.iter (fun k -> Alcotest.(check bool) "found" true (fst (Multiway.lookup t k))) keys;
  Array.iter
    (fun k -> Alcotest.(check bool) "deleted" true (fst (Multiway.delete t k)))
    keys;
  Alcotest.(check bool) "absent after delete" false (fst (Multiway.lookup t keys.(0)))

let test_range_query_oracle () =
  let t = make ~seed:5 () in
  grow t 50;
  let rng = Rng.create 7 in
  let keys = Array.init 300 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (fun k -> ignore (Multiway.insert t k)) keys;
  for _ = 1 to 60 do
    let lo = Rng.int_in_range rng ~lo:1 ~hi:999_999_999 in
    let hi = lo + Rng.int rng 60_000_000 in
    let got, _ = Multiway.range_query t ~lo ~hi in
    let expect =
      Array.to_list keys |> List.filter (fun k -> k >= lo && k <= hi) |> List.sort compare
    in
    Alcotest.(check (list int)) "range oracle" expect got
  done

let test_domain_expansion () =
  let t = make ~seed:6 () in
  grow t 30;
  ignore (Multiway.insert t (-50));
  ignore (Multiway.insert t 5_000_000_000);
  Multiway.check t;
  Alcotest.(check bool) "low key" true (fst (Multiway.lookup t (-50)));
  Alcotest.(check bool) "high key" true (fst (Multiway.lookup t 5_000_000_000))

let test_leaf_and_internal_leaves () =
  let t = make ~seed:7 () in
  grow t 80;
  let rng = Rng.create 9 in
  let keys = Array.init 200 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (fun k -> ignore (Multiway.insert t k)) keys;
  for _ = 1 to 50 do
    let ids = Multiway.peer_ids t in
    ignore (Multiway.leave t (Rng.pick rng ids))
  done;
  Multiway.check t;
  Alcotest.(check int) "size" 30 (Multiway.size t);
  Array.iter
    (fun k -> Alcotest.(check bool) "data survived churn" true (fst (Multiway.lookup t k)))
    keys

let test_internal_leave_cost_exceeds_leaf () =
  (* The paper's critique: departing internal nodes must consult all
     children, so their departure costs more. *)
  let t = make ~seed:8 () in
  grow t 100;
  let rng = Rng.create 11 in
  let leaf_costs = ref [] and internal_costs = ref [] in
  for _ = 1 to 40 do
    let ids = Multiway.peer_ids t in
    let id = Rng.pick rng ids in
    let stats = Multiway.leave t id in
    let total = stats.Multiway.search_msgs + stats.Multiway.update_msgs in
    if stats.Multiway.search_msgs = 0 then leaf_costs := float_of_int total :: !leaf_costs
    else internal_costs := float_of_int total :: !internal_costs;
    ignore (Multiway.join t)
  done;
  match (!leaf_costs, !internal_costs) with
  | [], _ | _, [] -> () (* churn sample missed one class; nothing to compare *)
  | l, i ->
    let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
    Alcotest.(check bool) "internal leaves cost more" true (mean i > mean l)

let test_join_stats_cheap () =
  let t = make ~seed:9 () in
  grow t 100;
  let s = Multiway.join t in
  Alcotest.(check bool) "few search messages" true (s.Multiway.search_msgs <= Multiway.height t + 2);
  Alcotest.(check bool) "constant update messages" true (s.Multiway.update_msgs <= 4)

let test_validation () =
  Alcotest.check_raises "bad fanout" (Invalid_argument "Multiway.create: fanout must be >= 1")
    (fun () -> ignore (Multiway.create ~fanout:0 ~domain_lo:0 ~domain_hi:1 ()));
  Alcotest.check_raises "empty domain" (Invalid_argument "Multiway.create: empty domain")
    (fun () -> ignore (Multiway.create ~domain_lo:5 ~domain_hi:5 ()))

let churn_prop =
  let open QCheck2 in
  Test.make ~name:"multiway invariants under random churn" ~count:15
    Gen.(pair (int_range 5 50) (int_range 0 1000))
    (fun (n, salt) ->
      let t = make ~seed:(4000 + salt) () in
      grow t n;
      let rng = Rng.create salt in
      for _ = 1 to n do
        if Rng.bool rng && Multiway.size t > 1 then
          ignore (Multiway.leave t (Rng.pick rng (Multiway.peer_ids t)))
        else ignore (Multiway.join t)
      done;
      Multiway.check t;
      true)

let suite =
  [
    Alcotest.test_case "bootstrap" `Quick test_bootstrap;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "unbalanced growth" `Quick test_unbalanced_growth;
    Alcotest.test_case "insert/lookup/delete" `Quick test_insert_lookup_delete;
    Alcotest.test_case "range oracle" `Quick test_range_query_oracle;
    Alcotest.test_case "domain expansion" `Quick test_domain_expansion;
    Alcotest.test_case "leaf+internal leaves" `Quick test_leaf_and_internal_leaves;
    Alcotest.test_case "internal leave costs more" `Quick test_internal_leave_cost_exceeds_leaf;
    Alcotest.test_case "join cheap" `Quick test_join_stats_cheap;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest churn_prop;
  ]
