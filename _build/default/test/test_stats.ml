(* Descriptive statistics against hand-computed values. *)

module Stats = Baton_util.Stats

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let check_f ?eps name expected actual =
  Alcotest.(check bool) name true (feq ?eps expected actual)

let test_mean () =
  check_f "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |]);
  check_f "empty mean" 0. (Stats.mean [||]);
  check_f "mean_int" 2. (Stats.mean_int [| 1; 2; 3 |])

let test_variance_stddev () =
  check_f "variance" 2. (Stats.variance [| 1.; 2.; 3.; 4.; 5. |]);
  check_f "stddev" (sqrt 2.) (Stats.stddev [| 1.; 2.; 3.; 4.; 5. |]);
  check_f "singleton variance" 0. (Stats.variance [| 7. |])

let test_percentile () =
  let a = [| 5.; 1.; 3.; 2.; 4. |] in
  check_f "p0 -> min" 1. (Stats.percentile a 0.);
  check_f "p100 -> max" 5. (Stats.percentile a 100.);
  check_f "median" 3. (Stats.median a);
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 50.));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile a 101.))

let test_min_max () =
  let lo, hi = Stats.min_max [| 3.; -1.; 7.; 0. |] in
  check_f "min" (-1.) lo;
  check_f "max" 7. hi

let test_linear_fit_exact () =
  let points = Array.init 10 (fun i -> (float_of_int i, (2. *. float_of_int i) +. 1.)) in
  let slope, intercept = Stats.linear_fit points in
  check_f ~eps:1e-6 "slope" 2. slope;
  check_f ~eps:1e-6 "intercept" 1. intercept

let test_linear_fit_validation () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Stats.linear_fit: need at least two points") (fun () ->
      ignore (Stats.linear_fit [| (0., 0.) |]));
  Alcotest.check_raises "degenerate x"
    (Invalid_argument "Stats.linear_fit: degenerate x") (fun () ->
      ignore (Stats.linear_fit [| (1., 0.); (1., 5.) |]))

let test_summary_nonempty () =
  let s = Stats.summary [| 1.; 2. |] in
  Alcotest.(check bool) "mentions mean" true
    (String.length s > 0 && String.index_opt s '=' <> None)

let suite =
  [
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "min_max" `Quick test_min_max;
    Alcotest.test_case "linear fit" `Quick test_linear_fit_exact;
    Alcotest.test_case "linear fit validation" `Quick test_linear_fit_validation;
    Alcotest.test_case "summary" `Quick test_summary_nonempty;
  ]
