(* Key ranges. *)

module Range = Baton.Range

let r lo hi = Range.make ~lo ~hi

let test_make () =
  Alcotest.check_raises "empty" (Invalid_argument "Range.make: lo must be < hi")
    (fun () -> ignore (r 3 3));
  Alcotest.(check int) "width" 5 (Range.width (r 2 7))

let test_contains () =
  let range = r 2 7 in
  Alcotest.(check bool) "lo inclusive" true (Range.contains range 2);
  Alcotest.(check bool) "hi exclusive" false (Range.contains range 7);
  Alcotest.(check bool) "inside" true (Range.contains range 5);
  Alcotest.(check bool) "below" false (Range.contains range 1)

let test_side_tests () =
  let range = r 2 7 in
  Alcotest.(check bool) "left of 7" true (Range.is_left_of range 7);
  Alcotest.(check bool) "not left of 6" false (Range.is_left_of range 6);
  Alcotest.(check bool) "right of 1" true (Range.is_right_of range 1);
  Alcotest.(check bool) "not right of 2" false (Range.is_right_of range 2)

let test_intersects () =
  let range = r 10 20 in
  Alcotest.(check bool) "overlapping" true (Range.intersects range ~lo:5 ~hi:12);
  Alcotest.(check bool) "touching closed end" true (Range.intersects range ~lo:19 ~hi:30);
  Alcotest.(check bool) "closed query hits lo" true (Range.intersects range ~lo:0 ~hi:10);
  Alcotest.(check bool) "just misses (hi exclusive)" false (Range.intersects range ~lo:20 ~hi:25);
  Alcotest.(check bool) "below" false (Range.intersects range ~lo:0 ~hi:9)

let test_split_merge_roundtrip () =
  let range = r 0 10 in
  let a, b = Range.split_at range 4 in
  Alcotest.(check bool) "a" true (Range.equal a (r 0 4));
  Alcotest.(check bool) "b" true (Range.equal b (r 4 10));
  Alcotest.(check bool) "merge back" true (Range.equal (Range.merge a b) range);
  Alcotest.(check bool) "merge commutes" true (Range.equal (Range.merge b a) range)

let test_split_validation () =
  Alcotest.check_raises "split at lo" (Invalid_argument "Range.split_at: point outside interior")
    (fun () -> ignore (Range.split_at (r 0 10) 0));
  Alcotest.check_raises "split at hi" (Invalid_argument "Range.split_at: point outside interior")
    (fun () -> ignore (Range.split_at (r 0 10) 10))

let test_midpoint () =
  let m = Range.midpoint (r 0 10) in
  Alcotest.(check int) "midpoint" 5 m;
  Alcotest.(check int) "width-2 midpoint legal" 1 (Range.midpoint (r 0 2));
  Alcotest.check_raises "width 1" (Invalid_argument "Range.midpoint: range too narrow to split")
    (fun () -> ignore (Range.midpoint (r 0 1)))

let test_merge_validation () =
  Alcotest.check_raises "gap" (Invalid_argument "Range.merge: ranges do not touch")
    (fun () -> ignore (Range.merge (r 0 3) (r 4 6)));
  Alcotest.check_raises "overlap" (Invalid_argument "Range.merge: ranges do not touch")
    (fun () -> ignore (Range.merge (r 0 5) (r 4 6)))

let test_touches () =
  Alcotest.(check bool) "touches" true (Range.touches_left (r 0 3) (r 3 5));
  Alcotest.(check bool) "does not" false (Range.touches_left (r 0 3) (r 4 5))

let suite =
  [
    Alcotest.test_case "make/width" `Quick test_make;
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "side tests" `Quick test_side_tests;
    Alcotest.test_case "intersects" `Quick test_intersects;
    Alcotest.test_case "split/merge roundtrip" `Quick test_split_merge_roundtrip;
    Alcotest.test_case "split validation" `Quick test_split_validation;
    Alcotest.test_case "midpoint" `Quick test_midpoint;
    Alcotest.test_case "merge validation" `Quick test_merge_validation;
    Alcotest.test_case "touches" `Quick test_touches;
  ]
