(* Adjacent replication (extension): write-through, sync, recovery. *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Replication = Baton.Replication
module Update = Baton.Update
module Failure = Baton.Failure
module Rng = Baton_util.Rng

let insert_with repl net k =
  let st = Update.insert net ~from:(Net.random_peer net) k in
  let owner = Net.peer net st.Update.node in
  Replication.on_insert repl net ~owner k;
  owner.Node.id

let test_sync_all_covers_network () =
  let net = N.build ~seed:1 30 in
  let repl = Replication.create () in
  let msgs = Replication.sync_all repl net in
  Alcotest.(check int) "one message per peer" 30 msgs;
  Alcotest.(check int) "replica per peer" 30 (Replication.replica_count repl)

let test_holder_is_adjacent () =
  let net = N.build ~seed:2 20 in
  let repl = Replication.create () in
  ignore (Replication.sync_all repl net);
  List.iter
    (fun (n : Node.t) ->
      match Replication.holder_of repl n.Node.id with
      | Some h ->
        let adj_ids =
          List.filter_map
            (fun side ->
              Option.map (fun (a : Baton.Link.info) -> a.Baton.Link.peer)
                (Node.adjacent n side))
            [ `Right; `Left ]
        in
        Alcotest.(check bool) "holder adjacent" true (List.mem h adj_ids)
      | None -> Alcotest.fail "missing replica")
    (Net.peers net)

let test_single_peer_has_no_holder () =
  let net = N.create ~seed:3 () in
  ignore (N.join net);
  let repl = Replication.create () in
  Alcotest.(check int) "no messages" 0 (Replication.sync_all repl net);
  Alcotest.(check int) "no replicas" 0 (Replication.replica_count repl)

let test_crash_recovery_restores_data () =
  let net = N.build ~seed:4 40 in
  let repl = Replication.create () in
  ignore (Replication.sync_all repl net);
  let rng = Rng.create 7 in
  let keys = Array.init 300 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (fun k -> ignore (insert_with repl net k)) keys;
  (* Crash a peer with data, repair, recover from the replica. *)
  let victim =
    List.find (fun (n : Node.t) -> Node.load n > 0 && not (Node.is_root n)) (Net.peers net)
  in
  let victim_id = victim.Node.id in
  Failure.crash net victim;
  Failure.repair net ~reporter:(Net.random_peer net) victim_id;
  let restored = Replication.recover repl net ~dead:victim_id in
  Alcotest.(check bool) "some keys restored" true (restored > 0);
  (* Every original key must again be reachable. *)
  Array.iter
    (fun k -> Alcotest.(check bool) "key recovered" true (N.lookup net k))
    keys;
  Baton.Check.all net

let test_without_replication_data_is_lost () =
  let net = N.build ~seed:4 40 in
  let rng = Rng.create 7 in
  let keys = Array.init 300 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (N.insert net) keys;
  let victim =
    List.find (fun (n : Node.t) -> Node.load n > 0 && not (Node.is_root n)) (Net.peers net)
  in
  let lost = Baton_util.Sorted_store.to_list victim.Node.store in
  Failure.crash_and_repair net victim;
  Alcotest.(check bool) "paper behaviour: keys gone" false
    (N.lookup net (List.hd lost))

let test_recover_twice_is_empty () =
  let net = N.build ~seed:5 20 in
  let repl = Replication.create () in
  ignore (Replication.sync_all repl net);
  ignore (insert_with repl net 123_456);
  let owner =
    (Baton.Search.exact net ~from:(Net.random_peer net) 123_456).Baton.Search.node
  in
  let owner_id = owner.Node.id in
  Failure.crash net owner;
  Failure.repair net ~reporter:(Net.random_peer net) owner_id;
  let first = Replication.recover repl net ~dead:owner_id in
  Alcotest.(check bool) "restored" true (first > 0);
  Alcotest.(check int) "entry consumed" 0 (Replication.recover repl net ~dead:owner_id)

let test_forget () =
  let net = N.build ~seed:6 10 in
  let repl = Replication.create () in
  ignore (Replication.sync_all repl net);
  let id = (Net.random_peer net).Node.id in
  Replication.forget repl id;
  Alcotest.(check bool) "dropped" true (Replication.holder_of repl id = None)

let test_write_through_keeps_replica_current () =
  let net = N.build ~seed:8 25 in
  let repl = Replication.create () in
  ignore (Replication.sync_all repl net);
  (* Insert keys AFTER the sync: write-through must cover them. *)
  let rng = Rng.create 11 in
  let keys = Array.init 100 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (fun k -> ignore (insert_with repl net k)) keys;
  let victim =
    List.find (fun (n : Node.t) -> Node.load n > 0 && not (Node.is_root n)) (Net.peers net)
  in
  let victim_keys = Baton_util.Sorted_store.to_list victim.Node.store in
  let victim_id = victim.Node.id in
  Failure.crash net victim;
  Failure.repair net ~reporter:(Net.random_peer net) victim_id;
  ignore (Replication.recover repl net ~dead:victim_id);
  List.iter
    (fun k -> Alcotest.(check bool) "post-sync insert recovered" true (N.lookup net k))
    victim_keys

let suite =
  [
    Alcotest.test_case "sync_all coverage" `Quick test_sync_all_covers_network;
    Alcotest.test_case "holder is adjacent" `Quick test_holder_is_adjacent;
    Alcotest.test_case "single peer" `Quick test_single_peer_has_no_holder;
    Alcotest.test_case "crash recovery" `Quick test_crash_recovery_restores_data;
    Alcotest.test_case "no replication loses data" `Quick test_without_replication_data_is_lost;
    Alcotest.test_case "recover consumes entry" `Quick test_recover_twice_is_empty;
    Alcotest.test_case "forget" `Quick test_forget;
    Alcotest.test_case "write-through" `Quick test_write_through_keeps_replica_current;
  ]
