(* Workload generators. *)

module Rng = Baton_util.Rng
module Datagen = Baton_workload.Datagen
module Querygen = Baton_workload.Querygen
module Churn = Baton_workload.Churn

let test_uniform_bounds () =
  let gen = Datagen.uniform (Rng.create 1) in
  for _ = 1 to 5_000 do
    let k = Datagen.next gen in
    Alcotest.(check bool) "in domain" true (k >= Datagen.domain_lo && k < Datagen.domain_hi)
  done

let test_zipf_bounds_and_skew () =
  let gen = Datagen.zipf ~universe:1_000 (Rng.create 2) in
  let counts = Hashtbl.create 1024 in
  let region k = k / ((Datagen.domain_hi - Datagen.domain_lo) / 1_000) in
  for _ = 1 to 20_000 do
    let k = Datagen.next gen in
    Alcotest.(check bool) "in domain" true (k >= Datagen.domain_lo && k < Datagen.domain_hi);
    let r = region k in
    Hashtbl.replace counts r (1 + Option.value ~default:0 (Hashtbl.find_opt counts r))
  done;
  let top = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  (* With theta=1 over 1000 regions the hottest region holds ~13% of
     draws; uniform would put ~0.1% per region. *)
  Alcotest.(check bool)
    (Printf.sprintf "hot region has %d of 20000" top)
    true (top > 1_000)

let test_zipf_spreads_within_region () =
  let gen = Datagen.zipf ~universe:100 (Rng.create 3) in
  let keys = Datagen.take gen 1_000 in
  let distinct = List.sort_uniq compare (Array.to_list keys) in
  (* Hot regions are neighbourhoods, not single keys. *)
  Alcotest.(check bool) "many distinct keys" true (List.length distinct > 500)

let test_take_length () =
  let gen = Datagen.uniform (Rng.create 4) in
  Alcotest.(check int) "take n" 17 (Array.length (Datagen.take gen 17))

let test_exact_targets_from_keys () =
  let rng = Rng.create 5 in
  let keys = [| 10; 20; 30 |] in
  let qs = Querygen.exact_targets rng ~keys 100 in
  Array.iter
    (fun q -> Alcotest.(check bool) "drawn from keys" true (Array.exists (( = ) q) keys))
    qs;
  Alcotest.check_raises "no keys" (Invalid_argument "Querygen.exact_targets: no keys")
    (fun () -> ignore (Querygen.exact_targets rng ~keys:[||] 1))

let test_ranges_span () =
  let rng = Rng.create 6 in
  let rs = Querygen.ranges rng ~span:100 ~lo:0 ~hi:10_000 50 in
  Array.iter
    (fun { Querygen.lo; hi } ->
      Alcotest.(check int) "width" 100 (hi - lo);
      Alcotest.(check bool) "start in domain" true (lo >= 0 && lo <= 10_000))
    rs

let test_churn_schedule_counts () =
  let rng = Rng.create 7 in
  let s = Churn.schedule rng ~joins:10 ~leaves:5 ~fails:3 in
  let count e = Array.fold_left (fun acc x -> if x = e then acc + 1 else acc) 0 s in
  Alcotest.(check int) "joins" 10 (count Churn.Join);
  Alcotest.(check int) "leaves" 5 (count Churn.Leave);
  Alcotest.(check int) "fails" 3 (count Churn.Fail);
  Alcotest.(check int) "total" 18 (Array.length s)

let test_alternating () =
  let s = Churn.alternating ~joins:3 ~leaves:3 in
  Alcotest.(check int) "length" 6 (Array.length s);
  Alcotest.(check bool) "starts with join" true (s.(0) = Churn.Join);
  Alcotest.(check bool) "alternates" true (s.(1) = Churn.Leave);
  let s2 = Churn.alternating ~joins:4 ~leaves:1 in
  let joins = Array.fold_left (fun acc x -> if x = Churn.Join then acc + 1 else acc) 0 s2 in
  Alcotest.(check int) "uneven counts preserved" 4 joins

let suite =
  [
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "zipf bounds/skew" `Quick test_zipf_bounds_and_skew;
    Alcotest.test_case "zipf spreads in region" `Quick test_zipf_spreads_within_region;
    Alcotest.test_case "take length" `Quick test_take_length;
    Alcotest.test_case "exact targets" `Quick test_exact_targets_from_keys;
    Alcotest.test_case "ranges span" `Quick test_ranges_span;
    Alcotest.test_case "churn schedule" `Quick test_churn_schedule_counts;
    Alcotest.test_case "alternating" `Quick test_alternating;
  ]
