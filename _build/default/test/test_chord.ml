(* Chord baseline: ring arithmetic, lookups, membership maintenance. *)

module Rng = Baton_util.Rng

let test_id_intervals () =
  Alcotest.(check bool) "plain open" true (Chord.Id.in_open 5 ~lo:1 ~hi:9);
  Alcotest.(check bool) "excludes endpoints" false (Chord.Id.in_open 1 ~lo:1 ~hi:9);
  Alcotest.(check bool) "wrapping open" true (Chord.Id.in_open 0 ~lo:100 ~hi:5);
  Alcotest.(check bool) "wrapping miss" false (Chord.Id.in_open 50 ~lo:100 ~hi:5);
  Alcotest.(check bool) "open-closed includes hi" true (Chord.Id.in_open_closed 9 ~lo:1 ~hi:9);
  Alcotest.(check bool) "lo = hi is full ring" true (Chord.Id.in_open_closed 3 ~lo:7 ~hi:7)

let test_hash_determinism_and_range () =
  for v = 0 to 100 do
    let h = Chord.Id.of_key v in
    Alcotest.(check int) "deterministic" h (Chord.Id.of_key v);
    Alcotest.(check bool) "in ring" true (h >= 0 && h < Chord.Id.ring_size)
  done;
  Alcotest.(check bool) "peer hash differs from key hash" true
    (Chord.Id.of_peer 42 <> Chord.Id.of_key 42)

let test_add_pow_wraps () =
  let near_top = Chord.Id.ring_size - 1 in
  Alcotest.(check int) "wraps" 0 (Chord.Id.add_pow near_top 0)

let test_single_node_ring () =
  let t = Chord.create ~seed:1 () in
  ignore (Chord.join t);
  Chord.check t;
  ignore (Chord.insert t 123);
  Alcotest.(check bool) "finds own key" true (fst (Chord.lookup t 123))

let test_growth_invariants () =
  let t = Chord.create ~seed:2 () in
  for i = 1 to 100 do
    ignore (Chord.join t);
    if i mod 20 = 0 then Chord.check t
  done;
  Alcotest.(check int) "size" 100 (Chord.size t)

let test_lookup_correctness () =
  let t = Chord.create ~seed:3 () in
  for _ = 1 to 80 do
    ignore (Chord.join t)
  done;
  let rng = Rng.create 5 in
  let keys = Array.init 300 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (fun k -> ignore (Chord.insert t k)) keys;
  Chord.check t;
  Array.iter
    (fun k -> Alcotest.(check bool) "found" true (fst (Chord.lookup t k)))
    keys

let test_lookup_hops_logarithmic () =
  let t = Chord.create ~seed:4 () in
  for _ = 1 to 256 do
    ignore (Chord.join t)
  done;
  let rng = Rng.create 7 in
  let hops =
    Array.init 200 (fun _ ->
        let k = Rng.int_in_range rng ~lo:1 ~hi:999_999_999 in
        float_of_int (snd (Chord.lookup t k)))
  in
  let mean = Baton_util.Stats.mean hops in
  (* Expected about (1/2) log2 N = 4; allow generous slack. *)
  Alcotest.(check bool) (Printf.sprintf "mean %.2f in [2, 8]" mean) true
    (mean > 2. && mean < 8.)

let test_join_update_cost_is_log_squared_scale () =
  let t = Chord.create ~seed:5 () in
  for _ = 1 to 200 do
    ignore (Chord.join t)
  done;
  let s = Chord.join t in
  (* Finger construction and update_others each walk the m = 24 finger
     slots with O(log N) lookups: the cost sits well above BATON's
     ~6 log N ~ 46 and below m * (4 + log2 N). *)
  let upper =
    float_of_int Chord.Id.bits *. (4. +. (log (float_of_int (Chord.size t)) /. log 2.))
  in
  Alcotest.(check bool)
    (Printf.sprintf "update msgs %d (upper %.0f)" s.Chord.update_msgs upper)
    true
    (s.Chord.update_msgs > 50 && float_of_int s.Chord.update_msgs < upper)

let test_leave_keeps_ring_and_data () =
  let t = Chord.create ~seed:6 () in
  for _ = 1 to 60 do
    ignore (Chord.join t)
  done;
  let rng = Rng.create 9 in
  let keys = Array.init 200 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (fun k -> ignore (Chord.insert t k)) keys;
  for _ = 1 to 40 do
    let ids = Chord.peer_ids t in
    ignore (Chord.leave t (Rng.pick rng ids))
  done;
  Chord.check t;
  Alcotest.(check int) "size" 20 (Chord.size t);
  Array.iter
    (fun k -> Alcotest.(check bool) "data survived" true (fst (Chord.lookup t k)))
    keys

let test_delete () =
  let t = Chord.create ~seed:7 () in
  for _ = 1 to 20 do
    ignore (Chord.join t)
  done;
  ignore (Chord.insert t 999);
  ignore (Chord.delete t 999);
  Alcotest.(check bool) "deleted" false (fst (Chord.lookup t 999))

let test_range_scan_cost_is_linear () =
  let t = Chord.create ~seed:8 () in
  for _ = 1 to 30 do
    ignore (Chord.join t)
  done;
  Alcotest.(check int) "must visit every peer" 30 (Chord.range_scan_cost t)

let test_lazy_join_then_stabilize_converges () =
  let t = Chord.create ~seed:10 () in
  for _ = 1 to 40 do
    ignore (Chord.join_lazy t)
  done;
  (* Immediately after lazy joins the ring is inconsistent... *)
  Alcotest.(check int) "size" 40 (Chord.size t);
  (* ...but stabilization + finger repair converge to a checkable
     state (classic Chord's eventual consistency). *)
  let rounds = ref 0 in
  while (not (Chord.converged t)) && !rounds < 64 do
    ignore (Chord.stabilize_round t);
    ignore (Chord.fix_fingers_round t);
    incr rounds
  done;
  Alcotest.(check bool)
    (Printf.sprintf "converged after %d rounds" !rounds)
    true (Chord.converged t);
  Chord.check t

let test_lazy_join_is_cheap () =
  let t = Chord.create ~seed:11 () in
  for _ = 1 to 100 do
    ignore (Chord.join t)
  done;
  let eager = Chord.join t in
  let lazy_stats = Chord.join_lazy t in
  Alcotest.(check int) "no update messages" 0 lazy_stats.Chord.update_msgs;
  Alcotest.(check bool) "far cheaper than eager join" true
    (lazy_stats.Chord.search_msgs < eager.Chord.update_msgs / 4)

let test_stabilize_counts_messages () =
  let t = Chord.create ~seed:12 () in
  for _ = 1 to 10 do
    ignore (Chord.join t)
  done;
  Alcotest.(check bool) "stabilize pays messages" true (Chord.stabilize_round t > 0);
  Alcotest.(check bool) "fix_fingers pays messages" true (Chord.fix_fingers_round t > 0);
  Chord.check t

let churn_prop =
  let open QCheck2 in
  Test.make ~name:"chord invariants under random churn" ~count:15
    Gen.(pair (int_range 5 40) (int_range 0 1000))
    (fun (n, salt) ->
      let t = Chord.create ~seed:(3000 + salt) () in
      for _ = 1 to n do
        ignore (Chord.join t)
      done;
      let rng = Rng.create salt in
      for _ = 1 to n / 2 do
        let ids = Chord.peer_ids t in
        ignore (Chord.leave t (Rng.pick rng ids));
        ignore (Chord.join t)
      done;
      Chord.check t;
      true)

let suite =
  [
    Alcotest.test_case "id intervals" `Quick test_id_intervals;
    Alcotest.test_case "hash determinism" `Quick test_hash_determinism_and_range;
    Alcotest.test_case "add_pow wraps" `Quick test_add_pow_wraps;
    Alcotest.test_case "single node ring" `Quick test_single_node_ring;
    Alcotest.test_case "growth invariants" `Quick test_growth_invariants;
    Alcotest.test_case "lookup correctness" `Quick test_lookup_correctness;
    Alcotest.test_case "lookup hops log" `Quick test_lookup_hops_logarithmic;
    Alcotest.test_case "join cost log^2 scale" `Quick test_join_update_cost_is_log_squared_scale;
    Alcotest.test_case "leave keeps ring/data" `Quick test_leave_keeps_ring_and_data;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "range scan linear" `Quick test_range_scan_cost_is_linear;
    Alcotest.test_case "lazy join converges" `Quick test_lazy_join_then_stabilize_converges;
    Alcotest.test_case "lazy join cheap" `Quick test_lazy_join_is_cheap;
    Alcotest.test_case "stabilize counted" `Quick test_stabilize_counts_messages;
    QCheck_alcotest.to_alcotest churn_prop;
  ]
