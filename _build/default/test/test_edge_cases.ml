(* Edge cases at the boundaries of the protocols: tiny networks,
   domain-wide queries, degenerate ranges, ring wrap-around. *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Search = Baton.Search
module Rng = Baton_util.Rng

let test_single_node_answers_everything () =
  let net = N.create ~seed:1 () in
  ignore (N.join net);
  N.insert net 5;
  N.insert net 999_999_998;
  Alcotest.(check bool) "low" true (N.lookup net 5);
  Alcotest.(check bool) "high" true (N.lookup net 999_999_998);
  Alcotest.(check (list int)) "whole-domain range" [ 5; 999_999_998 ]
    (N.range_query net ~lo:1 ~hi:999_999_999);
  let o = Search.exact net ~from:(Net.random_peer net) 42 in
  Alcotest.(check int) "zero hops" 0 o.Search.hops

let test_two_node_network_operations () =
  let net = N.create ~seed:2 () in
  ignore (N.join net);
  ignore (N.join net);
  N.insert net 1;
  N.insert net 999_999_998;
  Alcotest.(check bool) "low key" true (N.lookup net 1);
  Alcotest.(check bool) "high key" true (N.lookup net 999_999_998);
  Baton.Check.all net;
  (* Churn down to one and back up. *)
  let ids = Net.live_ids net in
  N.leave net ids.(0);
  Alcotest.(check int) "one left" 1 (N.size net);
  Alcotest.(check bool) "data merged" true (N.lookup net 1 && N.lookup net 999_999_998)

let test_range_query_single_point () =
  let net = N.build ~seed:3 40 in
  N.insert net 123_456;
  Alcotest.(check (list int)) "point interval" [ 123_456 ]
    (N.range_query net ~lo:123_456 ~hi:123_456)

let test_range_query_whole_domain () =
  let net = N.build ~seed:4 30 in
  let rng = Rng.create 5 in
  let keys = List.init 100 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  List.iter (N.insert net) keys;
  let r =
    Search.range net ~from:(Net.random_peer net) ~lo:min_int ~hi:max_int
  in
  Alcotest.(check int) "visits every peer" 30 r.Search.nodes_visited;
  Alcotest.(check (list int)) "all keys" (List.sort compare keys) r.Search.keys

let test_duplicates_stay_colocated () =
  (* The paper's footnote case (duplicates of one key split across
     peers) cannot arise here: splits and balancing keep equal keys
     together. *)
  let net = N.build ~seed:5 30 in
  for _ = 1 to 50 do
    N.insert net 777_777
  done;
  for _ = 1 to 10 do
    ignore (N.join net)
  done;
  let holders =
    List.filter (fun (n : Node.t) -> Baton_util.Sorted_store.mem n.Node.store 777_777)
      (Net.peers net)
  in
  Alcotest.(check int) "one holder" 1 (List.length holders);
  Alcotest.(check int) "all copies"
    50
    (Baton_util.Sorted_store.count (List.hd holders).Node.store 777_777)

let test_chord_ring_wraparound_lookup () =
  let t = Chord.create ~seed:6 () in
  for _ = 1 to 50 do
    ignore (Chord.join t)
  done;
  (* Exercise many keys; hashing spreads them across the ring wrap. *)
  for k = 1 to 500 do
    ignore (Chord.insert t (k * 7_919))
  done;
  for k = 1 to 500 do
    Alcotest.(check bool) "found across wrap" true (fst (Chord.lookup t (k * 7_919)))
  done;
  Chord.check t

let test_multiway_two_peers_leave_root () =
  let t = Multiway.create ~seed:7 ~domain_lo:1 ~domain_hi:1_000 () in
  ignore (Multiway.join t);
  ignore (Multiway.join t);
  ignore (Multiway.insert t 500);
  let ids = Multiway.peer_ids t in
  (* Leave the root: its child must take over. *)
  ignore (Multiway.leave t ids.(0));
  Multiway.check t;
  Alcotest.(check int) "one peer" 1 (Multiway.size t);
  Alcotest.(check bool) "data kept" true (fst (Multiway.lookup t 500))

let test_viz_depth_zero () =
  let net = N.build ~seed:8 10 in
  let text = Baton.Viz.tree ~max_depth:0 net in
  Alcotest.(check bool) "single elision line" true
    (List.length (String.split_on_char '\n' (String.trim text)) = 1)

let test_deep_in_order_compare () =
  (* Deep positions must still compare exactly (no overflow). *)
  let module P = Baton.Position in
  let deep_left = P.make ~level:30 ~number:1 in
  let deep_right = P.make ~level:30 ~number:(P.level_width 30) in
  Alcotest.(check bool) "leftmost before root" true
    (P.in_order_compare deep_left P.root < 0);
  Alcotest.(check bool) "rightmost after root" true
    (P.in_order_compare deep_right P.root > 0);
  Alcotest.(check bool) "self" true (P.in_order_compare deep_left deep_left = 0)

let test_bulk_insert_all_on_one_node () =
  let net = N.build ~seed:9 50 in
  let owner = (Search.exact net ~from:(Net.random_peer net) 500_000_000).Search.node in
  let r = owner.Node.range in
  let width = Baton.Range.width r in
  let keys = List.init 20 (fun i -> r.Baton.Range.lo + (i mod width)) in
  let st = Baton.Update.bulk_insert net ~from:(Net.random_peer net) keys in
  Alcotest.(check int) "one node" 1 st.Baton.Update.nodes;
  Alcotest.(check int) "all keys" 20 st.Baton.Update.keys

let suite =
  [
    Alcotest.test_case "single node" `Quick test_single_node_answers_everything;
    Alcotest.test_case "two nodes" `Quick test_two_node_network_operations;
    Alcotest.test_case "point range" `Quick test_range_query_single_point;
    Alcotest.test_case "whole-domain range" `Quick test_range_query_whole_domain;
    Alcotest.test_case "duplicates colocated" `Quick test_duplicates_stay_colocated;
    Alcotest.test_case "chord wraparound" `Quick test_chord_ring_wraparound_lookup;
    Alcotest.test_case "multiway root leave" `Quick test_multiway_two_peers_leave_root;
    Alcotest.test_case "viz depth 0" `Quick test_viz_depth_zero;
    Alcotest.test_case "deep in-order compare" `Quick test_deep_in_order_compare;
    Alcotest.test_case "bulk on one node" `Quick test_bulk_insert_all_on_one_node;
  ]
