(* Data insertion and deletion, including end-node range expansion. *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Update = Baton.Update
module Check = Baton.Check
module Rng = Baton_util.Rng

let test_insert_then_lookup () =
  let net = N.build ~seed:1 40 in
  let st = Update.insert net ~from:(Net.random_peer net) 123_456_789 in
  Alcotest.(check bool) "no expansion inside domain" false st.Update.expanded;
  Alcotest.(check bool) "lookup finds it" true (N.lookup net 123_456_789);
  Check.all net

let test_delete_removes_one_occurrence () =
  let net = N.build ~seed:2 40 in
  N.insert net 777;
  N.insert net 777;
  let st = Update.delete net ~from:(Net.random_peer net) 777 in
  Alcotest.(check bool) "found" true st.Update.found;
  Alcotest.(check bool) "duplicate remains" true (N.lookup net 777);
  ignore (N.delete net 777);
  Alcotest.(check bool) "gone" false (N.lookup net 777)

let test_delete_absent () =
  let net = N.build ~seed:3 20 in
  let st = Update.delete net ~from:(Net.random_peer net) 42 in
  Alcotest.(check bool) "absent" false st.Update.found

let test_expansion_left () =
  let net = N.build ~seed:4 30 in
  let st = Update.insert net ~from:(Net.random_peer net) (-100) in
  Alcotest.(check bool) "expanded" true st.Update.expanded;
  Alcotest.(check bool) "lookup finds it" true (N.lookup net (-100));
  (* Invariants still hold with the widened domain. *)
  Check.tree_shape net;
  Check.balanced net;
  Check.theorem1 net;
  Check.links net;
  Check.data_placement net

let test_expansion_right () =
  let net = N.build ~seed:5 30 in
  let st = Update.insert net ~from:(Net.random_peer net) 5_000_000_000 in
  Alcotest.(check bool) "expanded" true st.Update.expanded;
  Alcotest.(check bool) "lookup finds it" true (N.lookup net 5_000_000_000);
  Check.links net;
  Check.data_placement net

let test_expansion_announces_new_range () =
  let net = N.build ~seed:6 30 in
  ignore (Update.insert net ~from:(Net.random_peer net) (-7));
  (* After the announcement, strict link checks must pass: every cached
     range equals the expanded one. *)
  Check.links ~strict:true net

let test_insert_cost_scales_logarithmically () =
  let sample n =
    let net = N.build ~seed:7 n in
    let rng = Rng.create 3 in
    let costs =
      Array.init 100 (fun _ ->
          let k = Rng.int_in_range rng ~lo:1 ~hi:999_999_999 in
          float_of_int (Update.insert net ~from:(Net.random_peer net) k).Update.hops)
    in
    Baton_util.Stats.mean costs
  in
  let small = sample 50 and large = sample 400 in
  (* 8x the nodes should cost far less than 8x the messages. *)
  Alcotest.(check bool) "sub-linear growth" true (large < small *. 3.)

let test_mass_insert_delete_roundtrip () =
  let net = N.build ~seed:8 60 in
  let rng = Rng.create 5 in
  let keys = Array.init 400 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (N.insert net) keys;
  Check.all net;
  Array.iter (fun k -> Alcotest.(check bool) "deleted" true (N.delete net k)) keys;
  let total_load =
    List.fold_left (fun acc n -> acc + Node.load n) 0 (Net.peers net)
  in
  Alcotest.(check int) "store empty again" 0 total_load;
  Check.all net

let suite =
  [
    Alcotest.test_case "insert then lookup" `Quick test_insert_then_lookup;
    Alcotest.test_case "delete one occurrence" `Quick test_delete_removes_one_occurrence;
    Alcotest.test_case "delete absent" `Quick test_delete_absent;
    Alcotest.test_case "left expansion" `Quick test_expansion_left;
    Alcotest.test_case "right expansion" `Quick test_expansion_right;
    Alcotest.test_case "expansion announced" `Quick test_expansion_announces_new_range;
    Alcotest.test_case "insert cost log" `Quick test_insert_cost_scales_logarithmically;
    Alcotest.test_case "mass insert/delete" `Quick test_mass_insert_delete_roundtrip;
  ]

(* --- Batch insertion (extension of "inserted in batches") ----------- *)

let all_keys net =
  List.concat_map
    (fun (n : Node.t) -> Baton_util.Sorted_store.to_list n.Node.store)
    (Net.peers net)
  |> List.sort compare

let test_bulk_insert_places_like_singles () =
  let rng = Rng.create 31 in
  let keys = List.init 300 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  let bulk_net = N.build ~seed:21 60 in
  let st = Update.bulk_insert bulk_net ~from:(Net.random_peer bulk_net) keys in
  Alcotest.(check int) "all keys stored" 300 st.Update.keys;
  let single_net = N.build ~seed:21 60 in
  List.iter (N.insert single_net) keys;
  Alcotest.(check (list int)) "same multiset as single inserts"
    (all_keys single_net) (all_keys bulk_net);
  (* Placement agrees node by node (both networks are identical). *)
  List.iter
    (fun (n : Node.t) ->
      let twin = Net.peer single_net n.Node.id in
      Alcotest.(check (list int))
        (Printf.sprintf "node %d placement" n.Node.id)
        (Baton_util.Sorted_store.to_list twin.Node.store)
        (Baton_util.Sorted_store.to_list n.Node.store))
    (Net.peers bulk_net);
  Check.all bulk_net

let test_bulk_insert_is_cheaper_for_clustered_keys () =
  let keys = List.init 200 (fun i -> 500_000_000 + (i * 1_000)) in
  let bulk_net = N.build ~seed:22 200 in
  let st = Update.bulk_insert bulk_net ~from:(Net.random_peer bulk_net) keys in
  let single_net = N.build ~seed:22 200 in
  let m = Net.metrics single_net in
  let cp = Baton_sim.Metrics.checkpoint m in
  List.iter (N.insert single_net) keys;
  let single_msgs = Baton_sim.Metrics.since m cp in
  Alcotest.(check bool)
    (Printf.sprintf "bulk %d << singles %d" st.Update.msgs single_msgs)
    true
    (st.Update.msgs * 4 < single_msgs)

let test_bulk_insert_empty () =
  let net = N.build ~seed:23 10 in
  let st = Update.bulk_insert net ~from:(Net.random_peer net) [] in
  Alcotest.(check int) "no keys" 0 st.Update.keys;
  Alcotest.(check int) "no messages" 0 st.Update.msgs

let test_bulk_insert_expands_both_ends () =
  let net = N.build ~seed:24 20 in
  let st = Update.bulk_insert net ~from:(Net.random_peer net)
      [ -50; 5; 999_999_998; 2_000_000_000 ] in
  Alcotest.(check int) "all stored" 4 st.Update.keys;
  List.iter
    (fun k -> Alcotest.(check bool) (string_of_int k) true (N.lookup net k))
    [ -50; 5; 999_999_998; 2_000_000_000 ];
  Check.links net;
  Check.data_placement net

let bulk_suite =
  [
    Alcotest.test_case "bulk = singles placement" `Quick test_bulk_insert_places_like_singles;
    Alcotest.test_case "bulk cheaper when clustered" `Quick test_bulk_insert_is_cheaper_for_clustered_keys;
    Alcotest.test_case "bulk empty" `Quick test_bulk_insert_empty;
    Alcotest.test_case "bulk expands ends" `Quick test_bulk_insert_expands_both_ends;
  ]

let suite = suite @ bulk_suite
