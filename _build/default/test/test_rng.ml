(* Deterministic PRNG: reproducibility, bounds, derived streams. *)

module Rng = Baton_util.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "adjacent seeds decorrelate" true (!same < 4)

let test_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "0 <= v < 13" true (v >= 0 && v < 13)
  done

let test_int_rejects_bad_bound () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_in_range () =
  let rng = Rng.create 9 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 5_000 do
    let v = Rng.int_in_range rng ~lo:(-3) ~hi:3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3);
    if v = -3 then seen_lo := true;
    if v = 3 then seen_hi := true
  done;
  Alcotest.(check bool) "inclusive endpoints reachable" true (!seen_lo && !seen_hi)

let test_float_bounds () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0. && v < 2.5)
  done

let test_float_covers_unit () =
  let rng = Rng.create 13 in
  let lo = ref false and hi = ref false in
  for _ = 1 to 1_000 do
    let v = Rng.float rng 1.0 in
    if v < 0.1 then lo := true;
    if v > 0.9 then hi := true
  done;
  Alcotest.(check bool) "hits both tails" true (!lo && !hi)

let test_bool_balance () =
  let rng = Rng.create 17 in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "roughly fair" true (ratio > 0.45 && ratio < 0.55)

let test_split_independence () =
  let parent = Rng.create 21 in
  let child = Rng.split parent in
  (* The child stream must not merely replay the parent stream. *)
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 parent = Rng.int64 child then incr matches
  done;
  Alcotest.(check bool) "split decorrelates" true (!matches < 4)

let test_copy_replays () =
  let a = Rng.create 23 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  for _ = 1 to 32 do
    Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)
  done

let test_shuffle_is_permutation () =
  let rng = Rng.create 29 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_shuffle_moves_something () =
  let rng = Rng.create 31 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  Alcotest.(check bool) "not identity" true (a <> Array.init 50 Fun.id)

let test_pick () =
  let rng = Rng.create 37 in
  for _ = 1 to 100 do
    let v = Rng.pick rng [| 1; 2; 3 |] in
    Alcotest.(check bool) "element of array" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let test_pick_list () =
  let rng = Rng.create 41 in
  let v = Rng.pick_list rng [ "a"; "b" ] in
  Alcotest.(check bool) "element of list" true (v = "a" || v = "b")

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int bad bound" `Quick test_int_rejects_bad_bound;
    Alcotest.test_case "int_in_range inclusive" `Quick test_int_in_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "float coverage" `Quick test_float_covers_unit;
    Alcotest.test_case "bool fair" `Quick test_bool_balance;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy replays" `Quick test_copy_replays;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "shuffle moves" `Quick test_shuffle_moves_something;
    Alcotest.test_case "pick" `Quick test_pick;
    Alcotest.test_case "pick_list" `Quick test_pick_list;
  ]
