(* Diagnostics rendering. *)

module N = Baton.Network
module Viz = Baton.Viz

let test_tree_lists_every_peer () =
  let net = N.build ~seed:1 15 in
  let text = Viz.tree net in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "one line per peer" 15 (List.length lines);
  Alcotest.(check bool) "root first" true
    (String.length (List.hd lines) > 0 && (List.hd lines).[0] = '(')

let test_tree_depth_cut () =
  let net = N.build ~seed:2 31 in
  let text = Viz.tree ~max_depth:2 net in
  Alcotest.(check bool) "elision marker" true
    (String.length text > 0
    &&
    let re = Str.regexp_string "more nodes below" in
    (try ignore (Str.search_forward re text 0); true with Not_found -> false))

let test_empty_network () =
  let net = N.create ~seed:3 () in
  Alcotest.(check string) "empty marker" "(empty network)\n" (Viz.tree net)

let test_level_summary () =
  let net = N.build ~seed:4 7 in
  N.insert net 500;
  let text = Viz.level_summary net in
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "three levels" 3 (List.length lines)

let test_node_line_mentions_load () =
  let net = N.build ~seed:5 3 in
  N.insert net 123;
  let owner =
    (Baton.Search.exact net ~from:(Baton.Net.random_peer net) 123).Baton.Search.node
  in
  let line = Viz.node_line owner in
  Alcotest.(check bool) "shows load" true
    (let re = Str.regexp_string "load=1" in
     (try ignore (Str.search_forward re line 0); true with Not_found -> false))

let suite =
  [
    Alcotest.test_case "tree lists peers" `Quick test_tree_lists_every_peer;
    Alcotest.test_case "depth cut" `Quick test_tree_depth_cut;
    Alcotest.test_case "empty network" `Quick test_empty_network;
    Alcotest.test_case "level summary" `Quick test_level_summary;
    Alcotest.test_case "node line" `Quick test_node_line_mentions_load;
  ]
