(* Node departure: direct leaves, replacement search, data retention. *)

module N = Baton.Network
module Net = Baton.Net
module Join = Baton.Join
module Leave = Baton.Leave
module Node = Baton.Node
module Check = Baton.Check
module Rng = Baton_util.Rng

let all_keys net =
  List.concat_map
    (fun (n : Node.t) -> Baton_util.Sorted_store.to_list n.Node.store)
    (Net.peers net)
  |> List.sort compare

let test_last_node_leaves () =
  let net = N.create ~seed:1 () in
  let root = Join.join_new_network net in
  ignore (Leave.leave net root);
  Alcotest.(check int) "empty network" 0 (Net.size net)

let test_leaf_direct_departure () =
  let net = N.create ~seed:2 () in
  let root = Join.join_new_network net in
  let s = Join.join net ~via:root in
  let child = Net.peer net s.Join.new_peer in
  Alcotest.(check bool) "can depart directly" true (Leave.can_depart_directly child);
  for k = 1 to 10 do
    Baton_util.Sorted_store.insert child.Node.store (k * 10_000_000)
  done;
  let stats = Leave.leave net child in
  Alcotest.(check (option int)) "no replacement needed" None stats.Leave.replacement;
  Alcotest.(check int) "back to one" 1 (Net.size net);
  Alcotest.(check int) "parent inherited the data" 10 (Node.load root);
  Alcotest.(check bool) "parent owns whole domain" true
    (Baton.Range.equal root.Node.range (Net.domain net));
  Check.all net

let test_internal_leave_uses_replacement () =
  let net = N.build ~seed:3 60 in
  let root = Option.get (Net.root net) in
  let stats = Leave.leave net root in
  Alcotest.(check bool) "replacement used" true (Option.is_some stats.Leave.replacement);
  Alcotest.(check int) "size dropped" 59 (Net.size net);
  Alcotest.(check bool) "a root still exists" true (Option.is_some (Net.root net));
  Check.all net

let test_data_survives_leaves () =
  let net = N.build ~seed:5 50 in
  let rng = Rng.create 99 in
  for _ = 1 to 500 do
    N.insert net (Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
  done;
  let before = all_keys net in
  for _ = 1 to 30 do
    let ids = Net.live_ids net in
    ignore (Leave.leave net (Net.peer net (Rng.pick rng ids)))
  done;
  Alcotest.(check (list int)) "every key retained" before (all_keys net);
  Check.all net

let test_replacement_is_safe_leaf () =
  let net = N.build ~seed:7 80 in
  let root = Option.get (Net.root net) in
  let y, msgs = Leave.find_replacement net root in
  Alcotest.(check bool) "replacement is a leaf" true (Node.is_leaf y);
  Alcotest.(check bool) "walk paid messages" true (msgs > 0);
  Alcotest.(check bool) "replacement departs safely" true (Leave.can_depart_directly y)

let test_leave_update_cost_bound () =
  (* Paper Section III-B: <= 8 log N update messages. *)
  let net = N.build ~seed:9 200 in
  let rng = Rng.create 5 in
  for _ = 1 to 30 do
    let ids = Net.live_ids net in
    let victim = Net.peer net (Rng.pick rng ids) in
    let stats = Leave.leave net victim in
    let n = float_of_int (Net.size net) in
    let bound = (8. *. (log n /. log 2.)) +. 16. in
    Alcotest.(check bool)
      (Printf.sprintf "%d <= %.0f" stats.Leave.update_msgs bound)
      true
      (float_of_int stats.Leave.update_msgs <= bound);
    ignore (Join.join net ~via:(Net.random_peer net))
  done

let test_shrink_to_one_and_regrow () =
  let net = N.build ~seed:11 40 in
  let rng = Rng.create 13 in
  while Net.size net > 1 do
    let ids = Net.live_ids net in
    ignore (Leave.leave net (Net.peer net (Rng.pick rng ids)));
    Check.all net
  done;
  for _ = 2 to 20 do
    ignore (Join.join net ~via:(Net.random_peer net))
  done;
  Check.all net;
  Alcotest.(check int) "regrown" 20 (Net.size net)

let suite =
  [
    Alcotest.test_case "last node" `Quick test_last_node_leaves;
    Alcotest.test_case "leaf direct departure" `Quick test_leaf_direct_departure;
    Alcotest.test_case "internal leave replacement" `Quick test_internal_leave_uses_replacement;
    Alcotest.test_case "data survives" `Quick test_data_survives_leaves;
    Alcotest.test_case "replacement is safe leaf" `Quick test_replacement_is_safe_leaf;
    Alcotest.test_case "leave update bound" `Quick test_leave_update_cost_bound;
    Alcotest.test_case "shrink and regrow" `Quick test_shrink_to_one_and_regrow;
  ]
