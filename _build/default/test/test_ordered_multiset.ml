(* Order-statistics AVL multiset: unit behaviour, structural invariant,
   qcheck model vs sorted list. *)

module M = Baton_util.Ordered_multiset

let of_list l = List.fold_left (fun acc k -> M.add k acc) M.empty l

let test_empty () =
  Alcotest.(check bool) "empty" true (M.is_empty M.empty);
  Alcotest.(check int) "cardinal" 0 (M.cardinal M.empty);
  Alcotest.(check (option int)) "min" None (M.min_elt M.empty);
  Alcotest.(check (option int)) "max" None (M.max_elt M.empty);
  M.check M.empty

let test_add_and_duplicates () =
  let t = of_list [ 3; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5 ] in
  M.check t;
  Alcotest.(check int) "cardinal counts multiplicity" 11 (M.cardinal t);
  Alcotest.(check int) "count 5" 3 (M.count 5 t);
  Alcotest.(check int) "count 1" 2 (M.count 1 t);
  Alcotest.(check bool) "mem" true (M.mem 9 t);
  Alcotest.(check bool) "not mem" false (M.mem 7 t);
  Alcotest.(check (list int)) "elements sorted with duplicates"
    [ 1; 1; 2; 3; 3; 4; 5; 5; 5; 6; 9 ] (M.elements t)

let test_remove_one () =
  let t = of_list [ 1; 2; 2; 3 ] in
  (match M.remove_one 2 t with
  | Some t' ->
    M.check t';
    Alcotest.(check int) "one 2 left" 1 (M.count 2 t')
  | None -> Alcotest.fail "expected removal");
  Alcotest.(check bool) "absent key" true (M.remove_one 9 t = None)

let test_nth () =
  let t = of_list [ 10; 20; 20; 30 ] in
  Alcotest.(check int) "nth 0" 10 (M.nth 0 t);
  Alcotest.(check int) "nth 1" 20 (M.nth 1 t);
  Alcotest.(check int) "nth 2" 20 (M.nth 2 t);
  Alcotest.(check int) "nth 3" 30 (M.nth 3 t);
  Alcotest.check_raises "out of range" (Invalid_argument "Ordered_multiset.nth: out of range")
    (fun () -> ignore (M.nth 4 t))

let test_split_rank () =
  let t = of_list [ 1; 2; 2; 3; 4 ] in
  let a, b = M.split_rank 3 t in
  M.check a;
  M.check b;
  Alcotest.(check (list int)) "first three" [ 1; 2; 2 ] (M.elements a);
  Alcotest.(check (list int)) "rest" [ 3; 4 ] (M.elements b);
  (* Splitting inside a duplicate run. *)
  let a, b = M.split_rank 2 t in
  Alcotest.(check (list int)) "duplicate run split left" [ 1; 2 ] (M.elements a);
  Alcotest.(check (list int)) "duplicate run split right" [ 2; 3; 4 ] (M.elements b);
  (* Clamping. *)
  let a, b = M.split_rank (-1) t in
  Alcotest.(check int) "clamp low" 0 (M.cardinal a);
  Alcotest.(check int) "clamp low rest" 5 (M.cardinal b);
  let a, b = M.split_rank 99 t in
  Alcotest.(check int) "clamp high" 5 (M.cardinal a);
  Alcotest.(check int) "clamp high rest" 0 (M.cardinal b)

let test_split_key () =
  let t = of_list [ 1; 3; 3; 5 ] in
  let below, at_or_above = M.split_key 3 t in
  M.check below;
  M.check at_or_above;
  Alcotest.(check (list int)) "strictly below" [ 1 ] (M.elements below);
  Alcotest.(check (list int)) "at or above" [ 3; 3; 5 ] (M.elements at_or_above)

let test_union () =
  let t = M.union (of_list [ 1; 3; 3 ]) (of_list [ 2; 3 ]) in
  M.check t;
  Alcotest.(check (list int)) "multiset sum" [ 1; 2; 3; 3; 3 ] (M.elements t)

let test_ranges () =
  let t = of_list (List.init 20 (fun i -> i * 10)) in
  Alcotest.(check (list int)) "inclusive interval" [ 50; 60; 70 ]
    (M.elements_in ~lo:45 ~hi:75 t);
  Alcotest.(check int) "count_in" 3 (M.count_in ~lo:45 ~hi:75 t);
  Alcotest.(check int) "count_in empty" 0 (M.count_in ~lo:1000 ~hi:2000 t)

let test_balance_under_sequential_insertions () =
  (* Sorted insertions are the AVL worst case; the tree must stay
     logarithmic (check verifies heights). *)
  let t = of_list (List.init 2_000 Fun.id) in
  M.check t;
  Alcotest.(check int) "all present" 2_000 (M.cardinal t);
  Alcotest.(check int) "median via nth" 1_000 (M.nth 1_000 t)

let model_prop =
  let open QCheck2 in
  let op =
    Gen.oneof
      [
        Gen.map (fun v -> `Add v) (Gen.int_bound 30);
        Gen.map (fun v -> `Remove v) (Gen.int_bound 30);
        Gen.map (fun k -> `SplitRank k) (Gen.int_bound 40);
        Gen.map (fun k -> `SplitKey k) (Gen.int_bound 30);
      ]
  in
  Test.make ~name:"ordered_multiset agrees with sorted-list model" ~count:300
    Gen.(list_size (int_bound 60) op)
    (fun ops ->
      let t = ref M.empty in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Add v ->
            t := M.add v !t;
            model := List.sort compare (v :: !model)
          | `Remove v -> (
            match M.remove_one v !t with
            | Some t' ->
              assert (List.mem v !model);
              t := t';
              let dropped = ref false in
              model :=
                List.filter
                  (fun x ->
                    if x = v && not !dropped then (
                      dropped := true;
                      false)
                    else true)
                  !model
            | None -> assert (not (List.mem v !model)))
          | `SplitRank k ->
            let a, b = M.split_rank k !t in
            M.check a;
            M.check b;
            let k' = max 0 (min k (List.length !model)) in
            assert (M.elements a = List.filteri (fun i _ -> i < k') !model);
            t := M.union a b
          | `SplitKey k ->
            let a, b = M.split_key k !t in
            assert (M.elements a = List.filter (fun x -> x < k) !model);
            assert (M.elements b = List.filter (fun x -> x >= k) !model);
            t := M.union a b)
        ops;
      M.check !t;
      M.elements !t = !model)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "add/duplicates" `Quick test_add_and_duplicates;
    Alcotest.test_case "remove_one" `Quick test_remove_one;
    Alcotest.test_case "nth" `Quick test_nth;
    Alcotest.test_case "split_rank" `Quick test_split_rank;
    Alcotest.test_case "split_key" `Quick test_split_key;
    Alcotest.test_case "union" `Quick test_union;
    Alcotest.test_case "interval queries" `Quick test_ranges;
    Alcotest.test_case "sequential insert balance" `Quick test_balance_under_sequential_insertions;
    QCheck_alcotest.to_alcotest model_prop;
  ]
