(* Zipfian sampler: frequency ordering, parameter effects, key scatter. *)

module Zipf = Baton_util.Zipf
module Rng = Baton_util.Rng

let frequencies z rng draws =
  let counts = Array.make (Zipf.n z + 1) 0 in
  for _ = 1 to draws do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  counts

let test_rank_bounds () =
  let z = Zipf.create ~n:50 ~theta:1.0 in
  let rng = Rng.create 5 in
  for _ = 1 to 5_000 do
    let r = Zipf.sample z rng in
    Alcotest.(check bool) "rank in [1,n]" true (r >= 1 && r <= 50)
  done

let test_rank_one_most_frequent () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let rng = Rng.create 7 in
  let counts = frequencies z rng 20_000 in
  let max_rank = ref 1 in
  for r = 2 to 100 do
    if counts.(r) > counts.(!max_rank) then max_rank := r
  done;
  Alcotest.(check int) "rank 1 dominates" 1 !max_rank

let test_skew_ratio () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let rng = Rng.create 11 in
  let counts = frequencies z rng 50_000 in
  (* With theta = 1 the rank-1/rank-10 frequency ratio is about 10. *)
  let ratio = float_of_int counts.(1) /. float_of_int (max 1 counts.(10)) in
  Alcotest.(check bool) "ratio near 10" true (ratio > 5. && ratio < 20.)

let test_theta_zero_uniform () =
  let z = Zipf.create ~n:10 ~theta:0. in
  let rng = Rng.create 13 in
  let counts = frequencies z rng 50_000 in
  for r = 1 to 10 do
    let share = float_of_int counts.(r) /. 50_000. in
    Alcotest.(check bool)
      (Printf.sprintf "rank %d near 1/10" r)
      true
      (share > 0.07 && share < 0.13)
  done

let test_single_rank () =
  let z = Zipf.create ~n:1 ~theta:1.0 in
  let rng = Rng.create 17 in
  for _ = 1 to 100 do
    Alcotest.(check int) "only rank 1" 1 (Zipf.sample z rng)
  done

let test_create_validation () =
  Alcotest.check_raises "n = 0" (Invalid_argument "Zipf.create: n must be >= 1")
    (fun () -> ignore (Zipf.create ~n:0 ~theta:1.0));
  Alcotest.check_raises "negative theta"
    (Invalid_argument "Zipf.create: theta must be >= 0.") (fun () ->
      ignore (Zipf.create ~n:5 ~theta:(-1.)))

let test_sample_key_bounds () =
  let z = Zipf.create ~n:100 ~theta:1.0 in
  let rng = Rng.create 19 in
  for _ = 1 to 5_000 do
    let k = Zipf.sample_key z rng ~lo:10 ~hi:99 in
    Alcotest.(check bool) "key in [10,99]" true (k >= 10 && k <= 99)
  done

let test_sample_key_deterministic_scatter () =
  (* The same rank always lands on the same key. *)
  let z = Zipf.create ~n:1 ~theta:1.0 in
  let rng = Rng.create 23 in
  let k0 = Zipf.sample_key z rng ~lo:0 ~hi:1_000_000 in
  for _ = 1 to 50 do
    Alcotest.(check int) "stable mapping" k0 (Zipf.sample_key z rng ~lo:0 ~hi:1_000_000)
  done

let suite =
  [
    Alcotest.test_case "rank bounds" `Quick test_rank_bounds;
    Alcotest.test_case "rank 1 most frequent" `Quick test_rank_one_most_frequent;
    Alcotest.test_case "skew ratio" `Quick test_skew_ratio;
    Alcotest.test_case "theta 0 is uniform" `Quick test_theta_zero_uniform;
    Alcotest.test_case "single rank" `Quick test_single_rank;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "sample_key bounds" `Quick test_sample_key_bounds;
    Alcotest.test_case "sample_key scatter stable" `Quick test_sample_key_deterministic_scatter;
  ]
