(* Network registry: registration, repositioning, deferred
   notifications, random peer selection. *)

module Net = Baton.Net
module Node = Baton.Node
module Position = Baton.Position
module Range = Baton.Range
module Bus = Baton_sim.Bus

let domain = Range.make ~lo:0 ~hi:1000

let make_net () = Net.create ~seed:5 ~domain ()

let make_node net pos =
  Node.create ~id:(Net.fresh_id net) ~pos ~range:domain

let test_bootstrap_and_root () =
  let net = make_net () in
  Alcotest.(check int) "empty" 0 (Net.size net);
  Alcotest.(check bool) "no root" true (Net.root net = None);
  let root = Net.bootstrap net in
  Alcotest.(check int) "one" 1 (Net.size net);
  Alcotest.(check bool) "root found" true
    (match Net.root net with Some r -> r.Node.id = root.Node.id | None -> false);
  Alcotest.check_raises "second bootstrap" (Invalid_argument "Net.bootstrap: network is not empty")
    (fun () -> ignore (Net.bootstrap net))

let test_register_conflicts () =
  let net = make_net () in
  let root = Net.bootstrap net in
  let dup_pos = Node.create ~id:(Net.fresh_id net) ~pos:Position.root ~range:domain in
  Alcotest.check_raises "position occupied" (Invalid_argument "Net.register: position occupied")
    (fun () -> Net.register net dup_pos);
  let dup_id = Node.create ~id:root.Node.id ~pos:(Position.left_child Position.root) ~range:domain in
  Alcotest.check_raises "id taken" (Invalid_argument "Net.register: peer id already registered")
    (fun () -> Net.register net dup_id)

let test_reposition () =
  let net = make_net () in
  let root = Net.bootstrap net in
  let child_pos = Position.left_child Position.root in
  let child = make_node net child_pos in
  Net.register net child;
  Alcotest.check_raises "target occupied" (Invalid_argument "Net.reposition: position occupied")
    (fun () -> Net.reposition net child Position.root);
  let new_pos = Position.right_child Position.root in
  Net.reposition net child new_pos;
  Alcotest.(check bool) "pos updated" true (Position.equal child.Node.pos new_pos);
  Alcotest.(check bool) "old slot empty" true (Net.peer_at net child_pos = None);
  Alcotest.(check bool) "new slot filled" true
    (match Net.peer_at net new_pos with Some n -> n.Node.id = child.Node.id | None -> false);
  ignore root

let test_unregister_updates_size_and_ids () =
  let net = make_net () in
  let root = Net.bootstrap net in
  let child = make_node net (Position.left_child Position.root) in
  Net.register net child;
  Alcotest.(check int) "two" 2 (Net.size net);
  Net.unregister net child;
  Alcotest.(check int) "one" 1 (Net.size net);
  Alcotest.(check bool) "gone from ids" true
    (not (Array.exists (( = ) child.Node.id) (Net.live_ids net)));
  Alcotest.(check bool) "lookup fails" true (Net.peer_opt net child.Node.id = None);
  ignore root

let test_random_peer_skips_failed () =
  let net = make_net () in
  let root = Net.bootstrap net in
  let child = make_node net (Position.left_child Position.root) in
  Net.register net child;
  Bus.fail (Net.bus net) root.Node.id;
  for _ = 1 to 50 do
    Alcotest.(check int) "only live peer drawn" child.Node.id (Net.random_peer net).Node.id
  done;
  Bus.fail (Net.bus net) child.Node.id;
  Alcotest.check_raises "all failed" (Invalid_argument "Net.random_peer: no live peer")
    (fun () -> ignore (Net.random_peer net))

let test_send_counts_and_resolves () =
  let net = make_net () in
  let root = Net.bootstrap net in
  let child = make_node net (Position.left_child Position.root) in
  Net.register net child;
  let m = Net.metrics net in
  let before = Baton_sim.Metrics.total m in
  let got = Net.send net ~src:child.Node.id ~dst:root.Node.id ~kind:"t" in
  Alcotest.(check int) "resolved" root.Node.id got.Node.id;
  Alcotest.(check int) "counted" (before + 1) (Baton_sim.Metrics.total m)

let test_defer_queues_and_flushes () =
  let net = make_net () in
  let root = Net.bootstrap net in
  let child = make_node net (Position.left_child Position.root) in
  Net.register net child;
  let hits = ref 0 in
  Net.set_defer net true;
  Alcotest.(check bool) "deferring" true (Net.deferring net);
  Net.notify net ~src:child.Node.id ~dst:root.Node.id ~kind:"t" (fun _ -> incr hits);
  Alcotest.(check int) "not yet applied" 0 !hits;
  Net.flush_deferred net;
  Alcotest.(check int) "applied at flush" 1 !hits;
  Alcotest.(check bool) "defer cleared" false (Net.deferring net)

let test_notify_expect_pos_guard () =
  let net = make_net () in
  let root = Net.bootstrap net in
  let child = make_node net (Position.left_child Position.root) in
  Net.register net child;
  let hits = ref 0 in
  Net.notify net ~expect_pos:Position.root ~src:child.Node.id ~dst:root.Node.id
    ~kind:"t" (fun _ -> incr hits);
  Alcotest.(check int) "matching role applies" 1 !hits;
  Net.notify net
    ~expect_pos:(Position.right_child Position.root)
    ~src:child.Node.id ~dst:root.Node.id ~kind:"t" (fun _ -> incr hits);
  Alcotest.(check int) "changed role ignored" 1 !hits

let test_notify_to_vanished_peer_still_counts () =
  let net = make_net () in
  let root = Net.bootstrap net in
  let m = Net.metrics net in
  let before = Baton_sim.Metrics.total m in
  Net.notify net ~src:root.Node.id ~dst:9999 ~kind:"t" (fun _ -> Alcotest.fail "must not apply");
  Alcotest.(check int) "message still paid" (before + 1) (Baton_sim.Metrics.total m)

let test_shift_histogram () =
  let net = make_net () in
  Net.record_shift net 3;
  Net.record_shift net 3;
  Net.record_shift net 7;
  let h = Net.shift_histogram net in
  Alcotest.(check int) "bucket 3" 2 (Baton_util.Histogram.count h 3);
  Alcotest.(check int) "total" 3 (Baton_util.Histogram.total h)

let suite =
  [
    Alcotest.test_case "bootstrap/root" `Quick test_bootstrap_and_root;
    Alcotest.test_case "register conflicts" `Quick test_register_conflicts;
    Alcotest.test_case "reposition" `Quick test_reposition;
    Alcotest.test_case "unregister" `Quick test_unregister_updates_size_and_ids;
    Alcotest.test_case "random peer skips failed" `Quick test_random_peer_skips_failed;
    Alcotest.test_case "send counts/resolves" `Quick test_send_counts_and_resolves;
    Alcotest.test_case "defer/flush" `Quick test_defer_queues_and_flushes;
    Alcotest.test_case "expect_pos guard" `Quick test_notify_expect_pos_guard;
    Alcotest.test_case "vanished peer send counted" `Quick test_notify_to_vanished_peer_still_counts;
    Alcotest.test_case "shift histogram" `Quick test_shift_histogram;
  ]
