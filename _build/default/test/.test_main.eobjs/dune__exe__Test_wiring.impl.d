test/test_wiring.ml: Alcotest Baton List Option
