test/test_resilience.ml: Alcotest Array Baton Baton_sim Baton_util Filename List Option Sys
