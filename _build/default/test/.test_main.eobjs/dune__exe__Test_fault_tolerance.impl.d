test/test_fault_tolerance.ml: Alcotest Array Baton Baton_sim Baton_util List Printf
