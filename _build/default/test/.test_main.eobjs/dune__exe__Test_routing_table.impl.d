test/test_routing_table.ml: Alcotest Baton List
