test/test_histogram.ml: Alcotest Baton_util Float List
