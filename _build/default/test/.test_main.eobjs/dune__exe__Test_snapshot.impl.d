test/test_snapshot.ml: Alcotest Array Baton Baton_util Filename Sys
