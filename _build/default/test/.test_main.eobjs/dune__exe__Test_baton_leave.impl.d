test/test_baton_leave.ml: Alcotest Baton Baton_util List Option Printf
