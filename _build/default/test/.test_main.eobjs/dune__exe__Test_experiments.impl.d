test/test_experiments.ml: Alcotest Baton_experiments List String
