test/test_experiments.ml: Alcotest Baton_experiments Filename List String
