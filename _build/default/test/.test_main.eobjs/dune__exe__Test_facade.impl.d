test/test_facade.ml: Alcotest Array Baton Baton_sim List
