test/test_baton_failure.ml: Alcotest Array Baton Baton_sim Baton_util List Option
