test/test_baton_restructure.ml: Alcotest Baton Baton_util List Option
