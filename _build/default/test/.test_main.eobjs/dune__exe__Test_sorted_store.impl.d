test/test_sorted_store.ml: Alcotest Baton_util Gen List QCheck2 QCheck_alcotest Test
