test/test_dyn_array.ml: Alcotest Baton_util Gen List QCheck2 QCheck_alcotest Test
