test/test_ordered_multiset.ml: Alcotest Baton_util Fun Gen List QCheck2 QCheck_alcotest Test
