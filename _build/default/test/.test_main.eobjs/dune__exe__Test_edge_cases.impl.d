test/test_edge_cases.ml: Alcotest Array Baton Baton_util Chord List Multiway String
