test/test_range.ml: Alcotest Baton
