test/test_overlay.ml: Alcotest Array Baton_util List Option P2p_overlay
