test/test_baton_search.ml: Alcotest Array Baton Baton_util Gen List Printf QCheck2 QCheck_alcotest Test
