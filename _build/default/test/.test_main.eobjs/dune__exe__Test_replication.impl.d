test/test_replication.ml: Alcotest Array Baton Baton_util List Option
