test/test_position.ml: Alcotest Baton Float Gen List QCheck2 QCheck_alcotest Test
