test/test_baton_balance.ml: Alcotest Baton Baton_util Baton_workload List Option Printf
