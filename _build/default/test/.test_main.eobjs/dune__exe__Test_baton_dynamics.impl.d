test/test_baton_dynamics.ml: Alcotest Array Baton Baton_sim Baton_util Printf
