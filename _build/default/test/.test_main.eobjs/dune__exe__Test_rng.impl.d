test/test_rng.ml: Alcotest Array Baton_util Fun List
