test/test_multiway.ml: Alcotest Array Baton_util Gen List Multiway Printf QCheck2 QCheck_alcotest Test
