test/test_zipf.ml: Alcotest Array Baton_util Printf
