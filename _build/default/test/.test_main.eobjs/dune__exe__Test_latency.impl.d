test/test_latency.ml: Alcotest Baton_sim Float
