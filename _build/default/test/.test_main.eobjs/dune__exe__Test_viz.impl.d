test/test_viz.ml: Alcotest Baton List Str String
