test/test_node.ml: Alcotest Baton List Option
