test/test_baton_update.ml: Alcotest Array Baton Baton_sim Baton_util List Printf
