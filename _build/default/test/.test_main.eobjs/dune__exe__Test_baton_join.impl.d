test/test_baton_join.ml: Alcotest Baton Baton_util List Option Printf
