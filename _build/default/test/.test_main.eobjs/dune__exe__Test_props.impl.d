test/test_props.ml: Alcotest Baton Baton_util Baton_workload Gen List Printf QCheck2 QCheck_alcotest String Test
