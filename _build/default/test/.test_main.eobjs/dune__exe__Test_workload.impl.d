test/test_workload.ml: Alcotest Array Baton_util Baton_workload Hashtbl List Option Printf
