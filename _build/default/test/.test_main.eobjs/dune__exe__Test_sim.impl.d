test/test_sim.ml: Alcotest Baton_sim Gen List QCheck2 QCheck_alcotest Test
