test/test_stats.ml: Alcotest Array Baton_util Float String
