test/test_net.ml: Alcotest Array Baton Baton_sim Baton_util
