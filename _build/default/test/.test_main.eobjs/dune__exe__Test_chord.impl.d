test/test_chord.ml: Alcotest Array Baton_util Chord Gen Printf QCheck2 QCheck_alcotest Test
