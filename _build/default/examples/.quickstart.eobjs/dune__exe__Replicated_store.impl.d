examples/replicated_store.ml: Array Baton Baton_util List Printf
