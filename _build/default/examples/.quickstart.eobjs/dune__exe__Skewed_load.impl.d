examples/skewed_load.ml: Array Baton Baton_util Baton_workload List Printf String
