examples/skewed_load.mli:
