examples/quickstart.mli:
