examples/range_index.mli:
