examples/range_index.ml: Array Baton Baton_sim Baton_util List Printf
