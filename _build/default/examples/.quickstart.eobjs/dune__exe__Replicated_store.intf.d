examples/replicated_store.mli:
