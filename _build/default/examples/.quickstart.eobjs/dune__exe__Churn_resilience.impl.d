examples/churn_resilience.ml: Array Baton Baton_sim Baton_util List Printf
