examples/quickstart.ml: Baton List Printf String
