(* Quickstart: the smallest useful BATON program.

   Build a network, store some keys, run an exact query and a range
   query, and look at what it cost in messages — the paper's metric.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A 50-peer network over the default key domain [1, 10^9). Each join
     runs the paper's Algorithm 1 against a random existing peer. *)
  let net = Baton.Network.build ~seed:42 50 in
  Printf.printf "network: %d peers, tree height %d\n"
    (Baton.Network.size net) (Baton.Network.height net);

  (* Store a few keys. Each insert routes from a random peer to the
     node whose range covers the key (O(log N) messages). *)
  let keys = [ 17; 42_000_000; 123_456_789; 500_000_000; 999_999_000 ] in
  List.iter (Baton.Network.insert net) keys;

  (* Exact-match query. *)
  let before = Baton.Network.messages net in
  let found = Baton.Network.lookup net 123_456_789 in
  Printf.printf "lookup 123456789 -> %b (%d messages)\n" found
    (Baton.Network.messages net - before);

  (* Range query: every key in [1, 200_000_000]. DHTs cannot do this;
     BATON's in-order adjacency makes it O(log N + answer). *)
  let before = Baton.Network.messages net in
  let answer = Baton.Network.range_query net ~lo:1 ~hi:200_000_000 in
  Printf.printf "range [1, 2e8] -> %s (%d messages)\n"
    (String.concat ", " (List.map string_of_int answer))
    (Baton.Network.messages net - before);

  (* Peers can come and go; the tree stays balanced. *)
  let id = Baton.Network.join net in
  Baton.Network.leave net id;
  Baton.Check.all net;
  Printf.printf "after churn: %d peers, all invariants hold\n"
    (Baton.Network.size net)
