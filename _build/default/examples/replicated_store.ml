(* Replicated key storage — the extension that closes the paper's
   acknowledged gap: "the data stored at a crashed peer is lost"
   (BATON does not replicate).

   Each peer write-through-replicates its keys to its in-order
   adjacent. When peers crash, repair reassigns their ranges (the
   paper's protocol) and the replica holders re-insert the lost keys
   (the extension). The example runs the same crash wave twice and
   compares survival.

   Run with: dune exec examples/replicated_store.exe *)

module Net = Baton.Net
module Node = Baton.Node
module Rng = Baton_util.Rng
module Replication = Baton.Replication

let crash_wave ~replicate =
  let net = Baton.Network.build ~seed:99 120 in
  let repl = Replication.create () in
  if replicate then ignore (Replication.sync_all repl net);
  (* Write 1500 keys, with write-through replication when enabled. *)
  let rng = Rng.create 3 in
  let keys = Array.init 1_500 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  let before = Baton.Network.messages net in
  Array.iter
    (fun k ->
      let st = Baton.Update.insert net ~from:(Net.random_peer net) k in
      if replicate then
        Replication.on_insert repl net ~owner:(Net.peer net st.Baton.Update.node) k)
    keys;
  let write_cost =
    float_of_int (Baton.Network.messages net - before) /. float_of_int (Array.length keys)
  in
  (* Crash 12 random peers, repair, recover replicas. *)
  let victims =
    let candidates =
      Array.of_list
        (List.filter (fun (n : Node.t) -> not (Node.is_root n)) (Net.peers net))
    in
    Rng.shuffle rng candidates;
    Array.to_list (Array.sub candidates 0 12)
  in
  List.iter (fun v -> Baton.Network.crash net v.Node.id) victims;
  (* Repair every crash first, then recover replicas: a holder that
     crashed in the same wave must be replaced before its neighbours'
     replicas can be served (a holder that was itself lost takes its
     replica with it — the price of replication factor 2). *)
  List.iter (fun (v : Node.t) -> Baton.Network.repair net v.Node.id) victims;
  if replicate then
    List.iter
      (fun (v : Node.t) -> ignore (Replication.recover repl net ~dead:v.Node.id))
      victims;
  let survivors = Array.to_list keys |> List.filter (Baton.Network.lookup net) in
  Baton.Check.all net;
  (List.length survivors, Array.length keys, write_cost)

let () =
  let s0, total, c0 = crash_wave ~replicate:false in
  let s1, _, c1 = crash_wave ~replicate:true in
  Printf.printf "12 of 120 peers crash while storing %d keys:\n\n" total;
  Printf.printf "  paper protocol (no replication): %4d/%d keys survive, %.2f msgs/write\n"
    s0 total c0;
  Printf.printf "  + adjacent replication:          %4d/%d keys survive, %.2f msgs/write\n"
    s1 total c1;
  Printf.printf "\nthe extra %.2f messages per write buy back the crashed peers' data\n"
    (c1 -. c0)
