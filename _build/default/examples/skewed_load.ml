(* Skewed data and load balancing — Section IV-D and Figure 7.

   The same Zipf(1.0) stream is ingested twice: once with load
   balancing off and once with the paper's two-tier policy on
   (adjacent balancing for internal nodes, recruit-a-light-leaf with
   forced restructuring for leaves). The example prints the load
   distributions side by side and the shift-size histogram of the
   forced restructurings (the paper's Figure 8(h) view).

   Run with: dune exec examples/skewed_load.exe *)

module Net = Baton.Net
module Node = Baton.Node
module Rng = Baton_util.Rng
module Stats = Baton_util.Stats
module Histogram = Baton_util.Histogram
module Datagen = Baton_workload.Datagen

let ingest ~balance =
  let net = Baton.Network.build ~seed:33 150 in
  let gen = Datagen.zipf (Rng.create 77) in
  let cfg = Baton.Balance.default_config ~capacity:120 in
  for _ = 1 to 12_000 do
    let st = Baton.Update.insert net ~from:(Net.random_peer net) (Datagen.next gen) in
    if balance then
      ignore (Baton.Balance.maybe_balance net cfg (Net.peer net st.Baton.Update.node))
  done;
  net

let describe label net =
  let loads =
    List.map (fun n -> float_of_int (Node.load n)) (Net.peers net) |> Array.of_list
  in
  Printf.printf "%-18s %s\n" label (Stats.summary loads);
  loads

let bucket_histogram loads =
  (* Ten buckets of 40 keys for a quick visual distribution. *)
  let counts = Array.make 10 0 in
  Array.iter
    (fun l ->
      let b = min 9 (int_of_float l / 40) in
      counts.(b) <- counts.(b) + 1)
    loads;
  Array.iteri
    (fun i c ->
      Printf.printf "  %3d-%3d keys | %s %d\n" (i * 40)
        (((i + 1) * 40) - 1)
        (String.make (min 60 c) '#')
        c)
    counts

let () =
  print_endline "ingesting 12000 Zipf(1.0) keys into 150 peers...";
  let unbalanced = ingest ~balance:false in
  let balanced = ingest ~balance:true in
  let lu = describe "without balancing" unbalanced in
  let lb = describe "with balancing" balanced in
  print_endline "\nload distribution without balancing:";
  bucket_histogram lu;
  print_endline "\nload distribution with balancing:";
  bucket_histogram lb;

  (* The forced restructurings behind the balanced run: how many nodes
     each recruitment displaced (paper Figure 8(h): exponentially
     decreasing). *)
  let shifts = Net.shift_histogram balanced in
  Printf.printf "\nrestructuring shifts (%d total):\n" (Histogram.total shifts);
  List.iter
    (fun (size, count) -> Printf.printf "  %2d nodes moved: %d times\n" size count)
    (Histogram.bins shifts);
  Baton.Check.all balanced;
  Baton.Check.all unbalanced;
  print_endline "\nall invariants hold in both networks"
