(* A distributed time-series index — the workload the paper's
   introduction motivates: range queries over ordered data, which
   hash-based overlays cannot answer without a broadcast.

   A fleet of peers indexes events keyed by timestamp (seconds in a
   simulated month). Dashboards ask window queries ("everything between
   t1 and t2"); the example shows both the answers and the message
   economics, and contrasts them with what a DHT would have to pay.

   Run with: dune exec examples/range_index.exe *)

module Net = Baton.Net
module Metrics = Baton_sim.Metrics
module Rng = Baton_util.Rng

let seconds_per_day = 86_400
let days = 30

let () =
  let peers = 200 in
  let net =
    Baton.Network.create ~seed:7
      ~domain:(Baton.Range.make ~lo:0 ~hi:(days * seconds_per_day))
      ()
  in
  ignore (Baton.Join.join_new_network net);
  for _ = 2 to peers do
    ignore (Baton.Join.join net ~via:(Net.random_peer net))
  done;
  Printf.printf "index fleet: %d peers over a %d-day window\n" peers days;

  (* Ingest: events cluster in business hours — a skewed, ordered
     stream. Load balancing keeps peers near their capacity. *)
  let rng = Rng.create 11 in
  let cfg = Baton.Balance.default_config ~capacity:120 in
  let event_time () =
    let day = Rng.int rng days in
    let hour = 8 + Rng.int rng 10 in
    (* 8:00 - 18:00 *)
    let sec = Rng.int rng 3600 in
    (day * seconds_per_day) + (hour * 3600) + sec
  in
  let events = Array.init 10_000 (fun _ -> event_time ()) in
  let m = Net.metrics net in
  let cp = Metrics.checkpoint m in
  Array.iter
    (fun t ->
      let st = Baton.Update.insert net ~from:(Net.random_peer net) t in
      ignore (Baton.Balance.maybe_balance net cfg (Net.peer net st.Baton.Update.node)))
    events;
  Printf.printf "ingested %d events, %.2f messages/event (incl. balancing)\n"
    (Array.length events)
    (float_of_int (Metrics.since m cp) /. float_of_int (Array.length events));
  let loads = List.map Baton.Node.load (Net.peers net) in
  Printf.printf "per-peer load: max %d, capacity %d\n"
    (List.fold_left max 0 loads) cfg.Baton.Balance.capacity;

  (* Window queries: "events on day 12 between 9:00 and 9:30". *)
  let window day h0 m0 h1 m1 =
    let lo = (day * seconds_per_day) + (h0 * 3600) + (m0 * 60) in
    let hi = (day * seconds_per_day) + (h1 * 3600) + (m1 * 60) in
    let cp = Metrics.checkpoint m in
    let r = Baton.Search.range net ~from:(Net.random_peer net) ~lo ~hi in
    Printf.printf
      "  day %2d %02d:%02d-%02d:%02d -> %4d events from %2d peers, %2d messages\n"
      day h0 m0 h1 m1
      (List.length r.Baton.Search.keys)
      r.Baton.Search.nodes_visited (Metrics.since m cp)
  in
  print_endline "window queries:";
  window 12 9 0 9 30;
  window 3 8 0 18 0;
  window 27 12 0 13 0;

  (* The DHT alternative would hash timestamps and lose the ordering:
     answering any window means asking every peer. *)
  Printf.printf
    "a DHT would broadcast to all %d peers per window; BATON pays O(log N + answer)\n"
    peers;
  Baton.Check.all net;
  print_endline "all invariants hold"
