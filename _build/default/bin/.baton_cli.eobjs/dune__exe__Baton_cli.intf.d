bin/baton_cli.mli:
