bin/baton_cli.ml: Arg Array Baton Baton_sim Baton_util Baton_workload Cmd Cmdliner Hashtbl List Option P2p_overlay Printf Sys Term
