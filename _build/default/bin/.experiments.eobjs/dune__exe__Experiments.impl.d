bin/experiments.ml: Arg Baton_experiments Cmd Cmdliner List Printf String Term
