bin/experiments.mli:
