(* Causal message tracing: per-hop context propagation, critical-path
   extraction, and the invariant that the collector is a pure observer
   of the paper's message metric. *)

module Bus = Baton_sim.Bus
module Metrics = Baton_sim.Metrics
module Trace = Baton_obs.Trace
module Json = Baton_obs.Json
module Rng = Baton_util.Rng
module Runtime = Baton_runtime.Runtime
module N = Baton.Network
module Net = Baton.Net
module Search = Baton.Search

let build ~seed n =
  let net = N.build ~seed n in
  let rng = Rng.create (seed + 1) in
  for _ = 1 to 5 * n do
    N.insert net (Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
  done;
  net

(* A synchronous lookup is one serial conversation: each hop is sent
   only after the previous one delivered, so the causal tree must be a
   single chain and the critical path must equal the message count. *)
let test_serial_lookup_is_a_chain () =
  let net = build ~seed:17 100 in
  let tr = Trace.create () in
  Net.set_tracer net (Some tr);
  let from = Net.random_peer net in
  ignore (Search.lookup net ~from 123_456_789);
  Net.set_tracer net None;
  let ep = Option.get (Trace.latest tr) in
  let hops = Trace.hops ep in
  Alcotest.(check bool) "multi-hop route" true (List.length hops > 1);
  (* Every hop chains under the previous hop's span. *)
  let rec chained prev = function
    | [] -> true
    | (h : Trace.hop) :: rest -> h.ctx.parent = prev && chained h.ctx.span rest
  in
  Alcotest.(check bool) "hops form one causal chain" true (chained (-1) hops);
  let a = Trace.analyze ep in
  Alcotest.(check string) "episode op" "exact" a.Trace.a_op;
  Alcotest.(check int) "origin is the querying peer" from.Baton.Node.id
    a.Trace.a_origin;
  Alcotest.(check int) "no losses" 0 a.Trace.timeouts;
  Alcotest.(check int) "critical path = total msgs (serial)" a.Trace.msgs
    a.Trace.crit_hops;
  (* The breakdowns partition the hop set. *)
  let sum l = List.fold_left (fun acc (_, c) -> acc + c) 0 l in
  Alcotest.(check int) "by_link partitions hops" a.Trace.msgs
    (sum a.Trace.by_link);
  Alcotest.(check int) "by_level partitions hops" a.Trace.msgs
    (sum a.Trace.by_level)

(* The acceptance guard behind the whole design: tracing must be
   metrics-neutral. Same seed, tracer on vs. off — byte-identical
   protocol and auxiliary message counts. *)
let workload ~seed ~traced =
  let net = N.build ~seed 150 in
  let tr = Trace.create () in
  if traced then Net.set_tracer net (Some tr);
  let rng = Rng.create (seed + 1) in
  for _ = 1 to 300 do
    N.insert net (Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
  done;
  ignore (Search.exact net ~from:(Net.random_peer net) 123_456);
  ignore (Search.range net ~from:(Net.random_peer net) ~lo:1_000 ~hi:40_000_000);
  ignore (N.join net);
  N.leave net (Net.random_peer net).Baton.Node.id;
  ignore (Search.exact net ~from:(Net.random_peer net) 9_999_999);
  let m = Net.metrics net in
  (Metrics.total m, Metrics.aux_total m)

let test_tracing_is_metrics_neutral () =
  let on = workload ~seed:23 ~traced:true in
  let off = workload ~seed:23 ~traced:false in
  Alcotest.(check (pair int int)) "Metrics.total/aux_total unchanged" off on

(* Under the concurrent runtime the collector's critical path must
   agree with the clock: the longest causal chain's completion instant
   IS the virtual time the runtime charges the operation. *)
let runtime_range ~seed =
  let net = build ~seed 120 in
  let rt = Runtime.create net in
  let tr = Trace.create () in
  Trace.use_engine tr (Runtime.engine rt);
  Net.set_tracer net (Some tr);
  let from = Net.random_peer net in
  Runtime.spawn rt
    (fun () ->
      Baton.Search.range
        ~par:(fun l r -> Runtime.both l r)
        net ~from ~lo:100_000_000 ~hi:160_000_000)
    ~on_done:(function Ok _ -> () | Error e -> raise e);
  Runtime.run rt;
  Net.set_tracer net None;
  (Option.get (Trace.latest tr), Runtime.now rt)

let test_crit_path_equals_runtime_completion () =
  let ep, completion = runtime_range ~seed:42 in
  let a = Trace.analyze ep in
  Alcotest.(check bool) "fan-out happened" true (a.Trace.msgs > 2);
  Alcotest.(check bool) "crit path is a subset of the msgs" true
    (a.Trace.crit_hops <= a.Trace.msgs);
  Alcotest.(check (float 1e-9)) "crit_ms = runtime completion instant"
    completion a.Trace.crit_ms;
  (* The dominant chain's hop count matches the reported length. *)
  match a.Trace.chains with
  | [] -> Alcotest.fail "no chains extracted"
  | c :: _ ->
    Alcotest.(check int) "longest chain = crit_hops" a.Trace.crit_hops
      c.Trace.length

let test_causal_jsonl_deterministic () =
  let ep1, _ = runtime_range ~seed:42 in
  let ep2, _ = runtime_range ~seed:42 in
  let a = Trace.episode_jsonl ep1 and b = Trace.episode_jsonl ep2 in
  Alcotest.(check bool) "non-trivial export" true (String.length a > 200);
  Alcotest.(check string) "same seed, byte-identical JSONL" a b;
  Alcotest.(check string) "render is deterministic too" (Trace.render ep1)
    (Trace.render ep2)

(* Interleaved fibers must not clobber each other's ambient causal
   state: the runtime snapshots a mark at every suspension point. Each
   of the concurrent operations below must come out as its own episode
   whose parent links all stay inside that episode. *)
let test_concurrent_episodes_stay_isolated () =
  let net = build ~seed:5 100 in
  let rt = Runtime.create net in
  let tr = Trace.create () in
  Trace.use_engine tr (Runtime.engine rt);
  Net.set_tracer net (Some tr);
  let keys = [ 111_111_111; 555_555_555; 888_888_888 ] in
  List.iter
    (fun key ->
      let from = Net.random_peer net in
      Runtime.spawn rt
        (fun () -> ignore (Search.exact net ~from key))
        ~on_done:(function Ok _ -> () | Error e -> raise e))
    keys;
  Runtime.run rt;
  Net.set_tracer net None;
  let eps = Trace.episodes tr in
  Alcotest.(check int) "one episode per operation" (List.length keys)
    (List.length eps);
  List.iter
    (fun ep ->
      let hops = Trace.hops ep in
      let spans =
        List.map (fun (h : Trace.hop) -> h.Trace.ctx.span) hops
      in
      List.iter
        (fun (h : Trace.hop) ->
          Alcotest.(check bool)
            (Printf.sprintf "span %d's parent %d stays in its episode"
               h.Trace.ctx.span h.Trace.ctx.parent)
            true
            (h.Trace.ctx.parent = -1 || List.mem h.Trace.ctx.parent spans))
        hops)
    eps;
  (* Span ids are globally unique: no two episodes share one. *)
  let all_spans =
    List.concat_map
      (fun ep -> List.map (fun (h : Trace.hop) -> h.Trace.ctx.span) (Trace.hops ep))
      eps
  in
  Alcotest.(check int) "span ids never collide"
    (List.length all_spans)
    (List.length (List.sort_uniq compare all_spans))

(* Under message loss a retransmission is a *sibling* of the failed
   attempt — same causal parent, fresh span — not its child: the retry
   was caused by whatever caused the original send. *)
let test_retries_are_siblings () =
  let net = build ~seed:31 80 in
  Bus.set_faults (Net.bus net) ~seed:77 ~drop_rate:0.2 ~transient_rate:0. ();
  let tr = Trace.create () in
  Net.set_tracer net (Some tr);
  let rng = Rng.create 99 in
  for _ = 1 to 30 do
    match Search.lookup net ~from:(Net.random_peer net)
            (Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
    with
    | (_ : Baton.Search.result) -> ()
    | exception _ -> ()
  done;
  Net.set_tracer net None;
  Bus.clear_faults (Net.bus net);
  let lossy =
    List.filter
      (fun ep ->
        List.exists
          (fun (h : Trace.hop) -> h.Trace.outcome <> Trace.Delivered)
          (Trace.hops ep))
      (Trace.episodes tr)
  in
  Alcotest.(check bool) "at least one episode saw a loss" true (lossy <> []);
  List.iter
    (fun ep ->
      let hops = Trace.hops ep in
      let a = Trace.analyze ep in
      let lost =
        List.filter
          (fun (h : Trace.hop) -> h.Trace.outcome <> Trace.Delivered)
          hops
      in
      Alcotest.(check int) "analysis counts every loss" (List.length lost)
        a.Trace.timeouts;
      List.iter
        (fun (l : Trace.hop) ->
          let sibling =
            List.exists
              (fun (h : Trace.hop) ->
                h.Trace.ctx.span <> l.Trace.ctx.span
                && h.Trace.ctx.parent = l.Trace.ctx.parent
                && h.Trace.dst = l.Trace.dst)
              hops
          in
          Alcotest.(check bool)
            (Printf.sprintf "lost span %d has a sibling retry"
               l.Trace.ctx.span)
            true sibling)
        lost)
    lossy

let suite =
  [
    Alcotest.test_case "serial lookup is a chain" `Quick
      test_serial_lookup_is_a_chain;
    Alcotest.test_case "tracing is metrics-neutral" `Quick
      test_tracing_is_metrics_neutral;
    Alcotest.test_case "crit path = runtime completion" `Quick
      test_crit_path_equals_runtime_completion;
    Alcotest.test_case "causal JSONL deterministic" `Quick
      test_causal_jsonl_deterministic;
    Alcotest.test_case "concurrent episodes isolated" `Quick
      test_concurrent_episodes_stay_isolated;
    Alcotest.test_case "retries are siblings" `Quick test_retries_are_siblings;
  ]
