(* The adaptive route cache: LRU mechanics of the pure data structure,
   the cache-off parity guard (the paper's message totals must be
   byte-identical whether the cache code exists or not), warm-hit
   accounting, and a churn property showing shortcuts can go stale but
   never change an answer. *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Search = Baton.Search
module Range = Baton.Range
module Msg = Baton.Msg
module RC = Baton.Route_cache
module Metrics = Baton_sim.Metrics
module Rng = Baton_util.Rng

let entry peer lo hi = { RC.peer; range = Range.make ~lo ~hi; epoch = 0 }

(* --- LRU mechanics ------------------------------------------------- *)

let test_find_promotes_mru () =
  let c = RC.create () in
  ignore (RC.remember c ~capacity:8 (entry 1 0 10));
  ignore (RC.remember c ~capacity:8 (entry 2 10 20));
  ignore (RC.remember c ~capacity:8 (entry 3 20 30));
  (* 1 is coldest; touching it promotes it to the front. *)
  (match RC.find c 5 with
  | Some e -> Alcotest.(check int) "hit peer" 1 e.RC.peer
  | None -> Alcotest.fail "expected a hit");
  (match RC.entries c with
  | e :: _ -> Alcotest.(check int) "promoted" 1 e.RC.peer
  | [] -> Alcotest.fail "cache empty");
  Alcotest.(check bool) "miss outside all ranges" true (RC.find c 99 = None)

let test_capacity_evicts_lru () =
  let c = RC.create () in
  for i = 1 to 5 do
    ignore (RC.remember c ~capacity:8 (entry i (10 * i) (10 * (i + 1))))
  done;
  (* Touch peer 1 so peer 2 becomes the LRU victim. *)
  ignore (RC.find c 15);
  let dropped = RC.remember c ~capacity:5 (entry 6 60 70) in
  Alcotest.(check int) "one displaced" 1 dropped;
  Alcotest.(check int) "bounded" 5 (RC.length c);
  Alcotest.(check bool) "LRU victim gone" true (RC.find c 25 = None);
  Alcotest.(check bool) "touched survivor kept" true (RC.find c 15 <> None)

let test_one_entry_per_peer () =
  let c = RC.create () in
  ignore (RC.remember c ~capacity:8 (entry 7 0 10));
  ignore (RC.remember c ~capacity:8 (entry 7 50 60));
  Alcotest.(check int) "deduped" 1 (RC.length c);
  Alcotest.(check bool) "old range gone" true (RC.find c 5 = None);
  Alcotest.(check bool) "new range live" true (RC.find c 55 <> None)

let test_evict_and_refresh () =
  let c = RC.create () in
  ignore (RC.remember c ~capacity:8 (entry 1 0 10));
  ignore (RC.remember c ~capacity:8 (entry 2 10 20));
  RC.evict_peer c 1;
  Alcotest.(check bool) "evicted" true (RC.find c 5 = None);
  RC.evict_peer c 99 (* absent: no-op *);
  RC.refresh_peer c ~peer:2 ~range:(Range.make ~lo:30 ~hi:40) ~epoch:3;
  (match RC.find c 35 with
  | Some e ->
    Alcotest.(check int) "refreshed peer" 2 e.RC.peer;
    Alcotest.(check int) "refreshed epoch" 3 e.RC.epoch
  | None -> Alcotest.fail "refresh lost the entry");
  RC.clear c;
  Alcotest.(check int) "cleared" 0 (RC.length c)

(* --- Cache-off parity guard ---------------------------------------- *)

(* The same seeded workload on two networks: one never touches the
   cache API, one enables then disables it before the workload. The
   paper-parity totals must be byte-identical — the fig8 experiments
   cannot be perturbed by the feature existing. *)
let workload net seed =
  let rng = Rng.create (seed + 41) in
  let keys = Array.init 300 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (N.insert net) keys;
  for _ = 1 to 200 do
    let k = Rng.pick rng keys in
    ignore (Search.lookup net ~from:(Net.random_peer net) k)
  done;
  for _ = 1 to 20 do
    let lo = Rng.int_in_range rng ~lo:1 ~hi:900_000_000 in
    ignore (Search.range net ~from:(Net.random_peer net) ~lo ~hi:(lo + 20_000_000))
  done;
  ignore (N.join net);
  N.leave net (Rng.pick rng (Net.live_ids net))

let test_disabled_equals_absent () =
  let run touch_cache =
    let net = N.build ~seed:77 60 in
    if touch_cache then begin
      Net.enable_route_cache ~capacity:64 net;
      Net.disable_route_cache net
    end;
    workload net 77;
    let m = Net.metrics net in
    (Metrics.total m, Metrics.aux_total m, Metrics.kinds m)
  in
  let t0, a0, k0 = run false in
  let t1, a1, k1 = run true in
  Alcotest.(check int) "totals byte-identical" t0 t1;
  Alcotest.(check int) "no aux traffic absent" 0 a0;
  Alcotest.(check int) "no aux traffic disabled" 0 a1;
  Alcotest.(check (list (pair string int))) "per-kind identical" k0 k1

(* --- Warm-hit accounting ------------------------------------------- *)

(* A repeated query from the same origin: the first walk learns the
   shortcut, the second is served by one auxiliary probe and zero
   protocol messages — the saving the experiment measures, in
   miniature. *)
let test_warm_hit_costs_only_aux () =
  let net = N.build ~seed:5 80 in
  Net.enable_route_cache ~capacity:64 net;
  let m = Net.metrics net in
  (* Find an origin/key pair that needs a real walk. *)
  let origin = Net.peer net (Net.live_ids net).(0) in
  let key =
    let rng = Rng.create 9 in
    let rec hunt () =
      let k = Rng.int_in_range rng ~lo:1 ~hi:999_999_999 in
      if Range.contains origin.Node.range k then hunt () else k
    in
    hunt ()
  in
  let cold = Search.exact net ~from:origin key in
  Alcotest.(check bool) "cold walk not cached" false cold.Search.cached;
  let cp = Metrics.checkpoint m in
  let warm = Search.exact net ~from:origin key in
  Alcotest.(check bool) "warm hit flagged" true warm.Search.cached;
  Alcotest.(check int) "same answer" cold.Search.node.Node.id warm.Search.node.Node.id;
  Alcotest.(check int) "zero protocol messages" 0 (Metrics.since m cp);
  Alcotest.(check int) "exactly one probe" 1 (Metrics.aux_since m cp);
  Alcotest.(check int) "one hit event" 1 (Metrics.event_since m cp Msg.ev_cache_hit)

let test_disable_clears_peer_caches () =
  let net = N.build ~seed:6 40 in
  Net.enable_route_cache ~capacity:64 net;
  let origin = Net.peer net (Net.live_ids net).(0) in
  ignore (Search.exact net ~from:origin 999_000_000);
  ignore (Search.exact net ~from:origin 1);
  Alcotest.(check bool) "learned something" true
    (List.exists (fun n -> RC.length n.Node.cache > 0) (Net.peers net));
  Net.disable_route_cache net;
  Alcotest.(check bool) "all caches empty" true
    (List.for_all (fun n -> RC.length n.Node.cache = 0) (Net.peers net));
  Alcotest.(check bool) "flag off" false (Net.route_cache_enabled net)

(* --- Churn property ------------------------------------------------ *)

(* Under arbitrary join/leave interleavings with the cache on, stale
   shortcuts may cost extra probes but answers stay oracle-correct:
   every lookup agrees with multiset membership, every complete range
   answer equals the oracle's, and nothing is silently partial. *)
let churn_prop =
  let open QCheck2 in
  Test.make ~name:"stale shortcuts never change answers under churn" ~count:15
    Gen.(pair (int_range 20 60) (int_range 0 1000))
    (fun (n, salt) ->
      let seed = 31_000 + salt in
      let net = N.build ~seed n in
      Net.enable_route_cache ~capacity:32 net;
      let rng = Rng.create (seed + 1) in
      let truth = Hashtbl.create 64 in
      let keys =
        Array.init (8 * n) (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
      in
      Array.iter
        (fun k ->
          N.insert net k;
          Hashtbl.replace truth k
            (1 + Option.value ~default:0 (Hashtbl.find_opt truth k)))
        keys;
      let oracle_range lo hi =
        Hashtbl.fold
          (fun k c acc ->
            if k >= lo && k <= hi then List.init c (fun _ -> k) @ acc else acc)
          truth []
        |> List.sort compare
      in
      let ok = ref true in
      for _ = 1 to 40 do
        (* Churn first, so cached shortcuts go stale mid-stream. *)
        (match Rng.int rng 3 with
        | 0 -> ignore (N.join net)
        | 1 ->
          if Net.size net > 3 then
            N.leave net (Rng.pick rng (Net.live_ids net))
        | _ -> ());
        if Rng.int rng 4 = 0 then begin
          let lo = Rng.int_in_range rng ~lo:1 ~hi:900_000_000 in
          let hi = lo + 30_000_000 in
          let r = Search.range net ~from:(Net.random_peer net) ~lo ~hi in
          if r.Search.complete then begin
            if r.Search.keys <> oracle_range lo hi then ok := false
          end
          (* partial answers must say so; that is the only latitude *)
        end
        else begin
          let k = Rng.pick rng keys in
          let r = Search.lookup net ~from:(Net.random_peer net) k in
          if r.Search.found <> Hashtbl.mem truth k then ok := false
        end
      done;
      Baton.Check.all net;
      !ok)

let suite =
  [
    Alcotest.test_case "find promotes MRU" `Quick test_find_promotes_mru;
    Alcotest.test_case "capacity evicts LRU" `Quick test_capacity_evicts_lru;
    Alcotest.test_case "one entry per peer" `Quick test_one_entry_per_peer;
    Alcotest.test_case "evict and refresh" `Quick test_evict_and_refresh;
    Alcotest.test_case "disabled == absent (fig8 guard)" `Quick
      test_disabled_equals_absent;
    Alcotest.test_case "warm hit costs only aux" `Quick
      test_warm_hit_costs_only_aux;
    Alcotest.test_case "disable clears caches" `Quick
      test_disable_clears_peer_caches;
    QCheck_alcotest.to_alcotest churn_prop;
  ]
