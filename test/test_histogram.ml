(* Integer histogram. *)

module Histogram = Baton_util.Histogram

let test_add_count () =
  let h = Histogram.create () in
  Histogram.add h 3;
  Histogram.add h 3;
  Histogram.add h 5;
  Alcotest.(check int) "count 3" 2 (Histogram.count h 3);
  Alcotest.(check int) "count 5" 1 (Histogram.count h 5);
  Alcotest.(check int) "count absent" 0 (Histogram.count h 4);
  Alcotest.(check int) "total" 3 (Histogram.total h)

let test_add_many () =
  let h = Histogram.create () in
  Histogram.add_many h 2 10;
  Alcotest.(check int) "bulk count" 10 (Histogram.count h 2);
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.add_many: negative count")
    (fun () -> Histogram.add_many h 1 (-1))

let test_bins_sorted () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 9; 1; 5; 1 ];
  Alcotest.(check (list (pair int int))) "sorted bins" [ (1, 2); (5, 1); (9, 1) ]
    (Histogram.bins h)

let test_max_value_mean () =
  let h = Histogram.create () in
  Alcotest.(check (option int)) "empty max" None (Histogram.max_value h);
  Alcotest.(check bool) "empty mean" true (Histogram.mean h = 0.);
  Histogram.add_many h 2 3;
  Histogram.add h 8;
  Alcotest.(check (option int)) "max" (Some 8) (Histogram.max_value h);
  Alcotest.(check bool) "mean" true (Float.abs (Histogram.mean h -. 3.5) < 1e-9)

let test_percentile () =
  let h = Histogram.create () in
  (* 1..100, once each: the nearest-rank percentile is the value itself. *)
  for v = 1 to 100 do
    Histogram.add h v
  done;
  Alcotest.(check int) "p50" 50 (Histogram.percentile h 50.);
  Alcotest.(check int) "p95" 95 (Histogram.percentile h 95.);
  Alcotest.(check int) "p99" 99 (Histogram.percentile h 99.);
  Alcotest.(check int) "p100 = max" 100 (Histogram.percentile h 100.);
  Alcotest.(check int) "p0 clamps to min" 1 (Histogram.percentile h 0.)

let test_percentile_skewed () =
  let h = Histogram.create () in
  Histogram.add_many h 1 99;
  Histogram.add h 1000;
  Alcotest.(check int) "median of skew" 1 (Histogram.percentile h 50.);
  Alcotest.(check int) "p99 stays low" 1 (Histogram.percentile h 99.);
  Alcotest.(check int) "p100 catches outlier" 1000 (Histogram.percentile h 100.)

let test_percentile_errors () =
  let h = Histogram.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.percentile: empty histogram")
    (fun () -> ignore (Histogram.percentile h 50.));
  Histogram.add h 1;
  Alcotest.check_raises "out of range" (Invalid_argument "Histogram.percentile: p outside [0, 100]")
    (fun () -> ignore (Histogram.percentile h 101.))

let suite =
  [
    Alcotest.test_case "add/count" `Quick test_add_count;
    Alcotest.test_case "add_many" `Quick test_add_many;
    Alcotest.test_case "bins sorted" `Quick test_bins_sorted;
    Alcotest.test_case "max/mean" `Quick test_max_value_mean;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile skewed" `Quick test_percentile_skewed;
    Alcotest.test_case "percentile errors" `Quick test_percentile_errors;
  ]
