(* Node join: Algorithm 1, range/content splitting, link wiring. *)

module N = Baton.Network
module Net = Baton.Net
module Join = Baton.Join
module Node = Baton.Node
module Check = Baton.Check
module Position = Baton.Position
module Range = Baton.Range
module Store = Baton_util.Sorted_store

let test_bootstrap () =
  let net = N.create ~seed:1 () in
  let root = Join.join_new_network net in
  Alcotest.(check bool) "root position" true (Position.is_root root.Node.pos);
  Alcotest.(check bool) "owns the domain" true
    (Range.equal root.Node.range (Net.domain net));
  Alcotest.(check int) "size 1" 1 (Net.size net);
  Check.all net

let test_second_join_becomes_left_child () =
  let net = N.create ~seed:1 () in
  let root = Join.join_new_network net in
  let stats = Join.join net ~via:root in
  Alcotest.(check int) "accepted by root" root.Node.id stats.Join.acceptor;
  let y = Net.peer net stats.Join.new_peer in
  Alcotest.(check bool) "left child slot" true
    (Position.equal y.Node.pos (Position.left_child Position.root));
  (* The left child takes the lower half; ranges tile. *)
  Alcotest.(check bool) "y below root" true
    (Range.touches_left y.Node.range root.Node.range);
  Check.all net

let test_invariants_during_growth () =
  let net = N.create ~seed:3 () in
  ignore (Join.join_new_network net);
  for i = 2 to 80 do
    ignore (Join.join net ~via:(Net.random_peer net));
    Alcotest.(check int) "size grows" i (Net.size net);
    Check.all net
  done

let test_join_search_cost_stays_low () =
  (* Paper Fig 8(a): the join-search cost is far below the tree height
     and barely grows with N. *)
  let net = N.build ~seed:5 300 in
  let costs = ref [] in
  for _ = 1 to 30 do
    let s = Join.join net ~via:(Net.random_peer net) in
    costs := float_of_int s.Join.search_msgs :: !costs
  done;
  let mean = List.fold_left ( +. ) 0. !costs /. 30. in
  Alcotest.(check bool) "mean below height" true (mean < float_of_int (Check.height net))

let test_join_update_cost_bound () =
  (* Paper Section III-A: < 6 log N messages to update routing tables. *)
  let net = N.build ~seed:7 200 in
  for _ = 1 to 30 do
    let s = Join.join net ~via:(Net.random_peer net) in
    let n = float_of_int (Net.size net) in
    let bound = 6. *. (log n /. log 2.) +. 8. in
    Alcotest.(check bool)
      (Printf.sprintf "%d <= %.0f" s.Join.update_msgs bound)
      true
      (float_of_int s.Join.update_msgs <= bound)
  done

let test_content_split_on_join () =
  let net = N.create ~seed:9 () in
  let root = Join.join_new_network net in
  (* Preload the root with keys, then join: the child takes about half. *)
  for k = 1 to 100 do
    Store.insert root.Node.store (k * 1_000_000)
  done;
  let stats = Join.join net ~via:root in
  let y = Net.peer net stats.Join.new_peer in
  Alcotest.(check int) "child got half" 50 (Node.load y);
  Alcotest.(check int) "acceptor kept half" 50 (Node.load root);
  Check.all net;
  (* All child keys are below all acceptor keys (left child case). *)
  let max_child = Option.get (Store.max_key y.Node.store) in
  let min_root = Option.get (Store.min_key root.Node.store) in
  Alcotest.(check bool) "split ordered" true (max_child < min_root)

let test_adjacent_links_after_joins () =
  let net = N.build ~seed:11 50 in
  (* Check.links verifies adjacents; also verify the in-order walk
     matches the chain of right-adjacent links. *)
  let nodes = Check.in_order_nodes net in
  let rec chain = function
    | (a : Node.t) :: (b : Node.t) :: rest ->
      (match Node.adjacent a `Right with
      | Some link -> Alcotest.(check int) "right adjacent" b.Node.id link.Baton.Link.peer
      | None -> Alcotest.fail "missing right adjacent");
      (match Node.adjacent b `Left with
      | Some link -> Alcotest.(check int) "left adjacent" a.Node.id link.Baton.Link.peer
      | None -> Alcotest.fail "missing left adjacent");
      chain (b :: rest)
    | [ last ] ->
      Alcotest.(check bool) "rightmost has no successor" true
        (Node.adjacent last `Right = None)
    | [] -> ()
  in
  chain nodes

let test_acceptor_has_full_tables () =
  let net = N.create ~seed:13 () in
  ignore (Join.join_new_network net);
  for _ = 2 to 60 do
    let acceptor, _ = Join.find_join_node net ~via:(Net.random_peer net) in
    Alcotest.(check bool) "tables full at acceptor" true (Node.tables_full acceptor);
    Alcotest.(check bool) "has spare slot" true
      (Option.is_none (Node.child acceptor `Left)
      || Option.is_none (Node.child acceptor `Right));
    ignore (Join.join net ~via:(Net.random_peer net))
  done

let test_deterministic_build () =
  let a = N.build ~seed:17 100 and b = N.build ~seed:17 100 in
  Alcotest.(check int) "same message count" (N.messages a) (N.messages b);
  Alcotest.(check int) "same height" (N.height a) (N.height b)

let suite =
  [
    Alcotest.test_case "bootstrap" `Quick test_bootstrap;
    Alcotest.test_case "second join" `Quick test_second_join_becomes_left_child;
    Alcotest.test_case "invariants during growth" `Quick test_invariants_during_growth;
    Alcotest.test_case "join search cost low" `Quick test_join_search_cost_stays_low;
    Alcotest.test_case "join update cost bound" `Quick test_join_update_cost_bound;
    Alcotest.test_case "content split" `Quick test_content_split_on_join;
    Alcotest.test_case "adjacent chain" `Quick test_adjacent_links_after_joins;
    Alcotest.test_case "acceptor premise" `Quick test_acceptor_has_full_tables;
    Alcotest.test_case "deterministic build" `Quick test_deterministic_build;
  ]
