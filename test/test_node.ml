(* Node state helpers and the Check diagnostics themselves. *)

module Node = Baton.Node
module Link = Baton.Link
module Position = Baton.Position
module Range = Baton.Range
module Routing_table = Baton.Routing_table
module N = Baton.Network
module Net = Baton.Net
module Check = Baton.Check

let make_node ?(id = 1) ?(level = 2) ?(number = 2) () =
  Node.create ~id
    ~pos:(Position.make ~level ~number)
    ~range:(Range.make ~lo:0 ~hi:100)

let test_fresh_node () =
  let n = make_node () in
  Alcotest.(check bool) "leaf" true (Node.is_leaf n);
  Alcotest.(check bool) "not root" false (Node.is_root n);
  Alcotest.(check int) "level" 2 (Node.level n);
  Alcotest.(check int) "load" 0 (Node.load n);
  Alcotest.(check bool) "empty tables are not full at (2,2)" false (Node.tables_full n)

let test_info_snapshot () =
  let n = make_node () in
  let i = Node.info n in
  Alcotest.(check int) "peer" 1 i.Link.peer;
  Alcotest.(check bool) "no children flags" true
    ((not i.Link.has_left_child) && not i.Link.has_right_child);
  Node.set_child n `Left (Some i);
  let i2 = Node.info n in
  Alcotest.(check bool) "left flag tracks state" true i2.Link.has_left_child;
  Alcotest.(check bool) "spare slot helper" true (Link.has_spare_child_slot i2);
  Node.set_child n `Right (Some i);
  Alcotest.(check bool) "both children" true (Link.has_both_children (Node.info n))

let test_accessors () =
  let n = make_node () in
  let other = Node.info (make_node ~id:2 ~level:2 ~number:1 ()) in
  Node.set_adjacent n `Left (Some other);
  Alcotest.(check bool) "adjacent set" true (Node.adjacent n `Left = Some other);
  Alcotest.(check bool) "other side empty" true (Node.adjacent n `Right = None);
  Alcotest.(check int) "left table side size" 1 (Routing_table.size (Node.table n `Left))

(* The uniform kind-addressed slot store: every kind round-trips
   through [set_link]/[link] independently — setting one slot never
   aliases another — and the per-kind fold of [drop_links_for_peer]
   clears exactly the matching slots. *)
let test_link_roundtrip_every_kind () =
  let n = make_node () in
  List.iter
    (fun k -> Alcotest.(check bool) "fresh slot empty" true (Node.link n k = None))
    Link.all_kinds;
  let infos =
    List.mapi
      (fun i k -> (k, Node.info (make_node ~id:(10 + i) ~level:3 ~number:(1 + i) ())))
      Link.all_kinds
  in
  List.iter (fun (k, i) -> Node.set_link n k (Some i)) infos;
  List.iter
    (fun (k, i) ->
      let what = Format.asprintf "%a round-trips" Link.pp_kind k in
      Alcotest.(check bool) what true (Node.link n k = Some i))
    infos;
  (* The named accessors are views of the same slots. *)
  Alcotest.(check bool) "parent view" true
    (Node.parent n = Node.link n Link.Parent);
  Alcotest.(check bool) "child view" true
    (Node.child n `Right = Node.link n (Link.Child `Right));
  Alcotest.(check bool) "adjacent view" true
    (Node.adjacent n `Left = Node.link n (Link.Adjacent `Left));
  (* Dropping one peer clears only its slots. *)
  Node.drop_links_for_peer n 10;
  List.iter
    (fun (k, i) ->
      let expect = if i.Link.peer = 10 then None else Some i in
      let what = Format.asprintf "%a after drop" Link.pp_kind k in
      Alcotest.(check bool) what true (Node.link n k = expect))
    infos;
  (* Clearing every kind empties the store. *)
  List.iter (fun k -> Node.set_link n k None) Link.all_kinds;
  List.iter
    (fun k -> Alcotest.(check bool) "cleared" true (Node.link n k = None))
    Link.all_kinds

let test_update_and_drop_links () =
  let n = make_node () in
  let target = Node.info (make_node ~id:9 ~level:2 ~number:1 ()) in
  Node.set_parent n (Some target);
  Node.set_adjacent n `Left (Some target);
  Routing_table.set (Node.table n `Left) 0 (Some target);
  Node.update_links_for_peer n 9 (fun i -> { i with Link.has_left_child = true });
  (match Node.parent n with
  | Some i -> Alcotest.(check bool) "parent refreshed" true i.Link.has_left_child
  | None -> Alcotest.fail "parent lost");
  Node.drop_links_for_peer n 9;
  Alcotest.(check bool) "parent dropped" true (Node.parent n = None);
  Alcotest.(check bool) "adjacent dropped" true (Node.adjacent n `Left = None);
  Alcotest.(check int) "table slot dropped" 0 (Routing_table.filled_count (Node.table n `Left))

let test_reset_tables () =
  let n = make_node () in
  Routing_table.set (Node.table n `Left) 0 (Some (Node.info n));
  Node.reset_tables n;
  Alcotest.(check int) "cleared" 0 (Routing_table.filled_count (Node.table n `Left))

let test_neighbor_entries_order () =
  let n = make_node ~level:3 ~number:4 () in
  let mk num = Node.info (make_node ~id:(100 + num) ~level:3 ~number:num ()) in
  Routing_table.set (Node.table n `Left) 1 (Some (mk 2));
  Routing_table.set (Node.table n `Right) 0 (Some (mk 5));
  let peers = List.map (fun (_, i) -> i.Link.peer) (Node.neighbor_entries n) in
  Alcotest.(check (list int)) "left table first" [ 102; 105 ] peers

(* The checker must actually detect violations, not just pass. *)
let test_check_detects_corruption () =
  let net = N.build ~seed:1 20 in
  Check.all net;
  let victim = Net.random_peer net in
  let saved = victim.Node.range in
  victim.Node.range <- Range.make ~lo:saved.Range.lo ~hi:(saved.Range.hi + 7);
  Alcotest.(check bool) "ranges check trips" true
    (match Check.ranges net with
    | () -> Position.is_root victim.Node.pos && false
    | exception Failure _ -> true);
  victim.Node.range <- saved;
  Check.all net

let test_check_detects_stale_link () =
  let net = N.build ~seed:2 20 in
  let victim =
    List.find (fun (n : Node.t) -> Option.is_some (Node.parent n)) (Net.peers net)
  in
  let saved = Node.parent victim in
  Node.set_parent victim
    (Option.map (fun i -> { i with Link.range = Range.make ~lo:0 ~hi:1 }) saved);
  Alcotest.(check bool) "strict links check trips" true
    (match Check.links ~strict:true net with
    | () -> false
    | exception Failure _ -> true);
  (* Non-strict mode tolerates stale cached ranges. *)
  Check.links ~strict:false net;
  Node.set_parent victim saved;
  Check.all net

let test_check_detects_missing_link () =
  let net = N.build ~seed:3 20 in
  let victim =
    List.find (fun (n : Node.t) -> Option.is_some (Node.parent n)) (Net.peers net)
  in
  let saved = Node.parent victim in
  Node.set_parent victim None;
  Alcotest.(check bool) "missing link detected" true
    (match Check.links ~strict:false net with
    | () -> false
    | exception Failure _ -> true);
  Node.set_parent victim saved

let suite =
  [
    Alcotest.test_case "fresh node" `Quick test_fresh_node;
    Alcotest.test_case "info snapshot" `Quick test_info_snapshot;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "link round-trips every kind" `Quick
      test_link_roundtrip_every_kind;
    Alcotest.test_case "update/drop links" `Quick test_update_and_drop_links;
    Alcotest.test_case "reset tables" `Quick test_reset_tables;
    Alcotest.test_case "neighbour entry order" `Quick test_neighbor_entries_order;
    Alcotest.test_case "check detects range corruption" `Quick test_check_detects_corruption;
    Alcotest.test_case "check detects stale link" `Quick test_check_detects_stale_link;
    Alcotest.test_case "check detects missing link" `Quick test_check_detects_missing_link;
  ]
