(* Continuous health monitor: threshold semantics (ok / degraded /
   violated with persistence), churn-aware load sampling, and
   deterministic export. *)

module Monitor = Baton.Monitor
module Metrics = Baton_sim.Metrics
module Gauge = Baton_obs.Gauge
module Json = Baton_obs.Json
module Rng = Baton_util.Rng
module N = Baton.Network
module Net = Baton.Net

(* Wide-open thresholds so only the component under test can fail. *)
let lax = { Monitor.default_thresholds with max_skew = 1e9; max_stale_rate = 1. }

let build ~seed n =
  let net = N.build ~seed n in
  let rng = Rng.create (seed + 1) in
  for _ = 1 to 3 * n do
    N.insert net (Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
  done;
  net

let test_healthy_network_stays_ok () =
  let net = build ~seed:3 30 in
  let mon = Monitor.create ~thresholds:lax net in
  for i = 1 to 3 do
    let s = Monitor.tick mon ~time:(float_of_int i *. 100.) in
    Alcotest.(check string) "overall ok"
      (Monitor.level_label Monitor.Ok)
      (Monitor.level_label s.Monitor.overall)
  done;
  Alcotest.(check int) "three ticks" 3 (Monitor.tick_count mon);
  Alcotest.(check int) "no transitions" 0 (List.length (Monitor.events mon));
  let s = Option.get (Monitor.latest mon) in
  Alcotest.(check int) "sampled population" 30 s.Monitor.nodes;
  Alcotest.(check int) "sampled height" (Baton.Check.height net)
    s.Monitor.height;
  Alcotest.(check bool) "load observed" true (s.Monitor.skew >= 1.);
  Alcotest.(check int) "gauge fed every tick" 3
    (Gauge.count (Monitor.load_gauge mon))

(* A failing threshold reports Degraded first and escalates to
   Violated only after [persist] consecutive failing samples. *)
let test_persistent_failure_escalates () =
  let net = build ~seed:3 30 in
  (* Skew of any loaded network is >= 1, so this threshold always fails. *)
  let mon =
    Monitor.create
      ~thresholds:{ lax with max_skew = 0.5; persist = 3 }
      net
  in
  let levels =
    List.map
      (fun i ->
        let s = Monitor.tick mon ~time:(float_of_int i) in
        List.assoc Monitor.c_load s.Monitor.levels)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list string)) "degraded, degraded, violated"
    [ "degraded"; "degraded"; "violated" ]
    (List.map Monitor.level_label levels);
  Alcotest.(check string) "current load status" "violated"
    (Monitor.level_label (Monitor.current mon Monitor.c_load));
  Alcotest.(check string) "overall mirrors the worst" "violated"
    (Monitor.level_label (Monitor.current mon Monitor.c_overall));
  (* Exactly two transitions per stream: ok->degraded, degraded->violated. *)
  let of_comp c =
    List.filter
      (fun (e : Monitor.event) -> String.equal e.Monitor.component c)
      (Monitor.events mon)
  in
  Alcotest.(check int) "load transitions" 2
    (List.length (of_comp Monitor.c_load));
  Alcotest.(check int) "overall transitions" 2
    (List.length (of_comp Monitor.c_overall));
  match of_comp Monitor.c_load with
  | [ e1; e2 ] ->
    Alcotest.(check string) "first detail names the skew" "skew"
      (String.sub e1.Monitor.detail 0 4);
    Alcotest.(check bool) "escalation ordering" true
      (Monitor.level_rank e2.Monitor.after
      > Monitor.level_rank e1.Monitor.after)
  | _ -> Alcotest.fail "expected two load events"

(* A transient failure recovers: degraded -> ok without ever touching
   violated. Driven through the cache-staleness component, whose
   per-interval rate we can pulse deterministically. *)
let test_transient_failure_recovers () =
  let net = build ~seed:3 30 in
  let mon =
    Monitor.create ~thresholds:{ lax with max_stale_rate = 0.; persist = 3 } net
  in
  let m = Net.metrics net in
  let s1 = Monitor.tick mon ~time:100. in
  Alcotest.(check string) "baseline ok" "ok"
    (Monitor.level_label s1.Monitor.overall);
  (* One stale probe lands in the next interval... *)
  Metrics.event m Baton.Msg.ev_cache_stale;
  let s2 = Monitor.tick mon ~time:200. in
  Alcotest.(check bool) "stale rate observed" true (s2.Monitor.stale_rate > 0.);
  Alcotest.(check string) "one bad interval degrades" "degraded"
    (Monitor.level_label (List.assoc Monitor.c_cache s2.Monitor.levels));
  (* ...and the following interval is quiet again. *)
  let s3 = Monitor.tick mon ~time:300. in
  Alcotest.(check string) "recovers immediately" "ok"
    (Monitor.level_label s3.Monitor.overall);
  let transitions =
    List.map
      (fun (e : Monitor.event) ->
        ( e.Monitor.component,
          Monitor.level_label e.Monitor.before,
          Monitor.level_label e.Monitor.after ))
      (Monitor.events mon)
  in
  Alcotest.(check (list (triple string string string)))
    "degraded -> ok, never violated"
    [
      (Monitor.c_cache, "ok", "degraded");
      (Monitor.c_overall, "ok", "degraded");
      (Monitor.c_cache, "degraded", "ok");
      (Monitor.c_overall, "degraded", "ok");
    ]
    transitions

(* Load skew under churn: departed peers keep their historical message
   counts in [Metrics.per_node], but present imbalance is a property of
   the peers still in the overlay — the monitor must filter. *)
let test_skew_ignores_departed_peers () =
  let net = build ~seed:9 24 in
  let mon = Monitor.create ~thresholds:lax net in
  let s = Monitor.tick mon ~time:1. in
  Alcotest.(check int) "pre-churn population" 24 s.Monitor.nodes;
  let g = Option.get (Gauge.latest (Monitor.load_gauge mon)) in
  Alcotest.(check int) "gauge width = live peers" 24 g.Gauge.nodes;
  for _ = 1 to 4 do
    N.leave net (Net.random_peer net).Baton.Node.id
  done;
  let s = Monitor.tick mon ~time:2. in
  Alcotest.(check int) "post-churn population" 20 s.Monitor.nodes;
  let g = Option.get (Gauge.latest (Monitor.load_gauge mon)) in
  Alcotest.(check int) "departed peers dropped from the gauge" 20
    g.Gauge.nodes;
  (* The unfiltered metric still remembers everyone who ever served. *)
  Alcotest.(check bool) "per_node keeps history" true
    (List.length (Metrics.per_node (Net.metrics net)) > Net.size net)

let test_ring_bounds_samples () =
  let net = build ~seed:3 12 in
  let mon = Monitor.create ~capacity:4 ~thresholds:lax net in
  for i = 1 to 10 do
    ignore (Monitor.tick mon ~time:(float_of_int i))
  done;
  Alcotest.(check int) "count sees everything" 10 (Monitor.tick_count mon);
  let kept = Monitor.samples mon in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length kept);
  Alcotest.(check (list (float 0.)))
    "oldest evicted first" [ 7.; 8.; 9.; 10. ]
    (List.map (fun s -> s.Monitor.s_time) kept)

let health_doc ~seed =
  let net = build ~seed 30 in
  let mon = Monitor.create ~thresholds:lax net in
  for i = 1 to 5 do
    ignore (Monitor.tick mon ~time:(float_of_int i *. 50.))
  done;
  Json.to_string (Monitor.json mon)

let test_json_shape_and_determinism () =
  let doc = health_doc ~seed:3 in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "mentions %S" needle) true
        (let re = Str.regexp_string needle in
         try
           ignore (Str.search_forward re doc 0);
           true
         with Not_found -> false))
    [
      "\"samples\""; "\"events\""; "\"load\""; "\"summary\""; "\"ticks\":5";
      "\"final\":\"ok\""; "\"overall\""; "\"skew\""; "\"stale_rate\"";
    ];
  Alcotest.(check string) "byte-identical across same-seed monitors" doc
    (health_doc ~seed:3)

let test_create_validates () =
  let net = N.build ~seed:3 4 in
  Alcotest.check_raises "capacity" (Invalid_argument "Monitor.create: capacity < 1")
    (fun () -> ignore (Monitor.create ~capacity:0 net));
  Alcotest.check_raises "persist" (Invalid_argument "Monitor.create: persist < 1")
    (fun () ->
      ignore
        (Monitor.create
           ~thresholds:{ Monitor.default_thresholds with persist = 0 }
           net))

let suite =
  [
    Alcotest.test_case "healthy network stays ok" `Quick
      test_healthy_network_stays_ok;
    Alcotest.test_case "persistent failure escalates" `Quick
      test_persistent_failure_escalates;
    Alcotest.test_case "transient failure recovers" `Quick
      test_transient_failure_recovers;
    Alcotest.test_case "skew ignores departed peers" `Quick
      test_skew_ignores_departed_peers;
    Alcotest.test_case "sample ring bounded" `Quick test_ring_bounds_samples;
    Alcotest.test_case "json shape + determinism" `Quick
      test_json_shape_and_determinism;
    Alcotest.test_case "create validates" `Quick test_create_validates;
  ]
