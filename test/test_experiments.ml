(* Experiment harness: tables are well-formed, deterministic, and show
   the paper's qualitative shapes even at tiny scale. *)

module P = Baton_experiments.Params
module Table = Baton_experiments.Table
module Runner = Baton_experiments.Runner

let tiny = P.tiny

let float_cell row i = float_of_string (List.nth row i)

let test_table_rendering () =
  let t =
    Table.make ~id:"t" ~title:"demo" ~header:[ "a"; "b" ]
      ~notes:[ "a note" ]
      [ [ "1"; "2.50" ] ]
  in
  let text = Table.render t in
  Alcotest.(check bool) "mentions id" true
    (String.length text > 0
    && String.sub text 0 6 = "== t: ");
  let md = Table.markdown t in
  Alcotest.(check bool) "markdown pipes" true (String.contains md '|')

let test_membership_tables () =
  let a, b = Baton_experiments.Exp_membership.run tiny in
  Alcotest.(check int) "fig8a rows = sizes" (List.length tiny.P.sizes) (List.length a.Table.rows);
  Alcotest.(check int) "fig8b rows = sizes" (List.length tiny.P.sizes) (List.length b.Table.rows);
  Alcotest.(check string) "ids" "fig8a" a.Table.id;
  Alcotest.(check string) "ids" "fig8b" b.Table.id;
  (* Shape: BATON's join-search is cheaper than Chord's at the largest
     size, and BATON's table update is far cheaper than Chord's. *)
  let last_a = List.nth a.Table.rows (List.length a.Table.rows - 1) in
  Alcotest.(check bool) "baton find < chord find" true
    (float_cell last_a 1 < float_cell last_a 2);
  let last_b = List.nth b.Table.rows (List.length b.Table.rows - 1) in
  Alcotest.(check bool) "baton update << chord update" true
    (float_cell last_b 1 *. 2. < float_cell last_b 2)

let test_query_tables () =
  let c, d, e = Baton_experiments.Exp_queries.run tiny in
  List.iter
    (fun (t : Table.t) ->
      Alcotest.(check int)
        (t.Table.id ^ " row count")
        (List.length tiny.P.sizes)
        (List.length t.Table.rows))
    [ c; d; e ];
  (* Range queries: BATON beats the multiway tree and, overwhelmingly,
     the Chord full scan. *)
  let last_e = List.nth e.Table.rows (List.length e.Table.rows - 1) in
  let baton = float_cell last_e 1 and mtree = float_cell last_e 2 and chord = float_cell last_e 3 in
  Alcotest.(check bool) "baton <= mtree" true (baton <= mtree);
  Alcotest.(check bool) "baton << chord scan" true (baton *. 4. < chord)

let test_access_load_table () =
  let t = Baton_experiments.Exp_access_load.run tiny in
  Alcotest.(check string) "id" "fig8f" t.Table.id;
  Alcotest.(check bool) "several levels" true (List.length t.Table.rows >= 3);
  (* The fairness headline: the root is not an outlier hotspot. Compare
     the root's per-node search load against the mean of the rest. *)
  let root_row = List.hd t.Table.rows in
  let rest = List.tl t.Table.rows in
  let mean_rest =
    List.fold_left (fun acc r -> acc +. float_cell r 3) 0. rest
    /. float_of_int (List.length rest)
  in
  Alcotest.(check bool) "root search load within 4x of other levels" true
    (float_cell root_row 3 < (4. *. mean_rest) +. 8.)

let test_balance_tables () =
  let g, h = Baton_experiments.Exp_balance.run tiny in
  Alcotest.(check string) "id g" "fig8g" g.Table.id;
  Alcotest.(check string) "id h" "fig8h" h.Table.id;
  (* Skewed data pays at least as much balancing as uniform data. *)
  let last = List.nth g.Table.rows (List.length g.Table.rows - 1) in
  Alcotest.(check bool) "zipf >= uniform balancing" true
    (float_cell last 2 >= float_cell last 1)

let test_dynamics_table () =
  let t = Baton_experiments.Exp_dynamics.run tiny in
  Alcotest.(check string) "id" "fig8i" t.Table.id;
  Alcotest.(check int) "six batch sizes" 6 (List.length t.Table.rows)

let test_ablation_table () =
  let t = Baton_experiments.Exp_ablation.run tiny in
  Alcotest.(check string) "id" "ablation-tables" t.Table.id;
  (* Sideways tables must beat the adjacent-only walk clearly at the
     largest size. *)
  let last = List.nth t.Table.rows (List.length t.Table.rows - 1) in
  Alcotest.(check bool) "tables win" true
    (float_cell last 1 *. 2. < float_cell last 2)

let test_fault_table () =
  let t = Baton_experiments.Exp_fault.run tiny in
  Alcotest.(check string) "id" "fault-resilience" t.Table.id;
  Alcotest.(check int) "five fractions" 5 (List.length t.Table.rows);
  (* Detour cost grows with the failure fraction. *)
  let first = List.hd t.Table.rows in
  let last = List.nth t.Table.rows (List.length t.Table.rows - 1) in
  Alcotest.(check bool) "failures cost messages" true
    (float_cell last 3 >= float_cell first 3)

let test_resilience_table () =
  let t = Baton_experiments.Exp_resilience.run tiny in
  Alcotest.(check string) "id" "resilience" t.Table.id;
  Alcotest.(check int) "loss x failure grid" 12 (List.length t.Table.rows);
  (* The headline: queries for surviving keys are answered, not stuck,
     even with loss and unrepaired failures in every cell. *)
  List.iter
    (fun row ->
      let answered =
        float_of_string (Filename.chop_suffix (List.nth row 3) "%")
      in
      Alcotest.(check bool) "answered >= 99%" true (answered >= 99.);
      Alcotest.(check string) "no stuck queries" "0" (List.nth row 4))
    t.Table.rows;
  (* Loss produces retransmissions; an unrepaired-failure cell triggers
     suspicion-driven repairs. *)
  let lossy = List.nth t.Table.rows 11 in
  Alcotest.(check bool) "retries under loss" true (float_cell lossy 6 > 0.);
  Alcotest.(check bool) "lazy repairs fired" true (float_cell lossy 8 > 0.);
  (* Byte-identical on a rerun: the sweep is a pure function of the seed. *)
  let t2 = Baton_experiments.Exp_resilience.run tiny in
  Alcotest.(check bool) "deterministic table" true (t = t2)

let test_churn_sweep_table () =
  let t = Baton_experiments.Exp_churn_sweep.run tiny in
  Alcotest.(check string) "id" "churn-sweep" t.Table.id;
  Alcotest.(check int) "five rates" 5 (List.length t.Table.rows);
  (* Query cost stays flat: the highest-churn row must be within 2x of
     the churn-free row. *)
  let base = float_cell (List.hd t.Table.rows) 2 in
  let last = float_cell (List.nth t.Table.rows 4) 2 in
  Alcotest.(check bool) "flat query cost" true (last < (2. *. base) +. 2.)

let test_adversarial_table () =
  let t = Baton_experiments.Exp_adversarial.run tiny in
  Alcotest.(check string) "id" "adversarial" t.Table.id;
  Alcotest.(check int) "six scenarios" 6 (List.length t.Table.rows);
  (* The reproduction's claim: no schedule produces a wrong answer
     presented as right. *)
  List.iter
    (fun row ->
      Alcotest.(check string)
        (Printf.sprintf "zero violations in %s" (List.hd row))
        "0" (List.nth row 4))
    t.Table.rows

let test_runner_covers_all_figures () =
  let ids =
    List.concat_map
      (fun (name, _) -> String.split_on_char '+' name)
      Runner.experiments
  in
  List.iter
    (fun fig -> Alcotest.(check bool) fig true (List.mem fig ids))
    [ "fig8a"; "fig8b"; "fig8c"; "fig8d"; "fig8e"; "fig8f"; "fig8g"; "fig8h"; "fig8i" ]

let test_run_one () =
  let tables = Runner.run_one "fig8f" tiny in
  Alcotest.(check int) "one table" 1 (List.length tables);
  Alcotest.check_raises "unknown id" Not_found (fun () ->
      ignore (Runner.run_one "fig9z" tiny))

let test_determinism () =
  let t1 = Baton_experiments.Exp_access_load.run tiny in
  let t2 = Baton_experiments.Exp_access_load.run tiny in
  Alcotest.(check bool) "identical tables" true (t1 = t2)

let suite =
  [
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "membership tables" `Slow test_membership_tables;
    Alcotest.test_case "query tables" `Slow test_query_tables;
    Alcotest.test_case "access load table" `Slow test_access_load_table;
    Alcotest.test_case "balance tables" `Slow test_balance_tables;
    Alcotest.test_case "dynamics table" `Slow test_dynamics_table;
    Alcotest.test_case "ablation table" `Slow test_ablation_table;
    Alcotest.test_case "fault table" `Slow test_fault_table;
    Alcotest.test_case "resilience table" `Slow test_resilience_table;
    Alcotest.test_case "churn sweep table" `Slow test_churn_sweep_table;
    Alcotest.test_case "adversarial table" `Slow test_adversarial_table;
    Alcotest.test_case "runner covers figures" `Quick test_runner_covers_all_figures;
    Alcotest.test_case "run_one" `Slow test_run_one;
    Alcotest.test_case "determinism" `Slow test_determinism;
  ]
