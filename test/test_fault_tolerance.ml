(* Section III-D claims, tested directly: the network routes around
   failures, and even the loss of a whole tree level does not partition
   it, because adjacency and sideways links bridge the gaps. *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Search = Baton.Search
module Failure = Baton.Failure
module Check = Baton.Check
module Rng = Baton_util.Rng

let build_with_keys ~seed ~n ~keys =
  let net = N.build ~seed n in
  let rng = Rng.create (seed + 1) in
  let ks = Array.init keys (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  Array.iter (N.insert net) ks;
  (net, ks)

(* Reachability of all surviving keys from random live origins. *)
let surviving_reachable net keys dead_ranges =
  let lost k = List.exists (fun r -> Baton.Range.contains r k) dead_ranges in
  let total = ref 0 and ok = ref 0 in
  Array.iter
    (fun k ->
      if not (lost k) then begin
        incr total;
        let attempt () =
          match Search.lookup net ~from:(Net.random_peer net) k with
          | r -> r.Search.found
          | exception _ -> false
        in
        if attempt () || attempt () then incr ok
      end)
    keys;
  (!ok, !total)

let test_whole_level_failure () =
  (* Kill every node of an interior level; queries must still succeed
     for all data outside the dead nodes' ranges. *)
  let net, keys = build_with_keys ~seed:1 ~n:120 ~keys:400 in
  let level = 3 in
  let victims = List.filter (fun n -> Node.level n = level) (Net.peers net) in
  Alcotest.(check bool) "level populated" true (List.length victims = 8);
  List.iter (fun v -> Failure.crash net v) victims;
  let dead_ranges = List.map (fun (v : Node.t) -> v.Node.range) victims in
  let ok, total = surviving_reachable net keys dead_ranges in
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d reachable with a whole level dead" ok total)
    true
    (ok * 100 >= total * 95);
  (* Repair everything and verify a clean network. *)
  List.iter
    (fun (v : Node.t) -> Failure.repair net ~reporter:(Net.random_peer net) v.Node.id)
    victims;
  Check.all net

(* Repair every failed peer; deeply nested all-dead neighbourhoods
   need a report per layer, so sweep until quiescent. *)
let repair_all net =
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (n : Node.t) ->
        if Baton_sim.Bus.is_failed (Net.bus net) n.Node.id then begin
          Failure.repair net ~reporter:(Net.random_peer net) n.Node.id;
          if not (Baton_sim.Bus.is_failed (Net.bus net) n.Node.id) then
            progress := true
        end)
      (Net.peers net)
  done

let test_quarter_of_network_fails () =
  let net, keys = build_with_keys ~seed:2 ~n:100 ~keys:300 in
  let rng = Rng.create 9 in
  let victims =
    List.filter (fun (n : Node.t) -> (not (Node.is_root n)) && Rng.int rng 4 = 0)
      (Net.peers net)
  in
  List.iter (fun v -> Failure.crash net v) victims;
  let dead_ranges = List.map (fun (v : Node.t) -> v.Node.range) victims in
  let ok, total = surviving_reachable net keys dead_ranges in
  (* With a quarter of the network dark, most surviving data stays
     reachable through sideways and adjacency detours. *)
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d reachable with 25%% failures" ok total)
    true
    (ok * 100 >= total * 85);
  repair_all net;
  Check.all net

let test_sideways_redundancy () =
  (* The sideways axis has Chord-like redundancy: killing a single
     routing-table neighbour of every node still leaves a path. *)
  let net, keys = build_with_keys ~seed:3 ~n:80 ~keys:200 in
  (* Kill the three deepest leaves. *)
  let victims =
    List.sort (fun (a : Node.t) b -> compare (Node.level b) (Node.level a)) (Net.peers net)
    |> List.filteri (fun i _ -> i < 3)
  in
  List.iter (fun v -> Failure.crash net v) victims;
  let dead_ranges = List.map (fun (v : Node.t) -> v.Node.range) victims in
  let ok, total = surviving_reachable net keys dead_ranges in
  Alcotest.(check int) "all surviving keys reachable" total ok;
  List.iter
    (fun (v : Node.t) -> Failure.repair net ~reporter:(Net.random_peer net) v.Node.id)
    victims;
  Check.all net

let test_repair_after_mass_failure_restores_everything () =
  let net, _ = build_with_keys ~seed:4 ~n:60 ~keys:100 in
  let rng = Rng.create 17 in
  for _ = 1 to 15 do
    let ids = Net.live_ids net in
    if Array.length ids > 2 then Baton.Network.crash net (Rng.pick rng ids)
  done;
  (* Repair in arbitrary order, sweeping until quiescent. *)
  repair_all net;
  Check.all net

let suite =
  [
    Alcotest.test_case "whole level fails" `Quick test_whole_level_failure;
    Alcotest.test_case "quarter of network fails" `Quick test_quarter_of_network_fails;
    Alcotest.test_case "sideways redundancy" `Quick test_sideways_redundancy;
    Alcotest.test_case "mass failure repair" `Quick test_repair_after_mass_failure_restores_everything;
  ]
