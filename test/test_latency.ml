(* Per-link latency model. *)

module Latency = Baton_sim.Latency
module Bus = Baton_sim.Bus

let test_deterministic_per_pair () =
  let l = Latency.create ~seed:3 () in
  let a = Latency.of_pair l ~src:1 ~dst:2 in
  Alcotest.(check bool) "same pair same latency" true
    (a = Latency.of_pair l ~src:1 ~dst:2);
  let fresh = Latency.create ~seed:3 () in
  Alcotest.(check bool) "pure function of seed" true
    (a = Latency.of_pair fresh ~src:1 ~dst:2)

let test_asymmetric_pairs () =
  let l = Latency.create ~seed:4 () in
  Alcotest.(check bool) "directions differ in general" true
    (Latency.of_pair l ~src:1 ~dst:2 <> Latency.of_pair l ~src:2 ~dst:1)

let test_bounds () =
  let l = Latency.create ~seed:5 ~base_ms:10. ~jitter_ms:5. () in
  for src = 0 to 20 do
    for dst = 0 to 20 do
      if src <> dst then begin
        let ms = Latency.of_pair l ~src ~dst in
        Alcotest.(check bool) "above base" true (ms >= 10.);
        Alcotest.(check bool) "finite tail" true (ms < 10. +. (5. *. 40.))
      end
    done
  done;
  Alcotest.check_raises "negative" (Invalid_argument "Latency.create: negative latency")
    (fun () -> ignore (Latency.create ~base_ms:(-1.) ()))

let test_measure_sums_hops () =
  let l = Latency.create ~seed:6 () in
  let bus = Bus.create () in
  let result, ms =
    Latency.measure l bus (fun () ->
        Bus.send bus ~src:1 ~dst:2 ~kind:"x";
        Bus.send bus ~src:2 ~dst:3 ~kind:"x";
        "done")
  in
  Alcotest.(check string) "result passed through" "done" result;
  let expect = Latency.of_pair l ~src:1 ~dst:2 +. Latency.of_pair l ~src:2 ~dst:3 in
  Alcotest.(check bool) "sum of hops" true (Float.abs (ms -. expect) < 1e-9)

let test_measure_restores_trace_and_raises () =
  let l = Latency.create ~seed:7 () in
  let bus = Bus.create () in
  (match Latency.measure l bus (fun () -> failwith "boom") with
  | exception Failure m -> Alcotest.(check string) "exception propagates" "boom" m
  | _ -> Alcotest.fail "expected exception");
  (* The measurement subscription must have been removed. *)
  Alcotest.(check int) "no leftover subscriber" 0 (Bus.subscriber_count bus);
  let hits = ref 0 in
  let sub = Bus.subscribe bus (fun ~src:_ ~dst:_ ~kind:_ -> incr hits) in
  Bus.send bus ~src:1 ~dst:2 ~kind:"x";
  Bus.unsubscribe bus sub;
  Alcotest.(check int) "fresh hook in place" 1 !hits

let test_measure_zero_messages () =
  let l = Latency.create ~seed:8 () in
  let bus = Bus.create () in
  let (), ms = Latency.measure l bus (fun () -> ()) in
  Alcotest.(check bool) "zero" true (ms = 0.)

(* Regression: installing another observer (as `baton_cli trace` does)
   while a measurement is running must not drop either subscriber —
   the single-slot hook this replaces silently evicted one of them. *)
let test_measure_composes_with_other_subscribers () =
  let l = Latency.create ~seed:9 () in
  let bus = Bus.create () in
  let cli_hops = ref 0 in
  let cli = Bus.subscribe bus (fun ~src:_ ~dst:_ ~kind:_ -> incr cli_hops) in
  let (), ms =
    Latency.measure l bus (fun () ->
        Bus.send bus ~src:1 ~dst:2 ~kind:"x";
        (* A second observer installed mid-measurement also sticks. *)
        let mid_hops = ref 0 in
        let mid = Bus.subscribe bus (fun ~src:_ ~dst:_ ~kind:_ -> incr mid_hops) in
        Bus.send bus ~src:2 ~dst:3 ~kind:"x";
        Bus.unsubscribe bus mid;
        Alcotest.(check int) "mid-flight subscriber saw the hop" 1 !mid_hops)
  in
  let expect = Latency.of_pair l ~src:1 ~dst:2 +. Latency.of_pair l ~src:2 ~dst:3 in
  Alcotest.(check bool) "measurement saw both hops" true
    (Float.abs (ms -. expect) < 1e-9);
  Alcotest.(check int) "cli trace saw both hops" 2 !cli_hops;
  Bus.unsubscribe bus cli;
  Alcotest.(check int) "only cli left to remove" 0 (Bus.subscriber_count bus)

let suite =
  [
    Alcotest.test_case "deterministic per pair" `Quick test_deterministic_per_pair;
    Alcotest.test_case "asymmetric" `Quick test_asymmetric_pairs;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "measure sums hops" `Quick test_measure_sums_hops;
    Alcotest.test_case "measure restores/raises" `Quick test_measure_restores_trace_and_raises;
    Alcotest.test_case "measure zero" `Quick test_measure_zero_messages;
    Alcotest.test_case "measure composes with subscribers" `Quick
      test_measure_composes_with_other_subscribers;
  ]
