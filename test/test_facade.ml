(* The Baton.Network convenience facade and message-kind accounting. *)

module N = Baton.Network
module Net = Baton.Net
module Metrics = Baton_sim.Metrics

let test_build_validation () =
  Alcotest.check_raises "zero peers" (Invalid_argument "Network.build: need at least one peer")
    (fun () -> ignore (N.build 0))

let test_custom_domain () =
  let net =
    N.build ~seed:3 ~domain:(Baton.Range.make ~lo:0 ~hi:100) 10
  in
  N.insert net 50;
  Alcotest.(check bool) "found" true (N.lookup net 50);
  Baton.Check.all net

let test_join_leave_roundtrip () =
  let net = N.build ~seed:4 10 in
  let id = N.join net in
  Alcotest.(check int) "grew" 11 (N.size net);
  N.leave net id;
  Alcotest.(check int) "shrank" 10 (N.size net)

let test_join_on_empty_network () =
  let net = N.create ~seed:5 () in
  let id = N.join net in
  Alcotest.(check int) "bootstrap join" 1 (N.size net);
  N.leave net id;
  Alcotest.(check int) "empty again" 0 (N.size net)

let test_crash_repair_roundtrip () =
  let net = N.build ~seed:6 20 in
  let ids = Net.live_ids net in
  let victim = ids.(3) in
  N.crash net victim;
  N.repair net victim;
  Alcotest.(check int) "one fewer" 19 (N.size net);
  Baton.Check.all net

let test_messages_monotone () =
  let net = N.build ~seed:7 30 in
  let a = N.messages net in
  N.insert net 123;
  let b = N.messages net in
  Alcotest.(check bool) "counter grows" true (b >= a)

let test_message_kind_accounting () =
  (* Each operation charges its own kind, so per-figure attribution in
     the experiments cannot mix streams. *)
  let net = N.build ~seed:8 40 in
  let m = Net.metrics net in
  Metrics.reset m;
  N.insert net 123_456;
  Alcotest.(check bool) "insert kind charged" true (Metrics.kind_count m Baton.Msg.insert > 0);
  Alcotest.(check int) "search kind untouched" 0 (Metrics.kind_count m Baton.Msg.search_exact);
  ignore (N.lookup net 123_456);
  Alcotest.(check bool) "search kind charged" true
    (Metrics.kind_count m Baton.Msg.search_exact > 0);
  ignore (N.range_query net ~lo:1 ~hi:2);
  Alcotest.(check bool) "range kind charged" true
    (Metrics.kind_count m Baton.Msg.search_range > 0);
  let before_join = Metrics.kind_count m Baton.Msg.join_update in
  let id = N.join net in
  Alcotest.(check bool) "join update charged" true
    (Metrics.kind_count m Baton.Msg.join_update > before_join);
  N.leave net id;
  Alcotest.(check bool) "leave update charged" true
    (Metrics.kind_count m Baton.Msg.leave_update > 0)

let test_deterministic_message_totals () =
  (* Regression pin: the simulator is a pure function of the seed. *)
  let run () =
    let net = N.build ~seed:2024 64 in
    for k = 1 to 200 do
      N.insert net (k * 4_999_999)
    done;
    for _ = 1 to 5 do
      let id = N.join net in
      N.leave net id
    done;
    N.messages net
  in
  Alcotest.(check int) "same seed, same messages" (run ()) (run ())

let test_msg_all_lists_every_kind () =
  List.iter
    (fun k -> Alcotest.(check bool) k true (List.mem k Baton.Msg.all))
    [
      Baton.Msg.join_search; Baton.Msg.join_update; Baton.Msg.leave_search;
      Baton.Msg.leave_update; Baton.Msg.search_exact; Baton.Msg.search_range;
      Baton.Msg.insert; Baton.Msg.delete; Baton.Msg.expand; Baton.Msg.balance;
      Baton.Msg.restructure; Baton.Msg.repair; Baton.Msg.cache_probe;
      Baton.Msg.cache_invalid;
    ]

let test_bulk_insert_places_all_keys () =
  let net = N.build ~seed:9 25 in
  let keys = List.init 120 (fun i -> 1 + (i * 7_654_321)) in
  N.bulk_insert net keys;
  List.iter
    (fun k -> Alcotest.(check bool) "bulk key found" true (N.lookup net k))
    keys;
  Baton.Check.all net

let test_cache_messages_accounting () =
  (* Cache traffic surfaces through its own facade counter and never
     leaks into the paper-parity [messages] total. *)
  let net = N.build ~seed:10 40 in
  N.insert net 123_456;
  Alcotest.(check int) "no cache traffic when off" 0 (N.cache_messages net);
  Net.enable_route_cache net;
  let origin = Net.peer net (Net.live_ids net).(0) in
  ignore (Baton.Search.exact net ~from:origin 987_654_321);
  let total_before = N.messages net in
  ignore (Baton.Search.exact net ~from:origin 987_654_321);
  Alcotest.(check bool) "probe counted as cache traffic" true
    (N.cache_messages net > 0);
  Alcotest.(check int) "warm hit leaves the total alone" total_before
    (N.messages net)

let suite =
  [
    Alcotest.test_case "build validation" `Quick test_build_validation;
    Alcotest.test_case "custom domain" `Quick test_custom_domain;
    Alcotest.test_case "join/leave roundtrip" `Quick test_join_leave_roundtrip;
    Alcotest.test_case "join on empty network" `Quick test_join_on_empty_network;
    Alcotest.test_case "crash/repair roundtrip" `Quick test_crash_repair_roundtrip;
    Alcotest.test_case "messages monotone" `Quick test_messages_monotone;
    Alcotest.test_case "kind accounting" `Quick test_message_kind_accounting;
    Alcotest.test_case "deterministic totals" `Quick test_deterministic_message_totals;
    Alcotest.test_case "Msg.all complete" `Quick test_msg_all_lists_every_kind;
    Alcotest.test_case "bulk insert" `Quick test_bulk_insert_places_all_keys;
    Alcotest.test_case "cache message accounting" `Quick
      test_cache_messages_accounting;
  ]
