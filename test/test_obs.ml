(* Tracing / telemetry layer: recorder semantics, export formats, and
   the invariant that observing a run never changes what it measures. *)

module Bus = Baton_sim.Bus
module Metrics = Baton_sim.Metrics
module Histogram = Baton_util.Histogram
module Rng = Baton_util.Rng
module Span = Baton_obs.Span
module Recorder = Baton_obs.Recorder
module Gauge = Baton_obs.Gauge
module Json = Baton_obs.Json
module Export = Baton_obs.Export
module N = Baton.Network
module Net = Baton.Net
module Search = Baton.Search

let test_ring_bounds_and_drops () =
  let r = Recorder.create ~capacity:4 () in
  for i = 0 to 9 do
    Recorder.note r (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check int) "recorded counts everything" 10 (Recorder.recorded r);
  Alcotest.(check int) "dropped = overflow" 6 (Recorder.dropped r);
  let events = Recorder.events r in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length events);
  Alcotest.(check (list int)) "oldest first, newest kept" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Span.entry) -> e.Span.seq) events)

let test_with_op_digest () =
  let bus = Bus.create () in
  let r = Recorder.create () in
  Recorder.attach r bus;
  Recorder.with_op r ~kind:Span.exact (fun () ->
      for i = 1 to 3 do
        Bus.send bus ~src:i ~dst:(i + 1) ~kind:"m"
      done);
  Recorder.detach r;
  let d = Option.get (Recorder.digest r Span.exact) in
  Alcotest.(check int) "one op" 1 (Recorder.digest_ops d);
  Alcotest.(check int) "hops p50" 3 (Histogram.percentile (Recorder.digest_hops d) 50.);
  Alcotest.(check int) "msgs p50" 3 (Histogram.percentile (Recorder.digest_msgs d) 50.);
  Alcotest.(check (list string)) "kinds" [ Span.exact ] (Recorder.kinds r);
  Alcotest.(check int) "no op left open" 0 (Recorder.open_ops r)

let test_nested_ops_share_hops () =
  let bus = Bus.create () in
  let r = Recorder.create () in
  Recorder.attach r bus;
  Recorder.with_op r ~kind:Span.range (fun () ->
      Bus.send bus ~src:1 ~dst:2 ~kind:"m";
      Recorder.with_op r ~kind:Span.repair (fun () ->
          Bus.send bus ~src:2 ~dst:3 ~kind:"m";
          Bus.send bus ~src:3 ~dst:4 ~kind:"m"));
  Recorder.detach r;
  let hops kind =
    Histogram.percentile
      (Recorder.digest_hops (Option.get (Recorder.digest r kind)))
      50.
  in
  (* The parent's cost includes the nested repair. *)
  Alcotest.(check int) "parent includes child" 3 (hops Span.range);
  Alcotest.(check int) "child counts its own" 2 (hops Span.repair);
  (* The nested op's begin event records its parent. *)
  let parent_of_repair =
    List.find_map
      (fun (e : Span.entry) ->
        match e.Span.ev with
        | Span.Op_begin { kind; parent } when String.equal kind Span.repair ->
          Some parent
        | _ -> None)
      (Recorder.events r)
  in
  Alcotest.(check (option (option int))) "parent link" (Some (Some 0)) parent_of_repair;
  (* Hops inside the nested op are attributed to it, not the parent. *)
  let hop_ops =
    List.filter_map
      (fun (e : Span.entry) ->
        match e.Span.ev with Span.Hop _ -> Some e.Span.op | _ -> None)
      (Recorder.events r)
  in
  Alcotest.(check (list int)) "innermost attribution" [ 0; 1; 1 ] hop_ops

let test_retries_split_hops_from_msgs () =
  let bus = Bus.create () in
  let r = Recorder.create () in
  Recorder.attach r bus;
  Recorder.with_op r ~kind:Span.join (fun () ->
      Bus.send bus ~src:1 ~dst:2 ~kind:"m";
      (* A retransmission passes over the bus again... *)
      Bus.send bus ~src:1 ~dst:2 ~kind:"m";
      (* ...and is flagged so it doesn't count as forward progress. *)
      Recorder.retry r ~peer:2);
  Recorder.detach r;
  let d = Option.get (Recorder.digest r Span.join) in
  Alcotest.(check int) "msgs include the retry" 2
    (Histogram.percentile (Recorder.digest_msgs d) 50.);
  Alcotest.(check int) "hops exclude the retry" 1
    (Histogram.percentile (Recorder.digest_hops d) 50.)

let test_failed_op_recorded () =
  let r = Recorder.create () in
  (match Recorder.with_op r ~kind:Span.leave (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected exception"
  | exception Failure m -> Alcotest.(check string) "re-raised" "boom" m);
  let ok =
    List.find_map
      (fun (e : Span.entry) ->
        match e.Span.ev with Span.Op_end { ok; _ } -> Some ok | _ -> None)
      (Recorder.events r)
  in
  Alcotest.(check (option bool)) "marked failed" (Some false) ok;
  Alcotest.(check int) "stack unwound" 0 (Recorder.open_ops r)

let test_event_json_schema () =
  let lines entries = String.concat "" (List.map (fun e -> Json.to_string (Export.event_json e) ^ "\n") entries) in
  let entries =
    [
      { Span.seq = 0; op = 0; time = None; ev = Span.Op_begin { kind = Span.exact; parent = None } };
      { Span.seq = 1; op = 0; time = None; ev = Span.Hop { src = 3; dst = 7; msg = "search.exact"; span = -1 } };
      { Span.seq = 2; op = 0; time = Some 1.5; ev = Span.Note { name = "send.retry"; peer = Some 7 } };
      { Span.seq = 3; op = 0; time = None; ev = Span.Op_end { ok = true; hops = 1; msgs = 2 } };
      { Span.seq = 4; op = 0; time = None; ev = Span.Hop { src = 3; dst = 7; msg = "search.exact"; span = 5 } };
    ]
  in
  (* Golden strings pin both the schema and the emission order: object
     keys come out sorted regardless of the order the exporter
     assembled them in. *)
  Alcotest.(check string) "schema-stable lines, keys sorted"
    ("{\"ev\":\"begin\",\"kind\":\"exact\",\"op\":0,\"parent\":null,\"seq\":0}\n"
    ^ "{\"dst\":7,\"ev\":\"hop\",\"msg\":\"search.exact\",\"op\":0,\"seq\":1,\"src\":3}\n"
    ^ "{\"ev\":\"note\",\"name\":\"send.retry\",\"op\":0,\"peer\":7,\"seq\":2,\"t\":1.5}\n"
    ^ "{\"ev\":\"end\",\"hops\":1,\"msgs\":2,\"ok\":true,\"op\":0,\"seq\":3}\n"
    ^ "{\"dst\":7,\"ev\":\"hop\",\"msg\":\"search.exact\",\"op\":0,\"seq\":4,\"span\":5,\"src\":3}\n")
    (lines entries)

(* The acceptance property behind `baton_cli trace --json`: two
   same-seed runs emit byte-identical JSONL. *)
let traced_run ~seed =
  let net = N.build ~seed 300 in
  let rng = Rng.create (seed + 1) in
  for _ = 1 to 200 do
    N.insert net (Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
  done;
  let r = Recorder.create () in
  Net.set_recorder net (Some r);
  ignore (Search.exact net ~from:(Net.random_peer net) 123_456);
  ignore (Search.range net ~from:(Net.random_peer net) ~lo:1_000 ~hi:50_000_000);
  Net.set_recorder net None;
  (Export.events_jsonl r, Metrics.total (Net.metrics net))

let test_jsonl_deterministic () =
  let a, _ = traced_run ~seed:7 in
  let b, _ = traced_run ~seed:7 in
  Alcotest.(check bool) "trace is non-trivial" true (String.length a > 100);
  Alcotest.(check string) "byte-identical across runs" b a

(* Attaching a recorder must not perturb the paper's metric. *)
let plain_run ~seed =
  let net = N.build ~seed 300 in
  let rng = Rng.create (seed + 1) in
  for _ = 1 to 200 do
    N.insert net (Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
  done;
  ignore (Search.exact net ~from:(Net.random_peer net) 123_456);
  ignore (Search.range net ~from:(Net.random_peer net) ~lo:1_000 ~hi:50_000_000);
  Metrics.total (Net.metrics net)

let test_recorder_does_not_perturb_metrics () =
  let _, observed = traced_run ~seed:13 in
  let plain = plain_run ~seed:13 in
  Alcotest.(check int) "Metrics.total unchanged" plain observed

let test_gauge_percentiles () =
  let g = Gauge.create ~capacity:2 () in
  Gauge.sample g ~time:1. (Array.init 100 (fun i -> i + 1));
  Gauge.sample g ~time:2. [| 5; 5 |];
  Gauge.sample g ~time:3. [| 7 |];
  Alcotest.(check int) "samples seen" 3 (Gauge.count g);
  Alcotest.(check int) "ring bounded" 2 (List.length (Gauge.samples g));
  let s = Option.get (Gauge.latest g) in
  Alcotest.(check int) "latest max" 7 s.Gauge.max;
  Alcotest.(check bool) "latest time" true (s.Gauge.time = 3.);
  match Gauge.samples g with
  | [ s2; _ ] ->
    Alcotest.(check int) "older sample total" 10 s2.Gauge.total;
    Alcotest.(check int) "older sample p50" 5 s2.Gauge.p50
  | _ -> Alcotest.fail "expected two samples"

let test_stats_json_shape () =
  let bus = Bus.create () in
  let r = Recorder.create () in
  Recorder.attach r bus;
  Recorder.with_op r ~kind:Span.exact (fun () -> Bus.send bus ~src:1 ~dst:2 ~kind:"m");
  Recorder.detach r;
  Alcotest.(check string) "compact stats summary, keys sorted"
    ("{\"events\":{\"dropped\":0,\"recorded\":3},"
    ^ "\"ops\":[{\"count\":1,"
    ^ "\"hops\":{\"max\":1,\"mean\":1.0,\"p50\":1,\"p95\":1,\"p99\":1},"
    ^ "\"kind\":\"exact\","
    ^ "\"msgs\":{\"max\":1,\"mean\":1.0,\"p50\":1,\"p95\":1,\"p99\":1}}]}")
    (Json.to_string (Export.stats_json r))

let test_span_tree_renders () =
  let bus = Bus.create () in
  let r = Recorder.create () in
  Recorder.attach r bus;
  Recorder.with_op r ~kind:Span.range (fun () ->
      Bus.send bus ~src:1 ~dst:2 ~kind:"m";
      Recorder.with_op r ~kind:Span.repair (fun () ->
          Bus.send bus ~src:2 ~dst:3 ~kind:"m"));
  Recorder.detach r;
  let tree = Export.span_tree r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "mentions %S" needle) true
        (let re = Str.regexp_string needle in
         try ignore (Str.search_forward re tree 0); true with Not_found -> false))
    [ "op#0 range"; "op#1 repair"; "1 -> 2"; "2 -> 3"; "done" ];
  (* The nested op indents deeper than its parent. *)
  let line_with needle =
    List.find
      (fun l ->
        try ignore (Str.search_forward (Str.regexp_string needle) l 0); true
        with Not_found -> false)
      (String.split_on_char '\n' tree)
  in
  let indent l = String.length l - String.length (String.trim l) in
  Alcotest.(check bool) "child indented under parent" true
    (indent (line_with "op#1 repair") > indent (line_with "op#0 range"))

let test_save_detaches_recorder () =
  let net = N.build ~seed:3 50 in
  let r = Recorder.create () in
  Net.set_recorder net (Some r);
  let file = Filename.temp_file "baton_obs" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      (* Marshal cannot serialize the subscriber closures; save must
         shed them rather than die. *)
      Net.save net file;
      let restored = Net.load file in
      Alcotest.(check int) "roundtrip size" (Net.size net) (Net.size restored);
      Alcotest.(check (option unit)) "recorder detached on save" None
        (Option.map ignore (Net.recorder net)))

(* Regression: a save that dies mid-way (unwritable path, full disk)
   must put the observers back. The old code detached the recorder
   before opening the file and never reattached on the error path,
   silently blinding telemetry on a network that kept running. *)
let test_failed_save_restores_observers () =
  let net = N.build ~seed:3 50 in
  let r = Recorder.create () in
  Net.set_recorder net (Some r);
  let tr = Baton_obs.Trace.create () in
  Net.set_tracer net (Some tr);
  let bad_path = Filename.concat (Filename.get_temp_dir_name ()) "no/such/dir/x.snap" in
  (match Net.save net bad_path with
  | () -> Alcotest.fail "expected save to fail"
  | exception Sys_error _ -> ());
  Alcotest.(check bool) "recorder reattached" true
    (Option.is_some (Net.recorder net));
  Alcotest.(check bool) "tracer reattached" true
    (Option.is_some (Net.tracer net));
  (* And the recorder's bus subscription is live again: a fresh
     operation still lands in the ring. *)
  let before = Recorder.recorded r in
  ignore (Search.exact net ~from:(Net.random_peer net) 123_456);
  Alcotest.(check bool) "subscription restored" true
    (Recorder.recorded r > before)

let suite =
  [
    Alcotest.test_case "ring bounds/drops" `Quick test_ring_bounds_and_drops;
    Alcotest.test_case "with_op digest" `Quick test_with_op_digest;
    Alcotest.test_case "nested ops" `Quick test_nested_ops_share_hops;
    Alcotest.test_case "retries vs hops" `Quick test_retries_split_hops_from_msgs;
    Alcotest.test_case "failed op" `Quick test_failed_op_recorded;
    Alcotest.test_case "event json schema" `Quick test_event_json_schema;
    Alcotest.test_case "jsonl deterministic" `Quick test_jsonl_deterministic;
    Alcotest.test_case "metrics unperturbed" `Quick test_recorder_does_not_perturb_metrics;
    Alcotest.test_case "gauge percentiles" `Quick test_gauge_percentiles;
    Alcotest.test_case "stats json shape" `Quick test_stats_json_shape;
    Alcotest.test_case "span tree" `Quick test_span_tree_renders;
    Alcotest.test_case "save detaches recorder" `Quick test_save_detaches_recorder;
    Alcotest.test_case "failed save restores observers" `Quick
      test_failed_save_restores_observers;
  ]
