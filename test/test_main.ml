(* Aggregated alcotest entry point: one suite per module family. *)

let () =
  Alcotest.run "baton"
    [
      ("util.rng", Test_rng.suite);
      ("util.zipf", Test_zipf.suite);
      ("util.stats", Test_stats.suite);
      ("util.dyn_array", Test_dyn_array.suite);
      ("util.ordered_multiset", Test_ordered_multiset.suite);
      ("util.sorted_store", Test_sorted_store.suite);
      ("util.histogram", Test_histogram.suite);
      ("sim", Test_sim.suite);
      ("sim.latency", Test_latency.suite);
      ("obs", Test_obs.suite);
      ("obs.trace", Test_trace.suite);
      ("obs.heat", Test_heat.suite);
      ("baton.position", Test_position.suite);
      ("baton.range", Test_range.suite);
      ("baton.routing_table", Test_routing_table.suite);
      ("baton.node", Test_node.suite);
      ("baton.net", Test_net.suite);
      ("baton.facade", Test_facade.suite);
      ("baton.snapshot", Test_snapshot.suite);
      ("baton.wiring", Test_wiring.suite);
      ("baton.join", Test_baton_join.suite);
      ("baton.leave", Test_baton_leave.suite);
      ("baton.search", Test_baton_search.suite);
      ("baton.route_cache", Test_route_cache.suite);
      ("baton.update", Test_baton_update.suite);
      ("baton.failure", Test_baton_failure.suite);
      ("baton.restructure", Test_baton_restructure.suite);
      ("baton.balance", Test_baton_balance.suite);
      ("baton.dynamics", Test_baton_dynamics.suite);
      ("baton.fault_tolerance", Test_fault_tolerance.suite);
      ("baton.resilience", Test_resilience.suite);
      ("baton.replication", Test_replication.suite);
      ("baton.viz", Test_viz.suite);
      ("baton.monitor", Test_monitor.suite);
      ("chord", Test_chord.suite);
      ("multiway", Test_multiway.suite);
      ("skip_graph", Test_skip_graph.suite);
      ("overlay", Test_overlay.suite);
      ("workload", Test_workload.suite);
      ("runtime", Test_runtime.suite);
      ("profiling", Test_profiling.suite);
      ("adversarial", Test_adversarial.suite);
      ("experiments", Test_experiments.suite);
      ("edge_cases", Test_edge_cases.suite);
      ("properties", Test_props.suite);
    ]
