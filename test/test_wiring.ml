(* Tree-geometry helpers: in-order navigation, structural predicates,
   announce/retract plumbing. *)

module N = Baton.Network
module Net = Baton.Net
module Node = Baton.Node
module Wiring = Baton.Wiring
module Position = Baton.Position
module Check = Baton.Check

let pos l n = Position.make ~level:l ~number:n

let test_in_order_navigation_matches_traversal () =
  let net = N.build ~seed:1 77 in
  let nodes = Check.in_order_nodes net in
  let rec walk = function
    | (a : Node.t) :: ((b : Node.t) :: _ as rest) ->
      (match Wiring.in_order_successor net a.Node.pos with
      | Some p -> Alcotest.(check bool) "successor" true (Position.equal p b.Node.pos)
      | None -> Alcotest.fail "missing successor");
      (match Wiring.in_order_predecessor net b.Node.pos with
      | Some p -> Alcotest.(check bool) "predecessor" true (Position.equal p a.Node.pos)
      | None -> Alcotest.fail "missing predecessor");
      walk rest
    | [ last ] ->
      Alcotest.(check bool) "last has no successor" true
        (Wiring.in_order_successor net last.Node.pos = None)
    | [] -> ()
  in
  walk nodes;
  let first = List.hd nodes in
  Alcotest.(check bool) "first has no predecessor" true
    (Wiring.in_order_predecessor net first.Node.pos = None)

let test_adjacent_position_sides () =
  let net = N.build ~seed:2 20 in
  let some = Net.random_peer net in
  Alcotest.(check bool) "left = predecessor" true
    (Wiring.adjacent_position net some.Node.pos `Left
    = Wiring.in_order_predecessor net some.Node.pos);
  Alcotest.(check bool) "right = successor" true
    (Wiring.adjacent_position net some.Node.pos `Right
    = Wiring.in_order_successor net some.Node.pos)

let test_tables_full_at () =
  (* Build a complete 7-node tree: every position's tables are
     structurally full. *)
  let net = N.build ~seed:3 7 in
  List.iter
    (fun (n : Node.t) ->
      Alcotest.(check bool) "full in complete tree" true
        (Wiring.tables_full_at net n.Node.pos))
    (Net.peers net);
  (* At 8 peers one level-3 position exists alone: its level-3
     neighbours are missing. *)
  let net8 = N.build ~seed:3 8 in
  let deepest =
    List.find (fun (n : Node.t) -> Node.level n = 3) (Net.peers net8)
  in
  Alcotest.(check bool) "lone deep node lacks neighbours" false
    (Wiring.tables_full_at net8 deepest.Node.pos)

let test_safe_leaf_removal () =
  let net = N.build ~seed:4 7 in
  (* Complete tree: all leaves are at the same level with no deeper
     children anywhere, so every leaf is safely removable. *)
  List.iter
    (fun (n : Node.t) ->
      if Node.is_leaf n then
        Alcotest.(check bool) "leaf removable in complete tree" true
          (Wiring.safe_leaf_removal net n.Node.pos))
    (Net.peers net);
  (* Internal positions are never safely removable. *)
  let root = Option.get (Net.root net) in
  Alcotest.(check bool) "root not removable" false
    (Wiring.safe_leaf_removal net root.Node.pos);
  (* With 8 peers, removing a level-2 leaf that is a table neighbour of
     the level-3 node's parent would break Theorem 1. *)
  let net8 = N.build ~seed:4 8 in
  let deep = List.find (fun (n : Node.t) -> Node.level n = 3) (Net.peers net8) in
  let parent = Position.parent deep.Node.pos in
  let unsafe_neighbor =
    (* any occupied same-level sideways neighbour of the deep node's
       parent must not be removable *)
    List.find_map
      (fun side ->
        let rec probe j =
          match Position.neighbor parent side j with
          | Some q when Wiring.occupied net8 q -> Some q
          | Some _ -> probe (j + 1)
          | None -> None
        in
        probe 0)
      [ `Left; `Right ]
  in
  match unsafe_neighbor with
  | Some q ->
    Alcotest.(check bool) "neighbour of child-bearing node not removable" false
      (Wiring.safe_leaf_removal net8 q)
  | None -> Alcotest.fail "expected an occupied neighbour"

let test_subtree_height () =
  let net = N.build ~seed:5 7 in
  Alcotest.(check int) "root subtree" 2 (Wiring.subtree_height net Position.root);
  Alcotest.(check int) "leaf subtree" 0 (Wiring.subtree_height net (pos 2 1));
  Alcotest.(check int) "empty position" (-1) (Wiring.subtree_height net (pos 3 1))

let test_rebuild_links_restores_strict_state () =
  let net = N.build ~seed:6 60 in
  let victim = Net.random_peer net in
  (* Wreck the node's local view, then rebuild. *)
  Node.drop_links_for_peer victim
    (match Node.parent victim with Some p -> p.Baton.Link.peer | None -> victim.Node.id);
  Baton.Node.reset_tables victim;
  Wiring.rebuild_links net victim ~kind:"test";
  Check.links ~strict:true net

let test_announce_refreshes_watchers () =
  let net = N.build ~seed:7 40 in
  let victim = Net.random_peer net in
  (* Change the node's range boundary artificially and announce; every
     watcher must see the new range (then restore). *)
  let saved = victim.Node.range in
  victim.Node.range <- saved;
  Wiring.announce net victim ~kind:"test";
  Check.links ~strict:true net

let test_retract_drops_all_references () =
  let net = N.build ~seed:8 40 in
  let victim = Net.random_peer net in
  Wiring.retract net victim ~kind:"test";
  List.iter
    (fun (w : Node.t) ->
      if w.Node.id <> victim.Node.id then begin
        let refers (l : Baton.Link.info option) =
          match l with Some i -> i.Baton.Link.peer = victim.Node.id | None -> false
        in
        Alcotest.(check bool) "no link remains" false
          (List.exists (fun k -> refers (Node.link w k)) Baton.Link.all_kinds
          || List.exists
               (fun (_, i) -> i.Baton.Link.peer = victim.Node.id)
               (Node.neighbor_entries w))
      end)
    (Net.peers net)

let suite =
  [
    Alcotest.test_case "in-order navigation" `Quick test_in_order_navigation_matches_traversal;
    Alcotest.test_case "adjacent position sides" `Quick test_adjacent_position_sides;
    Alcotest.test_case "tables_full_at" `Quick test_tables_full_at;
    Alcotest.test_case "safe_leaf_removal" `Quick test_safe_leaf_removal;
    Alcotest.test_case "subtree_height" `Quick test_subtree_height;
    Alcotest.test_case "rebuild restores strict state" `Quick test_rebuild_links_restores_strict_state;
    Alcotest.test_case "announce refreshes watchers" `Quick test_announce_refreshes_watchers;
    Alcotest.test_case "retract drops references" `Quick test_retract_drops_all_references;
  ]
