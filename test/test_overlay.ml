(* The common overlay interface: one parametric test battery executed
   against all three systems, plus interface-specific behaviour. *)

module O = P2p_overlay.Overlay
module Rng = Baton_util.Rng

let for_each_overlay f =
  List.iter (fun (module M : O.S) -> f (module M : O.S)) O.all

let test_create_and_size () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:1 ~n:25 in
      Alcotest.(check int) (M.name ^ " size") 25 (M.size t);
      M.check t)

let test_data_roundtrip () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:2 ~n:30 in
      let rng = Rng.create 5 in
      let keys = Array.init 200 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
      Array.iter (M.insert t) keys;
      Array.iter
        (fun k -> Alcotest.(check bool) (M.name ^ " lookup") true (M.lookup t k))
        keys;
      Array.iter
        (fun k -> Alcotest.(check bool) (M.name ^ " delete") true (M.delete t k))
        keys;
      Alcotest.(check bool) (M.name ^ " gone") false (M.lookup t keys.(0));
      M.check t)

let test_churn_preserves_structure () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:3 ~n:20 in
      let rng = Rng.create 7 in
      for _ = 1 to 15 do
        M.join t;
        M.leave_random t rng
      done;
      Alcotest.(check int) (M.name ^ " size steady") 20 (M.size t);
      M.check t)

let test_messages_increase () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:4 ~n:10 in
      let a = M.messages t in
      M.insert t 123;
      Alcotest.(check bool) (M.name ^ " counted") true (M.messages t >= a))

let test_range_support_matrix () =
  let supports (module M : O.S) = M.supports_range in
  Alcotest.(check bool) "baton supports ranges" true (supports O.baton);
  Alcotest.(check bool) "multiway supports ranges" true (supports O.multiway);
  Alcotest.(check bool) "chord cannot" false (supports O.chord);
  (* The capability flag is honest: querying an unsupporting overlay
     raises rather than silently answering. *)
  let (module C : O.S) = O.chord in
  let t = C.create ~seed:5 ~n:10 in
  C.insert t 100;
  Alcotest.check_raises "chord range raises" (O.Unsupported "chord") (fun () ->
      ignore (C.range_query t ~lo:1 ~hi:1_000))

let test_range_answers_agree () =
  (* The two range-capable overlays must give identical answers. *)
  let answer (module M : O.S) keys lo hi =
    let t = M.create ~seed:6 ~n:40 in
    List.iter (M.insert t) keys;
    M.range_query t ~lo ~hi
  in
  let rng = Rng.create 11 in
  let keys = List.init 300 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  let lo = 200_000_000 and hi = 420_000_000 in
  let expect = List.filter (fun k -> k >= lo && k <= hi) keys |> List.sort compare in
  Alcotest.(check (list int)) "baton" expect (answer O.baton keys lo hi);
  Alcotest.(check (list int)) "multiway" expect (answer O.multiway keys lo hi)

let test_bulk_load_places_all_keys () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:8 ~n:25 in
      let rng = Rng.create 13 in
      let keys =
        List.init 150 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
      in
      M.bulk_load t keys;
      List.iter
        (fun k ->
          Alcotest.(check bool) (M.name ^ " bulk key found") true (M.lookup t k))
        keys;
      M.check t)

let test_stats_split () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:9 ~n:15 in
      M.insert t 42;
      let s = M.stats t in
      Alcotest.(check int) (M.name ^ " stats total") (M.messages t)
        s.O.total;
      Alcotest.(check bool)
        (M.name ^ " per-kind sums to total+cache")
        true
        (List.fold_left (fun acc (_, n) -> acc + n) 0 s.O.by_kind
        = s.O.total + s.O.cache))

let test_by_name () =
  List.iter
    (fun name ->
      let (module M : O.S) = O.by_name name in
      Alcotest.(check bool) name true (M.name <> ""))
    [ "baton"; "chord"; "multiway"; "MTREE" ];
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (O.by_name "kademlia"))

let suite =
  [
    Alcotest.test_case "create/size" `Quick test_create_and_size;
    Alcotest.test_case "data roundtrip" `Quick test_data_roundtrip;
    Alcotest.test_case "churn" `Quick test_churn_preserves_structure;
    Alcotest.test_case "messages counted" `Quick test_messages_increase;
    Alcotest.test_case "range support matrix" `Quick test_range_support_matrix;
    Alcotest.test_case "range answers agree" `Quick test_range_answers_agree;
    Alcotest.test_case "bulk load" `Quick test_bulk_load_places_all_keys;
    Alcotest.test_case "stats split" `Quick test_stats_split;
    Alcotest.test_case "by_name" `Quick test_by_name;
  ]
