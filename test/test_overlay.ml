(* The common overlay interface: one parametric test battery executed
   against every registered system, plus interface-specific behaviour. *)

module O = P2p_overlay.Overlay
module Rng = Baton_util.Rng

let for_each_overlay f =
  List.iter (fun (module M : O.S) -> f (module M : O.S)) O.all

let test_create_and_size () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:1 ~n:25 in
      Alcotest.(check int) (M.name ^ " size") 25 (M.size t);
      M.check t)

let test_data_roundtrip () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:2 ~n:30 in
      let rng = Rng.create 5 in
      let keys = Array.init 200 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
      Array.iter (M.insert t) keys;
      Array.iter
        (fun k -> Alcotest.(check bool) (M.name ^ " lookup") true (M.lookup t k))
        keys;
      Array.iter
        (fun k -> Alcotest.(check bool) (M.name ^ " delete") true (M.delete t k))
        keys;
      Alcotest.(check bool) (M.name ^ " gone") false (M.lookup t keys.(0));
      M.check t)

let test_churn_preserves_structure () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:3 ~n:20 in
      let rng = Rng.create 7 in
      for _ = 1 to 15 do
        M.join t;
        M.leave_random t rng
      done;
      Alcotest.(check int) (M.name ^ " size steady") 20 (M.size t);
      M.check t)

let test_messages_increase () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:4 ~n:10 in
      let a = (M.stats t).O.total in
      M.insert t 123;
      Alcotest.(check bool) (M.name ^ " counted") true
        ((M.stats t).O.total >= a))

let test_range_support_matrix () =
  let supports (module M : O.S) = M.supports_range in
  Alcotest.(check bool) "baton supports ranges" true (supports O.baton);
  Alcotest.(check bool) "multiway supports ranges" true (supports O.multiway);
  Alcotest.(check bool) "skip graph supports ranges" true
    (supports O.skip_graph);
  Alcotest.(check bool) "chord cannot" false (supports O.chord);
  (* The capability flag is honest: querying an unsupporting overlay
     raises rather than silently answering. *)
  let (module C : O.S) = O.chord in
  let t = C.create ~seed:5 ~n:10 in
  C.insert t 100;
  Alcotest.check_raises "chord range raises" (O.Unsupported "chord") (fun () ->
      ignore (C.range_query t ~lo:1 ~hi:1_000))

let test_range_answers_agree () =
  (* Every range-capable overlay must give identical answers. *)
  let answer (module M : O.S) keys lo hi =
    let t = M.create ~seed:6 ~n:40 in
    List.iter (M.insert t) keys;
    M.range_query t ~lo ~hi
  in
  let rng = Rng.create 11 in
  let keys = List.init 300 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999) in
  let lo = 200_000_000 and hi = 420_000_000 in
  let expect = List.filter (fun k -> k >= lo && k <= hi) keys |> List.sort compare in
  List.iter
    (fun (module M : O.S) ->
      if M.supports_range then
        Alcotest.(check (list int)) M.name expect (answer (module M) keys lo hi))
    O.all

let test_bulk_load_places_all_keys () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:8 ~n:25 in
      let rng = Rng.create 13 in
      let keys =
        List.init 150 (fun _ -> Rng.int_in_range rng ~lo:1 ~hi:999_999_999)
      in
      M.bulk_load t keys;
      List.iter
        (fun k ->
          Alcotest.(check bool) (M.name ^ " bulk key found") true (M.lookup t k))
        keys;
      M.check t)

let test_stats_split () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:9 ~n:15 in
      M.insert t 42;
      let s = M.stats t in
      Alcotest.(check bool) (M.name ^ " stats total counted") true
        (s.O.total > 0);
      Alcotest.(check bool)
        (M.name ^ " per-kind sums to total+cache")
        true
        (List.fold_left (fun acc (_, n) -> acc + n) 0 s.O.by_kind
        = s.O.total + s.O.cache))

let test_of_name () =
  (* Canonical names round-trip; aliases and case are accepted. *)
  List.iter2
    (fun name (module M : O.S) ->
      let (module R : O.S) = O.of_name name in
      Alcotest.(check string) ("canonical " ^ name) M.name R.name)
    O.names O.all;
  List.iter
    (fun (alias, expect) ->
      let (module R : O.S) = O.of_name alias in
      Alcotest.(check string) ("alias " ^ alias) expect R.name)
    [
      ("MTREE", "multiway"); ("skip_graph", "skip-graph");
      ("SkipGraph", "skip-graph"); ("Baton", "baton");
    ];
  Alcotest.check_raises "unknown overlay carries the valid names"
    (O.Unknown_overlay { name = "kademlia"; valid = O.names }) (fun () ->
      ignore (O.of_name "kademlia"))

let test_registry_covers_four () =
  Alcotest.(check (list string))
    "registered overlays, BATON first"
    [ "baton"; "chord"; "multiway"; "skip-graph" ]
    O.names

(* Parity: after an identical seeded op sequence, every overlay's stats
   split must stay internally consistent — the per-kind breakdown sums
   to total + cache, and the aux (cache) share never goes negative. The
   sequence exercises every S operation so no message kind escapes the
   accounting. *)
let test_stats_parity_after_identical_ops () =
  for_each_overlay (fun (module M : O.S) ->
      let t = M.create ~seed:21 ~n:30 in
      let rng = Rng.create 77 in
      let key () = Rng.int_in_range rng ~lo:1 ~hi:999_999_999 in
      let keys = List.init 120 (fun _ -> key ()) in
      M.bulk_load t keys;
      List.iteri (fun i k -> if i mod 3 = 0 then ignore (M.lookup t k)) keys;
      List.iteri (fun i k -> if i mod 7 = 0 then ignore (M.delete t k)) keys;
      for _ = 1 to 5 do
        M.insert t (key ());
        M.join t;
        M.leave_random t rng
      done;
      if M.supports_range then
        ignore (M.range_query t ~lo:100_000_000 ~hi:900_000_000);
      let s = M.stats t in
      Alcotest.(check bool) (M.name ^ " aux non-negative") true (s.O.cache >= 0);
      Alcotest.(check int)
        (M.name ^ " per-kind sums to total + aux")
        (s.O.total + s.O.cache)
        (List.fold_left (fun acc (_, n) -> acc + n) 0 s.O.by_kind);
      List.iter
        (fun (kind, n) ->
          Alcotest.(check bool) (M.name ^ " kind " ^ kind ^ " positive") true
            (n > 0))
        s.O.by_kind;
      M.check t)

let suite =
  [
    Alcotest.test_case "create/size" `Quick test_create_and_size;
    Alcotest.test_case "data roundtrip" `Quick test_data_roundtrip;
    Alcotest.test_case "churn" `Quick test_churn_preserves_structure;
    Alcotest.test_case "messages counted" `Quick test_messages_increase;
    Alcotest.test_case "range support matrix" `Quick test_range_support_matrix;
    Alcotest.test_case "range answers agree" `Quick test_range_answers_agree;
    Alcotest.test_case "bulk load" `Quick test_bulk_load_places_all_keys;
    Alcotest.test_case "stats split" `Quick test_stats_split;
    Alcotest.test_case "of_name" `Quick test_of_name;
    Alcotest.test_case "registry covers four" `Quick test_registry_covers_four;
    Alcotest.test_case "stats parity after identical ops" `Quick
      test_stats_parity_after_identical_ops;
  ]
