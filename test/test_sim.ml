(* Simulator substrate: event queue, engine, metrics, bus. *)

module Event_queue = Baton_sim.Event_queue
module Engine = Baton_sim.Engine
module Metrics = Baton_sim.Metrics
module Bus = Baton_sim.Bus

let test_queue_orders_by_time () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "?" in
  (* Bind sequentially: list literals evaluate right to left. *)
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] [ first; second; third ];
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  for i = 1 to 5 do
    Event_queue.push q ~time:1. i
  done;
  let order = List.init 5 (fun _ -> match Event_queue.pop q with Some (_, v) -> v | None -> 0) in
  Alcotest.(check (list int)) "insertion order on ties" [ 1; 2; 3; 4; 5 ] order

let test_queue_peek () =
  let q = Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "peek empty" None (Event_queue.peek_time q);
  Event_queue.push q ~time:4. ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 4.) (Event_queue.peek_time q)

let queue_model_prop =
  let open QCheck2 in
  Test.make ~name:"event queue pops in sorted stable order" ~count:200
    Gen.(list_size (int_bound 50) (int_bound 10))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.push q ~time:(float_of_int t) (i, t)) times;
      let rec drain acc =
        match Event_queue.pop q with
        | Some (_, v) -> drain (v :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let expected =
        List.mapi (fun i t -> (i, t)) times
        |> List.stable_sort (fun (_, a) (_, b) -> compare a b)
      in
      popped = expected)

(* Model check with pops interleaved between pushes: the heap must
   behave like a stable-sorted list at every intermediate point, not
   just after a push-only phase. Times are drawn from a tiny domain so
   ties (the FIFO case) dominate. *)
let queue_interleaved_prop =
  let open QCheck2 in
  Test.make ~name:"event queue: interleaved push/pop matches stable model"
    ~count:300
    Gen.(list (pair bool (int_bound 5)))
    (fun ops ->
      let q = Event_queue.create () in
      let model = ref [] in
      let next = ref 0 in
      let ins time id =
        let rec go = function
          | [] -> [ (time, id) ]
          | (t', v') :: tl when t' <= time -> (t', v') :: go tl
          | rest -> (time, id) :: rest
        in
        model := go !model
      in
      let step_ok (is_pop, t) =
        if is_pop then (
          let expected =
            match !model with
            | [] -> None
            | x :: tl ->
              model := tl;
              Some x
          in
          Event_queue.pop q = expected)
        else begin
          let id = !next in
          incr next;
          Event_queue.push q ~time:(float_of_int t) id;
          ins (float_of_int t) id;
          true
        end
      in
      List.for_all step_ok ops
      && Event_queue.length q = List.length !model)

let queue_tie_fifo_prop =
  let open QCheck2 in
  Test.make ~name:"event queue: equal-time events pop in insertion order"
    ~count:200
    Gen.(int_range 1 100)
    (fun n ->
      let q = Event_queue.create () in
      for i = 0 to n - 1 do
        Event_queue.push q ~time:7. i
      done;
      List.init n (fun _ ->
          match Event_queue.pop q with Some (_, v) -> v | None -> -1)
      = List.init n Fun.id)

let test_engine_order_and_clock () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2. (fun () -> log := ("b", Engine.now e) :: !log);
  Engine.schedule e ~delay:1. (fun () -> log := ("a", Engine.now e) :: !log);
  Engine.run e;
  Alcotest.(check (list (pair string (float 0.0)))) "order with clock"
    [ ("a", 1.); ("b", 2.) ] (List.rev !log)

let test_engine_cascading () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1. (fun () ->
      incr fired;
      Engine.schedule e ~delay:1. (fun () -> incr fired));
  Engine.run e;
  Alcotest.(check int) "cascaded events run" 2 !fired;
  Alcotest.(check bool) "clock at 2" true (Engine.now e = 2.)

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun d -> Engine.schedule e ~delay:d (fun () -> fired := d :: !fired))
    [ 1.; 2.; 3. ];
  Engine.run_until e 2.;
  Alcotest.(check (list (float 0.0))) "only <= horizon" [ 1.; 2. ] (List.rev !fired);
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Alcotest.(check bool) "clock at horizon" true (Engine.now e = 2.)

let test_engine_validation () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> Engine.schedule e ~delay:(-1.) ignore);
  Engine.schedule e ~delay:5. ignore;
  Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> Engine.schedule_at e ~time:1. ignore)

let test_metrics_counters () =
  let m = Metrics.create () in
  Metrics.record m ~dst:1 ~kind:"a";
  Metrics.record m ~dst:1 ~kind:"b";
  Metrics.record m ~dst:2 ~kind:"a";
  Alcotest.(check int) "total" 3 (Metrics.total m);
  Alcotest.(check int) "kind a" 2 (Metrics.kind_count m "a");
  Alcotest.(check int) "node 1" 2 (Metrics.node_count m 1);
  Alcotest.(check int) "node 1 kind a" 1 (Metrics.node_kind_count m 1 "a");
  Alcotest.(check (list (pair string int))) "kinds" [ ("a", 2); ("b", 1) ] (Metrics.kinds m)

let test_metrics_checkpoint () =
  let m = Metrics.create () in
  Metrics.record m ~dst:1 ~kind:"a";
  let cp = Metrics.checkpoint m in
  Metrics.record m ~dst:1 ~kind:"a";
  Metrics.record m ~dst:1 ~kind:"b";
  Alcotest.(check int) "since total" 2 (Metrics.since m cp);
  Alcotest.(check int) "since kind a" 1 (Metrics.kind_since m cp "a");
  Alcotest.(check int) "since kind b" 1 (Metrics.kind_since m cp "b");
  Alcotest.(check int) "since absent kind" 0 (Metrics.kind_since m cp "zzz");
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.total m)

let test_metrics_event_since_and_reset () =
  let m = Metrics.create () in
  Metrics.event m "lost";
  let cp = Metrics.checkpoint m in
  Metrics.event m "lost";
  Metrics.event m "lost";
  Metrics.event m "stale";
  Metrics.record m ~dst:7 ~kind:"a";
  (* Events never perturb the message counters. *)
  Alcotest.(check int) "events outside total" 1 (Metrics.since m cp);
  Alcotest.(check int) "event_since" 2 (Metrics.event_since m cp "lost");
  Alcotest.(check int) "event_since other" 1 (Metrics.event_since m cp "stale");
  Alcotest.(check int) "event_since absent" 0 (Metrics.event_since m cp "none");
  Alcotest.(check (list (pair string int))) "events sorted"
    [ ("lost", 3); ("stale", 1) ] (Metrics.events m);
  Alcotest.(check (list (pair int int))) "per_node" [ (7, 1) ] (Metrics.per_node m);
  Metrics.reset m;
  Alcotest.(check int) "reset total" 0 (Metrics.total m);
  Alcotest.(check int) "reset events" 0 (Metrics.event_count m "lost");
  Alcotest.(check (list (pair string int))) "reset kinds" [] (Metrics.kinds m);
  Alcotest.(check (list (pair int int))) "reset per_node" [] (Metrics.per_node m);
  (* A pre-reset checkpoint is measured against the zeroed counters. *)
  Metrics.event m "lost";
  Alcotest.(check int) "post-reset event count" 1 (Metrics.event_count m "lost")

let test_bus_send_and_failures () =
  let bus = Bus.create () in
  Bus.send bus ~src:1 ~dst:2 ~kind:"x";
  Bus.send bus ~src:2 ~dst:2 ~kind:"x";
  (* self-send is free *)
  Alcotest.(check int) "one counted" 1 (Metrics.total (Bus.metrics bus));
  Bus.fail bus 3;
  Alcotest.(check bool) "marked failed" true (Bus.is_failed bus 3);
  (* A message to a failed peer is still transmitted (counted) but the
     sender sees it as unreachable. *)
  (match Bus.send bus ~src:1 ~dst:3 ~kind:"x" with
  | () -> Alcotest.fail "expected Unreachable"
  | exception Bus.Unreachable 3 -> ()
  | exception Bus.Unreachable d -> Alcotest.failf "wrong peer %d" d);
  Alcotest.(check int) "dead send counted" 2 (Metrics.total (Bus.metrics bus));
  Bus.revive bus 3;
  Bus.send bus ~src:1 ~dst:3 ~kind:"x";
  Alcotest.(check int) "revived" 0 (Bus.failed_count bus)

let test_bus_trace () =
  let bus = Bus.create () in
  let seen = ref [] in
  let sub =
    Bus.subscribe bus (fun ~src ~dst ~kind -> seen := (src, dst, kind) :: !seen)
  in
  Bus.send bus ~src:1 ~dst:2 ~kind:"t";
  Bus.unsubscribe bus sub;
  Bus.send bus ~src:2 ~dst:1 ~kind:"t";
  Alcotest.(check int) "hook saw one" 1 (List.length !seen)

let test_bus_multi_subscribers () =
  let bus = Bus.create () in
  let a = ref 0 and b = ref 0 in
  let sa = Bus.subscribe bus (fun ~src:_ ~dst:_ ~kind:_ -> incr a) in
  let sb = Bus.subscribe bus (fun ~src:_ ~dst:_ ~kind:_ -> incr b) in
  Alcotest.(check int) "two subscribers" 2 (Bus.subscriber_count bus);
  Bus.send bus ~src:1 ~dst:2 ~kind:"t";
  Bus.unsubscribe bus sa;
  Bus.send bus ~src:2 ~dst:1 ~kind:"t";
  Bus.unsubscribe bus sb;
  Alcotest.(check int) "first saw one" 1 !a;
  Alcotest.(check int) "second saw both" 2 !b;
  Alcotest.(check int) "all gone" 0 (Bus.subscriber_count bus)

(* Regression for the O(n²) subscribe (list-append per subscription):
   thousands of subscribers must register quickly and still be invoked
   in subscription order, including after selective unsubscription. *)
let test_bus_subscriber_horde () =
  let bus = Bus.create () in
  let order = ref [] in
  let n = 2000 in
  let subs =
    Array.init n (fun i ->
        Bus.subscribe bus (fun ~src:_ ~dst:_ ~kind:_ -> order := i :: !order))
  in
  Bus.send bus ~src:1 ~dst:2 ~kind:"t";
  Alcotest.(check bool) "invoked in subscription order" true
    (List.rev !order = List.init n Fun.id);
  Array.iteri (fun i s -> if i mod 2 = 1 then Bus.unsubscribe bus s) subs;
  order := [];
  Bus.send bus ~src:1 ~dst:2 ~kind:"t";
  Alcotest.(check bool) "order survives unsubscription" true
    (List.rev !order = List.init (n / 2) (fun i -> 2 * i));
  Alcotest.(check int) "count" (n / 2) (Bus.subscriber_count bus)

let suite =
  [
    Alcotest.test_case "queue orders by time" `Quick test_queue_orders_by_time;
    Alcotest.test_case "queue FIFO ties" `Quick test_queue_fifo_ties;
    Alcotest.test_case "queue peek" `Quick test_queue_peek;
    QCheck_alcotest.to_alcotest queue_model_prop;
    QCheck_alcotest.to_alcotest queue_interleaved_prop;
    QCheck_alcotest.to_alcotest queue_tie_fifo_prop;
    Alcotest.test_case "engine order/clock" `Quick test_engine_order_and_clock;
    Alcotest.test_case "engine cascading" `Quick test_engine_cascading;
    Alcotest.test_case "engine run_until" `Quick test_engine_run_until;
    Alcotest.test_case "engine validation" `Quick test_engine_validation;
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics checkpoint" `Quick test_metrics_checkpoint;
    Alcotest.test_case "metrics events/reset" `Quick test_metrics_event_since_and_reset;
    Alcotest.test_case "bus send/failures" `Quick test_bus_send_and_failures;
    Alcotest.test_case "bus trace" `Quick test_bus_trace;
    Alcotest.test_case "bus multi subscribers" `Quick test_bus_multi_subscribers;
    Alcotest.test_case "bus subscriber horde" `Quick test_bus_subscriber_horde;
  ]
